# Development entry points. `make check` is the tier-1 gate every PR must
# keep green; CI (.github/workflows/ci.yml) runs the same targets.

GO ?= go
# benchstat wants repeated samples; `make bench BENCH_COUNT=10` feeds it.
BENCH_COUNT ?= 1

.PHONY: check build test vet fmt race smoke dist-smoke serve-smoke crash-smoke merge-smoke coord-smoke sketch-smoke examples examples-gate bench bench-gate bench-stream bench-trajectory bench-baseline benchtune noasm-test worker fuzz-smoke

check: build test vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l lists offending files; fail if any are reported.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detector pass over the non-bench tests (benchmarks don't run under
# `go test` by default).
race:
	$(GO) test -race ./...

# Multi-process smoke: 4 parsvd-worker OS processes over loopback TCP,
# verified bit-for-bit against the in-process transport and against the
# serial reference. Fast enough for every CI run.
smoke:
	$(GO) test -short -run 'TestTCPFourRankSmoke' -v ./internal/launch

worker:
	$(GO) build -o bin/parsvd-worker ./cmd/parsvd-worker

# Persistent-fleet smoke: a 4-rank worker fleet held open across the
# whole deterministic workload, fed real snapshot batches over the wire
# (stdin frames -> row scatter -> TCP collectives), must match the serial
# reference within 1e-12. The launcher side runs under the race detector;
# the cross-backend conformance + fault-injection suites ride along.
dist-smoke:
	CI=1 $(GO) test -race -count 1 -v \
		-run 'TestDistributedWireSmoke|TestConformance|TestDistributedWorkerDeath|TestDistributedCloseReaps' .
	CI=1 $(GO) test -race -count 1 -run 'TestSession' ./internal/launch

# One pass over the committed fuzz seed corpora plus a short live fuzz of
# the session frame/payload decoders (truncated frames, hostile lengths,
# non-finite payloads must error, never panic).
fuzz-smoke:
	$(GO) test -run 'Fuzz|TestDecodeBlock|TestReadSessionFrame' ./internal/launch
	$(GO) test -fuzz FuzzDecodeBlock -fuzztime 10s -run '^$$' ./internal/launch

# Serving smoke: boot the HTTP server on a random port, create a model,
# stream the deterministic FromWorkload batches at it through the typed
# client, and require the served spectrum to match an in-process run
# within 1e-12 — then a race-detector pass over the serving subsystem
# (concurrent pushers + readers on one model).
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -v -count 1 ./server
	$(GO) test -race -count 1 ./server/...

# Crash-recovery gate: a real parsvd-serve process is SIGKILLed mid-stream
# and rebooted on the same checkpoint dir; the WAL replay must reconstruct
# exactly the acked pushes (spectrum within 1e-12 of an uninterrupted run,
# zero acked pushes lost) across serial, parallel and distributed models.
# The WAL unit suite (torn tails, bit flips, rotation) rides along.
crash-smoke:
	$(GO) test -run 'TestCrashRecoverySIGKILL' -v -count 1 ./server
	$(GO) test -count 1 ./internal/wal

# Merge conformance gate: a fit sharded across 2/4/8 independent engines
# and reduced through the pairwise merge tree must match the monolithic
# serial fit within 1e-10 on every Source kind, and the tree shape
# (balanced vs left-deep) must change results only within the accumulated
# error bound. The internal/merge unit + property suite and the
# server-side merge tests (corrupt uploads, WAL merge-record replay,
# SIGKILL around /merge) ride along.
merge-smoke:
	$(GO) test -run 'TestMergeConformance' -v -count 1 .
	$(GO) test -count 1 ./internal/merge
	$(GO) test -run 'TestMerge|TestCrashRecoveryMergeSIGKILL' -count 1 ./server

# Cross-node coordinator gate: three REAL parsvd-serve processes on
# kernel-picked ports, a 6-shard coordinated fit over the deterministic
# workload driven by the parsvd-coord binary end to end (merged
# checkpoint ≤ 1e-10 of a monolithic serial fit), and the same fit with
# one serve process SIGKILLed mid-stream so the failover/refit path runs
# against a genuinely dead node. The coordinator unit + fault suite and
# the server checkpoint-export/provenance tests ride along.
coord-smoke:
	$(GO) test -run 'TestCoordSmoke' -v -count 1 ./coord
	$(GO) test -count 1 ./coord
	$(GO) test -run 'TestCheckpoint|TestShardProvenanceSurfaced|TestShardSpecSurvivesReboot' -count 1 ./server

# Sketched-push gate: the sketch property suite (sketched vs unsketched
# fits across every Source kind and all three backends, exactness when
# MaxRank covers the data rank, never-panic option handling) including
# TestSketchSmoke — a 4-rank TCP worker fleet fed compressed (Q, S)
# factor pairs must match the serial unsketched reference within 1e-4
# with >= 4x wire reduction — plus the server-side sketched ingest, WAL
# replay and computed-Retry-After tests. bench-gate rides along so the
# sketch path cannot regress the zero-allocs/op streaming hot path.
sketch-smoke:
	CI=1 $(GO) test -count 1 -v -run 'TestSketch' .
	$(GO) test -count 1 -run 'TestPushSketchEndToEnd|TestSketchWALReplay|TestRetryAfterDerivedFromQueueOccupancy|TestRetryAfterValueReachesBackoff' ./server/...
	$(MAKE) bench-gate

# Public-API consumer gate: every example must build against the public
# packages only, quickstart must run end-to-end, and neither examples/
# nor README code blocks may import goparsvd/internal.
examples: examples-gate
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart

examples-gate:
	@bad=$$(grep -rn '"goparsvd/internal' examples/ README.md || true); \
	if [ -n "$$bad" ]; then \
		echo "examples-gate: public consumers must not import goparsvd/internal:"; \
		echo "$$bad"; exit 1; \
	fi; \
	echo "examples-gate OK: no internal imports in examples/ or README.md"

# benchstat-compatible output: standard `go test -bench` lines; pipe two
# runs into `benchstat old.txt new.txt`.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/mat ./internal/linalg ./internal/stream ./internal/merge

bench-stream:
	$(GO) test -run '^$$' -bench Incorporate -benchmem ./internal/stream

# Regression gate on the key benches: the blocked-GEMM kernel, the batched
# skinny-GEMM path, the zero-allocation streaming hot path and the
# zero-allocation pairwise merge. Fails if any zero-alloc benchmark
# reports allocations per op.
bench-gate:
	@fail=0; \
	mat=$$($(GO) test -run '^$$' -bench 'BenchmarkMulSquare512$$|BenchmarkBatchedSkinny$$' -benchmem ./internal/mat) || fail=1; \
	stream=$$($(GO) test -run '^$$' -bench 'BenchmarkIncorporateSteadyStateAllocs$$' -benchmem ./internal/stream) || fail=1; \
	merge=$$($(GO) test -run '^$$' -bench 'BenchmarkMergePairSteadyState$$' -benchmem ./internal/merge) || fail=1; \
	out=$$(printf '%s\n%s\n%s\n' "$$mat" "$$stream" "$$merge"); \
	echo "$$out"; \
	if [ $$fail -ne 0 ]; then echo "bench-gate: benchmarks failed"; exit 1; fi; \
	echo "$$out" | awk ' \
		/^BenchmarkIncorporateSteadyStateAllocs/ { \
			for (i = 1; i <= NF; i++) if ($$i == "allocs/op") { seenS = 1; allocsS = $$(i-1) } \
		} \
		/^BenchmarkBatchedSkinny/ { \
			for (i = 1; i <= NF; i++) if ($$i == "allocs/op") { seenB = 1; allocsB = $$(i-1) } \
		} \
		/^BenchmarkMergePairSteadyState/ { \
			for (i = 1; i <= NF; i++) if ($$i == "allocs/op") { seenM = 1; allocsM = $$(i-1) } \
		} \
		END { \
			if (!seenS) { print "bench-gate: BenchmarkIncorporateSteadyStateAllocs did not run"; exit 1 } \
			if (!seenB) { print "bench-gate: BenchmarkBatchedSkinny did not run"; exit 1 } \
			if (!seenM) { print "bench-gate: BenchmarkMergePairSteadyState did not run"; exit 1 } \
			if (allocsS + 0 > 0) { print "bench-gate: steady-state streaming path allocates (" allocsS " allocs/op, want 0)"; exit 1 } \
			if (allocsB + 0 > 0) { print "bench-gate: batched skinny path allocates (" allocsB " allocs/op, want 0)"; exit 1 } \
			if (allocsM + 0 > 0) { print "bench-gate: steady-state merge path allocates (" allocsM " allocs/op, want 0)"; exit 1 } \
			print "bench-gate OK: streaming " allocsS " allocs/op, batched " allocsB " allocs/op, merge " allocsM " allocs/op" \
		}'

# The benchmark set the trajectory record tracks: kernel-level GEMM, the
# batched path, the streaming hot loop, the pairwise merge and the
# sketched-push wire traffic. Kept in one place so emitting a baseline
# and emitting a CI run measure the same thing.
TRAJ_BENCH = BenchmarkMulIntoSquare256$$|BenchmarkMulSquare512$$|BenchmarkMulTallSkinny$$|BenchmarkBatchedSkinny$$|BenchmarkIncorporateSteadyStateAllocs$$|BenchmarkMergePairSteadyState$$|BenchmarkMergeTree8$$|BenchmarkSketchedPushWire$$
TRAJ_COUNT ?= 5
RUNID ?= local

# Record the current machine's numbers as BENCH_<RUNID>.json and compare
# against the committed BENCH_baseline.json: >10% median ns/op regression
# (same environment) or any alloc increase (any environment) fails.
bench-trajectory:
	$(GO) test -run '^$$' -bench '$(TRAJ_BENCH)' -benchmem -count $(TRAJ_COUNT) \
		. ./internal/mat ./internal/stream ./internal/merge \
		| $(GO) run ./cmd/parsvd-benchtraj emit -runid "$(RUNID)" -o BENCH_$(RUNID).json
	$(GO) run ./cmd/parsvd-benchtraj compare -baseline BENCH_baseline.json -current BENCH_$(RUNID).json

# Rewrite the committed baseline from this machine (run after intentional
# performance changes, then commit BENCH_baseline.json).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(TRAJ_BENCH)' -benchmem -count $(TRAJ_COUNT) \
		. ./internal/mat ./internal/stream ./internal/merge \
		| $(GO) run ./cmd/parsvd-benchtraj emit -runid baseline -o BENCH_baseline.json

# Re-measure the kernel selection thresholds on this machine and rewrite
# internal/mat/seltab_gen.go (commit the result).
benchtune:
	$(GO) run ./cmd/parsvd-benchtune -o internal/mat/seltab_gen.go
	gofmt -l internal/mat/seltab_gen.go

# Fallback parity: the kernel and streaming suites with the assembly
# micro-kernels disabled, so the pure-Go reference path stays correct.
noasm-test:
	PARSVD_NOASM=1 $(GO) test -count 1 ./internal/mat ./internal/stream
	PARSVD_NOASM=1 $(GO) test -run '^$$' -bench 'BenchmarkIncorporateSteadyStateAllocs$$' -benchmem ./internal/stream
