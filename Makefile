# Development entry points. `make check` is the tier-1 gate every PR must
# keep green; CI and local workflows should run the same target.

GO ?= go

.PHONY: check build test vet fmt bench bench-stream

check: build test vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l lists offending files; fail if any are reported.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/mat ./internal/linalg

bench-stream:
	$(GO) test -run xxx -bench Incorporate -benchmem ./internal/stream
