package parsvd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"goparsvd/internal/launch"
)

// fitDistributed runs the decomposition as one OS process per rank over
// loopback TCP: cmd/parsvd-worker processes rendezvous through rank 0 and
// replay the deterministic workload locally, so no snapshot data crosses
// the launcher boundary. Called with s.mu held.
func (s *SVD) fitDistributed(ctx context.Context, src Source) (*Result, error) {
	ws, ok := src.(*workloadSource)
	if !ok {
		return nil, errors.New("parsvd: the Distributed backend requires a FromWorkload source (worker processes replay the workload locally)")
	}
	if ws.ranks != s.cfg.ranks {
		return nil, fmt.Errorf("parsvd: FromWorkload was sized for %d ranks but the SVD runs %d; pass the same rank count to both", ws.ranks, s.cfg.ranks)
	}
	if err := s.cfg.checkWorkload(ws.w); err != nil {
		return nil, err
	}
	cfg := launch.Config{
		Ranks:       s.cfg.ranks,
		Workload:    ws.w,
		WorkerBin:   s.cfg.transport.WorkerBin,
		Timeout:     s.cfg.transport.Timeout,
		IdleTimeout: s.cfg.transport.IdleTimeout,
		Stderr:      s.cfg.transport.Stderr,
	}
	// Map a context deadline onto the launcher's hard timeout, which is
	// what actually reaps stuck workers.
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl)
		if budget <= 0 {
			return nil, context.DeadlineExceeded
		}
		if cfg.Timeout == 0 || budget < cfg.Timeout {
			cfg.Timeout = budget
		}
	}

	lres, err := launch.RunContext(ctx, cfg)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("parsvd: distributed run: %w", err)
	}
	root := lres.Root()
	st := lres.MPIStats()
	s.distRes = &Result{
		Singular:    root.Singular(),
		Iterations:  workloadIterations(ws.w),
		Snapshots:   ws.w.Snapshots,
		ModesSHA256: root.ModesSHA256,
	}
	// distSts only carries the traffic counters; Stats() derives the rest
	// (Backend, K, Ranks, ingest counters) from cfg and the fields below.
	s.distSts = Stats{Messages: st.Messages, Bytes: st.Bytes}
	s.rows = ws.w.RowsPerRank * s.cfg.ranks
	s.snapshots = ws.w.Snapshots
	s.updates = int64(s.distRes.Iterations) + 1 // the Initialize batch counts as an update
	return s.distRes.Clone(), nil
}

// workloadIterations counts the IncorporateData calls a workload produces
// (the Initialize batch is not an iteration).
func workloadIterations(w Workload) int {
	rest := w.Snapshots - w.InitBatch
	if rest <= 0 {
		return 0
	}
	return (rest + w.Batch - 1) / w.Batch
}
