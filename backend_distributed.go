package parsvd

import (
	"errors"
	"fmt"
	"io"
	"time"

	"goparsvd/internal/launch"
	"goparsvd/internal/mat"
)

// distEngine is ParSVD over a persistent multi-process worker world: one
// parsvd-worker OS process per rank on loopback TCP, held open across
// operations exactly like the in-process parallel engine holds its rank
// goroutines. The facade feeds global batches; the engine's session
// scatters row blocks over the workers' stdin (the framed protocol in
// internal/launch), the workers run the collective streaming update among
// themselves, and queries (spectrum, modes fingerprint, checkpoint
// gather) come back over their stdout.
//
// The fleet is spawned lazily on the first push — constructing a
// Distributed SVD costs nothing until data arrives — and any session
// failure (a worker death, an engine panic on a rank, a protocol
// violation, an operation timeout) permanently fails the engine: the
// remaining workers are killed immediately and every later operation
// reports an error wrapping ErrEngineFailed.
type distEngine struct {
	cfg    config
	sess   *launch.Session
	rows   int // global row count, 0 until the first batch
	failed error
	// deadline is the Fit context deadline currently in force (zero
	// outside a deadline-bearing Fit): it caps fleet startup and every
	// wire round trip, so a ctx deadline bounds the whole distributed
	// run instead of only being observed between batches.
	deadline time.Time
}

func newDistEngine(cfg config) *distEngine { return &distEngine{cfg: cfg} }

// start spawns and initializes the worker fleet. A spawn failure (no
// worker binary, no free ports) does not poison the engine — nothing has
// been ingested, so the next push may retry.
func (d *distEngine) start() error {
	sess, err := launch.StartSession(launch.SessionConfig{
		Ranks:     d.cfg.ranks,
		WorkerBin: d.cfg.transport.WorkerBin,
		Spec: launch.EngineSpec{
			K:          d.cfg.k,
			FF:         d.cfg.ff,
			R1:         d.cfg.r1,
			Method:     int(d.cfg.method),
			LowRank:    d.cfg.lowRank,
			Oversample: d.cfg.rlaOpts.Oversample,
			PowerIters: d.cfg.rlaOpts.PowerIters,
			Seed:       d.cfg.rlaOpts.Seed,
		},
		OpTimeout:   d.cfg.transport.Timeout,
		Deadline:    d.deadline,
		IdleTimeout: d.cfg.transport.IdleTimeout,
		Stderr:      d.cfg.transport.Stderr,
	})
	if err != nil {
		return fmt.Errorf("parsvd: starting distributed worker fleet: %w", err)
	}
	d.sess = sess
	return nil
}

// poison marks the engine permanently failed after a session fault.
func (d *distEngine) poison(op string, err error) error {
	d.failed = fmt.Errorf("%w: %s: %w", ErrEngineFailed, op, err)
	return d.failed
}

// sessionErr classifies a session operation error: a fault that killed
// the fleet poisons the engine permanently, while a clean pre-wire
// refusal (an expired Fit deadline before any frame was written) leaves
// the still-healthy session — and this engine — fully usable.
func (d *distEngine) sessionErr(op string, err error) error {
	if d.sess.Failed() == nil {
		return fmt.Errorf("parsvd: %s: %w", op, err)
	}
	return d.poison(op, err)
}

// setDeadline maps a Fit context deadline onto the session's hard
// operation cap (zero clears it). Implements the deadlineAware seam Fit
// uses; Push/Result outside a Fit run under TransportConfig.Timeout
// alone.
func (d *distEngine) setDeadline(t time.Time) {
	d.deadline = t
	if d.sess != nil {
		d.sess.SetDeadline(t)
	}
}

func (d *distEngine) push(b *mat.Dense) error {
	if d.failed != nil {
		return d.failed
	}
	if err := checkBatch(b, d.rows); err != nil {
		return err
	}
	if d.sess == nil {
		if b.Rows() < d.cfg.ranks {
			return fmt.Errorf("parsvd: %d snapshot rows cannot be split across %d ranks", b.Rows(), d.cfg.ranks)
		}
		if err := d.start(); err != nil {
			return err
		}
	}
	// A rejection before any frame was written (dimension mismatch,
	// non-finite values, expired deadline) leaves the fleet consistent
	// and usable; only a wire-level fault poisons (sessionErr).
	if err := d.sess.Push(b); err != nil {
		return d.sessionErr("distributed update", err)
	}
	if d.rows == 0 {
		d.rows = b.Rows()
	}
	return nil
}

// pushSketch ships a compressed factor pair to the fleet instead of
// reconstructed rows (the sketchReceiver seam behind PushSketch and
// WithSketchedPush): each rank receives its row block of Q plus the full
// S and reconstructs worker-side, so only the pair crosses the wire.
func (d *distEngine) pushSketch(q, s *mat.Dense) error {
	if d.failed != nil {
		return d.failed
	}
	if d.sess == nil {
		if q.Rows() < d.cfg.ranks {
			return fmt.Errorf("parsvd: %d snapshot rows cannot be split across %d ranks", q.Rows(), d.cfg.ranks)
		}
		if err := d.start(); err != nil {
			return err
		}
	}
	if err := d.sess.PushSketch(q, s); err != nil {
		return d.sessionErr("distributed sketched update", err)
	}
	if d.rows == 0 {
		d.rows = q.Rows()
	}
	return nil
}

func (d *distEngine) result() (*Result, error) {
	if d.failed != nil {
		return nil, d.failed
	}
	if d.sess == nil || d.rows == 0 {
		return nil, errors.New("parsvd: no data ingested yet")
	}
	singular, err := d.sess.Spectrum()
	if err != nil {
		return nil, d.sessionErr("reading distributed spectrum", err)
	}
	sha, err := d.sess.ModesSHA()
	if err != nil {
		return nil, d.sessionErr("fingerprinting distributed modes", err)
	}
	st := d.sess.Stats()
	// Modes stays nil: the M×K matrix lives row-distributed in the worker
	// processes; ModesSHA256 fingerprints the gathered matrix bit-exactly
	// and Save gathers it into a checkpoint when the caller wants it.
	// The fingerprint costs one gather collective per result() — the same
	// M×K gather the Parallel backend's result() performs — so serving a
	// distributed model is no more expensive per published view than
	// serving a parallel one; the server's micro-batching amortizes both.
	return &Result{
		Singular:    singular,
		Iterations:  st.Iterations,
		Snapshots:   st.Snapshots,
		ModesSHA256: sha,
	}, nil
}

// save gathers the global state at rank 0 and writes the facade
// checkpoint format: the bytes are exactly what the serial engine would
// have written for the gathered state, so Load resumes a distributed run
// the same way it resumes a parallel one (serially, from global modes).
func (d *distEngine) save(w io.Writer, _ *Result) error {
	if d.failed != nil {
		return d.failed
	}
	if d.sess == nil || d.rows == 0 {
		return errors.New("parsvd: no data ingested yet")
	}
	blob, err := d.sess.Save()
	if err != nil {
		return d.sessionErr("gathering distributed checkpoint", err)
	}
	if _, err := w.Write(blob); err != nil {
		return fmt.Errorf("parsvd: writing checkpoint: %w", err)
	}
	return nil
}

func (d *distEngine) stats() Stats {
	st := Stats{Ranks: d.cfg.ranks}
	if d.sess != nil {
		ss := d.sess.Stats()
		st.Messages, st.Bytes = ss.Messages, ss.Bytes
	}
	return st
}

func (d *distEngine) close() error {
	if d.sess == nil {
		return nil
	}
	return d.sess.Close()
}
