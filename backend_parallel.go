package parsvd

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"goparsvd/internal/core"
	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
)

// parallelEngine is ParSVD_Parallel behind the facade: a persistent world
// of in-process ranks, each a goroutine owning one row block of the
// snapshot matrix and one core.Parallel engine. The facade feeds global
// batches; the engine partitions rows, dispatches one operation to every
// rank (so the MPI-style collectives inside always line up), and collects
// per-rank replies. A rank panic aborts the world — exactly as mpi.Run
// would — and surfaces as an error; the engine is then permanently
// failed.
type parallelEngine struct {
	opts  core.Options
	ranks int

	world *mpi.World
	cmds  []chan parOp
	wg    sync.WaitGroup

	rows   int // global row count, 0 until the first batch
	parts  []grid.Range
	pushed int // batches ingested
	failed error
}

type parOpKind int

const (
	parPush parOpKind = iota
	parGather
)

type parOp struct {
	kind  parOpKind
	block *mat.Dense // parPush: this rank's row block
	reply chan<- parReply
}

type parReply struct {
	rank int
	err  error
	// Rank 0's gather payload.
	modes      *mat.Dense
	singular   []float64
	iterations int
	snapshots  int
}

func newParallelEngine(opts core.Options, ranks int) *parallelEngine {
	pe := &parallelEngine{
		opts:  opts,
		ranks: ranks,
		world: mpi.NewWorld(ranks),
		cmds:  make([]chan parOp, ranks),
	}
	for r := 0; r < ranks; r++ {
		pe.cmds[r] = make(chan parOp)
		pe.wg.Add(1)
		go pe.rankLoop(r)
	}
	return pe
}

// rankLoop is one rank's service goroutine: it applies operations in
// arrival order, converting any engine panic (including the abort echo
// raised when a peer rank fails mid-collective) into an error reply.
func (pe *parallelEngine) rankLoop(rank int) {
	defer pe.wg.Done()
	c := pe.world.Comm(rank)
	var eng *core.Parallel
	for op := range pe.cmds[rank] {
		reply := parReply{rank: rank}
		func() {
			defer func() {
				if v := recover(); v != nil {
					pe.world.Abort()
					if err, ok := v.(error); ok {
						reply.err = err
					} else {
						reply.err = fmt.Errorf("parsvd: rank %d: %v", rank, v)
					}
				}
			}()
			switch op.kind {
			case parPush:
				if eng == nil {
					eng = core.NewParallel(c, pe.opts)
					eng.Initialize(op.block)
				} else {
					eng.IncorporateData(op.block)
				}
			case parGather:
				modes := eng.GatherModes()
				if rank == 0 {
					reply.modes = modes
					reply.singular = append([]float64(nil), eng.SingularValues()...)
					reply.iterations = eng.Iterations()
					reply.snapshots = eng.SnapshotsSeen()
				}
			}
		}()
		op.reply <- reply
	}
}

// dispatch hands one operation to every rank and waits for all replies,
// returning rank 0's reply and the first error observed. mk builds the
// per-rank operation.
func (pe *parallelEngine) dispatch(mk func(rank int) parOp) (parReply, error) {
	replyCh := make(chan parReply, pe.ranks)
	for r := 0; r < pe.ranks; r++ {
		op := mk(r)
		op.reply = replyCh
		pe.cmds[r] <- op
	}
	var root parReply
	var firstErr error
	for i := 0; i < pe.ranks; i++ {
		rep := <-replyCh
		if rep.rank == 0 {
			root = rep
		}
		if rep.err == nil {
			continue
		}
		// Prefer the originating panic over the abort echoes of the ranks
		// that were merely blocked on a collective when a peer failed.
		if firstErr == nil || (isAbortEcho(firstErr) && !isAbortEcho(rep.err)) {
			firstErr = rep.err
		}
	}
	return root, firstErr
}

// isAbortEcho recognizes the secondary failure raised in ranks that were
// blocked on communication when another rank panicked.
func isAbortEcho(err error) bool {
	return errors.Is(err, mpi.ErrAborted) || err.Error() == "mpi: aborted because a peer rank panicked"
}

func (pe *parallelEngine) push(b *mat.Dense) error {
	if pe.failed != nil {
		return pe.failed
	}
	if err := checkBatch(b, pe.rows); err != nil {
		return err
	}
	if pe.rows == 0 {
		if b.Rows() < pe.ranks {
			return fmt.Errorf("parsvd: %d snapshot rows cannot be split across %d ranks", b.Rows(), pe.ranks)
		}
		pe.rows = b.Rows()
		pe.parts = grid.Partition(pe.rows, pe.ranks)
	}
	_, err := pe.dispatch(func(rank int) parOp {
		p := pe.parts[rank]
		return parOp{kind: parPush, block: b.SliceRows(p.Start, p.End)}
	})
	if err != nil {
		pe.failed = fmt.Errorf("%w: parallel update failed: %w", ErrEngineFailed, err)
		return pe.failed
	}
	pe.pushed++
	return nil
}

func (pe *parallelEngine) gather() (parReply, error) {
	if pe.failed != nil {
		return parReply{}, pe.failed
	}
	if pe.rows == 0 {
		return parReply{}, errors.New("parsvd: no data ingested yet")
	}
	root, err := pe.dispatch(func(int) parOp { return parOp{kind: parGather} })
	if err != nil {
		pe.failed = fmt.Errorf("%w: gathering modes failed: %w", ErrEngineFailed, err)
		return parReply{}, pe.failed
	}
	return root, nil
}

func (pe *parallelEngine) result() (*Result, error) {
	root, err := pe.gather()
	if err != nil {
		return nil, err
	}
	return &Result{
		Modes:      root.modes,
		Singular:   root.singular,
		Iterations: root.iterations,
		Snapshots:  root.snapshots,
	}, nil
}

// save serializes the global state in the serial checkpoint format, so a
// parallel run's checkpoint can be resumed anywhere (Load returns a
// serial-backend SVD holding the global modes). A result just gathered by
// the caller is reused; otherwise one gather collective runs here.
func (pe *parallelEngine) save(w io.Writer, res *Result) error {
	if res == nil {
		root, err := pe.gather()
		if err != nil {
			return err
		}
		res = &Result{
			Modes:      root.modes,
			Singular:   root.singular,
			Iterations: root.iterations,
			Snapshots:  root.snapshots,
		}
	}
	eng, err := core.RestoreSerial(pe.opts, res.Modes, res.Singular,
		res.Iterations, res.Snapshots)
	if err != nil {
		return fmt.Errorf("parsvd: assembling checkpoint state: %w", err)
	}
	return eng.Save(w)
}

func (pe *parallelEngine) stats() Stats {
	st := pe.world.Stats()
	return Stats{Ranks: st.Ranks, Messages: st.Messages, Bytes: st.Bytes}
}

func (pe *parallelEngine) close() error {
	for _, ch := range pe.cmds {
		close(ch)
	}
	pe.wg.Wait()
	return nil
}
