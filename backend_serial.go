package parsvd

import (
	"errors"
	"fmt"
	"io"
	"math"

	"goparsvd/internal/core"
	"goparsvd/internal/mat"
)

// serialEngine adapts core.Serial (ParSVD_Serial) to the facade engine
// contract: dimension checks happen here, before the panicking engine
// layer, so the public path stays error-based.
type serialEngine struct {
	opts core.Options
	eng  *core.Serial
	rows int // 0 until the first batch seeds the decomposition
}

func newSerialEngine(opts core.Options) *serialEngine {
	return &serialEngine{opts: opts, eng: core.NewSerial(opts)}
}

// restoredSerialEngine wraps an engine rebuilt from a checkpoint.
func restoredSerialEngine(eng *core.Serial) *serialEngine {
	return &serialEngine{opts: eng.Options(), eng: eng, rows: eng.Modes().Rows()}
}

func (e *serialEngine) push(b *mat.Dense) error {
	if err := checkBatch(b, e.rows); err != nil {
		return err
	}
	if e.rows == 0 {
		e.eng.Initialize(b)
		e.rows = b.Rows()
		return nil
	}
	e.eng.IncorporateData(b)
	return nil
}

func (e *serialEngine) result() (*Result, error) {
	if e.rows == 0 {
		return nil, errors.New("parsvd: no data ingested yet")
	}
	return &Result{
		Modes:      e.eng.Modes().Clone(),
		Singular:   append([]float64(nil), e.eng.SingularValues()...),
		Iterations: e.eng.Iterations(),
		Snapshots:  e.eng.SnapshotsSeen(),
	}, nil
}

func (e *serialEngine) save(w io.Writer, _ *Result) error {
	if e.rows == 0 {
		return errors.New("parsvd: no data ingested yet")
	}
	return e.eng.Save(w)
}

func (e *serialEngine) stats() Stats { return Stats{} }

func (e *serialEngine) close() error { return nil }

// coefficients / reconstruct power the facade's projection utilities.
func (e *serialEngine) coefficients(a *mat.Dense) (*mat.Dense, error) {
	if e.rows == 0 {
		return nil, errors.New("parsvd: no data ingested yet")
	}
	if a == nil || a.Rows() != e.rows {
		return nil, fmt.Errorf("parsvd: Coefficients needs %d-row snapshots", e.rows)
	}
	return e.eng.Coefficients(a), nil
}

func (e *serialEngine) reconstruct(coeffs *mat.Dense) (*mat.Dense, error) {
	if e.rows == 0 {
		return nil, errors.New("parsvd: no data ingested yet")
	}
	if coeffs == nil || coeffs.Rows() != e.eng.Modes().Cols() {
		return nil, fmt.Errorf("parsvd: Reconstruct needs %d-row coefficients", e.eng.Modes().Cols())
	}
	return e.eng.Reconstruct(coeffs), nil
}

// checkBatch validates a snapshot batch against the rows seen so far
// (rows == 0 means no batch yet). Non-finite values are rejected on
// every backend — a NaN or Inf snapshot would silently corrupt the
// running factorization — so code written against one backend behaves
// identically on the others.
func checkBatch(b *mat.Dense, rows int) error {
	if b == nil || b.IsEmpty() {
		return errors.New("parsvd: empty snapshot batch")
	}
	if rows != 0 && b.Rows() != rows {
		return fmt.Errorf("parsvd: batch has %d rows, want %d", b.Rows(), rows)
	}
	for _, v := range b.RawData() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("parsvd: snapshot batch contains a non-finite value (%g)", v)
		}
	}
	return nil
}
