package parsvd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"goparsvd/internal/core"
	"goparsvd/internal/mat"
	"goparsvd/internal/merge"
)

// shardedEngine is the WithShards map-reduce: n independent sub-engines
// of the configured backend, each fitting a disjoint subset of the
// batch stream, reduced at result time up a balanced pairwise merge
// tree (internal/merge). Batches are dealt round-robin, so a long Fit
// spreads its snapshots evenly; the merge is recomputed per result()
// call from the live shard states, which keeps Push cheap and makes the
// reduction stateless.
type shardedEngine struct {
	cfg  config
	subs []engine

	rows   int // global row count, 0 until the first batch
	next   int // round-robin cursor
	fed    []bool
	failed error
}

func newShardedEngine(cfg config) *shardedEngine {
	e := &shardedEngine{
		cfg:  cfg,
		subs: make([]engine, cfg.shards),
		fed:  make([]bool, cfg.shards),
	}
	for i := range e.subs {
		switch cfg.backend {
		case Serial:
			e.subs[i] = newSerialEngine(cfg.coreOptions())
		case Parallel:
			e.subs[i] = newParallelEngine(cfg.coreOptions(), cfg.ranks)
		case Distributed:
			e.subs[i] = newDistEngine(cfg)
		}
	}
	return e
}

func (e *shardedEngine) push(b *mat.Dense) error {
	if e.failed != nil {
		return e.failed
	}
	if err := checkBatch(b, e.rows); err != nil {
		return err
	}
	if e.rows == 0 {
		e.rows = b.Rows()
	}
	i := e.next
	e.next = (e.next + 1) % len(e.subs)
	if err := e.subs[i].push(b); err != nil {
		if errors.Is(err, ErrEngineFailed) {
			e.failed = err
		}
		return err
	}
	e.fed[i] = true
	return nil
}

// partials snapshots every fed shard's current factorization as a merge
// operand. Shards that have not seen a batch yet (a short stream dealt
// fewer batches than shards) are skipped. A backend whose Result carries
// no modes (Distributed keeps them row-scattered in the fleet) is read
// through its checkpoint instead — one gather either way.
func (e *shardedEngine) partials() ([]*merge.Partial, error) {
	parts := make([]*merge.Partial, 0, len(e.subs))
	for i, sub := range e.subs {
		if !e.fed[i] {
			continue
		}
		res, err := sub.result()
		if err != nil {
			return nil, fmt.Errorf("parsvd: shard %d of %d: %w", i, len(e.subs), err)
		}
		if res.Modes == nil {
			var buf bytes.Buffer
			if err := sub.save(&buf, res); err != nil {
				return nil, fmt.Errorf("parsvd: shard %d of %d: %w", i, len(e.subs), err)
			}
			st, err := core.ReadState(&buf)
			if err != nil {
				return nil, fmt.Errorf("parsvd: shard %d of %d: %w", i, len(e.subs), err)
			}
			res.Modes, res.Singular = st.Modes, st.Singular
		}
		parts = append(parts, &merge.Partial{
			U:          res.Modes,
			S:          res.Singular,
			Iterations: res.Iterations,
			Snapshots:  res.Snapshots,
		})
	}
	if len(parts) == 0 {
		return nil, errors.New("parsvd: no data ingested yet")
	}
	return parts, nil
}

// merged reduces the shard states into one global factorization.
func (e *shardedEngine) merged() (*merge.Partial, error) {
	parts, err := e.partials()
	if err != nil {
		return nil, err
	}
	return merge.Tree(parts, merge.TreeOptions{
		K:       e.cfg.k,
		Workers: runtime.GOMAXPROCS(0),
	})
}

func (e *shardedEngine) result() (*Result, error) {
	if e.failed != nil {
		return nil, e.failed
	}
	root, err := e.merged()
	if err != nil {
		return nil, err
	}
	return &Result{
		Modes:      root.U,
		Singular:   root.S,
		Iterations: root.Iterations,
		Snapshots:  root.Snapshots,
	}, nil
}

// save serializes the merged global state in the serial checkpoint
// format, like the parallel backend: a sharded fit's checkpoint resumes
// as an ordinary serial model.
func (e *shardedEngine) save(w io.Writer, res *Result) error {
	if e.failed != nil {
		return e.failed
	}
	if res == nil {
		var err error
		if res, err = e.result(); err != nil {
			return err
		}
	}
	eng, err := core.RestoreSerial(e.cfg.coreOptions(), res.Modes, res.Singular,
		res.Iterations, res.Snapshots)
	if err != nil {
		return fmt.Errorf("parsvd: assembling checkpoint state: %w", err)
	}
	return eng.Save(w)
}

func (e *shardedEngine) stats() Stats {
	var st Stats
	for _, sub := range e.subs {
		s := sub.stats()
		st.Messages += s.Messages
		st.Bytes += s.Bytes
	}
	return st
}

func (e *shardedEngine) close() error {
	errs := make([]error, 0, len(e.subs))
	for _, sub := range e.subs {
		errs = append(errs, sub.close())
	}
	return errors.Join(errs...)
}

// setDeadline forwards a Fit deadline to every deadline-aware shard
// (the Distributed sub-engines' wire operations).
func (e *shardedEngine) setDeadline(t time.Time) {
	for _, sub := range e.subs {
		if da, ok := sub.(deadlineAware); ok {
			da.setDeadline(t)
		}
	}
}
