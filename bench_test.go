// Package goparsvd_test holds the repository-level benchmark harness: one
// benchmark per paper artifact (Figures 1a, 1b, 1c and 2) plus the
// ablation benches A1–A5 listed in DESIGN.md. Each benchmark runs a
// reduced-scale version of the corresponding experiment — the full-scale
// regeneration paths are the cmd/ binaries — and reports the experiment's
// quality metric (mode error, efficiency, cosine) alongside time via
// b.ReportMetric, so a bench run doubles as a regression check on result
// quality, not just speed.
package parsvd_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"goparsvd/internal/apmos"
	"goparsvd/internal/burgers"
	"goparsvd/internal/climate"
	"goparsvd/internal/core"
	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/postproc"
	"goparsvd/internal/rla"
	"goparsvd/internal/stream"
	"goparsvd/internal/tsqr"
)

// benchBurgers is the reduced-scale Figure 1(a,b) workload shared by the
// E1/E2 benches: 2048×160, 4 ranks.
var benchBurgers = burgers.Config{L: 1, Re: 1000, Nx: 2048, Nt: 160, TFinal: 2}

const (
	benchRanks = 4
	benchK     = 10
	benchBatch = 40
)

// runSerialBurgers streams the benchmark workload through the serial
// engine.
func runSerialBurgers(cfg burgers.Config, k, batch int, ff float64) *core.Serial {
	eng := core.NewSerial(core.Options{K: k, ForgetFactor: ff})
	for off := 0; off < cfg.Nt; off += batch {
		end := off + batch
		if end > cfg.Nt {
			end = cfg.Nt
		}
		b := cfg.SnapshotsCols(off, end)
		if off == 0 {
			eng.Initialize(b)
		} else {
			eng.IncorporateData(b)
		}
	}
	return eng
}

// runParallelBurgers streams the benchmark workload through the parallel
// engine and returns the gathered global modes.
func runParallelBurgers(cfg burgers.Config, ranks, k, batch int, ff float64, lowRank bool) *mat.Dense {
	parts := cfg.Partition(ranks)
	var mu sync.Mutex
	var modes *mat.Dense
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		r0, r1 := parts[c.Rank()][0], parts[c.Rank()][1]
		eng := core.NewParallel(c, core.Options{
			K: k, ForgetFactor: ff, LowRank: lowRank, R1: 50,
		})
		for off := 0; off < cfg.Nt; off += batch {
			end := off + batch
			if end > cfg.Nt {
				end = cfg.Nt
			}
			b := cfg.Block(r0, r1, off, end)
			if off == 0 {
				eng.Initialize(b)
			} else {
				eng.IncorporateData(b)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			mu.Unlock()
		}
	})
	return modes
}

// BenchmarkFig1aBurgersMode1 regenerates the Figure 1(a) comparison: the
// serial and distributed pipelines run end to end and the reported metric
// is the sign-aligned max|diff| of mode 1 (the quantity the figure plots).
func BenchmarkFig1aBurgersMode1(b *testing.B) {
	b.ReportAllocs()
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		serial := runSerialBurgers(benchBurgers, benchK, benchBatch, 0.95)
		parallel := runParallelBurgers(benchBurgers, benchRanks, benchK, benchBatch, 0.95, true)
		errs := postproc.CompareModes(serial.Modes(), parallel)
		maxDiff = errs[0].MaxAbs
	}
	b.ReportMetric(maxDiff, "mode1-maxdiff")
}

// BenchmarkFig1bBurgersMode2 is Figure 1(b): mode 2 of the same runs.
func BenchmarkFig1bBurgersMode2(b *testing.B) {
	b.ReportAllocs()
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		serial := runSerialBurgers(benchBurgers, benchK, benchBatch, 0.95)
		parallel := runParallelBurgers(benchBurgers, benchRanks, benchK, benchBatch, 0.95, true)
		errs := postproc.CompareModes(serial.Modes(), parallel)
		maxDiff = errs[1].MaxAbs
	}
	b.ReportMetric(maxDiff, "mode2-maxdiff")
}

// BenchmarkFig1cWeakScaling measures the randomized+parallel SVD (no
// streaming, per the paper's protocol) at fixed rows per rank for
// increasing rank counts; the reported metric is weak-scaling efficiency
// versus the 1-rank bench of the same family.
func BenchmarkFig1cWeakScaling(b *testing.B) {
	b.ReportAllocs()
	baseline := map[int]float64{}
	for _, ranks := range []int{1, 2, 4, 8} {
		ranks := ranks
		b.Run(benchName("ranks", ranks), func(b *testing.B) {
			b.ReportAllocs()
			cfg := burgers.Config{L: 1, Re: 1000, Nx: 256 * ranks, Nt: 48, TFinal: 2}
			parts := cfg.Partition(ranks)
			blocks := make([]*mat.Dense, ranks)
			for r := 0; r < ranks; r++ {
				blocks[r] = cfg.SnapshotsRows(parts[r][0], parts[r][1])
			}
			opts := apmos.Options{
				K: benchK, R1: 16, R2: benchK, LowRank: true,
				RLA: rla.Options{Oversample: 10, PowerIters: 1, Seed: 7},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mpi.MustRun(ranks, func(c *mpi.Comm) {
					apmos.Decompose(c, blocks[c.Rank()], opts)
				})
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if ranks == 1 {
				baseline[1] = perOp
			}
			if t1, ok := baseline[1]; ok && perOp > 0 {
				b.ReportMetric(t1/perOp, "weak-efficiency")
			}
		})
	}
}

// BenchmarkFig2ERA5Modes regenerates the Figure 2 extraction on the
// synthetic ERA5 analogue; the metric is the cosine of extracted mode 1
// against the planted climatology (1.0 = perfect).
func BenchmarkFig2ERA5Modes(b *testing.B) {
	b.ReportAllocs()
	cfg := climate.Config{
		NLat: 19, NLon: 36, Snapshots: 240, StepHours: 24,
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := climate.New(cfg)
	parts := partitionN(cfg.M(), benchRanks)
	blocks := make([][]*mat.Dense, benchRanks)
	const batch = 60
	for r := 0; r < benchRanks; r++ {
		for off := 0; off < cfg.Snapshots; off += batch {
			blocks[r] = append(blocks[r], gen.RowBlock(parts[r][0], parts[r][1], off, off+batch))
		}
	}
	b.ResetTimer()
	var cos float64
	for i := 0; i < b.N; i++ {
		var mu sync.Mutex
		var modes *mat.Dense
		mpi.MustRun(benchRanks, func(c *mpi.Comm) {
			eng := core.NewParallel(c, core.Options{K: 6, ForgetFactor: 0.95, LowRank: true})
			for bi, blk := range blocks[c.Rank()] {
				if bi == 0 {
					eng.Initialize(blk)
				} else {
					eng.IncorporateData(blk)
				}
			}
			gathered := eng.GatherModes()
			if c.Rank() == 0 {
				mu.Lock()
				modes = gathered
				mu.Unlock()
			}
		})
		cos = absCos(modes.Col(0), gen.MeanField())
	}
	b.ReportMetric(cos, "mode1-cosine")
}

// BenchmarkAblationForgetFactor (A1) sweeps Algorithm 1's ff and reports
// the deviation of the streamed σ₁ from the one-shot σ₁.
func BenchmarkAblationForgetFactor(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 1024, Nt: 120, TFinal: 2}
	_, sBatch, _ := linalg.SVD(cfg.Snapshots())
	for _, ff := range []float64{0.80, 0.90, 0.95, 1.00} {
		ff := ff
		b.Run(benchFloat("ff", ff), func(b *testing.B) {
			b.ReportAllocs()
			var dev float64
			for i := 0; i < b.N; i++ {
				eng := runSerialBurgers(cfg, benchK, 30, ff)
				dev = abs(eng.SingularValues()[0]-sBatch[0]) / sBatch[0]
			}
			b.ReportMetric(dev, "sigma1-rel-dev")
		})
	}
}

// BenchmarkAblationTruncation (A2) sweeps the APMOS r1 gather truncation
// and reports both time and the σ₁ deviation from the exact value — the
// paper's stated accuracy/communication trade-off.
func BenchmarkAblationTruncation(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 2048, Nt: 96, TFinal: 2}
	parts := cfg.Partition(benchRanks)
	blocks := make([]*mat.Dense, benchRanks)
	for r := 0; r < benchRanks; r++ {
		blocks[r] = cfg.SnapshotsRows(parts[r][0], parts[r][1])
	}
	_, sExact, _ := linalg.SVD(cfg.Snapshots())
	for _, r1 := range []int{4, 8, 16, 48, 96} {
		r1 := r1
		b.Run(benchName("r1", r1), func(b *testing.B) {
			b.ReportAllocs()
			var dev float64
			for i := 0; i < b.N; i++ {
				var mu sync.Mutex
				var s []float64
				mpi.MustRun(benchRanks, func(c *mpi.Comm) {
					_, sv := apmos.Decompose(c, blocks[c.Rank()],
						apmos.Options{K: 5, R1: r1, R2: 5})
					if c.Rank() == 0 {
						mu.Lock()
						s = sv
						mu.Unlock()
					}
				})
				dev = abs(s[0]-sExact[0]) / sExact[0]
			}
			b.ReportMetric(dev, "sigma1-rel-dev")
		})
	}
}

// BenchmarkAblationRandomized (A3) compares the deterministic and
// randomized SVD inside the same pipeline (paper §3.3's acceleration).
func BenchmarkAblationRandomized(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 2048, Nt: 96, TFinal: 2}
	a := cfg.Snapshots()
	b.Run("deterministic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.SVDTruncated(a, benchK)
		}
	})
	b.Run("randomized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rla.RandomizedSVD(a, benchK, rla.DefaultOptions())
		}
	})
}

// BenchmarkAblationTSQR (A4) compares the paper's gather-at-root
// distributed QR with the tree-reduction variant of its reference [32].
func BenchmarkAblationTSQR(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 4096, Nt: 48, TFinal: 2}
	parts := cfg.Partition(8)
	blocks := make([]*mat.Dense, 8)
	for r := 0; r < 8; r++ {
		blocks[r] = cfg.SnapshotsRows(parts[r][0], parts[r][1])
	}
	b.Run("gather", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mpi.MustRun(8, func(c *mpi.Comm) {
				tsqr.GatherQR(c, blocks[c.Rank()])
			})
		}
	})
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mpi.MustRun(8, func(c *mpi.Comm) {
				tsqr.TreeQR(c, blocks[c.Rank()])
			})
		}
	})
}

// BenchmarkAblationBatchSize (A5) sweeps the streaming batch size at fixed
// total snapshot count: smaller batches mean more, cheaper updates.
func BenchmarkAblationBatchSize(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 2048, Nt: 120, TFinal: 2}
	for _, batch := range []int{20, 40, 60, 120} {
		batch := batch
		b.Run(benchName("batch", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runSerialBurgers(cfg, benchK, batch, 0.95)
			}
		})
	}
}

// BenchmarkStreamingUpdate isolates one IncorporateData call — the
// steady-state cost of the online algorithm (Algorithm 1 steps 1–5).
func BenchmarkStreamingUpdate(b *testing.B) {
	b.ReportAllocs()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 4096, Nt: 80, TFinal: 2}
	first := cfg.SnapshotsCols(0, 40)
	next := cfg.SnapshotsCols(40, 80)
	s := stream.New(stream.Options{K: benchK, FF: 0.95}).Initialize(first)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IncorporateData(next)
	}
}

func partitionN(n, p int) [][2]int {
	out := make([][2]int, p)
	base, rem := n/p, n%p
	off := 0
	for r := 0; r < p; r++ {
		s := base
		if r < rem {
			s++
		}
		out[r] = [2]int{off, off + s}
		off += s
	}
	return out
}

func absCos(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return math.Abs(dot) / math.Sqrt(na*nb)
}

func abs(x float64) float64 { return math.Abs(x) }

func benchName(key string, v int) string { return fmt.Sprintf("%s=%d", key, v) }

func benchFloat(key string, v float64) string { return fmt.Sprintf("%s=%.2f", key, v) }
