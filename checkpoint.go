package parsvd

import (
	"errors"
	"fmt"
	"io"

	"goparsvd/internal/core"
)

// ErrBadCheckpoint is returned by Load for data that is not a goparsvd
// checkpoint or is structurally damaged.
var ErrBadCheckpoint = core.ErrBadCheckpoint

// Load reconstructs a decomposition from a checkpoint written by Save (or
// by the engine-level writer): a serial-backend SVD holding the global
// modes, singular values and counters, ready to continue streaming with
// Push or Fit. Checkpoints of parallel and distributed runs were gathered
// to global state at Save time (for distributed runs, rank 0 of the
// worker fleet assembled them), so they load the same way.
func Load(r io.Reader) (*SVD, error) {
	if r == nil {
		return nil, errors.New("parsvd: Load with nil reader")
	}
	st, err := core.ReadState(r)
	if err != nil {
		return nil, fmt.Errorf("parsvd: %w", err)
	}
	eng, err := core.RestoreSerial(st.Opts, st.Modes, st.Singular,
		st.Iterations, st.Snapshots)
	if err != nil {
		return nil, fmt.Errorf("parsvd: %w: %v", ErrBadCheckpoint, err)
	}
	opts := eng.Options()
	cfg := defaultConfig()
	cfg.k = opts.K
	cfg.ff = opts.ForgetFactor
	cfg.lowRank = opts.LowRank
	cfg.rlaOpts = opts.RLA
	cfg.r1 = opts.R1
	cfg.method = opts.Method
	// A shard-stamped checkpoint resumes as the same shard: its saves
	// keep the mark and merges keep refusing its siblings' duplicates.
	cfg.shard = st.Shard
	s := &SVD{cfg: cfg, eng: restoredSerialEngine(eng)}
	// Rehydrate the ingest counters so Stats keeps reporting across a
	// checkpoint/restore boundary.
	s.rows = eng.Modes().Rows()
	s.snapshots = eng.SnapshotsSeen()
	s.updates = int64(eng.Iterations()) + 1 // Initialize counted as an update
	return s, nil
}
