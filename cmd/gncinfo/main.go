// Command gncinfo inspects GNC container files (the self-describing
// format written by the climate pipeline) in the spirit of ncdump:
// dimensions, variables with attributes, global attributes, and optional
// per-variable statistics.
//
//	gncinfo file.gnc            # schema only
//	gncinfo -stats file.gnc     # plus min/mean/max per variable
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"goparsvd/internal/ncio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gncinfo: ")
	stats := flag.Bool("stats", false, "compute per-variable min/mean/max")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: gncinfo [-stats] <file.gnc>")
	}
	path := flag.Arg(0)

	f, err := ncio.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Printf("gnc %s {\n", path)
	fmt.Println("dimensions:")
	for _, d := range f.Dims() {
		fmt.Printf("\t%s = %d ;\n", d.Name, d.Size)
	}
	fmt.Println("variables:")
	for _, name := range f.Vars() {
		v, _ := f.Var(name)
		fmt.Printf("\t%s %s(%s) ;\n", v.DType, name, joinDims(v.Dims))
		for _, k := range sortedKeys(v.Attrs) {
			fmt.Printf("\t\t%s:%s = %q ;\n", name, k, v.Attrs[k])
		}
		if *stats {
			data, err := f.ReadVar(name)
			if err != nil {
				log.Fatal(err)
			}
			lo, hi, mean := summarize(data)
			fmt.Printf("\t\t// %d values, min %.6g, mean %.6g, max %.6g\n",
				len(data), lo, mean, hi)
		}
	}
	fmt.Println("// global attributes:")
	attrs := f.GlobalAttrs()
	for _, k := range sortedKeys(attrs) {
		fmt.Printf("\t\t:%s = %q ;\n", k, attrs[k])
	}
	fmt.Println("}")
}

func joinDims(dims []string) string {
	out := ""
	for i, d := range dims {
		if i > 0 {
			out += ", "
		}
		out += d
	}
	return out
}

func summarize(data []float64) (lo, hi, mean float64) {
	if len(data) == 0 {
		return 0, 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	return lo, hi, sum / float64(len(data))
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
