// Command parsvd-benchtraj records and compares benchmark trajectories.
// It is the self-contained replacement for benchstat that the CI
// bench-trajectory job runs on every push:
//
//	go test ./... -bench <pat> -benchmem -count 5 | parsvd-benchtraj emit -runid "$GITHUB_RUN_ID" -o BENCH_$GITHUB_RUN_ID.json
//	parsvd-benchtraj compare -baseline BENCH_baseline.json -current BENCH_$GITHUB_RUN_ID.json
//
// emit parses `go test -bench` output from stdin into a JSON run record:
// every sample of every benchmark, plus the environment (goos, goarch, the
// cpu line and the active GEMM micro-kernel) the numbers were taken on.
//
// compare judges a current run against a committed baseline:
//
//   - any increase in median allocs/op fails, on any machine — allocation
//     counts are deterministic, so this gate always holds;
//   - a median ns/op regression beyond -max-regress percent (default 10)
//     fails when the two runs come from matching environments (or always,
//     with -strict); timings from different machines are reported but not
//     gated, since a laptop baseline says nothing about a CI runner.
//
// The exit status is 1 when any gate fails, so the CI job fails with it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"goparsvd/internal/mat"
)

// Run is one recorded benchmark session.
type Run struct {
	RunID   string  `json:"runid"`
	GoOS    string  `json:"goos"`
	GoArch  string  `json:"goarch"`
	CPU     string  `json:"cpu"`
	Kernel  string  `json:"kernel"`
	Benches []Bench `json:"benchmarks"`
}

// Bench holds every sample of one benchmark (multiple with -count).
type Bench struct {
	Name     string    `json:"name"`
	NsOp     []float64 `json:"ns_op"`
	BytesOp  []float64 `json:"bytes_op"`
	AllocsOp []float64 `json:"allocs_op"`
	// WireBPush is the custom wire-B/push metric the sketched-push
	// benchmarks report: bytes per push that cross the ingest wire.
	// -1 when the benchmark does not report it.
	WireBPush []float64 `json:"wire_b_push,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		cmdEmit(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  go test -bench ... -benchmem | parsvd-benchtraj emit -runid ID [-o FILE]
  parsvd-benchtraj compare -baseline FILE -current FILE [-max-regress PCT] [-strict]`)
	os.Exit(2)
}

func cmdEmit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	runid := fs.String("runid", "local", "identifier stamped into the record")
	out := fs.String("o", "", "output file (default BENCH_<runid>.json)")
	fs.Parse(args)

	run, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatal(err)
	}
	run.RunID = *runid
	run.Kernel = mat.KernelName()
	if len(run.Benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *runid + ".json"
	}
	data, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "recorded %d benchmarks to %s\n", len(run.Benches), path)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_baseline.json", "baseline run record")
	curPath := fs.String("current", "", "current run record")
	maxRegress := fs.Float64("max-regress", 10, "max tolerated median ns/op regression, percent")
	strict := fs.Bool("strict", false, "gate ns/op even across differing environments")
	fs.Parse(args)
	if *curPath == "" {
		usage()
	}
	base, err := loadRun(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadRun(*curPath)
	if err != nil {
		fatal(err)
	}
	report, failures := compareRuns(base, cur, *maxRegress, *strict)
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nFAIL: %d benchmark gate(s) violated:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("\nall benchmark gates passed")
}

func loadRun(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// parseBenchOutput scans `go test -bench` output and collects every
// benchmark sample plus the environment header lines.
func parseBenchOutput(r io.Reader) (*Run, error) {
	run := &Run{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	byName := map[string]*Bench{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		name, ns, bytesOp, allocs, wire, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b := byName[name]
		if b == nil {
			b = &Bench{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		b.NsOp = append(b.NsOp, ns)
		b.BytesOp = append(b.BytesOp, bytesOp)
		b.AllocsOp = append(b.AllocsOp, allocs)
		b.WireBPush = append(b.WireBPush, wire)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, n := range order {
		run.Benches = append(run.Benches, *byName[n])
	}
	return run, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkMulIntoSquare256-8   2940   841887 ns/op   0 B/op   0 allocs/op
//
// The -P GOMAXPROCS suffix is stripped so records from hosts with different
// core counts compare. Lines without -benchmem report no B/op / allocs/op;
// those record -1 ("unknown"), which the alloc gate treats as absent. The
// same sentinel covers wire-B/push, the custom b.ReportMetric unit of the
// sketched-push traffic benchmarks.
func parseBenchLine(line string) (name string, ns, bytesOp, allocs, wire float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, 0, 0, 0, false
	}
	name = f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	ns, bytesOp, allocs, wire = -1, -1, -1, -1
	for i := 2; i < len(f); i++ {
		v, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			continue
		}
		switch f[i] {
		case "ns/op":
			ns = v
		case "B/op":
			bytesOp = v
		case "allocs/op":
			allocs = v
		case "wire-B/push":
			wire = v
		}
	}
	if ns < 0 {
		return "", 0, 0, 0, 0, false
	}
	return name, ns, bytesOp, allocs, wire, true
}

// wireCell renders the wire-B/push column: most benchmarks don't report
// the metric, so the -1 sentinel shows as "-".
func wireCell(v float64) string {
	if v < 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return -1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// envMatches reports whether two runs were taken on comparable hardware and
// kernel configuration, making their timings directly comparable.
func envMatches(a, b *Run) bool {
	return a.GoOS == b.GoOS && a.GoArch == b.GoArch && a.CPU == b.CPU && a.Kernel == b.Kernel
}

// compareRuns renders a trajectory table and returns the gate violations.
func compareRuns(base, cur *Run, maxRegress float64, strict bool) (string, []string) {
	var b strings.Builder
	var failures []string
	gateNs := strict || envMatches(base, cur)
	fmt.Fprintf(&b, "baseline %s (%s/%s, %s, kernel %s)\n", base.RunID, base.GoOS, base.GoArch, base.CPU, base.Kernel)
	fmt.Fprintf(&b, "current  %s (%s/%s, %s, kernel %s)\n", cur.RunID, cur.GoOS, cur.GoArch, cur.CPU, cur.Kernel)
	if !gateNs {
		fmt.Fprintf(&b, "environments differ: ns/op reported but not gated (use -strict to gate anyway)\n")
	}
	fmt.Fprintf(&b, "\n%-52s %14s %14s %8s %10s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "wire-B/push")

	baseBy := map[string]*Bench{}
	for i := range base.Benches {
		baseBy[base.Benches[i].Name] = &base.Benches[i]
	}
	for i := range cur.Benches {
		cb := &cur.Benches[i]
		bb := baseBy[cb.Name]
		if bb == nil {
			fmt.Fprintf(&b, "%-52s %14s %14.0f %8s %10.0f %12s  (new)\n",
				cb.Name, "-", median(cb.NsOp), "-", median(cb.AllocsOp), wireCell(median(cb.WireBPush)))
			continue
		}
		oldNs, newNs := median(bb.NsOp), median(cb.NsOp)
		delta := 100 * (newNs - oldNs) / oldNs
		oldAllocs, newAllocs := median(bb.AllocsOp), median(cb.AllocsOp)
		oldWire, newWire := median(bb.WireBPush), median(cb.WireBPush)
		mark := ""
		if gateNs && delta > maxRegress {
			mark = "  REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, limit +%.1f%%)",
					cb.Name, oldNs, newNs, delta, maxRegress))
		}
		if oldAllocs >= 0 && newAllocs > oldAllocs {
			mark += "  ALLOC-INCREASE"
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f", cb.Name, oldAllocs, newAllocs))
		}
		// Wire traffic per push is deterministic (a geometry, not a
		// timing), so any increase is a real compression regression and
		// gates on every machine — the same contract as allocs/op.
		if oldWire >= 0 && newWire > oldWire {
			mark += "  WIRE-INCREASE"
			failures = append(failures,
				fmt.Sprintf("%s: wire-B/push %.0f -> %.0f", cb.Name, oldWire, newWire))
		}
		fmt.Fprintf(&b, "%-52s %14.0f %14.0f %+7.1f%% %10.0f %12s%s\n",
			cb.Name, oldNs, newNs, delta, newAllocs, wireCell(newWire), mark)
	}
	for _, bb := range base.Benches {
		found := false
		for _, cb := range cur.Benches {
			if cb.Name == bb.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(&b, "%-52s %14.0f %14s — vanished from the current run\n",
				bb.Name, median(bb.NsOp), "-")
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current run", bb.Name))
		}
	}
	return b.String(), failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtraj:", err)
	os.Exit(1)
}
