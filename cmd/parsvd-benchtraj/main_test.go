package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: goparsvd/internal/mat
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMulIntoSquare256 	    2940	    841887 ns/op	       0 B/op	       0 allocs/op
BenchmarkMulIntoSquare256 	    2900	    850000 ns/op	       0 B/op	       0 allocs/op
BenchmarkMulIntoSquare256 	    2950	    839000 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatchedSkinny-8  	    2794	    459686 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMemStats       	     100	     12345 ns/op
BenchmarkSketchedPushWire-8	      50	   1234567 ns/op	     34816 wire-B/push	    2048 B/op	      12 allocs/op
PASS
ok  	goparsvd/internal/mat	9.2s
`

func parseSample(t *testing.T) *Run {
	t.Helper()
	run, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestParseBenchOutput(t *testing.T) {
	run := parseSample(t)
	if run.GoOS != "linux" || run.GoArch != "amd64" {
		t.Errorf("env parsed as %s/%s", run.GoOS, run.GoArch)
	}
	if !strings.Contains(run.CPU, "Xeon") {
		t.Errorf("cpu line lost: %q", run.CPU)
	}
	if len(run.Benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(run.Benches))
	}
	sq := run.Benches[0]
	if sq.Name != "BenchmarkMulIntoSquare256" || len(sq.NsOp) != 3 {
		t.Fatalf("first benchmark %q with %d samples", sq.Name, len(sq.NsOp))
	}
	if m := median(sq.NsOp); m != 841887 {
		t.Errorf("median ns/op = %g, want 841887", m)
	}
	// The -P suffix must be stripped so runs from different hosts compare.
	if run.Benches[1].Name != "BenchmarkBatchedSkinny" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", run.Benches[1].Name)
	}
	// Without -benchmem the alloc stats are unknown, not zero.
	if a := run.Benches[2].AllocsOp[0]; a != -1 {
		t.Errorf("missing allocs/op recorded as %g, want -1 sentinel", a)
	}
	// The custom wire-B/push metric is captured; benchmarks that don't
	// report it carry the -1 sentinel.
	if w := run.Benches[3].WireBPush[0]; w != 34816 {
		t.Errorf("wire-B/push recorded as %g, want 34816", w)
	}
	if w := run.Benches[0].WireBPush[0]; w != -1 {
		t.Errorf("missing wire-B/push recorded as %g, want -1 sentinel", w)
	}
}

// regress returns a copy of run with one benchmark's timings and allocs
// scaled/offset — the injection harness for the gate tests.
func regress(run *Run, name string, nsFactor float64, allocDelta float64) *Run {
	out := *run
	out.Benches = append([]Bench(nil), run.Benches...)
	for i := range out.Benches {
		if out.Benches[i].Name != name {
			continue
		}
		b := out.Benches[i]
		ns := make([]float64, len(b.NsOp))
		for j, v := range b.NsOp {
			ns[j] = v * nsFactor
		}
		al := make([]float64, len(b.AllocsOp))
		for j, v := range b.AllocsOp {
			al[j] = v + allocDelta
		}
		out.Benches[i].NsOp = ns
		out.Benches[i].AllocsOp = al
	}
	return &out
}

// TestInjectedNsRegressionFails is the acceptance demonstration: a run 12%
// slower than baseline on the same machine must fail the 10% gate.
func TestInjectedNsRegressionFails(t *testing.T) {
	base := parseSample(t)
	cur := regress(base, "BenchmarkMulIntoSquare256", 1.12, 0)
	report, failures := compareRuns(base, cur, 10, false)
	if len(failures) != 1 {
		t.Fatalf("want exactly 1 failure, got %d\n%s", len(failures), report)
	}
	if !strings.Contains(failures[0], "BenchmarkMulIntoSquare256") {
		t.Errorf("failure names wrong benchmark: %s", failures[0])
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", report)
	}
}

// TestWithinThresholdPasses: a 5% drift on the same machine is noise, not a
// gate violation.
func TestWithinThresholdPasses(t *testing.T) {
	base := parseSample(t)
	cur := regress(base, "BenchmarkMulIntoSquare256", 1.05, 0)
	if _, failures := compareRuns(base, cur, 10, false); len(failures) != 0 {
		t.Fatalf("5%% drift failed the 10%% gate: %v", failures)
	}
}

// TestAllocIncreaseAlwaysFails: one extra alloc/op fails even when the
// environments differ, because allocation counts are machine-independent.
func TestAllocIncreaseAlwaysFails(t *testing.T) {
	base := parseSample(t)
	cur := regress(base, "BenchmarkBatchedSkinny", 1.0, 1)
	cur.CPU = "entirely different silicon"
	report, failures := compareRuns(base, cur, 10, false)
	if len(failures) != 1 {
		t.Fatalf("want 1 failure, got %d\n%s", len(failures), report)
	}
	if !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("failure is not the alloc gate: %s", failures[0])
	}
}

// TestWireIncreaseAlwaysFails: wire bytes per push are deterministic
// geometry, so any increase gates even across differing environments.
func TestWireIncreaseAlwaysFails(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	cur.CPU = "entirely different silicon"
	for i := range cur.Benches {
		if cur.Benches[i].Name != "BenchmarkSketchedPushWire" {
			continue
		}
		w := make([]float64, len(cur.Benches[i].WireBPush))
		for j, v := range cur.Benches[i].WireBPush {
			w[j] = v * 2
		}
		cur.Benches[i].WireBPush = w
	}
	report, failures := compareRuns(base, cur, 10, false)
	if len(failures) != 1 {
		t.Fatalf("want 1 failure, got %d\n%s", len(failures), report)
	}
	if !strings.Contains(failures[0], "wire-B/push") {
		t.Errorf("failure is not the wire gate: %s", failures[0])
	}
	if !strings.Contains(report, "WIRE-INCREASE") {
		t.Errorf("report does not flag the wire increase:\n%s", report)
	}
}

// TestCrossMachineNsNotGated: a huge slowdown on different hardware is
// reported but does not fail, unless -strict.
func TestCrossMachineNsNotGated(t *testing.T) {
	base := parseSample(t)
	cur := regress(base, "BenchmarkMulIntoSquare256", 3.0, 0)
	cur.CPU = "entirely different silicon"
	report, failures := compareRuns(base, cur, 10, false)
	if len(failures) != 0 {
		t.Fatalf("cross-machine timing was gated: %v", failures)
	}
	if !strings.Contains(report, "not gated") {
		t.Errorf("report does not explain the skipped gate:\n%s", report)
	}
	if _, failures := compareRuns(base, cur, 10, true); len(failures) != 1 {
		t.Error("-strict did not gate the cross-machine regression")
	}
}

// TestVanishedBenchmarkFails: silently dropping a gated benchmark must not
// pass the trajectory check.
func TestVanishedBenchmarkFails(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	cur.Benches = cur.Benches[:1]
	_, failures := compareRuns(base, cur, 10, false)
	if len(failures) != 3 {
		t.Fatalf("want 3 missing-benchmark failures, got %d: %v", len(failures), failures)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if m := median(nil); m != -1 {
		t.Errorf("empty median = %g", m)
	}
}
