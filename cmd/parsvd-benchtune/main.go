// Command parsvd-benchtune measures the per-shape kernel-selection
// thresholds on the host CPU and regenerates internal/mat/seltab_gen.go.
//
// For every micro-kernel the host can execute it measures:
//
//   - SmallFlops: the naive-loop/blocked-path crossover, by timing
//     RefMulInto against BlockedMulInto on growing cubes;
//   - SkinnyN: the narrow-tile fallback threshold (kernels with a narrow
//     sibling only), by timing tall-skinny products with the fallback
//     pinned off and pinned on;
//   - PanelRows: the PanelBatch split granularity, by timing a tall
//     mode-update product split at each candidate row count.
//
// ParallelFlops and BatchSpanFlops keep their conservative defaults: they
// gate worker-pool fan-out, which a tuning run on a saturated or
// single-CPU host cannot measure representatively.
//
// Kernels the host cannot run (e.g. neon-8x4 on an amd64 host) keep the
// defaults, clearly marked in the generated file. Usage:
//
//	go run ./cmd/parsvd-benchtune -o internal/mat/seltab_gen.go
//
// or `make benchtune` from the repository root. Commit the regenerated
// file; it is plain Go and carries its provenance in comments.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"goparsvd/internal/mat"
)

// knownKernels is every kernel name any platform can dispatch; the
// generated table carries an entry for each so cross-compiled builds never
// fall through to the hard-coded defaults silently.
var knownKernels = []string{"avx512-8x8", "avx2-8x4", "neon-8x4", "go-8x4"}

type params struct {
	SmallFlops     int
	SkinnyN        int
	ParallelFlops  int
	PanelRows      int
	BatchSpanFlops int
}

var defaults = params{
	SmallFlops:     16 * 16 * 16,
	SkinnyN:        6,
	ParallelFlops:  1 << 20,
	PanelRows:      256,
	BatchSpanFlops: 1 << 20,
}

func main() {
	out := flag.String("o", "internal/mat/seltab_gen.go", "output file ('-' for stdout)")
	minDur := flag.Duration("mintime", 20*time.Millisecond, "minimum measurement time per point")
	flag.Parse()

	measured := map[string]params{}
	notes := map[string]string{}
	for _, name := range mat.AvailableKernels() {
		fmt.Fprintf(os.Stderr, "tuning %s ...\n", name)
		restore, ok := mat.ForceKernel(name)
		if !ok {
			continue
		}
		p := defaults
		p.SmallFlops = tuneSmallFlops(*minDur)
		if mat.KernelHasNarrow(name) {
			p.SkinnyN = tuneSkinnyN(*minDur)
		}
		p.PanelRows = tunePanelRows(*minDur)
		restore()
		measured[name] = p
		notes[name] = fmt.Sprintf("measured %s/%s, %s",
			runtime.GOOS, runtime.GOARCH, time.Now().Format("2006-01-02"))
	}

	src := render(measured, notes)
	if *out == "-" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchtune:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// timeIt returns the best-of-three per-call nanoseconds of f, with each
// sample running at least minDur.
func timeIt(minDur time.Duration, f func()) float64 {
	f() // warm caches, pools and kernel workers
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		n := 1
		for {
			start := time.Now()
			for i := 0; i < n; i++ {
				f()
			}
			el := time.Since(start)
			if el >= minDur {
				per := float64(el.Nanoseconds()) / float64(n)
				if best == 0 || per < best {
					best = per
				}
				break
			}
			n *= 2
		}
	}
	return best
}

// tuneSmallFlops locates the cube size where the blocked path overtakes the
// naive loop and returns the largest naive-winning flop count.
func tuneSmallFlops(minDur time.Duration) int {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 96, 128}
	small := 4 * 4 * 4
	for _, s := range sizes {
		a := randomDense(s, s, rng)
		b := randomDense(s, s, rng)
		out := mat.New(s, s)
		naive := timeIt(minDur, func() { mat.RefMulInto(out, a, b) })
		blocked := timeIt(minDur, func() { mat.BlockedMulInto(out, a, b) })
		fmt.Fprintf(os.Stderr, "  small %2d^3: naive %8.0f ns  blocked %8.0f ns\n", s, naive, blocked)
		if blocked < naive {
			break
		}
		small = s * s * s
	}
	// The naive loop must never shadow the worker-pool fan-out: products
	// above ParallelFlops belong to the blocked path even if a single
	// thread would run them faster naively.
	if small > defaults.ParallelFlops/2 {
		small = defaults.ParallelFlops / 2
	}
	return small
}

// tuneSkinnyN times tall-skinny products with the narrow fallback pinned
// off (wide tile) and pinned on (narrow tile) and returns the smallest n
// where the wide tile wins.
func tuneSkinnyN(minDur time.Duration) int {
	rng := rand.New(rand.NewSource(2))
	const m, k = 2048, 64
	a := randomDense(m, k, rng)
	skinny := 13 // past the sweep: narrow always won
	for n := 2; n <= 12; n++ {
		b := randomDense(k, n, rng)
		out := mat.New(m, n)
		restoreWide := mat.SetSkinnyN(0)
		wide := timeIt(minDur, func() { mat.BlockedMulInto(out, a, b) })
		restoreWide()
		restoreNarrow := mat.SetSkinnyN(1 << 30)
		narrow := timeIt(minDur, func() { mat.BlockedMulInto(out, a, b) })
		restoreNarrow()
		fmt.Fprintf(os.Stderr, "  skinny n=%2d: wide %8.0f ns  narrow %8.0f ns\n", n, wide, narrow)
		if wide <= narrow {
			skinny = n
			break
		}
	}
	return skinny
}

// tunePanelRows times a tall mode-update product split at each candidate
// panel height through the batched path and returns the fastest. Candidates
// are multiples of the mc cache block so panel splits preserve the blocked
// path's numerics.
func tunePanelRows(minDur time.Duration) int {
	rng := rand.New(rand.NewSource(3))
	const m, k, n = 8192, 64, 16
	a := randomDense(m, k, rng)
	b := randomDense(k, n, rng)
	out := mat.New(m, n)
	type cand struct {
		rows int
		ns   float64
	}
	var cands []cand
	for _, pr := range []int{128, 256, 384, 512, 768, 1024} {
		nPanels := m / pr
		dsts := make([]*mat.Dense, nPanels)
		as := make([]*mat.Dense, nPanels)
		dstHdr := make([]mat.Dense, nPanels)
		aHdr := make([]mat.Dense, nPanels)
		for p := 0; p < nPanels; p++ {
			r0, r1 := p*pr, (p+1)*pr
			if p == nPanels-1 {
				r1 = m
			}
			out.ViewRows(r0, r1, &dstHdr[p])
			a.ViewRows(r0, r1, &aHdr[p])
			dsts[p] = &dstHdr[p]
			as[p] = &aHdr[p]
		}
		ns := timeIt(minDur, func() { mat.BatchedMulInto(dsts, as, b) })
		fmt.Fprintf(os.Stderr, "  panel %4d rows: %8.0f ns\n", pr, ns)
		cands = append(cands, cand{pr, ns})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ns < cands[j].ns })
	return cands[0].rows
}

func randomDense(r, c int, rng *rand.Rand) *mat.Dense {
	m := mat.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// render emits the seltab_gen.go source with measured entries where
// available and marked defaults elsewhere.
func render(measured map[string]params, notes map[string]string) string {
	var b strings.Builder
	b.WriteString(`// Code generated by parsvd-benchtune. DO NOT EDIT.
//
// Per-shape kernel selection thresholds, measured on the machine named in
// the header comment of each entry. Regenerate with ` + "`make benchtune`" + `
// (which runs cmd/parsvd-benchtune and rewrites this file); entries for
// ISAs the tuning host cannot execute keep conservative defaults.

package mat

// selParams are the per-shape path-selection thresholds for one
// micro-kernel. All flop counts are m·k·n products.
type selParams struct {
	// SmallFlops: products at or below this route to the naive i-k-j
	// loop, where packing overhead outweighs the micro-kernel win.
	SmallFlops int
	// SkinnyN: products with fewer than this many output columns fall
	// back from a wide tile to the kernel's narrow sibling (no-op for
	// kernels without one).
	SkinnyN int
	// ParallelFlops: single products above this fan their A-panel row
	// blocks out across the worker pool.
	ParallelFlops int
	// PanelRows is the row granularity PanelBatch splits tall mode-update
	// products into before feeding them to the batched path.
	PanelRows int
	// BatchSpanFlops: batched calls whose total flops (summed across the
	// batch) exceed this fan items out across the worker pool.
	BatchSpanFlops int
}

// defaultSelParams is used for kernels without a measured table entry.
var defaultSelParams = selParams{
	SmallFlops:     16 * 16 * 16,
	SkinnyN:        6,
	ParallelFlops:  1 << 20,
	PanelRows:      256,
	BatchSpanFlops: 1 << 20,
}

// selTables maps kernel name → measured thresholds.
var selTables = map[string]selParams{
`)
	for _, name := range knownKernels {
		if p, ok := measured[name]; ok {
			fmt.Fprintf(&b, "\t// %s\n", notes[name])
			fmt.Fprintf(&b, "\t%q: {SmallFlops: %d, SkinnyN: %d, ParallelFlops: %d, PanelRows: %d, BatchSpanFlops: %d},\n",
				name, p.SmallFlops, p.SkinnyN, p.ParallelFlops, p.PanelRows, p.BatchSpanFlops)
		} else {
			fmt.Fprintf(&b, "\t// Not measurable on the tuning host; conservative defaults.\n")
			fmt.Fprintf(&b, "\t%q: defaultSelParams,\n", name)
		}
	}
	b.WriteString(`}

// selFor returns the selection thresholds for the named kernel.
func selFor(name string) selParams {
	if p, ok := selTables[name]; ok {
		return p
	}
	return defaultSelParams
}
`)
	return b.String()
}
