// Command parsvd-burgers reproduces Figures 1(a) and 1(b) of the PyParSVD
// paper: coherent structures (SVD modes) of the viscous Burgers equation,
// computed with the serial streaming SVD and with the distributed
// randomized+parallel streaming SVD (both through the public parsvd
// facade), overlaid and differenced.
//
// The defaults match the paper's configuration: a 16384-point grid, 800
// snapshots on t ∈ [0, 2] at Re = 1000, 4 ranks, K = 10 modes, forget
// factor 0.95, r1 = 50.
//
// Outputs (in -outdir):
//
//	fig1a_mode1.csv   x, serial mode 1, parallel mode 1
//	fig1b_mode2.csv   x, serial mode 2, parallel mode 2
//	singular_values.csv
//
// plus ASCII overlays and an error table on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	parsvd "goparsvd"
	"goparsvd/datasets"
	"goparsvd/postproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-burgers: ")

	var (
		nx     = flag.Int("nx", 16384, "grid points (paper: 16384)")
		nt     = flag.Int("nt", 800, "snapshots (paper: 800)")
		re     = flag.Float64("re", 1000, "Reynolds number (paper: 1000)")
		ranks  = flag.Int("ranks", 4, "parallel ranks (paper: 4)")
		k      = flag.Int("k", 10, "retained modes K")
		batch  = flag.Int("batch", 100, "snapshots per streaming batch")
		ff     = flag.Float64("ff", 0.95, "forget factor (paper: 0.95)")
		r1     = flag.Int("r1", 50, "APMOS gather truncation (paper: 50)")
		lowRnk = flag.Bool("lowrank", true, "use randomized SVDs in the parallel path")
		outdir = flag.String("outdir", "out/burgers", "output directory")
	)
	flag.Parse()

	cfg := datasets.Burgers(*nx, *nt, *re)
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	log.Printf("workload: %d x %d Burgers snapshot matrix, Re=%g", *nx, *nt, *re)
	a := cfg.Snapshots()
	ctx := context.Background()

	// Serial streaming SVD over batches of columns.
	serial, err := parsvd.New(parsvd.WithModes(*k), parsvd.WithForgetFactor(*ff))
	if err != nil {
		log.Fatal(err)
	}
	tSerial := time.Now()
	sres, err := serial.Fit(ctx, parsvd.FromMatrix(a, *batch))
	if err != nil {
		log.Fatal(err)
	}
	serialSecs := time.Since(tSerial).Seconds()
	log.Printf("serial streaming SVD: %.2fs (%d iterations)", serialSecs, sres.Iterations)

	// Parallel streaming SVD: the facade partitions rows across ranks.
	parOpts := []parsvd.Option{
		parsvd.WithModes(*k), parsvd.WithForgetFactor(*ff),
		parsvd.WithInitRank(*r1),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(*ranks),
	}
	if *lowRnk {
		parOpts = append(parOpts, parsvd.WithLowRank())
	}
	par, err := parsvd.New(parOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer par.Close()
	tPar := time.Now()
	pres, err := par.Fit(ctx, parsvd.FromMatrix(a, *batch))
	if err != nil {
		log.Fatal(err)
	}
	parSecs := time.Since(tPar).Seconds()
	stats := par.Stats()
	log.Printf("parallel streaming SVD (%d ranks): %.2fs, %d messages, %.1f MB moved",
		*ranks, parSecs, stats.Messages, float64(stats.Bytes)/1e6)

	// Align and compare (Figure 1a/1b content).
	sm := sres.Modes
	aligned := postproc.AlignSigns(sm, pres.Modes)
	errs := postproc.CompareModes(sm, pres.Modes)
	fmt.Println()
	fmt.Println("serial vs parallel mode errors (sign-aligned):")
	fmt.Printf("%5s  %12s  %12s  %10s\n", "mode", "L2", "max|diff|", "cosine")
	for _, e := range errs {
		fmt.Printf("%5d  %12.4e  %12.4e  %10.7f\n", e.Mode+1, e.L2, e.MaxAbs, e.Cosine)
	}

	fmt.Println()
	fmt.Println("singular values:")
	if err := writeCSVs(*outdir, cfg, sm, aligned, sres.Singular, pres.Singular); err != nil {
		log.Fatal(err)
	}
	postproc.SingularValueReport(os.Stdout, sres.Singular)

	plotMode(sm, aligned, 0, "Figure 1(a): mode 1, serial (*) vs parallel (+)")
	plotMode(sm, aligned, 1, "Figure 1(b): mode 2, serial (*) vs parallel (+)")

	fmt.Printf("\nwall-clock: serial %.2fs, parallel %.2fs\n", serialSecs, parSecs)
	fmt.Printf("artifacts written to %s\n", *outdir)
}

func plotMode(serial, parallel *parsvd.Matrix, mode int, title string) {
	if mode >= serial.Cols() {
		return
	}
	fmt.Println()
	postproc.ASCIIPlot(os.Stdout, title, 72, 16,
		[]string{"serial", "parallel"}, serial.Col(mode), parallel.Col(mode))
}

func writeCSVs(outdir string, cfg datasets.BurgersConfig, serial, parallel *parsvd.Matrix, sVals, pVals []float64) error {
	x := cfg.Grid()
	for _, item := range []struct {
		file string
		mode int
	}{
		{"fig1a_mode1.csv", 0},
		{"fig1b_mode2.csv", 1},
	} {
		if item.mode >= serial.Cols() {
			continue
		}
		f, err := os.Create(filepath.Join(outdir, item.file))
		if err != nil {
			return err
		}
		both := parsvd.HStack(serial.SliceCols(item.mode, item.mode+1),
			parallel.SliceCols(item.mode, item.mode+1))
		if err := postproc.WriteModesCSV(f, x, both); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(outdir, "singular_values.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	n := minInt(len(sVals), len(pVals))
	return postproc.WriteSingularValuesCSV(f, []string{"serial", "parallel"},
		sVals[:n], pVals[:n])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
