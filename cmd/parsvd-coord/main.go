// Command parsvd-coord runs a cross-node sharded fit: it partitions a
// snapshot stream into N shards dealt round-robin across a set of
// parsvd-serve nodes, fits each shard as a provenance-marked model where
// it lands, collects the N shard-stamped checkpoints and reduces them up
// the balanced pairwise merge tree into one model — written to a local
// checkpoint file, installed on a target node, or both.
//
// The stream comes from the deterministic benchmark workload
// (-workload, optionally tuned with -snapshots/-rows/-batch/-modes) or
// from a GNC container file (-gnc data.gnc -var field). Both are
// replayable, which is what arms the failover path: when a serve node
// dies mid-fit, its shards are recreated on a surviving node and refit
// from a fresh replay of the same stream, so the reduce still covers all
// N shards.
//
//	parsvd-coord -nodes http://a:8080,http://b:8080,http://c:8080 \
//	    -shards 6 -model turbulence -workload -o merged.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	parsvd "goparsvd"
	"goparsvd/coord"
	"goparsvd/server"
	"goparsvd/server/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-coord: ")

	var (
		nodes    = flag.String("nodes", "", "comma-separated serve-node base URLs (required)")
		shards   = flag.Int("shards", 0, "partition width N (default: one shard per node)")
		model    = flag.String("model", "coord", "base model name; shard i fits as <model>.s<i>of<N>")
		modes    = flag.Int("modes", 0, "truncation rank K (0 keeps the server default; -workload uses the workload's K)")
		ff       = flag.Float64("ff", 0, "forget factor in (0,1] (0 keeps the server default)")
		initRank = flag.Int("init-rank", 0, "APMOS gather truncation r1 (0 keeps the server default)")

		workload  = flag.Bool("workload", false, "stream the deterministic benchmark workload")
		snapshots = flag.Int("snapshots", 0, "override the workload snapshot count")
		rows      = flag.Int("rows", 0, "override the workload rows (grid points)")
		batch     = flag.Int("batch", 0, "batch width (-gnc default 8; 0 keeps the workload's)")
		initBatch = flag.Int("init-batch", 0, "override the workload's initialization batch width")
		gnc       = flag.String("gnc", "", "stream a variable from this GNC container file")
		variable  = flag.String("var", "", "variable name inside the -gnc file")

		out         = flag.String("o", "", "write the merged checkpoint here")
		target      = flag.String("target", "", "install the merged model on this node URL")
		targetModel = flag.String("target-model", "", "model name on -target (default: the base model name)")
		keep        = flag.Bool("keep", false, "keep the shard-local models on their nodes after the run")
		retries     = flag.Int("retries", 4, "client attempts per call (429/503 backoff)")
		timeout     = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
		quiet       = flag.Bool("q", false, "suppress the spectrum listing")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: parsvd-coord -nodes url,url,... [-shards N] [-model name] (-workload | -gnc file -var v) [-o merged.ckpt] [-target url]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	nodeList := splitNodes(*nodes)
	if len(nodeList) == 0 {
		log.Print("at least one -nodes URL is required")
		flag.Usage()
		os.Exit(2)
	}
	if *shards == 0 {
		*shards = len(nodeList)
	}

	// Build the (replayable) stream and the model template.
	var replay func() (parsvd.Source, error)
	spec := server.ModelSpec{Modes: *modes, ForgetFactor: *ff, InitRank: *initRank}
	switch {
	case *workload && *gnc != "":
		log.Fatal("-workload and -gnc are mutually exclusive")
	case *workload:
		w := parsvd.DefaultWorkload()
		if *snapshots != 0 {
			w.Snapshots = *snapshots
		}
		if *rows != 0 {
			w.RowsPerRank = *rows
		}
		if *modes != 0 {
			w.K = *modes
		}
		if *ff != 0 {
			w.FF = *ff
		}
		if *initRank != 0 {
			w.R1 = *initRank
		}
		if *batch != 0 {
			w.Batch = *batch
		}
		if *initBatch != 0 {
			w.InitBatch = *initBatch
		}
		if spec.Modes == 0 {
			spec.Modes = w.K
		}
		if spec.ForgetFactor == 0 {
			spec.ForgetFactor = w.FF
		}
		if spec.InitRank == 0 {
			spec.InitRank = w.R1
		}
		replay = func() (parsvd.Source, error) { return parsvd.FromWorkload(w, 1) }
	case *gnc != "":
		if *variable == "" {
			log.Fatal("-gnc needs -var")
		}
		b := *batch
		if b == 0 {
			b = 8
		}
		path, v := *gnc, *variable
		replay = func() (parsvd.Source, error) { return parsvd.FromNetCDF(path, v, b) }
	default:
		log.Print("pick a stream: -workload or -gnc file -var v")
		flag.Usage()
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c, err := coord.New(coord.Config{
		Nodes:  nodeList,
		Shards: *shards,
		Model:  *model,
		Spec:   spec,
		Replay: replay,
		Retry:  client.RetryPolicy{MaxAttempts: *retries},
		Keep:   *keep,
		Logf:   log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("plan over %d nodes: %s", len(nodeList), c.Plan())

	src, err := replay()
	if err != nil {
		log.Fatal(err)
	}
	merged, err := c.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	defer merged.Close()

	res, err := merged.Result()
	if err != nil {
		log.Fatal(err)
	}
	stats := merged.Stats()
	fmt.Printf("reduced %d shards: %d x %d modes, %d snapshots, %d updates\n",
		*shards, res.Modes.Rows(), res.Modes.Cols(), stats.Snapshots, stats.Updates)
	fmt.Printf("truncation bound: %.6e\n", merged.MergeBound())
	if !*quiet {
		for i, sv := range res.Singular {
			fmt.Printf("  sigma[%2d] = %.12e\n", i+1, sv)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := merged.Save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged checkpoint written to %s\n", *out)
	}
	if *target != "" {
		name := *targetModel
		if name == "" {
			name = *model
		}
		if err := coord.Install(ctx, merged, *target, name, client.RetryPolicy{MaxAttempts: *retries}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged model installed as %s on %s\n", name, *target)
	}
}

// splitNodes parses the -nodes list, dropping empty entries.
func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}
