// Command parsvd-era5 reproduces Figure 2 of the PyParSVD paper: coherent
// structures of a global surface-pressure data set extracted with the
// parallel streaming SVD through the public parsvd facade, including the
// file-backed I/O stage (the snapshot matrix is streamed back out of a
// self-describing container batch by batch).
//
// The real ERA5 reanalysis is a gated download, so the data set is the
// synthetic equivalent from goparsvd/datasets, whose leading coherent
// structures are known by construction (see DESIGN.md). That turns
// Figure 2 from a visual result into a checkable one: the extracted mode 1
// must match the climatological mean structure and mode 2 the annual-cycle
// pattern, and the command reports both cosine similarities.
//
// Pipeline: generate → write GNC file (time×lat×lon) → stream the file
// through the Parallel backend via parsvd.FromNetCDF → PGM heatmaps + CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	parsvd "goparsvd"
	"goparsvd/datasets"
	"goparsvd/gnc"
	"goparsvd/postproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-era5: ")

	var (
		nlat      = flag.Int("nlat", 37, "latitude points (ERA5 at 2.5°: 73)")
		nlon      = flag.Int("nlon", 72, "longitude points (ERA5 at 2.5°: 144)")
		years     = flag.Int("years", 8, "years of data (paper: 2013-2020 = 8)")
		stepHours = flag.Float64("step-hours", 24, "snapshot cadence in hours (paper: 6)")
		ranks     = flag.Int("ranks", 4, "parallel ranks")
		k         = flag.Int("k", 10, "retained modes K")
		batch     = flag.Int("batch", 146, "snapshots per streaming batch")
		ff        = flag.Float64("ff", 0.95, "forget factor")
		lowRank   = flag.Bool("lowrank", true, "use randomized SVDs")
		outdir    = flag.String("outdir", "out/era5", "output directory")
		dataFile  = flag.String("data", "", "GNC file to use (default <outdir>/pressure.gnc; regenerated if absent)")
	)
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	snapshots := int(float64(*years) * 365 * 24 / *stepHours)
	cfg := datasets.ClimateConfig{
		NLat: *nlat, NLon: *nlon,
		Snapshots: snapshots, StepHours: *stepHours,
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := datasets.NewClimate(cfg)

	path := *dataFile
	if path == "" {
		path = filepath.Join(*outdir, "pressure.gnc")
	}
	if _, err := os.Stat(path); err != nil {
		log.Printf("generating %d snapshots on a %dx%d grid → %s", snapshots, *nlat, *nlon, path)
		if err := writeDataset(path, gen); err != nil {
			log.Fatal(err)
		}
	} else {
		log.Printf("reusing existing data set %s", path)
	}

	// Parallel phase: the facade streams the file variable through the
	// distributed SVD, partitioning rows across in-process ranks.
	opts := []parsvd.Option{
		parsvd.WithModes(*k), parsvd.WithForgetFactor(*ff), parsvd.WithInitRank(50),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(*ranks),
	}
	if *lowRank {
		opts = append(opts, parsvd.WithLowRank())
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer svd.Close()

	src, err := parsvd.FromNetCDF(path, "pressure", *batch)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	stats := svd.Stats()
	log.Printf("parallel streaming SVD (%d ranks): %.2fs, %d messages, %.1f MB moved",
		*ranks, time.Since(start).Seconds(), stats.Messages, float64(stats.Bytes)/1e6)

	modes, vals := res.Modes, res.Singular

	// Validation against the generator's known structures.
	fmt.Println()
	fmt.Println("mode validation (|cosine| against known generator structure):")
	cos1 := postproc.AbsCosine(modes.Col(0), gen.MeanField())
	cos2 := postproc.AbsCosine(modes.Col(1), gen.AnnualField())
	fmt.Printf("  mode 1 vs climatological mean : %.6f\n", cos1)
	fmt.Printf("  mode 2 vs annual-cycle pattern: %.6f\n", cos2)

	fmt.Println()
	postproc.SingularValueReport(os.Stdout, vals)

	// Figure 2 artifacts: heatmaps of modes 1 and 2.
	for m := 0; m < 2 && m < modes.Cols(); m++ {
		name := filepath.Join(*outdir, fmt.Sprintf("fig2_mode%d.pgm", m+1))
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := postproc.WritePGMHeatmap(f, modes.Col(m), *nlat, *nlon); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if err := writeValsCSV(filepath.Join(*outdir, "fig2_singular_values.csv"), vals); err != nil {
		log.Fatal(err)
	}
	// Persist the decomposition itself in the same container format as the
	// input, so it can be inspected with gncinfo or reloaded later.
	if err := postproc.WriteModesGNC(filepath.Join(*outdir, "fig2_modes.gnc"),
		modes, vals, map[string]string{
			"source":   "parsvd-era5",
			"workload": fmt.Sprintf("%dx%d grid, %d snapshots", *nlat, *nlon, snapshots),
		}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifacts written to %s\n", *outdir)
}

// writeDataset generates the synthetic pressure field and writes it as a
// GNC file with time, lat, lon dimensions and coordinate variables.
func writeDataset(path string, gen *datasets.ClimateGenerator) error {
	cfg := gen.Config()
	w, err := gnc.Create(path)
	if err != nil {
		return err
	}
	steps := []func() error{
		func() error { return w.DefineDim("time", int64(cfg.Snapshots)) },
		func() error { return w.DefineDim("lat", int64(cfg.NLat)) },
		func() error { return w.DefineDim("lon", int64(cfg.NLon)) },
		func() error {
			// Single precision, like the real ERA5 archive: halves the
			// file and exercises the widening read path.
			return w.DefineVarTyped("pressure", gnc.Float32, []string{"time", "lat", "lon"},
				map[string]string{"units": "hPa", "long_name": "synthetic surface pressure"})
		},
		func() error { return w.DefineVar("lat", []string{"lat"}, map[string]string{"units": "degrees_north"}) },
		func() error { return w.DefineVar("lon", []string{"lon"}, map[string]string{"units": "degrees_east"}) },
		func() error { return w.SetGlobalAttr("source", "goparsvd datasets synthetic ERA5 analogue") },
		func() error { return w.EndDef() },
		func() error { return w.WriteVar("lat", gen.Lat()) },
		func() error { return w.WriteVar("lon", gen.Lon()) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			w.Close()
			return err
		}
	}
	// Write snapshot planes in parallel chunks.
	workers := 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (cfg.Snapshots + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			s0 := wk * chunk
			s1 := s0 + chunk
			if s1 > cfg.Snapshots {
				s1 = cfg.Snapshots
			}
			for s := s0; s < s1; s++ {
				if err := w.WriteSlab("pressure",
					[]int64{int64(s), 0, 0},
					[]int64{1, int64(cfg.NLat), int64(cfg.NLon)},
					gen.Snapshot(s)); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

func writeValsCSV(path string, vals []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return postproc.WriteSingularValuesCSV(f, []string{"parallel"}, vals)
}
