// Command parsvd-merge reduces shard-local checkpoint files into one
// model: each input is a checkpoint written by parsvd.Save (typically
// from a fit over one shard of a partitioned snapshot set, stamped with
// parsvd.WithShard), and the output is the checkpoint of their pairwise
// Iwen–Ong merge.
//
// By default the shards combine up a balanced merge tree
// (parsvd.MergeCheckpoints); -left-deep instead folds them one at a
// time into the first checkpoint, which uses less peak memory but a
// deeper tree. Either way the tool prints the merged spectrum, the
// ingest counters, and the accumulated truncation bound — zero when
// every merge was exact (effective rank ≤ K throughout).
//
//	parsvd-merge -o merged.ckpt shard0.ckpt shard1.ckpt shard2.ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	parsvd "goparsvd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-merge: ")

	var (
		out      = flag.String("o", "", "write the merged checkpoint here (omit to only report)")
		leftDeep = flag.Bool("left-deep", false, "fold shards sequentially instead of up a balanced tree")
		quiet    = flag.Bool("q", false, "suppress the spectrum listing")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: parsvd-merge [-o merged.ckpt] [-left-deep] shard.ckpt...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	svd, err := mergeAll(paths, *leftDeep)
	if err != nil {
		log.Fatal(err)
	}
	res, err := svd.Result()
	if err != nil {
		log.Fatal(err)
	}

	stats := svd.Stats()
	fmt.Printf("merged %d checkpoints: %d x %d modes, %d snapshots, %d updates\n",
		len(paths), res.Modes.Rows(), res.Modes.Cols(), stats.Snapshots, stats.Updates)
	fmt.Printf("truncation bound: %.6e\n", svd.MergeBound())
	if !*quiet {
		for i, sv := range res.Singular {
			fmt.Printf("  sigma[%2d] = %.12e\n", i+1, sv)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := svd.Save(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged checkpoint written to %s\n", *out)
	}
}

// mergeAll combines the checkpoints either up a balanced tree or as a
// left-deep fold into the first one.
func mergeAll(paths []string, leftDeep bool) (*parsvd.SVD, error) {
	if !leftDeep {
		return parsvd.MergeCheckpoints(paths...)
	}
	f, err := os.Open(paths[0])
	if err != nil {
		return nil, err
	}
	svd, err := parsvd.Load(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", paths[0], err)
	}
	for _, p := range paths[1:] {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		err = svd.Merge(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return svd, nil
}
