// Command parsvd-repro runs the complete reproduction suite — E1/E2
// (Burgers modes, Figure 1a/b), E3 (weak scaling, Figure 1c) and E4
// (ERA5-analogue modes, Figure 2) — at a configurable scale and writes a
// single markdown report with the paper-vs-measured summary for each
// experiment. It is the one-command regeneration path behind
// EXPERIMENTS.md.
//
// Scales:
//
//	-scale quick  : minutes on a laptop (default); reduced sizes
//	-scale paper  : the paper's experiment sizes (16384×800 Burgers etc.)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"goparsvd/internal/burgers"
	"goparsvd/internal/climate"
	"goparsvd/internal/core"
	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/postproc"
	"goparsvd/internal/scaling"
)

type sizes struct {
	burgersNx, burgersNt, burgersBatch int
	climNLat, climNLon, climSnapshots  int
	climStepHours                      float64
	scalingSnapshots                   int
	scalingRanks                       []int
}

func sizesFor(scale string) (sizes, error) {
	switch scale {
	case "quick":
		return sizes{
			burgersNx: 2048, burgersNt: 200, burgersBatch: 50,
			climNLat: 19, climNLon: 36, climSnapshots: 730, climStepHours: 24,
			scalingSnapshots: 64, scalingRanks: []int{1, 2, 4, 8},
		}, nil
	case "paper":
		return sizes{
			burgersNx: 16384, burgersNt: 800, burgersBatch: 100,
			climNLat: 73, climNLon: 144, climSnapshots: 11688, climStepHours: 6,
			scalingSnapshots: 128, scalingRanks: []int{1, 2, 4, 8, 16, 32},
		}, nil
	default:
		return sizes{}, fmt.Errorf("unknown scale %q (want quick or paper)", scale)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-repro: ")
	var (
		scale  = flag.String("scale", "quick", "experiment scale: quick or paper")
		outdir = flag.String("outdir", "out/repro", "output directory")
		ranks  = flag.Int("ranks", 4, "ranks for the mode-extraction experiments")
	)
	flag.Parse()

	sz, err := sizesFor(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# goparsvd reproduction report (scale=%s)\n\n", *scale)

	runBurgers(&report, sz, *ranks)
	runScaling(&report, sz)
	runClimate(&report, sz, *ranks)

	path := filepath.Join(*outdir, "report.md")
	if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.String())
	fmt.Printf("report written to %s\n", path)
}

// runBurgers executes E1/E2: serial vs parallel streamed modes of the
// Burgers snapshot matrix.
func runBurgers(report *strings.Builder, sz sizes, ranks int) {
	log.Printf("E1/E2: Burgers %dx%d, %d ranks", sz.burgersNx, sz.burgersNt, ranks)
	cfg := burgers.Config{L: 1, Re: 1000, Nx: sz.burgersNx, Nt: sz.burgersNt, TFinal: 2}
	opts := core.Options{K: 10, ForgetFactor: 0.95, R1: 50}

	t0 := time.Now()
	serial := core.NewSerial(opts)
	for off := 0; off < sz.burgersNt; off += sz.burgersBatch {
		end := minInt(off+sz.burgersBatch, sz.burgersNt)
		b := cfg.SnapshotsCols(off, end)
		if off == 0 {
			serial.Initialize(b)
		} else {
			serial.IncorporateData(b)
		}
	}
	serialSecs := time.Since(t0).Seconds()

	parOpts := opts
	parOpts.LowRank = true
	parts := cfg.Partition(ranks)
	var (
		mu       sync.Mutex
		parModes *mat.Dense
	)
	t1 := time.Now()
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		r0, r1 := parts[c.Rank()][0], parts[c.Rank()][1]
		eng := core.NewParallel(c, parOpts)
		for off := 0; off < sz.burgersNt; off += sz.burgersBatch {
			end := minInt(off+sz.burgersBatch, sz.burgersNt)
			b := cfg.Block(r0, r1, off, end)
			if off == 0 {
				eng.Initialize(b)
			} else {
				eng.IncorporateData(b)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			parModes = gathered
			mu.Unlock()
		}
	})
	parSecs := time.Since(t1).Seconds()

	errs := postproc.CompareModes(serial.Modes(), parModes)
	fmt.Fprintf(report, "## E1/E2 — Figure 1(a,b): Burgers modes, serial vs parallel\n\n")
	fmt.Fprintf(report, "- paper: serial and randomized+parallel modes overlap with low error magnitude\n")
	fmt.Fprintf(report, "- measured (%dx%d, %d ranks): mode-1 max|diff| %.2e, mode-2 max|diff| %.2e\n",
		sz.burgersNx, sz.burgersNt, ranks, errs[0].MaxAbs, errs[1].MaxAbs)
	fmt.Fprintf(report, "- wall-clock: serial %.2fs, parallel %.2fs\n\n", serialSecs, parSecs)
}

// runScaling executes E3: the measured and modeled weak-scaling series.
func runScaling(report *strings.Builder, sz sizes) {
	log.Printf("E3: weak scaling, ranks %v", sz.scalingRanks)
	measured := scaling.RunMeasured(scaling.MeasuredConfig{
		RowsPerRank: 1024, Snapshots: sz.scalingSnapshots,
		K: 10, R1: 32, Ranks: sz.scalingRanks, Trials: 2,
	})
	model := scaling.DefaultThetaModel()
	modeled := model.Series(scaling.PowersOfTwo(16384))

	fmt.Fprintf(report, "## E3 — Figure 1(c): weak scaling of the randomized+parallel SVD\n\n")
	fmt.Fprintf(report, "- paper: near-ideal weak scaling up to 256 Theta nodes\n")
	e256 := 0.0
	for _, p := range modeled {
		if p.Ranks == 256 {
			e256 = p.Efficiency
		}
	}
	fmt.Fprintf(report, "- modeled (Theta-like constants): efficiency %.3f at 256 ranks, %.3f at 16384\n",
		e256, modeled[len(modeled)-1].Efficiency)
	fmt.Fprintf(report, "- measured on this machine (goroutine ranks, CPU-oversubscribed beyond core count):\n\n")
	fmt.Fprintf(report, "```\n%s```\n\n", scaling.FormatSeries("measured", measured))
}

// runClimate executes E4: the ERA5-analogue coherent-structure extraction.
func runClimate(report *strings.Builder, sz sizes, ranks int) {
	log.Printf("E4: climate %dx%d, %d snapshots", sz.climNLat, sz.climNLon, sz.climSnapshots)
	cfg := climate.Config{
		NLat: sz.climNLat, NLon: sz.climNLon,
		Snapshots: sz.climSnapshots, StepHours: sz.climStepHours,
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := climate.New(cfg)
	batch := maxInt(sz.climSnapshots/10, 20)
	parts := grid.Partition(cfg.M(), ranks)
	var (
		mu    sync.Mutex
		modes *mat.Dense
	)
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		r0, r1 := parts[c.Rank()].Start, parts[c.Rank()].End
		eng := core.NewParallel(c, core.Options{K: 10, ForgetFactor: 0.95, LowRank: true, R1: 50})
		for off := 0; off < sz.climSnapshots; off += batch {
			end := minInt(off+batch, sz.climSnapshots)
			b := gen.RowBlock(r0, r1, off, end)
			if off == 0 {
				eng.Initialize(b)
			} else {
				eng.IncorporateData(b)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			mu.Unlock()
		}
	})
	cos1 := grid.AbsCosine(modes.Col(0), gen.MeanField())
	cos2 := grid.AbsCosine(modes.Col(1), gen.AnnualField())
	fmt.Fprintf(report, "## E4 — Figure 2: global pressure coherent structures\n\n")
	fmt.Fprintf(report, "- paper: modes 1 and 2 of ERA5 surface pressure, qualitative maps\n")
	fmt.Fprintf(report, "- measured (synthetic analogue with planted structure): mode 1 vs climatology cosine %.4f, mode 2 vs annual cycle cosine %.4f\n\n", cos1, cos2)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
