// Command parsvd-repro runs the complete reproduction suite — E1/E2
// (Burgers modes, Figure 1a/b), E3 (weak scaling, Figure 1c) and E4
// (ERA5-analogue modes, Figure 2) — at a configurable scale and writes a
// single markdown report with the paper-vs-measured summary for each
// experiment. It is the one-command regeneration path behind
// EXPERIMENTS.md, and drives the mode-extraction experiments through the
// public parsvd facade.
//
// Scales:
//
//	-scale quick  : minutes on a laptop (default); reduced sizes
//	-scale paper  : the paper's experiment sizes (16384×800 Burgers etc.)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	parsvd "goparsvd"
	"goparsvd/datasets"
	"goparsvd/internal/scaling"
	"goparsvd/postproc"
)

type sizes struct {
	burgersNx, burgersNt, burgersBatch int
	climNLat, climNLon, climSnapshots  int
	climStepHours                      float64
	scalingSnapshots                   int
	scalingRanks                       []int
}

func sizesFor(scale string) (sizes, error) {
	switch scale {
	case "quick":
		return sizes{
			burgersNx: 2048, burgersNt: 200, burgersBatch: 50,
			climNLat: 19, climNLon: 36, climSnapshots: 730, climStepHours: 24,
			scalingSnapshots: 64, scalingRanks: []int{1, 2, 4, 8},
		}, nil
	case "paper":
		return sizes{
			burgersNx: 16384, burgersNt: 800, burgersBatch: 100,
			climNLat: 73, climNLon: 144, climSnapshots: 11688, climStepHours: 6,
			scalingSnapshots: 128, scalingRanks: []int{1, 2, 4, 8, 16, 32},
		}, nil
	default:
		return sizes{}, fmt.Errorf("unknown scale %q (want quick or paper)", scale)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-repro: ")
	var (
		scale  = flag.String("scale", "quick", "experiment scale: quick or paper")
		outdir = flag.String("outdir", "out/repro", "output directory")
		ranks  = flag.Int("ranks", 4, "ranks for the mode-extraction experiments")
	)
	flag.Parse()

	sz, err := sizesFor(*scale)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# goparsvd reproduction report (scale=%s)\n\n", *scale)

	runBurgers(&report, sz, *ranks)
	runScaling(&report, sz)
	runClimate(&report, sz, *ranks)

	path := filepath.Join(*outdir, "report.md")
	if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.String())
	fmt.Printf("report written to %s\n", path)
}

// mustFit builds a facade SVD, drains src through it and returns the
// result, treating any error as fatal (this is a batch experiment
// driver).
func mustFit(src parsvd.Source, opts ...parsvd.Option) *parsvd.Result {
	svd, err := parsvd.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer svd.Close()
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// runBurgers executes E1/E2: serial vs parallel streamed modes of the
// Burgers snapshot matrix.
func runBurgers(report *strings.Builder, sz sizes, ranks int) {
	log.Printf("E1/E2: Burgers %dx%d, %d ranks", sz.burgersNx, sz.burgersNt, ranks)
	cfg := datasets.Burgers(sz.burgersNx, sz.burgersNt, 1000)
	a := cfg.Snapshots()
	base := []parsvd.Option{
		parsvd.WithModes(10), parsvd.WithForgetFactor(0.95), parsvd.WithInitRank(50),
	}

	t0 := time.Now()
	serial := mustFit(parsvd.FromMatrix(a, sz.burgersBatch), base...)
	serialSecs := time.Since(t0).Seconds()

	t1 := time.Now()
	parallel := mustFit(parsvd.FromMatrix(a, sz.burgersBatch), append(base,
		parsvd.WithLowRank(),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(ranks))...)
	parSecs := time.Since(t1).Seconds()

	errs := postproc.CompareModes(serial.Modes, parallel.Modes)
	fmt.Fprintf(report, "## E1/E2 — Figure 1(a,b): Burgers modes, serial vs parallel\n\n")
	fmt.Fprintf(report, "- paper: serial and randomized+parallel modes overlap with low error magnitude\n")
	fmt.Fprintf(report, "- measured (%dx%d, %d ranks): mode-1 max|diff| %.2e, mode-2 max|diff| %.2e\n",
		sz.burgersNx, sz.burgersNt, ranks, errs[0].MaxAbs, errs[1].MaxAbs)
	fmt.Fprintf(report, "- wall-clock: serial %.2fs, parallel %.2fs\n\n", serialSecs, parSecs)
}

// runScaling executes E3: the measured and modeled weak-scaling series.
func runScaling(report *strings.Builder, sz sizes) {
	log.Printf("E3: weak scaling, ranks %v", sz.scalingRanks)
	measured := scaling.RunMeasured(scaling.MeasuredConfig{
		RowsPerRank: 1024, Snapshots: sz.scalingSnapshots,
		K: 10, R1: 32, Ranks: sz.scalingRanks, Trials: 2,
	})
	model := scaling.DefaultThetaModel()
	modeled := model.Series(scaling.PowersOfTwo(16384))

	fmt.Fprintf(report, "## E3 — Figure 1(c): weak scaling of the randomized+parallel SVD\n\n")
	fmt.Fprintf(report, "- paper: near-ideal weak scaling up to 256 Theta nodes\n")
	e256 := 0.0
	for _, p := range modeled {
		if p.Ranks == 256 {
			e256 = p.Efficiency
		}
	}
	fmt.Fprintf(report, "- modeled (Theta-like constants): efficiency %.3f at 256 ranks, %.3f at 16384\n",
		e256, modeled[len(modeled)-1].Efficiency)
	fmt.Fprintf(report, "- measured on this machine (goroutine ranks, CPU-oversubscribed beyond core count):\n\n")
	fmt.Fprintf(report, "```\n%s```\n\n", scaling.FormatSeries("measured", measured))
}

// runClimate executes E4: the ERA5-analogue coherent-structure
// extraction, streaming generator batches through FromBatches.
func runClimate(report *strings.Builder, sz sizes, ranks int) {
	log.Printf("E4: climate %dx%d, %d snapshots", sz.climNLat, sz.climNLon, sz.climSnapshots)
	cfg := datasets.ClimateConfig{
		NLat: sz.climNLat, NLon: sz.climNLon,
		Snapshots: sz.climSnapshots, StepHours: sz.climStepHours,
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := datasets.NewClimate(cfg)
	batch := maxInt(sz.climSnapshots/10, 20)

	off := 0
	src := parsvd.FromBatches(func() (*parsvd.Matrix, error) {
		if off >= sz.climSnapshots {
			return nil, io.EOF
		}
		end := minInt(off+batch, sz.climSnapshots)
		b := gen.RowBlock(0, cfg.M(), off, end)
		off = end
		return b, nil
	})
	res := mustFit(src,
		parsvd.WithModes(10), parsvd.WithForgetFactor(0.95), parsvd.WithLowRank(),
		parsvd.WithInitRank(50), parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(ranks))

	cos1 := postproc.AbsCosine(res.Modes.Col(0), gen.MeanField())
	cos2 := postproc.AbsCosine(res.Modes.Col(1), gen.AnnualField())
	fmt.Fprintf(report, "## E4 — Figure 2: global pressure coherent structures\n\n")
	fmt.Fprintf(report, "- paper: modes 1 and 2 of ERA5 surface pressure, qualitative maps\n")
	fmt.Fprintf(report, "- measured (synthetic analogue with planted structure): mode 1 vs climatology cosine %.4f, mode 2 vs annual cycle cosine %.4f\n\n", cos1, cos2)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
