// Command parsvd-scaling reproduces Figure 1(c) of the PyParSVD paper —
// the weak scaling of the parallelized + randomized SVD with a fixed 1024
// grid points per rank — and doubles as the launcher for real
// multi-process runs.
//
// Transport modes (-transport):
//
//   - chan (default): the historical in-process measurement. Goroutine
//     ranks execute the APMOS decomposition; a Theta-calibrated analytic
//     model extends the series to 16384 ranks. Honest wall clock, but
//     ranks beyond the local core count time-share the CPU.
//
//   - tcp: a launcher mode. For every rank count, N parsvd-worker OS
//     processes are spawned, connect over loopback TCP (the
//     internal/mpi/tcptransport fabric), and run the full distributed
//     *streaming* SVD end to end over real sockets. Each point is
//     verified bit-for-bit against the in-process run of the identical
//     deterministic workload before it is reported, and the per-rank
//     byte counts from the worker processes feed the same scaling
//     tables. The command exits nonzero on any mismatch.
//
// Outputs: a CSV per series in -outdir, tables on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"goparsvd/internal/launch"
	"goparsvd/internal/scaling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-scaling: ")

	var (
		transport   = flag.String("transport", "chan", "rank fabric: chan (in-process goroutines) or tcp (one OS process per rank)")
		rowsPerRank = flag.Int("rows-per-rank", 1024, "grid points per rank (paper: 1024)")
		snapshots   = flag.Int("snapshots", 128, "snapshot count for the measured series")
		k           = flag.Int("k", 10, "modes for the SVD")
		r1          = flag.Int("r1", 32, "APMOS gather truncation for the measured series")
		ranksFlag   = flag.String("ranks", "1,2,4,8,16", "comma-separated measured rank counts")
		trials      = flag.Int("trials", 3, "trials per point (minimum kept; chan mode only)")
		modelMax    = flag.Int("model-max", 16384, "largest rank count for the modeled series (chan mode only)")
		outdir      = flag.String("outdir", "out/scaling", "output directory")

		// tcp-mode streaming workload shape.
		initBatch = flag.Int("init-batch", 24, "tcp mode: columns consumed by Initialize")
		batch     = flag.Int("batch", 12, "tcp mode: columns per streaming update")
		ff        = flag.Float64("ff", 0.95, "tcp mode: streaming forget factor")
		lowRank   = flag.Bool("lowrank", false, "tcp mode: use the randomized SVD pipeline")
		seed      = flag.Int64("seed", 7, "tcp mode: randomized-SVD sketch seed")
		workerBin = flag.String("worker", "", "tcp mode: parsvd-worker binary (default: $PARSVD_WORKER, sibling, PATH, then go build)")
		verify    = flag.Bool("verify", true, "tcp mode: check each point bit-for-bit against the in-process run")
		timeout   = flag.Duration("timeout", 5*time.Minute, "tcp mode: per-point job timeout")
	)
	flag.Parse()

	ranks, err := parseRanks(*ranksFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	switch *transport {
	case "chan":
		runChanMode(chanConfig{
			rowsPerRank: *rowsPerRank, snapshots: *snapshots, k: *k, r1: *r1,
			ranks: ranks, trials: *trials, modelMax: *modelMax, outdir: *outdir,
		})
	case "tcp":
		w := scaling.StreamWorkload{
			RowsPerRank: *rowsPerRank,
			Snapshots:   *snapshots,
			InitBatch:   *initBatch,
			Batch:       *batch,
			K:           *k,
			R1:          *r1,
			FF:          *ff,
			LowRank:     *lowRank,
			Seed:        *seed,
		}
		runTCPMode(tcpConfig{
			workload: w, ranks: ranks, workerBin: *workerBin,
			verify: *verify, timeout: *timeout, outdir: *outdir,
		})
	default:
		log.Fatalf("unknown -transport %q (want chan or tcp)", *transport)
	}
}

type chanConfig struct {
	rowsPerRank, snapshots, k, r1 int
	ranks                         []int
	trials, modelMax              int
	outdir                        string
}

// runChanMode is the historical Figure 1(c) reproduction: measured
// goroutine ranks plus the Theta-calibrated analytic model.
func runChanMode(cfg chanConfig) {
	mcfg := scaling.MeasuredConfig{
		RowsPerRank: cfg.rowsPerRank,
		Snapshots:   cfg.snapshots,
		K:           cfg.k,
		R1:          cfg.r1,
		Ranks:       cfg.ranks,
		Trials:      cfg.trials,
	}
	log.Printf("measured series: %d rows/rank, %d snapshots, ranks %v", cfg.rowsPerRank, cfg.snapshots, cfg.ranks)
	measured := scaling.RunMeasured(mcfg)
	fmt.Println()
	fmt.Print(scaling.FormatSeries("measured weak scaling (goroutine ranks, this machine)", measured))

	model := scaling.DefaultThetaModel()
	model.RowsPerRank = cfg.rowsPerRank
	model.K = cfg.k
	modeled := model.Series(scaling.PowersOfTwo(cfg.modelMax))
	fmt.Println()
	fmt.Print(scaling.FormatSeries(
		fmt.Sprintf("modeled weak scaling (Theta-like constants, N=%d, r1=%d)", model.Snapshots, model.R1),
		modeled))

	if err := writeCSV(filepath.Join(cfg.outdir, "fig1c_measured.csv"), measured); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(cfg.outdir, "fig1c_model.csv"), modeled); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifacts written to %s\n", cfg.outdir)
}

type tcpConfig struct {
	workload  scaling.StreamWorkload
	ranks     []int
	workerBin string
	verify    bool
	timeout   time.Duration
	outdir    string
}

// runTCPMode launches one multi-process TCP job per rank count, verifies
// each against the in-process reference, and reports the socket-measured
// scaling series.
func runTCPMode(cfg tcpConfig) {
	if err := cfg.workload.Validate(); err != nil {
		log.Fatal(err)
	}
	log.Printf("tcp series: %d rows/rank, %d snapshots (init %d, batch %d), ranks %v",
		cfg.workload.RowsPerRank, cfg.workload.Snapshots, cfg.workload.InitBatch,
		cfg.workload.Batch, cfg.ranks)

	points := make([]scaling.Point, 0, len(cfg.ranks))
	for _, p := range cfg.ranks {
		log.Printf("launching %d worker process(es)…", p)
		res, err := launch.Run(launch.Config{
			Ranks:     p,
			WorkerBin: cfg.workerBin,
			Workload:  cfg.workload,
			Timeout:   cfg.timeout,
		})
		if err != nil {
			log.Fatalf("%d-rank TCP job failed: %v", p, err)
		}
		if cfg.verify {
			if err := launch.VerifyAgainstInProcess(p, cfg.workload, res); err != nil {
				log.Fatalf("%d ranks: VERIFICATION FAILED: %v", p, err)
			}
			log.Printf("%d ranks: verified — singular values and modes match the in-process run bit-for-bit", p)
		}
		agg := res.MPIStats()
		log.Printf("%d ranks: %d msgs, %d payload bytes, root incast %d bytes",
			p, agg.Messages, agg.Bytes, agg.RecvBytes[0])
		points = append(points, scaling.MultiProcessPoint(p, res.RankStats()))
	}
	scaling.FillEfficiency(points)

	fmt.Println()
	fmt.Print(scaling.FormatSeries("measured weak scaling (TCP worker processes, streaming SVD)", points))
	if err := writeCSV(filepath.Join(cfg.outdir, "fig1c_tcp_measured.csv"), points); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifacts written to %s\n", cfg.outdir)
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid rank count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rank counts in %q", s)
	}
	return out, nil
}

func writeCSV(path string, points []scaling.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "ranks,seconds,efficiency,comm_bytes")
	for _, p := range points {
		fmt.Fprintf(f, "%d,%.6e,%.6f,%d\n", p.Ranks, p.Seconds, p.Efficiency, p.CommBytes)
	}
	return nil
}
