// Command parsvd-scaling reproduces Figure 1(c) of the PyParSVD paper: the
// weak scaling of the parallelized + randomized SVD (no streaming), with a
// fixed 1024 grid points per rank.
//
// Because this reproduction substitutes in-process goroutine ranks for MPI
// ranks on Theta, the command prints two series:
//
//   - a measured series (goroutine ranks on this machine; honest wall
//     clock, but ranks beyond the local core count time-share the CPU);
//   - a modeled series from a Theta-calibrated analytic cost model,
//     evaluated to 16384 ranks (256 KNL nodes × 64 ranks), which is the
//     series whose *shape* should be compared with the figure.
//
// Outputs: a CSV per series in -outdir, tables on stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"goparsvd/internal/scaling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parsvd-scaling: ")

	var (
		rowsPerRank = flag.Int("rows-per-rank", 1024, "grid points per rank (paper: 1024)")
		snapshots   = flag.Int("snapshots", 128, "snapshot count for the measured series")
		k           = flag.Int("k", 10, "modes for the randomized SVD")
		r1          = flag.Int("r1", 32, "APMOS gather truncation for the measured series")
		ranksFlag   = flag.String("ranks", "1,2,4,8,16", "comma-separated measured rank counts")
		trials      = flag.Int("trials", 3, "trials per point (minimum kept)")
		modelMax    = flag.Int("model-max", 16384, "largest rank count for the modeled series")
		outdir      = flag.String("outdir", "out/scaling", "output directory")
	)
	flag.Parse()

	ranks, err := parseRanks(*ranksFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := scaling.MeasuredConfig{
		RowsPerRank: *rowsPerRank,
		Snapshots:   *snapshots,
		K:           *k,
		R1:          *r1,
		Ranks:       ranks,
		Trials:      *trials,
	}
	log.Printf("measured series: %d rows/rank, %d snapshots, ranks %v", *rowsPerRank, *snapshots, ranks)
	measured := scaling.RunMeasured(cfg)
	fmt.Println()
	fmt.Print(scaling.FormatSeries("measured weak scaling (goroutine ranks, this machine)", measured))

	model := scaling.DefaultThetaModel()
	model.RowsPerRank = *rowsPerRank
	model.K = *k
	modeled := model.Series(scaling.PowersOfTwo(*modelMax))
	fmt.Println()
	fmt.Print(scaling.FormatSeries(
		fmt.Sprintf("modeled weak scaling (Theta-like constants, N=%d, r1=%d)", model.Snapshots, model.R1),
		modeled))

	if err := writeCSV(filepath.Join(*outdir, "fig1c_measured.csv"), measured); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(*outdir, "fig1c_model.csv"), modeled); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nartifacts written to %s\n", *outdir)
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid rank count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rank counts in %q", s)
	}
	return out, nil
}

func writeCSV(path string, points []scaling.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "ranks,seconds,efficiency,comm_bytes")
	for _, p := range points {
		fmt.Fprintf(f, "%d,%.6e,%.6f,%d\n", p.Ranks, p.Seconds, p.Efficiency, p.CommBytes)
	}
	return nil
}
