// parsvd-serve hosts streaming SVD models behind an HTTP JSON API: create
// named models, push snapshot batches at them from anywhere, and query
// spectra, modes, projections and reconstructions while ingest continues.
//
//	parsvd-serve -addr :8080 -checkpoint-dir /var/lib/parsvd
//
// Concurrent pushes to one model are micro-batched into single engine
// updates; reads are served from copy-on-publish views and never block
// ingest. With -checkpoint-dir set, every model periodically persists its
// streaming state and is restored on the next boot; SIGINT/SIGTERM
// triggers a graceful shutdown that drains the HTTP server, flushes every
// ingest queue and writes final checkpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"goparsvd/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for per-model checkpoints (empty disables persistence)")
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, "how often dirty models are checkpointed (each checkpoint truncates the WAL)")
	fsync := flag.String("fsync", "always", "WAL durability policy: always (acked pushes survive power loss), interval, never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL flush cadence under -fsync interval")
	noWAL := flag.Bool("no-wal", false, "disable the write-ahead log (checkpoint-only persistence)")
	queueDepth := flag.Int("queue", 64, "per-model ingest queue depth (full queue => HTTP 429)")
	coalesce := flag.Int("coalesce", 16, "max queued pushes folded into one engine update")
	maxBody := flag.Int64("max-body", 32<<20, "max request body bytes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget for in-flight HTTP requests")
	flag.Parse()

	if err := run(*addr, server.Config{
		QueueDepth:         *queueDepth,
		MaxCoalesce:        *coalesce,
		CheckpointDir:      *checkpointDir,
		CheckpointInterval: *checkpointInterval,
		Fsync:              server.FsyncPolicy(*fsync),
		FsyncInterval:      *fsyncInterval,
		DisableWAL:         *noWAL,
		MaxBodyBytes:       *maxBody,
	}, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "parsvd-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, drainTimeout time.Duration) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	// Listen explicitly (rather than ListenAndServe) so the log reports
	// the bound address — with ":0" the kernel picks the port, and
	// harnesses like the crash-recovery gate parse it from this line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("parsvd-serve: listening on %s", ln.Addr())

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting and drain in-flight handlers
	// first, so every accepted push has reached its model queue, then
	// flush the queues and write final checkpoints.
	log.Printf("parsvd-serve: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("parsvd-serve: draining HTTP: %v", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("parsvd-serve: bye")
	return nil
}
