// Command parsvd-worker is one rank of a multi-process distributed
// streaming SVD: each worker process owns one MPI rank, connects to its
// peers over TCP (internal/mpi/tcptransport), generates its own row block
// of the deterministic Burgers workload, and runs the full core.Parallel
// pipeline — APMOS initialization, streaming incorporate updates, and the
// final mode gather at rank 0.
//
// Workers are normally spawned by a launcher (cmd/parsvd-scaling
// -transport tcp, or internal/launch programmatically), but they are plain
// processes: starting rank 0 by hand and pointing the other ranks at its
// address with -rendezvous runs the same job across terminals or machines.
//
// Stdout carries the launcher protocol (see internal/launch): rank 0
// prints "PARSVD-RENDEZVOUS <addr>" once its listener is bound, and every
// rank prints one "PARSVD-RESULT {json}" line on success. Logs go to
// stderr. Exit status is nonzero if this rank — or, via the abort
// protocol, any peer — fails.
//
// With -session the worker instead becomes one rank of a persistent,
// sessionful world: stdin carries framed commands (INIT, PUSH with this
// rank's row block of real snapshot data, SPECTRUM, MODES-SHA, STATS,
// SAVE, SHUTDOWN) and stdout carries one framed reply per command — the
// protocol behind the parsvd facade's Distributed backend and
// internal/launch.Session. The workload flags are ignored in session
// mode; the engine configuration arrives in the INIT frame.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"goparsvd/internal/launch"
	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
	"goparsvd/internal/scaling"
)

func main() {
	log.SetFlags(0)
	log.SetOutput(os.Stderr)

	var (
		session     = flag.Bool("session", false, "persistent session mode: framed commands on stdin, framed replies on stdout")
		rank        = flag.Int("rank", 0, "this process's rank in [0, np)")
		np          = flag.Int("np", 1, "world size (number of worker processes)")
		rendezvous  = flag.String("rendezvous", "", "rank 0's address (required for rank > 0)")
		listen      = flag.String("listen", "127.0.0.1:0", "rank 0: rendezvous bind address; others: mesh listener bind address")
		advertise   = flag.String("advertise", "", "override the address advertised to peers (for NAT/multi-host setups)")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "failure-detection window: abort if a peer is silent this long")
		dialTimeout = flag.Duration("dial-timeout", 30*time.Second, "rendezvous/handshake deadline")

		rowsPerRank = flag.Int("rows-per-rank", 256, "grid points owned by each rank")
		snapshots   = flag.Int("snapshots", 96, "total snapshot (column) count")
		initBatch   = flag.Int("init-batch", 24, "columns consumed by Initialize")
		batch       = flag.Int("batch", 12, "columns per streaming IncorporateData update")
		k           = flag.Int("k", 8, "retained mode count")
		r1          = flag.Int("r1", 24, "APMOS gather truncation")
		ff          = flag.Float64("ff", 0.95, "streaming forget factor")
		lowRank     = flag.Bool("lowrank", false, "use the randomized SVD pipeline")
		seed        = flag.Int64("seed", 7, "randomized-SVD sketch seed")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("parsvd-worker[%d]: ", *rank))

	if *session {
		if err := runSession(*rank, *np, *listen, tcptransport.Options{
			Rank:        *rank,
			Size:        *np,
			Rendezvous:  *rendezvous,
			ListenAddr:  *listen,
			Advertise:   *advertise,
			DialTimeout: *dialTimeout,
			IdleTimeout: *idleTimeout,
		}); err != nil {
			log.Fatalf("session failed: %v", err)
		}
		log.Printf("session done")
		return
	}

	w := scaling.StreamWorkload{
		RowsPerRank: *rowsPerRank,
		Snapshots:   *snapshots,
		InitBatch:   *initBatch,
		Batch:       *batch,
		K:           *k,
		R1:          *r1,
		FF:          *ff,
		LowRank:     *lowRank,
		Seed:        *seed,
	}
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}

	opts := tcptransport.Options{
		Rank:        *rank,
		Size:        *np,
		Rendezvous:  *rendezvous,
		ListenAddr:  *listen,
		Advertise:   *advertise,
		DialTimeout: *dialTimeout,
		IdleTimeout: *idleTimeout,
	}
	// Rank 0 binds the rendezvous listener before establishing the fabric
	// so the chosen (possibly ephemeral) address can be published first.
	if *rank == 0 && *np > 1 {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("rendezvous listen: %v", err)
		}
		opts.Listener = l
		fmt.Printf("%s %s\n", launch.RendezvousPrefix, l.Addr())
	}

	t, err := tcptransport.New(opts)
	if err != nil {
		log.Fatalf("establishing transport: %v", err)
	}
	log.Printf("connected: %d ranks, %d rows/rank, %d snapshots", *np, w.RowsPerRank, w.Snapshots)

	var res scaling.StreamResult
	start := time.Now()
	stats, err := mpi.RunRank(t, *rank, func(c *mpi.Comm) {
		res = scaling.RunStream(c, w)
		// Synchronize shutdown: no rank starts tearing its sockets down
		// while a peer is still mid-collective.
		c.Barrier()
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Abort()
		log.Fatalf("run failed after %s: %v", elapsed.Round(time.Millisecond), err)
	}
	t.Close()

	rs := scaling.RankStats{
		Rank:      *rank,
		Messages:  stats.Messages,
		BytesSent: stats.Bytes,
		BytesRecv: stats.RecvBytes[*rank],
		Seconds:   elapsed.Seconds(),
	}
	line, err := launch.FormatResult(*rank, res.Singular, res.Modes, rs)
	if err != nil {
		log.Fatalf("encoding result: %v", err)
	}
	fmt.Println(line)
	log.Printf("done in %s: %d updates, %d msgs sent, %d bytes sent, %d bytes received",
		elapsed.Round(time.Millisecond), res.Iterations, rs.Messages, rs.BytesSent, rs.BytesRecv)
}
