package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"goparsvd/internal/apmos"
	"goparsvd/internal/core"
	"goparsvd/internal/launch"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
	"goparsvd/internal/rla"
)

// runSession is the worker's `-session` mode: instead of replaying a
// workload and exiting, the process stays alive as one rank of a
// persistent world, reading framed commands from stdin and answering on
// stdout (see internal/launch/proto.go). Snapshot data arrives over the
// wire — the launcher scatters row blocks — and the rank's core engine
// incorporates it through the same collective pipeline the one-shot mode
// runs.
//
// Every command is answered by exactly one reply frame. Any failure —
// a malformed frame, an engine panic, an abort echo from a dying peer —
// is terminal: the transport is aborted (so live peers unwind), an ERR
// frame is emitted best-effort, and the process exits nonzero. There is
// no partial recovery; a session world is either fully consistent or
// dead, which is exactly the contract the launcher enforces fleet-wide.
func runSession(rank, np int, listenAddr string, opts tcptransport.Options) error {
	out := bufio.NewWriter(os.Stdout)
	reply := func(verb byte, body []byte) error {
		if err := launch.WriteSessionFrame(out, verb, body); err != nil {
			return err
		}
		return out.Flush()
	}

	// Rank 0 binds the rendezvous listener first so the (possibly
	// ephemeral) address reaches the launcher before tcptransport.New
	// blocks waiting for the other ranks to dial in.
	if rank == 0 && np > 1 {
		l, err := net.Listen("tcp", listenAddr)
		if err != nil {
			reply(launch.SessErr, []byte(fmt.Sprintf("rendezvous listen: %v", err)))
			return err
		}
		opts.Listener = l
		if err := reply(launch.SessRendezvous, []byte(l.Addr().String())); err != nil {
			return err
		}
	}
	t, err := tcptransport.New(opts)
	if err != nil {
		reply(launch.SessErr, []byte(fmt.Sprintf("establishing transport: %v", err)))
		return err
	}
	log.Printf("session up: %d ranks", np)
	comm := mpi.NewComm(t, rank)

	var (
		copts     core.Options
		inited    bool
		eng       *core.Parallel
		localRows int
	)
	status := func(sha string) ([]byte, error) {
		st := t.Stats()
		s := launch.SessionStatus{
			Rank:      rank,
			Messages:  st.Messages,
			BytesSent: st.Bytes,
			Rows:      localRows,
			ModesSHA:  sha,
		}
		if rank < len(st.RecvBytes) {
			s.BytesRecv = st.RecvBytes[rank]
		}
		if eng != nil {
			s.Snapshots = eng.SnapshotsSeen()
			s.Iterations = eng.Iterations()
		}
		return json.Marshal(s)
	}
	okStatus := func(sha string) error {
		b, err := status(sha)
		if err != nil {
			return err
		}
		return reply(launch.SessOK, b)
	}

	// handle executes one command, converting engine panics (dimension
	// bugs, abort echoes from failed peers) into errors. done reports a
	// clean SHUTDOWN.
	handle := func(verb byte, body []byte) (done bool, err error) {
		defer func() {
			if v := recover(); v != nil {
				done = false
				if e, ok := v.(error); ok {
					err = e
				} else {
					err = fmt.Errorf("%v", v)
				}
			}
		}()
		switch verb {
		case launch.SessInit:
			var spec launch.EngineSpec
			if err := json.Unmarshal(body, &spec); err != nil {
				return false, fmt.Errorf("malformed INIT spec: %w", err)
			}
			copts = core.Options{
				K:            spec.K,
				ForgetFactor: spec.FF,
				R1:           spec.R1,
				Method:       apmos.Method(spec.Method),
				LowRank:      spec.LowRank,
				RLA: rla.Options{
					Oversample: spec.Oversample,
					PowerIters: spec.PowerIters,
					Seed:       spec.Seed,
				},
			}
			if err := copts.Validate(); err != nil {
				return false, fmt.Errorf("INIT spec: %w", err)
			}
			inited = true
			return false, okStatus("")
		case launch.SessPush:
			if !inited {
				return false, errors.New("PUSH before INIT")
			}
			block, err := launch.DecodeBlock(body)
			if err != nil {
				return false, err
			}
			if eng == nil {
				eng = core.NewParallel(comm, copts)
				eng.Initialize(block)
				localRows = block.Rows()
			} else {
				eng.IncorporateData(block)
			}
			return false, okStatus("")
		case launch.SessPushSketch:
			if !inited {
				return false, errors.New("PUSH-SKETCH before INIT")
			}
			qblock, sfull, err := launch.DecodeFactorPair(body)
			if err != nil {
				return false, err
			}
			// Reconstruct this rank's row block of the batch: the launcher
			// scattered Q's rows, so Q_r·S is exactly the block PUSH would
			// have carried, and the same collective update runs on it.
			block := mat.Mul(qblock, sfull)
			if eng == nil {
				eng = core.NewParallel(comm, copts)
				eng.Initialize(block)
				localRows = block.Rows()
			} else {
				eng.IncorporateData(block)
			}
			return false, okStatus("")
		case launch.SessSpectrum:
			if eng == nil {
				return false, errors.New("SPECTRUM before any PUSH")
			}
			return false, reply(launch.SessFloats, launch.EncodeFloats(eng.SingularValues()))
		case launch.SessModesSHA:
			if eng == nil {
				return false, errors.New("MODES-SHA before any PUSH")
			}
			modes := eng.GatherModes() // collective: every rank participates
			sha := ""
			if rank == 0 {
				sha = launch.HashModes(modes)
			}
			return false, okStatus(sha)
		case launch.SessStats:
			return false, okStatus("")
		case launch.SessSave:
			if eng == nil {
				return false, errors.New("SAVE before any PUSH")
			}
			modes := eng.GatherModes() // collective
			if rank != 0 {
				return false, okStatus("")
			}
			singular := append([]float64(nil), eng.SingularValues()...)
			ser, err := core.RestoreSerial(copts, modes, singular, eng.Iterations(), eng.SnapshotsSeen())
			if err != nil {
				return false, fmt.Errorf("assembling checkpoint state: %w", err)
			}
			var buf bytes.Buffer
			if err := ser.Save(&buf); err != nil {
				return false, fmt.Errorf("writing checkpoint: %w", err)
			}
			return false, reply(launch.SessBlob, buf.Bytes())
		case launch.SessShutdown:
			// No rank starts tearing its sockets down while a peer is
			// still mid-collective.
			comm.Barrier()
			t.Close()
			return true, okStatus("")
		default:
			return false, fmt.Errorf("unknown session verb 0x%02x", verb)
		}
	}

	in := bufio.NewReaderSize(os.Stdin, 1<<16)
	for {
		verb, body, err := launch.ReadSessionFrame(in)
		if err != nil {
			// The launcher is gone (EOF) or sent garbage: unwind the whole
			// world so peers blocked in collectives do not hang until the
			// idle timeout.
			t.Abort()
			if err == io.EOF {
				return errors.New("launcher closed the session stream")
			}
			return err
		}
		done, err := handle(verb, body)
		if err != nil {
			t.Abort()
			reply(launch.SessErr, []byte(err.Error()))
			return err
		}
		if done {
			return nil
		}
	}
}
