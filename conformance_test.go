package parsvd_test

// Cross-backend conformance: the same snapshot streams driven through
// Serial, Parallel and Distributed must produce the same decomposition —
// spectra within 1e-12 of each other, and the gathered mode matrices of
// the two rank-parallel backends (which run the identical arithmetic on
// the identical row split) bit-for-bit equal by SHA-256 fingerprint. The
// suite also pins the behaviors that make the backends interchangeable
// in practice: Push after Fit continues the same stream, Save→Load→Push
// resumes it across the checkpoint boundary, and context cancellation
// stops a Fit between batches without corrupting or poisoning the state.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/launch"
	"goparsvd/internal/testutil"
)

// confTolerance is the cross-backend spectrum agreement bound.
const confTolerance = 1e-12

// confBackends enumerates the execution modes under test. Distributed
// uses 2 ranks to keep fleet spawns fast; Parallel matches it so the two
// rank worlds split rows identically (bit-compatibility).
var confBackends = []struct {
	name    string
	backend parsvd.Backend
	ranks   int
}{
	{"serial", parsvd.Serial, 1},
	{"parallel", parsvd.Parallel, 2},
	{"distributed", parsvd.Distributed, 2},
}

// confMatrix is the shared deterministic snapshot matrix: 64 rows, 24
// snapshot columns, numerical rank 6 plus tiny noise so the retained
// spectrum is well separated from the discarded tail.
func confMatrix() *parsvd.Matrix {
	a, _ := testutil.RandomLowRank(64, 24, 6, 1e-10, testutil.NewRand(42))
	return a
}

// confWorkload is a small deterministic Burgers workload sized for the
// 2-rank worlds above (global rows = 64·2).
func confWorkload() parsvd.Workload {
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 8
	w.Batch = 8
	w.K = 6
	w.R1 = 16
	return w
}

// confStreams builds the three Source flavors over equivalent data. Each
// entry constructs a fresh Source per call (sources are single-use).
var confStreams = []struct {
	name   string
	source func(t *testing.T) parsvd.Source
}{
	{"FromMatrix", func(t *testing.T) parsvd.Source {
		return parsvd.FromMatrix(confMatrix(), 8)
	}},
	{"FromBatches", func(t *testing.T) parsvd.Source {
		a, pos := confMatrix(), 0
		return parsvd.FromBatches(func() (*parsvd.Matrix, error) {
			if pos >= a.Cols() {
				return nil, io.EOF
			}
			end := pos + 8
			if end > a.Cols() {
				end = a.Cols()
			}
			b := a.SliceCols(pos, end)
			pos = end
			return b, nil
		})
	}},
	{"FromWorkload", func(t *testing.T) parsvd.Source {
		src, err := parsvd.FromWorkload(confWorkload(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}},
}

// newConfSVD builds one backend's SVD with the shared conformance
// options.
func newConfSVD(t *testing.T, backend parsvd.Backend, ranks int) *parsvd.SVD {
	t.Helper()
	opts := []parsvd.Option{
		parsvd.WithModes(6),
		parsvd.WithForgetFactor(0.95),
		parsvd.WithInitRank(16),
		parsvd.WithBackend(backend),
	}
	if backend != parsvd.Serial {
		opts = append(opts, parsvd.WithRanks(ranks))
	}
	svd, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svd.Close() })
	return svd
}

func maxSpectrumDiff(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("spectrum lengths differ: %d vs %d", len(a), len(b))
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func skipWithoutFleet(t *testing.T) {
	t.Helper()
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process conformance")
	}
}

// TestConformanceFit: every stream through every backend; spectra within
// 1e-12 pairwise, parallel and distributed modes bit-identical by hash.
func TestConformanceFit(t *testing.T) {
	skipWithoutFleet(t)
	for _, stream := range confStreams {
		t.Run(stream.name, func(t *testing.T) {
			results := make(map[string]*parsvd.Result)
			for _, b := range confBackends {
				svd := newConfSVD(t, b.backend, b.ranks)
				res, err := svd.Fit(context.Background(), stream.source(t))
				if err != nil {
					t.Fatalf("%s: %v", b.name, err)
				}
				if res.Snapshots != 24 || res.Iterations != 2 {
					t.Fatalf("%s counters: snapshots=%d iterations=%d, want 24/2",
						b.name, res.Snapshots, res.Iterations)
				}
				results[b.name] = res
			}
			for _, b := range confBackends[1:] {
				if d := maxSpectrumDiff(t, results["serial"].Singular, results[b.name].Singular); d > confTolerance {
					t.Errorf("serial vs %s spectrum deviates by %g, want <= %g", b.name, d, confTolerance)
				}
			}
			// The two rank-parallel worlds ran the identical split of the
			// identical batches: gathered modes agree bit for bit.
			par, dist := results["parallel"], results["distributed"]
			if dist.ModesSHA256 == "" {
				t.Fatal("distributed result carries no modes fingerprint")
			}
			if want := launch.HashModes(par.Modes); dist.ModesSHA256 != want {
				t.Errorf("distributed modes hash %s != parallel modes hash %s", dist.ModesSHA256, want)
			}
		})
	}
}

// TestConformancePushAfterFit: Fit over a prefix then Push the remainder
// must land in exactly the state of one Fit over the whole stream, on
// every backend.
func TestConformancePushAfterFit(t *testing.T) {
	skipWithoutFleet(t)
	a := confMatrix()
	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			whole := newConfSVD(t, b.backend, b.ranks)
			wres, err := whole.Fit(context.Background(), parsvd.FromMatrix(a, 8))
			if err != nil {
				t.Fatal(err)
			}

			split := newConfSVD(t, b.backend, b.ranks)
			if _, err := split.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 16), 8)); err != nil {
				t.Fatal(err)
			}
			if err := split.Push(a.SliceCols(16, 24)); err != nil {
				t.Fatal(err)
			}
			sres, err := split.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !testutil.CloseSlices(wres.Singular, sres.Singular, 0) {
				t.Fatalf("Fit+Push spectrum differs from one-shot Fit:\n%v\n%v", wres.Singular, sres.Singular)
			}
			if wres.ModesSHA256 != sres.ModesSHA256 {
				t.Fatal("Fit+Push modes fingerprint differs from one-shot Fit")
			}
			if st := split.Stats(); st.Snapshots != 24 || st.Rows != 64 {
				t.Fatalf("Stats after Fit+Push: %+v", st)
			}
		})
	}
}

// TestConformanceSaveLoadPushResume: checkpoint mid-stream on each
// backend, resume via Load (always serial), push the remainder, and land
// within 1e-12 of the uninterrupted serial run.
func TestConformanceSaveLoadPushResume(t *testing.T) {
	skipWithoutFleet(t)
	a := confMatrix()

	refSVD := newConfSVD(t, parsvd.Serial, 1)
	ref, err := refSVD.Fit(context.Background(), parsvd.FromMatrix(a, 8))
	if err != nil {
		t.Fatal(err)
	}

	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			svd := newConfSVD(t, b.backend, b.ranks)
			if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 16), 8)); err != nil {
				t.Fatal(err)
			}
			var ckpt bytes.Buffer
			if err := svd.Save(&ckpt); err != nil {
				t.Fatal(err)
			}
			// The original keeps streaming after the gather — Save is a
			// snapshot, not a terminal operation.
			if err := svd.Push(a.SliceCols(16, 24)); err != nil {
				t.Fatalf("push after Save: %v", err)
			}

			restored, err := parsvd.Load(&ckpt)
			if err != nil {
				t.Fatal(err)
			}
			rst := restored.Stats()
			if rst.Snapshots != 16 || rst.Rows != 64 || rst.K != 6 {
				t.Fatalf("restored Stats: %+v", rst)
			}
			if err := restored.Push(a.SliceCols(16, 24)); err != nil {
				t.Fatal(err)
			}
			res, err := restored.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.Snapshots != 24 {
				t.Fatalf("resumed snapshots = %d, want 24", res.Snapshots)
			}
			if d := maxSpectrumDiff(t, ref.Singular, res.Singular); d > confTolerance {
				t.Errorf("%s resume deviates from the uninterrupted serial run by %g, want <= %g",
					b.name, d, confTolerance)
			}
		})
	}
}

// TestConformanceContextCancellation: a pre-canceled context stops Fit
// before any batch (for Distributed, before any fleet spawns), and a
// mid-stream cancellation returns ctx.Err() with the state as of the
// last completed batch intact and the engine not poisoned.
func TestConformanceContextCancellation(t *testing.T) {
	skipWithoutFleet(t)
	a := confMatrix()
	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			pre := newConfSVD(t, b.backend, b.ranks)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := pre.Fit(ctx, parsvd.FromMatrix(a, 8)); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled Fit: %v, want context.Canceled", err)
			}
			if b.backend == parsvd.Distributed {
				if pids := parsvd.DistWorkerPIDs(pre); pids != nil {
					t.Fatalf("pre-canceled Fit spawned a fleet: %v", pids)
				}
			}

			svd := newConfSVD(t, b.backend, b.ranks)
			ctx2, cancel2 := context.WithCancel(context.Background())
			defer cancel2()
			calls := 0
			src := parsvd.FromBatches(func() (*parsvd.Matrix, error) {
				calls++
				if calls == 2 {
					// Cancel while handing out the second batch: Fit ingests
					// it, then observes the cancellation at the loop top.
					cancel2()
				}
				return a.SliceCols((calls-1)*8, calls*8), nil
			})
			if _, err := svd.Fit(ctx2, src); !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-stream cancellation: %v, want context.Canceled", err)
			}
			if st := svd.Stats(); st.Snapshots != 16 {
				t.Fatalf("snapshots after cancellation = %d, want 16 (two completed batches)", st.Snapshots)
			}
			// Not poisoned: the stream continues and finishes normally.
			if err := svd.Push(a.SliceCols(16, 24)); err != nil {
				t.Fatalf("push after cancellation: %v", err)
			}
			res, err := svd.Result()
			if err != nil {
				t.Fatalf("result after cancellation: %v", err)
			}
			if res.Snapshots != 24 {
				t.Fatalf("resumed snapshots = %d, want 24", res.Snapshots)
			}
		})
	}
}

// TestConformanceRejectsNonFinite: a batch carrying NaN or Inf is
// refused identically on every backend — as a plain validation error
// that leaves the SVD healthy, before any engine (or worker rank) sees
// the data.
func TestConformanceRejectsNonFinite(t *testing.T) {
	skipWithoutFleet(t)
	a := confMatrix()
	for _, b := range confBackends {
		t.Run(b.name, func(t *testing.T) {
			svd := newConfSVD(t, b.backend, b.ranks)
			if err := svd.Push(a.SliceCols(0, 8)); err != nil {
				t.Fatal(err)
			}
			for name, v := range map[string]float64{"NaN": math.NaN(), "+Inf": math.Inf(1)} {
				bad := a.SliceCols(8, 16)
				bad.Set(5, 3, v)
				err := svd.Push(bad)
				if err == nil {
					t.Fatalf("%s batch accepted", name)
				}
				if errors.Is(err, parsvd.ErrEngineFailed) {
					t.Fatalf("%s batch poisoned the engine: %v", name, err)
				}
			}
			// Still healthy: the stream continues.
			if err := svd.Push(a.SliceCols(8, 16)); err != nil {
				t.Fatalf("push after non-finite rejections: %v", err)
			}
		})
	}
}

// TestDistributedWireSmoke is the CI dist-smoke gate (make dist-smoke):
// a persistent 4-rank worker fleet fed the deterministic workload over
// the wire, batch by batch through Push, must match the in-process serial
// reference within 1e-12 — and the fleet must survive the whole stream as
// one session (one spawn, many pushes).
func TestDistributedWireSmoke(t *testing.T) {
	skipWithoutFleet(t)
	const ranks = 4
	w := parsvd.DefaultWorkload() // 256 rows/rank · 4 ranks, 96 snapshots

	opts := []parsvd.Option{
		parsvd.WithModes(w.K),
		parsvd.WithForgetFactor(w.FF),
		parsvd.WithInitRank(w.R1),
	}
	ser, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	serSrc, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ser.Fit(context.Background(), serSrc)
	if err != nil {
		t.Fatal(err)
	}

	dist, err := parsvd.New(append(opts,
		parsvd.WithBackend(parsvd.Distributed), parsvd.WithRanks(ranks))...)
	if err != nil {
		t.Fatal(err)
	}
	defer dist.Close()
	src, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		t.Fatal(err)
	}
	var pids []int
	for {
		b, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := dist.Push(b); err != nil {
			t.Fatal(err)
		}
		if pids == nil {
			pids = parsvd.DistWorkerPIDs(dist)
		} else if got := parsvd.DistWorkerPIDs(dist); !equalInts(pids, got) {
			t.Fatalf("fleet was respawned mid-stream: %v -> %v", pids, got)
		}
	}
	if len(pids) != ranks {
		t.Fatalf("fleet has %d workers, want %d", len(pids), ranks)
	}

	res, err := dist.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxSpectrumDiff(t, want.Singular, res.Singular); d > confTolerance {
		t.Fatalf("wire-fed 4-rank spectrum deviates from serial by %g, want <= %g", d, confTolerance)
	}
	st := dist.Stats()
	if st.Rows != w.RowsPerRank*ranks || st.Snapshots != w.Snapshots ||
		st.Messages == 0 || st.Bytes == 0 {
		t.Fatalf("distributed stats incomplete: %+v", st)
	}
	t.Logf("dist-smoke: %d snapshots into a %d-rank fleet (%d msgs, %d bytes), max deviation %g",
		st.Snapshots, ranks, st.Messages, st.Bytes,
		maxSpectrumDiff(t, want.Singular, res.Singular))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
