// Package coord drives a cross-node sharded fit: one Source partitioned
// into N shard streams, each fit as a shard-marked model on one of a set
// of parsvd serve nodes over the server HTTP API, the N shard-stamped
// checkpoints collected and reduced up parsvd's balanced pairwise merge
// tree into a single model.
//
// This is the distributed analogue of parsvd.WithShards, after
// Li–Kluger–Tygert (arXiv 1612.08709): every node computes its local
// factorization where its slice of the data streams, and only K-sized
// summaries — the shard checkpoints — ever cross the wire to the
// coordinator. Under the merge-exactness condition (forget factor 1 and
// K at least the stream's effective rank) the reduced model matches a
// monolithic fit to rounding, regardless of how the snapshots were
// dealt; the conformance suite holds it to ≤1e-10.
//
// Batches are dealt round-robin — batch j of the Source goes to shard
// j mod N — matching WithShards' single-node dealing, and shards map
// onto nodes in contiguous near-equal ranges (internal/grid.Partition)
// unless the Plan overrides the placement. A node that dies mid-fit is
// failed over: every shard it owned is recreated on a surviving node and
// refit from a fresh Replay of the source (the coordinator never buffers
// the stream), so the reduce still covers all N shards.
package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	parsvd "goparsvd"
	"goparsvd/internal/grid"
	"goparsvd/server"
	"goparsvd/server/client"
)

// Assignment places one shard of the partition on one node.
type Assignment struct {
	// Shard is the provenance mark the shard's model is created with:
	// Index of Count.
	Shard parsvd.ShardInfo
	// Node indexes Config.Nodes.
	Node int
}

// Plan is the coordinator's validated partition plan: which node fits
// which shard. It is fixed at New; failover rewrites the live placement
// but never the plan's shard set, so the reduce always covers exactly
// the N disjoint shards validated up front.
type Plan struct {
	Nodes       []string
	Assignments []Assignment
}

// Config configures a Coordinator.
type Config struct {
	// Nodes are the serve-node base URLs (e.g. "http://10.0.0.1:8080").
	Nodes []string
	// Shards is N, the partition width. Every batch j of the Source is
	// dealt to shard j mod N.
	Shards int
	// Model is the base model name; shard i's model is named
	// "<Model>.s<i>of<N>" on its node.
	Model string
	// Spec is the model template (Modes, ForgetFactor, InitRank, ...);
	// Name and Shard are overwritten per shard. The zero value keeps
	// the server defaults.
	Spec server.ModelSpec
	// Assignments, when non-empty, overrides the default contiguous
	// shard→node placement. The set must be exactly one assignment per
	// shard of a single (Count = Shards)-way partition; a duplicate
	// shard is refused with parsvd.ErrShardOverlap and a mixed
	// partitioning with parsvd.ErrMergeIncompatible — at New, before
	// any network traffic.
	Assignments []Assignment
	// Replay returns a fresh Source yielding the same batch sequence as
	// the one given to Run. It is the refit path: when a node dies, the
	// batches already dealt to its shards are replayed onto a surviving
	// node from here. Nil means a node failure is fatal.
	Replay func() (parsvd.Source, error)
	// Retry is the per-call retry policy of every node client.
	// Backpressure (429) and shutdown (503) retries happen inside the
	// client; only what still fails after that reaches the
	// coordinator's failover logic.
	Retry client.RetryPolicy
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Keep leaves the shard-local models registered on their nodes
	// after Run; by default they are deleted once their checkpoints are
	// collected and merged.
	Keep bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Coordinator runs cross-node sharded fits. Construct with New; a
// Coordinator is single-use — Run consumes it.
type Coordinator struct {
	cfg     Config
	plan    Plan
	clients []*client.Client
	nodeOf  []int  // live shard→node placement, seeded from plan
	dealt   []int  // batches dealt to each shard so far
	alive   []bool // node liveness, flipped by failover
	rr      int    // round-robin cursor over survivors
}

// New validates the partition plan and returns a Coordinator bound to
// it. Plan errors — duplicate shards (parsvd.ErrShardOverlap), mixed
// partitionings (parsvd.ErrMergeIncompatible), out-of-range nodes — are
// reported here, before any network traffic.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("coord: no nodes")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: %d shards: want >= 1", cfg.Shards)
	}
	if cfg.Model == "" {
		return nil, errors.New("coord: no model name")
	}
	assignments := cfg.Assignments
	if len(assignments) == 0 {
		// Default placement: contiguous near-equal shard ranges per
		// node — node r owns shards [Start, End) of Partition(N, nodes).
		// With more nodes than shards, the extra nodes idle (and serve
		// as failover targets).
		p := len(cfg.Nodes)
		if p > cfg.Shards {
			p = cfg.Shards
		}
		for node, r := range grid.Partition(cfg.Shards, p) {
			for i := r.Start; i < r.End; i++ {
				assignments = append(assignments, Assignment{
					Shard: parsvd.ShardInfo{Index: i, Count: cfg.Shards},
					Node:  node,
				})
			}
		}
	}
	if err := validatePlan(cfg, assignments); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		plan:    Plan{Nodes: cfg.Nodes, Assignments: assignments},
		clients: make([]*client.Client, len(cfg.Nodes)),
		nodeOf:  make([]int, cfg.Shards),
		dealt:   make([]int, cfg.Shards),
		alive:   make([]bool, len(cfg.Nodes)),
	}
	for i, base := range cfg.Nodes {
		cl := client.New(base)
		cl.Retry = cfg.Retry
		cl.HTTPClient = cfg.HTTPClient
		c.clients[i] = cl
		c.alive[i] = true
	}
	for _, a := range assignments {
		c.nodeOf[a.Shard.Index] = a.Node
	}
	return c, nil
}

// validatePlan is the before-any-network-traffic gate: the assignment
// set must be exactly one shard each of a single Shards-way partition,
// every shard covered, every node index in range.
func validatePlan(cfg Config, assignments []Assignment) error {
	seen := make(map[int]bool, cfg.Shards)
	for _, a := range assignments {
		if a.Shard.Count != cfg.Shards {
			return fmt.Errorf("%w: plan mixes partitionings: shard %s in a %d-shard plan",
				parsvd.ErrMergeIncompatible, a.Shard, cfg.Shards)
		}
		if a.Shard.Index < 0 || a.Shard.Index >= a.Shard.Count {
			return fmt.Errorf("coord: shard %s: index out of range", a.Shard)
		}
		if seen[a.Shard.Index] {
			return fmt.Errorf("%w: plan assigns shard %s twice", parsvd.ErrShardOverlap, a.Shard)
		}
		seen[a.Shard.Index] = true
		if a.Node < 0 || a.Node >= len(cfg.Nodes) {
			return fmt.Errorf("coord: shard %s assigned to node %d of %d", a.Shard, a.Node, len(cfg.Nodes))
		}
	}
	if len(seen) != cfg.Shards {
		return fmt.Errorf("coord: plan covers %d of %d shards", len(seen), cfg.Shards)
	}
	return nil
}

// Plan reports the validated partition plan the Coordinator was built
// around (the initial placement — failover may move shards off it).
func (c *Coordinator) Plan() Plan { return c.plan }

// ShardModelName is the name of shard index-of-count's model on its
// node: "<model>.s<index>of<count>".
func ShardModelName(model string, index, count int) string {
	return fmt.Sprintf("%s.s%dof%d", model, index, count)
}

func (c *Coordinator) shardName(s int) string {
	return ShardModelName(c.cfg.Model, s, c.cfg.Shards)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run drives the whole coordinated fit: create the shard models on
// their nodes, deal the Source's batches round-robin to them, collect
// the N shard-stamped checkpoints, and reduce them up the balanced
// merge tree. The returned SVD is an ordinary local serial-backend
// model (stream more into it, Save it, or Install it on a node); unless
// Config.Keep is set, the shard-local models are deleted after
// collection. A Source that also implements io.Closer is closed when
// Run returns.
func (c *Coordinator) Run(ctx context.Context, src parsvd.Source) (*parsvd.SVD, error) {
	if src == nil {
		return nil, errors.New("coord: nil source")
	}
	defer closeSource(src)

	for _, a := range c.plan.Assignments {
		if err := c.ensureShard(ctx, a.Shard.Index); err != nil {
			return nil, err
		}
	}

	// Deal: batch j → shard j mod N, failing over mid-stream when a
	// push reveals a dead node.
	for j := 0; ; j++ {
		b, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("coord: reading source: %w", err)
		}
		s := j % c.cfg.Shards
		if err := c.pushShard(ctx, s, b); err != nil {
			return nil, err
		}
		c.dealt[s]++
	}

	// Collect: fetch every shard's checkpoint, failing over (and
	// refitting from Replay) when the fetch reveals a dead node.
	ckpts := make([][]byte, c.cfg.Shards)
	for s := range ckpts {
		ckpt, err := c.fetchShard(ctx, s)
		if err != nil {
			return nil, err
		}
		ckpts[s] = ckpt
	}

	if !c.cfg.Keep {
		c.cleanup(ctx)
	}

	// Reduce: N shard-stamped checkpoints up the balanced merge tree,
	// with full compatibility and overlap validation.
	readers := make([]io.Reader, len(ckpts))
	for i, ck := range ckpts {
		readers[i] = bytes.NewReader(ck)
	}
	merged, err := parsvd.MergeReaders(readers...)
	if err != nil {
		return nil, fmt.Errorf("coord: reducing shard checkpoints: %w", err)
	}
	c.logf("coord: reduced %d shards into %s (merge bound %.3e)",
		c.cfg.Shards, c.cfg.Model, merged.MergeBound())
	return merged, nil
}

// pushShard pushes one batch to a shard's current home, failing the
// node over (refit included) and retrying on a survivor as long as the
// failure looks like a dead node rather than a refused request.
func (c *Coordinator) pushShard(ctx context.Context, s int, b *parsvd.Matrix) error {
	for {
		node := c.nodeOf[s]
		_, err := c.clients[node].Push(ctx, c.shardName(s), b)
		if err == nil {
			return nil
		}
		if !isNodeFailure(err) {
			return fmt.Errorf("coord: pushing to shard %d on %s: %w", s, c.cfg.Nodes[node], err)
		}
		if ferr := c.failNode(ctx, node, err); ferr != nil {
			return ferr
		}
	}
}

// fetchShard collects one shard's checkpoint from its current home,
// with the same failover-and-retry loop as pushShard: a node that dies
// between the last push and collection gets its shards refit elsewhere
// from Replay, so the reduce still sees all N.
func (c *Coordinator) fetchShard(ctx context.Context, s int) ([]byte, error) {
	for {
		node := c.nodeOf[s]
		ckpt, err := c.clients[node].Checkpoint(ctx, c.shardName(s))
		if err == nil {
			return ckpt, nil
		}
		if !isNodeFailure(err) {
			return nil, fmt.Errorf("coord: collecting shard %d from %s: %w", s, c.cfg.Nodes[node], err)
		}
		if ferr := c.failNode(ctx, node, err); ferr != nil {
			return nil, ferr
		}
	}
}

// failNode marks a node dead and rehomes every shard it owned: each is
// recreated on a surviving node and refit from a fresh Replay of the
// source. Without a Replay factory the failure is fatal.
func (c *Coordinator) failNode(ctx context.Context, dead int, cause error) error {
	if !c.alive[dead] {
		// Already failed over; the caller will retry on the new home.
		return nil
	}
	c.alive[dead] = false
	c.logf("coord: node %s failed (%v); rehoming its shards", c.cfg.Nodes[dead], cause)
	for s := 0; s < c.cfg.Shards; s++ {
		if c.nodeOf[s] != dead {
			continue
		}
		if c.cfg.Replay == nil && c.dealt[s] > 0 {
			return fmt.Errorf("coord: node %s died holding shard %d and no Replay source is configured: %w",
				c.cfg.Nodes[dead], s, cause)
		}
		node, err := c.pickSurvivor()
		if err != nil {
			return fmt.Errorf("coord: %w (last failure on %s: %v)", err, c.cfg.Nodes[dead], cause)
		}
		c.nodeOf[s] = node
		if err := c.ensureShard(ctx, s); err != nil {
			return err
		}
		if err := c.refit(ctx, s); err != nil {
			return err
		}
		c.logf("coord: shard %d refit on %s (%d batches replayed)", s, c.cfg.Nodes[node], c.dealt[s])
	}
	return nil
}

// pickSurvivor round-robins over the nodes still alive.
func (c *Coordinator) pickSurvivor() (int, error) {
	for i := 0; i < len(c.alive); i++ {
		n := (c.rr + i) % len(c.alive)
		if c.alive[n] {
			c.rr = n + 1
			return n, nil
		}
	}
	return 0, errors.New("coord: no surviving nodes")
}

// ensureShard creates shard s's model on its current home, replacing a
// leftover model of the same name (a previous run, or a stale copy on a
// failover target) so the fit always starts from zero snapshots.
func (c *Coordinator) ensureShard(ctx context.Context, s int) error {
	node := c.nodeOf[s]
	spec := c.cfg.Spec
	spec.Name = c.shardName(s)
	spec.Shard = &server.ShardSpec{Index: s, Count: c.cfg.Shards}
	_, err := c.clients[node].CreateModel(ctx, spec)
	if isConflict(err) {
		if derr := c.clients[node].DeleteModel(ctx, spec.Name); derr != nil {
			return fmt.Errorf("coord: replacing leftover model %s on %s: %w", spec.Name, c.cfg.Nodes[node], derr)
		}
		_, err = c.clients[node].CreateModel(ctx, spec)
	}
	if err != nil {
		return fmt.Errorf("coord: creating %s on %s: %w", spec.Name, c.cfg.Nodes[node], err)
	}
	return nil
}

// refit replays shard s's share of the stream — the first dealt[s]
// batches with global index ≡ s (mod N) — from a fresh Replay source
// onto the shard's (new) home.
func (c *Coordinator) refit(ctx context.Context, s int) error {
	if c.dealt[s] == 0 {
		return nil
	}
	src, err := c.cfg.Replay()
	if err != nil {
		return fmt.Errorf("coord: opening replay source for shard %d: %w", s, err)
	}
	defer closeSource(src)
	node := c.nodeOf[s]
	replayed := 0
	for g := 0; replayed < c.dealt[s]; g++ {
		b, err := src.Next(ctx)
		if err == io.EOF {
			return fmt.Errorf("coord: replay source ended after %d batches, need %d more for shard %d",
				g, c.dealt[s]-replayed, s)
		}
		if err != nil {
			return fmt.Errorf("coord: replaying shard %d: %w", s, err)
		}
		if g%c.cfg.Shards != s {
			continue
		}
		if _, err := c.clients[node].Push(ctx, c.shardName(s), b); err != nil {
			// A second node dying mid-refit is not cascaded into here;
			// the outer failover loop owns that policy.
			return fmt.Errorf("coord: replaying shard %d onto %s: %w", s, c.cfg.Nodes[node], err)
		}
		replayed++
	}
	return nil
}

// cleanup best-effort deletes the shard-local models once their
// checkpoints are collected. Failures are logged, not fatal: the merged
// result is already in hand.
func (c *Coordinator) cleanup(ctx context.Context) {
	for s := 0; s < c.cfg.Shards; s++ {
		node := c.nodeOf[s]
		if !c.alive[node] {
			continue
		}
		if err := c.clients[node].DeleteModel(ctx, c.shardName(s)); err != nil {
			c.logf("coord: deleting %s on %s: %v", c.shardName(s), c.cfg.Nodes[node], err)
		}
	}
}

// Install publishes a merged model onto a serve node: the model is
// created there (adopting cfg's Modes/ForgetFactor when the spec is
// zero) and the merged state uploaded through POST /merge — the
// degenerate single-operand merge, i.e. an adopt. An existing model of
// that name absorbs the upload instead, under the server's full merge
// validation.
func Install(ctx context.Context, merged *parsvd.SVD, nodeURL, name string, retry client.RetryPolicy) error {
	if merged == nil {
		return errors.New("coord: nil merged model")
	}
	var buf bytes.Buffer
	if err := merged.Save(&buf); err != nil {
		return fmt.Errorf("coord: serializing merged model: %w", err)
	}
	cl := client.New(nodeURL)
	cl.Retry = retry
	cfg := merged.Configuration()
	_, err := cl.CreateModel(ctx, server.ModelSpec{
		Name:         name,
		Modes:        cfg.Modes,
		ForgetFactor: cfg.ForgetFactor,
		InitRank:     cfg.InitRank,
	})
	if err != nil && !isConflict(err) {
		return fmt.Errorf("coord: creating %s on %s: %w", name, nodeURL, err)
	}
	if _, err := cl.Merge(ctx, name, bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("coord: installing %s on %s: %w", name, nodeURL, err)
	}
	return nil
}

// isNodeFailure distinguishes a dead or dying node (worth failing over)
// from a refused request (a caller error worth surfacing): network
// errors and 5xx responses fail over, 4xx propagate. Context
// cancellation is the caller's own signal, never a node failure.
func isNodeFailure(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	// No HTTP response at all: connection refused, reset, timeout.
	return true
}

// isConflict reports an HTTP 409 — model already exists (create) or has
// no data yet (collection paths never see this).
func isConflict(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict
}

func closeSource(src parsvd.Source) {
	if cl, ok := src.(io.Closer); ok {
		cl.Close()
	}
}

// String renders a plan compactly for logs: "shard→node" pairs.
func (p Plan) String() string {
	var b strings.Builder
	for i, a := range p.Assignments {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d→%d", a.Shard.Index, a.Node)
	}
	return b.String()
}
