package coord_test

// Coordinator conformance and fault paths: a 3-node × 6-shard
// coordinated fit over real HTTP must match the monolithic serial fit
// ≤ 1e-10 on every Source kind (the same exactness fixtures as the
// merge-smoke gate: forget factor 1.0, K ≥ effective rank), invalid
// partition plans must be refused before any network traffic, and a
// node that dies mid-fit must be failed over — its shards refit on a
// survivor from the Replay source — without loosening the gate.

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	parsvd "goparsvd"
	"goparsvd/coord"
	"goparsvd/internal/testutil"
	"goparsvd/server"
	"goparsvd/server/client"
)

const coordTolerance = 1e-10

// node is one in-process serve node on a real HTTP listener.
type node struct {
	srv *server.Server
	ts  *httptest.Server
}

func (n *node) kill() {
	// Abrupt: drop live connections and close the listener, so every
	// later request is a connection refusal — the same failure shape as
	// a SIGKILLed process.
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.srv.Close()
}

// bootNodes starts n serve nodes and returns their base URLs.
func bootNodes(t *testing.T, n int) ([]string, []*node) {
	t.Helper()
	urls := make([]string, n)
	nodes := make([]*node, n)
	for i := range nodes {
		srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = &node{srv: srv, ts: ts}
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
	}
	return urls, nodes
}

// coordMatrix is exactly rank 6 with no noise floor, so a K = 6
// truncated stream loses nothing and the reduce is exact.
func coordMatrix() *parsvd.Matrix {
	a, _ := testutil.RandomLowRank(64, 24, 6, 0, testutil.NewRand(42))
	return a
}

// coordWorkload is the Burgers workload in its no-truncation (K =
// Snapshots) configuration, mirroring the merge-smoke fixtures.
func coordWorkload() parsvd.Workload {
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 2
	w.Batch = 2
	w.K = 24
	w.FF = 1.0
	w.R1 = 24
	return w
}

func batchesFromMatrix(a *parsvd.Matrix, width int) func() (parsvd.Source, error) {
	return func() (parsvd.Source, error) {
		pos := 0
		return parsvd.FromBatches(func() (*parsvd.Matrix, error) {
			if pos >= a.Cols() {
				return nil, io.EOF
			}
			end := pos + width
			if end > a.Cols() {
				end = a.Cols()
			}
			b := a.SliceCols(pos, end)
			pos = end
			return b, nil
		}), nil
	}
}

// coordStreams are the three Source kinds, each as a replayable factory.
var coordStreams = []struct {
	name   string
	k      int
	replay func(t *testing.T) func() (parsvd.Source, error)
}{
	{"FromMatrix", 6, func(t *testing.T) func() (parsvd.Source, error) {
		a := coordMatrix()
		return func() (parsvd.Source, error) { return parsvd.FromMatrix(a, 2), nil }
	}},
	{"FromBatches", 6, func(t *testing.T) func() (parsvd.Source, error) {
		return batchesFromMatrix(coordMatrix(), 2)
	}},
	{"FromWorkload", 24, func(t *testing.T) func() (parsvd.Source, error) {
		w := coordWorkload()
		return func() (parsvd.Source, error) { return parsvd.FromWorkload(w, 2) }
	}},
}

// monolithic is the ground truth: one local serial fit over the stream.
func monolithic(t *testing.T, k int, mk func() (parsvd.Source, error)) []float64 {
	t.Helper()
	svd, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	src, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return res.Singular
}

func maxDiff(t *testing.T, got, want []float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("spectrum length %d, want %d", len(got), len(want))
	}
	var d float64
	for i := range want {
		if v := math.Abs(got[i] - want[i]); v > d {
			d = v
		}
	}
	return d
}

// TestCoordinatedFitMatchesMonolithic is the acceptance gate: 3 nodes ×
// 6 shards over real HTTP, all three Source kinds, ≤ 1e-10 of the
// monolithic serial fit.
func TestCoordinatedFitMatchesMonolithic(t *testing.T) {
	for _, stream := range coordStreams {
		t.Run(stream.name, func(t *testing.T) {
			urls, _ := bootNodes(t, 3)
			replay := stream.replay(t)
			c, err := coord.New(coord.Config{
				Nodes:  urls,
				Shards: 6,
				Model:  "conf",
				Spec:   server.ModelSpec{Modes: stream.k},
				Replay: replay,
				Logf:   t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			src, err := replay()
			if err != nil {
				t.Fatal(err)
			}
			merged, err := c.Run(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			defer merged.Close()
			res, err := merged.Result()
			if err != nil {
				t.Fatal(err)
			}
			want := monolithic(t, stream.k, replay)
			if d := maxDiff(t, res.Singular, want); d > coordTolerance {
				t.Errorf("coordinated spectrum deviates from monolithic by %g, want <= %g", d, coordTolerance)
			}
			// The shard-local models were cleaned up after collection.
			for i, u := range urls {
				infos, err := client.New(u).Models(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if len(infos) != 0 {
					t.Errorf("node %d still holds %d models after cleanup", i, len(infos))
				}
			}
		})
	}
}

// TestCoordinatorNodeDeathRefit kills one node mid-stream: its shards
// must be refit on survivors from the Replay source and the final
// spectrum must still meet the gate. The fault fires from inside the
// Source, between two batches the dead node had already acked.
func TestCoordinatorNodeDeathRefit(t *testing.T) {
	for _, stream := range coordStreams {
		t.Run(stream.name, func(t *testing.T) {
			urls, nodes := bootNodes(t, 3)
			replay := stream.replay(t)

			// Wrap the live stream: after batch 5, node 0 dies abruptly.
			inner, err := replay()
			if err != nil {
				t.Fatal(err)
			}
			served, killed := 0, false
			src := parsvd.FromBatches(func() (*parsvd.Matrix, error) {
				if served == 5 && !killed {
					killed = true
					nodes[0].kill()
				}
				b, err := inner.Next(context.Background())
				if err != nil {
					return nil, err
				}
				served++
				return b, nil
			})

			c, err := coord.New(coord.Config{
				Nodes:  urls,
				Shards: 6,
				Model:  "fault",
				Spec:   server.ModelSpec{Modes: stream.k},
				Replay: replay,
				Logf:   t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			merged, err := c.Run(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			defer merged.Close()
			if !killed {
				t.Fatal("fault never fired: stream shorter than expected")
			}
			res, err := merged.Result()
			if err != nil {
				t.Fatal(err)
			}
			want := monolithic(t, stream.k, replay)
			if d := maxDiff(t, res.Singular, want); d > coordTolerance {
				t.Errorf("post-failover spectrum deviates from monolithic by %g, want <= %g", d, coordTolerance)
			}
		})
	}
}

// TestCoordinatorDeathAtCollection kills a node after the stream is
// fully dealt, so the failure surfaces at checkpoint collection: the
// dead node's shards are refit in full from Replay and collected from
// the survivor.
func TestCoordinatorDeathAtCollection(t *testing.T) {
	urls, nodes := bootNodes(t, 3)
	a := coordMatrix()
	replay := batchesFromMatrix(a, 2)

	// The last batch kills node 2 AFTER it is pushed — node 2's shards
	// are complete but uncollectable.
	inner, _ := replay()
	count := 0
	src := parsvd.FromBatches(func() (*parsvd.Matrix, error) {
		b, err := inner.Next(context.Background())
		if err != nil {
			if err == io.EOF {
				nodes[2].kill()
			}
			return nil, err
		}
		count++
		return b, nil
	})

	c, err := coord.New(coord.Config{
		Nodes:  urls,
		Shards: 6,
		Model:  "collect",
		Spec:   server.ModelSpec{Modes: 6},
		Replay: replay,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := c.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := monolithic(t, 6, replay)
	if d := maxDiff(t, res.Singular, want); d > coordTolerance {
		t.Errorf("post-collection-failover spectrum deviates by %g, want <= %g", d, coordTolerance)
	}
}

// TestPlanRefusedUpFront: duplicate-shard and mixed-partitioning plans
// are refused at New with the facade's merge sentinels — before any
// network traffic (the node URLs here are unroutable on purpose).
func TestPlanRefusedUpFront(t *testing.T) {
	deadNodes := []string{"http://192.0.2.1:1", "http://192.0.2.2:1"}

	_, err := coord.New(coord.Config{
		Nodes: deadNodes, Shards: 2, Model: "m",
		Assignments: []coord.Assignment{
			{Shard: parsvd.ShardInfo{Index: 0, Count: 2}, Node: 0},
			{Shard: parsvd.ShardInfo{Index: 0, Count: 2}, Node: 1},
		},
	})
	if !errors.Is(err, parsvd.ErrShardOverlap) {
		t.Errorf("duplicate-shard plan: err = %v, want ErrShardOverlap", err)
	}

	_, err = coord.New(coord.Config{
		Nodes: deadNodes, Shards: 2, Model: "m",
		Assignments: []coord.Assignment{
			{Shard: parsvd.ShardInfo{Index: 0, Count: 2}, Node: 0},
			{Shard: parsvd.ShardInfo{Index: 1, Count: 3}, Node: 1},
		},
	})
	if !errors.Is(err, parsvd.ErrMergeIncompatible) {
		t.Errorf("mixed-partitioning plan: err = %v, want ErrMergeIncompatible", err)
	}

	_, err = coord.New(coord.Config{
		Nodes: deadNodes, Shards: 3, Model: "m",
		Assignments: []coord.Assignment{
			{Shard: parsvd.ShardInfo{Index: 0, Count: 3}, Node: 0},
			{Shard: parsvd.ShardInfo{Index: 1, Count: 3}, Node: 1},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "covers 2 of 3") {
		t.Errorf("incomplete plan: err = %v, want coverage refusal", err)
	}

	_, err = coord.New(coord.Config{
		Nodes: deadNodes, Shards: 1, Model: "m",
		Assignments: []coord.Assignment{
			{Shard: parsvd.ShardInfo{Index: 0, Count: 1}, Node: 7},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "node 7") {
		t.Errorf("out-of-range node: err = %v, want placement refusal", err)
	}
}

// TestDefaultPlanIsContiguous: the default placement is
// grid.Partition's contiguous near-equal ranges — 6 shards on 3 nodes
// means shards {0,1}→0, {2,3}→1, {4,5}→2.
func TestDefaultPlanIsContiguous(t *testing.T) {
	c, err := coord.New(coord.Config{
		Nodes:  []string{"http://a", "http://b", "http://c"},
		Shards: 6,
		Model:  "m",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2}
	p := c.Plan()
	if len(p.Assignments) != 6 {
		t.Fatalf("plan has %d assignments, want 6", len(p.Assignments))
	}
	for _, a := range p.Assignments {
		if a.Node != want[a.Shard.Index] {
			t.Errorf("shard %d on node %d, want %d", a.Shard.Index, a.Node, want[a.Shard.Index])
		}
	}
	// More nodes than shards: the extras idle, every shard still placed.
	c2, err := coord.New(coord.Config{
		Nodes:  []string{"http://a", "http://b", "http://c"},
		Shards: 2,
		Model:  "m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c2.Plan().Assignments); got != 2 {
		t.Fatalf("2-shard plan has %d assignments", got)
	}
}

// TestInstall: the merged model lands on a target node via POST /merge
// and serves the same spectrum the coordinator computed.
func TestInstall(t *testing.T) {
	urls, _ := bootNodes(t, 3)
	a := coordMatrix()
	replay := batchesFromMatrix(a, 2)
	c, err := coord.New(coord.Config{
		Nodes:  urls,
		Shards: 6,
		Model:  "inst",
		Spec:   server.ModelSpec{Modes: 6},
		Replay: replay,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := replay()
	merged, err := c.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()

	ctx := context.Background()
	if err := coord.Install(ctx, merged, urls[0], "inst", client.RetryPolicy{}); err != nil {
		t.Fatal(err)
	}
	sp, err := client.New(urls[0]).Spectrum(ctx, "inst")
	if err != nil {
		t.Fatal(err)
	}
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(t, sp.Singular, res.Singular); d != 0 {
		t.Errorf("installed spectrum deviates from merged by %g, want 0", d)
	}
	// The installed model keeps streaming.
	if _, err := client.New(urls[0]).Push(ctx, "inst", a.SliceCols(0, 2)); err != nil {
		t.Fatal(err)
	}
}

// TestKeepLeavesShardModels: with Keep set, the shard-local models stay
// registered and report their provenance in listings and health.
func TestKeepLeavesShardModels(t *testing.T) {
	urls, _ := bootNodes(t, 2)
	a := coordMatrix()
	replay := batchesFromMatrix(a, 2)
	c, err := coord.New(coord.Config{
		Nodes:  urls,
		Shards: 4,
		Model:  "keep",
		Spec:   server.ModelSpec{Modes: 6},
		Replay: replay,
		Keep:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := replay()
	merged, err := c.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	merged.Close()

	ctx := context.Background()
	total := 0
	for _, u := range urls {
		infos, err := client.New(u).Models(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range infos {
			total++
			if info.Spec.Shard == nil {
				t.Errorf("model %s has no shard spec", info.Spec.Name)
				continue
			}
			want := coord.ShardModelName("keep", info.Spec.Shard.Index, 4)
			if info.Spec.Name != want {
				t.Errorf("model %s, want %s", info.Spec.Name, want)
			}
			if info.Stats.Shard == "" {
				t.Errorf("model %s stats carry no shard provenance", info.Spec.Name)
			}
		}
	}
	if total != 4 {
		t.Errorf("%d shard models survive with Keep, want 4", total)
	}
}
