package coord_test

// The coord-smoke CI gate (make coord-smoke): three REAL parsvd-serve
// processes on kernel-picked ports, a 6-shard coordinated fit over the
// deterministic FromWorkload stream — once driven by the parsvd-coord
// binary end to end (merged checkpoint written to disk and verified),
// once through the library with one serve process SIGKILLed mid-stream
// so the failover/refit path runs against a genuinely dead process.
// Both must land ≤ 1e-10 of the monolithic serial fit.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	parsvd "goparsvd"
	"goparsvd/coord"
	"goparsvd/server"
	"goparsvd/server/client"
)

// smokeWorkload is the exactness configuration of the deterministic
// Burgers workload: forget factor 1.0 and K = Snapshots, so the shard
// reduce is exact and the ≤1e-10 gate applies. 2-column batches give 12
// batches — two per shard.
func smokeWorkload() parsvd.Workload {
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 2
	w.Batch = 2
	w.K = 24
	w.FF = 1.0
	w.R1 = 24
	return w
}

// buildBinsOnce caches the parsvd-serve and parsvd-coord binaries: one
// `go build` each per test process.
var buildBinsOnce struct {
	sync.Once
	serve, coordBin string
	err             error
}

func buildBins(t *testing.T) (serve, coordBin string) {
	t.Helper()
	buildBinsOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			buildBinsOnce.err = fmt.Errorf("no Go toolchain: %w", err)
			return
		}
		dir, err := os.MkdirTemp("", "parsvd-coord-smoke-*")
		if err != nil {
			buildBinsOnce.err = err
			return
		}
		for _, b := range []struct{ out, pkg string }{
			{"parsvd-serve", "goparsvd/cmd/parsvd-serve"},
			{"parsvd-coord", "goparsvd/cmd/parsvd-coord"},
		} {
			out := filepath.Join(dir, b.out)
			cmd := exec.Command(goBin, "build", "-o", out, b.pkg)
			if msg, err := cmd.CombinedOutput(); err != nil {
				buildBinsOnce.err = fmt.Errorf("building %s: %v\n%s", b.pkg, err, msg)
				return
			}
		}
		buildBinsOnce.serve = filepath.Join(dir, "parsvd-serve")
		buildBinsOnce.coordBin = filepath.Join(dir, "parsvd-coord")
	})
	if buildBinsOnce.err != nil {
		t.Fatal(buildBinsOnce.err)
	}
	return buildBinsOnce.serve, buildBinsOnce.coordBin
}

// serveProc is one real parsvd-serve process.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServe launches parsvd-serve on a kernel-picked port and parses
// the bound address from its log output.
func startServe(t *testing.T, bin string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("serve: %s", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &serveProc{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		t.Fatal("parsvd-serve never reported its listen address")
		return nil
	}
}

// sigkill is the crash: kill -9, no flush, no goodbye.
func (p *serveProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func startNodes(t *testing.T, bin string, n int) ([]string, []*serveProc) {
	t.Helper()
	urls := make([]string, n)
	procs := make([]*serveProc, n)
	for i := range procs {
		procs[i] = startServe(t, bin)
		urls[i] = "http://" + procs[i].addr
	}
	return urls, procs
}

// smokeMonolithic is the ground truth: one local serial fit over the
// same deterministic stream the coordinator deals (ranks = 1, matching
// the parsvd-coord binary's FromWorkload).
func smokeMonolithic(t *testing.T) []float64 {
	t.Helper()
	w := smokeWorkload()
	svd, err := parsvd.New(parsvd.WithModes(w.K))
	if err != nil {
		t.Fatal(err)
	}
	defer svd.Close()
	src, err := parsvd.FromWorkload(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return res.Singular
}

// TestCoordSmokeBinary drives the parsvd-coord BINARY against three
// real parsvd-serve processes: 6 shards over the deterministic
// workload, merged checkpoint written to disk, loaded back and held to
// ≤ 1e-10 of the monolithic serial fit.
func TestCoordSmokeBinary(t *testing.T) {
	serveBin, coordBin := buildBins(t)
	urls, _ := startNodes(t, serveBin, 3)
	w := smokeWorkload()

	out := filepath.Join(t.TempDir(), "merged.ckpt")
	cmd := exec.Command(coordBin,
		"-nodes", strings.Join(urls, ","),
		"-shards", "6",
		"-model", "smoke",
		"-workload",
		"-rows", fmt.Sprint(w.RowsPerRank),
		"-snapshots", fmt.Sprint(w.Snapshots),
		"-modes", fmt.Sprint(w.K),
		"-ff", "1",
		"-init-rank", fmt.Sprint(w.R1),
		"-init-batch", fmt.Sprint(w.InitBatch),
		"-batch", fmt.Sprint(w.Batch),
		"-q",
		"-o", out,
	)
	msg, err := cmd.CombinedOutput()
	t.Logf("parsvd-coord:\n%s", msg)
	if err != nil {
		t.Fatalf("parsvd-coord: %v", err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := parsvd.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Stats().Snapshots; got != w.Snapshots {
		t.Fatalf("merged model holds %d snapshots, want %d", got, w.Snapshots)
	}
	if d := maxDiff(t, res.Singular, smokeMonolithic(t)); d > coordTolerance {
		t.Errorf("binary-run spectrum deviates from monolithic by %g, want <= %g", d, coordTolerance)
	}
}

// TestCoordSmokeSIGKILL runs the same 6-shard coordinated fit with one
// serve PROCESS SIGKILLed between two batches it had already acked: the
// coordinator must refit the dead node's shards on the survivors from
// the Replay source and still meet the gate.
func TestCoordSmokeSIGKILL(t *testing.T) {
	serveBin, _ := buildBins(t)
	urls, procs := startNodes(t, serveBin, 3)
	w := smokeWorkload()
	replay := func() (parsvd.Source, error) { return parsvd.FromWorkload(w, 1) }

	inner, err := replay()
	if err != nil {
		t.Fatal(err)
	}
	served, killed := 0, false
	src := parsvd.FromBatches(func() (*parsvd.Matrix, error) {
		if served == 5 && !killed {
			killed = true
			procs[0].sigkill(t)
		}
		b, err := inner.Next(context.Background())
		if err != nil {
			return nil, err
		}
		served++
		return b, nil
	})

	c, err := coord.New(coord.Config{
		Nodes:  urls,
		Shards: 6,
		Model:  "smokekill",
		Spec:   server.ModelSpec{Modes: w.K, ForgetFactor: w.FF, InitRank: w.R1},
		Replay: replay,
		Retry:  client.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := c.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if !killed {
		t.Fatal("SIGKILL never fired: stream shorter than expected")
	}
	res, err := merged.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(t, res.Singular, smokeMonolithic(t)); d > coordTolerance {
		t.Errorf("post-SIGKILL spectrum deviates from monolithic by %g, want <= %g", d, coordTolerance)
	}
}
