// Package datasets exposes goparsvd's deterministic snapshot generators
// for library consumers: the analytic viscous-Burgers solution used by
// the paper's Figure 1 experiments, and the synthetic global-pressure
// field standing in for the gated ERA5 reanalysis of Figure 2 (its
// leading coherent structures are planted, so extracted modes can be
// validated instead of eyeballed). Examples and benchmarks build their
// inputs here and feed them to the parsvd facade.
package datasets

import (
	"goparsvd/internal/burgers"
	"goparsvd/internal/climate"
)

// BurgersConfig parameterizes the analytic viscous-Burgers snapshot
// generator: Nx grid points on [0, L], Nt snapshots on [0, TFinal] at
// Reynolds number Re. Its Snapshots / SnapshotsCols / Block methods
// produce the (grid × time) matrix and arbitrary sub-blocks of it.
type BurgersConfig = burgers.Config

// DefaultBurgers returns the paper-scale Burgers configuration.
func DefaultBurgers() BurgersConfig { return burgers.DefaultConfig() }

// Burgers returns a Burgers generator for the given grid, snapshot count
// and Reynolds number on x ∈ [0, 1], t ∈ [0, 2] (the paper's domain).
func Burgers(nx, nt int, re float64) BurgersConfig {
	return BurgersConfig{L: 1, Re: re, Nx: nx, Nt: nt, TFinal: 2}
}

// ClimateConfig parameterizes the synthetic global pressure data set: an
// NLat×NLon grid sampled every StepHours with planted climatology,
// annual-cycle and travelling-wave structures plus noise.
type ClimateConfig = climate.Config

// ClimateGenerator produces pressure snapshots for a ClimateConfig; its
// MeanField and AnnualField accessors return the planted structures that
// extracted modes are validated against.
type ClimateGenerator = climate.Generator

// NewClimate builds a generator for the configuration.
func NewClimate(cfg ClimateConfig) *ClimateGenerator { return climate.New(cfg) }
