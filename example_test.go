package parsvd_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	parsvd "goparsvd"
)

// plantedSnapshots builds a 6×4 snapshot matrix whose exact singular
// values are 5, 3, 2, 1: column j is σ_j times the j-th unit vector.
func plantedSnapshots() *parsvd.Matrix {
	a := parsvd.NewMatrix(6, 4)
	for j, sigma := range []float64{5, 3, 2, 1} {
		a.Set(j, j, sigma)
	}
	return a
}

// The zero-option constructor is a serial streaming SVD; every knob is a
// functional option and invalid settings come back as errors, not panics.
func ExampleNew() {
	svd, err := parsvd.New(
		parsvd.WithModes(4),
		parsvd.WithForgetFactor(1.0),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("backend:", svd.Backend())

	_, err = parsvd.New(parsvd.WithForgetFactor(2.0))
	fmt.Println("error:", err)
	// Output:
	// backend: serial
	// error: parsvd: WithForgetFactor(2): forget factor must be in (0, 1]
}

// The serial backend (ParSVD_Serial) streams batches through Fit and
// recovers the planted spectrum exactly when ff = 1.
func ExampleSVD_Fit() {
	svd, err := parsvd.New(parsvd.WithModes(4))
	if err != nil {
		panic(err)
	}
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(plantedSnapshots(), 2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d, updates: %d\n", res.Snapshots, res.Iterations)
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// snapshots: 4, updates: 1
	// 5.0 3.0 2.0 1.0
}

// The parallel backend (ParSVD_Parallel) runs the same Source across
// in-process ranks; the result carries the gathered global modes.
func ExampleSVD_Fit_parallelBackend() {
	svd, err := parsvd.New(
		parsvd.WithModes(4),
		parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(2),
	)
	if err != nil {
		panic(err)
	}
	defer svd.Close()
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(plantedSnapshots(), 2))
	if err != nil {
		panic(err)
	}
	r, c := res.Modes.Dims()
	fmt.Printf("global modes: %dx%d\n", r, c)
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// global modes: 6x4
	// 5.0 3.0 2.0 1.0
}

// The distributed backend runs one OS process per rank over loopback
// TCP as a persistent worker fleet: the first Push spawns it, every
// batch of real snapshot data is row-scattered to it over the wire, and
// it stays alive across pushes until Close. The result reports the
// spectrum plus a bit-exact SHA-256 fingerprint of the gathered modes
// (the matrix itself stays row-distributed in the workers); Save gathers
// the global state into a checkpoint that Load resumes serially.
func ExampleSVD_Push_distributedBackend() {
	const ranks = 2
	svd, err := parsvd.New(
		parsvd.WithBackend(parsvd.Distributed),
		parsvd.WithRanks(ranks),
		parsvd.WithModes(4),
	)
	if err != nil {
		panic(err)
	}
	defer svd.Close() // shuts the worker fleet down

	// Stream batches produced locally — a simulation loop, a file reader,
	// an HTTP handler — into the fleet, one Push per batch.
	a := plantedSnapshots()
	for col := 0; col < a.Cols(); col += 2 {
		if err := svd.Push(a.SliceCols(col, col+2)); err != nil {
			panic(err)
		}
	}

	res, err := svd.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d, updates: %d, fingerprinted: %v\n",
		res.Snapshots, res.Iterations, res.ModesSHA256 != "")
	for i, s := range res.Singular {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.1f", s)
	}
	fmt.Println()

	// Save gathers the fleet's row blocks at rank 0 into one global
	// checkpoint; Load resumes it (serially) anywhere.
	var ckpt bytes.Buffer
	if err := svd.Save(&ckpt); err != nil {
		panic(err)
	}
	restored, err := parsvd.Load(&ckpt)
	if err != nil {
		panic(err)
	}
	fmt.Println("restored rows:", restored.Stats().Rows)
	// Output:
	// snapshots: 4, updates: 1, fingerprinted: true
	// 5.0 3.0 2.0 1.0
	// restored rows: 6
}

// WithShards fits the stream as n independent shard-local
// decompositions — batches dealt round-robin — and reduces them through
// the pairwise merge tree when the stream ends. With forget factor 1
// and K at least the effective rank, the result matches the monolithic
// fit to rounding error.
func ExampleWithShards() {
	svd, err := parsvd.New(parsvd.WithModes(4), parsvd.WithShards(2))
	if err != nil {
		panic(err)
	}
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(plantedSnapshots(), 1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d, merge bound: %.1f\n", res.Snapshots, svd.MergeBound())
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// snapshots: 4, merge bound: 0.0
	// 5.0 3.0 2.0 1.0
}

// MergeCheckpoints reduces shard-local checkpoint files — each the Save
// of an independent fit over one piece of the snapshot set, stamped
// with its place in the partitioning via WithShard — into one serial
// model, combining them up a balanced pairwise merge tree.
func ExampleMergeCheckpoints() {
	dir, err := os.MkdirTemp("", "parsvd-merge-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Two shard-local fits over disjoint column halves.
	a := plantedSnapshots()
	paths := make([]string, 2)
	for i := range paths {
		shard, err := parsvd.New(parsvd.WithModes(4), parsvd.WithShard(i, 2))
		if err != nil {
			panic(err)
		}
		if _, err := shard.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(2*i, 2*i+2), 2)); err != nil {
			panic(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.ckpt", i))
		f, err := os.Create(paths[i])
		if err != nil {
			panic(err)
		}
		if err := shard.Save(f); err != nil {
			panic(err)
		}
		f.Close()
	}

	merged, err := parsvd.MergeCheckpoints(paths...)
	if err != nil {
		panic(err)
	}
	st := merged.Stats()
	fmt.Printf("snapshots: %d, rows: %d, bound: %.1f\n", st.Snapshots, st.Rows, merged.MergeBound())
	res, err := merged.Result()
	if err != nil {
		panic(err)
	}
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// snapshots: 4, rows: 6, bound: 0.0
	// 5.0 3.0 2.0 1.0
}

// Merge absorbs one shard's checkpoint into a live model: here the
// model fit the first half of the columns and merges a sibling's fit of
// the second half, recovering the full planted spectrum.
func ExampleSVD_Merge() {
	a := plantedSnapshots()

	sibling, err := parsvd.New(parsvd.WithModes(4), parsvd.WithShard(1, 2))
	if err != nil {
		panic(err)
	}
	if _, err := sibling.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(2, 4), 2)); err != nil {
		panic(err)
	}
	var ckpt bytes.Buffer
	if err := sibling.Save(&ckpt); err != nil {
		panic(err)
	}

	svd, err := parsvd.New(parsvd.WithModes(4), parsvd.WithShard(0, 2))
	if err != nil {
		panic(err)
	}
	if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 2), 2)); err != nil {
		panic(err)
	}
	if err := svd.Merge(&ckpt); err != nil {
		panic(err)
	}
	res, err := svd.Result()
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d\n", res.Snapshots)
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// snapshots: 4
	// 5.0 3.0 2.0 1.0
}

// Push is the incremental alternative to Fit, and Save/Load round-trip
// the full streaming state for checkpoint/restart.
func ExampleLoad() {
	svd, err := parsvd.New(parsvd.WithModes(4))
	if err != nil {
		panic(err)
	}
	a := plantedSnapshots()
	if err := svd.Push(a.SliceCols(0, 2)); err != nil {
		panic(err)
	}
	var checkpoint bytes.Buffer
	if err := svd.Save(&checkpoint); err != nil {
		panic(err)
	}

	restored, err := parsvd.Load(&checkpoint)
	if err != nil {
		panic(err)
	}
	if err := restored.Push(a.SliceCols(2, 4)); err != nil {
		panic(err)
	}
	res, err := restored.Result()
	if err != nil {
		panic(err)
	}
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// 5.0 3.0 2.0 1.0
}
