package parsvd_test

import (
	"bytes"
	"context"
	"fmt"

	parsvd "goparsvd"
)

// plantedSnapshots builds a 6×4 snapshot matrix whose exact singular
// values are 5, 3, 2, 1: column j is σ_j times the j-th unit vector.
func plantedSnapshots() *parsvd.Matrix {
	a := parsvd.NewMatrix(6, 4)
	for j, sigma := range []float64{5, 3, 2, 1} {
		a.Set(j, j, sigma)
	}
	return a
}

// The zero-option constructor is a serial streaming SVD; every knob is a
// functional option and invalid settings come back as errors, not panics.
func ExampleNew() {
	svd, err := parsvd.New(
		parsvd.WithModes(4),
		parsvd.WithForgetFactor(1.0),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("backend:", svd.Backend())

	_, err = parsvd.New(parsvd.WithForgetFactor(2.0))
	fmt.Println("error:", err)
	// Output:
	// backend: serial
	// error: parsvd: WithForgetFactor(2): forget factor must be in (0, 1]
}

// The serial backend (ParSVD_Serial) streams batches through Fit and
// recovers the planted spectrum exactly when ff = 1.
func ExampleSVD_Fit() {
	svd, err := parsvd.New(parsvd.WithModes(4))
	if err != nil {
		panic(err)
	}
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(plantedSnapshots(), 2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d, updates: %d\n", res.Snapshots, res.Iterations)
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// snapshots: 4, updates: 1
	// 5.0 3.0 2.0 1.0
}

// The parallel backend (ParSVD_Parallel) runs the same Source across
// in-process ranks; the result carries the gathered global modes.
func ExampleSVD_Fit_parallelBackend() {
	svd, err := parsvd.New(
		parsvd.WithModes(4),
		parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(2),
	)
	if err != nil {
		panic(err)
	}
	defer svd.Close()
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(plantedSnapshots(), 2))
	if err != nil {
		panic(err)
	}
	r, c := res.Modes.Dims()
	fmt.Printf("global modes: %dx%d\n", r, c)
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// global modes: 6x4
	// 5.0 3.0 2.0 1.0
}

// The distributed backend runs one OS process per rank over loopback TCP
// on a deterministic workload, and reports the spectrum plus a bit-exact
// fingerprint of the gathered modes.
func ExampleSVD_Fit_distributedBackend() {
	const ranks = 2
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 8
	w.Batch = 8
	w.K = 4
	w.R1 = 8

	svd, err := parsvd.New(
		parsvd.WithBackend(parsvd.Distributed),
		parsvd.WithRanks(ranks),
		parsvd.WithModes(w.K),
		parsvd.WithForgetFactor(w.FF),
		parsvd.WithInitRank(w.R1),
	)
	if err != nil {
		panic(err)
	}
	src, err := parsvd.FromWorkload(w, ranks)
	if err != nil {
		panic(err)
	}
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots: %d, updates: %d, modes: %d, fingerprinted: %v\n",
		res.Snapshots, res.Iterations, len(res.Singular), res.ModesSHA256 != "")
	// Output:
	// snapshots: 24, updates: 2, modes: 4, fingerprinted: true
}

// Push is the incremental alternative to Fit, and Save/Load round-trip
// the full streaming state for checkpoint/restart.
func ExampleLoad() {
	svd, err := parsvd.New(parsvd.WithModes(4))
	if err != nil {
		panic(err)
	}
	a := plantedSnapshots()
	if err := svd.Push(a.SliceCols(0, 2)); err != nil {
		panic(err)
	}
	var checkpoint bytes.Buffer
	if err := svd.Save(&checkpoint); err != nil {
		panic(err)
	}

	restored, err := parsvd.Load(&checkpoint)
	if err != nil {
		panic(err)
	}
	if err := restored.Push(a.SliceCols(2, 4)); err != nil {
		panic(err)
	}
	res, err := restored.Result()
	if err != nil {
		panic(err)
	}
	for _, s := range res.Singular {
		fmt.Printf("%.1f ", s)
	}
	fmt.Println()
	// Output:
	// 5.0 3.0 2.0 1.0
}
