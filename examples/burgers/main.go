// Example: distributed coherent-structure extraction for a nonlinear PDE.
//
// This is the paper's headline use case (§4.3) as a library consumer would
// write it: snapshots of the viscous Burgers equation are distributed
// across four ranks by domain decomposition, streamed through the parallel
// randomized SVD in batches, and the resulting global modes are compared
// with the exact truncated SVD of the full matrix. Run with:
//
//	go run ./examples/burgers
package main

import (
	"fmt"
	"os"
	"sync"

	"goparsvd/internal/apmos"
	"goparsvd/internal/burgers"
	"goparsvd/internal/core"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/postproc"
)

func main() {
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 4096, Nt: 240, TFinal: 2}
	const (
		ranks = 4
		k     = 6
		batch = 60
	)

	fmt.Printf("Burgers snapshots: %d grid points x %d times, Re = %g\n", cfg.Nx, cfg.Nt, cfg.Re)
	fmt.Printf("running %d ranks, K = %d, batch = %d\n\n", ranks, k, batch)

	parts := cfg.Partition(ranks)
	var (
		mu    sync.Mutex
		modes *mat.Dense
		vals  []float64
	)
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		r0, r1 := parts[c.Rank()][0], parts[c.Rank()][1]
		eng := core.NewParallel(c, core.Options{
			K:            k,
			ForgetFactor: 1.0, // reproduce the one-shot SVD
			LowRank:      true,
			R1:           50,
		})
		for off := 0; off < cfg.Nt; off += batch {
			end := off + batch
			if end > cfg.Nt {
				end = cfg.Nt
			}
			block := cfg.Block(r0, r1, off, end)
			if off == 0 {
				eng.Initialize(block)
			} else {
				eng.IncorporateData(block)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			vals = append([]float64(nil), eng.SingularValues()...)
			mu.Unlock()
		}
	})

	// Reference: exact truncated SVD of the full matrix (affordable at
	// this example's scale).
	exactModes, exactVals := apmos.DecomposeSerial(cfg.Snapshots(), k)

	fmt.Printf("%6s  %14s  %14s  %10s\n", "mode", "exact sigma", "streamed", "mode cosine")
	errs := postproc.CompareModes(exactModes, modes)
	for i := 0; i < k; i++ {
		fmt.Printf("%6d  %14.6e  %14.6e  %10.7f\n", i+1, exactVals[i], vals[i], errs[i].Cosine)
	}

	fmt.Println()
	postproc.ASCIIPlot(os.Stdout, "leading Burgers modes (streamed, distributed)",
		72, 14, []string{"mode 1", "mode 2"}, modes.Col(0), modes.Col(1))
}
