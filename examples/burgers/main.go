// Example: distributed coherent-structure extraction for a nonlinear PDE.
//
// This is the paper's headline use case (§4.3) as a library consumer
// would write it: snapshots of the viscous Burgers equation are streamed
// through the parallel randomized SVD (four in-process ranks behind one
// facade handle), and the resulting global modes are compared with the
// exact truncated SVD of the full matrix. Run with:
//
//	go run ./examples/burgers
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	parsvd "goparsvd"
	"goparsvd/datasets"
	"goparsvd/postproc"
)

func main() {
	cfg := datasets.Burgers(4096, 240, 1000)
	const (
		ranks = 4
		k     = 6
		batch = 60
	)

	fmt.Printf("Burgers snapshots: %d grid points x %d times, Re = %g\n", cfg.Nx, cfg.Nt, cfg.Re)
	fmt.Printf("running %d ranks, K = %d, batch = %d\n\n", ranks, k, batch)

	svd, err := parsvd.New(
		parsvd.WithModes(k),
		parsvd.WithForgetFactor(1.0), // reproduce the one-shot SVD
		parsvd.WithLowRank(),         // randomized SVDs inside (paper §3.3)
		parsvd.WithInitRank(50),
		parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(ranks),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svd.Close()

	a := cfg.Snapshots()
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, batch))
	if err != nil {
		log.Fatal(err)
	}

	// Reference: exact truncated SVD of the full matrix (affordable at
	// this example's scale).
	exactModes, exactVals, _, err := parsvd.TruncatedSVD(a, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s  %14s  %14s  %10s\n", "mode", "exact sigma", "streamed", "mode cosine")
	errs := postproc.CompareModes(exactModes, res.Modes)
	for i := 0; i < k; i++ {
		fmt.Printf("%6d  %14.6e  %14.6e  %10.7f\n", i+1, exactVals[i], res.Singular[i], errs[i].Cosine)
	}

	st := svd.Stats()
	fmt.Printf("\ntraffic: %d messages, %.1f MB across %d ranks\n",
		st.Messages, float64(st.Bytes)/1e6, st.Ranks)

	fmt.Println()
	postproc.ASCIIPlot(os.Stdout, "leading Burgers modes (streamed, distributed)",
		72, 14, []string{"mode 1", "mode 2"}, res.Modes.Col(0), res.Modes.Col(1))
}
