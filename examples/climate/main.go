// Example: climate-style EOF analysis with parallel I/O.
//
// The full Figure-2 pipeline at laptop scale: write a synthetic global
// pressure data set into a self-describing GNC container, have four ranks
// read disjoint latitude-band hyperslabs of the shared file, stream the
// bands through the distributed SVD, and validate the extracted coherent
// structures against the generator's planted patterns. Run with:
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"goparsvd/internal/climate"
	"goparsvd/internal/core"
	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/ncio"
)

func main() {
	cfg := climate.Config{
		NLat: 19, NLon: 36,
		Snapshots: 730, StepHours: 24, // two years, daily
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := climate.New(cfg)
	const (
		ranks = 4
		k     = 8
		batch = 73
	)

	dir, err := os.MkdirTemp("", "goparsvd-climate")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pressure.gnc")

	// Write the data set once (the "simulation output" stage).
	if err := writeGNC(path, gen); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB): %d snapshots on a %dx%d grid\n",
		path, float64(info.Size())/1e6, cfg.Snapshots, cfg.NLat, cfg.NLon)

	// Analysis stage: ranks partition the latitude axis and read their own
	// hyperslabs concurrently — no rank ever holds the full field.
	latParts := grid.Partition(cfg.NLat, ranks)
	var (
		mu    sync.Mutex
		modes *mat.Dense
	)
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		f, err := ncio.Open(path)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		la0, la1 := latParts[c.Rank()].Start, latParts[c.Rank()].End
		eng := core.NewParallel(c, core.Options{K: k, ForgetFactor: 0.95, LowRank: true})
		for off := 0; off < cfg.Snapshots; off += batch {
			end := off + batch
			if end > cfg.Snapshots {
				end = cfg.Snapshots
			}
			raw, err := f.ReadSlab("pressure",
				[]int64{int64(off), int64(la0), 0},
				[]int64{int64(end - off), int64(la1 - la0), int64(cfg.NLon)})
			if err != nil {
				panic(err)
			}
			block := timeMajorToGridMajor(raw, (la1-la0)*cfg.NLon, end-off)
			if off == 0 {
				eng.Initialize(block)
			} else {
				eng.IncorporateData(block)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			mu.Unlock()
		}
	})

	fmt.Println("\nextracted coherent structures (validated against planted patterns):")
	fmt.Printf("  mode 1 vs climatological mean : cosine %.5f\n",
		grid.AbsCosine(modes.Col(0), gen.MeanField()))
	fmt.Printf("  mode 2 vs annual-cycle pattern: cosine %.5f\n",
		grid.AbsCosine(modes.Col(1), gen.AnnualField()))
}

func writeGNC(path string, gen *climate.Generator) error {
	cfg := gen.Config()
	w, err := ncio.Create(path)
	if err != nil {
		return err
	}
	if err := w.DefineDim("time", int64(cfg.Snapshots)); err != nil {
		return err
	}
	if err := w.DefineDim("lat", int64(cfg.NLat)); err != nil {
		return err
	}
	if err := w.DefineDim("lon", int64(cfg.NLon)); err != nil {
		return err
	}
	if err := w.DefineVar("pressure", []string{"time", "lat", "lon"},
		map[string]string{"units": "hPa"}); err != nil {
		return err
	}
	if err := w.EndDef(); err != nil {
		return err
	}
	for s := 0; s < cfg.Snapshots; s++ {
		if err := w.WriteSlab("pressure",
			[]int64{int64(s), 0, 0},
			[]int64{1, int64(cfg.NLat), int64(cfg.NLon)},
			gen.Snapshot(s)); err != nil {
			return err
		}
	}
	return w.Close()
}

// timeMajorToGridMajor reshapes a [time][grid] slab into the engine's
// (grid rows × time columns) layout.
func timeMajorToGridMajor(raw []float64, rows, cols int) *mat.Dense {
	out := mat.New(rows, cols)
	for t := 0; t < cols; t++ {
		for r := 0; r < rows; r++ {
			out.Set(r, t, raw[t*rows+r])
		}
	}
	return out
}
