// Example: climate-style EOF analysis with file-backed snapshot I/O.
//
// The full Figure-2 pipeline at laptop scale: write a synthetic global
// pressure data set into a self-describing GNC container, stream it back
// out of the file through the distributed SVD (parsvd.FromNetCDF turns
// the time×lat×lon variable into snapshot batches), and validate the
// extracted coherent structures against the generator's planted
// patterns. Run with:
//
//	go run ./examples/climate
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	parsvd "goparsvd"
	"goparsvd/datasets"
	"goparsvd/gnc"
	"goparsvd/postproc"
)

func main() {
	cfg := datasets.ClimateConfig{
		NLat: 19, NLon: 36,
		Snapshots: 730, StepHours: 24, // two years, daily
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := datasets.NewClimate(cfg)
	const (
		ranks = 4
		k     = 8
		batch = 73
	)

	dir, err := os.MkdirTemp("", "goparsvd-climate")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pressure.gnc")

	// Write the data set once (the "simulation output" stage).
	if err := writeGNC(path, gen); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s (%.1f MB): %d snapshots on a %dx%d grid\n",
		path, float64(info.Size())/1e6, cfg.Snapshots, cfg.NLat, cfg.NLon)

	// Analysis stage: the facade streams the file variable batch by batch
	// through four parallel ranks.
	svd, err := parsvd.New(
		parsvd.WithModes(k),
		parsvd.WithForgetFactor(0.95),
		parsvd.WithLowRank(),
		parsvd.WithBackend(parsvd.Parallel),
		parsvd.WithRanks(ranks),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svd.Close()

	src, err := parsvd.FromNetCDF(path, "pressure", batch)
	if err != nil {
		log.Fatal(err)
	}
	res, err := svd.Fit(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nextracted coherent structures (validated against planted patterns):")
	fmt.Printf("  mode 1 vs climatological mean : cosine %.5f\n",
		postproc.AbsCosine(res.Modes.Col(0), gen.MeanField()))
	fmt.Printf("  mode 2 vs annual-cycle pattern: cosine %.5f\n",
		postproc.AbsCosine(res.Modes.Col(1), gen.AnnualField()))
}

func writeGNC(path string, gen *datasets.ClimateGenerator) error {
	cfg := gen.Config()
	w, err := gnc.Create(path)
	if err != nil {
		return err
	}
	if err := w.DefineDim("time", int64(cfg.Snapshots)); err != nil {
		return err
	}
	if err := w.DefineDim("lat", int64(cfg.NLat)); err != nil {
		return err
	}
	if err := w.DefineDim("lon", int64(cfg.NLon)); err != nil {
		return err
	}
	if err := w.DefineVar("pressure", []string{"time", "lat", "lon"},
		map[string]string{"units": "hPa"}); err != nil {
		return err
	}
	if err := w.EndDef(); err != nil {
		return err
	}
	for s := 0; s < cfg.Snapshots; s++ {
		if err := w.WriteSlab("pressure",
			[]int64{int64(s), 0, 0},
			[]int64{1, int64(cfg.NLat), int64(cfg.NLon)},
			gen.Snapshot(s)); err != nil {
			return err
		}
	}
	return w.Close()
}
