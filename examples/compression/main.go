// Example: scientific data compression with the streaming SVD.
//
// The paper's §2 lists data compression as a core SVD application: an
// M×N snapshot ensemble of rank ≈ r compresses to K modes plus K
// coefficients per snapshot. This example streams Burgers snapshots
// through the serial facade, compresses the whole ensemble at several
// ranks K via Coefficients/Reconstruct, and prints the storage ratio
// against the reconstruction error, showing the Eckart–Young trade-off a
// user would tune. Run with:
//
//	go run ./examples/compression
package main

import (
	"context"
	"fmt"
	"log"

	parsvd "goparsvd"
	"goparsvd/datasets"
)

func main() {
	cfg := datasets.Burgers(4096, 200, 1000)
	a := cfg.Snapshots()
	norm := a.FroNorm()
	const batch = 50

	fmt.Printf("snapshot ensemble: %d x %d (%.1f MB raw)\n\n",
		cfg.Nx, cfg.Nt, float64(cfg.Nx*cfg.Nt*8)/1e6)
	fmt.Printf("%4s  %12s  %16s  %14s\n", "K", "ratio", "rel.error", "stored MB")

	for _, k := range []int{2, 4, 8, 16, 32} {
		svd, err := parsvd.New(parsvd.WithModes(k), parsvd.WithForgetFactor(1.0))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, batch)); err != nil {
			log.Fatal(err)
		}

		// Compress: keep modes + singular values + per-snapshot coefficients.
		coeffs, err := svd.Coefficients(a)
		if err != nil {
			log.Fatal(err)
		}
		recon, err := svd.Reconstruct(coeffs)
		if err != nil {
			log.Fatal(err)
		}
		relErr := parsvd.Sub(a, recon).FroNorm() / norm
		ratio := parsvd.CompressionRatio(cfg.Nx, cfg.Nt, k)
		storedMB := float64(8*(cfg.Nx*k+k+k*cfg.Nt)) / 1e6
		fmt.Printf("%4d  %12.1fx  %16.3e  %14.2f\n", k, ratio, relErr, storedMB)
	}

	fmt.Println("\nhigher K: better reconstruction, lower compression —")
	fmt.Println("the error tracks the discarded singular-value tail (Eckart–Young).")
}
