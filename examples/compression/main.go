// Example: scientific data compression with the streaming SVD.
//
// The paper's §2 lists data compression as a core SVD application: an
// M×N snapshot ensemble of rank ≈ r compresses to K modes plus K
// coefficients per snapshot. This example streams Burgers snapshots
// through the serial engine, compresses the whole ensemble at several
// ranks K, and prints the storage ratio against the reconstruction error,
// showing the Eckart–Young trade-off a user would tune. Run with:
//
//	go run ./examples/compression
package main

import (
	"fmt"

	"goparsvd/internal/burgers"
	"goparsvd/internal/core"
	"goparsvd/internal/mat"
)

func main() {
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 4096, Nt: 200, TFinal: 2}
	a := cfg.Snapshots()
	norm := a.FroNorm()
	const batch = 50

	fmt.Printf("snapshot ensemble: %d x %d (%.1f MB raw)\n\n",
		cfg.Nx, cfg.Nt, float64(cfg.Nx*cfg.Nt*8)/1e6)
	fmt.Printf("%4s  %12s  %16s  %14s\n", "K", "ratio", "rel.error", "stored MB")

	for _, k := range []int{2, 4, 8, 16, 32} {
		eng := core.NewSerial(core.Options{K: k, ForgetFactor: 1.0})
		for off := 0; off < cfg.Nt; off += batch {
			end := off + batch
			if end > cfg.Nt {
				end = cfg.Nt
			}
			b := a.SliceCols(off, end)
			if off == 0 {
				eng.Initialize(b)
			} else {
				eng.IncorporateData(b)
			}
		}

		// Compress: keep modes + singular values + per-snapshot coefficients.
		coeffs := eng.Coefficients(a)
		recon := eng.Reconstruct(coeffs)
		relErr := mat.Sub(a, recon).FroNorm() / norm
		ratio := core.CompressionRatio(cfg.Nx, cfg.Nt, k)
		storedMB := float64(8*(cfg.Nx*k+k+k*cfg.Nt)) / 1e6
		fmt.Printf("%4d  %12.1fx  %16.3e  %14.2f\n", k, ratio, relErr, storedMB)
	}

	fmt.Println("\nhigher K: better reconstruction, lower compression —")
	fmt.Println("the error tracks the discarded singular-value tail (Eckart–Young).")
}
