// Quickstart: the smallest useful goparsvd program.
//
// It streams batches of snapshots of a synthetic low-rank data set through
// the serial streaming SVD and prints the recovered spectrum next to the
// planted one. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"goparsvd/internal/core"
	"goparsvd/internal/mat"
	"goparsvd/internal/postproc"
)

func main() {
	const (
		m     = 2000 // degrees of freedom per snapshot
		n     = 120  // total snapshots
		batch = 30   // snapshots per streaming batch
		k     = 5    // modes to retain
	)

	// Build a rank-5 data set with known singular values 50, 40, 30, 20, 10.
	planted := []float64{50, 40, 30, 20, 10}
	a := plantedMatrix(m, n, planted, rand.New(rand.NewSource(1)))

	// Stream it through the serial engine: Initialize with the first
	// batch, then IncorporateData for each subsequent one.
	svd := core.NewSerial(core.Options{K: k, ForgetFactor: 1.0})
	svd.Initialize(a.SliceCols(0, batch))
	for off := batch; off < n; off += batch {
		svd.IncorporateData(a.SliceCols(off, off+batch))
	}

	fmt.Printf("streamed %d snapshots in %d batches\n\n", svd.SnapshotsSeen(), svd.Iterations()+1)
	fmt.Printf("%6s  %12s  %12s\n", "mode", "planted", "recovered")
	for i, want := range planted {
		got := svd.SingularValues()[i]
		fmt.Printf("%6d  %12.4f  %12.4f   (|err| %.2e)\n", i+1, want, got, math.Abs(want-got))
	}

	fmt.Println()
	postproc.SingularValueReport(os.Stdout, svd.SingularValues())
}

// plantedMatrix returns U·diag(s)·Vᵀ with random orthonormal factors.
func plantedMatrix(m, n int, s []float64, rng *rand.Rand) *mat.Dense {
	u := orthonormal(m, len(s), rng)
	v := orthonormal(n, len(s), rng)
	return mat.MulTransB(mat.MulDiag(u, s), v)
}

// orthonormal draws a random n×k matrix with orthonormal columns via
// Gram–Schmidt.
func orthonormal(n, k int, rng *rand.Rand) *mat.Dense {
	q := mat.New(n, k)
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		for p := 0; p < j; p++ {
			prev := q.Col(p)
			mat.Axpy(-mat.Dot(prev, col), prev, col)
		}
		norm := mat.Nrm2(col)
		for i := range col {
			col[i] /= norm
		}
		q.SetCol(j, col)
	}
	return q
}
