// Quickstart: the smallest useful goparsvd program.
//
// It streams batches of a synthetic low-rank data set through the public
// parsvd facade and prints the recovered spectrum next to the planted
// one. The whole program imports exactly one library package: goparsvd.
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	parsvd "goparsvd"
)

func main() {
	const (
		m     = 2000 // degrees of freedom per snapshot
		n     = 120  // total snapshots
		batch = 30   // snapshots per streaming batch
		k     = 5    // modes to retain
	)

	// Build a rank-5 data set with known singular values 50, 40, 30, 20, 10.
	planted := []float64{50, 40, 30, 20, 10}
	a := plantedMatrix(m, n, planted, rand.New(rand.NewSource(1)))

	// One constructor, functional options, errors instead of panics.
	svd, err := parsvd.New(
		parsvd.WithModes(k),
		parsvd.WithForgetFactor(1.0), // 1.0 reproduces the one-shot SVD
	)
	if err != nil {
		log.Fatal(err)
	}

	// Fit drains a Source: here the in-memory matrix, 30 columns at a time.
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(a, batch))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d snapshots in %d batches\n\n", res.Snapshots, res.Iterations+1)
	fmt.Printf("%6s  %12s  %12s\n", "mode", "planted", "recovered")
	for i, want := range planted {
		got := res.Singular[i]
		fmt.Printf("%6d  %12.4f  %12.4f   (|err| %.2e)\n", i+1, want, got, math.Abs(want-got))
	}

	fmt.Println()
	fmt.Printf("%6s  %14s  %10s\n", "mode", "sigma", "energy")
	total := 0.0
	for _, s := range res.Singular {
		total += s * s
	}
	for i, s := range res.Singular {
		fmt.Printf("%6d  %14.6e  %9.4f%%\n", i+1, s, 100*s*s/total)
	}
}

// plantedMatrix returns U·diag(s)·Vᵀ with random orthonormal factors.
func plantedMatrix(m, n int, s []float64, rng *rand.Rand) *parsvd.Matrix {
	u := orthonormal(m, len(s), rng)
	v := orthonormal(n, len(s), rng)
	return parsvd.MulTransB(parsvd.MulDiag(u, s), v)
}

// orthonormal draws a random n×k matrix with orthonormal columns via
// Gram–Schmidt.
func orthonormal(n, k int, rng *rand.Rand) *parsvd.Matrix {
	q := parsvd.NewMatrix(n, k)
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		for p := 0; p < j; p++ {
			prev := q.Col(p)
			parsvd.Axpy(-parsvd.Dot(prev, col), prev, col)
		}
		norm := parsvd.Nrm2(col)
		for i := range col {
			col[i] /= norm
		}
		q.SetCol(j, col)
	}
	return q
}
