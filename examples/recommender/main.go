// Example: incremental latent factors for a recommender system.
//
// The paper's introduction motivates streaming SVD with recommender
// systems (Sarwar et al., its reference [18]): item-factor models must be
// refreshed as new user interactions arrive, without refactorizing the
// full history. This example maintains the top-K left singular vectors
// ("item factors") of a growing item×user rating matrix with parsvd.Push
// — one day of users per batch — and shows that recommendation scores
// from the streamed factors track the batch SVD. Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	parsvd "goparsvd"
)

const (
	nItems       = 600
	nLatent      = 4  // planted taste dimensions
	usersPerDay  = 80 // new users per streamed batch
	nDays        = 10
	retainedK    = 4 // factors kept by the model
	ratingNoise  = 0.3
	nTestQueries = 5
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Planted model: items and users live in a small shared taste space.
	itemFactors := randomMatrix(nItems, nLatent, rng) // what each item "is"
	fmt.Printf("simulating %d items, %d days x %d users/day, %d latent tastes\n\n",
		nItems, nDays, usersPerDay, nLatent)

	// Stream daily rating batches through Push. ForgetFactor 1.0 keeps
	// the full history so the result is comparable with the batch SVD; a
	// production system tracking drifting tastes would use < 1.
	model, err := parsvd.New(parsvd.WithModes(retainedK), parsvd.WithForgetFactor(1.0))
	if err != nil {
		log.Fatal(err)
	}
	var history []*parsvd.Matrix
	for day := 0; day < nDays; day++ {
		batch := ratingsBatch(itemFactors, usersPerDay, rng)
		history = append(history, batch)
		if err := model.Push(batch); err != nil {
			log.Fatal(err)
		}
		res, err := model.Result()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %2d: %5d users ingested, top singular value %.2f\n",
			day+1, res.Snapshots, res.Singular[0])
	}
	res, err := model.Result()
	if err != nil {
		log.Fatal(err)
	}

	// Reference: one-shot SVD of the full accumulated matrix. Item latent
	// representations are the σ-weighted left factors U·diag(s), the
	// standard embedding in SVD-based recommenders.
	full := parsvd.HStack(history...)
	batchU, batchS, _, err := parsvd.TruncatedSVD(full, retainedK)
	if err != nil {
		log.Fatal(err)
	}
	batchEmbed := parsvd.MulDiag(batchU, batchS)
	streamEmbed := parsvd.MulDiag(res.Modes, res.Singular)

	// Recommendation sanity check: item-item similarity scores from the
	// streamed factors must rank items like the batch factors do.
	fmt.Println("\nitem-item similarity agreement (streamed vs batch factors):")
	agree := 0
	for q := 0; q < nTestQueries; q++ {
		item := rng.Intn(nItems)
		bBest := mostSimilar(batchEmbed, item)
		sBest := mostSimilar(streamEmbed, item)
		match := "✗"
		if bBest == sBest {
			match = "✓"
			agree++
		}
		fmt.Printf("  query item %4d → batch says %4d, streamed says %4d  %s\n",
			item, bBest, sBest, match)
	}
	fmt.Printf("\n%d/%d nearest-neighbour queries agree\n", agree, nTestQueries)

	// Subspace distance between the factor spaces.
	fmt.Printf("factor-subspace alignment (1 = identical): %.4f\n",
		subspaceAlignment(batchU, res.Modes))
}

// ratingsBatch synthesizes one day of users: each user has a random taste
// vector; their rating for an item is the taste·item affinity plus noise.
func ratingsBatch(items *parsvd.Matrix, users int, rng *rand.Rand) *parsvd.Matrix {
	tastes := randomMatrix(users, nLatent, rng)
	ratings := parsvd.MulTransB(items, tastes) // items × users
	data := ratings.RawData()
	for i := range data {
		data[i] += ratingNoise * rng.NormFloat64()
	}
	return ratings
}

// mostSimilar returns the index of the item most similar to the query item
// in the factor space (cosine similarity over factor rows).
func mostSimilar(factors *parsvd.Matrix, item int) int {
	q := factors.Row(item)
	best, bestScore := -1, math.Inf(-1)
	for i := 0; i < factors.Rows(); i++ {
		if i == item {
			continue
		}
		r := factors.Row(i)
		score := parsvd.Dot(q, r) / (parsvd.Nrm2(q)*parsvd.Nrm2(r) + 1e-300)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// subspaceAlignment returns a [0,1] score comparing the column spaces of
// two factor matrices: 1 − ‖P_a − P_b‖_F / sqrt(2k).
func subspaceAlignment(a, b *parsvd.Matrix) float64 {
	_, k := a.Dims()
	pa := parsvd.MulTransB(a, a)
	pb := parsvd.MulTransB(b, b)
	return 1 - parsvd.Sub(pa, pb).FroNorm()/math.Sqrt(2*float64(k))
}

func randomMatrix(r, c int, rng *rand.Rand) *parsvd.Matrix {
	m := parsvd.NewMatrix(r, c)
	data := m.RawData()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}
