// Serving: the SVD-as-a-service round trip, in one process.
//
// This example embeds the goparsvd server (the same engine behind
// cmd/parsvd-serve) on a loopback port, then acts as a remote client:
// create a model, stream snapshot batches at it over HTTP, and query the
// spectrum, stats and a reconstruction while ingest state lives entirely
// on the server side. Everything here works identically against a
// standalone `parsvd-serve` deployment — point client.New at it.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"

	parsvd "goparsvd"
	"goparsvd/server"
	"goparsvd/server/client"
)

func main() {
	// Boot the service on a loopback port.
	srv, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		srv.Close()
	}()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	// One model: rank-4 truncation with the paper's forget factor.
	if _, err := c.CreateModel(ctx, server.ModelSpec{
		Name:         "waves",
		Modes:        4,
		ForgetFactor: 0.95,
	}); err != nil {
		log.Fatal(err)
	}

	// A deterministic traveling-wave snapshot matrix: 96 grid points
	// observed 40 times, streamed to the server in 8-column batches.
	const rows, cols, batch = 96, 40, 8
	snaps := parsvd.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		t := float64(j) / float64(cols)
		for i := 0; i < rows; i++ {
			x := float64(i) / float64(rows)
			snaps.Set(i, j,
				math.Sin(2*math.Pi*(x-t))+0.3*math.Cos(6*math.Pi*(x+0.5*t)))
		}
	}
	for at := 0; at < cols; at += batch {
		if _, err := c.Push(ctx, "waves", snaps.SliceCols(at, at+batch)); err != nil {
			log.Fatal(err)
		}
	}

	// Query the decomposition the server holds.
	spectrum, err := c.Spectrum(ctx, "waves")
	if err != nil {
		log.Fatal(err)
	}
	info, err := c.Model(ctx, "waves")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %q: %d snapshots ingested, %d updates, K=%d\n",
		info.Spec.Name, info.Stats.Snapshots, info.Stats.Updates, info.Stats.K)
	fmt.Printf("leading singular values: %.3f %.3f\n", spectrum.Singular[0], spectrum.Singular[1])

	// Round-trip a snapshot through the server-side modes: project to 4
	// coefficients, reconstruct, and measure the rank-4 error.
	probe := snaps.SliceCols(0, 1)
	coeffs, err := c.Project(ctx, "waves", probe)
	if err != nil {
		log.Fatal(err)
	}
	back, err := c.Reconstruct(ctx, "waves", coeffs)
	if err != nil {
		log.Fatal(err)
	}
	relErr := parsvd.Sub(back, probe).FroNorm() / probe.FroNorm()
	fmt.Printf("rank-%d reconstruction of snapshot 0: relative error %.2e\n",
		coeffs.Rows(), relErr)
}
