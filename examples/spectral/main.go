// Example: spectral POD of travelling atmospheric waves.
//
// The paper's §2 motivates the library through POD and its spectral
// variant (SPOD / spectral EOF analysis of weather data — the second
// author's PySPOD package). Plain POD mixes a travelling wave's phases
// into pairs of standing modes; SPOD separates coherent structures *by
// frequency*. The synthetic pressure field in internal/climate carries an
// eastward-travelling planetary wave with a 12-day period by construction;
// this example runs SPOD on a midlatitude band and recovers that period
// from the data. Run with:
//
//	go run ./examples/spectral
package main

import (
	"fmt"
	"math"

	"goparsvd/datasets"
	"goparsvd/spod"
)

func main() {
	// Two years of 6-hourly snapshots on a coarse grid.
	cfg := datasets.ClimateConfig{
		NLat: 19, NLon: 36,
		Snapshots: 2920, StepHours: 6,
		Seed: 7, NoiseAmp: 0.8,
		SubtractClimatology: true, // spectral analysis works on anomalies
	}
	gen := datasets.NewClimate(cfg)

	// Restrict to the northern storm track (45N ± one grid row), where the
	// travelling wave lives.
	iLat := 0
	for r, la := range gen.Lat() {
		if math.Abs(la-45) < math.Abs(gen.Lat()[iLat]-45) {
			iLat = r
		}
	}
	r0 := (iLat - 1) * cfg.NLon
	r1 := (iLat + 2) * cfg.NLon
	band := gen.RowBlock(r0, r1, 0, cfg.Snapshots)
	fmt.Printf("storm-track band: %d grid points x %d snapshots (6-hourly)\n",
		band.Rows(), band.Cols())

	// Remove the zonal mean of every latitude row in every snapshot: this
	// eliminates the zonally symmetric annual/semi-annual cycles (which
	// would otherwise dominate the low-frequency bins) while leaving the
	// zonally structured travelling wave untouched.
	nLatRows := band.Rows() / cfg.NLon
	for t := 0; t < band.Cols(); t++ {
		for lr := 0; lr < nLatRows; lr++ {
			mean := 0.0
			for j := 0; j < cfg.NLon; j++ {
				mean += band.At(lr*cfg.NLon+j, t)
			}
			mean /= float64(cfg.NLon)
			for j := 0; j < cfg.NLon; j++ {
				idx := lr*cfg.NLon + j
				band.Set(idx, t, band.At(idx, t)-mean)
			}
		}
	}

	dtDays := cfg.StepHours / 24
	res := spod.Compute(band, spod.Options{
		NFFT:    256, // 64-day blocks
		Overlap: 0.5,
		DT:      dtDays,
		K:       3,
	})

	// Report the dominant nonzero frequency.
	peak := res.PeakFrequency()
	if peak == 0 && len(res.Energies) > 1 {
		// Skip the mean (f = 0) if it dominates.
		best := 1
		for f := 2; f < len(res.Energies); f++ {
			if res.Energies[f][0] > res.Energies[best][0] {
				best = f
			}
		}
		peak = best
	}
	fPeak := res.Frequencies[peak]
	fmt.Printf("\ndominant oscillation: f = %.5f cycles/day → period %.2f days\n",
		fPeak, 1/fPeak)
	fmt.Println("planted planetary-wave period: 12 days")

	fmt.Println("\nleading SPOD energy by period:")
	fmt.Printf("%12s  %14s\n", "period[d]", "energy")
	for f := 1; f < len(res.Frequencies); f++ {
		// Print the neighbourhood of the peak only.
		if absInt(f-peak) <= 3 {
			fmt.Printf("%12.2f  %14.5e\n", 1/res.Frequencies[f], res.Energies[f][0])
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
