package parsvd

// Test-only seams. This file compiles into the parsvd test binary only,
// so the public surface stays exactly what parsvd.go declares.

import "time"

// DistWorkerPIDs exposes the Distributed backend's worker process IDs in
// rank order (fault-injection tests kill individual ranks). It returns
// nil before the first batch has spawned the fleet, or for other
// backends.
func DistWorkerPIDs(s *SVD) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.eng.(*distEngine); ok && d.sess != nil {
		return d.sess.WorkerPIDs()
	}
	return nil
}

// DistSetDeadline drives the Distributed backend's deadline seam
// directly (Fit normally owns it), so tests can pin the pre-wire
// refusal behavior deterministically.
func DistSetDeadline(s *SVD, t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.eng.(*distEngine); ok {
		d.setDeadline(t)
	}
}
