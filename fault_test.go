package parsvd_test

// Fault injection against the Distributed backend's persistent session:
// killing a worker mid-stream must surface promptly as a typed engine
// failure (never a hang), reap the whole fleet, leave the SVD permanently
// poisoned, and leak nothing.

import (
	"errors"
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"

	parsvd "goparsvd"

	"goparsvd/internal/testutil"
)

// faultSVD builds a 2-rank distributed SVD with a short idle timeout so
// even the slowest failure path (a wedged-but-alive peer) resolves within
// the test budget.
func faultSVD(t *testing.T) *parsvd.SVD {
	t.Helper()
	svd, err := parsvd.New(
		parsvd.WithModes(4),
		parsvd.WithBackend(parsvd.Distributed),
		parsvd.WithRanks(2),
		parsvd.WithTransport(parsvd.TransportConfig{
			Timeout:     30 * time.Second,
			IdleTimeout: 10 * time.Second,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svd.Close() })
	return svd
}

// TestDistributedWorkerDeathPoisonsSVD: SIGKILL one rank after the stream
// is established, then push again. The facade must return an error
// wrapping ErrEngineFailed well inside the idle timeout, every worker
// process must be reaped, all later operations must refuse with the same
// sentinel, and the launcher side must not leak goroutines.
func TestDistributedWorkerDeathPoisonsSVD(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process fault injection")
	}
	rng := testutil.NewRand(9)
	batch := func() *parsvd.Matrix { return testutil.RandomDense(32, 6, rng) }

	before := runtime.NumGoroutine()
	svd := faultSVD(t)
	if err := svd.Push(batch()); err != nil {
		t.Fatalf("seed push: %v", err)
	}
	pids := parsvd.DistWorkerPIDs(svd)
	if len(pids) != 2 || pids[0] == 0 || pids[1] == 0 {
		t.Fatalf("worker pids: %v", pids)
	}
	if err := syscall.Kill(pids[1], syscall.SIGKILL); err != nil {
		t.Fatalf("killing rank 1: %v", err)
	}

	start := time.Now()
	err := svd.Push(batch())
	detect := time.Since(start)
	if err == nil {
		t.Fatal("push into a dead fleet did not error")
	}
	if !errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("push error %v does not wrap ErrEngineFailed", err)
	}
	if detect > 10*time.Second {
		t.Fatalf("failure took %v to surface; must beat the idle timeout, not ride it", detect)
	}

	// Poisoned: every further operation refuses with the same sentinel,
	// immediately (the fleet is gone; nothing is retried on the wire).
	if err := svd.Push(batch()); !errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("push on poisoned SVD: %v", err)
	}
	if _, err := svd.Result(); !errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("result on poisoned SVD: %v", err)
	}
	if err := svd.Save(new(discardWriter)); !errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("save on poisoned SVD: %v", err)
	}

	// The whole fleet — the healthy rank 0 included — is reaped well
	// within the idle timeout.
	deadline := time.Now().Add(10 * time.Second)
	for _, pid := range pids {
		for time.Now().Before(deadline) && syscall.Kill(pid, 0) == nil {
			time.Sleep(20 * time.Millisecond)
		}
		if syscall.Kill(pid, 0) == nil {
			t.Errorf("worker pid %d still alive after the session failed", pid)
		}
	}

	if err := svd.Close(); err != nil {
		t.Fatalf("close after failure: %v", err)
	}
	waitForGoroutineBaseline(t, before)
}

// TestDistributedDeadlineRefusalDoesNotPoison: an expired Fit deadline
// that refuses an operation before any frame reached the fleet is a
// clean context-style error — it must NOT wrap ErrEngineFailed, and the
// still-healthy fleet must keep serving once the deadline is lifted.
func TestDistributedDeadlineRefusalDoesNotPoison(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process run")
	}
	rng := testutil.NewRand(12)
	svd := faultSVD(t)
	if err := svd.Push(testutil.RandomDense(32, 6, rng)); err != nil {
		t.Fatal(err)
	}

	parsvd.DistSetDeadline(svd, time.Now().Add(-time.Second))
	if _, err := svd.Result(); err == nil {
		t.Fatal("Result past the deadline did not error")
	} else if errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("deadline refusal poisoned the engine: %v", err)
	}
	if err := svd.Save(new(discardWriter)); err == nil || errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("Save past the deadline: %v, want a plain refusal", err)
	}
	if err := svd.Push(testutil.RandomDense(32, 6, rng)); err == nil || errors.Is(err, parsvd.ErrEngineFailed) {
		t.Fatalf("Push past the deadline: %v, want a plain refusal", err)
	}

	parsvd.DistSetDeadline(svd, time.Time{})
	if err := svd.Push(testutil.RandomDense(32, 6, rng)); err != nil {
		t.Fatalf("push after lifting the deadline: %v", err)
	}
	if _, err := svd.Result(); err != nil {
		t.Fatalf("result after lifting the deadline: %v", err)
	}
}

// TestDistributedCloseReapsFleet: a healthy Close shuts every worker down
// and leaves no goroutines behind; the SVD then refuses further work.
func TestDistributedCloseReapsFleet(t *testing.T) {
	if testing.Short() && os.Getenv("CI") == "" {
		t.Skip("short mode: skipping multi-process fault injection")
	}
	rng := testutil.NewRand(10)
	before := runtime.NumGoroutine()
	svd := faultSVD(t)
	if err := svd.Push(testutil.RandomDense(32, 6, rng)); err != nil {
		t.Fatal(err)
	}
	pids := parsvd.DistWorkerPIDs(svd)
	if err := svd.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, pid := range pids {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && syscall.Kill(pid, 0) == nil {
			time.Sleep(20 * time.Millisecond)
		}
		if syscall.Kill(pid, 0) == nil {
			t.Errorf("worker pid %d survived Close", pid)
		}
	}
	if err := svd.Push(testutil.RandomDense(32, 6, rng)); err == nil {
		t.Fatal("push after Close did not error")
	}
	waitForGoroutineBaseline(t, before)
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// waitForGoroutineBaseline polls until the goroutine count settles back
// to (or near) the baseline, tolerating runtime background noise.
func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutines leaked: %d before, %d after\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
}
