// Package gnc reads and writes goparsvd's self-describing array
// container (GNC): the NetCDF-style format behind the paper's parallel
// I/O experiments — named dimensions, typed variables with attributes,
// and strided hyperslab access so concurrent readers each pull their own
// sub-block of a shared file. parsvd.FromNetCDF streams snapshot
// matrices straight out of these files.
package gnc

import "goparsvd/internal/ncio"

// DType is a variable's on-disk element type.
type DType = ncio.DType

// Element types for DefineVarTyped.
const (
	Float64 = ncio.Float64
	Float32 = ncio.Float32
)

// Dim is a named axis with a fixed size.
type Dim = ncio.Dim

// Var describes one variable: name, element type, dimensions,
// attributes.
type Var = ncio.Var

// Writer builds a container file: define dimensions and variables, call
// EndDef, then write values. WriteSlab is safe for concurrent use on
// disjoint slabs.
type Writer = ncio.Writer

// File is a read handle; ReadSlab serves arbitrary hyperslabs and is
// safe for concurrent use.
type File = ncio.File

// Create starts a new container file at path.
func Create(path string) (*Writer, error) { return ncio.Create(path) }

// Open opens an existing container file for reading.
func Open(path string) (*File, error) { return ncio.Open(path) }
