module goparsvd

go 1.24
