package parsvd_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/core"
	"goparsvd/internal/mat"
	"goparsvd/internal/rla"
	"goparsvd/internal/testutil"
)

var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata golden files from the current internal/core checkpoint writer")

// goldenState is the deterministic engine state behind the committed
// checkpoint fixture. Both the generator (-update-golden) and the
// verifier derive it from the same formulas, so the committed bytes pin
// the on-disk format, not the values.
func goldenState() (core.Options, *mat.Dense, []float64, int, int) {
	opts := core.Options{
		K:            3,
		ForgetFactor: 0.95,
		LowRank:      true,
		RLA:          rla.Options{Oversample: 5, PowerIters: 2, Seed: 42},
		R1:           50,
	}
	modes := mat.New(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			modes.Set(i, j, math.Sin(float64(i+1))*float64(j+1)/10)
		}
	}
	singular := []float64{3.5, 2.25, 1.125}
	return opts, modes, singular, 4, 9
}

// TestGoldenCheckpointBackwardCompat proves parsvd.Load reads checkpoint
// files written by the internal/core writer, byte-for-byte as committed:
// a facade release must keep loading engine-written checkpoints from
// before the facade existed.
func TestGoldenCheckpointBackwardCompat(t *testing.T) {
	path := filepath.Join("testdata", "checkpoint_v1_serial.golden")
	opts, modes, singular, iters, snaps := goldenState()

	if *updateGolden {
		eng, err := core.RestoreSerial(opts, modes.Clone(), singular, iters, snaps)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, buf.Len())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update-golden): %v", err)
	}

	// The fixture must be bit-identical to what the current writer emits:
	// any format change (intended or not) trips this first.
	eng, err := core.RestoreSerial(opts, modes.Clone(), singular, iters, snaps)
	if err != nil {
		t.Fatal(err)
	}
	var now bytes.Buffer
	if err := eng.Save(&now); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, now.Bytes()) {
		t.Fatal("internal/core checkpoint writer output changed; if intentional, bump the format version and regenerate with -update-golden")
	}

	// And the public facade must load it losslessly.
	svd, err := parsvd.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.CloseSlices(res.Singular, singular, 0) {
		t.Fatalf("spectrum: got %v want %v", res.Singular, singular)
	}
	if !mat.EqualApprox(res.Modes, modes, 0) {
		t.Fatal("modes differ from golden state")
	}
	if res.Iterations != iters || res.Snapshots != snaps {
		t.Fatalf("counters: %d/%d want %d/%d", res.Iterations, res.Snapshots, iters, snaps)
	}
}

// TestLoadRejectsCorruptedCheckpoints: damage that passes the header
// checks still fails loudly at load time (the stream.Restore validation),
// not deep inside the next update.
func TestLoadRejectsCorruptedCheckpoints(t *testing.T) {
	if _, err := parsvd.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage loaded")
	}
	path := filepath.Join("testdata", "checkpoint_v1_serial.golden")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Skip("golden fixture missing")
	}
	for cut := 1; cut < len(raw); cut += 37 {
		if _, err := parsvd.Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes loaded", cut)
		}
	}
	// Flip K below the stored mode count: the restore-time invariant
	// K >= len(singular) must reject it.
	bad := append([]byte(nil), raw...)
	bad[5] = 1 // K int64 little-endian lives at bytes 5..13
	for i := 6; i < 13; i++ {
		bad[i] = 0
	}
	if _, err := parsvd.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("checkpoint with K < len(singular) loaded")
	}
}
