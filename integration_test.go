package parsvd_test

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"goparsvd/internal/burgers"
	"goparsvd/internal/climate"
	"goparsvd/internal/core"
	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/ncio"
	"goparsvd/internal/postproc"
)

// TestIntegrationBurgersSerialVsParallel is the repository-level statement
// of the paper's Figure 1(a,b) claim: for the Burgers workload, the serial
// streaming SVD and the distributed randomized streaming SVD agree mode by
// mode to small absolute error.
func TestIntegrationBurgersSerialVsParallel(t *testing.T) {
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 1024, Nt: 120, TFinal: 2}
	const (
		ranks = 4
		k     = 6
		batch = 30
		ff    = 0.95
	)

	serial := runSerialBurgers(cfg, k, batch, ff)
	parallel := runParallelBurgers(cfg, ranks, k, batch, ff, true)

	errs := postproc.CompareModes(serial.Modes(), parallel)
	for _, e := range errs[:2] { // the two modes the paper plots
		if e.MaxAbs > 1e-4 {
			t.Errorf("mode %d: max|serial-parallel| = %.3e, want < 1e-4", e.Mode+1, e.MaxAbs)
		}
		if e.Cosine < 0.999999 {
			t.Errorf("mode %d: cosine %.8f, want ~1", e.Mode+1, e.Cosine)
		}
	}
}

// TestIntegrationStreamedMatchesOneShot checks the ff = 1 contract end to
// end on the Burgers workload: streaming must reproduce the one-shot
// truncated SVD of the full snapshot matrix.
func TestIntegrationStreamedMatchesOneShot(t *testing.T) {
	// K is deliberately generous relative to the checked modes: streaming
	// truncates to K after every batch, so the retained subspace must
	// cover the spectrum's tail for the ff = 1 equivalence to be tight.
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 768, Nt: 90, TFinal: 2}
	serial := runSerialBurgers(cfg, 15, 30, 1.0)
	u, s, _ := linalg.SVD(cfg.Snapshots())
	for i := 0; i < 3; i++ {
		rel := math.Abs(serial.SingularValues()[i]-s[i]) / s[0]
		// The floor is set by the discarded σ_{K+1:} tail, not roundoff:
		// with K = 15 on this spectrum it sits just under 1e-5.
		if rel > 1e-5 {
			t.Errorf("sigma_%d: streamed %.6e vs one-shot %.6e (rel %.2e)",
				i+1, serial.SingularValues()[i], s[i], rel)
		}
	}
	errs := postproc.CompareModes(u.SliceCols(0, 3), serial.Modes().SliceCols(0, 3))
	for _, e := range errs {
		if e.Cosine < 0.99999 {
			t.Errorf("mode %d cosine %.7f", e.Mode+1, e.Cosine)
		}
	}
}

// TestIntegrationERA5Pipeline runs the full Figure-2 pipeline — generate,
// write GNC, parallel hyperslab reads, distributed streaming SVD — and
// validates the extracted structures against the planted ones.
func TestIntegrationERA5Pipeline(t *testing.T) {
	cfg := climate.Config{
		NLat: 19, NLon: 36, Snapshots: 365, StepHours: 24,
		Seed: 2013, NoiseAmp: 1.5,
	}
	gen := climate.New(cfg)
	path := filepath.Join(t.TempDir(), "pressure.gnc")

	// Write the data set.
	w, err := ncio.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []func() error{
		func() error { return w.DefineDim("time", int64(cfg.Snapshots)) },
		func() error { return w.DefineDim("lat", int64(cfg.NLat)) },
		func() error { return w.DefineDim("lon", int64(cfg.NLon)) },
		func() error { return w.DefineVar("pressure", []string{"time", "lat", "lon"}, nil) },
		func() error { return w.EndDef() },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < cfg.Snapshots; s++ {
		if err := w.WriteSlab("pressure", []int64{int64(s), 0, 0},
			[]int64{1, int64(cfg.NLat), int64(cfg.NLon)}, gen.Snapshot(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Parallel analysis phase.
	const ranks = 3
	latParts := partitionN(cfg.NLat, ranks)
	var mu sync.Mutex
	var modes *mat.Dense
	mpi.MustRun(ranks, func(c *mpi.Comm) {
		f, err := ncio.Open(path)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		la0, la1 := latParts[c.Rank()][0], latParts[c.Rank()][1]
		rows := (la1 - la0) * cfg.NLon
		eng := core.NewParallel(c, core.Options{K: 5, ForgetFactor: 0.95, LowRank: true})
		const batch = 73
		for off := 0; off < cfg.Snapshots; off += batch {
			end := off + batch
			if end > cfg.Snapshots {
				end = cfg.Snapshots
			}
			raw, err := f.ReadSlab("pressure",
				[]int64{int64(off), int64(la0), 0},
				[]int64{int64(end - off), int64(la1 - la0), int64(cfg.NLon)})
			if err != nil {
				panic(err)
			}
			block := mat.New(rows, end-off)
			for ts := 0; ts < end-off; ts++ {
				for r := 0; r < rows; r++ {
					block.Set(r, ts, raw[ts*rows+r])
				}
			}
			if off == 0 {
				eng.Initialize(block)
			} else {
				eng.IncorporateData(block)
			}
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			mu.Unlock()
		}
	})

	if cos := absCos(modes.Col(0), gen.MeanField()); cos < 0.999 {
		t.Errorf("mode 1 vs climatology cosine %.5f, want > 0.999", cos)
	}
	if cos := absCos(modes.Col(1), gen.AnnualField()); cos < 0.95 {
		t.Errorf("mode 2 vs annual cycle cosine %.5f, want > 0.95", cos)
	}
}

// TestIntegrationArtifactsWritable exercises the postprocessing export path
// the cmd binaries rely on (CSV + PGM round trip to disk).
func TestIntegrationArtifactsWritable(t *testing.T) {
	dir := t.TempDir()
	cfg := burgers.Config{L: 1, Re: 1000, Nx: 256, Nt: 40, TFinal: 2}
	eng := runSerialBurgers(cfg, 3, 20, 1.0)

	csvPath := filepath.Join(dir, "modes.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := postproc.WriteModesCSV(f, cfg.Grid(), eng.Modes()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	info, err := os.Stat(csvPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("modes CSV missing or empty: %v", err)
	}

	pgmPath := filepath.Join(dir, "field.pgm")
	g, err := os.Create(pgmPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := postproc.WritePGMHeatmap(g, eng.Modes().Col(0), 16, 16); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if info, err := os.Stat(pgmPath); err != nil || info.Size() == 0 {
		t.Fatal("PGM missing or empty")
	}
}
