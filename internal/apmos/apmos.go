// Package apmos implements the approximate partitioned method of snapshots
// (Wang, McBee & Iliescu 2016), the distributed-SVD building block of
// PyParSVD (paper §3.2, Algorithm 2, Listing 3).
//
// The data matrix A ∈ R^{M×N} (M grid points ≫ N snapshots) is partitioned
// by rows across P ranks; rank i holds A_i ∈ R^{M_i×N}. Each rank computes
// its local right singular vectors, the truncated factors are gathered at
// rank 0 into W = [Ṽ¹(Σ̃¹)ᵀ | … | Ṽᴾ(Σ̃ᴾ)ᵀ], an SVD of W yields the global
// right basis X and singular values Λ, and every rank assembles its slice
// of the global left singular vectors as Ũʲᵢ = (1/Λ_j)·A_i·X_j.
//
// With no truncation (r1 = N) the method is exact, because
// AᵀA = Σᵢ AᵢᵀAᵢ = W·Wᵀ; the r1/r2 thresholds trade accuracy for
// communication volume exactly as the paper describes.
package apmos

import (
	"fmt"
	"math"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
)

// Method selects how each rank computes its local right singular vectors.
type Method int

const (
	// MethodGram uses the method of snapshots: the eigen/SVD decomposition
	// of the N×N Gram matrix AᵢᵀAᵢ. This is the paper's choice ("one may
	// also perform a method of snapshots approach ... provided Mᵢ ≫ N")
	// and the cheaper path when local blocks are tall.
	MethodGram Method = iota
	// MethodSVD computes a thin SVD of the local block directly. More
	// accurate for small singular values, costlier for tall blocks.
	MethodSVD
)

// Options configures a distributed APMOS decomposition.
type Options struct {
	// K is the number of global modes (left singular vectors) to assemble.
	K int
	// R1 is the number of right-vector columns each rank contributes to
	// the gathered W matrix (paper default: 50). Zero means min(50, N).
	R1 int
	// R2 is the number of columns of X broadcast back to the ranks (paper
	// default: 5). Zero means max(K, 5). K is clamped to R2.
	R2 int
	// Method selects the local right-vector computation.
	Method Method
	// LowRank switches the root SVD of W to the randomized algorithm.
	LowRank bool
	// RLA configures the randomized SVD when LowRank is set.
	RLA rla.Options
}

func (o Options) withDefaults(n int) Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.R1 <= 0 {
		o.R1 = 50
	}
	if o.R1 > n {
		o.R1 = n
	}
	if o.R2 <= 0 {
		o.R2 = o.K
		if o.R2 < 5 {
			o.R2 = 5
		}
	}
	if o.K > o.R2 {
		o.K = o.R2
	}
	if o.RLA.IsZero() {
		o.RLA = rla.DefaultOptions()
	}
	return o
}

// GenerateRightVectors computes the leading r1 right singular vectors and
// singular values of the local block a (the paper's
// `generate_right_vectors`). The returned V is N×r1 and s has length r1.
func GenerateRightVectors(a *mat.Dense, r1 int, method Method) (v *mat.Dense, s []float64) {
	_, n := a.Dims()
	if r1 > n {
		r1 = n
	}
	if r1 < 1 {
		panic(fmt.Sprintf("apmos: r1 = %d < 1", r1))
	}
	switch method {
	case MethodGram:
		// Method of snapshots: AᵀA = V·Σ²·Vᵀ. The Gram matrix is symmetric
		// PSD, so its SVD coincides with its eigendecomposition and we can
		// reuse the fast Golub–Reinsch path.
		gram := mat.MulTransA(a, a)
		vg, s2, _ := linalg.SVD(gram)
		s = make([]float64, r1)
		for i := 0; i < r1; i++ {
			if s2[i] > 0 {
				s[i] = math.Sqrt(s2[i])
			}
		}
		return vg.SliceCols(0, r1), s
	case MethodSVD:
		_, sf, vf := linalg.SVD(a)
		if len(sf) < r1 {
			// Pad with zero columns/values so the caller always sees r1.
			padV := mat.New(n, r1)
			for j := 0; j < vf.Cols(); j++ {
				padV.SetCol(j, vf.Col(j))
			}
			padS := make([]float64, r1)
			copy(padS, sf)
			return padV, padS
		}
		return vf.SliceCols(0, r1), sf[:r1]
	default:
		panic(fmt.Sprintf("apmos: unknown method %d", method))
	}
}

// Decompose runs Algorithm 2 over the communicator: a is this rank's row
// block A_i of the global snapshot matrix. It returns this rank's slice of
// the K global modes (M_i×K) and the K global singular values; both are
// valid on every rank.
func Decompose(c *mpi.Comm, a *mat.Dense, opts Options) (modes *mat.Dense, s []float64) {
	_, n := a.Dims()
	opts = opts.withDefaults(n)

	// Step 1–2: local right vectors, truncated to r1 columns.
	vlocal, slocal := GenerateRightVectors(a, opts.R1, opts.Method)

	// Step 3: W_i = Ṽᵢ·diag(Σ̃ᵢ), gathered at rank 0 (paper Listing 3:
	// wlocal = vlocal · diag(slocal)ᵀ; comm.gather(wlocal, root=0)).
	wlocal := mat.MulDiag(vlocal, slocal)
	gathered := c.GatherMatrix(0, wlocal)

	// Step 4–5: SVD of W at the root, truncated to r2 columns.
	var x *mat.Dense
	var lam []float64
	if c.Rank() == 0 {
		wglobal := mat.HStack(gathered...)
		if opts.LowRank {
			var err error
			x, lam, err = rla.LowRankSVD(wglobal, opts.R2, opts.RLA)
			if err != nil {
				// withDefaults pins R2 >= 1 and wglobal is never empty, so
				// a rejection here is a broken internal invariant.
				panic(fmt.Sprintf("apmos: low-rank SVD: %v", err))
			}
		} else {
			x, lam, _ = linalg.SVD(wglobal)
		}
		if x.Cols() > opts.R2 {
			x = x.SliceCols(0, opts.R2)
			lam = lam[:opts.R2]
		}
	}

	// Step 6: broadcast X̃ and Λ̃ to every rank.
	x = c.BcastMatrix(0, x)
	lam = c.BcastFloats(0, lam)

	// Step 7: local slice of each global mode, Ũʲᵢ = (1/Λ_j)·A_i·X_j. The
	// 1/Λ scaling runs in place on the product, sparing an intermediate.
	k := opts.K
	if k > len(lam) {
		k = len(lam)
	}
	inv := make([]float64, k)
	for j := 0; j < k; j++ {
		if lam[j] > 0 {
			inv[j] = 1 / lam[j]
		}
	}
	modes = mat.Mul(a, x.SliceCols(0, k))
	mat.MulDiagInto(modes, modes, inv)
	return modes, lam[:k]
}

// DecomposeSerial is the single-process reference: the exact truncated SVD
// of the full matrix, returning the leading K modes and singular values. It
// is what Decompose converges to as r1 → N.
func DecomposeSerial(a *mat.Dense, k int) (modes *mat.Dense, s []float64) {
	u, sv, _ := linalg.SVDTruncated(a, k)
	return u, sv
}
