package apmos

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

// splitRows partitions a into p contiguous row blocks as evenly as possible.
func splitRows(a *mat.Dense, p int) []*mat.Dense {
	m := a.Rows()
	blocks := make([]*mat.Dense, p)
	base, rem := m/p, m%p
	off := 0
	for r := 0; r < p; r++ {
		rows := base
		if r < rem {
			rows++
		}
		blocks[r] = a.SliceRows(off, off+rows)
		off += rows
	}
	return blocks
}

// runDecompose executes APMOS over p ranks and stitches the per-rank mode
// slices back into global modes.
func runDecompose(t *testing.T, a *mat.Dense, p int, opts Options) (modes *mat.Dense, s []float64) {
	t.Helper()
	blocks := splitRows(a, p)
	modeBlocks := make([]*mat.Dense, p)
	var sOut []float64
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		m, sv := Decompose(c, blocks[c.Rank()], opts)
		mu.Lock()
		modeBlocks[c.Rank()] = m
		if c.Rank() == 0 {
			sOut = sv
		}
		mu.Unlock()
	})
	return mat.VStack(modeBlocks...), sOut
}

func TestGenerateRightVectorsGramMatchesSVD(t *testing.T) {
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(50, 12, rng)
	vg, sg := GenerateRightVectors(a, 6, MethodGram)
	vs, ss := GenerateRightVectors(a, 6, MethodSVD)
	if !testutil.CloseSlices(sg, ss, 1e-9) {
		t.Fatalf("gram s %v vs svd s %v", sg, ss)
	}
	if err := testutil.MaxColumnError(vs, vg); err > 1e-7 {
		t.Fatalf("right vector mismatch %g", err)
	}
}

func TestGenerateRightVectorsMatchesGlobalSVD(t *testing.T) {
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(60, 10, rng)
	_, s, v := linalg.SVD(a)
	vg, sg := GenerateRightVectors(a, 5, MethodGram)
	if !testutil.CloseSlices(sg, s[:5], 1e-9) {
		t.Fatalf("singular values: %v vs %v", sg, s[:5])
	}
	if err := testutil.MaxColumnError(v.SliceCols(0, 5), vg); err > 1e-7 {
		t.Fatalf("vectors differ by %g", err)
	}
}

func TestGenerateRightVectorsClampsR1(t *testing.T) {
	rng := testutil.NewRand(3)
	a := testutil.RandomDense(20, 4, rng)
	v, s := GenerateRightVectors(a, 99, MethodGram)
	if v.Cols() != 4 || len(s) != 4 {
		t.Fatalf("r1 not clamped: V cols %d, s %d", v.Cols(), len(s))
	}
}

func TestGenerateRightVectorsSVDPadsShortBlocks(t *testing.T) {
	// A 3×8 block has only 3 singular values; asking for r1 = 6 must pad.
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(3, 8, rng)
	v, s := GenerateRightVectors(a, 6, MethodSVD)
	if v.Cols() != 6 || len(s) != 6 {
		t.Fatalf("padding failed: V cols %d, s %d", v.Cols(), len(s))
	}
	for _, sv := range s[3:] {
		if sv != 0 {
			t.Fatalf("padded values must be zero: %v", s)
		}
	}
}

func TestDecomposeExactWhenUntruncated(t *testing.T) {
	// With r1 = N the method is exact: AᵀA = W·Wᵀ. Modes and singular
	// values must match the serial truncated SVD.
	rng := testutil.NewRand(5)
	a, _ := testutil.RandomLowRank(120, 16, 8, 1e-3, rng)
	k := 5
	opts := Options{K: k, R1: 16, R2: k}
	for _, p := range []int{1, 2, 4} {
		modes, s := runDecompose(t, a, p, opts)
		serialModes, serialS := DecomposeSerial(a, k)
		if !testutil.CloseSlices(s, serialS, 1e-8) {
			t.Fatalf("p=%d: singular values %v vs %v", p, s, serialS)
		}
		if err := testutil.MaxColumnError(serialModes, modes); err > 1e-6 {
			t.Fatalf("p=%d: mode error %g", p, err)
		}
	}
}

func TestDecomposeModesOrthonormal(t *testing.T) {
	rng := testutil.NewRand(6)
	a, _ := testutil.RandomLowRank(100, 20, 10, 1e-4, rng)
	modes, _ := runDecompose(t, a, 4, Options{K: 6, R1: 20, R2: 6})
	testutil.CheckOrthonormalColumns(t, "modes", modes, 1e-6)
}

func TestDecomposeTruncationDegradesGracefully(t *testing.T) {
	// Shrinking r1 must not catastrophically break the leading mode when
	// the spectrum decays fast (the paper's accuracy/communication trade).
	rng := testutil.NewRand(7)
	a, _ := testutil.RandomLowRank(150, 30, 4, 1e-6, rng)
	serialModes, _ := DecomposeSerial(a, 2)
	for _, r1 := range []int{30, 10, 6} {
		modes, _ := runDecompose(t, a, 3, Options{K: 2, R1: r1, R2: 2})
		if err := testutil.SubspaceError(serialModes, modes); err > 1e-4 {
			t.Fatalf("r1=%d: leading subspace error %g", r1, err)
		}
	}
}

func TestDecomposeTruncationErrorMonotonicTendency(t *testing.T) {
	// On a matrix with slow spectral decay, heavy truncation must be
	// measurably worse than no truncation.
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(120, 24, rng)
	serialModes, _ := DecomposeSerial(a, 3)
	exact, _ := runDecompose(t, a, 4, Options{K: 3, R1: 24, R2: 3})
	trunc, _ := runDecompose(t, a, 4, Options{K: 3, R1: 4, R2: 3})
	errExact := testutil.SubspaceError(serialModes, exact)
	errTrunc := testutil.SubspaceError(serialModes, trunc)
	if errExact > 1e-8 {
		t.Fatalf("untruncated APMOS should be exact, error %g", errExact)
	}
	if errTrunc <= errExact {
		t.Fatalf("truncated run (%g) should be worse than exact (%g)", errTrunc, errExact)
	}
}

func TestDecomposeLowRankRootSVD(t *testing.T) {
	// The randomized root SVD must agree with the deterministic one on a
	// rapidly decaying spectrum.
	rng := testutil.NewRand(9)
	a, _ := testutil.RandomLowRank(100, 20, 6, 1e-6, rng)
	det, sDet := runDecompose(t, a, 2, Options{K: 4, R1: 20, R2: 4})
	rnd, sRnd := runDecompose(t, a, 2, Options{K: 4, R1: 20, R2: 4, LowRank: true})
	for i := range sDet {
		if math.Abs(sDet[i]-sRnd[i]) > 1e-6*(1+sDet[0]) {
			t.Fatalf("randomized singular values differ: %v vs %v", sRnd, sDet)
		}
	}
	if err := testutil.SubspaceError(det, rnd); err > 1e-5 {
		t.Fatalf("randomized modes differ: %g", err)
	}
}

func TestDecomposeSingleRankMatchesSerial(t *testing.T) {
	rng := testutil.NewRand(10)
	a := testutil.RandomDense(60, 12, rng)
	modes, s := runDecompose(t, a, 1, Options{K: 4, R1: 12, R2: 4})
	serialModes, serialS := DecomposeSerial(a, 4)
	if !testutil.CloseSlices(s, serialS, 1e-9) {
		t.Fatalf("values %v vs %v", s, serialS)
	}
	if err := testutil.MaxColumnError(serialModes, modes); err > 1e-7 {
		t.Fatalf("mode error %g", err)
	}
}

func TestDecomposeDefaults(t *testing.T) {
	opts := Options{}.withDefaults(100)
	if opts.K != 10 || opts.R1 != 50 || opts.R2 != 10 {
		t.Fatalf("defaults = %+v", opts)
	}
	opts = Options{K: 2}.withDefaults(100)
	if opts.R2 != 5 {
		t.Fatalf("small-K default R2 = %d, want 5", opts.R2)
	}
	opts = Options{K: 20, R2: 3}.withDefaults(100)
	if opts.K != 3 {
		t.Fatalf("K should clamp to R2: %d", opts.K)
	}
}

func TestDecomposeZeroSingularValueSafe(t *testing.T) {
	// A rank-1 matrix with K=3 forces 1/Λ_j division guards for Λ_j = 0.
	x := mat.New(40, 1)
	for i := 0; i < 40; i++ {
		x.Set(i, 0, float64(i+1))
	}
	y := mat.New(8, 1)
	for i := 0; i < 8; i++ {
		y.Set(i, 0, math.Sin(float64(i)))
	}
	a := mat.MulTransB(x, y)
	modes, s := runDecompose(t, a, 2, Options{K: 3, R1: 8, R2: 3})
	// The Gram-matrix path squares the condition number, so "zero" trailing
	// values surface as ~sqrt(eps)·σ₁ noise; check them relative to σ₁.
	if s[1] > 1e-7*s[0] || s[2] > 1e-7*s[0] {
		t.Fatalf("rank-1 matrix: s = %v", s)
	}
	for i := 0; i < modes.Rows(); i++ {
		for j := 0; j < modes.Cols(); j++ {
			if math.IsNaN(modes.At(i, j)) || math.IsInf(modes.At(i, j), 0) {
				t.Fatal("mode assembly produced NaN/Inf for zero singular value")
			}
		}
	}
}

// Property: for random low-rank-plus-noise matrices, untruncated APMOS
// reproduces the serial singular values for any rank count.
func TestPropertyDecomposeMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(5)
		n := 6 + rng.Intn(10)
		m := p*4 + 40 + rng.Intn(60)
		a := testutil.RandomDense(m, n, rng)
		k := 2 + rng.Intn(3)
		blocks := splitRows(a, p)
		var s []float64
		var mu sync.Mutex
		mpi.MustRun(p, func(c *mpi.Comm) {
			_, sv := Decompose(c, blocks[c.Rank()], Options{K: k, R1: n, R2: k})
			if c.Rank() == 0 {
				mu.Lock()
				s = sv
				mu.Unlock()
			}
		})
		_, serialS := DecomposeSerial(a, k)
		return testutil.CloseSlices(s, serialS, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 20, Rand: testutil.NewRand(11)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
