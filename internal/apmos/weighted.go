package apmos

import (
	"fmt"
	"math"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
)

// Weighted POD. The original APMOS paper (Wang, McBee & Iliescu 2016)
// formulates the method for inner products weighted by quadrature or
// cell-volume weights — on a non-uniform mesh the POD optimality property
// only holds in the weighted norm ⟨u, v⟩_w = uᵀ·diag(w)·v. PyParSVD's
// released code assumes uniform weights; this is the general form.
//
// The implementation is the standard change of variables: decompose
// Ã_i = diag(√w_i)·A_i with the unweighted algorithm, then map the modes
// back with diag(1/√w_i). The returned modes are orthonormal in the
// weighted inner product: Uᵀ·diag(w)·U = I.

// WeightedDecompose runs Algorithm 2 under the weighted inner product
// defined by the per-row weights w (one entry per local grid point, all
// strictly positive — e.g. cell volumes or quadrature weights). Shapes and
// semantics otherwise match Decompose.
func WeightedDecompose(c *mpi.Comm, a *mat.Dense, w []float64, opts Options) (modes *mat.Dense, s []float64) {
	if len(w) != a.Rows() {
		panic(fmt.Sprintf("apmos: %d weights for %d local rows", len(w), a.Rows()))
	}
	sqrtW := make([]float64, len(w))
	invSqrtW := make([]float64, len(w))
	for i, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("apmos: weight[%d] = %g must be positive and finite", i, v))
		}
		sqrtW[i] = math.Sqrt(v)
		invSqrtW[i] = 1 / sqrtW[i]
	}
	scaled := mat.DiagMul(sqrtW, a)
	weightedModes, s := Decompose(c, scaled, opts)
	return mat.DiagMul(invSqrtW, weightedModes), s
}

// WeightedGram computes Uᵀ·diag(w)·U, the Gram matrix of the columns of U
// in the weighted inner product; for weighted-orthonormal modes it is the
// identity. Exposed for validation and tests.
func WeightedGram(u *mat.Dense, w []float64) *mat.Dense {
	if len(w) != u.Rows() {
		panic(fmt.Sprintf("apmos: %d weights for %d rows", len(w), u.Rows()))
	}
	return mat.MulTransA(u, mat.DiagMul(w, u))
}
