package apmos

import (
	"math"
	"sync"
	"testing"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

// runWeighted executes WeightedDecompose over p ranks with per-rank weight
// slices and stitches the global modes.
func runWeighted(t *testing.T, a *mat.Dense, w []float64, p int, opts Options) (*mat.Dense, []float64) {
	t.Helper()
	blocks := splitRows(a, p)
	wBlocks := make([][]float64, p)
	off := 0
	for r := 0; r < p; r++ {
		wBlocks[r] = w[off : off+blocks[r].Rows()]
		off += blocks[r].Rows()
	}
	modeBlocks := make([]*mat.Dense, p)
	var s []float64
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		m, sv := WeightedDecompose(c, blocks[c.Rank()], wBlocks[c.Rank()], opts)
		mu.Lock()
		modeBlocks[c.Rank()] = m
		if c.Rank() == 0 {
			s = sv
		}
		mu.Unlock()
	})
	return mat.VStack(modeBlocks...), s
}

func TestWeightedUniformReducesToStandard(t *testing.T) {
	rng := testutil.NewRand(51)
	a, _ := testutil.RandomLowRank(60, 14, 4, 1e-8, rng)
	w := make([]float64, 60)
	for i := range w {
		w[i] = 1
	}
	opts := Options{K: 3, R1: 14, R2: 3}
	standard, sStd := runDecompose(t, a, 2, opts)
	weighted, sW := runWeighted(t, a, w, 2, opts)
	if !testutil.CloseSlices(sStd, sW, 1e-10) {
		t.Fatalf("uniform weights changed the spectrum: %v vs %v", sW, sStd)
	}
	if err := testutil.SubspaceError(standard, weighted); err > 1e-8 {
		t.Fatalf("uniform weights changed the modes: %g", err)
	}
}

func TestWeightedModesWeightOrthonormal(t *testing.T) {
	rng := testutil.NewRand(52)
	a, _ := testutil.RandomLowRank(80, 16, 5, 1e-7, rng)
	w := make([]float64, 80)
	for i := range w {
		w[i] = 0.5 + rng.Float64()*3 // strongly non-uniform cell volumes
	}
	modes, _ := runWeighted(t, a, w, 4, Options{K: 4, R1: 16, R2: 4})
	gram := WeightedGram(modes, w)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(gram.At(i, j)-want) > 1e-6 {
				t.Fatalf("weighted Gram[%d,%d] = %g, want %g", i, j, gram.At(i, j), want)
			}
		}
	}
}

func TestWeightedMatchesExplicitScaling(t *testing.T) {
	// WeightedDecompose must equal: scale rows by sqrt(w), run the plain
	// serial SVD, unscale — the defining change of variables.
	rng := testutil.NewRand(53)
	a, _ := testutil.RandomLowRank(50, 12, 3, 0, rng)
	w := make([]float64, 50)
	sqrtW := make([]float64, 50)
	invSqrtW := make([]float64, 50)
	for i := range w {
		w[i] = 1 + rng.Float64()
		sqrtW[i] = math.Sqrt(w[i])
		invSqrtW[i] = 1 / sqrtW[i]
	}
	wantModes, wantS := DecomposeSerial(mat.DiagMul(sqrtW, a), 3)
	wantModes = mat.DiagMul(invSqrtW, wantModes)

	gotModes, gotS := runWeighted(t, a, w, 2, Options{K: 3, R1: 12, R2: 3})
	if !testutil.CloseSlices(gotS, wantS, 1e-8) {
		t.Fatalf("spectra differ: %v vs %v", gotS, wantS)
	}
	if err := testutil.MaxColumnError(wantModes, gotModes); err > 1e-6 {
		t.Fatalf("modes differ by %g", err)
	}
}

func TestWeightedValidation(t *testing.T) {
	a := mat.New(4, 2)
	for name, w := range map[string][]float64{
		"length":   {1, 1},
		"zero":     {1, 0, 1, 1},
		"negative": {1, -2, 1, 1},
		"nan":      {1, math.NaN(), 1, 1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			mpi.MustRun(1, func(c *mpi.Comm) {
				WeightedDecompose(c, a, w, Options{K: 1, R1: 2, R2: 1})
			})
		})
	}
}

func TestWeightedGramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("weight length mismatch did not panic")
		}
	}()
	WeightedGram(mat.New(3, 2), []float64{1, 2})
}
