// Package burgers generates snapshot data for the viscous Burgers equation
// test case of the paper (§4.3, Eq. 12–13): the analytical solution
//
//	u(x,t) = (x/(t+1)) / (1 + sqrt((t+1)/t₀)·exp(Re·x²/(4t+4))),  t₀ = e^{Re/8}
//
// on x ∈ [0, L] with u(0,t) = u(L,t) = 0, sampled on a uniform grid to build
// the M×N data matrix (M grid points × N snapshots) whose SVD modes Figures
// 1(a) and 1(b) validate. The paper's configuration is Re = 1000, L = 1,
// t ∈ [0, 2], M = 16384, N = 800.
package burgers

import (
	"fmt"
	"math"

	"goparsvd/internal/mat"
)

// Config describes a Burgers snapshot ensemble.
type Config struct {
	// L is the domain length (paper: 1).
	L float64
	// Re is the Reynolds number 1/ν (paper: 1000).
	Re float64
	// Nx is the number of grid points (paper: 16384).
	Nx int
	// Nt is the number of snapshots (paper: 800).
	Nt int
	// TFinal is the final time (paper: 2).
	TFinal float64
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{L: 1, Re: 1000, Nx: 16384, Nt: 800, TFinal: 2}
}

func (c Config) validate() {
	if c.L <= 0 || c.Re <= 0 || c.Nx < 2 || c.Nt < 1 || c.TFinal <= 0 {
		panic(fmt.Sprintf("burgers: invalid config %+v", c))
	}
}

// Solution evaluates the closed-form solution u(x, t) for the given
// Reynolds number (paper Eq. 13). It is finite and well-behaved for all
// x ≥ 0, t ≥ 0 because the exponential is evaluated in log space.
func Solution(x, t, re float64) float64 {
	if x == 0 {
		return 0
	}
	// t0 = exp(Re/8) overflows float64 for Re = 1000, so work with
	// log(sqrt((t+1)/t0) · exp(Re·x²/(4t+4)))
	//   = 0.5·log(t+1) − Re/16 + Re·x²/(4t+4)... with log(t0) = Re/8:
	//   = 0.5·(log(t+1) − Re/8) + Re·x²/(4t+4).
	logTerm := 0.5*(math.Log(t+1)-re/8) + re*x*x/(4*t+4)
	// u = (x/(t+1)) / (1 + e^{logTerm}).
	if logTerm > 700 { // e^{logTerm} overflows; u underflows to 0
		return 0
	}
	return (x / (t + 1)) / (1 + math.Exp(logTerm))
}

// Grid returns the Nx uniformly spaced points on [0, L].
func (c Config) Grid() []float64 {
	c.validate()
	x := make([]float64, c.Nx)
	dx := c.L / float64(c.Nx-1)
	for i := range x {
		x[i] = float64(i) * dx
	}
	return x
}

// Times returns the Nt snapshot times, uniformly spaced on [0, TFinal].
func (c Config) Times() []float64 {
	c.validate()
	t := make([]float64, c.Nt)
	if c.Nt == 1 {
		return t
	}
	dt := c.TFinal / float64(c.Nt-1)
	for j := range t {
		t[j] = float64(j) * dt
	}
	return t
}

// Snapshots builds the full Nx×Nt data matrix: column j is the solution at
// time t_j sampled over the grid.
func (c Config) Snapshots() *mat.Dense {
	return c.SnapshotsRows(0, c.Nx)
}

// SnapshotsRows builds the row block [r0, r1) of the snapshot matrix — the
// portion of the domain owned by one rank in a distributed run. Columns
// still span all Nt snapshots.
func (c Config) SnapshotsRows(r0, r1 int) *mat.Dense {
	c.validate()
	if r0 < 0 || r1 > c.Nx || r0 > r1 {
		panic(fmt.Sprintf("burgers: row range [%d,%d) out of [0,%d)", r0, r1, c.Nx))
	}
	dx := c.L / float64(c.Nx-1)
	times := c.Times()
	out := mat.New(r1-r0, c.Nt)
	for i := r0; i < r1; i++ {
		x := float64(i) * dx
		row := out.RowView(i - r0)
		for j, t := range times {
			row[j] = Solution(x, t, c.Re)
		}
	}
	return out
}

// SnapshotsCols builds the full-height column block [c0, c1) of the
// snapshot matrix — one streaming batch of snapshots.
func (c Config) SnapshotsCols(c0, c1 int) *mat.Dense {
	c.validate()
	if c0 < 0 || c1 > c.Nt || c0 > c1 {
		panic(fmt.Sprintf("burgers: column range [%d,%d) out of [0,%d)", c0, c1, c.Nt))
	}
	dx := c.L / float64(c.Nx-1)
	times := c.Times()
	out := mat.New(c.Nx, c1-c0)
	for i := 0; i < c.Nx; i++ {
		x := float64(i) * dx
		row := out.RowView(i)
		for j := c0; j < c1; j++ {
			row[j-c0] = Solution(x, times[j], c.Re)
		}
	}
	return out
}

// Block builds the row block [r0, r1) restricted to snapshot columns
// [c0, c1): one rank's share of one streaming batch.
func (c Config) Block(r0, r1, c0, c1 int) *mat.Dense {
	c.validate()
	if r0 < 0 || r1 > c.Nx || r0 > r1 {
		panic(fmt.Sprintf("burgers: row range [%d,%d) out of [0,%d)", r0, r1, c.Nx))
	}
	if c0 < 0 || c1 > c.Nt || c0 > c1 {
		panic(fmt.Sprintf("burgers: column range [%d,%d) out of [0,%d)", c0, c1, c.Nt))
	}
	dx := c.L / float64(c.Nx-1)
	times := c.Times()
	out := mat.New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		x := float64(i) * dx
		row := out.RowView(i - r0)
		for j := c0; j < c1; j++ {
			row[j-c0] = Solution(x, times[j], c.Re)
		}
	}
	return out
}

// Partition splits the Nx grid points into p contiguous near-equal row
// ranges and returns the (start, end) pairs.
func (c Config) Partition(p int) [][2]int {
	c.validate()
	if p < 1 {
		panic(fmt.Sprintf("burgers: partition into %d ranks", p))
	}
	out := make([][2]int, p)
	base, rem := c.Nx/p, c.Nx%p
	off := 0
	for r := 0; r < p; r++ {
		rows := base
		if r < rem {
			rows++
		}
		out[r] = [2]int{off, off + rows}
		off += rows
	}
	return out
}
