package burgers

import (
	"math"
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

func testConfig() Config {
	return Config{L: 1, Re: 1000, Nx: 256, Nt: 40, TFinal: 2}
}

func TestSolutionBoundaryConditions(t *testing.T) {
	for _, tt := range []float64{0, 0.5, 1, 2} {
		if u := Solution(0, tt, 1000); u != 0 {
			t.Fatalf("u(0,%g) = %g, want 0", tt, u)
		}
		// At x = L the huge exponential drives u to ~0 (the analytic value
		// at t = 2 is ≈ 1.7e-10, so the BC is satisfied approximately).
		if u := Solution(1, tt, 1000); math.Abs(u) > 1e-8 {
			t.Fatalf("u(1,%g) = %g, want ~0", tt, u)
		}
	}
}

func TestSolutionFiniteEverywhere(t *testing.T) {
	for _, x := range []float64{0, 1e-6, 0.1, 0.25, 0.5, 0.9, 0.999, 1} {
		for _, tt := range []float64{0, 1e-6, 0.3, 1, 2} {
			u := Solution(x, tt, 1000)
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Fatalf("u(%g,%g) = %g", x, tt, u)
			}
			if u < 0 {
				t.Fatalf("u(%g,%g) = %g < 0; solution should be non-negative", x, tt, u)
			}
		}
	}
}

func TestSolutionNontrivial(t *testing.T) {
	// The wave has O(0.1) amplitude somewhere in the interior.
	found := false
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		if Solution(x, 1, 1000) > 0.05 {
			found = true
		}
	}
	if !found {
		t.Fatal("solution appears identically ~0; check the closed form")
	}
}

func TestSolutionSatisfiesPDE(t *testing.T) {
	// Finite-difference check of u_t + u·u_x = ν·u_xx at interior points.
	const re = 100.0 // moderate Re keeps finite differences well-conditioned
	nu := 1.0 / re
	h, dt := 1e-5, 1e-5
	for _, x := range []float64{0.2, 0.4, 0.6} {
		for _, tt := range []float64{0.5, 1.0} {
			ut := (Solution(x, tt+dt, re) - Solution(x, tt-dt, re)) / (2 * dt)
			ux := (Solution(x+h, tt, re) - Solution(x-h, tt, re)) / (2 * h)
			uxx := (Solution(x+h, tt, re) - 2*Solution(x, tt, re) + Solution(x-h, tt, re)) / (h * h)
			u := Solution(x, tt, re)
			resid := ut + u*ux - nu*uxx
			scale := math.Abs(ut) + math.Abs(u*ux) + math.Abs(nu*uxx) + 1e-12
			if math.Abs(resid)/scale > 1e-3 {
				t.Fatalf("PDE residual at (x=%g,t=%g): %g (relative %g)",
					x, tt, resid, math.Abs(resid)/scale)
			}
		}
	}
}

func TestGridAndTimes(t *testing.T) {
	cfg := testConfig()
	x := cfg.Grid()
	if len(x) != cfg.Nx || x[0] != 0 || math.Abs(x[len(x)-1]-cfg.L) > 1e-14 {
		t.Fatalf("grid endpoints: %g..%g", x[0], x[len(x)-1])
	}
	tm := cfg.Times()
	if len(tm) != cfg.Nt || tm[0] != 0 || math.Abs(tm[len(tm)-1]-cfg.TFinal) > 1e-14 {
		t.Fatalf("times endpoints: %g..%g", tm[0], tm[len(tm)-1])
	}
}

func TestSnapshotsShapeAndContent(t *testing.T) {
	cfg := testConfig()
	a := cfg.Snapshots()
	if a.Rows() != cfg.Nx || a.Cols() != cfg.Nt {
		t.Fatalf("shape %dx%d", a.Rows(), a.Cols())
	}
	x := cfg.Grid()
	tm := cfg.Times()
	for _, probe := range [][2]int{{10, 3}, {100, 20}, {200, 39}} {
		i, j := probe[0], probe[1]
		want := Solution(x[i], tm[j], cfg.Re)
		if a.At(i, j) != want {
			t.Fatalf("snapshot[%d,%d] = %g, want %g", i, j, a.At(i, j), want)
		}
	}
}

func TestRowAndColumnBlocksConsistent(t *testing.T) {
	cfg := testConfig()
	full := cfg.Snapshots()
	rows := cfg.SnapshotsRows(50, 120)
	if !mat.EqualApprox(rows, full.Slice(50, 120, 0, cfg.Nt), 0) {
		t.Fatal("SnapshotsRows disagrees with full matrix")
	}
	cols := cfg.SnapshotsCols(5, 25)
	if !mat.EqualApprox(cols, full.Slice(0, cfg.Nx, 5, 25), 0) {
		t.Fatal("SnapshotsCols disagrees with full matrix")
	}
	blk := cfg.Block(30, 90, 10, 30)
	if !mat.EqualApprox(blk, full.Slice(30, 90, 10, 30), 0) {
		t.Fatal("Block disagrees with full matrix")
	}
}

func TestPartitionCoversGrid(t *testing.T) {
	cfg := testConfig()
	for _, p := range []int{1, 3, 4, 7} {
		parts := cfg.Partition(p)
		if parts[0][0] != 0 || parts[len(parts)-1][1] != cfg.Nx {
			t.Fatalf("p=%d: partition does not cover grid: %v", p, parts)
		}
		for i := 1; i < len(parts); i++ {
			if parts[i][0] != parts[i-1][1] {
				t.Fatalf("p=%d: gap between parts %d and %d", p, i-1, i)
			}
		}
		// Near-equal: sizes differ by at most 1.
		minSz, maxSz := cfg.Nx, 0
		for _, pr := range parts {
			sz := pr[1] - pr[0]
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("p=%d: unbalanced partition %v", p, parts)
		}
	}
}

func TestSpectrumDecaysRapidly(t *testing.T) {
	// The travelling-front solution is low-rank to good accuracy: the
	// paper's whole premise. Check σ₁₀/σ₁ is small.
	cfg := testConfig()
	a := cfg.Snapshots()
	_, s, _ := linalg.SVD(a)
	if s[9]/s[0] > 0.05 {
		t.Fatalf("spectrum decays too slowly: σ10/σ1 = %g", s[9]/s[0])
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"Nx":     {L: 1, Re: 1000, Nx: 1, Nt: 10, TFinal: 1},
		"Nt":     {L: 1, Re: 1000, Nx: 10, Nt: 0, TFinal: 1},
		"L":      {L: 0, Re: 1000, Nx: 10, Nt: 10, TFinal: 1},
		"Re":     {L: 1, Re: 0, Nx: 10, Nt: 10, TFinal: 1},
		"TFinal": {L: 1, Re: 1000, Nx: 10, Nt: 10, TFinal: 0},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid %s did not panic", name)
				}
			}()
			cfg.Snapshots()
		})
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nx != 16384 || cfg.Nt != 800 || cfg.Re != 1000 || cfg.L != 1 || cfg.TFinal != 2 {
		t.Fatalf("default config %+v does not match the paper", cfg)
	}
}
