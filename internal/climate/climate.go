// Package climate generates a synthetic global surface-pressure data set
// standing in for the ERA5 reanalysis used in the paper's Figure 2 (the
// real data set is a restricted-access download of several hundred GB).
//
// The generator composes physically motivated ingredients on a regular
// latitude–longitude grid so that the leading SVD modes are known by
// construction and the coherent-structure extraction of Figure 2 can be
// validated rather than merely reproduced visually:
//
//   - a zonally symmetric climatology (subtropical highs, subpolar lows)
//     that dominates the raw field — the analogue of Figure 2's mode 1;
//   - an annual cycle with opposite phase in the two hemispheres — the
//     analogue of the seasonal structure in mode 2;
//   - a semi-annual oscillation at high latitudes;
//   - eastward-travelling midlatitude planetary waves (wavenumber 4);
//   - AR(1) "weather" noise projected onto a fixed set of smooth random
//     spatial patterns, so snapshots are reproducible for a given seed
//     regardless of evaluation order.
//
// Fields are in hPa. Snapshots are indexed at a fixed cadence (default
// 6-hourly, as in the paper's 2013–2020 extraction).
package climate

import (
	"fmt"
	"math"
	"math/rand"

	"goparsvd/internal/mat"
)

// Config describes a synthetic pressure data set.
type Config struct {
	// NLat and NLon give the grid resolution. ERA5 at 2.5° would be 73×144.
	NLat, NLon int
	// Snapshots is the number of time samples.
	Snapshots int
	// StepHours is the time between snapshots (paper: 6-hourly).
	StepHours float64
	// Seed drives the reproducible weather-noise component.
	Seed int64
	// NoiseAmp scales the weather noise (hPa). Zero disables it.
	NoiseAmp float64
	// SubtractClimatology removes the time-mean component from every
	// snapshot, the standard preprocessing for EOF/POD analysis.
	SubtractClimatology bool
}

// DefaultConfig mirrors the paper's Figure-2 extraction at 2.5° resolution:
// 6-hourly snapshots over 2013–2020 (8 years ≈ 11688 samples).
func DefaultConfig() Config {
	return Config{
		NLat: 73, NLon: 144,
		Snapshots: 11688, StepHours: 6,
		Seed: 2013, NoiseAmp: 1.5,
	}
}

func (c Config) validate() {
	if c.NLat < 2 || c.NLon < 2 || c.Snapshots < 1 || c.StepHours <= 0 {
		panic(fmt.Sprintf("climate: invalid config %+v", c))
	}
}

// M returns the number of grid points per snapshot (NLat·NLon).
func (c Config) M() int { return c.NLat * c.NLon }

// hoursPerYear uses the 365-day calendar; the annual cycle period.
const hoursPerYear = 365 * 24

// noiseModes is the number of smooth random spatial patterns carrying the
// AR(1) weather noise.
const noiseModes = 8

// Generator produces snapshots deterministically. It is safe for
// concurrent use by multiple goroutines after construction (all state is
// read-only post-New).
type Generator struct {
	cfg Config
	// lat[i], lon[j] in degrees; sinLat etc. precomputed per row/col.
	lat, lon []float64
	// noisePattern[k] is an M-length spatial pattern; noiseCoef[k][s] its
	// AR(1) coefficient at snapshot s (precomputed for reproducibility).
	noisePattern [][]float64
	noiseCoef    [][]float64
}

// New constructs a generator, precomputing the noise series so snapshots
// can be evaluated in any order (and concurrently) with identical results.
func New(cfg Config) *Generator {
	cfg.validate()
	g := &Generator{cfg: cfg}
	g.lat = make([]float64, cfg.NLat)
	for i := range g.lat {
		g.lat[i] = -90 + 180*float64(i)/float64(cfg.NLat-1)
	}
	g.lon = make([]float64, cfg.NLon)
	for j := range g.lon {
		g.lon[j] = 360 * float64(j) / float64(cfg.NLon)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g.noisePattern = make([][]float64, noiseModes)
	g.noiseCoef = make([][]float64, noiseModes)
	for k := 0; k < noiseModes; k++ {
		// Smooth pattern: product of low-order sinusoids with random
		// wavenumbers and phases, tapered at the poles.
		kLat := 1 + rng.Intn(3)
		kLon := 1 + rng.Intn(4)
		phLat := rng.Float64() * 2 * math.Pi
		phLon := rng.Float64() * 2 * math.Pi
		pattern := make([]float64, cfg.M())
		for i := 0; i < cfg.NLat; i++ {
			latRad := g.lat[i] * math.Pi / 180
			taper := math.Cos(latRad)
			for j := 0; j < cfg.NLon; j++ {
				lonRad := g.lon[j] * math.Pi / 180
				pattern[i*cfg.NLon+j] = taper *
					math.Sin(float64(kLat)*latRad+phLat) *
					math.Cos(float64(kLon)*lonRad+phLon)
			}
		}
		g.noisePattern[k] = pattern

		// AR(1) series: x_{s+1} = ρ·x_s + sqrt(1−ρ²)·ε.
		const rho = 0.95
		coef := make([]float64, cfg.Snapshots)
		x := rng.NormFloat64()
		for s := 0; s < cfg.Snapshots; s++ {
			coef[s] = x
			x = rho*x + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		}
		g.noiseCoef[k] = coef
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Lat returns the latitude axis in degrees (South to North).
func (g *Generator) Lat() []float64 { return g.lat }

// Lon returns the longitude axis in degrees.
func (g *Generator) Lon() []float64 { return g.lon }

// climatology is the time-independent zonal-mean structure (hPa).
func climatology(latDeg float64) float64 {
	al := math.Abs(latDeg)
	p := 1013.25
	p += 8 * math.Exp(-((al-30)/15)*((al-30)/15))  // subtropical highs
	p -= 12 * math.Exp(-((al-60)/12)*((al-60)/12)) // subpolar lows
	p -= 4 * math.Exp(-(latDeg/10)*(latDeg/10))    // equatorial trough
	return p
}

// annualAmplitude gives the hemisphere-dependent annual-cycle amplitude
// (hPa), strongest over high latitudes and antisymmetric between
// hemispheres (Siberian-high-like behaviour).
func annualAmplitude(latDeg float64) float64 {
	return 6 * math.Sin(latDeg*math.Pi/180) * math.Exp(-((math.Abs(latDeg)-55)/25)*((math.Abs(latDeg)-55)/25))
}

// Value evaluates the pressure field at grid point (i, j) and snapshot s,
// excluding the optional climatology subtraction (see Snapshot).
func (g *Generator) value(i, j, s int) float64 {
	latDeg := g.lat[i]
	latRad := latDeg * math.Pi / 180
	lonRad := g.lon[j] * math.Pi / 180
	tHours := float64(s) * g.cfg.StepHours
	yearPhase := 2 * math.Pi * tHours / hoursPerYear

	p := climatology(latDeg)
	p += annualAmplitude(latDeg) * math.Cos(yearPhase)
	// Semi-annual oscillation at high latitudes.
	p += 2 * math.Exp(-((math.Abs(latDeg)-65)/15)*((math.Abs(latDeg)-65)/15)) *
		math.Cos(2*yearPhase)
	// Eastward-travelling wavenumber-4 midlatitude planetary wave with a
	// ~12-day period, confined to the storm tracks of both hemispheres.
	storm := math.Exp(-((math.Abs(latDeg) - 45) / 12) * ((math.Abs(latDeg) - 45) / 12))
	waveSpeed := 2 * math.Pi / (12 * 24) // rad/hour
	p += 3 * storm * math.Cos(4*lonRad-waveSpeed*tHours)
	// Weather noise.
	if g.cfg.NoiseAmp > 0 {
		idx := i*g.cfg.NLon + j
		n := 0.0
		for k := 0; k < noiseModes; k++ {
			n += g.noiseCoef[k][s] * g.noisePattern[k][idx]
		}
		p += g.cfg.NoiseAmp * n
	}
	_ = latRad
	return p
}

// Snapshot returns snapshot s as a flattened lat-major vector of length M.
func (g *Generator) Snapshot(s int) []float64 {
	if s < 0 || s >= g.cfg.Snapshots {
		panic(fmt.Sprintf("climate: snapshot %d out of [0,%d)", s, g.cfg.Snapshots))
	}
	out := make([]float64, g.cfg.M())
	for i := 0; i < g.cfg.NLat; i++ {
		for j := 0; j < g.cfg.NLon; j++ {
			out[i*g.cfg.NLon+j] = g.value(i, j, s)
		}
	}
	if g.cfg.SubtractClimatology {
		for i := 0; i < g.cfg.NLat; i++ {
			c := climatology(g.lat[i])
			for j := 0; j < g.cfg.NLon; j++ {
				out[i*g.cfg.NLon+j] -= c
			}
		}
	}
	return out
}

// SnapshotMatrix assembles the M×(s1−s0) matrix whose columns are
// snapshots [s0, s1).
func (g *Generator) SnapshotMatrix(s0, s1 int) *mat.Dense {
	if s0 < 0 || s1 > g.cfg.Snapshots || s0 > s1 {
		panic(fmt.Sprintf("climate: snapshot range [%d,%d) out of [0,%d)", s0, s1, g.cfg.Snapshots))
	}
	out := mat.New(g.cfg.M(), s1-s0)
	for s := s0; s < s1; s++ {
		col := g.Snapshot(s)
		out.SetCol(s-s0, col)
	}
	return out
}

// RowBlock assembles rows [r0, r1) of the snapshot matrix for snapshots
// [s0, s1): one rank's share of one streaming batch. Rows are flattened
// grid indices (i·NLon + j).
func (g *Generator) RowBlock(r0, r1, s0, s1 int) *mat.Dense {
	m := g.cfg.M()
	if r0 < 0 || r1 > m || r0 > r1 {
		panic(fmt.Sprintf("climate: row range [%d,%d) out of [0,%d)", r0, r1, m))
	}
	if s0 < 0 || s1 > g.cfg.Snapshots || s0 > s1 {
		panic(fmt.Sprintf("climate: snapshot range [%d,%d) out of [0,%d)", s0, s1, g.cfg.Snapshots))
	}
	out := mat.New(r1-r0, s1-s0)
	for s := s0; s < s1; s++ {
		for r := r0; r < r1; r++ {
			i, j := r/g.cfg.NLon, r%g.cfg.NLon
			v := g.value(i, j, s)
			if g.cfg.SubtractClimatology {
				v -= climatology(g.lat[i])
			}
			out.Set(r-r0, s-s0, v)
		}
	}
	return out
}

// MeanField returns the time-mean of the configured snapshot ensemble
// evaluated analytically: the climatology (plus nothing else, since every
// oscillatory ingredient has zero long-term mean and the AR(1) noise is
// zero-mean). Useful as the reference for mode-1 validation.
func (g *Generator) MeanField() []float64 {
	out := make([]float64, g.cfg.M())
	for i := 0; i < g.cfg.NLat; i++ {
		c := climatology(g.lat[i])
		for j := 0; j < g.cfg.NLon; j++ {
			out[i*g.cfg.NLon+j] = c
		}
	}
	return out
}

// AnnualField returns the spatial pattern of the annual cycle (the
// amplitude field), the reference for mode-2 validation.
func (g *Generator) AnnualField() []float64 {
	out := make([]float64, g.cfg.M())
	for i := 0; i < g.cfg.NLat; i++ {
		a := annualAmplitude(g.lat[i])
		for j := 0; j < g.cfg.NLon; j++ {
			out[i*g.cfg.NLon+j] = a
		}
	}
	return out
}
