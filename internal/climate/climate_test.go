package climate

import (
	"math"
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

func testConfig() Config {
	return Config{
		NLat: 19, NLon: 36,
		Snapshots: 200, StepHours: 6,
		Seed: 42, NoiseAmp: 1.0,
	}
}

func TestAxes(t *testing.T) {
	g := New(testConfig())
	lat := g.Lat()
	if lat[0] != -90 || lat[len(lat)-1] != 90 {
		t.Fatalf("lat range %g..%g", lat[0], lat[len(lat)-1])
	}
	lon := g.Lon()
	if lon[0] != 0 || lon[len(lon)-1] >= 360 {
		t.Fatalf("lon range %g..%g", lon[0], lon[len(lon)-1])
	}
}

func TestSnapshotShapeAndRange(t *testing.T) {
	g := New(testConfig())
	s := g.Snapshot(0)
	if len(s) != g.Config().M() {
		t.Fatalf("snapshot length %d, want %d", len(s), g.Config().M())
	}
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("snapshot[%d] = %g", i, v)
		}
		// Surface pressure stays within a plausible band.
		if v < 950 || v > 1060 {
			t.Fatalf("snapshot[%d] = %g hPa outside plausible range", i, v)
		}
	}
}

func TestDeterministicAcrossGenerators(t *testing.T) {
	cfg := testConfig()
	a := New(cfg).Snapshot(57)
	b := New(cfg).Snapshot(57)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical snapshots")
		}
	}
}

func TestOrderIndependentEvaluation(t *testing.T) {
	cfg := testConfig()
	g1 := New(cfg)
	early := g1.Snapshot(3)
	g2 := New(cfg)
	_ = g2.Snapshot(150) // evaluate out of order first
	late := g2.Snapshot(3)
	for i := range early {
		if early[i] != late[i] {
			t.Fatal("snapshot content must not depend on evaluation order")
		}
	}
}

func TestSeedChangesNoise(t *testing.T) {
	cfg := testConfig()
	a := New(cfg).Snapshot(10)
	cfg.Seed = 43
	b := New(cfg).Snapshot(10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should alter the weather noise")
	}
}

func TestNoiseAmpZeroIsClean(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseAmp = 0
	cfg.Seed = 1
	a := New(cfg).Snapshot(10)
	cfg.Seed = 999
	b := New(cfg).Snapshot(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("with NoiseAmp=0 the field must be seed-independent")
		}
	}
}

func TestSnapshotMatrixConsistency(t *testing.T) {
	g := New(testConfig())
	m := g.SnapshotMatrix(5, 9)
	if m.Rows() != g.Config().M() || m.Cols() != 4 {
		t.Fatalf("matrix shape %dx%d", m.Rows(), m.Cols())
	}
	for s := 5; s < 9; s++ {
		col := g.Snapshot(s)
		for r := 0; r < m.Rows(); r++ {
			if m.At(r, s-5) != col[r] {
				t.Fatalf("matrix column %d disagrees with Snapshot(%d)", s-5, s)
			}
		}
	}
}

func TestRowBlockConsistency(t *testing.T) {
	g := New(testConfig())
	full := g.SnapshotMatrix(0, 12)
	blk := g.RowBlock(100, 250, 0, 12)
	if !mat.EqualApprox(blk, full.Slice(100, 250, 0, 12), 0) {
		t.Fatal("RowBlock disagrees with SnapshotMatrix")
	}
}

func TestAnnualCyclePresent(t *testing.T) {
	// A high-latitude point must show a yearly oscillation: values half a
	// year apart differ by roughly twice the annual amplitude.
	cfg := testConfig()
	cfg.NoiseAmp = 0
	cfg.Snapshots = 4 * 365 // one year of 6-hourly samples
	g := New(cfg)
	// Pick the grid row closest to 60N.
	i := 0
	for r, la := range g.Lat() {
		if math.Abs(la-60) < math.Abs(g.Lat()[i]-60) {
			i = r
		}
	}
	idx := i * cfg.NLon
	winter := g.Snapshot(0)[idx]
	summer := g.Snapshot(2 * 365)[idx] // half a year later
	if math.Abs(winter-summer) < 4 {
		t.Fatalf("annual cycle too weak at 60N: |%g − %g| = %g",
			winter, summer, math.Abs(winter-summer))
	}
}

func TestTravellingWaveMoves(t *testing.T) {
	// The planetary wave pattern at 45N must shift in longitude over time:
	// the spatial correlation between snapshots 6 days apart (half the
	// wave period) should be negative after removing the static field.
	cfg := testConfig()
	cfg.NoiseAmp = 0
	cfg.Snapshots = 100
	g := New(cfg)
	i := 0
	for r, la := range g.Lat() {
		if math.Abs(la-45) < math.Abs(g.Lat()[i]-45) {
			i = r
		}
	}
	now := g.Snapshot(0)
	later := g.Snapshot(24) // 24 × 6h = 6 days = half the 12-day period
	// Compare zonal anomalies (deviation from the zonal mean), which
	// isolates the wave from the static and annual components.
	anom := func(snap []float64) []float64 {
		mean := 0.0
		for j := 0; j < cfg.NLon; j++ {
			mean += snap[i*cfg.NLon+j]
		}
		mean /= float64(cfg.NLon)
		out := make([]float64, cfg.NLon)
		for j := 0; j < cfg.NLon; j++ {
			out[j] = snap[i*cfg.NLon+j] - mean
		}
		return out
	}
	a0, a1 := anom(now), anom(later)
	dot := 0.0
	for j := range a0 {
		dot += a0[j] * a1[j]
	}
	if dot >= 0 {
		t.Fatalf("wave did not propagate: anomaly autocorrelation %g >= 0", dot)
	}
}

func TestLeadingModeIsClimatology(t *testing.T) {
	// The raw field's first SVD mode must be the (normalized) mean
	// structure: exactly the "mode 1" of the paper's Figure 2 analysis.
	cfg := testConfig()
	cfg.Snapshots = 120
	g := New(cfg)
	a := g.SnapshotMatrix(0, 120)
	u, _, _ := linalg.SVDTruncated(a, 1)
	mode1 := u.Col(0)
	mean := g.MeanField()
	// Normalize and compare |cosine similarity| ≈ 1.
	dot, nm, nu := 0.0, 0.0, 0.0
	for i := range mean {
		dot += mean[i] * mode1[i]
		nm += mean[i] * mean[i]
		nu += mode1[i] * mode1[i]
	}
	cos := math.Abs(dot) / math.Sqrt(nm*nu)
	if cos < 0.999 {
		t.Fatalf("mode 1 vs climatology cosine %g, want ~1", cos)
	}
}

func TestAnomalyLeadingModeIsAnnualCycle(t *testing.T) {
	// With the climatology removed, the dominant coherent structure over
	// full years is the annual cycle.
	cfg := testConfig()
	cfg.SubtractClimatology = true
	cfg.NoiseAmp = 0.2
	cfg.Snapshots = 2 * 1460 // two years, 6-hourly
	g := New(cfg)
	// Subsample every 10th snapshot to keep the test fast.
	cols := make([]*mat.Dense, 0, 292)
	for s := 0; s < cfg.Snapshots; s += 10 {
		cols = append(cols, mat.NewFromData(g.Config().M(), 1, g.Snapshot(s)))
	}
	a := mat.HStack(cols...)
	u, _, _ := linalg.SVDTruncated(a, 1)
	mode1 := u.Col(0)
	annual := g.AnnualField()
	dot, na, nu := 0.0, 0.0, 0.0
	for i := range annual {
		dot += annual[i] * mode1[i]
		na += annual[i] * annual[i]
		nu += mode1[i] * mode1[i]
	}
	cos := math.Abs(dot) / math.Sqrt(na*nu)
	if cos < 0.95 {
		t.Fatalf("anomaly mode 1 vs annual pattern cosine %g, want > 0.95", cos)
	}
}

func TestInvalidAccessPanics(t *testing.T) {
	g := New(testConfig())
	for name, fn := range map[string]func(){
		"snapshot index": func() { g.Snapshot(-1) },
		"matrix range":   func() { g.SnapshotMatrix(5, 3) },
		"row range":      func() { g.RowBlock(-1, 5, 0, 1) },
		"bad config":     func() { New(Config{NLat: 1, NLon: 10, Snapshots: 5, StepHours: 6}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestDefaultConfigMatchesPaperPeriod(t *testing.T) {
	cfg := DefaultConfig()
	// 2013-01-01 .. 2020-12-31 at 6-hourly cadence: 8 years × ~1461
	// samples/year ≈ 11688.
	if cfg.Snapshots != 11688 || cfg.StepHours != 6 {
		t.Fatalf("default config %+v does not match the paper's period", cfg)
	}
}
