package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"goparsvd/internal/apmos"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
	"goparsvd/internal/stream"
)

// Checkpoint/restart for the streaming engines. Long-running in-situ
// analyses (the paper's target deployment: SVD updates riding along a
// simulation) must survive restarts of the host application, so both
// engines can serialize their complete state — options, modes, singular
// values, counters — to an io.Writer and be reconstructed from an
// io.Reader. The format is a little-endian binary stream with a magic
// header and version byte; Parallel checkpoints are per-rank (each rank
// saves and reloads its own row slice, matching how restart works in
// MPI codes).

var checkpointMagic = [4]byte{'G', 'P', 'S', 'V'}

// Version 1 is the original layout; version 2 appends the shard
// provenance pair (index, count) to the metadata block. A writer emits
// the oldest version that can represent the state — zero provenance
// still writes byte-identical version-1 checkpoints — and the reader
// accepts both.
const (
	checkpointVersion   = 1
	checkpointVersionV2 = 2
)

// ErrBadCheckpoint is returned when restoring from data that is not a
// goparsvd checkpoint or is structurally damaged.
var ErrBadCheckpoint = errors.New("core: not a valid goparsvd checkpoint")

// ShardID records which shard of a partitioned fit produced a
// checkpoint: shard Index of Count disjoint snapshot subsets. The zero
// value means "unknown / whole stream" and is what every non-sharded
// save writes. Merge validation uses it to refuse re-absorbing the same
// shard twice (disjointness is Index-distinctness at equal Count).
type ShardID struct {
	Index int
	Count int
}

// IsZero reports an absent provenance mark.
func (id ShardID) IsZero() bool { return id == ShardID{} }

// Validate checks the structural invariants (0 <= Index < Count).
func (id ShardID) Validate() error {
	if id.IsZero() {
		return nil
	}
	if id.Count < 1 || id.Index < 0 || id.Index >= id.Count {
		return fmt.Errorf("core: shard %d of %d out of range", id.Index, id.Count)
	}
	return nil
}

// State is the complete serialized form of a streaming decomposition:
// everything a checkpoint carries. Modes is adopted without copying by
// both WriteState and the engines restored from a State.
type State struct {
	Opts       Options
	Modes      *mat.Dense
	Singular   []float64
	Iterations int
	Snapshots  int
	// Shard is the provenance mark of a shard-local fit (zero for a
	// whole-stream model).
	Shard ShardID
}

// Save serializes the serial engine's full state. The engine must be
// initialized.
func (s *Serial) Save(w io.Writer) error {
	s.svd.Modes() // panics with a clear message if not initialized
	return WriteState(w, State{
		Opts:       s.opts,
		Modes:      s.svd.Modes(),
		Singular:   s.svd.SingularValues(),
		Iterations: s.svd.Iterations(),
		Snapshots:  s.svd.SnapshotsSeen(),
	})
}

// LoadSerial reconstructs a serial engine from a checkpoint.
func LoadSerial(r io.Reader) (*Serial, error) {
	st, err := ReadState(r)
	if err != nil {
		return nil, err
	}
	eng, err := RestoreSerial(st.Opts, st.Modes, st.Singular, st.Iterations, st.Snapshots)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return eng, nil
}

// RestoreSerial rebuilds a serial engine from externally-held state: the
// current modes (adopted without copying), singular values and counters.
// It validates the options and every structural invariant, returning an
// error instead of panicking, so facades can surface corrupted state to
// their callers. The parsvd facade also uses it to re-wrap the gathered
// global state of a parallel run as a serial engine for checkpointing.
func RestoreSerial(opts Options, modes *mat.Dense, singular []float64,
	iterations, snapshots int) (*Serial, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	svd, err := stream.Restore(stream.Options{
		K:       opts.K,
		FF:      opts.ForgetFactor,
		LowRank: opts.LowRank,
		RLA:     opts.RLA,
	}, modes, singular, iterations, snapshots)
	if err != nil {
		return nil, err
	}
	return &Serial{opts: opts.validated(), svd: svd}, nil
}

// Save serializes this rank's slice of the parallel engine's state. Every
// rank must save (and later reload) its own checkpoint.
func (p *Parallel) Save(w io.Writer) error {
	p.mustBeInitialized()
	return WriteState(w, State{
		Opts:       p.opts,
		Modes:      p.ulocal,
		Singular:   p.singular,
		Iterations: p.iteration,
		Snapshots:  p.snapshots,
	})
}

// LoadParallel reconstructs one rank of a parallel engine from that rank's
// checkpoint, rebinding it to a (new) communicator.
func LoadParallel(c *mpi.Comm, r io.Reader) (*Parallel, error) {
	if c == nil {
		return nil, errors.New("core: LoadParallel needs a communicator")
	}
	st, err := ReadState(r)
	if err != nil {
		return nil, err
	}
	if err := st.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if st.Opts.K < len(st.Singular) {
		return nil, fmt.Errorf("%w: %d singular values exceed K = %d",
			ErrBadCheckpoint, len(st.Singular), st.Opts.K)
	}
	if st.Modes.Rows() < 1 || st.Modes.Cols() < 1 {
		return nil, fmt.Errorf("%w: empty %dx%d modes", ErrBadCheckpoint,
			st.Modes.Rows(), st.Modes.Cols())
	}
	eng := NewParallel(c, st.Opts)
	eng.ulocal = st.Modes
	eng.singular = st.Singular
	eng.rows = st.Modes.Rows()
	eng.iteration = st.Iterations
	eng.snapshots = st.Snapshots
	return eng, nil
}

// WriteState emits the binary layout:
//
//	magic[4] version[1]
//	K, iterations, snapshots            int64
//	forgetFactor                        float64
//	lowRank                             uint8
//	rla: oversample, powerIters, seed   int64
//	r1, method                          int64
//	shardIndex, shardCount              int64  (version 2 only)
//	rows, cols                          int64
//	singular values                     cols × float64
//	modes, row-major                    rows·cols × float64
//
// A zero Shard writes version 1 (byte-identical to the original format,
// pinned by the golden fixture); a non-zero Shard writes version 2.
func WriteState(w io.Writer, st State) error {
	if err := st.Shard.Validate(); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	version := uint8(checkpointVersion)
	if !st.Shard.IsZero() {
		version = checkpointVersionV2
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := w.Write([]byte{version}); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	rows, cols := st.Modes.Dims()
	if cols != len(st.Singular) {
		return fmt.Errorf("core: checkpoint state inconsistent: %d modes, %d values",
			cols, len(st.Singular))
	}
	lowRank := uint8(0)
	if st.Opts.LowRank {
		lowRank = 1
	}
	ints := []int64{
		int64(st.Opts.K), int64(st.Iterations), int64(st.Snapshots),
	}
	for _, v := range ints {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: checkpoint write: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, st.Opts.ForgetFactor); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := w.Write([]byte{lowRank}); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	meta := []int64{
		int64(st.Opts.RLA.Oversample), int64(st.Opts.RLA.PowerIters), st.Opts.RLA.Seed,
		int64(st.Opts.R1), int64(st.Opts.Method),
	}
	if version == checkpointVersionV2 {
		meta = append(meta, int64(st.Shard.Index), int64(st.Shard.Count))
	}
	meta = append(meta, int64(rows), int64(cols))
	for _, v := range meta {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: checkpoint write: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, st.Singular); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, st.Modes.RawData()); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	return nil
}

// ReadState parses either checkpoint version, validating shape and
// option sanity but not the engine-level restore invariants (those run
// in RestoreSerial / stream.Restore).
func ReadState(r io.Reader) (State, error) {
	var st State
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if [4]byte(head[:4]) != checkpointMagic {
		return st, ErrBadCheckpoint
	}
	version := head[4]
	if version != checkpointVersion && version != checkpointVersionV2 {
		return st, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, version)
	}
	var ints [3]int64
	for i := range ints {
		if err := binary.Read(r, binary.LittleEndian, &ints[i]); err != nil {
			return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	var ff float64
	if err := binary.Read(r, binary.LittleEndian, &ff); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var lowRank [1]byte
	if _, err := io.ReadFull(r, lowRank[:]); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	nmeta := 7
	if version == checkpointVersionV2 {
		nmeta = 9
	}
	meta := make([]int64, nmeta)
	for i := range meta {
		if err := binary.Read(r, binary.LittleEndian, &meta[i]); err != nil {
			return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	if version == checkpointVersionV2 {
		st.Shard = ShardID{Index: int(meta[5]), Count: int(meta[6])}
		if err := st.Shard.Validate(); err != nil {
			return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	rows, cols := meta[nmeta-2], meta[nmeta-1]
	const maxCheckpointElems = int64(1) << 34 // 128 GiB of float64s: sanity bound
	if rows < 0 || cols < 0 || rows*cols > maxCheckpointElems {
		return st, fmt.Errorf("%w: implausible shape %dx%d", ErrBadCheckpoint, rows, cols)
	}
	if ff <= 0 || ff > 1 || math.IsNaN(ff) {
		return st, fmt.Errorf("%w: forget factor %g out of range", ErrBadCheckpoint, ff)
	}
	st.Singular = make([]float64, cols)
	if err := binary.Read(r, binary.LittleEndian, st.Singular); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	data := make([]float64, rows*cols)
	if err := binary.Read(r, binary.LittleEndian, data); err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	st.Opts = Options{
		K:            int(ints[0]),
		ForgetFactor: ff,
		LowRank:      lowRank[0] != 0,
		RLA: rla.Options{
			Oversample: int(meta[0]),
			PowerIters: int(meta[1]),
			Seed:       meta[2],
		},
		R1:     int(meta[3]),
		Method: apmos.Method(meta[4]),
	}
	st.Iterations = int(ints[1])
	st.Snapshots = int(ints[2])
	st.Modes = mat.NewFromData(int(rows), int(cols), data)
	return st, nil
}
