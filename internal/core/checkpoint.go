package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"goparsvd/internal/apmos"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
	"goparsvd/internal/stream"
)

// Checkpoint/restart for the streaming engines. Long-running in-situ
// analyses (the paper's target deployment: SVD updates riding along a
// simulation) must survive restarts of the host application, so both
// engines can serialize their complete state — options, modes, singular
// values, counters — to an io.Writer and be reconstructed from an
// io.Reader. The format is a little-endian binary stream with a magic
// header and version byte; Parallel checkpoints are per-rank (each rank
// saves and reloads its own row slice, matching how restart works in
// MPI codes).

var checkpointMagic = [4]byte{'G', 'P', 'S', 'V'}

const checkpointVersion = 1

// ErrBadCheckpoint is returned when restoring from data that is not a
// goparsvd checkpoint or is structurally damaged.
var ErrBadCheckpoint = errors.New("core: not a valid goparsvd checkpoint")

// Save serializes the serial engine's full state. The engine must be
// initialized.
func (s *Serial) Save(w io.Writer) error {
	s.svd.Modes() // panics with a clear message if not initialized
	return writeCheckpoint(w, s.opts, s.svd.Modes(), s.svd.SingularValues(),
		s.svd.Iterations(), s.svd.SnapshotsSeen())
}

// LoadSerial reconstructs a serial engine from a checkpoint.
func LoadSerial(r io.Reader) (*Serial, error) {
	opts, modes, singular, iters, snaps, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	eng, err := RestoreSerial(opts, modes, singular, iters, snaps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return eng, nil
}

// RestoreSerial rebuilds a serial engine from externally-held state: the
// current modes (adopted without copying), singular values and counters.
// It validates the options and every structural invariant, returning an
// error instead of panicking, so facades can surface corrupted state to
// their callers. The parsvd facade also uses it to re-wrap the gathered
// global state of a parallel run as a serial engine for checkpointing.
func RestoreSerial(opts Options, modes *mat.Dense, singular []float64,
	iterations, snapshots int) (*Serial, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	svd, err := stream.Restore(stream.Options{
		K:       opts.K,
		FF:      opts.ForgetFactor,
		LowRank: opts.LowRank,
		RLA:     opts.RLA,
	}, modes, singular, iterations, snapshots)
	if err != nil {
		return nil, err
	}
	return &Serial{opts: opts.validated(), svd: svd}, nil
}

// Save serializes this rank's slice of the parallel engine's state. Every
// rank must save (and later reload) its own checkpoint.
func (p *Parallel) Save(w io.Writer) error {
	p.mustBeInitialized()
	return writeCheckpoint(w, p.opts, p.ulocal, p.singular, p.iteration, p.snapshots)
}

// LoadParallel reconstructs one rank of a parallel engine from that rank's
// checkpoint, rebinding it to a (new) communicator.
func LoadParallel(c *mpi.Comm, r io.Reader) (*Parallel, error) {
	if c == nil {
		return nil, errors.New("core: LoadParallel needs a communicator")
	}
	opts, modes, singular, iters, snaps, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if opts.K < len(singular) {
		return nil, fmt.Errorf("%w: %d singular values exceed K = %d",
			ErrBadCheckpoint, len(singular), opts.K)
	}
	if modes.Rows() < 1 || modes.Cols() < 1 {
		return nil, fmt.Errorf("%w: empty %dx%d modes", ErrBadCheckpoint,
			modes.Rows(), modes.Cols())
	}
	eng := NewParallel(c, opts)
	eng.ulocal = modes
	eng.singular = singular
	eng.rows = modes.Rows()
	eng.iteration = iters
	eng.snapshots = snaps
	return eng, nil
}

// writeCheckpoint emits the binary layout:
//
//	magic[4] version[1]
//	K, iterations, snapshots            int64
//	forgetFactor                        float64
//	lowRank                             uint8
//	rla: oversample, powerIters, seed   int64
//	r1, method                          int64
//	rows, cols                          int64
//	singular values                     cols × float64
//	modes, row-major                    rows·cols × float64
func writeCheckpoint(w io.Writer, opts Options, modes *mat.Dense,
	singular []float64, iterations, snapshots int) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := w.Write([]byte{checkpointVersion}); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	rows, cols := modes.Dims()
	if cols != len(singular) {
		return fmt.Errorf("core: checkpoint state inconsistent: %d modes, %d values",
			cols, len(singular))
	}
	lowRank := uint8(0)
	if opts.LowRank {
		lowRank = 1
	}
	ints := []int64{
		int64(opts.K), int64(iterations), int64(snapshots),
	}
	for _, v := range ints {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: checkpoint write: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, opts.ForgetFactor); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := w.Write([]byte{lowRank}); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	meta := []int64{
		int64(opts.RLA.Oversample), int64(opts.RLA.PowerIters), opts.RLA.Seed,
		int64(opts.R1), int64(opts.Method),
		int64(rows), int64(cols),
	}
	for _, v := range meta {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("core: checkpoint write: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, singular); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, modes.RawData()); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	return nil
}

func readCheckpoint(r io.Reader) (opts Options, modes *mat.Dense,
	singular []float64, iterations, snapshots int, err error) {
	var head [5]byte
	if _, err = io.ReadFull(r, head[:]); err != nil {
		return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if [4]byte(head[:4]) != checkpointMagic {
		return opts, nil, nil, 0, 0, ErrBadCheckpoint
	}
	if head[4] != checkpointVersion {
		return opts, nil, nil, 0, 0,
			fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, head[4])
	}
	var ints [3]int64
	for i := range ints {
		if err = binary.Read(r, binary.LittleEndian, &ints[i]); err != nil {
			return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	var ff float64
	if err = binary.Read(r, binary.LittleEndian, &ff); err != nil {
		return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var lowRank [1]byte
	if _, err = io.ReadFull(r, lowRank[:]); err != nil {
		return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var meta [7]int64
	for i := range meta {
		if err = binary.Read(r, binary.LittleEndian, &meta[i]); err != nil {
			return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
		}
	}
	rows, cols := meta[5], meta[6]
	const maxCheckpointElems = int64(1) << 34 // 128 GiB of float64s: sanity bound
	if rows < 0 || cols < 0 || rows*cols > maxCheckpointElems {
		return opts, nil, nil, 0, 0,
			fmt.Errorf("%w: implausible shape %dx%d", ErrBadCheckpoint, rows, cols)
	}
	if ff <= 0 || ff > 1 || math.IsNaN(ff) {
		return opts, nil, nil, 0, 0,
			fmt.Errorf("%w: forget factor %g out of range", ErrBadCheckpoint, ff)
	}
	singular = make([]float64, cols)
	if err = binary.Read(r, binary.LittleEndian, singular); err != nil {
		return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	data := make([]float64, rows*cols)
	if err = binary.Read(r, binary.LittleEndian, data); err != nil {
		return opts, nil, nil, 0, 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	opts = Options{
		K:            int(ints[0]),
		ForgetFactor: ff,
		LowRank:      lowRank[0] != 0,
		RLA: rla.Options{
			Oversample: int(meta[0]),
			PowerIters: int(meta[1]),
			Seed:       meta[2],
		},
		R1:     int(meta[3]),
		Method: apmos.Method(meta[4]),
	}
	modes = mat.NewFromData(int(rows), int(cols), data)
	return opts, modes, singular, int(ints[1]), int(ints[2]), nil
}
