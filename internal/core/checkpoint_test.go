package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

func TestSerialCheckpointRoundTrip(t *testing.T) {
	rng := testutil.NewRand(31)
	a, _ := testutil.RandomLowRank(50, 20, 4, 1e-7, rng)
	eng := NewSerial(Options{K: 4, ForgetFactor: 0.95})
	eng.Initialize(a.SliceCols(0, 10))
	eng.IncorporateData(a.SliceCols(10, 15))

	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSerial(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !mat.EqualApprox(eng.Modes(), restored.Modes(), 0) {
		t.Fatal("modes differ after restore")
	}
	if !testutil.CloseSlices(eng.SingularValues(), restored.SingularValues(), 0) {
		t.Fatal("singular values differ after restore")
	}
	if restored.Iterations() != 1 || restored.SnapshotsSeen() != 15 {
		t.Fatalf("counters: iters=%d snaps=%d", restored.Iterations(), restored.SnapshotsSeen())
	}

	// The restored engine must continue the stream identically.
	eng.IncorporateData(a.SliceCols(15, 20))
	restored.IncorporateData(a.SliceCols(15, 20))
	if !mat.EqualApprox(eng.Modes(), restored.Modes(), 1e-13) {
		t.Fatal("continuation diverged after restore")
	}
}

func TestSerialCheckpointPreservesOptions(t *testing.T) {
	rng := testutil.NewRand(32)
	eng := NewSerial(Options{K: 3, ForgetFactor: 0.9, LowRank: true})
	eng.Initialize(testutil.RandomDense(20, 6, rng))
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSerial(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.opts.K != 3 || restored.opts.ForgetFactor != 0.9 || !restored.opts.LowRank {
		t.Fatalf("options not preserved: %+v", restored.opts)
	}
}

func TestParallelCheckpointRoundTrip(t *testing.T) {
	rng := testutil.NewRand(33)
	a, _ := testutil.RandomLowRank(60, 16, 4, 1e-7, rng)
	const p = 2
	blocks := splitRows(a, p)
	opts := Options{K: 3, ForgetFactor: 1, R1: 16}

	// Phase 1: run halfway and checkpoint each rank.
	checkpoints := make([]*bytes.Buffer, p)
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		eng := NewParallel(c, opts)
		eng.Initialize(blocks[c.Rank()].SliceCols(0, 8))
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			panic(err)
		}
		mu.Lock()
		checkpoints[c.Rank()] = &buf
		mu.Unlock()
	})

	// Phase 2: restore into a fresh world and continue; compare with an
	// uninterrupted run.
	restoredVals := make([][]float64, p)
	mpi.MustRun(p, func(c *mpi.Comm) {
		eng, err := LoadParallel(c, checkpoints[c.Rank()])
		if err != nil {
			panic(err)
		}
		eng.IncorporateData(blocks[c.Rank()].SliceCols(8, 16))
		mu.Lock()
		restoredVals[c.Rank()] = append([]float64(nil), eng.SingularValues()...)
		mu.Unlock()
	})

	uninterrupted := make([][]float64, p)
	mpi.MustRun(p, func(c *mpi.Comm) {
		eng := NewParallel(c, opts)
		eng.Initialize(blocks[c.Rank()].SliceCols(0, 8))
		eng.IncorporateData(blocks[c.Rank()].SliceCols(8, 16))
		mu.Lock()
		uninterrupted[c.Rank()] = append([]float64(nil), eng.SingularValues()...)
		mu.Unlock()
	})

	for r := 0; r < p; r++ {
		if !testutil.CloseSlices(restoredVals[r], uninterrupted[r], 1e-12) {
			t.Fatalf("rank %d diverged: %v vs %v", r, restoredVals[r], uninterrupted[r])
		}
	}
}

func TestLoadSerialRejectsGarbage(t *testing.T) {
	_, err := LoadSerial(bytes.NewReader([]byte("not a checkpoint at all")))
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
}

func TestLoadSerialRejectsTruncation(t *testing.T) {
	rng := testutil.NewRand(34)
	eng := NewSerial(Options{K: 2, ForgetFactor: 1})
	eng.Initialize(testutil.RandomDense(10, 4, rng))
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, 20, len(full) - 8} {
		if _, err := LoadSerial(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestLoadSerialRejectsBadVersion(t *testing.T) {
	rng := testutil.NewRand(35)
	eng := NewSerial(Options{K: 2, ForgetFactor: 1})
	eng.Initialize(testutil.RandomDense(10, 4, rng))
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // corrupt the version byte
	if _, err := LoadSerial(bytes.NewReader(raw)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("bad version: err = %v", err)
	}
}

func TestSaveBeforeInitializePanics(t *testing.T) {
	eng := NewSerial(Options{K: 2, ForgetFactor: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Save before Initialize did not panic")
		}
	}()
	var buf bytes.Buffer
	_ = eng.Save(&buf)
}

func TestLoadParallelNeedsComm(t *testing.T) {
	if _, err := LoadParallel(nil, bytes.NewReader(nil)); err == nil {
		t.Fatal("nil communicator accepted")
	}
}
