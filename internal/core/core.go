// Package core is the public API of goparsvd: a Go reproduction of the
// PyParSVD library (Maulik & Mengaldo, SC 2021). It composes the three
// building blocks of the paper — the streaming SVD of Levy & Lindenbaum
// (internal/stream), the approximate partitioned method of snapshots
// (internal/apmos) with a distributed tall-skinny QR (internal/tsqr), and
// randomized linear algebra (internal/rla) — behind the same two-class
// factory the Python package exposes:
//
//   - Serial is ParSVD_Serial: single-process streaming truncated SVD.
//   - Parallel is ParSVD_Parallel: every rank holds a row block of the
//     snapshot matrix; initialization runs APMOS and each streaming update
//     runs a distributed QR plus a small root SVD.
//
// Both satisfy Decomposer, so analysis and post-processing code (package
// postproc) is agnostic to the execution mode, mirroring how PyParSVD's
// postprocessing module binds to ParSVD_Base.
package core

import (
	"fmt"

	"goparsvd/internal/apmos"
	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
	"goparsvd/internal/stream"
	"goparsvd/internal/tsqr"
)

// Decomposer is the contract shared by the serial and parallel engines
// (the role ParSVD_Base plays in the Python package).
type Decomposer interface {
	// Initialize seeds the decomposition with the first snapshot batch.
	Initialize(a *mat.Dense) Decomposer
	// IncorporateData streams one more batch of snapshots.
	IncorporateData(a *mat.Dense) Decomposer
	// Modes returns the truncated left singular vectors held by this
	// process: the full M×K matrix for Serial, the local M_i×K slice for
	// Parallel.
	Modes() *mat.Dense
	// SingularValues returns the current truncated singular values.
	SingularValues() []float64
	// Iterations returns the number of streaming updates performed.
	Iterations() int
}

// Options configures either engine.
type Options struct {
	// K is the number of modes (truncated left singular vectors) retained.
	K int
	// ForgetFactor is Algorithm 1's ff ∈ (0, 1]; the paper's experiments
	// use 0.95, and 1.0 recovers the one-shot SVD.
	ForgetFactor float64
	// LowRank replaces every dense SVD in the pipeline with the
	// randomized variant (paper §3.3).
	LowRank bool
	// RLA tunes the randomized SVD; zero value means rla.DefaultOptions.
	RLA rla.Options
	// R1 is the APMOS gather truncation used by Parallel's initialization
	// (paper default 50). Zero means the apmos default.
	R1 int
	// Method selects how Parallel computes local right vectors during
	// initialization (Gram-matrix method of snapshots by default).
	Method apmos.Method
}

// Validate reports whether the options describe a usable configuration.
// It is the error-returning twin of validated, for callers (the public
// parsvd facade) that must not panic.
func (o Options) Validate() error {
	if o.K < 1 {
		return fmt.Errorf("core: K = %d < 1", o.K)
	}
	if o.ForgetFactor <= 0 || o.ForgetFactor > 1 {
		return fmt.Errorf("core: forget factor %g outside (0, 1]", o.ForgetFactor)
	}
	if o.R1 < 0 {
		return fmt.Errorf("core: R1 = %d < 0", o.R1)
	}
	return o.RLA.Validate()
}

func (o Options) validated() Options {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	if o.RLA.IsZero() {
		o.RLA = rla.DefaultOptions()
	}
	return o
}

// Serial is the single-process streaming SVD engine (ParSVD_Serial).
type Serial struct {
	opts Options
	svd  *stream.SVD
}

var _ Decomposer = (*Serial)(nil)

// NewSerial constructs a serial engine.
func NewSerial(opts Options) *Serial {
	opts = opts.validated()
	return &Serial{
		opts: opts,
		svd: stream.New(stream.Options{
			K:       opts.K,
			FF:      opts.ForgetFactor,
			LowRank: opts.LowRank,
			RLA:     opts.RLA,
		}),
	}
}

// Options returns the validated options the engine was built with.
func (s *Serial) Options() Options { return s.opts }

// Initialize seeds the decomposition with the first batch (Listing 1).
func (s *Serial) Initialize(a *mat.Dense) Decomposer {
	s.svd.Initialize(a)
	return s
}

// IncorporateData streams one more batch (Listing 1).
func (s *Serial) IncorporateData(a *mat.Dense) Decomposer {
	s.svd.IncorporateData(a)
	return s
}

// Modes returns the current M×K truncated left singular vectors.
func (s *Serial) Modes() *mat.Dense { return s.svd.Modes() }

// SingularValues returns the current truncated singular values.
func (s *Serial) SingularValues() []float64 { return s.svd.SingularValues() }

// Iterations returns the number of IncorporateData calls.
func (s *Serial) Iterations() int { return s.svd.Iterations() }

// SnapshotsSeen returns the total number of ingested snapshot columns.
func (s *Serial) SnapshotsSeen() int { return s.svd.SnapshotsSeen() }

// Parallel is the distributed streaming SVD engine (ParSVD_Parallel). Each
// rank constructs its own Parallel around the communicator and its row
// block of the data; the instances cooperate via MPI-style collectives.
type Parallel struct {
	opts      Options
	comm      *mpi.Comm
	ulocal    *mat.Dense // local slice of the truncated left singular vectors
	singular  []float64
	rows      int
	iteration int
	snapshots int

	// ws recycles this rank's update temporaries across batches; matrices
	// that cross rank boundaries are still allocated by the communicator.
	ws mat.Workspace
	// pb batches this rank's tall mode-update product into row panels that
	// share one packed right-hand side.
	pb mat.PanelBatch
}

var _ Decomposer = (*Parallel)(nil)

// NewParallel constructs a parallel engine bound to one rank of a
// communicator.
func NewParallel(c *mpi.Comm, opts Options) *Parallel {
	if c == nil {
		panic("core: NewParallel needs a communicator; use NewSerial for single-process runs")
	}
	return &Parallel{opts: opts.validated(), comm: c}
}

// Rank returns this engine's rank in the communicator.
func (p *Parallel) Rank() int { return p.comm.Rank() }

// Initialize seeds the decomposition with this rank's block of the first
// batch using the distributed (optionally randomized) APMOS SVD — the
// paper's Listing 2/3 `initialize` → `parallel_svd`.
func (p *Parallel) Initialize(a *mat.Dense) Decomposer {
	if p.ulocal != nil {
		panic("core: Initialize called twice")
	}
	modes, s := apmos.Decompose(p.comm, a, apmos.Options{
		K:       p.opts.K,
		R1:      p.opts.R1,
		R2:      p.opts.K,
		Method:  p.opts.Method,
		LowRank: p.opts.LowRank,
		RLA:     p.opts.RLA,
	})
	p.ulocal = modes
	p.singular = s
	p.rows = a.Rows()
	p.snapshots = a.Cols()
	return p
}

// IncorporateData streams this rank's block of a new batch: the forget-
// factor-weighted concatenation is re-orthogonalized with a distributed
// QR, and a small SVD of the global R factor updates the modes (the
// paper's Listing 2 `incorporate_data` → Listing 4 `parallel_qr`).
func (p *Parallel) IncorporateData(a *mat.Dense) Decomposer {
	p.mustBeInitialized()
	if a.Rows() != p.rows {
		panic(fmt.Sprintf("core: batch has %d rows, want %d", a.Rows(), p.rows))
	}
	if a.Cols() == 0 {
		return p
	}
	// The forget factor folds into the diagonal scaling pass and all local
	// temporaries come from the per-rank workspace (mirroring the serial
	// streaming engine's zero-allocation steady state).
	k0 := p.ulocal.Cols()
	scaled := p.ws.GetUninit(p.rows, k0)
	mat.MulDiagScaledInto(scaled, p.opts.ForgetFactor, p.ulocal, p.singular)
	ll := p.ws.GetUninit(p.rows, k0+a.Cols())
	mat.HStackInto(ll, scaled, a)
	p.ws.Put(scaled)
	qlocal, unew, snew := p.parallelQR(ll)
	p.ws.Put(ll)
	k := p.opts.K
	if k > len(snew) {
		k = len(snew)
	}
	usub := p.ws.GetUninit(unew.Rows(), k)
	unew.SliceColsInto(usub, 0, k)
	next := p.ws.GetUninit(qlocal.Rows(), k)
	p.pb.MulInto(next, qlocal, usub)
	p.ws.Put(usub)
	p.ws.Put(unew)
	p.ws.Put(qlocal)
	p.ws.Put(p.ulocal) // recycle the previous local modes storage
	p.ulocal = next
	p.singular = append(p.singular[:0], snew[:k]...)
	p.iteration++
	p.snapshots += a.Cols()
	return p
}

// parallelQR is Listing 4: distributed TSQR of the row-distributed ll,
// then the small SVD ("step b of Levy-Lindenbaum") of the global R at rank
// 0, broadcast to everyone.
func (p *Parallel) parallelQR(ll *mat.Dense) (qlocal, unew *mat.Dense, snew []float64) {
	qlocal, rfinal := tsqr.GatherQRWith(&p.ws, p.comm, ll)
	if p.comm.Rank() == 0 {
		if p.opts.LowRank {
			k := p.opts.K
			if t := minInt(rfinal.Rows(), rfinal.Cols()); k > t {
				k = t
			}
			var err error
			unew, snew, err = rla.LowRankSVDWith(&p.ws, rfinal, k, p.opts.RLA)
			if err != nil {
				// Options are validated at construction and rfinal is never
				// empty, so a rejection here is a broken internal invariant.
				panic(fmt.Sprintf("core: low-rank parallel QR: %v", err))
			}
		} else {
			var v *mat.Dense
			unew, snew, v = linalg.SVDWith(&p.ws, rfinal)
			p.ws.Put(v)
		}
		p.ws.Put(rfinal)
	}
	// Broadcast returns a fresh copy on every rank, including the root;
	// recycle the root's pre-broadcast factors instead of dropping them.
	uroot, sroot := unew, snew
	unew = p.comm.BcastMatrix(0, unew)
	snew = p.comm.BcastFloats(0, snew)
	if p.comm.Rank() == 0 {
		p.ws.Put(uroot)
		p.ws.PutFloats(sroot)
	}
	return qlocal, unew, snew
}

// Modes returns this rank's M_i×K slice of the truncated left singular
// vectors. The caller must not mutate the result, and the matrix is only
// valid until the next IncorporateData call — its storage is recycled into
// the update's workspace. Clone it to retain a snapshot across updates.
func (p *Parallel) Modes() *mat.Dense {
	p.mustBeInitialized()
	return p.ulocal
}

// SingularValues returns the current truncated (global) singular values.
func (p *Parallel) SingularValues() []float64 {
	p.mustBeInitialized()
	return p.singular
}

// Iterations returns the number of streaming updates performed.
func (p *Parallel) Iterations() int { return p.iteration }

// SnapshotsSeen returns the total number of ingested snapshot columns.
func (p *Parallel) SnapshotsSeen() int { return p.snapshots }

// GatherModes assembles the full M×K mode matrix at rank 0 (the paper's
// `_gather_modes`). Other ranks receive nil.
func (p *Parallel) GatherModes() *mat.Dense {
	p.mustBeInitialized()
	blocks := p.comm.GatherMatrix(0, p.ulocal)
	if p.comm.Rank() != 0 {
		return nil
	}
	return mat.VStack(blocks...)
}

func (p *Parallel) mustBeInitialized() {
	if p.ulocal == nil {
		panic("core: Parallel not initialized; call Initialize with the first batch")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
