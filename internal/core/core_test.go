package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"goparsvd/internal/apmos"
	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

// splitRows partitions a into p contiguous row blocks as evenly as possible.
func splitRows(a *mat.Dense, p int) []*mat.Dense {
	m := a.Rows()
	blocks := make([]*mat.Dense, p)
	base, rem := m/p, m%p
	off := 0
	for r := 0; r < p; r++ {
		rows := base
		if r < rem {
			rows++
		}
		blocks[r] = a.SliceRows(off, off+rows)
		off += rows
	}
	return blocks
}

// runParallelStream streams the columns of a through Parallel engines on p
// ranks in batches of the given size and returns the gathered modes and
// singular values.
func runParallelStream(t *testing.T, a *mat.Dense, p, batch int, opts Options) (*mat.Dense, []float64) {
	t.Helper()
	blocks := splitRows(a, p)
	n := a.Cols()
	var modes *mat.Dense
	var s []float64
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		eng := NewParallel(c, opts)
		local := blocks[c.Rank()]
		eng.Initialize(local.SliceCols(0, batch))
		for off := batch; off < n; off += batch {
			end := off + batch
			if end > n {
				end = n
			}
			eng.IncorporateData(local.SliceCols(off, end))
		}
		gathered := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			modes = gathered
			s = append([]float64(nil), eng.SingularValues()...)
			mu.Unlock()
		}
	})
	return modes, s
}

// runSerialStream streams the columns of a through a Serial engine.
func runSerialStream(a *mat.Dense, batch int, opts Options) *Serial {
	eng := NewSerial(opts)
	n := a.Cols()
	eng.Initialize(a.SliceCols(0, batch))
	for off := batch; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		eng.IncorporateData(a.SliceCols(off, end))
	}
	return eng
}

func TestSerialMatchesOneShotSVD(t *testing.T) {
	rng := testutil.NewRand(1)
	a, _ := testutil.RandomLowRank(80, 24, 5, 0, rng)
	eng := runSerialStream(a, 8, Options{K: 6, ForgetFactor: 1})
	u, sv, _ := linalg.SVD(a)
	if !testutil.CloseSlices(eng.SingularValues()[:5], sv[:5], 1e-8) {
		t.Fatalf("values %v vs %v", eng.SingularValues()[:5], sv[:5])
	}
	if err := testutil.MaxColumnError(u.SliceCols(0, 5), eng.Modes().SliceCols(0, 5)); err > 1e-6 {
		t.Fatalf("mode error %g", err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The paper's Figure 1(a,b) claim in miniature: the distributed
	// streaming SVD agrees with the serial streaming SVD.
	rng := testutil.NewRand(2)
	a, _ := testutil.RandomLowRank(96, 24, 6, 1e-7, rng)
	opts := Options{K: 5, ForgetFactor: 1, R1: 24}
	serial := runSerialStream(a, 8, opts)
	for _, p := range []int{1, 2, 4} {
		modes, s := runParallelStream(t, a, p, 8, opts)
		if !testutil.CloseSlices(s[:5], serial.SingularValues()[:5], 1e-6) {
			t.Fatalf("p=%d: values %v vs serial %v", p, s, serial.SingularValues())
		}
		if err := testutil.MaxColumnError(serial.Modes(), modes); err > 1e-5 {
			t.Fatalf("p=%d: mode error %g", p, err)
		}
	}
}

func TestParallelMatchesSerialWithForgetFactor(t *testing.T) {
	// With ff < 1 the two engines run identical mathematics, so they must
	// still agree (this exercises the ff path through the distributed QR).
	rng := testutil.NewRand(3)
	a, _ := testutil.RandomLowRank(60, 18, 4, 1e-7, rng)
	opts := Options{K: 4, ForgetFactor: 0.95, R1: 18}
	serial := runSerialStream(a, 6, opts)
	modes, s := runParallelStream(t, a, 3, 6, opts)
	if !testutil.CloseSlices(s, serial.SingularValues(), 1e-6) {
		t.Fatalf("values %v vs serial %v", s, serial.SingularValues())
	}
	if err := testutil.MaxColumnError(serial.Modes(), modes); err > 1e-5 {
		t.Fatalf("mode error %g", err)
	}
}

func TestParallelModesOrthonormal(t *testing.T) {
	rng := testutil.NewRand(4)
	a, _ := testutil.RandomLowRank(80, 20, 8, 1e-6, rng)
	modes, _ := runParallelStream(t, a, 4, 5, Options{K: 4, ForgetFactor: 0.95, R1: 20})
	testutil.CheckOrthonormalColumns(t, "gathered modes", modes, 1e-8)
}

func TestParallelLowRankTracksDeterministic(t *testing.T) {
	rng := testutil.NewRand(5)
	a, _ := testutil.RandomLowRank(64, 16, 4, 1e-8, rng)
	det, sDet := runParallelStream(t, a, 2, 8, Options{K: 4, ForgetFactor: 1, R1: 16})
	lr, sLR := runParallelStream(t, a, 2, 8, Options{K: 4, ForgetFactor: 1, R1: 16, LowRank: true})
	for i := range sDet {
		if math.Abs(sDet[i]-sLR[i]) > 1e-5*(1+sDet[0]) {
			t.Fatalf("value %d: %g vs %g", i, sDet[i], sLR[i])
		}
	}
	if err := testutil.SubspaceError(det, lr); err > 1e-4 {
		t.Fatalf("low-rank modes differ: %g", err)
	}
}

func TestParallelSingularValuesIdenticalAcrossRanks(t *testing.T) {
	rng := testutil.NewRand(6)
	a := testutil.RandomDense(40, 12, rng)
	blocks := splitRows(a, 4)
	var mu sync.Mutex
	all := make([][]float64, 4)
	mpi.MustRun(4, func(c *mpi.Comm) {
		eng := NewParallel(c, Options{K: 3, ForgetFactor: 1, R1: 12})
		eng.Initialize(blocks[c.Rank()].SliceCols(0, 6))
		eng.IncorporateData(blocks[c.Rank()].SliceCols(6, 12))
		mu.Lock()
		all[c.Rank()] = append([]float64(nil), eng.SingularValues()...)
		mu.Unlock()
	})
	for r := 1; r < 4; r++ {
		if !testutil.CloseSlices(all[0], all[r], 0) {
			t.Fatalf("rank %d singular values differ: %v vs %v", r, all[r], all[0])
		}
	}
}

func TestSerialImplementsDecomposer(t *testing.T) {
	var d Decomposer = NewSerial(Options{K: 2, ForgetFactor: 1})
	rng := testutil.NewRand(7)
	d = d.Initialize(testutil.RandomDense(10, 4, rng))
	d = d.IncorporateData(testutil.RandomDense(10, 4, rng))
	if d.Iterations() != 1 || d.Modes().Cols() != 2 || len(d.SingularValues()) != 2 {
		t.Fatal("Decomposer contract violated by Serial")
	}
}

func TestUsageErrorsSerial(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad K":  func() { NewSerial(Options{K: 0, ForgetFactor: 1}) },
		"bad ff": func() { NewSerial(Options{K: 1, ForgetFactor: 0}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestUsageErrorsParallel(t *testing.T) {
	if _, err := mpi.Run(2, func(c *mpi.Comm) {
		eng := NewParallel(c, Options{K: 2, ForgetFactor: 1})
		eng.Modes() // before Initialize
	}); err == nil {
		t.Fatal("Modes before Initialize must fail")
	}
	if _, err := mpi.Run(2, func(c *mpi.Comm) {
		eng := NewParallel(c, Options{K: 2, ForgetFactor: 1})
		eng.Initialize(mat.Eye(4))
		eng.Initialize(mat.Eye(4))
	}); err == nil {
		t.Fatal("double Initialize must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil communicator must panic")
		}
	}()
	NewParallel(nil, Options{K: 2, ForgetFactor: 1})
}

func TestParallelCounters(t *testing.T) {
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(24, 9, rng)
	blocks := splitRows(a, 2)
	mpi.MustRun(2, func(c *mpi.Comm) {
		eng := NewParallel(c, Options{K: 2, ForgetFactor: 1, R1: 9})
		eng.Initialize(blocks[c.Rank()].SliceCols(0, 3))
		eng.IncorporateData(blocks[c.Rank()].SliceCols(3, 6))
		eng.IncorporateData(blocks[c.Rank()].SliceCols(6, 9))
		if eng.Iterations() != 2 || eng.SnapshotsSeen() != 9 {
			t.Errorf("rank %d: iters=%d snaps=%d", c.Rank(), eng.Iterations(), eng.SnapshotsSeen())
		}
		if eng.Rank() != c.Rank() {
			t.Errorf("Rank() = %d, want %d", eng.Rank(), c.Rank())
		}
	})
}

func TestParallelMethodSVDVariant(t *testing.T) {
	// MethodSVD local right vectors must give the same decomposition as
	// the default Gram path.
	rng := testutil.NewRand(9)
	a, _ := testutil.RandomLowRank(48, 12, 4, 1e-7, rng)
	gram, sGram := runParallelStream(t, a, 2, 6, Options{K: 3, ForgetFactor: 1, R1: 12})
	svd, sSVD := runParallelStream(t, a, 2, 6,
		Options{K: 3, ForgetFactor: 1, R1: 12, Method: apmos.MethodSVD})
	if !testutil.CloseSlices(sGram, sSVD, 1e-6) {
		t.Fatalf("values %v vs %v", sGram, sSVD)
	}
	if err := testutil.SubspaceError(gram, svd); err > 1e-5 {
		t.Fatalf("modes differ: %g", err)
	}
}

// Property: serial and parallel engines agree for random low-rank streams,
// rank counts and batch sizes.
func TestPropertySerialParallelAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		rank := 2 + rng.Intn(3)
		batch := rank + 2 + rng.Intn(3)
		nBatches := 2 + rng.Intn(3)
		n := batch * nBatches
		m := p * (n + 5 + rng.Intn(20))
		a, _ := testutil.RandomLowRank(m, n, rank, 0, rng)
		opts := Options{K: rank, ForgetFactor: 1, R1: n}
		serial := runSerialStream(a, batch, opts)

		blocks := splitRows(a, p)
		var s []float64
		var mu sync.Mutex
		mpi.MustRun(p, func(c *mpi.Comm) {
			eng := NewParallel(c, opts)
			eng.Initialize(blocks[c.Rank()].SliceCols(0, batch))
			for off := batch; off < n; off += batch {
				eng.IncorporateData(blocks[c.Rank()].SliceCols(off, off+batch))
			}
			if c.Rank() == 0 {
				mu.Lock()
				s = append([]float64(nil), eng.SingularValues()...)
				mu.Unlock()
			}
		})
		return testutil.CloseSlices(s, serial.SingularValues(), 1e-5*(1+serial.SingularValues()[0]))
	}
	cfg := &quick.Config{MaxCount: 15, Rand: testutil.NewRand(10)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelImplementsDecomposer(t *testing.T) {
	rng := testutil.NewRand(11)
	a := testutil.RandomDense(24, 8, rng)
	blocks := splitRows(a, 2)
	mpi.MustRun(2, func(c *mpi.Comm) {
		var d Decomposer = NewParallel(c, Options{K: 2, ForgetFactor: 1, R1: 8})
		d = d.Initialize(blocks[c.Rank()].SliceCols(0, 4))
		d = d.IncorporateData(blocks[c.Rank()].SliceCols(4, 8))
		if d.Iterations() != 1 || d.Modes().Cols() != 2 || len(d.SingularValues()) != 2 {
			t.Error("Decomposer contract violated by Parallel")
		}
	})
}

func TestGatherModesAfterStreaming(t *testing.T) {
	// GatherModes must reflect the *current* state, not the initial one.
	rng := testutil.NewRand(12)
	a, _ := testutil.RandomLowRank(40, 12, 3, 1e-8, rng)
	blocks := splitRows(a, 2)
	var mu sync.Mutex
	var first, second *mat.Dense
	mpi.MustRun(2, func(c *mpi.Comm) {
		eng := NewParallel(c, Options{K: 3, ForgetFactor: 1, R1: 12})
		eng.Initialize(blocks[c.Rank()].SliceCols(0, 6))
		g1 := eng.GatherModes()
		eng.IncorporateData(blocks[c.Rank()].SliceCols(6, 12))
		g2 := eng.GatherModes()
		if c.Rank() == 0 {
			mu.Lock()
			first, second = g1, g2
			mu.Unlock()
		}
	})
	if mat.EqualApprox(first, second, 1e-14) {
		t.Fatal("modes unchanged by streaming update")
	}
	testutil.CheckOrthonormalColumns(t, "after streaming", second, 1e-8)
}

func TestParallelUnevenRowBlocks(t *testing.T) {
	// 41 rows over 4 ranks: 11, 10, 10, 10 — exercises non-uniform slab
	// bookkeeping end to end.
	rng := testutil.NewRand(13)
	a, _ := testutil.RandomLowRank(41, 10, 3, 1e-8, rng)
	opts := Options{K: 3, ForgetFactor: 1, R1: 10}
	modes, s := runParallelStream(t, a, 4, 5, opts)
	serialModes, serialS := apmos.DecomposeSerial(a, 3)
	if !testutil.CloseSlices(s, serialS, 1e-6*(1+serialS[0])) {
		t.Fatalf("values %v vs %v", s, serialS)
	}
	if err := testutil.SubspaceError(serialModes, modes); err > 1e-5 {
		t.Fatalf("subspace error %g", err)
	}
}
