package core_test

import (
	"fmt"

	"goparsvd/internal/core"
	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
)

// rankOneBatch builds an M×B batch whose columns are multiples of a fixed
// spatial pattern, so the data has exactly one nonzero singular value and
// the example output is deterministic.
func rankOneBatch(m, b int, scale float64) *mat.Dense {
	out := mat.New(m, b)
	for j := 0; j < b; j++ {
		for i := 0; i < m; i++ {
			out.Set(i, j, scale*float64(i+1))
		}
	}
	return out
}

// ExampleSerial demonstrates the serial streaming workflow: initialize
// with the first batch, stream the rest, read off the spectrum.
func ExampleSerial() {
	svd := core.NewSerial(core.Options{K: 2, ForgetFactor: 1.0})
	svd.Initialize(rankOneBatch(100, 4, 1.0))
	svd.IncorporateData(rankOneBatch(100, 4, 1.0))

	fmt.Printf("snapshots seen: %d\n", svd.SnapshotsSeen())
	fmt.Printf("rank of data:   %d significant value(s)\n", countSignificant(svd.SingularValues()))
	// Output:
	// snapshots seen: 8
	// rank of data:   1 significant value(s)
}

// ExampleParallel demonstrates the distributed workflow: four ranks each
// hold a row block, stream batches, and rank 0 gathers the global modes.
func ExampleParallel() {
	const m, ranks = 64, 4
	full := rankOneBatch(m, 6, 2.0)
	parts := grid.Partition(m, ranks)

	mpi.MustRun(ranks, func(c *mpi.Comm) {
		pr := parts[c.Rank()]
		eng := core.NewParallel(c, core.Options{K: 2, ForgetFactor: 1.0, R1: 6})
		eng.Initialize(full.SliceRows(pr.Start, pr.End))
		modes := eng.GatherModes()
		if c.Rank() == 0 {
			r, k := modes.Dims()
			fmt.Printf("gathered modes: %dx%d\n", r, k)
			fmt.Printf("significant values: %d\n", countSignificant(eng.SingularValues()))
		}
	})
	// Output:
	// gathered modes: 64x2
	// significant values: 1
}

// countSignificant counts values above a 1e-6 relative threshold — loose
// enough to absorb the sqrt(eps)-level noise the Gram-matrix path leaves
// on numerically-zero singular values.
func countSignificant(s []float64) int {
	n := 0
	for _, v := range s {
		if v > 1e-6*s[0] {
			n++
		}
	}
	return n
}
