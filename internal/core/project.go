package core

import (
	"fmt"

	"goparsvd/internal/mat"
)

// This file implements the projection utilities the paper's §2 motivates:
// once the truncated modes are available, snapshots can be compressed to
// K coefficients each (data compression, reduced-order modeling) and
// reconstructed from them. Both engines expose the same pair of methods;
// the parallel versions operate on row blocks and need one Allreduce per
// projection.

// Coefficients projects snapshots onto the current modes: the returned
// K×B matrix holds, per column, the modal coefficients Uᵀ·a of the
// corresponding snapshot column. For POD/ROM users these are the "time
// coefficients"; for compression they are the compressed representation.
func (s *Serial) Coefficients(a *mat.Dense) *mat.Dense {
	modes := s.Modes()
	if a.Rows() != modes.Rows() {
		panic(fmt.Sprintf("core: Coefficients rows %d, want %d", a.Rows(), modes.Rows()))
	}
	return mat.MulTransA(modes, a)
}

// Reconstruct maps K×B coefficients back to snapshot space: U·c. Together
// with Coefficients it is the rank-K compression round trip; the
// reconstruction error is governed by the discarded σ_{K+1:} tail
// (Eckart–Young).
func (s *Serial) Reconstruct(coeffs *mat.Dense) *mat.Dense {
	modes := s.Modes()
	if coeffs.Rows() != modes.Cols() {
		panic(fmt.Sprintf("core: Reconstruct coefficient rows %d, want %d",
			coeffs.Rows(), modes.Cols()))
	}
	return mat.Mul(modes, coeffs)
}

// Coefficients projects this rank's snapshot block onto the distributed
// modes. Each rank contributes U_iᵀ·a_i and the contributions are summed
// across ranks, so every rank returns the same global K×B coefficient
// matrix — no rank ever needs the full snapshot.
func (p *Parallel) Coefficients(a *mat.Dense) *mat.Dense {
	modes := p.Modes()
	if a.Rows() != modes.Rows() {
		panic(fmt.Sprintf("core: Coefficients rows %d, want %d", a.Rows(), modes.Rows()))
	}
	local := mat.MulTransA(modes, a) // K×B partial sum
	k, b := local.Dims()
	global := p.comm.AllreduceSum(local.RawData())
	return mat.NewFromData(k, b, global)
}

// Reconstruct maps global coefficients back to this rank's rows of
// snapshot space: U_i·c. Stacking the per-rank results reproduces the
// serial reconstruction.
func (p *Parallel) Reconstruct(coeffs *mat.Dense) *mat.Dense {
	modes := p.Modes()
	if coeffs.Rows() != modes.Cols() {
		panic(fmt.Sprintf("core: Reconstruct coefficient rows %d, want %d",
			coeffs.Rows(), modes.Cols()))
	}
	return mat.Mul(modes, coeffs)
}

// CompressionRatio reports the storage ratio of rank-K compression for an
// M×N snapshot matrix: original M·N values versus M·K (modes) + K (values)
// + K·N (coefficients).
func CompressionRatio(m, n, k int) float64 {
	if m < 1 || n < 1 || k < 1 {
		panic(fmt.Sprintf("core: CompressionRatio with m=%d n=%d k=%d", m, n, k))
	}
	original := float64(m) * float64(n)
	compressed := float64(m)*float64(k) + float64(k) + float64(k)*float64(n)
	return original / compressed
}
