package core

import (
	"math"
	"sync"
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

func TestSerialCoefficientsRoundTrip(t *testing.T) {
	// For data that lies exactly in a rank-r subspace with K ≥ r, the
	// compress/reconstruct round trip is lossless.
	rng := testutil.NewRand(21)
	a, _ := testutil.RandomLowRank(60, 20, 4, 0, rng)
	eng := NewSerial(Options{K: 5, ForgetFactor: 1})
	eng.Initialize(a.SliceCols(0, 10))
	eng.IncorporateData(a.SliceCols(10, 20))

	coeffs := eng.Coefficients(a)
	if coeffs.Rows() != 5 || coeffs.Cols() != 20 {
		t.Fatalf("coefficients shape %dx%d", coeffs.Rows(), coeffs.Cols())
	}
	recon := eng.Reconstruct(coeffs)
	if rel := mat.Sub(a, recon).FroNorm() / a.FroNorm(); rel > 1e-8 {
		t.Fatalf("lossless round trip failed: rel error %g", rel)
	}
}

func TestSerialReconstructionErrorMatchesEckartYoung(t *testing.T) {
	// For general data the rank-K round-trip error cannot beat the optimal
	// rank-K error, and with ff = 1 streaming it should be close to it.
	rng := testutil.NewRand(22)
	a := testutil.RandomDense(80, 24, rng)
	k := 6
	eng := NewSerial(Options{K: k, ForgetFactor: 1})
	eng.Initialize(a)

	recon := eng.Reconstruct(eng.Coefficients(a))
	got := mat.Sub(a, recon).FroNorm()
	_, s, _ := linalg.SVD(a)
	opt := 0.0
	for _, sv := range s[k:] {
		opt += sv * sv
	}
	opt = math.Sqrt(opt)
	if got < opt-1e-9 {
		t.Fatalf("beat Eckart-Young?! got %g < optimal %g", got, opt)
	}
	if got > 1.01*opt {
		t.Fatalf("round-trip error %g far from optimal %g", got, opt)
	}
}

func TestParallelCoefficientsMatchSerial(t *testing.T) {
	rng := testutil.NewRand(23)
	a, _ := testutil.RandomLowRank(72, 18, 5, 1e-8, rng)
	opts := Options{K: 4, ForgetFactor: 1, R1: 18}

	serial := NewSerial(opts)
	serial.Initialize(a)
	serialCoeffs := serial.Coefficients(a)

	const p = 3
	blocks := splitRows(a, p)
	coeffsByRank := make([]*mat.Dense, p)
	reconBlocks := make([]*mat.Dense, p)
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		eng := NewParallel(c, opts)
		eng.Initialize(blocks[c.Rank()])
		coeffs := eng.Coefficients(blocks[c.Rank()])
		recon := eng.Reconstruct(coeffs)
		mu.Lock()
		coeffsByRank[c.Rank()] = coeffs
		reconBlocks[c.Rank()] = recon
		mu.Unlock()
	})

	// Every rank computes identical global coefficients.
	for r := 1; r < p; r++ {
		if !mat.EqualApprox(coeffsByRank[0], coeffsByRank[r], 1e-12) {
			t.Fatalf("rank %d coefficients differ from rank 0", r)
		}
	}
	// They agree with the serial projection up to per-mode sign flips, so
	// compare the reconstructions, which are sign-invariant.
	serialRecon := serial.Reconstruct(serialCoeffs)
	parallelRecon := mat.VStack(reconBlocks...)
	if !mat.EqualApprox(serialRecon, parallelRecon, 1e-6) {
		t.Fatalf("parallel reconstruction differs from serial by %g",
			mat.Sub(serialRecon, parallelRecon).MaxAbs())
	}
}

func TestCoefficientsShapeErrors(t *testing.T) {
	rng := testutil.NewRand(24)
	eng := NewSerial(Options{K: 2, ForgetFactor: 1})
	eng.Initialize(testutil.RandomDense(10, 4, rng))
	for name, fn := range map[string]func(){
		"coeff rows":  func() { eng.Coefficients(mat.New(9, 4)) },
		"recon shape": func() { eng.Reconstruct(mat.New(3, 4)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestCompressionRatio(t *testing.T) {
	// 1000×100 at K=5: 100000 / (5000 + 5 + 500) ≈ 18.2.
	got := CompressionRatio(1000, 100, 5)
	want := 100000.0 / 5505.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio %g, want %g", got, want)
	}
}

func TestCompressionRatioInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid args did not panic")
		}
	}()
	CompressionRatio(0, 10, 2)
}
