// Package fft implements the radix-2 Cooley–Tukey fast Fourier transform
// for complex128 signals, plus the real-input helpers the SPOD module
// needs. The standard library has no FFT, and the spectral variants of the
// decompositions in this repository (SPOD / spectral EOF, which the paper's
// §2 presents as the frequency-domain siblings of the POD it computes)
// operate on Fourier coefficients of windowed snapshot blocks.
//
// Lengths must be powers of two; Hann windowing and the one-sided
// frequency axis helper cover the Welch-style blocking SPOD performs.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-order discrete Fourier transform of x:
//
//	X[k] = Σ_j x[j]·exp(−2πi·jk/n)
//
// The input is not modified. It panics unless len(x) is a power of two.
func FFT(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, false)
	return out
}

// IFFT computes the inverse DFT with the 1/n normalization, so
// IFFT(FFT(x)) == x up to roundoff.
func IFFT(x []complex128) []complex128 {
	out := append([]complex128(nil), x...)
	transform(out, true)
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	transform(c, false)
	return c
}

// transform runs the iterative radix-2 Cooley–Tukey algorithm in place.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wl
			}
		}
	}
}

// HannWindow returns the length-n Hann window w[j] = 0.5·(1 − cos(2πj/n)),
// the standard choice for Welch-method blocking.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	for j := range w {
		w[j] = 0.5 * (1 - math.Cos(2*math.Pi*float64(j)/float64(n)))
	}
	return w
}

// Frequencies returns the one-sided frequency axis for an n-point
// transform at sample interval dt: n/2+1 values from 0 to the Nyquist
// frequency 1/(2·dt).
func Frequencies(n int, dt float64) []float64 {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if dt <= 0 {
		panic(fmt.Sprintf("fft: sample interval %g <= 0", dt))
	}
	out := make([]float64, n/2+1)
	for k := range out {
		out[k] = float64(k) / (float64(n) * dt)
	}
	return out
}
