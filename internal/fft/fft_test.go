package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func randomComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func closeComplex(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomComplex(n, rng)
		if !closeComplex(FFT(x), naiveDFT(x), 1e-9*float64(n)) {
			t.Fatalf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for k, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-14 {
			t.Fatalf("impulse spectrum at %d: %v", k, v)
		}
	}
}

func TestFFTPureTone(t *testing.T) {
	// A complex exponential at bin 3 concentrates all energy there.
	const n = 32
	x := make([]complex128, n)
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(j)/n))
	}
	spec := FFT(x)
	for k, v := range spec {
		want := 0.0
		if k == 3 {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-10 {
			t.Fatalf("bin %d: |X| = %g, want %g", k, cmplx.Abs(v), want)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomComplex(128, rng)
	if !closeComplex(IFFT(FFT(x)), x, 1e-12) {
		t.Fatal("IFFT(FFT(x)) != x")
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomComplex(16, rng)
	before := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	if !closeComplex(x, before, 0) {
		t.Fatal("transforms mutated their input")
	}
}

func TestFFTRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xr := make([]float64, 64)
	xc := make([]complex128, 64)
	for i := range xr {
		xr[i] = rng.NormFloat64()
		xc[i] = complex(xr[i], 0)
	}
	if !closeComplex(FFTReal(xr), FFT(xc), 1e-12) {
		t.Fatal("FFTReal disagrees with FFT")
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xr := make([]float64, 32)
	for i := range xr {
		xr[i] = rng.NormFloat64()
	}
	spec := FFTReal(xr)
	for k := 1; k < 16; k++ {
		if cmplx.Abs(spec[k]-cmplx.Conj(spec[32-k])) > 1e-12 {
			t.Fatalf("conjugate symmetry violated at bin %d", k)
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length 12 did not panic")
		}
	}()
	FFT(make([]complex128, 12))
}

// Property: Parseval's theorem — Σ|x|² = (1/n)·Σ|X|².
func TestPropertyParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(6))
		x := randomComplex(n, rng)
		spec := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		return math.Abs(et-ef/float64(n)) < 1e-9*(1+et)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity of the transform.
func TestPropertyLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(5))
		x := randomComplex(n, rng)
		y := randomComplex(n, rng)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(a*fx[i]+fy[i])) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(8)
	if w[0] != 0 {
		t.Fatalf("Hann[0] = %g, want 0", w[0])
	}
	if math.Abs(w[4]-1) > 1e-15 {
		t.Fatalf("Hann[n/2] = %g, want 1", w[4])
	}
	// Symmetry about n/2 for the periodic window: w[j] == w[n-j].
	for j := 1; j < 8; j++ {
		if math.Abs(w[j]-w[8-j]) > 1e-15 {
			t.Fatalf("Hann asymmetric at %d", j)
		}
	}
}

func TestFrequencies(t *testing.T) {
	f := Frequencies(8, 0.5) // fs = 2 Hz, Nyquist 1 Hz
	if len(f) != 5 {
		t.Fatalf("got %d frequencies", len(f))
	}
	if f[0] != 0 || math.Abs(f[4]-1) > 1e-15 {
		t.Fatalf("axis = %v", f)
	}
}

func TestFrequenciesValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"length": func() { Frequencies(10, 1) },
		"dt":     func() { Frequencies(8, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Fatalf("%d should be a power of two", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12, 1000} {
		if IsPowerOfTwo(n) {
			t.Fatalf("%d should not be a power of two", n)
		}
	}
}
