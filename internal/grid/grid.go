// Package grid holds the small domain-decomposition and vector-comparison
// helpers shared by the experiment binaries and examples: contiguous
// near-equal partitioning of a row range across ranks, and cosine
// similarity for mode validation.
package grid

import (
	"fmt"
	"math"

	"goparsvd/internal/mat"
)

// Range is a half-open interval [Start, End) of row indices.
type Range struct {
	Start, End int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.End - r.Start }

// Partition splits n items into p contiguous ranges whose sizes differ by
// at most one, in index order. It panics unless 1 ≤ p ≤ n.
func Partition(n, p int) []Range {
	if p < 1 || n < p {
		panic(fmt.Sprintf("grid: cannot partition %d items into %d parts", n, p))
	}
	out := make([]Range, p)
	base, rem := n/p, n%p
	off := 0
	for r := 0; r < p; r++ {
		size := base
		if r < rem {
			size++
		}
		out[r] = Range{Start: off, End: off + size}
		off += size
	}
	return out
}

// SplitRows partitions the rows of m into p contiguous blocks matching
// Partition(m.Rows(), p). Blocks are copies.
func SplitRows(m *mat.Dense, p int) []*mat.Dense {
	parts := Partition(m.Rows(), p)
	out := make([]*mat.Dense, p)
	for r, pr := range parts {
		out[r] = m.SliceRows(pr.Start, pr.End)
	}
	return out
}

// AbsCosine returns |⟨a, b⟩| / (‖a‖·‖b‖), the sign-insensitive cosine
// similarity used to validate extracted modes against reference patterns.
// It returns 0 if either vector is zero. It panics on length mismatch.
func AbsCosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("grid: AbsCosine length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return math.Abs(dot) / math.Sqrt(na*nb)
}
