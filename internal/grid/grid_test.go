package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
)

func TestPartitionExact(t *testing.T) {
	parts := Partition(10, 2)
	if len(parts) != 2 || parts[0] != (Range{0, 5}) || parts[1] != (Range{5, 10}) {
		t.Fatalf("parts = %v", parts)
	}
}

func TestPartitionWithRemainder(t *testing.T) {
	parts := Partition(10, 3) // 4, 3, 3
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("parts = %v, want %v", parts, want)
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	parts := Partition(7, 1)
	if len(parts) != 1 || parts[0] != (Range{0, 7}) {
		t.Fatalf("parts = %v", parts)
	}
}

func TestPartitionInvalidPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero parts":      func() { Partition(5, 0) },
		"more parts than": func() { Partition(3, 5) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

// Property: partitions tile [0, n) exactly, in order, with balanced sizes.
func TestPropertyPartitionTiles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(16)
		n := p + rng.Intn(1000)
		parts := Partition(n, p)
		if parts[0].Start != 0 || parts[len(parts)-1].End != n {
			return false
		}
		minSz, maxSz := n, 0
		for i, pr := range parts {
			if i > 0 && pr.Start != parts[i-1].End {
				return false
			}
			if pr.Len() < minSz {
				minSz = pr.Len()
			}
			if pr.Len() > maxSz {
				maxSz = pr.Len()
			}
		}
		return maxSz-minSz <= 1
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRowsReassembles(t *testing.T) {
	m := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}, {5}})
	blocks := SplitRows(m, 2)
	if blocks[0].Rows() != 3 || blocks[1].Rows() != 2 {
		t.Fatalf("block sizes %d, %d", blocks[0].Rows(), blocks[1].Rows())
	}
	if !mat.EqualApprox(mat.VStack(blocks...), m, 0) {
		t.Fatal("blocks do not reassemble the matrix")
	}
	// Blocks must be copies.
	blocks[0].Set(0, 0, -9)
	if m.At(0, 0) != 1 {
		t.Fatal("SplitRows aliased the source")
	}
}

func TestAbsCosine(t *testing.T) {
	if got := AbsCosine([]float64{1, 0}, []float64{1, 0}); got != 1 {
		t.Fatalf("identical vectors: %g", got)
	}
	if got := AbsCosine([]float64{1, 0}, []float64{-1, 0}); got != 1 {
		t.Fatalf("sign-flipped vectors: %g", got)
	}
	if got := AbsCosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal vectors: %g", got)
	}
	if got := AbsCosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero vector: %g", got)
	}
	got := AbsCosine([]float64{1, 1}, []float64{1, 0})
	if math.Abs(got-1/math.Sqrt2) > 1e-15 {
		t.Fatalf("45°: %g", got)
	}
}

func TestAbsCosineLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AbsCosine([]float64{1}, []float64{1, 2})
}
