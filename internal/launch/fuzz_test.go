package launch

// Fuzz harness for the session-protocol boundary: the frame reader and
// the payload decoders parse bytes written by another process, so they
// must never panic, never over-allocate against a lying length prefix,
// and never let non-finite snapshot data through into a collective
// update. Run the seeds with `go test`, or explore with
// `go test -fuzz FuzzReadSessionFrame ./internal/launch` (and the other
// targets likewise).

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"goparsvd/internal/mat"
)

// frameSeed renders one well-formed frame.
func frameSeed(verb byte, body []byte) []byte {
	var buf bytes.Buffer
	if err := WriteSessionFrame(&buf, verb, body); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadSessionFrame(f *testing.F) {
	valid := frameSeed(SessPush, EncodeBlock(mat.NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})))
	f.Add(valid)
	f.Add(valid[:3])                                    // truncated header
	f.Add(valid[:7])                                    // truncated body
	f.Add(frameSeed(SessOK, []byte(`{}`)))              // JSON body
	f.Add(frameSeed(SessShutdown, nil))                 // empty body
	f.Add([]byte{0, 0, 0, 0})                           // zero length
	f.Add([]byte{255, 255, 255, 255, 1})                // absurd length
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<28)) // huge declared, no data

	f.Fuzz(func(t *testing.T, data []byte) {
		verb, body, err := ReadSessionFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must be internally consistent: the frame
		// re-encodes to the exact bytes consumed.
		var rt bytes.Buffer
		if err := WriteSessionFrame(&rt, verb, body); err != nil {
			t.Fatalf("re-encoding a parsed frame failed: %v", err)
		}
		if !bytes.Equal(rt.Bytes(), data[:rt.Len()]) {
			t.Fatalf("frame did not round-trip")
		}
	})
}

func FuzzDecodeBlock(f *testing.F) {
	f.Add(EncodeBlock(mat.NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})))
	f.Add(EncodeBlock(mat.NewFromData(1, 1, []float64{-0.0})))
	f.Add(EncodeBlock(mat.NewFromData(1, 2, []float64{math.NaN(), 1})))         // must be rejected
	f.Add(EncodeBlock(mat.NewFromData(1, 2, []float64{math.Inf(1), 1})))        // must be rejected
	f.Add(EncodeBlock(mat.NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6}))[:20]) // truncated
	// A header that declares a huge float count with no payload behind it.
	huge := make([]byte, 32)
	binary.LittleEndian.PutUint64(huge[8:], 4)      // rows
	binary.LittleEndian.PutUint64(huge[16:], 4)     // cols
	binary.LittleEndian.PutUint64(huge[24:], 1<<40) // count lie
	f.Add(huge)
	// Dims that disagree with the count.
	bad := EncodeBlock(mat.NewFromData(2, 2, []float64{1, 2, 3, 4}))
	binary.LittleEndian.PutUint64(bad[8:], 3) // rows 2 -> 3
	f.Add(bad)
	// Dims whose int64 product wraps back to the payload length:
	// (2^61+1)·8 ≡ 8 mod 2^64, so a multiplying check would accept it.
	wrap := EncodeBlock(mat.NewFromData(1, 8, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	binary.LittleEndian.PutUint64(wrap[8:], 1<<61|1) // rows 1 -> 2^61+1
	f.Add(wrap)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBlock(data)
		if err != nil {
			return
		}
		// Everything DecodeBlock lets through must satisfy the snapshot
		// invariants: positive dims, matching payload, finite values.
		r, c := m.Dims()
		if r < 1 || c < 1 {
			t.Fatalf("accepted non-positive dims %dx%d", r, c)
		}
		if len(m.RawData()) != r*c {
			t.Fatalf("accepted %d values for a %dx%d block", len(m.RawData()), r, c)
		}
		for _, v := range m.RawData() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted a non-finite snapshot value %g", v)
			}
		}
	})
}

func FuzzDecodeFloats(f *testing.F) {
	f.Add(EncodeFloats([]float64{1, 2, 3}))
	f.Add(EncodeFloats(nil))
	f.Add(EncodeFloats([]float64{math.NaN(), math.Inf(-1), -0.0})) // legal for spectra
	f.Add(EncodeBlock(mat.NewFromData(1, 1, []float64{1})))        // matrix body: must be rejected
	f.Add([]byte{1, 2, 3})                                         // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeFloats(data)
		if err != nil {
			return
		}
		// Bit-exact round trip, NaNs included.
		if !equalFloatsBits(v, mustDecodeFloats(t, EncodeFloats(v))) {
			t.Fatal("floats did not round-trip bit-exactly")
		}
	})
}

func mustDecodeFloats(t *testing.T, body []byte) []float64 {
	t.Helper()
	v, err := DecodeFloats(body)
	if err != nil {
		t.Fatalf("re-decoding round-tripped floats: %v", err)
	}
	return v
}

// TestDecodeBlockRejectsHostileInputs pins the decoder's hard rejections
// outside the fuzzer (so `go test` alone proves them): truncation,
// oversize declared counts, dimension lies and non-finite payloads all
// error — never panic, never allocate the declared size.
func TestDecodeBlockRejectsHostileInputs(t *testing.T) {
	good := EncodeBlock(mat.NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	cases := map[string][]byte{
		"empty":     nil,
		"short":     good[:16],
		"truncated": good[:len(good)-8],
	}
	lie := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lie[24:], 1<<40) // count ≫ payload
	cases["count lie"] = lie
	zero := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(zero[8:], 0) // rows = 0
	cases["zero rows"] = zero
	wrap := EncodeBlock(mat.NewFromData(1, 8, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	binary.LittleEndian.PutUint64(wrap[8:], 1<<61|1) // (2^61+1)·8 wraps to 8
	cases["dims product overflow"] = wrap
	nan := EncodeBlock(mat.NewFromData(1, 2, []float64{math.NaN(), 1}))
	cases["nan payload"] = nan
	inf := EncodeBlock(mat.NewFromData(1, 2, []float64{1, math.Inf(1)}))
	cases["inf payload"] = inf
	for name, data := range cases {
		if _, err := DecodeBlock(data); err == nil {
			t.Errorf("%s: DecodeBlock accepted hostile input", name)
		}
	}
	if _, err := DecodeBlock(good); err != nil {
		t.Errorf("well-formed block rejected: %v", err)
	}
}

// TestReadSessionFrameBoundsAllocation: a frame whose length prefix
// promises far more than the stream delivers must fail after at most one
// chunk of allocation — not attempt the full declared size.
func TestReadSessionFrameBoundsAllocation(t *testing.T) {
	// Declares ~256 MiB, delivers 16 bytes.
	data := binary.LittleEndian.AppendUint32(nil, 1<<28)
	data = append(data, make([]byte, 16)...)
	if _, _, err := ReadSessionFrame(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated oversize frame did not error")
	}
	// Over the absolute bound: rejected before reading any body.
	over := binary.LittleEndian.AppendUint32(nil, uint32(maxSessionFrame+1))
	if _, _, err := ReadSessionFrame(bytes.NewReader(over)); err == nil {
		t.Fatal("over-bound frame length did not error")
	}
}
