// Package launch spawns and supervises multi-process TCP runs of the
// distributed streaming SVD: N copies of cmd/parsvd-worker, one OS process
// per rank, wired together by the tcptransport rendezvous.
//
// The stdout protocol between launcher and workers is line-oriented:
//
//   - rank 0 prints "PARSVD-RENDEZVOUS <addr>" as soon as its listener is
//     bound, which the launcher reads before spawning ranks 1..N-1;
//   - every rank prints one "PARSVD-RESULT {json}" line when done,
//     carrying the final singular values (as IEEE-754 bit patterns, so
//     comparisons are exact), a SHA-256 of the gathered modes on rank 0,
//     and the rank's traffic counters.
//
// Everything else a worker writes (logs) goes to stderr and is passed
// through.
package launch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"goparsvd/internal/mpi"
	"goparsvd/internal/scaling"
)

// Stdout markers of the worker protocol.
const (
	RendezvousPrefix = "PARSVD-RENDEZVOUS"
	ResultPrefix     = "PARSVD-RESULT"
)

// WorkerEnv names the environment variable that overrides worker binary
// resolution.
const WorkerEnv = "PARSVD_WORKER"

// RankResult is one worker's report, decoded from its PARSVD-RESULT line.
type RankResult struct {
	Rank int `json:"rank"`
	// SingularBits are the final singular values as math.Float64bits
	// patterns: the launcher compares runs for exact, bit-level equality,
	// which a decimal rendering would destroy.
	SingularBits []uint64 `json:"singular_bits"`
	// ModesSHA256 is the hash of the gathered M×K mode matrix (row-major
	// float64 little-endian bytes, prefixed by the dims); rank 0 only.
	ModesSHA256 string            `json:"modes_sha256,omitempty"`
	Stats       scaling.RankStats `json:"stats"`
}

// Singular decodes the bit patterns back into float64s.
func (r RankResult) Singular() []float64 {
	out := make([]float64, len(r.SingularBits))
	for i, b := range r.SingularBits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// Config describes one multi-process run.
type Config struct {
	// Ranks is the number of worker processes to spawn.
	Ranks int
	// WorkerBin is the parsvd-worker binary. Empty means resolve: the
	// PARSVD_WORKER env var, a sibling of the running executable, PATH,
	// and finally `go build` into a temp dir (module checkouts only).
	WorkerBin string
	// Workload is the deterministic streaming workload every rank runs.
	Workload scaling.StreamWorkload
	// Timeout bounds the whole run, rendezvous included. Default 5m.
	Timeout time.Duration
	// IdleTimeout is forwarded to the workers' transports (failure
	// detection window). Zero keeps the worker default.
	IdleTimeout time.Duration
	// Stderr receives the workers' stderr streams; default os.Stderr.
	Stderr io.Writer
}

// Result is the collected outcome of a run.
type Result struct {
	// PerRank holds each rank's report, indexed by rank.
	PerRank []RankResult
	// Elapsed is the launcher-observed wall-clock of the whole job,
	// process spawn to last exit.
	Elapsed time.Duration
}

// Root returns rank 0's report (the one carrying the modes hash).
func (r *Result) Root() RankResult { return r.PerRank[0] }

// RankStats returns the per-rank traffic reports in rank order.
func (r *Result) RankStats() []scaling.RankStats {
	out := make([]scaling.RankStats, len(r.PerRank))
	for i, p := range r.PerRank {
		out[i] = p.Stats
	}
	return out
}

// MPIStats aggregates the per-process reports into a world-level
// mpi.Stats, exactly as the in-process transport would have counted them
// (summed sends, per-rank receive bytes).
func (r *Result) MPIStats() mpi.Stats {
	return scaling.AggregateStats(len(r.PerRank), r.RankStats())
}

// Run spawns cfg.Ranks worker processes, waits for all of them, and
// returns their reports. Any worker failure (nonzero exit, malformed
// protocol, timeout) kills the remaining workers and returns an error.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is canceled, every
// spawned worker process is killed immediately (their scan loops observe
// EOF and the wait loop unwinds), and ctx.Err() is returned. The
// cfg.Timeout deadline still applies independently.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("launch: ranks = %d < 1", cfg.Ranks)
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	bin := cfg.WorkerBin
	if bin == "" {
		var err error
		if bin, err = ResolveWorker(); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	deadline := time.Now().Add(cfg.Timeout)
	var (
		mu    sync.Mutex
		procs = make([]*worker, cfg.Ranks)
	)
	killAll := func() {
		mu.Lock()
		defer mu.Unlock()
		for _, w := range procs {
			if w != nil {
				w.kill()
			}
		}
	}
	defer killAll()
	// The watchdog turns a context cancellation into an immediate fleet
	// kill; the per-worker awaits below then return promptly.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			killAll()
		case <-watchdogDone:
		}
	}()
	setProc := func(r int, w *worker) {
		mu.Lock()
		procs[r] = w
		// A kill that raced the spawn must still reap the new process.
		if ctx.Err() != nil {
			w.kill()
		}
		mu.Unlock()
	}

	// Rank 0 binds an ephemeral rendezvous port and publishes it on
	// stdout; only then can the other ranks be pointed at it.
	w0, err := startWorker(bin, cfg, 0, "")
	if err != nil {
		return nil, err
	}
	setProc(0, w0)
	// A single-rank world has no peers to rendezvous with; the worker
	// skips the address line entirely.
	var rendezvous string
	if cfg.Ranks > 1 {
		rendezvous, err = w0.awaitRendezvous(deadline)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("launch: rank 0 never published a rendezvous address: %w", err)
		}
	}
	for r := 1; r < cfg.Ranks; r++ {
		w, err := startWorker(bin, cfg, r, rendezvous)
		if err != nil {
			return nil, fmt.Errorf("launch: spawning rank %d: %w", r, err)
		}
		setProc(r, w)
	}

	res := &Result{PerRank: make([]RankResult, cfg.Ranks)}
	var firstErr error
	for r, w := range procs {
		rr, err := w.await(deadline)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: rank %d: %w", r, err)
		}
		if err == nil {
			if rr.Rank != r {
				return nil, fmt.Errorf("launch: process for rank %d reported rank %d", r, rr.Rank)
			}
			res.PerRank[r] = rr
		}
	}
	if firstErr != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, firstErr
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// worker supervises one spawned rank.
type worker struct {
	cmd        *exec.Cmd
	rendezvous chan string
	result     chan RankResult
	scanErr    chan error
	once       sync.Once
}

func startWorker(bin string, cfg Config, rank int, rendezvous string) (*worker, error) {
	args := []string{
		"-rank", strconv.Itoa(rank),
		"-np", strconv.Itoa(cfg.Ranks),
		"-rows-per-rank", strconv.Itoa(cfg.Workload.RowsPerRank),
		"-snapshots", strconv.Itoa(cfg.Workload.Snapshots),
		"-init-batch", strconv.Itoa(cfg.Workload.InitBatch),
		"-batch", strconv.Itoa(cfg.Workload.Batch),
		"-k", strconv.Itoa(cfg.Workload.K),
		"-r1", strconv.Itoa(cfg.Workload.R1),
		"-ff", strconv.FormatFloat(cfg.Workload.FF, 'g', -1, 64),
		"-seed", strconv.FormatInt(cfg.Workload.Seed, 10),
	}
	if cfg.Workload.LowRank {
		args = append(args, "-lowrank")
	}
	if cfg.IdleTimeout > 0 {
		args = append(args, "-idle-timeout", cfg.IdleTimeout.String())
	}
	if rank != 0 {
		args = append(args, "-rendezvous", rendezvous)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = cfg.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{
		cmd:        cmd,
		rendezvous: make(chan string, 1),
		result:     make(chan RankResult, 1),
		scanErr:    make(chan error, 1),
	}
	go w.scan(stdout)
	return w, nil
}

// scan consumes the worker's stdout protocol lines until EOF, then reaps
// the process.
func (w *worker) scan(stdout io.Reader) {
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, RendezvousPrefix+" "):
			select {
			case w.rendezvous <- strings.TrimSpace(strings.TrimPrefix(line, RendezvousPrefix)):
			default:
			}
		case strings.HasPrefix(line, ResultPrefix+" "):
			var rr RankResult
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, ResultPrefix)), &rr); err != nil {
				w.scanErr <- fmt.Errorf("malformed result line: %w", err)
				w.cmd.Wait()
				return
			}
			select {
			case w.result <- rr:
			default:
			}
		}
	}
	err := w.cmd.Wait()
	if err == nil {
		err = io.EOF // distinguishes "exited cleanly but sent no result"
	}
	w.scanErr <- err
}

func (w *worker) awaitRendezvous(deadline time.Time) (string, error) {
	select {
	case addr := <-w.rendezvous:
		return addr, nil
	case err := <-w.scanErr:
		return "", fmt.Errorf("worker exited during rendezvous: %v", err)
	case <-time.After(time.Until(deadline)):
		w.kill()
		return "", fmt.Errorf("timeout")
	}
}

func (w *worker) await(deadline time.Time) (RankResult, error) {
	select {
	case rr := <-w.result:
		// The result line is printed last; reap the process (bounded — a
		// worker that lingers after reporting gets killed).
		select {
		case <-w.scanErr:
		case <-time.After(time.Until(deadline)):
			w.kill()
			<-w.scanErr
		}
		return rr, nil
	case err := <-w.scanErr:
		// The process may have exited right after printing its result, in
		// which case both channels were ready and select picked this one.
		select {
		case rr := <-w.result:
			return rr, nil
		default:
		}
		if err == io.EOF {
			err = fmt.Errorf("worker exited without reporting a result")
		}
		return RankResult{}, err
	case <-time.After(time.Until(deadline)):
		w.kill()
		return RankResult{}, fmt.Errorf("timeout waiting for worker")
	}
}

func (w *worker) kill() {
	w.once.Do(func() {
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	})
}

// buildOnce caches the go-build fallback so a test suite spawning many
// worlds compiles the worker a single time per process.
var buildOnce struct {
	sync.Mutex
	path string
	err  error
}

// ResolveWorker locates the parsvd-worker binary: the PARSVD_WORKER env
// var, a sibling of the current executable, PATH, and finally — inside a
// module checkout with a Go toolchain — a cached `go build` into a temp
// directory.
func ResolveWorker() (string, error) {
	if p := os.Getenv(WorkerEnv); p != "" {
		if _, err := os.Stat(p); err != nil {
			return "", fmt.Errorf("launch: $%s = %q: %w", WorkerEnv, p, err)
		}
		return p, nil
	}
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "parsvd-worker")
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("parsvd-worker"); err == nil {
		return p, nil
	}
	return buildWorker()
}

func buildWorker() (string, error) {
	buildOnce.Lock()
	defer buildOnce.Unlock()
	if buildOnce.path != "" || buildOnce.err != nil {
		return buildOnce.path, buildOnce.err
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		buildOnce.err = fmt.Errorf("launch: parsvd-worker not found and no Go toolchain to build it: %w", err)
		return "", buildOnce.err
	}
	modRoot, err := moduleRoot(goBin)
	if err != nil {
		buildOnce.err = err
		return "", buildOnce.err
	}
	dir, err := os.MkdirTemp("", "parsvd-worker-*")
	if err != nil {
		buildOnce.err = err
		return "", buildOnce.err
	}
	out := filepath.Join(dir, "parsvd-worker")
	cmd := exec.Command(goBin, "build", "-o", out, "./cmd/parsvd-worker")
	cmd.Dir = modRoot
	if msg, err := cmd.CombinedOutput(); err != nil {
		buildOnce.err = fmt.Errorf("launch: building parsvd-worker: %v\n%s", err, msg)
		return "", buildOnce.err
	}
	buildOnce.path = out
	return out, nil
}

func moduleRoot(goBin string) (string, error) {
	cmd := exec.Command(goBin, "env", "GOMOD")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("launch: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("launch: not inside a module checkout; install parsvd-worker or set $%s", WorkerEnv)
	}
	return filepath.Dir(gomod), nil
}
