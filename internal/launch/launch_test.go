package launch

import (
	"context"
	"errors"
	"math"
	"os/exec"
	"testing"
	"time"

	"goparsvd/internal/mpi"
	"goparsvd/internal/postproc"
	"goparsvd/internal/scaling"
)

func smokeWorkload() scaling.StreamWorkload {
	return scaling.StreamWorkload{
		RowsPerRank: 64,
		Snapshots:   48,
		InitBatch:   12,
		Batch:       12,
		K:           6,
		R1:          16,
		FF:          0.95,
		Seed:        7,
	}
}

// TestTCPFourRankSmoke is the multi-process gate: it launches four real
// parsvd-worker OS processes talking over loopback TCP, and checks the
// distributed streaming SVD they produce (a) bit-for-bit against the
// in-process channel-transport run of the identical workload, and (b)
// within tolerance against the serial streaming reference. It stays fast
// (sub-second workload) and deliberately runs in -short mode — it IS the
// short-mode smoke test CI relies on.
func TestTCPFourRankSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("no Go toolchain to build parsvd-worker: %v", err)
	}
	const p = 4
	w := smokeWorkload()

	res, err := Run(Config{
		Ranks:    p,
		Workload: w,
		Timeout:  3 * time.Minute,
	})
	if err != nil {
		t.Fatalf("multi-process run: %v", err)
	}

	// Every rank must agree on the singular values, exactly: they all
	// received the same closing broadcast.
	for r := 1; r < p; r++ {
		if !equalUint64(res.PerRank[r].SingularBits, res.PerRank[0].SingularBits) {
			t.Errorf("rank %d singular values differ from rank 0", r)
		}
	}

	// (a) The TCP run must reproduce the in-process run bit for bit —
	// the same comparator the parsvd-scaling launcher applies per point.
	if err := VerifyAgainstInProcess(p, w, res); err != nil {
		t.Errorf("TCP vs in-process: %v", err)
	}
	// Re-derive the in-process modes for the serial comparison below.
	var ref scaling.StreamResult
	if _, err := mpi.Run(p, func(c *mpi.Comm) {
		r := scaling.RunStream(c, w)
		if c.Rank() == 0 {
			ref = r
		}
	}); err != nil {
		t.Fatal(err)
	}

	// (b) The distributed result must match the serial streaming engine
	// within tolerance (different arithmetic path, same decomposition).
	ser := scaling.RunStreamSerial(p, w)
	tcpSingular := res.Root().Singular()
	if len(tcpSingular) != len(ser.Singular) {
		t.Fatalf("mode count: tcp %d, serial %d", len(tcpSingular), len(ser.Singular))
	}
	for i := range tcpSingular {
		if d := math.Abs(tcpSingular[i] - ser.Singular[i]); d > 1e-6*math.Max(1, ser.Singular[i]) {
			t.Errorf("sigma[%d]: tcp %g vs serial %g", i, tcpSingular[i], ser.Singular[i])
		}
	}
	// The in-process modes hash equals the TCP one (checked above), so
	// comparing the in-process modes against serial covers the TCP modes.
	for _, e := range postproc.CompareModes(ser.Modes, ref.Modes)[:2] {
		if e.MaxAbs > 1e-4 {
			t.Errorf("mode %d: max|serial-distributed| = %.3e, want < 1e-4", e.Mode+1, e.MaxAbs)
		}
	}

	// Traffic counters made it across the process boundary: the aggregate
	// has traffic, and rank 0 (the gather/broadcast root) received bytes.
	agg := res.MPIStats()
	if agg.Messages == 0 || agg.Bytes == 0 || agg.RecvBytes[0] == 0 {
		t.Errorf("aggregated traffic counters empty: %+v", agg)
	}
	t.Logf("4-rank TCP run: %.0f ms wall, %d msgs, %d bytes sent, root incast %d bytes",
		res.Elapsed.Seconds()*1000, agg.Messages, agg.Bytes, agg.RecvBytes[0])
}

// TestRunContextCancellationKillsFleet: a canceled context must reap the
// worker processes promptly instead of letting them run until the
// launcher timeout.
func TestRunContextCancellationKillsFleet(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go toolchain to build parsvd-worker")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, Config{
		Ranks:    2,
		Workload: smokeWorkload(),
		Timeout:  time.Minute,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v; fleet was not reaped promptly", elapsed)
	}
}

// TestWorkerFailurePropagates kills the job by configuring an impossible
// workload on one hand-spawned bogus rank: the launcher must report the
// failure instead of hanging.
func TestWorkerFailurePropagates(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("no Go toolchain to build parsvd-worker: %v", err)
	}
	// Ranks=2 but the rendezvous worker is told np=2 while only one
	// process ever starts: rank 0 must give up after its dial timeout and
	// the launcher must surface that as an error.
	bin, err := ResolveWorker()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-rank", "0", "-np", "2", "-dial-timeout", "2s")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("lone rank 0 of a 2-rank world exited cleanly:\n%s", out)
	}
}

func equalUint64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
