package launch

// The session protocol: the framed stdin/stdout command stream between a
// launcher and a persistent parsvd-worker fleet (worker `-session` mode).
//
// Where the original one-shot protocol was line-oriented ("replay a
// workload, print one result line"), a session keeps every worker process
// alive and feeds it real data over the wire. Frames share the shape of
// the tcptransport wire format:
//
//	frame := length:u32le  verb:u8  body
//
// with length counting the verb byte plus the body. Launcher→worker verbs
// (on worker stdin):
//
//	INIT      body = JSON EngineSpec (engine options for every rank)
//	PUSH      body = data body (this rank's row block of one snapshot batch,
//	          encoded with tcptransport.AppendMessageBody — the same
//	          bit-exact float64 framing the rank mesh itself uses)
//	PUSH-SKETCH body = factor-pair body (EncodeFactorPair): this rank's row
//	          block of the orthonormal sketch basis Q plus the full L×B
//	          projection S = QᵀA; the worker reconstructs its row block of
//	          the batch as Q_r·S and feeds the same update path as PUSH,
//	          so only L·(M_r+B) floats cross the wire per rank instead of
//	          the raw M_r×B block
//	SPECTRUM  empty body; every rank replies FLOATS(singular values)
//	MODES-SHA empty body; collective mode gather, rank 0's OK reply carries
//	          the SHA-256 fingerprint of the assembled M×K matrix
//	STATS     empty body; every rank replies OK with fresh counters
//	SAVE      empty body; collective gather, rank 0 replies BLOB holding a
//	          facade-compatible (serial) checkpoint of the global state
//	SHUTDOWN  empty body; barrier, transport teardown, OK, clean exit
//
// Worker→launcher verbs (on worker stdout):
//
//	RENDEZVOUS body = rank 0's mesh rendezvous address (printed before the
//	           TCP fabric is established, so the launcher can spawn the
//	           other ranks); session-mode replacement of the
//	           "PARSVD-RENDEZVOUS <addr>" stdout line
//	OK         body = JSON SessionStatus (rank, traffic counters, ingest
//	           counters, optional modes hash)
//	FLOATS     body = data body carrying a vector
//	BLOB       body = opaque bytes (checkpoint payload)
//	ERR        body = UTF-8 error text; the worker aborts its transport and
//	           exits nonzero right after writing it, so an ERR always
//	           poisons the whole session
//
// The exchange is strict lockstep: the launcher writes one command frame
// to every rank (concurrently — collective commands must reach all ranks
// before any reply is awaited), then reads exactly one reply frame per
// rank. Anything else on a worker's stdout is a protocol violation and
// kills the fleet.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
)

// Session protocol verbs. Command verbs flow launcher→worker, reply verbs
// worker→launcher; the numeric spaces are disjoint so a desynchronized
// stream is detected instead of misread.
const (
	SessInit byte = 0x10 + iota
	SessPush
	SessSpectrum
	SessModesSHA
	SessStats
	SessSave
	SessShutdown
	// SessPushSketch was appended after SessShutdown so no pre-existing
	// verb value shifted when the compressed push landed.
	SessPushSketch
)

const (
	SessRendezvous byte = 0x40 + iota
	SessOK
	SessFloats
	SessBlob
	SessErr
)

// verbName names a session verb for error messages.
func verbName(v byte) string {
	switch v {
	case SessInit:
		return "INIT"
	case SessPush:
		return "PUSH"
	case SessSpectrum:
		return "SPECTRUM"
	case SessModesSHA:
		return "MODES-SHA"
	case SessStats:
		return "STATS"
	case SessSave:
		return "SAVE"
	case SessShutdown:
		return "SHUTDOWN"
	case SessPushSketch:
		return "PUSH-SKETCH"
	case SessRendezvous:
		return "RENDEZVOUS"
	case SessOK:
		return "OK"
	case SessFloats:
		return "FLOATS"
	case SessBlob:
		return "BLOB"
	case SessErr:
		return "ERR"
	default:
		return fmt.Sprintf("verb(0x%02x)", v)
	}
}

// maxSessionFrame bounds one session frame: 1 GiB of payload plus slack,
// matching the rank mesh's own frame bound. Larger lengths are treated as
// a corrupted stream.
const maxSessionFrame = 1<<30 + 64

// frameChunk is the read granularity for frame bodies: a frame whose
// declared length exceeds the bytes actually sent fails after at most one
// chunk of allocation, so a hostile length prefix cannot force a huge
// allocation against a truncated stream.
const frameChunk = 1 << 20

// EngineSpec is the INIT payload: everything a worker needs to build its
// core engine. It mirrors the facade's configuration (K, forget factor,
// APMOS init truncation, randomization) — the launcher derives it from
// the parsvd options, so wire-fed distributed runs honor the same knobs
// as the in-process backends.
type EngineSpec struct {
	K          int     `json:"k"`
	FF         float64 `json:"ff"`
	R1         int     `json:"r1"`
	Method     int     `json:"method,omitempty"`
	LowRank    bool    `json:"low_rank,omitempty"`
	Oversample int     `json:"oversample,omitempty"`
	PowerIters int     `json:"power_iters,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// SessionStatus is the JSON body of every OK reply: the rank's identity,
// its traffic counters as of this reply, and the engine's ingest counters
// (identical on every rank — they advance in lockstep). Piggybacking the
// counters on every acknowledgment keeps the launcher's Stats reads free
// of extra wire round trips.
type SessionStatus struct {
	Rank       int    `json:"rank"`
	Messages   int64  `json:"messages"`
	BytesSent  int64  `json:"bytes_sent"`
	BytesRecv  int64  `json:"bytes_recv"`
	Rows       int    `json:"rows"`       // this rank's row-block height
	Snapshots  int    `json:"snapshots"`  // global ingested snapshot columns
	Iterations int    `json:"iterations"` // streaming updates (Initialize excluded)
	ModesSHA   string `json:"modes_sha,omitempty"`
}

// WriteSessionFrame writes one framed message. The body may be nil.
func WriteSessionFrame(w io.Writer, verb byte, body []byte) error {
	if len(body)+1 > maxSessionFrame {
		return fmt.Errorf("launch: session frame body of %d bytes exceeds the %d-byte bound", len(body), maxSessionFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = verb
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadSessionFrame reads one framed message. The declared length is
// validated against maxSessionFrame before any allocation, and the body is
// read in bounded chunks, so a truncated or hostile stream errors out
// after at most frameChunk bytes of allocation instead of panicking or
// committing gigabytes up front.
func ReadSessionFrame(r io.Reader) (verb byte, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxSessionFrame {
		return 0, nil, fmt.Errorf("launch: invalid session frame length %d", n)
	}
	var vb [1]byte
	if _, err = io.ReadFull(r, vb[:]); err != nil {
		return 0, nil, fmt.Errorf("launch: short session frame: %w", err)
	}
	remaining := int(n) - 1
	body = make([]byte, 0, minInt(remaining, frameChunk))
	for remaining > 0 {
		chunk := minInt(remaining, frameChunk)
		off := len(body)
		body = append(body, make([]byte, chunk)...)
		if _, err = io.ReadFull(r, body[off:]); err != nil {
			return 0, nil, fmt.Errorf("launch: short session frame: %w", err)
		}
		remaining -= chunk
	}
	return vb[0], body, nil
}

// EncodeBlock renders a matrix block as a data body (the PUSH payload),
// bit-for-bit via the tcptransport float64 framing.
func EncodeBlock(m *mat.Dense) []byte {
	r, c := m.Dims()
	return tcptransport.AppendMessageBody(nil, mpi.Message{Rows: r, Cols: c, Data: m.RawData()})
}

// DecodeBlock parses a PUSH payload back into a matrix, enforcing the
// invariants a snapshot block must satisfy before it may enter a
// collective update: positive dims, a payload length matching them, and
// finite values only. NaN or Inf snapshot data is rejected here — at the
// protocol boundary — because a non-finite batch would otherwise poison
// the decomposition silently (or desynchronize ranks that validate
// differently).
func DecodeBlock(body []byte) (*mat.Dense, error) {
	m, err := tcptransport.DecodeMessageBody(body)
	if err != nil {
		return nil, err
	}
	if m.Rows < 1 || m.Cols < 1 {
		return nil, fmt.Errorf("launch: snapshot block with non-positive dims %dx%d", m.Rows, m.Cols)
	}
	// Overflow-safe dims check: rows·cols wraps int64 for hostile dims
	// (e.g. rows = 2^61+1, cols = 8 multiplies to 8), so divide the
	// payload length instead of multiplying the declared dims.
	if len(m.Data)%m.Cols != 0 || m.Rows != len(m.Data)/m.Cols {
		return nil, fmt.Errorf("launch: snapshot block carries %d values for a %dx%d matrix",
			len(m.Data), m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("launch: snapshot block contains a non-finite value (%g)", v)
		}
	}
	return mat.NewFromData(m.Rows, m.Cols, m.Data), nil
}

// EncodeFactorPair renders a sketched factor pair (Q row block + full S)
// as the PUSH-SKETCH payload: a u32le length prefix over Q's data body,
// then Q's body, then S's body — both in the same bit-exact float64
// framing as PUSH, so a replayed pair reconstructs identically.
func EncodeFactorPair(q, s *mat.Dense) []byte {
	qb := EncodeBlock(q)
	sb := EncodeBlock(s)
	out := make([]byte, 4, 4+len(qb)+len(sb))
	binary.LittleEndian.PutUint32(out, uint32(len(qb)))
	out = append(out, qb...)
	return append(out, sb...)
}

// DecodeFactorPair parses a PUSH-SKETCH payload, enforcing the pair
// invariants at the protocol boundary: both factors pass DecodeBlock's
// dimension and finiteness checks, and Q's column count matches S's row
// count so the reconstruction Q·S is well-formed.
func DecodeFactorPair(body []byte) (q, s *mat.Dense, err error) {
	if len(body) < 4 {
		return nil, nil, fmt.Errorf("launch: factor-pair payload of %d bytes is too short", len(body))
	}
	qlen := binary.LittleEndian.Uint32(body)
	if int(qlen) > len(body)-4 {
		return nil, nil, fmt.Errorf("launch: factor-pair payload declares a %d-byte Q body but carries %d bytes", qlen, len(body)-4)
	}
	if q, err = DecodeBlock(body[4 : 4+qlen]); err != nil {
		return nil, nil, fmt.Errorf("launch: factor-pair Q: %w", err)
	}
	if s, err = DecodeBlock(body[4+qlen:]); err != nil {
		return nil, nil, fmt.Errorf("launch: factor-pair S: %w", err)
	}
	if q.Cols() != s.Rows() {
		return nil, nil, fmt.Errorf("launch: factor pair has mismatched inner dimension: Q is %dx%d, S is %dx%d",
			q.Rows(), q.Cols(), s.Rows(), s.Cols())
	}
	return q, s, nil
}

// EncodeFloats renders a vector as a data body (the FLOATS payload).
func EncodeFloats(v []float64) []byte {
	return tcptransport.AppendMessageBody(nil, mpi.Message{Rows: -1, Data: v})
}

// DecodeFloats parses a FLOATS payload. Unlike DecodeBlock it allows
// non-finite values: a spectrum readback must report whatever the engine
// holds, faithfully.
func DecodeFloats(body []byte) ([]float64, error) {
	m, err := tcptransport.DecodeMessageBody(body)
	if err != nil {
		return nil, err
	}
	if m.Rows != -1 {
		return nil, fmt.Errorf("launch: FLOATS payload carries a %dx%d matrix, want a vector", m.Rows, m.Cols)
	}
	return m.Data, nil
}

// EncodeStatus / DecodeStatus render the OK-reply JSON.
func EncodeStatus(st SessionStatus) ([]byte, error) { return json.Marshal(st) }

func DecodeStatus(body []byte) (SessionStatus, error) {
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return SessionStatus{}, fmt.Errorf("launch: malformed session status: %w", err)
	}
	return st, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
