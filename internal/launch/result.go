package launch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"goparsvd/internal/mat"
	"goparsvd/internal/scaling"
)

// HashModes fingerprints a mode matrix for exact cross-process comparison:
// SHA-256 over the dims plus the row-major float64 payload rendered as
// IEEE-754 little-endian bits. Both the worker (reporting) and the
// launcher (verifying against the in-process reference) use this, so a
// single flipped mantissa bit anywhere in an M×K mode matrix fails the
// match.
func HashModes(m *mat.Dense) string {
	h := sha256.New()
	var buf [8]byte
	r, c := m.Dims()
	binary.LittleEndian.PutUint64(buf[:], uint64(r))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(c))
	h.Write(buf[:])
	for _, v := range m.RawData() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SingularBits converts singular values to their exact bit patterns for
// the result line.
func SingularBits(s []float64) []uint64 {
	out := make([]uint64, len(s))
	for i, v := range s {
		out[i] = math.Float64bits(v)
	}
	return out
}

// FormatResult renders one rank's PARSVD-RESULT stdout line. modes may be
// nil (non-root ranks).
func FormatResult(rank int, singular []float64, modes *mat.Dense, stats scaling.RankStats) (string, error) {
	rr := RankResult{
		Rank:         rank,
		SingularBits: SingularBits(singular),
		Stats:        stats,
	}
	if modes != nil {
		rr.ModesSHA256 = HashModes(modes)
	}
	b, err := json.Marshal(rr)
	if err != nil {
		return "", err
	}
	return ResultPrefix + " " + string(b), nil
}
