package launch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
)

// SessionConfig describes one persistent worker fleet.
type SessionConfig struct {
	// Ranks is the number of worker processes.
	Ranks int
	// WorkerBin is the parsvd-worker binary; empty resolves like Run
	// (PARSVD_WORKER, sibling, PATH, go-build fallback).
	WorkerBin string
	// Spec is the engine configuration sent to every rank by INIT.
	Spec EngineSpec
	// OpTimeout bounds each session operation round trip — INIT
	// (rendezvous and fabric establishment included), one PUSH scatter,
	// one gather, the SHUTDOWN drain. Default 2m.
	OpTimeout time.Duration
	// Deadline, when nonzero, additionally caps startup and every
	// operation at an absolute time (see SetDeadline).
	Deadline time.Time
	// IdleTimeout is forwarded to the workers' transports (failure
	// detection window). Zero keeps the worker default.
	IdleTimeout time.Duration
	// Stderr receives the workers' stderr streams; default os.Stderr.
	Stderr io.Writer
}

// SessionStats is the launcher's cheap view of a session world: traffic
// totals summed across ranks plus the engine ingest counters, refreshed
// from the status piggybacked on every acknowledged operation — reading
// them costs no wire round trip.
type SessionStats struct {
	Ranks      int
	Messages   int64
	Bytes      int64
	Rows       int // global snapshot rows (summed per-rank blocks)
	Snapshots  int
	Iterations int
}

// Session is a persistent, sessionful worker world: cfg.Ranks parsvd-worker
// processes holding one live core engine each, fed real snapshot data over
// their stdin and queried over their stdout (see proto.go for the frame
// protocol). It is the process-fabric twin of the facade's in-process
// parallel engine: Push scatters row blocks, Spectrum/ModesSHA/Stats read
// the decomposition, Save gathers a facade-compatible checkpoint, Close
// shuts the fleet down cleanly.
//
// A Session is not safe for concurrent use; callers serialize (the parsvd
// facade holds its own mutex across every operation). Any failure — a
// worker death, a protocol violation, an engine panic, an operation
// timeout — permanently fails the session: the remaining workers are
// killed immediately and every later operation reports the original
// error.
type Session struct {
	cfg     SessionConfig
	workers []*sessWorker

	rows  int // global snapshot rows, 0 until the first Push
	parts []grid.Range

	// hardDeadline, when nonzero, caps every operation's deadline (a Fit
	// context deadline mapped down by the facade). Zero means OpTimeout
	// alone governs.
	hardDeadline time.Time

	stats  SessionStats
	failed error
	closed bool
}

// sessFrame is one parsed reply (or terminal read error) from a worker.
type sessFrame struct {
	verb byte
	body []byte
	err  error
}

// sessWorker supervises one persistent rank process.
type sessWorker struct {
	rank   int
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	frames chan sessFrame
	done   chan struct{} // closed once the process is reaped
	once   sync.Once
}

// StartSession spawns the fleet, wires the rendezvous, and sends INIT to
// every rank. On any failure the partial fleet is killed and reaped before
// the error returns.
func StartSession(cfg SessionConfig) (*Session, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("launch: session ranks = %d < 1", cfg.Ranks)
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 2 * time.Minute
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	bin := cfg.WorkerBin
	if bin == "" {
		var err error
		if bin, err = ResolveWorker(); err != nil {
			return nil, err
		}
	}
	s := &Session{cfg: cfg, workers: make([]*sessWorker, cfg.Ranks), hardDeadline: cfg.Deadline}
	deadline := time.Now().Add(cfg.OpTimeout)
	if !cfg.Deadline.IsZero() && cfg.Deadline.Before(deadline) {
		if !cfg.Deadline.After(time.Now()) {
			return nil, fmt.Errorf("launch: session deadline exceeded before startup")
		}
		deadline = cfg.Deadline
	}

	w0, err := s.startSessionWorker(bin, 0, "")
	if err != nil {
		return nil, err
	}
	s.workers[0] = w0
	var rendezvous string
	if cfg.Ranks > 1 {
		fr := w0.await(deadline)
		if fr.err != nil {
			s.reap()
			return nil, fmt.Errorf("launch: rank 0 never published a rendezvous address: %w", fr.err)
		}
		if fr.verb != SessRendezvous {
			s.reap()
			return nil, fmt.Errorf("launch: rank 0 sent %s before the rendezvous address", verbName(fr.verb))
		}
		rendezvous = string(fr.body)
	}
	for r := 1; r < cfg.Ranks; r++ {
		w, err := s.startSessionWorker(bin, r, rendezvous)
		if err != nil {
			s.reap()
			return nil, fmt.Errorf("launch: spawning session rank %d: %w", r, err)
		}
		s.workers[r] = w
	}

	spec, err := json.Marshal(cfg.Spec)
	if err != nil {
		s.reap()
		return nil, fmt.Errorf("launch: encoding engine spec: %w", err)
	}
	if _, err := s.op(SessInit, func(int) []byte { return spec }); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Session) startSessionWorker(bin string, rank int, rendezvous string) (*sessWorker, error) {
	args := []string{
		"-session",
		"-rank", strconv.Itoa(rank),
		"-np", strconv.Itoa(s.cfg.Ranks),
	}
	if s.cfg.IdleTimeout > 0 {
		args = append(args, "-idle-timeout", s.cfg.IdleTimeout.String())
	}
	if rank != 0 {
		args = append(args, "-rendezvous", rendezvous)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = s.cfg.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &sessWorker{
		rank:   rank,
		cmd:    cmd,
		stdin:  stdin,
		frames: make(chan sessFrame, 4),
		done:   make(chan struct{}),
	}
	go w.readLoop(stdout)
	return w, nil
}

// readLoop parses the worker's stdout frames until the stream ends, then
// reaps the process. Lockstep means at most one reply is ever in flight,
// so the buffered channel never blocks a healthy worker; a misbehaving
// one is throttled here and killed by the launcher's next deadline.
func (w *sessWorker) readLoop(stdout io.Reader) {
	defer close(w.done)
	br := bufio.NewReaderSize(stdout, 1<<16)
	for {
		verb, body, err := ReadSessionFrame(br)
		if err != nil {
			waitErr := w.cmd.Wait()
			if err == io.EOF && waitErr != nil {
				err = fmt.Errorf("worker exited: %w", waitErr)
			} else if err == io.EOF {
				err = fmt.Errorf("worker closed its session stream")
			}
			w.frames <- sessFrame{err: err}
			return
		}
		w.frames <- sessFrame{verb: verb, body: body}
	}
}

// await returns the worker's next frame, or a timeout error at deadline.
func (w *sessWorker) await(deadline time.Time) sessFrame {
	select {
	case fr := <-w.frames:
		return fr
	case <-time.After(time.Until(deadline)):
		return sessFrame{err: fmt.Errorf("timeout waiting for worker reply")}
	}
}

func (w *sessWorker) kill() {
	w.once.Do(func() {
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	})
}

// op runs one lockstep exchange: the command frame is written to every
// rank concurrently (collective commands must reach all ranks before any
// reply is awaited, or the fleet would deadlock inside its collectives),
// then exactly one reply per rank is collected. body builds the per-rank
// payload; nil payloads are allowed. Any failure permanently fails the
// session and kills the fleet.
func (s *Session) op(verb byte, body func(rank int) []byte) ([]sessFrame, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	if s.closed {
		return nil, fmt.Errorf("launch: session is closed")
	}
	deadline := time.Now().Add(s.cfg.OpTimeout)
	if !s.hardDeadline.IsZero() && s.hardDeadline.Before(deadline) {
		// Already past the hard deadline: refuse before any frame is
		// written — no rank has seen the command, so the fleet stays
		// consistent and the session is NOT poisoned (the caller's
		// context expired, nothing failed).
		if !s.hardDeadline.After(time.Now()) {
			return nil, fmt.Errorf("launch: %s: deadline exceeded before the operation started", verbName(verb))
		}
		deadline = s.hardDeadline
	}

	writeErrs := make([]error, len(s.workers))
	var wg sync.WaitGroup
	for r, w := range s.workers {
		wg.Add(1)
		go func(r int, w *sessWorker) {
			defer wg.Done()
			var b []byte
			if body != nil {
				b = body(r)
			}
			writeErrs[r] = WriteSessionFrame(w.stdin, verb, b)
		}(r, w)
	}
	wg.Wait()
	for r, err := range writeErrs {
		if err != nil {
			return nil, s.fail(fmt.Errorf("launch: %s to rank %d: %w", verbName(verb), r, err))
		}
	}

	frames := make([]sessFrame, len(s.workers))
	var firstErr error
	for r, w := range s.workers {
		fr := w.await(deadline)
		switch {
		case fr.err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("launch: rank %d during %s: %w", r, verbName(verb), fr.err)
			}
		case fr.verb == SessErr:
			// A worker-reported failure names the root cause (the rank that
			// panicked) — prefer it over the EOFs of the peers it took down.
			firstErr = fmt.Errorf("launch: rank %d failed during %s: %s", r, verbName(verb), fr.body)
		}
		frames[r] = fr
	}
	if firstErr != nil {
		return nil, s.fail(firstErr)
	}
	s.absorbStatuses(verb, frames)
	return frames, nil
}

// absorbStatuses folds the statuses piggybacked on OK replies into the
// cached SessionStats, so Stats() stays wire-free.
func (s *Session) absorbStatuses(verb byte, frames []sessFrame) {
	st := SessionStats{Ranks: len(s.workers)}
	okSeen := false
	for _, fr := range frames {
		if fr.verb != SessOK {
			continue
		}
		status, err := DecodeStatus(fr.body)
		if err != nil {
			continue // stale counters beat failing a healthy data path
		}
		okSeen = true
		st.Messages += status.Messages
		st.Bytes += status.BytesSent
		st.Rows += status.Rows
		if status.Rank == 0 || st.Snapshots == 0 {
			st.Snapshots = status.Snapshots
			st.Iterations = status.Iterations
		}
	}
	if okSeen {
		// SAVE leaves rank 0 replying BLOB: keep the freshest global
		// counters we have rather than dropping to a partial sum.
		if st.Snapshots == 0 {
			st.Snapshots, st.Iterations = s.stats.Snapshots, s.stats.Iterations
		}
		if st.Rows < s.stats.Rows {
			st.Rows = s.stats.Rows
		}
		if st.Messages < s.stats.Messages {
			st.Messages = s.stats.Messages
		}
		if st.Bytes < s.stats.Bytes {
			st.Bytes = s.stats.Bytes
		}
		s.stats = st
	}
}

// fail marks the session permanently failed and kills the fleet. The
// original error sticks: later operations keep reporting it.
func (s *Session) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	s.reap()
	return s.failed
}

// reap kills every worker and waits for the processes to be collected,
// draining any frames still in flight so the reader goroutines can exit.
// After reap returns, the session holds no processes and no goroutines.
func (s *Session) reap() {
	for _, w := range s.workers {
		if w != nil {
			w.kill()
		}
	}
	for _, w := range s.workers {
		if w != nil {
			w.drain()
		}
	}
}

// drain consumes frames until the worker's reader goroutine has exited
// and the process is reaped, then empties the leftovers.
func (w *sessWorker) drain() {
	for {
		select {
		case <-w.frames:
		case <-w.done:
			for {
				select {
				case <-w.frames:
				default:
					return
				}
			}
		}
	}
}

// Push scatters one global snapshot batch across the fleet: rows are
// partitioned contiguously (the same grid.Partition split the in-process
// parallel backend uses, so the two backends are bit-compatible) and each
// rank receives exactly its block. The first Push pins the global row
// count and seeds the decomposition; later pushes stream.
//
// Validation happens here, before any frame is written: a batch that
// would be rejected (dimension mismatch, non-finite values) is reported
// as a plain error and does NOT fail the session — no rank has seen it,
// so the fleet stays consistent and usable.
func (s *Session) Push(b *mat.Dense) error {
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return fmt.Errorf("launch: session is closed")
	}
	if b == nil || b.IsEmpty() {
		return fmt.Errorf("launch: empty snapshot batch")
	}
	if s.rows == 0 {
		if b.Rows() < s.cfg.Ranks {
			return fmt.Errorf("launch: %d snapshot rows cannot be split across %d ranks", b.Rows(), s.cfg.Ranks)
		}
	} else if b.Rows() != s.rows {
		return fmt.Errorf("launch: batch has %d rows, want %d", b.Rows(), s.rows)
	}
	for _, v := range b.RawData() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("launch: snapshot batch contains a non-finite value (%g)", v)
		}
	}
	parts := s.parts
	if s.rows == 0 {
		parts = grid.Partition(b.Rows(), s.cfg.Ranks)
	}
	if _, err := s.op(SessPush, func(r int) []byte {
		return EncodeBlock(b.SliceRows(parts[r].Start, parts[r].End))
	}); err != nil {
		return err
	}
	if s.rows == 0 {
		s.rows, s.parts = b.Rows(), parts
	}
	return nil
}

// PushSketch scatters one compressed snapshot batch: each rank receives
// its contiguous row block of the orthonormal sketch basis q (the same
// grid.Partition split Push uses) plus the full L×B projection sk, and
// reconstructs its row block of the batch as Q_r·S before entering the
// same collective update PUSH drives. Only L·(M_r+B) floats cross the
// wire per rank instead of the raw M_r×B block. Validation happens here,
// before any frame is written, so a bad pair does not fail the session.
func (s *Session) PushSketch(q, sk *mat.Dense) error {
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return fmt.Errorf("launch: session is closed")
	}
	if q == nil || q.IsEmpty() || sk == nil || sk.IsEmpty() {
		return fmt.Errorf("launch: empty sketch factor pair")
	}
	if q.Cols() != sk.Rows() {
		return fmt.Errorf("launch: factor pair has mismatched inner dimension: Q is %dx%d, S is %dx%d",
			q.Rows(), q.Cols(), sk.Rows(), sk.Cols())
	}
	if s.rows == 0 {
		if q.Rows() < s.cfg.Ranks {
			return fmt.Errorf("launch: %d snapshot rows cannot be split across %d ranks", q.Rows(), s.cfg.Ranks)
		}
	} else if q.Rows() != s.rows {
		return fmt.Errorf("launch: sketch factor Q has %d rows, want %d", q.Rows(), s.rows)
	}
	for _, m := range []*mat.Dense{q, sk} {
		for _, v := range m.RawData() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("launch: sketch factor pair contains a non-finite value (%g)", v)
			}
		}
	}
	parts := s.parts
	if s.rows == 0 {
		parts = grid.Partition(q.Rows(), s.cfg.Ranks)
	}
	if _, err := s.op(SessPushSketch, func(r int) []byte {
		return EncodeFactorPair(q.SliceRows(parts[r].Start, parts[r].End), sk)
	}); err != nil {
		return err
	}
	if s.rows == 0 {
		s.rows, s.parts = q.Rows(), parts
	}
	return nil
}

// Spectrum returns the current truncated singular values. Every rank
// reports its copy (they advance in lockstep through the closing
// broadcast of each update); a disagreement is a protocol violation and
// fails the session.
func (s *Session) Spectrum() ([]float64, error) {
	frames, err := s.op(SessSpectrum, nil)
	if err != nil {
		return nil, err
	}
	var root []float64
	for r, fr := range frames {
		if fr.verb != SessFloats {
			return nil, s.fail(fmt.Errorf("launch: rank %d replied %s to SPECTRUM", r, verbName(fr.verb)))
		}
		v, err := DecodeFloats(fr.body)
		if err != nil {
			return nil, s.fail(fmt.Errorf("launch: rank %d spectrum: %w", r, err))
		}
		if r == 0 {
			root = v
			continue
		}
		if !equalFloatsBits(root, v) {
			return nil, s.fail(fmt.Errorf("launch: rank %d disagrees with rank 0 on the spectrum", r))
		}
	}
	return root, nil
}

// ModesSHA gathers the global mode matrix at rank 0 (a collective) and
// returns its SHA-256 fingerprint — dims plus row-major IEEE-754 bits,
// the same HashModes digest the one-shot protocol reports.
func (s *Session) ModesSHA() (string, error) {
	frames, err := s.op(SessModesSHA, nil)
	if err != nil {
		return "", err
	}
	status, err := DecodeStatus(frames[0].body)
	if err != nil {
		return "", s.fail(fmt.Errorf("launch: rank 0 MODES-SHA reply: %w", err))
	}
	if status.ModesSHA == "" {
		return "", s.fail(fmt.Errorf("launch: rank 0 reported no modes hash"))
	}
	return status.ModesSHA, nil
}

// Stats returns the cached world counters (refreshed by every acknowledged
// operation); it never touches the wire.
func (s *Session) Stats() SessionStats {
	st := s.stats
	st.Ranks = s.cfg.Ranks
	return st
}

// RefreshStats runs one STATS round trip and returns the updated counters.
func (s *Session) RefreshStats() (SessionStats, error) {
	if _, err := s.op(SessStats, nil); err != nil {
		return SessionStats{}, err
	}
	return s.Stats(), nil
}

// Save gathers the global state at rank 0 (a collective) and returns a
// facade-compatible checkpoint: the exact serial-format bytes parsvd.Load
// (and core.LoadSerial) read, holding the gathered M×K modes, the
// spectrum and the counters. The decomposition keeps streaming afterwards.
func (s *Session) Save() ([]byte, error) {
	frames, err := s.op(SessSave, nil)
	if err != nil {
		return nil, err
	}
	if frames[0].verb != SessBlob {
		return nil, s.fail(fmt.Errorf("launch: rank 0 replied %s to SAVE", verbName(frames[0].verb)))
	}
	return frames[0].body, nil
}

// Close shuts the fleet down: a SHUTDOWN round trip (barrier, transport
// teardown, acknowledgment) followed by a bounded wait for every process
// to exit; stragglers are killed. Closing a failed session just reaps it.
// Close is idempotent.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	if s.failed != nil {
		s.closed = true
		s.reap()
		return nil
	}
	_, err := s.op(SessShutdown, nil)
	s.closed = true
	if err != nil {
		return err // op already reaped via fail
	}
	deadline := time.Now().Add(s.cfg.OpTimeout)
	for _, w := range s.workers {
		select {
		case <-w.done:
		case <-time.After(time.Until(deadline)):
			w.kill()
			<-w.done
		}
	}
	return nil
}

// SetDeadline caps every subsequent operation's round-trip deadline at t
// (in addition to OpTimeout); the zero time removes the cap. The facade
// maps a Fit context deadline here, restoring "ctx bounds the whole
// distributed run" semantics: an operation that would start past the
// deadline is refused cleanly before any frame is written (the session
// stays healthy), while one that is mid-wire when the deadline hits
// times out, kills the fleet and fails the session — a half-acknowledged
// collective cannot be resynchronized.
func (s *Session) SetDeadline(t time.Time) { s.hardDeadline = t }

// WorkerPIDs reports the fleet's process IDs in rank order (fault
// injection and diagnostics).
func (s *Session) WorkerPIDs() []int {
	pids := make([]int, len(s.workers))
	for r, w := range s.workers {
		if w != nil && w.cmd.Process != nil {
			pids[r] = w.cmd.Process.Pid
		}
	}
	return pids
}

// Failed reports the sticky session failure, nil while healthy.
func (s *Session) Failed() error { return s.failed }

// equalFloatsBits compares two float64 slices for exact bit equality
// (NaNs included).
func equalFloatsBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
