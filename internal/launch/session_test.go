package launch

import (
	"bytes"
	"math"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"goparsvd/internal/core"
	"goparsvd/internal/mpi"
	"goparsvd/internal/scaling"
)

// sessionWorkload is a sub-second streaming job that still exercises
// every collective (APMOS init, TSQR exchange, broadcast, gather).
func sessionWorkload() scaling.StreamWorkload {
	return scaling.StreamWorkload{
		RowsPerRank: 64,
		Snapshots:   48,
		InitBatch:   12,
		Batch:       12,
		K:           6,
		R1:          16,
		FF:          0.95,
		Seed:        7,
	}
}

func startTestSession(t *testing.T, ranks int, w scaling.StreamWorkload) *Session {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("no Go toolchain to build parsvd-worker: %v", err)
	}
	s, err := StartSession(SessionConfig{
		Ranks: ranks,
		Spec:  EngineSpec{K: w.K, FF: w.FF, R1: w.R1},
	})
	if err != nil {
		t.Fatalf("starting session: %v", err)
	}
	return s
}

// pushWorkload feeds the workload's global batches into the session.
func pushWorkload(t *testing.T, s *Session, ranks int, w scaling.StreamWorkload) {
	t.Helper()
	bc := w.BurgersConfig(ranks)
	for col := 0; col < w.Snapshots; {
		width := w.Batch
		if col == 0 {
			width = w.InitBatch
		}
		hi := col + width
		if hi > w.Snapshots {
			hi = w.Snapshots
		}
		if err := s.Push(bc.Block(0, bc.Nx, col, hi)); err != nil {
			t.Fatalf("push [%d,%d): %v", col, hi, err)
		}
		col = hi
	}
}

// TestSessionWireFedMatchesInProcess is the session-protocol acceptance
// test: a persistent 2-rank fleet fed real snapshot blocks over its stdin
// must reproduce the in-process channel-transport run of the identical
// batches bit for bit — spectrum and gathered-modes hash — and its SAVE
// checkpoint must load as a serial engine holding that exact state.
func TestSessionWireFedMatchesInProcess(t *testing.T) {
	const ranks = 2
	w := sessionWorkload()
	s := startTestSession(t, ranks, w)
	defer s.Close()
	pushWorkload(t, s, ranks, w)

	singular, err := s.Spectrum()
	if err != nil {
		t.Fatalf("spectrum: %v", err)
	}
	sha, err := s.ModesSHA()
	if err != nil {
		t.Fatalf("modes sha: %v", err)
	}

	// In-process reference on the identical workload.
	var ref scaling.StreamResult
	if _, err := mpi.Run(ranks, func(c *mpi.Comm) {
		r := scaling.RunStream(c, w)
		if c.Rank() == 0 {
			ref = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(singular) != len(ref.Singular) {
		t.Fatalf("spectrum length %d, want %d", len(singular), len(ref.Singular))
	}
	for i := range singular {
		if math.Float64bits(singular[i]) != math.Float64bits(ref.Singular[i]) {
			t.Errorf("sigma[%d]: wire-fed %g differs from in-process %g", i, singular[i], ref.Singular[i])
		}
	}
	if want := HashModes(ref.Modes); sha != want {
		t.Errorf("modes hash: wire-fed %s, in-process %s", sha, want)
	}

	// The gathered checkpoint is a facade-compatible serial checkpoint of
	// exactly this state.
	blob, err := s.Save()
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	eng, err := core.LoadSerial(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("loading gathered checkpoint: %v", err)
	}
	if got := eng.SingularValues(); !equalFloatsBits(got, singular) {
		t.Errorf("checkpoint spectrum differs from the live session's")
	}
	if r, c := eng.Modes().Dims(); r != w.RowsPerRank*ranks || c != w.K {
		t.Errorf("checkpoint modes are %dx%d, want %dx%d", r, c, w.RowsPerRank*ranks, w.K)
	}
	if eng.SnapshotsSeen() != w.Snapshots {
		t.Errorf("checkpoint snapshots = %d, want %d", eng.SnapshotsSeen(), w.Snapshots)
	}

	st := s.Stats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Errorf("session traffic counters empty: %+v", st)
	}
	if st.Snapshots != w.Snapshots || st.Rows != w.RowsPerRank*ranks {
		t.Errorf("session ingest counters: %+v", st)
	}
	wantIters := (w.Snapshots - w.InitBatch) / w.Batch
	if st.Iterations != wantIters {
		t.Errorf("session iterations = %d, want %d", st.Iterations, wantIters)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSessionRejectsBadBatchesWithoutPoisoning: validation failures are
// caught before any frame reaches a worker, so the fleet survives them.
func TestSessionRejectsBadBatchesWithoutPoisoning(t *testing.T) {
	const ranks = 2
	w := sessionWorkload()
	s := startTestSession(t, ranks, w)
	defer s.Close()
	bc := w.BurgersConfig(ranks)

	if err := s.Push(nil); err == nil {
		t.Fatal("nil batch did not error")
	}
	bad := bc.Block(0, bc.Nx, 0, 4)
	bad.Set(3, 1, math.NaN())
	if err := s.Push(bad); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN batch error = %v, want non-finite rejection", err)
	}
	if s.Failed() != nil {
		t.Fatalf("validation failure poisoned the session: %v", s.Failed())
	}

	// The fleet is still fully usable.
	if err := s.Push(bc.Block(0, bc.Nx, 0, w.InitBatch)); err != nil {
		t.Fatalf("push after rejected batches: %v", err)
	}
	if err := s.Push(bc.Block(0, bc.Nx-1, w.InitBatch, w.InitBatch+4)); err == nil || s.Failed() != nil {
		t.Fatalf("row-mismatch batch: err=%v failed=%v, want plain rejection", err, s.Failed())
	}
	if _, err := s.Spectrum(); err != nil {
		t.Fatalf("spectrum after rejections: %v", err)
	}

	// An expired hard deadline (a Fit context deadline mapped down by the
	// facade) refuses the operation before any frame is written: the
	// session survives and resumes once the deadline is lifted.
	s.SetDeadline(time.Now().Add(-time.Second))
	if err := s.Push(bc.Block(0, bc.Nx, w.InitBatch, w.InitBatch+4)); err == nil {
		t.Fatal("push past the hard deadline did not error")
	}
	if s.Failed() != nil {
		t.Fatalf("expired deadline poisoned the session: %v", s.Failed())
	}
	s.SetDeadline(time.Time{})
	if err := s.Push(bc.Block(0, bc.Nx, w.InitBatch, w.InitBatch+4)); err != nil {
		t.Fatalf("push after lifting the deadline: %v", err)
	}
}

// TestSessionWorkerDeathFailsFast: SIGKILLing one rank mid-stream must
// fail the next operation promptly (not hang until some large timeout),
// reap the whole fleet, leave the session permanently failed, and leak no
// goroutines.
func TestSessionWorkerDeathFailsFast(t *testing.T) {
	const ranks = 2
	w := sessionWorkload()
	before := runtime.NumGoroutine()
	s := startTestSession(t, ranks, w)
	bc := w.BurgersConfig(ranks)
	if err := s.Push(bc.Block(0, bc.Nx, 0, w.InitBatch)); err != nil {
		t.Fatalf("seed push: %v", err)
	}

	pids := s.WorkerPIDs()
	if len(pids) != ranks || pids[1] == 0 {
		t.Fatalf("worker pids: %v", pids)
	}
	if err := syscall.Kill(pids[1], syscall.SIGKILL); err != nil {
		t.Fatalf("killing rank 1: %v", err)
	}

	start := time.Now()
	err := s.Push(bc.Block(0, bc.Nx, w.InitBatch, w.InitBatch+w.Batch))
	if err == nil {
		t.Fatal("push into a dead fleet did not error")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("failure took %v to surface; want fast detection, not a timeout crawl", elapsed)
	}
	if s.Failed() == nil {
		t.Fatal("worker death did not permanently fail the session")
	}
	// The failure is sticky: every later operation reports it immediately.
	if _, err2 := s.Spectrum(); err2 == nil {
		t.Fatal("spectrum on a failed session did not error")
	}
	if _, err2 := s.Save(); err2 == nil {
		t.Fatal("save on a failed session did not error")
	}

	// The whole fleet (rank 0 included) is reaped: signal 0 probes fail.
	deadline := time.Now().Add(10 * time.Second)
	for _, pid := range pids {
		for time.Now().Before(deadline) {
			if syscall.Kill(pid, 0) != nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if syscall.Kill(pid, 0) == nil {
			t.Errorf("worker pid %d still alive after session failure", pid)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after failure: %v", err)
	}

	// No goroutines leaked by the session (reader loops, writers).
	waitForGoroutines(t, before)
}

// TestSessionCloseLeavesNoGoroutines: a clean start→push→close cycle
// returns the process to its previous goroutine count.
func TestSessionCloseLeavesNoGoroutines(t *testing.T) {
	const ranks = 2
	w := sessionWorkload()
	before := runtime.NumGoroutine()
	s := startTestSession(t, ranks, w)
	bc := w.BurgersConfig(ranks)
	if err := s.Push(bc.Block(0, bc.Nx, 0, w.InitBatch)); err != nil {
		t.Fatalf("push: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Push(bc.Block(0, bc.Nx, 0, 4)); err == nil {
		t.Fatal("push after close did not error")
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count settles back to (or
// below) the baseline, tolerating runtime background noise.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutines leaked: %d before, %d after\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
}
