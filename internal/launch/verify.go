package launch

import (
	"fmt"

	"goparsvd/internal/mpi"
	"goparsvd/internal/scaling"
)

// VerifyAgainstInProcess replays the identical workload on the in-process
// channel fabric and demands exact agreement with a multi-process result:
// the same singular-value bit patterns on every rank and the same SHA-256
// of the gathered modes. It is the single comparator shared by the
// parsvd-scaling launcher and the CI smoke test, so the equivalence
// contract between the two transports is defined in exactly one place.
func VerifyAgainstInProcess(ranks int, w scaling.StreamWorkload, res *Result) error {
	var ref scaling.StreamResult
	if _, err := mpi.Run(ranks, func(c *mpi.Comm) {
		r := scaling.RunStream(c, w)
		if c.Rank() == 0 {
			ref = r
		}
	}); err != nil {
		return fmt.Errorf("in-process reference run: %w", err)
	}
	refBits := SingularBits(ref.Singular)
	for _, rr := range res.PerRank {
		if !uint64sEqual(rr.SingularBits, refBits) {
			return fmt.Errorf("rank %d singular values diverge from the in-process run:\n tcp  %v\n chan %v",
				rr.Rank, rr.Singular(), ref.Singular)
		}
	}
	if got, want := res.Root().ModesSHA256, HashModes(ref.Modes); got != want {
		return fmt.Errorf("gathered modes diverge from the in-process run (sha %s vs %s)", got, want)
	}
	return nil
}

func uint64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
