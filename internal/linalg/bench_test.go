package linalg

import (
	"testing"

	"goparsvd/internal/testutil"
)

func BenchmarkQRTallSkinny(b *testing.B) {
	b.ReportAllocs()
	// The streaming update's QR shape: tall block, K+batch columns.
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(8192, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QR(a)
	}
}

func BenchmarkQRSquare(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(256, 256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QR(a)
	}
}

func BenchmarkSVDSquare128(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(3)
	a := testutil.RandomDense(128, 128, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVD(a)
	}
}

func BenchmarkSVDTall(b *testing.B) {
	b.ReportAllocs()
	// Exercises the QR-first reduction path (m ≥ 2n).
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(2048, 96, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVD(a)
	}
}

func BenchmarkJacobiSVD64(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(5)
	a := testutil.RandomDense(64, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JacobiSVD(a)
	}
}

func BenchmarkEigSym96(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(6)
	eigs := make([]float64, 96)
	for i := range eigs {
		eigs[i] = float64(96 - i)
	}
	a := testutil.RandomSPD(96, eigs, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigSym(a)
	}
}
