package linalg

import (
	"math"

	"goparsvd/internal/mat"
)

// jacobiMaxSweeps bounds the number of full column-pair sweeps of the
// one-sided Jacobi SVD. Convergence is normally reached in well under 30
// sweeps for any conditioning encountered here.
const jacobiMaxSweeps = 60

// JacobiSVD computes the thin SVD A = U·diag(s)·Vᵀ using one-sided Jacobi
// rotations (Hestenes' method).
//
// It is slower than the Golub–Reinsch path but unconditionally convergent
// and slightly more accurate for small singular values, which makes it both
// the fallback for SVD and the independent cross-check oracle in the test
// suite. Shapes follow SVD: U is m×t, V is n×t, t = min(m, n).
func JacobiSVD(a *mat.Dense) (u *mat.Dense, s []float64, v *mat.Dense) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return mat.New(m, 0), nil, mat.New(n, 0)
	}
	if m < n {
		vt, s, ut := JacobiSVD(a.T())
		return ut, s, vt
	}
	u = a.Clone()
	v = mat.Eye(n)

	const tol = 1e-14
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				// Compute the rotation that orthogonalizes columns p and q.
				zeta := (beta - alpha) / (2 * gamma)
				t := signOf(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				rotateColumns(u, p, q, c, sn)
				rotateColumns(v, p, q, c, sn)
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are the column norms of the rotated U; normalize.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		s[j] = u.ColNorm(j)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}
	sortSVDDescending(nil, u, s, v)
	return u, s, v
}

// rotateColumns applies the plane rotation [c -s; s c] to columns p and q of
// m in place: new_p = c·p − s·q, new_q = s·p + c·q.
func rotateColumns(m *mat.Dense, p, q int, c, s float64) {
	rows := m.Rows()
	for i := 0; i < rows; i++ {
		vp := m.At(i, p)
		vq := m.At(i, q)
		m.Set(i, p, c*vp-s*vq)
		m.Set(i, q, s*vp+c*vq)
	}
}

// EigSym computes the eigendecomposition A = V·diag(λ)·Vᵀ of a symmetric
// matrix using the cyclic Jacobi method. Eigenvalues are returned in
// descending order with the matching eigenvectors as columns of V.
//
// This is the stand-in for numpy.linalg.eigh, used by the method-of-
// snapshots path of APMOS (eigendecomposition of the Gram matrix AᵀA).
func EigSym(a *mat.Dense) (eigs []float64, v *mat.Dense) {
	n, c := a.Dims()
	if n != c {
		panic("linalg: EigSym needs a square matrix")
	}
	w := a.Clone()
	v = mat.Eye(n)
	if n == 0 {
		return nil, v
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-14*w.FroNorm() {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				if math.Abs(apq) <= 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					continue
				}
				// Classic symmetric Jacobi rotation.
				theta := (aqq - app) / (2 * apq)
				t := signOf(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				cth := 1 / math.Sqrt(1+t*t)
				sth := cth * t
				applySymJacobi(w, p, q, cth, sth)
				rotateColumnsEig(v, p, q, cth, sth)
			}
		}
	}

	eigs = w.Diag()
	// Sort descending with eigenvector permutation.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n-1; i++ {
		maxJ := i
		for j := i + 1; j < n; j++ {
			if eigs[idx[j]] > eigs[idx[maxJ]] {
				maxJ = j
			}
		}
		idx[i], idx[maxJ] = idx[maxJ], idx[i]
	}
	sorted := make([]float64, n)
	for i, j := range idx {
		sorted[i] = eigs[j]
	}
	permuteColumns(nil, v, idx)
	return sorted, v
}

// applySymJacobi performs the two-sided rotation JᵀWJ on the symmetric
// matrix w for the (p,q) plane with cosine c and sine s.
func applySymJacobi(w *mat.Dense, p, q int, c, s float64) {
	n := w.Rows()
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)
	w.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	w.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := w.At(i, p)
		aiq := w.At(i, q)
		w.Set(i, p, c*aip-s*aiq)
		w.Set(p, i, c*aip-s*aiq)
		w.Set(i, q, s*aip+c*aiq)
		w.Set(q, i, s*aip+c*aiq)
	}
}

// rotateColumnsEig applies the rotation used by EigSym to the eigenvector
// accumulator: new_p = c·p − s·q, new_q = s·p + c·q.
func rotateColumnsEig(m *mat.Dense, p, q int, c, s float64) {
	rotateColumns(m, p, q, c, s)
}

// Pinv computes the Moore–Penrose pseudoinverse A⁺ = V·Σ⁺·Uᵀ via the SVD,
// dropping singular values below rcond·s[0] (paper §2: "the pseudoinverse
// and its calculation via the SVD").
func Pinv(a *mat.Dense, rcond float64) *mat.Dense {
	u, s, v := SVD(a)
	if len(s) == 0 {
		r, c := a.Dims()
		return mat.New(c, r)
	}
	cutoff := rcond * s[0]
	inv := make([]float64, len(s))
	for i, sv := range s {
		if sv > cutoff {
			inv[i] = 1 / sv
		}
	}
	// A⁺ = V·diag(inv)·Uᵀ.
	return mat.MulTransB(mat.MulDiag(v, inv), u)
}
