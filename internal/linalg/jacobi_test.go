package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

func TestJacobiSVDTall(t *testing.T) {
	rng := testutil.NewRand(31)
	a := testutil.RandomDense(18, 5, rng)
	u, s, v := JacobiSVD(a)
	testutil.CheckSVD(t, "jacobi-tall", a, u, s, v, 1e-11)
}

func TestJacobiSVDSquare(t *testing.T) {
	rng := testutil.NewRand(32)
	a := testutil.RandomDense(7, 7, rng)
	u, s, v := JacobiSVD(a)
	testutil.CheckSVD(t, "jacobi-square", a, u, s, v, 1e-11)
}

func TestJacobiSVDWide(t *testing.T) {
	rng := testutil.NewRand(33)
	a := testutil.RandomDense(4, 9, rng)
	u, s, v := JacobiSVD(a)
	testutil.CheckSVD(t, "jacobi-wide", a, u, s, v, 1e-11)
}

func TestJacobiSVDKnownValues(t *testing.T) {
	a := mat.NewDiag([]float64{2, 5, 3})
	_, s, _ := JacobiSVD(a)
	if !testutil.CloseSlices(s, []float64{5, 3, 2}, 1e-13) {
		t.Fatalf("s = %v", s)
	}
}

func TestJacobiSVDRankDeficient(t *testing.T) {
	// Rank-2 matrix in R^{5x4}.
	rng := testutil.NewRand(34)
	a, _ := testutil.RandomLowRank(5, 4, 2, 0, rng)
	u, s, v := JacobiSVD(a)
	if s[2] > 1e-12 || s[3] > 1e-12 {
		t.Fatalf("trailing singular values should vanish: %v", s)
	}
	recon := mat.MulTransB(mat.MulDiag(u, s), v)
	if !mat.EqualApprox(recon, a, 1e-11) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestJacobiSVDZero(t *testing.T) {
	a := mat.New(4, 3)
	_, s, _ := JacobiSVD(a)
	for _, sv := range s {
		if sv != 0 {
			t.Fatalf("zero matrix: s = %v", s)
		}
	}
}

func TestJacobiSVDEmpty(t *testing.T) {
	u, s, v := JacobiSVD(mat.New(0, 0))
	if len(s) != 0 || !u.IsEmpty() && u.Cols() != 0 || !v.IsEmpty() && v.Cols() != 0 {
		t.Fatal("empty JacobiSVD should return empty factors")
	}
}

// Property: Jacobi SVD invariants across random shapes.
func TestPropertyJacobiSVDInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		a := testutil.RandomDense(m, n, rng)
		u, s, v := JacobiSVD(a)
		recon := mat.MulTransB(mat.MulDiag(u, s), v)
		if !mat.EqualApprox(recon, a, 1e-9) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: testutil.NewRand(35)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := mat.NewDiag([]float64{1, 4, 2})
	eigs, v := EigSym(a)
	if !testutil.CloseSlices(eigs, []float64{4, 2, 1}, 1e-13) {
		t.Fatalf("eigs = %v", eigs)
	}
	testutil.CheckOrthonormalColumns(t, "V", v, 1e-12)
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := mat.NewFromRows([][]float64{{2, 1}, {1, 2}})
	eigs, v := EigSym(a)
	if !testutil.CloseSlices(eigs, []float64{3, 1}, 1e-13) {
		t.Fatalf("eigs = %v", eigs)
	}
	// A·v = λ·v for each eigenpair.
	for j := 0; j < 2; j++ {
		av := mat.MulVec(a, v.Col(j))
		for i := range av {
			if math.Abs(av[i]-eigs[j]*v.At(i, j)) > 1e-12 {
				t.Fatalf("eigenpair %d violated", j)
			}
		}
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := testutil.NewRand(36)
	want := []float64{9, 4, 1, 0.25}
	a := testutil.RandomSPD(4, want, rng)
	eigs, v := EigSym(a)
	if !testutil.CloseSlices(eigs, want, 1e-10) {
		t.Fatalf("eigs = %v, want %v", eigs, want)
	}
	recon := mat.MulTransB(mat.MulDiag(v, eigs), v)
	if !mat.EqualApprox(recon, a, 1e-10) {
		t.Fatal("V·Λ·Vᵀ != A")
	}
}

func TestEigSymNegativeEigenvalues(t *testing.T) {
	rng := testutil.NewRand(37)
	want := []float64{5, 1, -2, -7}
	v := testutil.RandomOrthonormal(4, 4, rng)
	a := mat.MulTransB(mat.MulDiag(v, want), v)
	eigs, _ := EigSym(a)
	sorted := []float64{5, 1, -2, -7}
	if !testutil.CloseSlices(eigs, sorted, 1e-10) {
		t.Fatalf("eigs = %v, want %v", eigs, sorted)
	}
}

func TestEigSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EigSym of non-square did not panic")
		}
	}()
	EigSym(mat.New(2, 3))
}

func TestEigSymEmpty(t *testing.T) {
	eigs, _ := EigSym(mat.New(0, 0))
	if len(eigs) != 0 {
		t.Fatal("empty EigSym should return no eigenvalues")
	}
}

// Property: eigenvalues of AᵀA are squared singular values of A — the
// identity the method of snapshots relies on.
func TestPropertyEigGramMatchesSVD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		n := 2 + rng.Intn(5)
		a := testutil.RandomDense(m, n, rng)
		gram := mat.MulTransA(a, a)
		eigs, _ := EigSym(gram)
		_, s, _ := SVD(a)
		for i := range s {
			ev := eigs[i]
			if ev < 0 {
				ev = 0
			}
			if math.Abs(math.Sqrt(ev)-s[i]) > 1e-8*(1+s[0]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: testutil.NewRand(38)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPinvReconstruction(t *testing.T) {
	rng := testutil.NewRand(39)
	a := testutil.RandomDense(8, 5, rng)
	ap := Pinv(a, 1e-12)
	// A·A⁺·A = A (Moore–Penrose condition 1).
	if !mat.EqualApprox(mat.Mul(mat.Mul(a, ap), a), a, 1e-9) {
		t.Fatal("A·A⁺·A != A")
	}
	// A⁺·A·A⁺ = A⁺ (condition 2).
	if !mat.EqualApprox(mat.Mul(mat.Mul(ap, a), ap), ap, 1e-9) {
		t.Fatal("A⁺·A·A⁺ != A⁺")
	}
}

func TestPinvRankDeficient(t *testing.T) {
	rng := testutil.NewRand(40)
	a, _ := testutil.RandomLowRank(6, 4, 2, 0, rng)
	ap := Pinv(a, 1e-10)
	if !mat.EqualApprox(mat.Mul(mat.Mul(a, ap), a), a, 1e-8) {
		t.Fatal("rank-deficient pinv failed condition 1")
	}
}
