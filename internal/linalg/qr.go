// Package linalg implements the dense decompositions that goparsvd needs:
// Householder QR, the Golub–Reinsch SVD, a one-sided Jacobi SVD, and a
// symmetric Jacobi eigensolver. It is the stdlib-only stand-in for the
// LAPACK routines PyParSVD reaches through NumPy (np.linalg.qr,
// np.linalg.svd, np.linalg.eigh).
//
// All routines operate on mat.Dense values and never modify their inputs.
// Factorizations use deterministic sign conventions where noted so that
// results are reproducible across serial and distributed code paths.
package linalg

import (
	"fmt"
	"math"

	"goparsvd/internal/mat"
)

// QR computes the thin (reduced) QR factorization A = Q·R of an m×n matrix,
// matching numpy.linalg.qr's "reduced" mode: Q is m×t and R is t×n with
// t = min(m, n). Q has orthonormal columns and R is upper triangular.
func QR(a *mat.Dense) (q, r *mat.Dense) {
	m, n := a.Dims()
	t := m
	if n < t {
		t = n
	}
	w := a.Clone() // Householder vectors accumulate below the diagonal.
	tau := make([]float64, t)

	for k := 0; k < t; k++ {
		tau[k] = houseColumn(w, k)
	}

	// Extract R: the upper triangle of the first t rows of w.
	r = mat.New(t, n)
	for i := 0; i < t; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}

	// Backward accumulation of Q = H_0·H_1···H_{t-1} applied to the first t
	// columns of the identity.
	q = mat.New(m, t)
	for j := 0; j < t; j++ {
		q.Set(j, j, 1)
	}
	for k := t - 1; k >= 0; k-- {
		applyHouseLeft(q, w, k, tau[k])
	}
	return q, r
}

// houseColumn forms the Householder reflector annihilating column k of w
// below the diagonal, stores the essential part of the vector in place
// (w[k+1:,k]), writes the resulting R entry at (k,k) and applies the
// reflector to the trailing columns. It returns tau such that
// H = I - tau·v·vᵀ with v[k] = 1.
func houseColumn(w *mat.Dense, k int) float64 {
	m, n := w.Dims()
	// Norm of the column below and including the diagonal.
	norm := 0.0
	for i := k; i < m; i++ {
		v := w.At(i, k)
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	alpha := w.At(k, k)
	// Choose the sign that avoids cancellation: beta = -sign(alpha)·‖x‖.
	beta := -norm
	if alpha < 0 {
		beta = norm
	}
	// v = x - beta·e_k, normalized so v[k] = 1.
	v0 := alpha - beta
	for i := k + 1; i < m; i++ {
		w.Set(i, k, w.At(i, k)/v0)
	}
	tau := (beta - alpha) / beta
	w.Set(k, k, beta)

	// Apply H to the trailing columns: for each column j > k,
	// x_j -= tau·(vᵀx_j)·v.
	for j := k + 1; j < n; j++ {
		s := w.At(k, j) // v[k] = 1
		for i := k + 1; i < m; i++ {
			s += w.At(i, k) * w.At(i, j)
		}
		s *= tau
		w.Set(k, j, w.At(k, j)-s)
		for i := k + 1; i < m; i++ {
			w.Set(i, j, w.At(i, j)-s*w.At(i, k))
		}
	}
	return tau
}

// applyHouseLeft applies the k-th stored reflector H = I - tau·v·vᵀ to every
// column of q in place, where v is stored in column k of w below the
// diagonal with implicit v[k] = 1.
func applyHouseLeft(q, w *mat.Dense, k int, tau float64) {
	if tau == 0 {
		return
	}
	m, p := q.Dims()
	for j := 0; j < p; j++ {
		s := q.At(k, j)
		for i := k + 1; i < m; i++ {
			s += w.At(i, k) * q.At(i, j)
		}
		s *= tau
		q.Set(k, j, q.At(k, j)-s)
		for i := k + 1; i < m; i++ {
			q.Set(i, j, q.At(i, j)-s*w.At(i, k))
		}
	}
}

// SolveUpperTriangular solves R·x = b for upper-triangular R (n×n). It
// panics if R is singular to working precision or the dimensions mismatch.
func SolveUpperTriangular(r *mat.Dense, b []float64) []float64 {
	n, c := r.Dims()
	if n != c {
		panic(fmt.Sprintf("linalg: SolveUpperTriangular needs a square matrix, got %dx%d", n, c))
	}
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpperTriangular rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			panic("linalg: SolveUpperTriangular: singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// LeastSquares solves min‖A·x − b‖₂ via QR for an m×n matrix with m ≥ n of
// full column rank.
func LeastSquares(a *mat.Dense, b []float64) []float64 {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("linalg: LeastSquares needs m >= n, got %dx%d", m, n))
	}
	if len(b) != m {
		panic(fmt.Sprintf("linalg: LeastSquares rhs length %d, want %d", len(b), m))
	}
	q, r := QR(a)
	qtb := mat.MulVecTrans(q, b)
	return SolveUpperTriangular(r, qtb)
}

// NormalizeQRSigns flips the signs of Q's columns and R's rows in place so
// that every diagonal entry of R is non-negative. For a full-column-rank
// matrix this makes the thin QR factorization unique, which lets the
// distributed TSQR reproduce the serial factorization bit-for-bit in exact
// arithmetic — the principled version of the `qglobal = -qglobal` "trick
// for consistency" in the paper's Listing 4.
func NormalizeQRSigns(q, r *mat.Dense) {
	t := r.Rows()
	if q.Cols() < t {
		t = q.Cols()
	}
	for k := 0; k < t; k++ {
		if r.At(k, k) >= 0 {
			continue
		}
		for j := 0; j < r.Cols(); j++ {
			r.Set(k, j, -r.At(k, j))
		}
		for i := 0; i < q.Rows(); i++ {
			q.Set(i, k, -q.At(i, k))
		}
	}
}
