// Package linalg implements the dense decompositions that goparsvd needs:
// Householder QR, the Golub–Reinsch SVD, a one-sided Jacobi SVD, and a
// symmetric Jacobi eigensolver. It is the stdlib-only stand-in for the
// LAPACK routines PyParSVD reaches through NumPy (np.linalg.qr,
// np.linalg.svd, np.linalg.eigh).
//
// All routines operate on mat.Dense values and never modify their inputs.
// Factorizations use deterministic sign conventions where noted so that
// results are reproducible across serial and distributed code paths.
//
// Every decomposition has a *With variant taking a mat.Workspace; the
// streaming engines call those in their per-batch hot paths so temporaries
// are recycled across iterations instead of reallocated. A nil workspace
// falls back to plain allocation.
package linalg

import (
	"fmt"
	"math"

	"goparsvd/internal/mat"
)

// QR computes the thin (reduced) QR factorization A = Q·R of an m×n matrix,
// matching numpy.linalg.qr's "reduced" mode: Q is m×t and R is t×n with
// t = min(m, n). Q has orthonormal columns and R is upper triangular.
func QR(a *mat.Dense) (q, r *mat.Dense) { return QRWith(nil, a) }

// QRWith is QR drawing every temporary and both returned factors from ws.
// The caller owns q and r and may return them to the workspace when done.
func QRWith(ws *mat.Workspace, a *mat.Dense) (q, r *mat.Dense) {
	m, n := a.Dims()
	t := m
	if n < t {
		t = n
	}
	w := ws.GetUninit(m, n) // Householder vectors accumulate below the diagonal.
	w.CopyFrom(a)
	tau := ws.GetFloats(t)
	s := ws.GetFloats(n) // rank-1 update scratch shared by every reflector

	for k := 0; k < t; k++ {
		tau[k] = houseColumn(w, k, s)
	}

	// Extract R: the upper triangle of the first t rows of w.
	r = ws.Get(t, n)
	for i := 0; i < t; i++ {
		copy(r.RawData()[i*n+i:(i+1)*n], w.RawData()[i*n+i:(i+1)*n])
	}

	// Backward accumulation of Q = H_0·H_1···H_{t-1} applied to the first t
	// columns of the identity.
	q = ws.Get(m, t)
	for j := 0; j < t; j++ {
		q.Set(j, j, 1)
	}
	for k := t - 1; k >= 0; k-- {
		applyHouseLeft(q, w, k, tau[k], s)
	}
	ws.PutFloats(s)
	ws.PutFloats(tau)
	ws.Put(w)
	return q, r
}

// houseColumn forms the Householder reflector annihilating column k of w
// below the diagonal, stores the essential part of the vector in place
// (w[k+1:,k]), writes the resulting R entry at (k,k) and applies the
// reflector to the trailing columns. It returns tau such that
// H = I - tau·v·vᵀ with v[k] = 1. s is caller-provided scratch of length
// ≥ n; the trailing update runs row-wise (two passes accumulating
// s = vᵀW, then W -= tau·v·sᵀ) so memory is walked contiguously.
func houseColumn(w *mat.Dense, k int, s []float64) float64 {
	m, n := w.Dims()
	data := w.RawData()
	// Norm of the column below and including the diagonal.
	norm := 0.0
	for idx := k*n + k; idx < m*n; idx += n {
		v := data[idx]
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	alpha := data[k*n+k]
	// Choose the sign that avoids cancellation: beta = -sign(alpha)·‖x‖.
	beta := -norm
	if alpha < 0 {
		beta = norm
	}
	// v = x - beta·e_k, normalized so v[k] = 1.
	v0 := alpha - beta
	for idx := (k+1)*n + k; idx < m*n; idx += n {
		data[idx] /= v0
	}
	tau := (beta - alpha) / beta
	data[k*n+k] = beta

	// Apply H to the trailing columns: s = vᵀ·W[:, k+1:], then
	// W[:, k+1:] -= tau·v·sᵀ, row by row.
	cols := n - (k + 1)
	if cols == 0 {
		return tau
	}
	s = s[:cols]
	copy(s, data[k*n+k+1:(k+1)*n]) // v[k] = 1
	for i := k + 1; i < m; i++ {
		vi := data[i*n+k]
		if vi == 0 {
			continue
		}
		row := data[i*n+k+1 : (i+1)*n]
		for j, wv := range row {
			s[j] += vi * wv
		}
	}
	krow := data[k*n+k+1 : (k+1)*n]
	for j := range s {
		s[j] *= tau
		krow[j] -= s[j]
	}
	for i := k + 1; i < m; i++ {
		vi := data[i*n+k]
		if vi == 0 {
			continue
		}
		row := data[i*n+k+1 : (i+1)*n]
		for j, sv := range s {
			row[j] -= sv * vi
		}
	}
	return tau
}

// applyHouseLeft applies the k-th stored reflector H = I - tau·v·vᵀ to every
// column of q in place, where v is stored in column k of w below the
// diagonal with implicit v[k] = 1. s is caller-provided scratch of length
// ≥ q.Cols(); the update runs row-wise like houseColumn's.
func applyHouseLeft(q, w *mat.Dense, k int, tau float64, s []float64) {
	if tau == 0 {
		return
	}
	m, p := q.Dims()
	qd, wd := q.RawData(), w.RawData()
	wcols := w.Cols()
	s = s[:p]
	copy(s, qd[k*p:(k+1)*p])
	for i := k + 1; i < m; i++ {
		vi := wd[i*wcols+k]
		if vi == 0 {
			continue
		}
		row := qd[i*p : (i+1)*p]
		for j, qv := range row {
			s[j] += vi * qv
		}
	}
	krow := qd[k*p : (k+1)*p]
	for j := range s {
		s[j] *= tau
		krow[j] -= s[j]
	}
	for i := k + 1; i < m; i++ {
		vi := wd[i*wcols+k]
		if vi == 0 {
			continue
		}
		row := qd[i*p : (i+1)*p]
		for j, sv := range s {
			row[j] -= sv * vi
		}
	}
}

// SolveUpperTriangular solves R·x = b for upper-triangular R (n×n). It
// panics if R is singular to working precision or the dimensions mismatch.
func SolveUpperTriangular(r *mat.Dense, b []float64) []float64 {
	n, c := r.Dims()
	if n != c {
		panic(fmt.Sprintf("linalg: SolveUpperTriangular needs a square matrix, got %dx%d", n, c))
	}
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpperTriangular rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			panic("linalg: SolveUpperTriangular: singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// LeastSquares solves min‖A·x − b‖₂ via QR for an m×n matrix with m ≥ n of
// full column rank.
func LeastSquares(a *mat.Dense, b []float64) []float64 {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("linalg: LeastSquares needs m >= n, got %dx%d", m, n))
	}
	if len(b) != m {
		panic(fmt.Sprintf("linalg: LeastSquares rhs length %d, want %d", len(b), m))
	}
	q, r := QR(a)
	qtb := mat.MulVecTrans(q, b)
	return SolveUpperTriangular(r, qtb)
}

// NormalizeQRSigns flips the signs of Q's columns and R's rows in place so
// that every diagonal entry of R is non-negative. For a full-column-rank
// matrix this makes the thin QR factorization unique, which lets the
// distributed TSQR reproduce the serial factorization bit-for-bit in exact
// arithmetic — the principled version of the `qglobal = -qglobal` "trick
// for consistency" in the paper's Listing 4.
func NormalizeQRSigns(q, r *mat.Dense) {
	t := r.Rows()
	if q.Cols() < t {
		t = q.Cols()
	}
	for k := 0; k < t; k++ {
		if r.At(k, k) >= 0 {
			continue
		}
		for j := 0; j < r.Cols(); j++ {
			r.Set(k, j, -r.At(k, j))
		}
		for i := 0; i < q.Rows(); i++ {
			q.Set(i, k, -q.At(i, k))
		}
	}
}
