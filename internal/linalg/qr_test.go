package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

func TestQRTall(t *testing.T) {
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(20, 5, rng)
	q, r := QR(a)
	if q.Rows() != 20 || q.Cols() != 5 || r.Rows() != 5 || r.Cols() != 5 {
		t.Fatalf("thin QR shapes: Q %dx%d, R %dx%d", q.Rows(), q.Cols(), r.Rows(), r.Cols())
	}
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-12)
	testutil.CheckUpperTriangular(t, "R", r, 1e-13)
	if !mat.EqualApprox(mat.Mul(q, r), a, 1e-12) {
		t.Fatal("QR reconstruction failed")
	}
}

func TestQRSquare(t *testing.T) {
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(6, 6, rng)
	q, r := QR(a)
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-12)
	testutil.CheckUpperTriangular(t, "R", r, 1e-13)
	if !mat.EqualApprox(mat.Mul(q, r), a, 1e-12) {
		t.Fatal("QR reconstruction failed")
	}
}

func TestQRWide(t *testing.T) {
	rng := testutil.NewRand(3)
	a := testutil.RandomDense(4, 9, rng)
	q, r := QR(a)
	if q.Rows() != 4 || q.Cols() != 4 || r.Rows() != 4 || r.Cols() != 9 {
		t.Fatalf("wide QR shapes: Q %dx%d, R %dx%d", q.Rows(), q.Cols(), r.Rows(), r.Cols())
	}
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-12)
	testutil.CheckUpperTriangular(t, "R", r, 1e-13)
	if !mat.EqualApprox(mat.Mul(q, r), a, 1e-12) {
		t.Fatal("QR reconstruction failed")
	}
}

func TestQRIdentity(t *testing.T) {
	q, r := QR(mat.Eye(4))
	if !mat.EqualApprox(mat.Mul(q, r), mat.Eye(4), 1e-14) {
		t.Fatal("QR of identity failed")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := mat.New(5, 3)
	q, r := QR(a)
	if !mat.EqualApprox(mat.Mul(q, r), a, 1e-14) {
		t.Fatal("QR of zero matrix must reconstruct zero")
	}
	if r.MaxAbs() != 0 {
		t.Fatal("R of zero matrix must be zero")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: rank 1.
	a := mat.NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q, r := QR(a)
	if !mat.EqualApprox(mat.Mul(q, r), a, 1e-13) {
		t.Fatal("QR of rank-deficient matrix must still reconstruct")
	}
	if math.Abs(r.At(1, 1)) > 1e-13 {
		t.Fatalf("R[1,1] should be ~0 for rank-1 input, got %g", r.At(1, 1))
	}
}

func TestQRSingleColumn(t *testing.T) {
	a := mat.NewFromRows([][]float64{{3}, {4}})
	q, r := QR(a)
	if math.Abs(math.Abs(r.At(0, 0))-5) > 1e-14 {
		t.Fatalf("|R[0,0]| = %g, want 5", math.Abs(r.At(0, 0)))
	}
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-14)
}

func TestQRDeterministic(t *testing.T) {
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(10, 4, rng)
	q1, r1 := QR(a)
	q2, r2 := QR(a)
	if !mat.EqualApprox(q1, q2, 0) || !mat.EqualApprox(r1, r2, 0) {
		t.Fatal("QR must be deterministic")
	}
}

func TestQRDoesNotMutateInput(t *testing.T) {
	rng := testutil.NewRand(5)
	a := testutil.RandomDense(8, 3, rng)
	before := a.Clone()
	QR(a)
	if !mat.EqualApprox(a, before, 0) {
		t.Fatal("QR mutated its input")
	}
}

// Property-based: QR invariants hold over random shapes.
func TestPropertyQRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		n := 1 + rng.Intn(12)
		a := testutil.RandomDense(m, n, rng)
		q, r := QR(a)
		// Reconstruction.
		if !mat.EqualApprox(mat.Mul(q, r), a, 1e-11) {
			return false
		}
		// Orthonormality: QᵀQ = I.
		g := mat.MulTransA(q, q)
		return mat.EqualApprox(g, mat.Eye(q.Cols()), 1e-11)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: testutil.NewRand(6)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r := mat.NewFromRows([][]float64{{2, 1}, {0, 3}})
	x := SolveUpperTriangular(r, []float64{5, 6})
	// 3x₂ = 6 → x₂ = 2; 2x₁ + 2 = 5 → x₁ = 1.5.
	if math.Abs(x[0]-1.5) > 1e-14 || math.Abs(x[1]-2) > 1e-14 {
		t.Fatalf("solve = %v", x)
	}
}

func TestSolveUpperTriangularSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("singular solve did not panic")
		}
	}()
	SolveUpperTriangular(mat.NewFromRows([][]float64{{1, 2}, {0, 0}}), []float64{1, 1})
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: the residual must be ~0.
	a := mat.NewFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	xTrue := []float64{2, -3}
	b := mat.MulVec(a, xTrue)
	x := LeastSquares(a, b)
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]+3) > 1e-12 {
		t.Fatalf("LeastSquares = %v, want %v", x, xTrue)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	rng := testutil.NewRand(7)
	a := testutil.RandomDense(30, 4, rng)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := LeastSquares(a, b)
	res := residualNorm(a, x, b)
	// Perturbing the solution in any coordinate direction must not shrink
	// the residual (first-order optimality check).
	for j := 0; j < 4; j++ {
		for _, eps := range []float64{1e-4, -1e-4} {
			xp := append([]float64(nil), x...)
			xp[j] += eps
			if residualNorm(a, xp, b) < res-1e-12 {
				t.Fatalf("residual decreased when perturbing x[%d]", j)
			}
		}
	}
}

func residualNorm(a *mat.Dense, x, b []float64) float64 {
	ax := mat.MulVec(a, x)
	s := 0.0
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
