package linalg

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"goparsvd/internal/mat"
)

// maxSVDIterations bounds the implicit-shift QR sweeps per singular value
// in the Golub–Reinsch iteration before falling back to the (slower,
// unconditionally convergent) Jacobi SVD. The classical limit is 30, but
// Gram matrices of snapshot ensembles — squared singular values spanning
// the full double-precision range — can legitimately need a few more (the
// 1024×128 Burgers Gram converges at ~33), so the cap is doubled.
const maxSVDIterations = 60

var errNoConvergence = errors.New("linalg: Golub-Reinsch SVD did not converge")

// SVD computes the thin singular value decomposition A = U·diag(s)·Vᵀ.
//
// For an m×n input it returns U (m×t), s (length t, non-negative,
// descending) and V (n×t) with t = min(m, n). Columns of U and V are
// orthonormal. This matches numpy.linalg.svd with full_matrices=False, which
// is all PyParSVD ever uses (the library immediately truncates to K modes).
//
// Tall matrices (m ≥ 2n) are reduced with a QR factorization first, so the
// expensive iteration runs on the small n×n triangular factor — the same
// strategy the paper leans on throughout (Algorithm 1, step I1/I2).
func SVD(a *mat.Dense) (u *mat.Dense, s []float64, v *mat.Dense) {
	return SVDWith(nil, a)
}

// SVDWith is SVD drawing temporaries and the returned factors from ws. The
// caller owns u, s and v and may return them to the workspace when done.
func SVDWith(ws *mat.Workspace, a *mat.Dense) (u *mat.Dense, s []float64, v *mat.Dense) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return mat.New(m, 0), nil, mat.New(n, 0)
	}
	if m < n {
		// SVD(Aᵀ) = V·S·Uᵀ: swap the roles of the factor matrices.
		at := ws.GetUninit(n, m)
		a.TInto(at)
		vt, s, ut := SVDWith(ws, at)
		ws.Put(at)
		return ut, s, vt
	}
	if m >= 2*n {
		q, r := QRWith(ws, a)
		ur, s, v := svdSquareish(ws, r)
		u := ws.GetUninit(m, ur.Cols())
		mat.MulInto(u, q, ur)
		ws.Put(q)
		ws.Put(r)
		ws.Put(ur)
		return u, s, v
	}
	return svdSquareish(ws, a)
}

// SVDTruncated computes the thin SVD and keeps only the leading k triplets.
// If k exceeds min(m, n) the full thin SVD is returned.
func SVDTruncated(a *mat.Dense, k int) (u *mat.Dense, s []float64, v *mat.Dense) {
	u, s, v = SVD(a)
	if k < 0 {
		panic(fmt.Sprintf("linalg: SVDTruncated negative k=%d", k))
	}
	if k >= len(s) {
		return u, s, v
	}
	return u.SliceCols(0, k), s[:k], v.SliceCols(0, k)
}

// svdSquareish runs Golub–Reinsch on an m×n matrix with m ≥ n, falling back
// to one-sided Jacobi if the iteration fails to converge.
func svdSquareish(ws *mat.Workspace, a *mat.Dense) (u *mat.Dense, s []float64, v *mat.Dense) {
	_, n := a.Dims()
	uw := ws.GetUninit(a.Rows(), n)
	uw.CopyFrom(a)
	s = ws.GetFloats(n)
	v = ws.Get(n, n)
	if err := golubReinsch(uw, s, v); err != nil {
		ws.Put(uw)
		ws.Put(v)
		ws.PutFloats(s)
		return JacobiSVD(a)
	}
	sortSVDDescending(ws, uw, s, v)
	// Zero out numerically negative values introduced by sign flips.
	for i, sv := range s {
		if sv < 0 {
			s[i] = 0
		}
	}
	return uw, s, v
}

// sortSVDDescending reorders the SVD triplets in place so the singular
// values are non-increasing; U and V columns are permuted consistently.
func sortSVDDescending(ws *mat.Workspace, u *mat.Dense, s []float64, v *mat.Dense) {
	n := len(s)
	idx := ws.GetInts(n)
	for i := range idx {
		idx[i] = i
	}
	// Stable insertion sort, descending: the values arrive nearly ordered
	// and, unlike sort.SliceStable, this allocates nothing.
	for i := 1; i < n; i++ {
		k := idx[i]
		key := s[k]
		j := i - 1
		for j >= 0 && s[idx[j]] < key {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = k
	}
	permuteColumns(ws, u, idx)
	permuteColumns(ws, v, idx)
	ss := ws.GetFloats(n)
	for i, j := range idx {
		ss[i] = s[j]
	}
	copy(s, ss)
	ws.PutFloats(ss)
	ws.PutInts(idx)
}

// permuteColumns rearranges the columns of m so that new column i is old
// column idx[i], row by row through a workspace staging buffer.
func permuteColumns(ws *mat.Workspace, m *mat.Dense, idx []int) {
	r, c := m.Dims()
	if len(idx) != c {
		panic(fmt.Sprintf("linalg: permutation length %d, want %d", len(idx), c))
	}
	tmp := ws.GetUninit(r, c)
	td, md := tmp.RawData(), m.RawData()
	for i := 0; i < r; i++ {
		trow, mrow := td[i*c:(i+1)*c], md[i*c:(i+1)*c]
		for newJ, oldJ := range idx {
			trow[newJ] = mrow[oldJ]
		}
	}
	m.CopyFrom(tmp)
	ws.Put(tmp)
}

// pythag returns sqrt(a²+b²) without destructive underflow or overflow.
func pythag(a, b float64) float64 {
	absa, absb := math.Abs(a), math.Abs(b)
	if absa > absb {
		r := absb / absa
		return absa * math.Sqrt(1+r*r)
	}
	if absb == 0 {
		return 0
	}
	r := absa / absb
	return absb * math.Sqrt(1+r*r)
}

// signOf returns |a| with the sign of b (the Fortran SIGN intrinsic).
func signOf(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// grScratch holds the per-call views and workspace of golubReinsch, pooled
// so steady-state streaming updates don't reallocate them every iteration.
type grScratch struct {
	u, v [][]float64
	rv1  []float64
}

func (g *grScratch) ensure(m, n int) {
	if cap(g.u) < m {
		g.u = make([][]float64, m)
	}
	g.u = g.u[:m]
	if cap(g.v) < n {
		g.v = make([][]float64, n)
	}
	g.v = g.v[:n]
	if cap(g.rv1) < n {
		g.rv1 = make([]float64, n)
	}
	g.rv1 = g.rv1[:n]
}

var grPool = sync.Pool{New: func() any { return new(grScratch) }}

// golubReinsch performs the classical Golub–Reinsch SVD of the m×n matrix
// stored in u (m ≥ n): Householder bidiagonalization followed by implicit
// shifted QR on the bidiagonal form. On return u holds the left singular
// vectors (m×n), w the singular values and v the right singular vectors
// (n×n). Values are not yet sorted and may require sign cleanup.
//
// The routine is a 0-based port of the classical ALGOL procedure of Golub &
// Reinsch as popularized by the svdcmp formulation.
func golubReinsch(uD *mat.Dense, w []float64, vD *mat.Dense) error {
	m, n := uD.Dims()
	sc := grPool.Get().(*grScratch)
	defer grPool.Put(sc)
	sc.ensure(m, n)
	u, v, rv1 := sc.u, sc.v, sc.rv1
	for i := range u {
		u[i] = uD.RowView(i)
	}
	for i := range v {
		v[i] = vD.RowView(i)
	}
	var g, scale, anorm float64
	var l int

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l = i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		s := 0.0
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(u[k][i])
			}
			if scale != 0 {
				for k := i; k < m; k++ {
					u[k][i] /= scale
					s += u[k][i] * u[k][i]
				}
				f := u[i][i]
				g = -signOf(math.Sqrt(s), f)
				h := f*g - s
				u[i][i] = f - g
				for j := l; j < n; j++ {
					s = 0
					for k := i; k < m; k++ {
						s += u[k][i] * u[k][j]
					}
					f = s / h
					for k := i; k < m; k++ {
						u[k][j] += f * u[k][i]
					}
				}
				for k := i; k < m; k++ {
					u[k][i] *= scale
				}
			}
		}
		w[i] = scale * g
		g, s, scale = 0, 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(u[i][k])
			}
			if scale != 0 {
				for k := l; k < n; k++ {
					u[i][k] /= scale
					s += u[i][k] * u[i][k]
				}
				f := u[i][l]
				g = -signOf(math.Sqrt(s), f)
				h := f*g - s
				u[i][l] = f - g
				for k := l; k < n; k++ {
					rv1[k] = u[i][k] / h
				}
				for j := l; j < m; j++ {
					s = 0
					for k := l; k < n; k++ {
						s += u[j][k] * u[i][k]
					}
					for k := l; k < n; k++ {
						u[j][k] += s * rv1[k]
					}
				}
				for k := l; k < n; k++ {
					u[i][k] *= scale
				}
			}
		}
		if t := math.Abs(w[i]) + math.Abs(rv1[i]); t > anorm {
			anorm = t
		}
	}

	// Accumulation of right-hand transformations.
	for i := n - 1; i >= 0; i-- {
		if i < n-1 {
			if g != 0 {
				for j := l; j < n; j++ {
					// Double division avoids possible underflow.
					v[j][i] = (u[i][j] / u[i][l]) / g
				}
				for j := l; j < n; j++ {
					s := 0.0
					for k := l; k < n; k++ {
						s += u[i][k] * v[k][j]
					}
					for k := l; k < n; k++ {
						v[k][j] += s * v[k][i]
					}
				}
			}
			for j := l; j < n; j++ {
				v[i][j] = 0
				v[j][i] = 0
			}
		}
		v[i][i] = 1
		g = rv1[i]
		l = i
	}

	// Accumulation of left-hand transformations.
	for i := min(m, n) - 1; i >= 0; i-- {
		l := i + 1
		g := w[i]
		for j := l; j < n; j++ {
			u[i][j] = 0
		}
		if g != 0 {
			g = 1 / g
			for j := l; j < n; j++ {
				s := 0.0
				for k := l; k < m; k++ {
					s += u[k][i] * u[k][j]
				}
				f := (s / u[i][i]) * g
				for k := i; k < m; k++ {
					u[k][j] += f * u[k][i]
				}
			}
			for j := i; j < m; j++ {
				u[j][i] *= g
			}
		} else {
			for j := i; j < m; j++ {
				u[j][i] = 0
			}
		}
		u[i][i]++
	}

	// Diagonalization of the bidiagonal form.
	for k := n - 1; k >= 0; k-- {
		for its := 0; ; its++ {
			flag := true
			var nm int
			lo := 0
			for lo = k; lo >= 0; lo-- {
				nm = lo - 1
				if math.Abs(rv1[lo])+anorm == anorm {
					flag = false
					break
				}
				// rv1[0] == 0, so nm never reaches -1 here.
				if math.Abs(w[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				// Cancellation of rv1[lo] when lo > 0.
				c, s := 0.0, 1.0
				for i := lo; i <= k; i++ {
					f := s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g := w[i]
					h := pythag(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j := 0; j < m; j++ {
						y := u[j][nm]
						z := u[j][i]
						u[j][nm] = y*c + z*s
						u[j][i] = z*c - y*s
					}
				}
			}
			z := w[k]
			if lo == k {
				// Convergence; force the singular value non-negative.
				if z < 0 {
					w[k] = -z
					for j := 0; j < n; j++ {
						v[j][k] = -v[j][k]
					}
				}
				break
			}
			if its == maxSVDIterations-1 {
				return errNoConvergence
			}
			// Shift from the bottom 2×2 minor.
			x := w[lo]
			nm = k - 1
			y := w[nm]
			g := rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = pythag(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+signOf(g, f)))-h)) / x
			// Next QR transformation.
			c, s := 1.0, 1.0
			for j := lo; j <= nm; j++ {
				i := j + 1
				g = rv1[i]
				y = w[i]
				h = s * g
				g = c * g
				z = pythag(f, h)
				rv1[j] = z
				c = f / z
				s = h / z
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y *= c
				for jj := 0; jj < n; jj++ {
					xx := v[jj][j]
					zz := v[jj][i]
					v[jj][j] = xx*c + zz*s
					v[jj][i] = zz*c - xx*s
				}
				z = pythag(f, h)
				w[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					s = h * z
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj := 0; jj < m; jj++ {
					yy := u[jj][j]
					zz := u[jj][i]
					u[jj][j] = yy*c + zz*s
					u[jj][i] = zz*c - yy*s
				}
			}
			rv1[lo] = 0
			rv1[k] = f
			w[k] = x
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
