package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

func TestSVDTall(t *testing.T) {
	rng := testutil.NewRand(11)
	a := testutil.RandomDense(30, 6, rng)
	u, s, v := SVD(a)
	if u.Rows() != 30 || u.Cols() != 6 || len(s) != 6 || v.Rows() != 6 || v.Cols() != 6 {
		t.Fatalf("shapes: U %dx%d, s %d, V %dx%d", u.Rows(), u.Cols(), len(s), v.Rows(), v.Cols())
	}
	testutil.CheckSVD(t, "tall", a, u, s, v, 1e-11)
}

func TestSVDTallTriggersQRPath(t *testing.T) {
	// m >= 2n exercises the QR-first reduction.
	rng := testutil.NewRand(12)
	a := testutil.RandomDense(50, 7, rng)
	u, s, v := SVD(a)
	testutil.CheckSVD(t, "qr-path", a, u, s, v, 1e-11)
}

func TestSVDSquare(t *testing.T) {
	rng := testutil.NewRand(13)
	a := testutil.RandomDense(8, 8, rng)
	u, s, v := SVD(a)
	testutil.CheckSVD(t, "square", a, u, s, v, 1e-11)
}

func TestSVDWide(t *testing.T) {
	rng := testutil.NewRand(14)
	a := testutil.RandomDense(5, 12, rng)
	u, s, v := SVD(a)
	if u.Rows() != 5 || u.Cols() != 5 || v.Rows() != 12 || v.Cols() != 5 {
		t.Fatalf("wide shapes: U %dx%d, V %dx%d", u.Rows(), u.Cols(), v.Rows(), v.Cols())
	}
	testutil.CheckSVD(t, "wide", a, u, s, v, 1e-11)
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2, 1) has singular values 3, 2, 1.
	a := mat.NewDiag([]float64{1, 3, 2})
	_, s, _ := SVD(a)
	want := []float64{3, 2, 1}
	if !testutil.CloseSlices(s, want, 1e-13) {
		t.Fatalf("s = %v, want %v", s, want)
	}
}

func TestSVDRank1(t *testing.T) {
	// A = x·yᵀ has exactly one nonzero singular value ‖x‖·‖y‖.
	x := mat.NewFromRows([][]float64{{1}, {2}, {2}}) // norm 3
	y := mat.NewFromRows([][]float64{{3}, {4}})      // norm 5
	a := mat.MulTransB(x, y)
	_, s, _ := SVD(a)
	if math.Abs(s[0]-15) > 1e-12 {
		t.Fatalf("s[0] = %g, want 15", s[0])
	}
	if s[1] > 1e-12 {
		t.Fatalf("s[1] = %g, want ~0", s[1])
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := mat.New(6, 3)
	u, s, v := SVD(a)
	for _, sv := range s {
		if sv != 0 {
			t.Fatalf("zero matrix singular values: %v", s)
		}
	}
	recon := mat.MulTransB(mat.MulDiag(u, s), v)
	if recon.MaxAbs() != 0 {
		t.Fatal("zero matrix reconstruction not zero")
	}
}

func TestSVDEmpty(t *testing.T) {
	u, s, v := SVD(mat.New(0, 0))
	if len(s) != 0 || u.Cols() != 0 || v.Cols() != 0 {
		t.Fatal("empty SVD should return empty factors")
	}
}

func TestSVDOrthogonalInput(t *testing.T) {
	rng := testutil.NewRand(15)
	q := testutil.RandomOrthonormal(9, 9, rng)
	_, s, _ := SVD(q)
	for i, sv := range s {
		if math.Abs(sv-1) > 1e-12 {
			t.Fatalf("s[%d] = %g, want 1 for orthogonal input", i, sv)
		}
	}
}

func TestSVDRecoversPlantedSpectrum(t *testing.T) {
	rng := testutil.NewRand(16)
	want := []float64{10, 5, 2, 1, 0.5}
	u := testutil.RandomOrthonormal(40, 5, rng)
	v := testutil.RandomOrthonormal(12, 5, rng)
	a := mat.MulTransB(mat.MulDiag(u, want), v)
	_, s, _ := SVD(a)
	if !testutil.CloseSlices(s[:5], want, 1e-10) {
		t.Fatalf("recovered spectrum %v, want %v", s[:5], want)
	}
	for _, sv := range s[5:] {
		if sv > 1e-10 {
			t.Fatalf("trailing singular value %g, want ~0", sv)
		}
	}
}

func TestSVDAgainstJacobi(t *testing.T) {
	// Golub–Reinsch and one-sided Jacobi are independent algorithms; their
	// singular values must agree to high precision.
	rng := testutil.NewRand(17)
	for _, dims := range [][2]int{{10, 10}, {25, 8}, {7, 13}, {40, 5}} {
		a := testutil.RandomDense(dims[0], dims[1], rng)
		_, s1, _ := SVD(a)
		_, s2, _ := JacobiSVD(a)
		if !testutil.CloseSlices(s1, s2, 1e-10) {
			t.Fatalf("%v: GR %v vs Jacobi %v", dims, s1, s2)
		}
	}
}

func TestSVDSubspacesAgainstJacobi(t *testing.T) {
	// With a well-separated spectrum the leading singular subspaces from the
	// two algorithms must coincide.
	rng := testutil.NewRand(18)
	a, _ := testutil.RandomLowRank(30, 10, 4, 1e-6, rng)
	u1, _, _ := SVD(a)
	u2, _, _ := JacobiSVD(a)
	if err := testutil.SubspaceError(u1.SliceCols(0, 4), u2.SliceCols(0, 4)); err > 1e-6 {
		t.Fatalf("leading subspace mismatch: %g", err)
	}
}

func TestSVDDoesNotMutateInput(t *testing.T) {
	rng := testutil.NewRand(19)
	a := testutil.RandomDense(9, 4, rng)
	before := a.Clone()
	SVD(a)
	if !mat.EqualApprox(a, before, 0) {
		t.Fatal("SVD mutated its input")
	}
}

func TestSVDTruncated(t *testing.T) {
	rng := testutil.NewRand(20)
	a := testutil.RandomDense(20, 8, rng)
	u, s, v := SVDTruncated(a, 3)
	if u.Cols() != 3 || len(s) != 3 || v.Cols() != 3 {
		t.Fatalf("truncated shapes: U cols %d, s %d, V cols %d", u.Cols(), len(s), v.Cols())
	}
	uf, sf, _ := SVD(a)
	if !testutil.CloseSlices(s, sf[:3], 1e-12) {
		t.Fatal("truncated values differ from full SVD")
	}
	if err := testutil.MaxColumnError(uf.SliceCols(0, 3), u); err > 1e-12 {
		t.Fatalf("truncated vectors differ: %g", err)
	}
}

func TestSVDTruncatedBeyondRank(t *testing.T) {
	rng := testutil.NewRand(21)
	a := testutil.RandomDense(6, 4, rng)
	u, s, v := SVDTruncated(a, 99)
	if u.Cols() != 4 || len(s) != 4 || v.Cols() != 4 {
		t.Fatal("over-truncation should clamp to min(m,n)")
	}
}

func TestSVDTruncatedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative k did not panic")
		}
	}()
	SVDTruncated(mat.Eye(3), -1)
}

func TestSVDEckartYoung(t *testing.T) {
	// The rank-k truncation must be the best rank-k approximation:
	// ‖A − A_k‖_F² = Σ_{i>k} σ_i².
	rng := testutil.NewRand(22)
	a := testutil.RandomDense(15, 10, rng)
	u, s, v := SVD(a)
	k := 4
	ak := mat.MulTransB(mat.MulDiag(u.SliceCols(0, k), s[:k]), v.SliceCols(0, k))
	got := mat.Sub(a, ak).FroNorm()
	want := 0.0
	for _, sv := range s[k:] {
		want += sv * sv
	}
	want = math.Sqrt(want)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("Eckart-Young: residual %g, want %g", got, want)
	}
}

func TestSVDIllConditioned(t *testing.T) {
	// Singular values spanning 12 orders of magnitude.
	rng := testutil.NewRand(23)
	want := []float64{1e6, 1, 1e-6}
	u := testutil.RandomOrthonormal(20, 3, rng)
	v := testutil.RandomOrthonormal(3, 3, rng)
	a := mat.MulTransB(mat.MulDiag(u, want), v)
	_, s, _ := SVD(a)
	for i := range want {
		if math.Abs(s[i]-want[i])/want[0] > 1e-12 {
			t.Fatalf("ill-conditioned: s[%d] = %g, want %g", i, s[i], want[i])
		}
	}
}

// Property-based: SVD invariants over random shapes and seeds.
func TestPropertySVDInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(14)
		n := 1 + rng.Intn(14)
		a := testutil.RandomDense(m, n, rng)
		u, s, v := SVD(a)
		// Reconstruction.
		recon := mat.MulTransB(mat.MulDiag(u, s), v)
		if !mat.EqualApprox(recon, a, 1e-9) {
			return false
		}
		// Descending non-negative spectrum.
		for i, sv := range s {
			if sv < -1e-14 || (i > 0 && sv > s[i-1]+1e-12) {
				return false
			}
		}
		// Largest singular value bounds the Frobenius norm from below
		// appropriately: σ₁ ≤ ‖A‖_F ≤ sqrt(t)·σ₁.
		if len(s) > 0 && a.FroNorm() > math.Sqrt(float64(len(s)))*s[0]+1e-9 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: testutil.NewRand(24)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: singular values of Aᵀ equal those of A.
func TestPropertySVDTransposeSpectrum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		a := testutil.RandomDense(m, n, rng)
		_, s1, _ := SVD(a)
		_, s2, _ := SVD(a.T())
		return testutil.CloseSlices(s1, s2, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: testutil.NewRand(25)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling the matrix scales the spectrum.
func TestPropertySVDScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		c := 0.5 + rng.Float64()*4
		a := testutil.RandomDense(m, n, rng)
		_, s1, _ := SVD(a)
		_, s2, _ := SVD(mat.Scale(c, a))
		for i := range s1 {
			if math.Abs(c*s1[i]-s2[i]) > 1e-9*(1+s2[0]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: testutil.NewRand(26)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPythag(t *testing.T) {
	if got := pythag(3, 4); math.Abs(got-5) > 1e-15 {
		t.Fatalf("pythag(3,4) = %g", got)
	}
	if got := pythag(0, 0); got != 0 {
		t.Fatalf("pythag(0,0) = %g", got)
	}
	if got := pythag(1e200, 1e200); math.IsInf(got, 0) {
		t.Fatal("pythag overflowed")
	}
	if got := pythag(-3, -4); math.Abs(got-5) > 1e-15 {
		t.Fatalf("pythag(-3,-4) = %g", got)
	}
}

func TestSignOf(t *testing.T) {
	if signOf(3, -2) != -3 || signOf(-3, 2) != 3 || signOf(3, 0) != 3 {
		t.Fatal("signOf wrong")
	}
}

func TestSVDHilbertMatrix(t *testing.T) {
	// The 10x10 Hilbert matrix is the classic ill-conditioned stress test
	// (condition number ~1e13). The factorization must still reconstruct
	// and stay orthonormal even though the small singular values carry
	// little relative accuracy.
	n := 10
	h := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	u, s, v := SVD(h)
	testutil.CheckSVD(t, "hilbert", h, u, s, v, 1e-10)
	// Known leading singular value of the 10x10 Hilbert matrix ≈ 1.7519.
	if math.Abs(s[0]-1.7519) > 1e-3 {
		t.Fatalf("sigma_1 = %g, want ≈ 1.7519", s[0])
	}
	// The spectrum must span many orders of magnitude.
	if s[n-1] > 1e-11*s[0] {
		t.Fatalf("smallest singular value suspiciously large: %g", s[n-1])
	}
}

func TestSVDRepeatedSingularValues(t *testing.T) {
	// A multiple of the identity has one singular value with full
	// multiplicity; U·Vᵀ must still reconstruct despite the degenerate
	// subspace being arbitrary.
	a := mat.Scale(3, mat.Eye(6))
	u, s, v := SVD(a)
	for i, sv := range s {
		if math.Abs(sv-3) > 1e-12 {
			t.Fatalf("s[%d] = %g, want 3", i, sv)
		}
	}
	testutil.CheckSVD(t, "repeated", a, u, s, v, 1e-12)
}

func TestSVDGradedMatrix(t *testing.T) {
	// Strongly graded rows (powers of 10) probe the scaling logic in the
	// bidiagonalization.
	rng := testutil.NewRand(27)
	a := testutil.RandomDense(12, 6, rng)
	for i := 0; i < 12; i++ {
		scale := math.Pow(10, float64(i-6))
		for j := 0; j < 6; j++ {
			a.Set(i, j, a.At(i, j)*scale)
		}
	}
	u, s, v := SVD(a)
	testutil.CheckSVD(t, "graded", a, u, s, v, 1e-10)
}

func TestSVDZeroColumnInside(t *testing.T) {
	// An interior zero column forces a zero on the bidiagonal: the
	// cancellation branch of the GR iteration.
	rng := testutil.NewRand(28)
	a := testutil.RandomDense(10, 5, rng)
	for i := 0; i < 10; i++ {
		a.Set(i, 2, 0)
	}
	u, s, v := SVD(a)
	testutil.CheckSVD(t, "zero-column", a, u, s, v, 1e-11)
	if s[4] > 1e-12 {
		t.Fatalf("expected a (near-)zero singular value, got %v", s)
	}
}

func TestSVDSingleColumnAndRow(t *testing.T) {
	col := mat.NewFromRows([][]float64{{3}, {4}})
	_, s, _ := SVD(col)
	if math.Abs(s[0]-5) > 1e-14 {
		t.Fatalf("column matrix: s = %v", s)
	}
	row := mat.NewFromRows([][]float64{{3, 4}})
	_, s, _ = SVD(row)
	if math.Abs(s[0]-5) > 1e-14 {
		t.Fatalf("row matrix: s = %v", s)
	}
}

func TestGolubReinschConvergesOnSnapshotGram(t *testing.T) {
	// Regression: Gram matrices of PDE snapshot ensembles have squared
	// singular values spanning the full double range (σ² from ~1e3 down to
	// ~1e-15 here). With the classical 30-iteration cap the GR iteration
	// gave up on exactly this class and silently fell back to the ~60x
	// slower Jacobi path; the cap is now 60 and the direct path must
	// succeed.
	rng := testutil.NewRand(29)
	n := 96
	spectrum := make([]float64, n)
	for i := range spectrum {
		spectrum[i] = 1e3 * math.Pow(0.65, float64(i)) // σ² down to ~1e-15
	}
	v := testutil.RandomOrthonormal(n, n, rng)
	gram := mat.MulTransB(mat.MulDiag(v, spectrum), v)

	uw := gram.Clone()
	s := make([]float64, n)
	vv := mat.New(n, n)
	if err := golubReinsch(uw, s, vv); err != nil {
		t.Fatalf("Golub-Reinsch fell back on a snapshot-Gram spectrum: %v", err)
	}
	sortSVDDescending(nil, uw, s, vv)
	if math.Abs(s[0]-spectrum[0]) > 1e-8*spectrum[0] {
		t.Fatalf("sigma_1 = %g, want %g", s[0], spectrum[0])
	}
}
