package mat

import (
	"fmt"
	"sync"
	"unsafe"
)

// Batched small-GEMM: N products that share a right-hand side, computed with
// each B panel packed exactly once for the whole batch. The streaming mode
// update U' = [U | e]·Ũ and its distributed counterpart are tall-skinny
// products whose packing cost is dominated by B only when B is reused; the
// PanelBatch type below splits such a product into row panels and feeds them
// through BatchedMulInto so the panel fan-out can also be batch-aware.

// BatchedMulInto computes dsts[i] = as[i]·b for every i. All operands follow
// the MulInto contract (dsts[i] is as[i].Rows()×b.Cols(), as[i].Cols() ==
// b.Rows()); additionally no destination may overlap b, any as operand, or
// another destination, which is verified against the actual backing storage
// so disjoint views of one array (ViewRows panels) are accepted.
//
// The result is bit-identical to calling MulInto(dsts[i], as[i], b) in a
// loop: each item takes the same naive-vs-blocked route as MulInto would,
// and the packed panels and accumulation order within an item do not depend
// on the rest of the batch.
func BatchedMulInto(dsts, as []*Dense, b *Dense) {
	if len(dsts) != len(as) {
		panic(fmt.Sprintf("mat: BatchedMulInto has %d destinations for %d operands",
			len(dsts), len(as)))
	}
	if len(dsts) == 0 {
		return
	}
	k, n := b.rows, b.cols
	for i, a := range as {
		if a.cols != k {
			panic(dimPanic("BatchedMulInto", a, b))
		}
		checkDims("BatchedMulInto", dsts[i], a.rows, n)
	}
	checkBatchAliasing(dsts, as, b)
	for _, d := range dsts {
		zeroFloats(d.data)
	}
	if k == 0 || n == 0 {
		return
	}

	// Small items take MulInto's naive route now; blocked items share packed
	// B panels below. Recomputing the cutoff per item instead of collecting
	// index lists keeps the call allocation-free.
	anyBlocked := false
	for i, a := range as {
		if a.rows == 0 {
			continue
		}
		if a.rows*n*k <= sel.SmallFlops {
			gemmSmall(dsts[i], a, b, false, false)
		} else {
			anyBlocked = true
		}
	}
	if !anyBlocked {
		return
	}

	kern := kernFor(n)
	bbuf := getPackBuf()
	defer putPackBuf(bbuf)
	abuf := getPackBuf()
	defer putPackBuf(abuf)
	kernelPool.once.Do(startKernelPool)

	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			bp := bbuf.grow(roundUp(nc, kern.nr) * kc)
			packB(bp, kern.nr, b, pc, kc, jc, nc, false)

			// Fan out on the batch's pooled flops for this panel pair, not
			// per item: a single skinny panel rarely clears the per-product
			// threshold, but the batch together can keep every worker busy.
			batchFlops := 0
			for _, a := range as {
				if a.rows*n*k > sel.SmallFlops {
					batchFlops += a.rows * nc * kc
				}
			}
			fan := kernelPool.workers >= 2 && batchFlops >= sel.BatchSpanFlops
			t := gemmTask{kern: kern, bp: bp, pc: pc, kc: kc, jc: jc, nc: nc}
			if !fan {
				for i, a := range as {
					if a.rows == 0 || a.rows*n*k <= sel.SmallFlops {
						continue
					}
					t.out, t.a = dsts[i], a
					for ic := 0; ic < a.rows; ic += mcBlock {
						t.ic, t.mc = ic, min(mcBlock, a.rows-ic)
						t.run(abuf)
					}
				}
				continue
			}
			wg := waitGroupPool.Get().(*sync.WaitGroup)
			t.wg = wg
			for i, a := range as {
				if a.rows == 0 || a.rows*n*k <= sel.SmallFlops {
					continue
				}
				t.out, t.a = dsts[i], a
				for ic := 0; ic < a.rows; ic += mcBlock {
					wg.Add(1)
					t.ic, t.mc = ic, min(mcBlock, a.rows-ic)
					kernelPool.tasks <- t
				}
			}
			wg.Wait()
			waitGroupPool.Put(wg)
		}
	}
}

// checkBatchAliasing panics if any destination's backing storage overlaps b,
// any operand, or another destination. Overlap is judged on address ranges,
// not slice identity: ViewRows panels of one matrix share a backing array
// but occupy disjoint ranges, and those must pass.
func checkBatchAliasing(dsts, as []*Dense, b *Dense) {
	for i, d := range dsts {
		if floatsOverlap(d.data, b.data) {
			panic(fmt.Sprintf("mat: BatchedMulInto destination %d aliases b", i))
		}
		for j, a := range as {
			if floatsOverlap(d.data, a.data) {
				panic(fmt.Sprintf("mat: BatchedMulInto destination %d aliases operand %d", i, j))
			}
		}
		for j := i + 1; j < len(dsts); j++ {
			if floatsOverlap(d.data, dsts[j].data) {
				panic(fmt.Sprintf("mat: BatchedMulInto destinations %d and %d alias", i, j))
			}
		}
	}
}

// floatsOverlap reports whether two slices' element storage overlaps.
func floatsOverlap(x, y []float64) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	x0 := uintptr(unsafe.Pointer(&x[0]))
	y0 := uintptr(unsafe.Pointer(&y[0]))
	const w = unsafe.Sizeof(float64(0))
	return x0 < y0+uintptr(len(y))*w && y0 < x0+uintptr(len(x))*w
}

// PanelBatch computes tall products dst = a·b by splitting the rows into
// panels of sel.PanelRows and running them as one BatchedMulInto batch, so
// each B panel is packed once instead of once per mc sweep and the pool
// fan-out sees the whole batch. The zero value is ready to use; the panel
// headers are recycled across calls, so a PanelBatch owned by a streaming
// loop adds nothing to the steady-state allocation count.
type PanelBatch struct {
	dsts, as []*Dense
	dstHdr   []Dense
	aHdr     []Dense
}

// MulInto computes dst = a*b with the same contract as mat.MulInto. Products
// of sel.PanelRows rows or fewer are delegated to MulInto unchanged.
func (pb *PanelBatch) MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(dimPanic("Mul", a, b))
	}
	checkDims("MulInto", dst, a.rows, b.cols)
	m := a.rows
	pr := sel.PanelRows
	n := b.cols
	// Split only into full panels — the ragged remainder merges into the
	// last one — and only when a full panel clears the naive-route cutoff.
	// Every panel then takes the blocked path, and because PanelRows is a
	// multiple of mcBlock the panels' mc sweeps partition the rows exactly
	// as the unsplit product's would: the result matches MulInto bit for
	// bit, so wiring a PanelBatch into a hot loop never perturbs numerics.
	nPanels := m / pr
	if nPanels < 2 || pr*a.cols*n <= sel.SmallFlops {
		MulInto(dst, a, b)
		return
	}
	pb.ensure(nPanels)
	for p := 0; p < nPanels; p++ {
		r0 := p * pr
		r1 := r0 + pr
		if p == nPanels-1 {
			r1 = m
		}
		dst.ViewRows(r0, r1, &pb.dstHdr[p])
		a.ViewRows(r0, r1, &pb.aHdr[p])
		pb.dsts[p] = &pb.dstHdr[p]
		pb.as[p] = &pb.aHdr[p]
	}
	BatchedMulInto(pb.dsts[:nPanels], pb.as[:nPanels], b)
}

func (pb *PanelBatch) ensure(n int) {
	if cap(pb.dstHdr) < n {
		pb.dstHdr = make([]Dense, n)
		pb.aHdr = make([]Dense, n)
		pb.dsts = make([]*Dense, n)
		pb.as = make([]*Dense, n)
	}
	pb.dstHdr = pb.dstHdr[:n]
	pb.aHdr = pb.aHdr[:n]
	pb.dsts = pb.dsts[:n]
	pb.as = pb.as[:n]
}
