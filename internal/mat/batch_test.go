package mat

import (
	"math/rand"
	"testing"
)

// mustPanic asserts fn panics; the batched entry points promise loud
// validation failures rather than corrupted output.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestBatchedMatchesSequential is the batched path's core contract: for
// every kernel and a mix of small (naive-route), large (blocked-route) and
// ragged items, BatchedMulInto must be bit-identical to calling MulInto on
// each item in sequence.
func TestBatchedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	// Row counts chosen to mix naive-route items (tiny), blocked items, and
	// odd/prime rows that exercise ragged edge tiles inside a batch.
	rowSets := [][]int{
		{4},
		{64, 64, 64},
		{1, 128, 7},
		{97, 3, 211, 1, 50},
	}
	for _, name := range AvailableKernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			restore, ok := ForceKernel(name)
			if !ok {
				t.Fatalf("ForceKernel(%q) failed", name)
			}
			defer restore()
			for _, rows := range rowSets {
				for _, kn := range [][2]int{{17, 5}, {64, 10}, {256, 8}, {3, 1}} {
					k, n := kn[0], kn[1]
					b := randomDense(k, n, rng)
					as := make([]*Dense, len(rows))
					dsts := make([]*Dense, len(rows))
					want := make([]*Dense, len(rows))
					for i, m := range rows {
						as[i] = randomDense(m, k, rng)
						dsts[i] = New(m, n)
						dsts[i].Fill(-1) // stale contents must be overwritten
						want[i] = New(m, n)
						MulInto(want[i], as[i], b)
					}
					BatchedMulInto(dsts, as, b)
					for i := range rows {
						if !bitIdentical(dsts[i], want[i]) {
							t.Errorf("rows=%v k=%d n=%d item %d: batched result is not bit-identical to sequential MulInto (maxdiff %g)",
								rows, k, n, i, maxAbsDiff(dsts[i], want[i]))
						}
					}
				}
			}
		})
	}
}

func bitIdentical(a, b *Dense) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// TestBatchedEdgeShapes covers degenerate batches: empty batch, zero-row
// items, k == 0 (result must be zeroed), and 1×1 everything.
func TestBatchedEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	BatchedMulInto(nil, nil, New(3, 3)) // empty batch: no-op

	// Zero inner dimension zeroes the destinations.
	d := New(4, 3)
	d.Fill(9)
	BatchedMulInto([]*Dense{d}, []*Dense{New(4, 0)}, New(0, 3))
	if d.MaxAbs() != 0 {
		t.Error("k=0 batch did not zero the destination")
	}

	// A zero-row item coexists with real ones.
	b := randomDense(5, 4, rng)
	a1, a2 := New(0, 5), randomDense(7, 5, rng)
	d1, d2 := New(0, 4), New(7, 4)
	want := New(7, 4)
	MulInto(want, a2, b)
	BatchedMulInto([]*Dense{d1, d2}, []*Dense{a1, a2}, b)
	if !bitIdentical(d2, want) {
		t.Error("batch with a zero-row item mangled its neighbor")
	}

	one := randomDense(1, 1, rng)
	dd := New(1, 1)
	BatchedMulInto([]*Dense{dd}, []*Dense{one}, randomDense(1, 1, rng))
}

// TestBatchedValidation checks the loud-failure contract: length mismatch,
// dimension mismatches and destination aliasing all panic.
func TestBatchedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := randomDense(6, 4, rng)
	a := randomDense(10, 6, rng)
	d := New(10, 4)

	mustPanic(t, "length mismatch", func() {
		BatchedMulInto([]*Dense{d}, []*Dense{a, a}, b)
	})
	mustPanic(t, "inner-dim mismatch", func() {
		BatchedMulInto([]*Dense{d}, []*Dense{randomDense(10, 5, rng)}, b)
	})
	mustPanic(t, "destination shape mismatch", func() {
		BatchedMulInto([]*Dense{New(10, 3)}, []*Dense{a}, b)
	})
	mustPanic(t, "dst aliases operand", func() {
		sq := randomDense(6, 6, rng)
		BatchedMulInto([]*Dense{sq}, []*Dense{sq}, randomDense(6, 6, rng))
	})
	mustPanic(t, "dst aliases b", func() {
		sq := randomDense(6, 6, rng)
		BatchedMulInto([]*Dense{sq}, []*Dense{randomDense(6, 6, rng)}, sq)
	})
	mustPanic(t, "dst aliases dst", func() {
		BatchedMulInto([]*Dense{d, d}, []*Dense{a, a}, b)
	})
	mustPanic(t, "overlapping views alias", func() {
		big := New(20, 4)
		var v1, v2 Dense
		big.ViewRows(0, 12, &v1)
		big.ViewRows(8, 20, &v2) // rows 8–11 shared
		BatchedMulInto([]*Dense{&v1, &v2},
			[]*Dense{randomDense(12, 6, rng), randomDense(12, 6, rng)}, b)
	})

	// Disjoint views of one backing array are legitimate panel batches and
	// must NOT trip the alias detector.
	big := New(20, 4)
	var v1, v2 Dense
	big.ViewRows(0, 10, &v1)
	big.ViewRows(10, 20, &v2)
	BatchedMulInto([]*Dense{&v1, &v2},
		[]*Dense{randomDense(10, 6, rng), randomDense(10, 6, rng)}, b)
}

// TestViewRows pins the aliasing view contract.
func TestViewRows(t *testing.T) {
	m := New(6, 3)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	var v Dense
	m.ViewRows(2, 5, &v)
	if r, c := v.Dims(); r != 3 || c != 3 {
		t.Fatalf("view shape %dx%d, want 3x3", r, c)
	}
	if v.At(0, 1) != 21 {
		t.Errorf("view At(0,1) = %g, want 21", v.At(0, 1))
	}
	v.Set(0, 0, -1)
	if m.At(2, 0) != -1 {
		t.Error("write through view not visible in parent")
	}
	m.ViewRows(0, 0, &v) // empty view is fine
	if !v.IsEmpty() {
		t.Error("empty view not empty")
	}
	mustPanic(t, "out-of-range view", func() { m.ViewRows(4, 7, &v) })
	mustPanic(t, "inverted view", func() { m.ViewRows(3, 2, &v) })
}

// TestPanelBatchMatchesMulInto checks the row-panel splitter against the
// unsplit product across the panel boundary: below, at, just above, and at
// several panels plus a ragged tail. PanelRows is a multiple of mcBlock, so
// blocked-path results must be bit-identical.
func TestPanelBatchMatchesMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var pb PanelBatch
	pr := sel.PanelRows
	for _, m := range []int{1, 8, pr - 1, pr, pr + 1, 2*pr + 37, 3 * pr} {
		for _, kn := range [][2]int{{32, 8}, {96, 12}, {17, 3}} {
			k, n := kn[0], kn[1]
			a := randomDense(m, k, rng)
			b := randomDense(k, n, rng)
			want := New(m, n)
			MulInto(want, a, b)
			got := New(m, n)
			got.Fill(5)
			pb.MulInto(got, a, b)
			if !bitIdentical(got, want) {
				t.Errorf("m=%d k=%d n=%d: PanelBatch not bit-identical to MulInto (maxdiff %g)",
					m, k, n, maxAbsDiff(got, want))
			}
		}
	}
	mustPanic(t, "PanelBatch dim mismatch", func() {
		pb.MulInto(New(4, 4), randomDense(4, 3, rng), randomDense(5, 4, rng))
	})
}

// TestPanelBatchSteadyStateAllocs proves the recycled headers work: after
// the first call, repeated same-shape PanelBatch products allocate nothing.
func TestPanelBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts; bench-gate enforces this in a normal build")
	}
	rng := rand.New(rand.NewSource(3))
	var pb PanelBatch
	m := 3*sel.PanelRows + 17
	a := randomDense(m, 64, rng)
	b := randomDense(64, 10, rng)
	out := New(m, 10)
	for i := 0; i < 4; i++ {
		pb.MulInto(out, a, b) // warm-up: headers + every worker's pack buffer
	}
	allocs := testing.AllocsPerRun(10, func() {
		pb.MulInto(out, a, b)
	})
	if allocs != 0 {
		t.Errorf("steady-state PanelBatch.MulInto allocates %.0f times per call, want 0", allocs)
	}
}

// BenchmarkBatchedSkinny is the bench-gate entry for the batched path: a
// steady-state panel batch over a tall-skinny mode update (the streaming
// engine's dominant shape). The gate requires 0 allocs/op.
func BenchmarkBatchedSkinny(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var pb PanelBatch
	const m, k, n = 4096, 48, 16
	a := randomDense(m, k, rng)
	rhs := randomDense(k, n, rng)
	out := New(m, n)
	pb.MulInto(out, a, rhs) // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.MulInto(out, a, rhs)
	}
}

// BenchmarkBatchedVsSequential reports the packing saving directly: the same
// 8-item skinny batch through BatchedMulInto and through sequential MulInto.
func BenchmarkBatchedVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	const items, m, k, n = 8, 512, 48, 16
	as := make([]*Dense, items)
	dsts := make([]*Dense, items)
	for i := range as {
		as[i] = randomDense(m, k, rng)
		dsts[i] = New(m, n)
	}
	rhs := randomDense(k, n, rng)
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BatchedMulInto(dsts, as, rhs)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range as {
				MulInto(dsts[j], as[j], rhs)
			}
		}
	})
}
