package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMulSquare256(b *testing.B) {
	x := benchMatrix(256, 256, 1)
	y := benchMatrix(256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
	b.SetBytes(int64(8 * 256 * 256))
}

func BenchmarkMulTallSkinny(b *testing.B) {
	// The library's dominant shape: very tall times small.
	x := benchMatrix(16384, 64, 3)
	y := benchMatrix(64, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulTransAGram(b *testing.B) {
	// Gram matrix formation AᵀA, the method-of-snapshots kernel.
	x := benchMatrix(8192, 96, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTransA(x, x)
	}
}

func BenchmarkTranspose(b *testing.B) {
	x := benchMatrix(1024, 512, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.T()
	}
}

func BenchmarkHStack(b *testing.B) {
	x := benchMatrix(4096, 32, 7)
	y := benchMatrix(4096, 32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HStack(x, y)
	}
}

func BenchmarkFroNorm(b *testing.B) {
	x := benchMatrix(2048, 256, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.FroNorm()
	}
}
