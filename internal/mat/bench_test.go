package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMulSquare256(b *testing.B) {
	b.ReportAllocs()
	x := benchMatrix(256, 256, 1)
	y := benchMatrix(256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
	b.SetBytes(int64(8 * 256 * 256))
}

func BenchmarkMulSquare512(b *testing.B) {
	b.ReportAllocs()
	x := benchMatrix(512, 512, 10)
	y := benchMatrix(512, 512, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
	b.SetBytes(int64(8 * 512 * 512))
}

func BenchmarkMulIntoSquare256(b *testing.B) {
	// The allocation-free entry point the streaming hot paths use.
	b.ReportAllocs()
	x := benchMatrix(256, 256, 12)
	y := benchMatrix(256, 256, 13)
	out := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(out, x, y)
	}
}

func BenchmarkMulTallSkinny(b *testing.B) {
	b.ReportAllocs()
	// The library's dominant shape: very tall times small.
	x := benchMatrix(16384, 64, 3)
	y := benchMatrix(64, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulTransAGram(b *testing.B) {
	b.ReportAllocs()
	// Gram matrix formation AᵀA, the method-of-snapshots kernel.
	x := benchMatrix(8192, 96, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTransA(x, x)
	}
}

func BenchmarkTranspose(b *testing.B) {
	b.ReportAllocs()
	x := benchMatrix(1024, 512, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.T()
	}
}

func BenchmarkHStack(b *testing.B) {
	b.ReportAllocs()
	x := benchMatrix(4096, 32, 7)
	y := benchMatrix(4096, 32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HStack(x, y)
	}
}

func BenchmarkFroNorm(b *testing.B) {
	b.ReportAllocs()
	x := benchMatrix(2048, 256, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.FroNorm()
	}
}
