// Package mat implements the dense, row-major, float64 matrix kernels that
// every other subsystem of goparsvd builds on.
//
// The package deliberately mirrors the small slice of NumPy that PyParSVD
// uses: construction, slicing, stacking, transposition, matrix products and
// norms. Matrices own their backing storage; slicing operations copy, so a
// Dense value can always be mutated without aliasing surprises.
//
// The matrix product (gemm.go) is a cache-blocked, packed GEMM: operand
// panels are copied into micro-tile-ordered buffers sized for L1/L2, the
// inner loop is a register micro-kernel dispatched per CPU and per shape
// (kernel.go: AVX-512 and AVX2/FMA assembly on amd64, NEON on arm64, an
// unrolled pure-Go kernel everywhere, overridable with PARSVD_NOASM and
// PARSVD_KERNEL), and large products fan their A-panel blocks out to a
// persistent worker pool (pool.go) instead of spawning goroutines per
// call. Batches of products sharing a right-hand side go through
// BatchedMulInto (batch.go), which packs each B panel once per batch. Hot
// paths use the allocation-free *Into entry points together with a
// Workspace (workspace.go), a buffer pool that lets iterative algorithms
// reuse every temporary across iterations.
package mat

import (
	"fmt"
	"math"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Dense values returned by the
// constructors in this package own their backing slice.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed r×c matrix. It panics if r or c is negative.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps the given row-major backing slice in a Dense without
// copying. The caller must not reuse data afterwards. It panics unless
// len(data) == r*c.
func NewFromData(r, c int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying the
// contents. It panics if the rows are ragged.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged row %d: len %d, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// NewDiag returns the len(d)×len(d) diagonal matrix with d on the diagonal.
func NewDiag(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// IsEmpty reports whether the matrix has zero elements.
func (m *Dense) IsEmpty() bool { return m.rows == 0 || m.cols == 0 }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds for %dx%d", i, j, m.rows, m.cols))
	}
}

// RawData returns the backing row-major slice. Mutating it mutates the
// matrix. Intended for I/O and message packing, not numerics.
func (m *Dense) RawData() []float64 { return m.data }

// RowView returns row i as a slice aliasing the matrix storage.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of bounds for %dx%d", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	row := make([]float64, m.cols)
	copy(row, m.RowView(i))
	return row
}

// SetRow copies v into row i. It panics unless len(v) == Cols().
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.RowView(i), v)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of bounds for %dx%d", j, m.rows, m.cols))
	}
	col := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		col[i] = m.data[i*m.cols+j]
	}
	return col
}

// SetCol copies v into column j. It panics unless len(v) == Rows().
func (m *Dense) SetCol(j int, v []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of bounds for %dx%d", j, m.rows, m.cols))
	}
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src. The dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d vs %dx%d",
			m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	m.TInto(out)
	return out
}

// TInto writes the transpose of m into dst without allocating. dst must be
// Cols()×Rows() and must not alias m.
func (m *Dense) TInto(dst *Dense) {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(fmt.Sprintf("mat: TInto destination is %dx%d, want %dx%d",
			dst.rows, dst.cols, m.cols, m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst.data[j*m.rows+i] = v
		}
	}
}

// Slice returns a copy of the submatrix with rows [r0,r1) and columns
// [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || r0 > r1 || c0 < 0 || c1 > m.cols || c0 > c1 {
		panic(fmt.Sprintf("mat: slice [%d:%d,%d:%d] out of bounds for %dx%d",
			r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SliceCols returns a copy of columns [c0,c1).
func (m *Dense) SliceCols(c0, c1 int) *Dense { return m.Slice(0, m.rows, c0, c1) }

// SliceColsInto copies columns [c0,c1) into dst without allocating. dst
// must be Rows()×(c1−c0).
func (m *Dense) SliceColsInto(dst *Dense, c0, c1 int) {
	if c0 < 0 || c1 > m.cols || c0 > c1 {
		panic(fmt.Sprintf("mat: slice [%d:%d] out of bounds for %dx%d",
			c0, c1, m.rows, m.cols))
	}
	if dst.rows != m.rows || dst.cols != c1-c0 {
		panic(fmt.Sprintf("mat: SliceColsInto destination is %dx%d, want %dx%d",
			dst.rows, dst.cols, m.rows, c1-c0))
	}
	for i := 0; i < m.rows; i++ {
		copy(dst.data[i*dst.cols:(i+1)*dst.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
}

// SliceRows returns a copy of rows [r0,r1).
func (m *Dense) SliceRows(r0, r1 int) *Dense { return m.Slice(r0, r1, 0, m.cols) }

// ViewRows overwrites view with a no-copy window onto rows [r0,r1) of m.
// Unlike SliceRows this aliases the receiver's storage: writes through
// either header are visible to both, and the view becomes invalid if the
// parent's storage is replaced. Reusing one Dense header across calls keeps
// row-panel iteration (batch.go) allocation-free.
func (m *Dense) ViewRows(r0, r1 int, view *Dense) {
	if r0 < 0 || r1 > m.rows || r0 > r1 {
		panic(fmt.Sprintf("mat: view [%d:%d] out of bounds for %dx%d",
			r0, r1, m.rows, m.cols))
	}
	view.rows = r1 - r0
	view.cols = m.cols
	view.data = m.data[r0*m.cols : r1*m.cols : r1*m.cols]
}

// ColMatrix returns column j as an m×1 matrix.
func (m *Dense) ColMatrix(j int) *Dense {
	return NewFromData(m.rows, 1, m.Col(j))
}

// Diag returns the main diagonal as a slice.
func (m *Dense) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.data[i*m.cols+i]
	}
	return d
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element to 0.
func (m *Dense) Zero() { m.Fill(0) }

// String renders small matrices fully and large ones as a summary; it exists
// for debugging and test failure messages.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d, fro=%.6g)", m.rows, m.cols, m.FroNorm())
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.6g", m.data[i*m.cols+j])
		}
	}
	return s + "]"
}

// FroNorm returns the Frobenius norm, computed with scaling to avoid
// overflow.
func (m *Dense) FroNorm() float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if av := math.Abs(v); av > max {
			max = av
		}
	}
	return max
}

// ColNorm returns the Euclidean norm of column j.
func (m *Dense) ColNorm(j int) float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of bounds for %dx%d", j, m.rows, m.cols))
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		v := m.data[i*m.cols+j]
		s += v * v
	}
	return math.Sqrt(s)
}
