package mat

import (
	"math"
	"testing"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = %d,%d, want 3,4", r, c)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("Rows/Cols = %d,%d, want 3,4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromDataOwnership(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromData(2, 3, d)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("NewFromData layout wrong: %v", m)
	}
	d[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("NewFromData must wrap without copying")
	}
}

func TestNewFromDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewFromData(2, 3, []float64{1, 2, 3})
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("unexpected dims %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g, want 6", m.At(2, 1))
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestNewFromRowsEmpty(t *testing.T) {
	m := NewFromRows(nil)
	if !m.IsEmpty() {
		t.Fatal("empty row set should give empty matrix")
	}
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestNewDiag(t *testing.T) {
	m := NewDiag([]float64{2, 3})
	want := NewFromRows([][]float64{{2, 0}, {0, 3}})
	if !EqualApprox(m, want, 0) {
		t.Fatalf("NewDiag = %v, want %v", m, want)
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("Set/At roundtrip failed: %g", m.At(1, 0))
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowViewAliases(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	row := m.RowView(1)
	row[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("RowView must alias matrix storage")
	}
}

func TestRowCopies(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	row := m.Row(1)
	row[0] = 42
	if m.At(1, 0) != 3 {
		t.Fatal("Row must copy")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(2, []float64{9, 8})
	if m.At(0, 0) != 1 || m.At(0, 2) != 9 || m.At(1, 2) != 8 {
		t.Fatalf("SetRow/SetCol wrong: %v", m)
	}
}

func TestColRoundTrip(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 || col[2] != 6 {
		t.Fatalf("Col(1) = %v", col)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestCopyFrom(t *testing.T) {
	m := New(2, 2)
	src := NewFromRows([][]float64{{1, 2}, {3, 4}})
	m.CopyFrom(src)
	if !EqualApprox(m, src, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestCopyFromDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom dim mismatch did not panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 2))
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims %dx%d, want 3x2", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !EqualApprox(m, m.T().T(), 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestSlice(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := NewFromRows([][]float64{{4, 5}, {7, 8}})
	if !EqualApprox(s, want, 0) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
	// Slices copy: mutating the slice must not touch the source.
	s.Set(0, 0, -1)
	if m.At(1, 0) != 4 {
		t.Fatal("Slice must copy")
	}
}

func TestSliceColsRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.SliceCols(1, 3); !EqualApprox(got, NewFromRows([][]float64{{2, 3}, {5, 6}}), 0) {
		t.Fatalf("SliceCols wrong: %v", got)
	}
	if got := m.SliceRows(1, 2); !EqualApprox(got, NewFromRows([][]float64{{4, 5, 6}}), 0) {
		t.Fatalf("SliceRows wrong: %v", got)
	}
}

func TestSliceOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds slice did not panic")
		}
	}()
	New(2, 2).Slice(0, 3, 0, 1)
}

func TestColMatrix(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	cm := m.ColMatrix(1)
	if cm.Rows() != 2 || cm.Cols() != 1 || cm.At(0, 0) != 2 || cm.At(1, 0) != 4 {
		t.Fatalf("ColMatrix wrong: %v", cm)
	}
}

func TestDiag(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	d := m.Diag()
	if len(d) != 2 || d[0] != 1 || d[1] != 5 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestFillZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFroNorm(t *testing.T) {
	m := NewFromRows([][]float64{{3, 4}})
	if got := m.FroNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FroNorm = %g, want 5", got)
	}
}

func TestFroNormOverflowSafe(t *testing.T) {
	m := NewFromRows([][]float64{{1e200, 1e200}})
	want := 1e200 * math.Sqrt(2)
	if got := m.FroNorm(); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("FroNorm overflowed: %g, want %g", got, want)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewFromRows([][]float64{{-7, 2}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g, want 7", got)
	}
}

func TestColNorm(t *testing.T) {
	m := NewFromRows([][]float64{{3, 0}, {4, 2}})
	if got := m.ColNorm(0); math.Abs(got-5) > 1e-15 {
		t.Fatalf("ColNorm(0) = %g, want 5", got)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Fatal("String() of small matrix empty")
	}
	large := New(100, 100)
	if large.String() == "" {
		t.Fatal("String() of large matrix empty")
	}
}
