package mat

// Blocked, packed GEMM in the BLIS/GotoBLAS style. The operand panels are
// copied ("packed") into contiguous, micro-tile-ordered buffers sized for
// the cache hierarchy, and the innermost computation is an mr×nr = 8×4
// register micro-kernel (AVX2/FMA assembly on amd64, unrolled Go
// elsewhere). Both transposed variants are handled at packing time, so a
// single macro/micro kernel serves Mul, MulTransA and MulTransB. Large
// products split their A-panel (row) blocks across the persistent worker
// pool in pool.go.
//
// Loop structure (jc → pc → ic → ir → jr), with C accumulated across pc:
//
//	for jc over columns of C, step nc:          B panel → L3
//	  for pc over the inner dimension, step kc: pack B(kc×nc)
//	    for ic over rows of C, step mc:         pack A(mc×kc) → L2
//	      for ir over mc, step 8:               A micro-panel
//	        for jr over nc, step 4:             8×4 register tile

const (
	// mr×nr is the register micro-tile. The AVX2/FMA assembly kernel
	// (gemm_amd64.s) keeps the 8×4 C tile in eight YMM accumulators; the
	// portable Go kernel covers the same strip as two 4×4 halves.
	mr = 8
	nr = 4

	// kcBlock × nr doubles (8 KiB) is the B micro-panel the inner loop
	// streams from L1; mcBlock × kcBlock doubles (256 KiB) is the packed A
	// panel that should stay L2-resident.
	kcBlock = 256
	mcBlock = 128
	ncBlock = 512

	// smallGemmFlops is the m·k·n product below which packing overhead
	// outweighs the micro-kernel win and a plain i-k-j loop is faster.
	smallGemmFlops = 16 * 16 * 16
)

// gemm computes out = op(a)·op(b), overwriting out. op is the identity or
// the transpose according to transA/transB. out must not alias a or b.
func gemm(out, a, b *Dense, transA, transB bool) {
	m, n := out.rows, out.cols
	k := a.cols
	if transA {
		k = a.rows
	}
	if m == 0 || n == 0 {
		return
	}
	zeroFloats(out.data)
	if k == 0 {
		return
	}
	if m*n*k <= smallGemmFlops {
		gemmSmall(out, a, b, transA, transB)
		return
	}

	bbuf := getPackBuf()
	defer putPackBuf(bbuf)
	abuf := getPackBuf()
	defer putPackBuf(abuf)

	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			bp := bbuf.grow(roundUp(nc, nr) * kc)
			packB(bp, b, pc, kc, jc, nc, transB)
			dispatchRows(out, a, bp, pc, kc, jc, nc, transA, abuf)
		}
	}
}

// gemmSmall is the naive i-k-j product used when the operands are too small
// to amortize packing.
func gemmSmall(out, a, b *Dense, transA, transB bool) {
	m, n := out.rows, out.cols
	k := a.cols
	if transA {
		k = a.rows
	}
	for i := 0; i < m; i++ {
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			var av float64
			if transA {
				av = a.data[p*a.cols+i]
			} else {
				av = a.data[i*a.cols+p]
			}
			if av == 0 {
				continue
			}
			if transB {
				for j := 0; j < n; j++ {
					orow[j] += av * b.data[j*b.cols+p]
				}
			} else {
				brow := b.data[p*b.cols : p*b.cols+n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// packA copies the mc×kc block of op(a) starting at row ic, column pc into
// ap, grouped in mr-row strips stored k-major: ap[strip*kc*mr + k*mr + r].
// Rows beyond mc are zero-padded so the micro-kernel never branches on m.
func packA(ap []float64, a *Dense, ic, mc, pc, kc int, transA bool) {
	lda := a.cols
	for ir := 0; ir < mc; ir += mr {
		dst := ap[(ir/mr)*kc*mr : (ir/mr+1)*kc*mr]
		rows := min(mr, mc-ir)
		for r := 0; r < rows; r++ {
			if transA {
				// op(a)[ic+ir+r, pc+k] = a[pc+k, ic+ir+r]: strided read.
				idx := pc*lda + (ic + ir + r)
				for kk := 0; kk < kc; kk++ {
					dst[kk*mr+r] = a.data[idx]
					idx += lda
				}
			} else {
				src := a.data[(ic+ir+r)*lda+pc : (ic+ir+r)*lda+pc+kc]
				for kk, v := range src {
					dst[kk*mr+r] = v
				}
			}
		}
		for r := rows; r < mr; r++ {
			for kk := 0; kk < kc; kk++ {
				dst[kk*mr+r] = 0
			}
		}
	}
}

// packB copies the kc×nc block of op(b) starting at row pc, column jc into
// bp, grouped in nr-column strips stored k-major: bp[strip*kc*nr + k*nr + c].
// Columns beyond nc are zero-padded.
func packB(bp []float64, b *Dense, pc, kc, jc, nc int, transB bool) {
	ldb := b.cols
	for jr := 0; jr < nc; jr += nr {
		dst := bp[(jr/nr)*kc*nr : (jr/nr+1)*kc*nr]
		cols := min(nr, nc-jr)
		if !transB && cols == nr {
			for kk := 0; kk < kc; kk++ {
				src := b.data[(pc+kk)*ldb+jc+jr:]
				d := dst[kk*nr : kk*nr+nr]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for c := 0; c < cols; c++ {
			if transB {
				// op(b)[pc+k, jc+jr+c] = b[jc+jr+c, pc+k]: contiguous read.
				src := b.data[(jc+jr+c)*ldb+pc : (jc+jr+c)*ldb+pc+kc]
				for kk, v := range src {
					dst[kk*nr+c] = v
				}
			} else {
				idx := pc*ldb + (jc + jr + c)
				for kk := 0; kk < kc; kk++ {
					dst[kk*nr+c] = b.data[idx]
					idx += ldb
				}
			}
		}
		for c := cols; c < nr; c++ {
			for kk := 0; kk < kc; kk++ {
				dst[kk*nr+c] = 0
			}
		}
	}
}

// macroKernel accumulates the packed panels into C: the jr loop walks B
// micro-panels (L1-resident across the ir loop), the ir loop walks A strips.
// Each micro-kernel invocation computes one mr×nr product tile into a stack
// buffer, which is then masked-added into C — the same write-back path for
// the assembly and portable kernels.
func macroKernel(out *Dense, ap, bp []float64, ic, mc, jc, nc, kc int) {
	var tile [mr * nr]float64
	for ir := 0; ir < mc; ir += mr {
		app := ap[(ir/mr)*kc*mr : (ir/mr+1)*kc*mr]
		rows := min(mr, mc-ir)
		for jr := 0; jr < nc; jr += nr {
			bpp := bp[(jr/nr)*kc*nr : (jr/nr+1)*kc*nr]
			cols := min(nr, nc-jr)
			if useFMA {
				microFMA8x4(kc, &app[0], &bpp[0], &tile[0])
			} else {
				microGo8x4(kc, app, bpp, &tile)
			}
			addTile(out, &tile, ic+ir, jc+jr, rows, cols)
		}
	}
}

// microGo8x4 is the portable micro-kernel: the 8×4 strip is covered as two
// register-resident 4×4 halves so the accumulators stay out of memory.
func microGo8x4(kc int, ap, bp []float64, tile *[mr * nr]float64) {
	for half := 0; half < 2; half++ {
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		ai := half * 4
		bi := 0
		for k := 0; k < kc; k++ {
			a0, a1, a2, a3 := ap[ai], ap[ai+1], ap[ai+2], ap[ai+3]
			b0, b1, b2, b3 := bp[bi], bp[bi+1], bp[bi+2], bp[bi+3]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
			ai += mr
			bi += nr
		}
		o := half * 4 * nr
		tile[o+0], tile[o+1], tile[o+2], tile[o+3] = c00, c01, c02, c03
		tile[o+4], tile[o+5], tile[o+6], tile[o+7] = c10, c11, c12, c13
		tile[o+8], tile[o+9], tile[o+10], tile[o+11] = c20, c21, c22, c23
		tile[o+12], tile[o+13], tile[o+14], tile[o+15] = c30, c31, c32, c33
	}
}

// addTile accumulates the rows×cols valid region of a computed micro-tile
// into C at (i0, j0).
func addTile(out *Dense, tile *[mr * nr]float64, i0, j0, rows, cols int) {
	ldc := out.cols
	if cols == nr {
		for i := 0; i < rows; i++ {
			c := out.data[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+nr : (i0+i)*ldc+j0+nr]
			c[0] += tile[i*nr]
			c[1] += tile[i*nr+1]
			c[2] += tile[i*nr+2]
			c[3] += tile[i*nr+3]
		}
		return
	}
	for i := 0; i < rows; i++ {
		crow := out.data[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+cols]
		for j := 0; j < cols; j++ {
			crow[j] += tile[i*nr+j]
		}
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
