package mat

// Blocked, packed GEMM in the BLIS/GotoBLAS style. The operand panels are
// copied ("packed") into contiguous, micro-tile-ordered buffers sized for
// the cache hierarchy, and the innermost computation is an mr×nr register
// micro-kernel selected per shape from the kernels the CPU supports
// (kernel.go): AVX-512 and AVX2/FMA assembly on amd64, NEON assembly on
// arm64, an unrolled pure-Go strip kernel everywhere. Both transposed
// variants are handled at packing time, so a single macro/micro kernel
// serves Mul, MulTransA and MulTransB. Large products split their A-panel
// (row) blocks across the persistent worker pool in pool.go; batches of
// products sharing a right-hand side go through batch.go, which packs each
// B panel once for the whole batch.
//
// Loop structure (jc → pc → ic → ir → jr), with C accumulated across pc:
//
//	for jc over columns of C, step nc:          B panel → L3
//	  for pc over the inner dimension, step kc: pack B(kc×nc)
//	    for ic over rows of C, step mc:         pack A(mc×kc) → L2
//	      for ir over mc, step mr:              A micro-panel
//	        for jr over nc, step nr:            mr×nr register tile
const (
	// kcBlock × nr doubles is the B micro-panel the inner loop streams
	// from L1; mcBlock × kcBlock doubles (256 KiB) is the packed A panel
	// that should stay L2-resident.
	kcBlock = 256
	mcBlock = 128
	ncBlock = 512
)

// gemm computes out = op(a)·op(b), overwriting out. op is the identity or
// the transpose according to transA/transB. out must not alias a or b.
func gemm(out, a, b *Dense, transA, transB bool) {
	m, n := out.rows, out.cols
	k := a.cols
	if transA {
		k = a.rows
	}
	if m == 0 || n == 0 {
		return
	}
	zeroFloats(out.data)
	if k == 0 {
		return
	}
	if m*n*k <= sel.SmallFlops {
		gemmSmall(out, a, b, transA, transB)
		return
	}
	gemmBlocked(out, a, b, transA, transB)
}

// gemmBlocked is the packed path, taken unconditionally: BlockedMulInto
// (the tuning entry point) and gemm (above the naive cutoff) both land
// here.
func gemmBlocked(out, a, b *Dense, transA, transB bool) {
	n := out.cols
	k := a.cols
	if transA {
		k = a.rows
	}
	kern := kernFor(n)

	bbuf := getPackBuf()
	defer putPackBuf(bbuf)
	abuf := getPackBuf()
	defer putPackBuf(abuf)

	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			bp := bbuf.grow(roundUp(nc, kern.nr) * kc)
			packB(bp, kern.nr, b, pc, kc, jc, nc, transB)
			dispatchRows(out, a, kern, bp, pc, kc, jc, nc, transA, abuf)
		}
	}
}

// BlockedMulInto computes dst = a*b through the packed micro-kernel path
// regardless of the naive-loop cutoff. It is the tuning and testing entry
// point: cmd/parsvd-benchtune measures the packed path against the naive
// reference with it to locate the SmallFlops crossover, and the edge-tile
// tests drive sub-cutoff shapes through the blocked code with it.
func BlockedMulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(dimPanic("Mul", a, b))
	}
	checkDims("BlockedMulInto", dst, a.rows, b.cols)
	if dst.rows == 0 || dst.cols == 0 {
		return
	}
	zeroFloats(dst.data)
	if a.cols == 0 {
		return
	}
	gemmBlocked(dst, a, b, false, false)
}

// RefMulInto computes dst = a*b with the naive i-k-j reference loop,
// unconditionally. It is the ground truth the kernel parity suite and
// cmd/parsvd-benchtune compare every micro-kernel path against.
func RefMulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(dimPanic("Mul", a, b))
	}
	checkDims("RefMulInto", dst, a.rows, b.cols)
	zeroFloats(dst.data)
	gemmSmall(dst, a, b, false, false)
}

// gemmSmall is the naive i-k-j product used when the operands are too small
// to amortize packing.
func gemmSmall(out, a, b *Dense, transA, transB bool) {
	m, n := out.rows, out.cols
	k := a.cols
	if transA {
		k = a.rows
	}
	for i := 0; i < m; i++ {
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			var av float64
			if transA {
				av = a.data[p*a.cols+i]
			} else {
				av = a.data[i*a.cols+p]
			}
			if av == 0 {
				continue
			}
			if transB {
				for j := 0; j < n; j++ {
					orow[j] += av * b.data[j*b.cols+p]
				}
			} else {
				brow := b.data[p*b.cols : p*b.cols+n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// packA copies the mc×kc block of op(a) starting at row ic, column pc into
// ap, grouped in mr-row strips stored k-major: ap[strip*kc*mr + k*mr + r].
// Rows beyond mc are zero-padded so the micro-kernel never branches on m.
func packA(ap []float64, mr int, a *Dense, ic, mc, pc, kc int, transA bool) {
	lda := a.cols
	for ir := 0; ir < mc; ir += mr {
		dst := ap[(ir/mr)*kc*mr : (ir/mr+1)*kc*mr]
		rows := min(mr, mc-ir)
		for r := 0; r < rows; r++ {
			if transA {
				// op(a)[ic+ir+r, pc+k] = a[pc+k, ic+ir+r]: strided read.
				idx := pc*lda + (ic + ir + r)
				for kk := 0; kk < kc; kk++ {
					dst[kk*mr+r] = a.data[idx]
					idx += lda
				}
			} else {
				src := a.data[(ic+ir+r)*lda+pc : (ic+ir+r)*lda+pc+kc]
				for kk, v := range src {
					dst[kk*mr+r] = v
				}
			}
		}
		for r := rows; r < mr; r++ {
			for kk := 0; kk < kc; kk++ {
				dst[kk*mr+r] = 0
			}
		}
	}
}

// packB copies the kc×nc block of op(b) starting at row pc, column jc into
// bp, grouped in nr-column strips stored k-major: bp[strip*kc*nr + k*nr + c].
// Columns beyond nc are zero-padded.
func packB(bp []float64, nr int, b *Dense, pc, kc, jc, nc int, transB bool) {
	ldb := b.cols
	for jr := 0; jr < nc; jr += nr {
		dst := bp[(jr/nr)*kc*nr : (jr/nr+1)*kc*nr]
		cols := min(nr, nc-jr)
		if !transB && cols == nr && nr == 4 {
			for kk := 0; kk < kc; kk++ {
				src := b.data[(pc+kk)*ldb+jc+jr:]
				d := dst[kk*nr : kk*nr+nr]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		if !transB && cols == nr {
			for kk := 0; kk < kc; kk++ {
				copy(dst[kk*nr:kk*nr+nr], b.data[(pc+kk)*ldb+jc+jr:(pc+kk)*ldb+jc+jr+nr])
			}
			continue
		}
		for c := 0; c < cols; c++ {
			if transB {
				// op(b)[pc+k, jc+jr+c] = b[jc+jr+c, pc+k]: contiguous read.
				src := b.data[(jc+jr+c)*ldb+pc : (jc+jr+c)*ldb+pc+kc]
				for kk, v := range src {
					dst[kk*nr+c] = v
				}
			} else {
				idx := pc*ldb + (jc + jr + c)
				for kk := 0; kk < kc; kk++ {
					dst[kk*nr+c] = b.data[idx]
					idx += ldb
				}
			}
		}
		for c := cols; c < nr; c++ {
			for kk := 0; kk < kc; kk++ {
				dst[kk*nr+c] = 0
			}
		}
	}
}

// macroKernel accumulates the packed panels into C: the jr loop walks B
// micro-panels (L1-resident across the ir loop), the ir loop walks A strips.
// Each micro-kernel invocation computes one mr×nr product tile into the
// caller's reused tile buffer, which is then masked-added into C — the same
// write-back path for every assembly kernel and the portable one. Tile
// geometry comes from the dispatched kernelCfg, never from package constants.
func macroKernel(out *Dense, kern *kernelCfg, ap, bp []float64, ic, mc, jc, nc, kc int, tile *[maxMR * maxNR]float64) {
	mr, nr := kern.mr, kern.nr
	for ir := 0; ir < mc; ir += mr {
		app := ap[(ir/mr)*kc*mr : (ir/mr+1)*kc*mr]
		rows := min(mr, mc-ir)
		for jr := 0; jr < nc; jr += nr {
			bpp := bp[(jr/nr)*kc*nr : (jr/nr+1)*kc*nr]
			cols := min(nr, nc-jr)
			kern.micro(kc, app, bpp, tile)
			addTile(out, tile, nr, ic+ir, jc+jr, rows, cols)
		}
	}
}

// addTile accumulates the rows×cols valid region of a computed micro-tile
// (row-major with stride nr) into C at (i0, j0).
func addTile(out *Dense, tile *[maxMR * maxNR]float64, nr, i0, j0, rows, cols int) {
	ldc := out.cols
	if cols == 4 && nr == 4 {
		for i := 0; i < rows; i++ {
			c := out.data[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+4 : (i0+i)*ldc+j0+4]
			c[0] += tile[i*4]
			c[1] += tile[i*4+1]
			c[2] += tile[i*4+2]
			c[3] += tile[i*4+3]
		}
		return
	}
	if cols == 8 && nr == 8 {
		for i := 0; i < rows; i++ {
			c := out.data[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+8 : (i0+i)*ldc+j0+8]
			t := tile[i*8 : i*8+8 : i*8+8]
			c[0] += t[0]
			c[1] += t[1]
			c[2] += t[2]
			c[3] += t[3]
			c[4] += t[4]
			c[5] += t[5]
			c[6] += t[6]
			c[7] += t[7]
		}
		return
	}
	for i := 0; i < rows; i++ {
		crow := out.data[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+cols]
		for j := 0; j < cols; j++ {
			crow[j] += tile[i*nr+j]
		}
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
