//go:build amd64 && !purego

package mat

// useFMA routes the micro-kernel to the AVX2/FMA assembly in gemm_amd64.s
// when the CPU and OS support it; otherwise the portable Go kernel runs.
var useFMA = hasAVX2FMA()

// hasAVX2FMA reports whether the processor supports AVX2 and FMA3 and the
// OS has enabled YMM state saving (implemented in gemm_amd64.s).
func hasAVX2FMA() bool

// microFMA8x4 computes the 8×4 product tile dst = Ap·Bp over kc packed
// k-steps: ap is an 8-row strip (k-major, 8 doubles per k), bp a 4-column
// strip (k-major, 4 doubles per k), dst a 32-double row-major tile
// (implemented in gemm_amd64.s).
//
//go:noescape
func microFMA8x4(kc int, ap, bp, dst *float64)
