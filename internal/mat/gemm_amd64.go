//go:build amd64 && !purego

package mat

// hasAVX2FMA reports whether the processor supports AVX2 and FMA3 and the
// OS has enabled YMM state saving (implemented in gemm_amd64.s).
func hasAVX2FMA() bool

// hasAVX512F reports whether the processor supports AVX-512F and the OS
// has enabled ZMM and opmask state saving (implemented in gemm_amd64.s).
func hasAVX512F() bool

// microFMA8x4 computes the 8×4 product tile dst = Ap·Bp over kc packed
// k-steps: ap is an 8-row strip (k-major, 8 doubles per k), bp a 4-column
// strip (k-major, 4 doubles per k), dst a row-major tile with stride 4
// (implemented in gemm_amd64.s).
//
//go:noescape
func microFMA8x4(kc int, ap, bp, dst *float64)

// microAVX512F8x8 computes the 8×8 product tile dst = Ap·Bp over kc packed
// k-steps: ap is an 8-row strip (k-major, 8 doubles per k), bp an 8-column
// strip (k-major, 8 doubles per k), dst a row-major tile with stride 8
// (implemented in gemm_amd64.s).
//
//go:noescape
func microAVX512F8x8(kc int, ap, bp, dst *float64)

func microAVX2(kc int, ap, bp []float64, tile *[maxMR * maxNR]float64) {
	microFMA8x4(kc, &ap[0], &bp[0], &tile[0])
}

func microAVX512(kc int, ap, bp []float64, tile *[maxMR * maxNR]float64) {
	microAVX512F8x8(kc, &ap[0], &bp[0], &tile[0])
}

// archKernels returns the assembly kernels this CPU supports, best-first.
// The AVX-512 kernel's narrow sibling is the AVX2 8×4 kernel: for skinny
// right-hand sides the selection table (seltab_gen.go) routes products
// below SkinnyN output columns to it, because a 8-wide tile wastes most of
// its lanes on edge strips there.
func archKernels() []*kernelCfg {
	var ks []*kernelCfg
	var avx2 *kernelCfg
	if hasAVX2FMA() {
		avx2 = &kernelCfg{name: "avx2-8x4", mr: 8, nr: 4, micro: microAVX2}
	}
	if hasAVX512F() {
		ks = append(ks, &kernelCfg{name: "avx512-8x8", mr: 8, nr: 8, micro: microAVX512, narrow: avx2})
	}
	if avx2 != nil {
		ks = append(ks, avx2)
	}
	return ks
}
