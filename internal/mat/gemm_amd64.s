//go:build amd64 && !purego

#include "textflag.h"

// func hasAVX2FMA() bool
//
// CPUID leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28);
// XGETBV(0): XMM|YMM state enabled by the OS (bits 1-2);
// CPUID leaf 7 EBX: AVX2 (bit 5).
TEXT ·hasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  notsupported
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  notsupported
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   notsupported
	MOVB $1, ret+0(FP)
	RET

notsupported:
	MOVB $0, ret+0(FP)
	RET

// func hasAVX512F() bool
//
// CPUID leaf 1 ECX: OSXSAVE (bit 27);
// XGETBV(0): XMM|YMM (bits 1-2) plus opmask|ZMM_Hi256|Hi16_ZMM (bits 5-7)
// state enabled by the OS (mask 0xe6);
// CPUID leaf 7 EBX: AVX512F (bit 16).
TEXT ·hasAVX512F(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX
	JZ    no512
	XORL  CX, CX
	XGETBV
	ANDL  $0xe6, AX
	CMPL  AX, $0xe6
	JNE   no512
	MOVL  $7, AX
	XORL  CX, CX
	CPUID
	TESTL $(1<<16), BX
	JZ    no512
	MOVB  $1, ret+0(FP)
	RET

no512:
	MOVB $0, ret+0(FP)
	RET

// func microFMA8x4(kc int, ap, bp, dst *float64)
//
// One 8×4 micro-tile of the blocked GEMM: ap holds an 8-row packed A strip
// (8 doubles per k-step), bp a 4-column packed B strip (4 doubles per
// k-step). The 8×4 C tile lives in Y0–Y7 (row i in Y_i); every k-step is
// one B-vector load plus eight broadcast-FMAs. The finished tile is stored
// row-major to dst (8 rows × 4 doubles = 32 doubles).
TEXT ·microFMA8x4(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ dst+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    store

loop:
	VMOVUPD (DI), Y8              // b[0:4] for this k-step

	VBROADCASTSD 0(SI), Y9
	VBROADCASTSD 8(SI), Y10
	VFMADD231PD  Y8, Y9, Y0
	VFMADD231PD  Y8, Y10, Y1
	VBROADCASTSD 16(SI), Y11
	VBROADCASTSD 24(SI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y8, Y12, Y3
	VBROADCASTSD 32(SI), Y9
	VBROADCASTSD 40(SI), Y10
	VFMADD231PD  Y8, Y9, Y4
	VFMADD231PD  Y8, Y10, Y5
	VBROADCASTSD 48(SI), Y11
	VBROADCASTSD 56(SI), Y12
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y8, Y12, Y7

	ADDQ $64, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

store:
	VMOVUPD Y0, 0(DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func microAVX512F8x8(kc int, ap, bp, dst *float64)
//
// One 8×8 micro-tile: ap holds an 8-row packed A strip (8 doubles per
// k-step), bp an 8-column packed B strip (8 doubles per k-step). The 8×8 C
// tile lives in Z0–Z7 (row i in Z_i); every k-step is one 64-byte B-vector
// load plus eight broadcast-FMAs. Only AVX-512F instructions are used
// (VPXORQ zeroes the accumulators because VXORPD on ZMM would need
// AVX-512DQ), so the CPUID gate above requires the F subset alone. The
// finished tile is stored row-major to dst (8 rows × 8 doubles).
TEXT ·microAVX512F8x8(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ dst+24(FP), DX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

	TESTQ CX, CX
	JZ    store512

loop512:
	VMOVUPD (DI), Z8              // b[0:8] for this k-step

	VBROADCASTSD 0(SI), Z9
	VBROADCASTSD 8(SI), Z10
	VFMADD231PD  Z8, Z9, Z0
	VFMADD231PD  Z8, Z10, Z1
	VBROADCASTSD 16(SI), Z11
	VBROADCASTSD 24(SI), Z12
	VFMADD231PD  Z8, Z11, Z2
	VFMADD231PD  Z8, Z12, Z3
	VBROADCASTSD 32(SI), Z9
	VBROADCASTSD 40(SI), Z10
	VFMADD231PD  Z8, Z9, Z4
	VFMADD231PD  Z8, Z10, Z5
	VBROADCASTSD 48(SI), Z11
	VBROADCASTSD 56(SI), Z12
	VFMADD231PD  Z8, Z11, Z6
	VFMADD231PD  Z8, Z12, Z7

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop512

store512:
	VMOVUPD Z0, 0(DX)
	VMOVUPD Z1, 64(DX)
	VMOVUPD Z2, 128(DX)
	VMOVUPD Z3, 192(DX)
	VMOVUPD Z4, 256(DX)
	VMOVUPD Z5, 320(DX)
	VMOVUPD Z6, 384(DX)
	VMOVUPD Z7, 448(DX)
	VZEROUPPER
	RET
