//go:build arm64 && !purego

package mat

// microNEON8x4Asm computes the 8×4 product tile dst = Ap·Bp over kc packed
// k-steps: ap is an 8-row strip (k-major, 8 doubles per k), bp a 4-column
// strip (k-major, 4 doubles per k), dst a row-major tile with stride 4
// (implemented in gemm_arm64.s).
//
//go:noescape
func microNEON8x4Asm(kc int, ap, bp, dst *float64)

func microNEON(kc int, ap, bp []float64, tile *[maxMR * maxNR]float64) {
	microNEON8x4Asm(kc, &ap[0], &bp[0], &tile[0])
}

// archKernels returns the NEON kernel. Advanced SIMD (NEON) with
// double-precision FMLA is architecturally mandatory on AArch64, so no
// runtime feature probe is needed — the kernel is gated only by the
// PARSVD_NOASM / PARSVD_KERNEL overrides and the purego build tag.
func archKernels() []*kernelCfg {
	return []*kernelCfg{{name: "neon-8x4", mr: 8, nr: 4, micro: microNEON}}
}
