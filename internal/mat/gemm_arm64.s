//go:build arm64 && !purego

#include "textflag.h"

// func microNEON8x4Asm(kc int, ap, bp, dst *float64)
//
// One 8×4 micro-tile of the blocked GEMM on NEON (Advanced SIMD): ap holds
// an 8-row packed A strip (8 doubles per k-step), bp a 4-column packed B
// strip (4 doubles per k-step). The 8×4 C tile lives in V0–V15 as 2-lane
// float64 vectors — row i occupies V(2i) (columns 0:2) and V(2i+1)
// (columns 2:4). Every k-step loads the 4 B doubles into V16–V17 and the
// 8 A doubles into V20–V23, broadcasts each A lane with VDUP into V24–V31
// (the Go assembler has no by-element FMLA form), and issues 16 vector
// FMLAs. The finished tile is stored row-major to dst (32 doubles),
// matching the write-back layout of the portable and amd64 kernels.
TEXT ·microNEON8x4Asm(SB), NOSPLIT, $0-32
	MOVD kc+0(FP), R0
	MOVD ap+8(FP), R1
	MOVD bp+16(FP), R2
	MOVD dst+24(FP), R3

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

	CBZ R0, store

loop:
	VLD1.P 32(R2), [V16.D2, V17.D2]                   // b[0:4] for this k-step
	VLD1.P 64(R1), [V20.D2, V21.D2, V22.D2, V23.D2]   // a[0:8] for this k-step

	VDUP V20.D[0], V24.D2
	VDUP V20.D[1], V25.D2
	VDUP V21.D[0], V26.D2
	VDUP V21.D[1], V27.D2
	VDUP V22.D[0], V28.D2
	VDUP V22.D[1], V29.D2
	VDUP V23.D[0], V30.D2
	VDUP V23.D[1], V31.D2

	VFMLA V24.D2, V16.D2, V0.D2    // row 0
	VFMLA V24.D2, V17.D2, V1.D2
	VFMLA V25.D2, V16.D2, V2.D2    // row 1
	VFMLA V25.D2, V17.D2, V3.D2
	VFMLA V26.D2, V16.D2, V4.D2    // row 2
	VFMLA V26.D2, V17.D2, V5.D2
	VFMLA V27.D2, V16.D2, V6.D2    // row 3
	VFMLA V27.D2, V17.D2, V7.D2
	VFMLA V28.D2, V16.D2, V8.D2    // row 4
	VFMLA V28.D2, V17.D2, V9.D2
	VFMLA V29.D2, V16.D2, V10.D2   // row 5
	VFMLA V29.D2, V17.D2, V11.D2
	VFMLA V30.D2, V16.D2, V12.D2   // row 6
	VFMLA V30.D2, V17.D2, V13.D2
	VFMLA V31.D2, V16.D2, V14.D2   // row 7
	VFMLA V31.D2, V17.D2, V15.D2

	SUB  $1, R0, R0
	CBNZ R0, loop

store:
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R3)
	VST1.P [V4.D2, V5.D2, V6.D2, V7.D2], 64(R3)
	VST1.P [V8.D2, V9.D2, V10.D2, V11.D2], 64(R3)
	VST1   [V12.D2, V13.D2, V14.D2, V15.D2], (R3)
	RET
