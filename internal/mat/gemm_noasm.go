//go:build !amd64 || purego

package mat

// Without the AVX2/FMA assembly kernel every micro-tile runs through the
// portable Go kernel.
const useFMA = false

func microFMA8x4(kc int, ap, bp, dst *float64) {
	panic("mat: microFMA8x4 called without assembly support")
}
