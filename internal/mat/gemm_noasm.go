//go:build (!amd64 && !arm64) || purego

package mat

// archKernels: no assembly kernels on this platform/build; every product
// runs through the portable Go reference kernel.
func archKernels() []*kernelCfg { return nil }
