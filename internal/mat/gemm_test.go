package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The naive i-k-j kernels below are the retained reference implementations
// the blocked GEMM is property-tested against: any packing, tiling or
// edge-masking bug shows up as a mismatch beyond accumulation roundoff.

func refMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	n, p := a.cols, b.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for k, av := range arow {
			brow := b.data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func refMulTransA(a, b *Dense) *Dense { return refMul(a.T(), b) }

func refMulTransB(a, b *Dense) *Dense { return refMul(a, b.T()) }

// relTol scales the comparison tolerance by the operand magnitudes and the
// inner-dimension length, the standard backward-error yardstick for a
// reordered summation.
func relTol(k int, a, b *Dense) float64 {
	scale := a.MaxAbs() * b.MaxAbs() * float64(k+1)
	if scale < 1 {
		scale = 1
	}
	return 1e-13 * scale
}

func maxAbsDiff(a, b *Dense) float64 {
	d := 0.0
	for i, v := range a.data {
		if ad := math.Abs(v - b.data[i]); ad > d {
			d = ad
		}
	}
	return d
}

// TestGEMMMatchesNaiveReference sweeps randomized and adversarial shapes —
// 1×1, primes straddling the 4×4 micro-tile and the mc/kc/nc cache blocks,
// m≫n and n≫m panels — through all three product variants and checks the
// blocked kernel against the naive reference within 1e-13 (scaled).
func TestGEMMMatchesNaiveReference(t *testing.T) {
	shapes := [][3]int{
		// m, k, n: tiny and sub-micro-tile edges.
		{1, 1, 1}, {1, 7, 1}, {2, 3, 5}, {3, 4, 3}, {4, 4, 4}, {5, 5, 5},
		// Primes around the mr/nr = 4 tile and the small-product cutoff.
		{13, 17, 19}, {31, 29, 37}, {41, 43, 47},
		// Straddling the kc=256/mc=128 block boundaries.
		{127, 257, 63}, {129, 255, 65}, {128, 256, 4}, {260, 130, 520},
		// Tall-skinny and short-fat panels (the library's dominant shapes).
		{1024, 17, 11}, {997, 64, 10}, {8, 16, 512}, {3, 500, 3},
	}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := randomDense(m, k, rng)
			b := randomDense(k, n, rng)
			tol := relTol(k, a, b)
			if d := maxAbsDiff(Mul(a, b), refMul(a, b)); d > tol {
				t.Errorf("Mul diverges from reference by %g (tol %g)", d, tol)
			}
			at := randomDense(k, m, rng)
			tol = relTol(k, at, b)
			if d := maxAbsDiff(MulTransA(at, b), refMulTransA(at, b)); d > tol {
				t.Errorf("MulTransA diverges from reference by %g (tol %g)", d, tol)
			}
			bt := randomDense(n, k, rng)
			tol = relTol(k, a, bt)
			if d := maxAbsDiff(MulTransB(a, bt), refMulTransB(a, bt)); d > tol {
				t.Errorf("MulTransB diverges from reference by %g (tol %g)", d, tol)
			}
		})
	}
}

// TestGEMMRandomizedShapes fuzzes dimensions to hit arbitrary edge-tile
// combinations that the fixed table above may miss.
func TestGEMMRandomizedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(90)
		k := 1 + rng.Intn(90)
		n := 1 + rng.Intn(90)
		a := randomDense(m, k, rng)
		b := randomDense(k, n, rng)
		tol := relTol(k, a, b)
		if d := maxAbsDiff(Mul(a, b), refMul(a, b)); d > tol {
			t.Fatalf("trial %d (%dx%dx%d): Mul diverges by %g (tol %g)", trial, m, k, n, d, tol)
		}
	}
}

// TestGEMMBlockedPathDirect drives the packed kernel below the small-product
// cutoff, where Mul would route to the naive loop, so edge tiles of every
// size are exercised in the blocked code itself — on every kernel this CPU
// can run.
func TestGEMMBlockedPathDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, name := range AvailableKernels() {
		restore, ok := ForceKernel(name)
		if !ok {
			t.Fatalf("ForceKernel(%q) refused an advertised kernel", name)
		}
		for _, sh := range [][3]int{{1, 1, 1}, {2, 5, 3}, {4, 4, 4}, {7, 11, 13}, {5, 3, 17}} {
			m, k, n := sh[0], sh[1], sh[2]
			a := randomDense(m, k, rng)
			b := randomDense(k, n, rng)
			out := New(m, n)
			BlockedMulInto(out, a, b)
			if d := maxAbsDiff(out, refMul(a, b)); d > relTol(k, a, b) {
				t.Errorf("%s %dx%dx%d: blocked kernel diverges by %g", name, m, k, n, d)
			}
		}
		restore()
	}
}

// BenchmarkMulSquare512Naive times the retained reference kernel on the
// same workload as BenchmarkMulSquare512, so `go test -bench MulSquare512`
// reports the blocked kernel's speedup directly.
func BenchmarkMulSquare512Naive(b *testing.B) {
	b.ReportAllocs()
	x := randomDense(512, 512, rand.New(rand.NewSource(10)))
	y := randomDense(512, 512, rand.New(rand.NewSource(11)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refMul(x, y)
	}
}

// TestIntoVariantsMatchAllocating pins the *Into entry points to their
// allocating counterparts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomDense(23, 17, rng)
	b := randomDense(17, 29, rng)
	out := New(23, 29)
	out.Fill(3.5) // stale contents must be overwritten
	MulInto(out, a, b)
	if !EqualApprox(out, Mul(a, b), 0) {
		t.Error("MulInto != Mul")
	}

	d := make([]float64, 17)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	sd := New(23, 17)
	MulDiagInto(sd, a, d)
	if !EqualApprox(sd, MulDiag(a, d), 0) {
		t.Error("MulDiagInto != MulDiag")
	}
	MulDiagScaledInto(sd, 0.5, a, d)
	if !EqualApprox(sd, Scale(0.5, MulDiag(a, d)), 1e-15) {
		t.Error("MulDiagScaledInto != 0.5·MulDiag")
	}

	sc := New(23, 17)
	ScaleInto(sc, -2, a)
	if !EqualApprox(sc, Scale(-2, a), 0) {
		t.Error("ScaleInto != Scale")
	}

	h := New(23, 17+17)
	HStackInto(h, a, nil, sc)
	if !EqualApprox(h, HStack(a, sc), 0) {
		t.Error("HStackInto != HStack")
	}
}

// TestWorkspaceReuse checks the buffer pool recycles matching storage and
// that a nil workspace degrades to plain allocation.
func TestWorkspaceReuse(t *testing.T) {
	var ws Workspace
	m := ws.Get(8, 8)
	m.Fill(1)
	ws.Put(m)
	m2 := ws.Get(4, 16) // same capacity, different shape
	if r, c := m2.Dims(); r != 4 || c != 16 {
		t.Fatalf("recycled matrix has shape %dx%d", r, c)
	}
	if m2.MaxAbs() != 0 {
		t.Error("Workspace.Get returned a non-zeroed matrix")
	}
	u := ws.GetUninit(2, 2)
	if r, c := u.Dims(); r != 2 || c != 2 {
		t.Fatalf("GetUninit shape %dx%d", r, c)
	}

	f := ws.GetFloats(10)
	if len(f) != 10 {
		t.Fatalf("GetFloats length %d", len(f))
	}
	ws.PutFloats(f)
	ix := ws.GetInts(5)
	if len(ix) != 5 {
		t.Fatalf("GetInts length %d", len(ix))
	}
	ws.PutInts(ix)

	var nilWS *Workspace
	n := nilWS.Get(3, 3)
	if r, c := n.Dims(); r != 3 || c != 3 {
		t.Fatal("nil workspace Get failed")
	}
	nilWS.Put(n) // must be a no-op, not a crash
	nilWS.PutFloats(nilWS.GetFloats(4))
	nilWS.PutInts(nilWS.GetInts(4))
}
