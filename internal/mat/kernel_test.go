package mat

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// The kernel parity suite: every micro-kernel this CPU can run — AVX-512,
// AVX2, NEON or the pure-Go reference — must agree with the naive i-k-j
// product on every shape class the packing and edge-masking code
// distinguishes. CI runs this file three ways: natively (assembly kernels),
// under PARSVD_NOASM=1 (fallback-parity job) and under qemu-aarch64 (the
// arm64 job), so each ISA path is exercised by at least one job.

// parityShapes are the adversarial (m, k, n) triples: sub-tile, odd, prime,
// single-row/column, tile-exact and block-straddling.
var parityShapes = [][3]int{
	{1, 1, 1}, {1, 1, 8}, {1, 7, 1}, {7, 1, 7},
	{2, 3, 5}, {3, 4, 3}, {5, 5, 5},
	{8, 8, 8}, {16, 16, 16}, {8, 256, 8},
	{13, 17, 19}, {31, 29, 37}, {41, 43, 47}, {53, 59, 61},
	{127, 257, 63}, {129, 255, 65}, {128, 256, 9},
	{1, 300, 300}, {300, 300, 1}, {300, 1, 300},
	{997, 64, 10}, {8, 16, 513}, {3, 500, 3},
}

// TestKernelParityAllISAs forces each available kernel in turn and checks
// the packed path against RefMulInto at every parity shape, for the plain,
// transposed-A and transposed-B variants.
func TestKernelParityAllISAs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for _, name := range AvailableKernels() {
		name := name
		t.Run(name, func(t *testing.T) {
			restore, ok := ForceKernel(name)
			if !ok {
				t.Fatalf("ForceKernel(%q) refused an advertised kernel", name)
			}
			defer restore()
			if got := KernelName(); got != name {
				t.Fatalf("KernelName() = %q after ForceKernel(%q)", got, name)
			}
			for _, sh := range parityShapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := randomDense(m, k, rng)
				b := randomDense(k, n, rng)
				want := New(m, n)
				RefMulInto(want, a, b)
				tol := relTol(k, a, b)

				got := New(m, n)
				BlockedMulInto(got, a, b)
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("%dx%dx%d: blocked diverges from reference by %g (tol %g)", m, k, n, d, tol)
				}

				// The dispatching entry points must agree too (they may
				// legitimately take the naive route below the cutoff).
				MulInto(got, a, b)
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("%dx%dx%d: MulInto diverges by %g (tol %g)", m, k, n, d, tol)
				}
				at := a.T()
				MulTransAInto(got, at, b)
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("%dx%dx%d: MulTransA diverges by %g (tol %g)", m, k, n, d, tol)
				}
				bt := b.T()
				MulTransBInto(got, a, bt)
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("%dx%dx%d: MulTransB diverges by %g (tol %g)", m, k, n, d, tol)
				}
			}
		})
	}
}

// TestKernelListInvariants pins the dispatch contract: the pure-Go kernel is
// always available and always last, and the active kernel is one of the
// advertised ones.
func TestKernelListInvariants(t *testing.T) {
	names := AvailableKernels()
	if len(names) == 0 {
		t.Fatal("no kernels available")
	}
	if names[len(names)-1] != "go-8x4" {
		t.Errorf("last kernel is %q, want the pure-Go reference", names[len(names)-1])
	}
	active := KernelName()
	found := false
	for _, n := range names {
		if n == active {
			found = true
		}
	}
	if !found {
		t.Errorf("active kernel %q not in available set %v", active, names)
	}
}

// TestNoasmOverride asserts the PARSVD_NOASM seam: when the fallback-parity
// CI job sets it, the process must be running the pure-Go kernel.
func TestNoasmOverride(t *testing.T) {
	if os.Getenv("PARSVD_NOASM") != "1" {
		t.Skip("PARSVD_NOASM not set; the fallback-parity CI job runs this")
	}
	if got := KernelName(); got != "go-8x4" {
		t.Fatalf("PARSVD_NOASM=1 but active kernel is %q", got)
	}
}

// TestPickKernel unit-tests process-level selection without touching the
// environment.
func TestPickKernel(t *testing.T) {
	hw := &kernelCfg{name: "hw"}
	avail := []*kernelCfg{hw, kernGoRef}
	if got := pickKernel(avail, "", false); got != hw {
		t.Errorf("default pick = %q, want best hardware kernel", got.name)
	}
	if got := pickKernel(avail, "", true); got != kernGoRef {
		t.Errorf("noasm pick = %q, want go-8x4", got.name)
	}
	if got := pickKernel(avail, "go-8x4", false); got != kernGoRef {
		t.Errorf("named pick = %q, want go-8x4", got.name)
	}
	if got := pickKernel(avail, "no-such-kernel", false); got != hw {
		t.Errorf("unavailable pick = %q, want fallback to best", got.name)
	}
	if _, ok := ForceKernel("no-such-kernel"); ok {
		t.Error("ForceKernel accepted an unknown kernel name")
	}
}

// TestKernForSkinnyFallback checks the shape-level narrow-tile fallback for
// kernels that declare one.
func TestKernForSkinnyFallback(t *testing.T) {
	for _, k := range availKernels {
		if k.narrow == nil {
			continue
		}
		restore, _ := ForceKernel(k.name)
		if got := kernFor(sel.SkinnyN - 1); got != k.narrow {
			t.Errorf("%s: kernFor(%d) = %s, want narrow fallback %s",
				k.name, sel.SkinnyN-1, got.name, k.narrow.name)
		}
		if got := kernFor(sel.SkinnyN); got != k {
			t.Errorf("%s: kernFor(%d) = %s, want the wide kernel",
				k.name, sel.SkinnyN, got.name)
		}
		restore()
	}
}

// TestSelectionTableCoverage ensures every kernel that can be dispatched has
// sane thresholds, whether from a generated entry or the defaults.
func TestSelectionTableCoverage(t *testing.T) {
	for _, name := range append(AvailableKernels(), "unknown-kernel") {
		p := selFor(name)
		if p.SmallFlops <= 0 || p.SkinnyN <= 0 || p.ParallelFlops <= 0 ||
			p.PanelRows <= 0 || p.BatchSpanFlops <= 0 {
			t.Errorf("%s: selection entry has non-positive threshold: %+v", name, p)
		}
		if p.PanelRows%mcBlock != 0 {
			t.Errorf("%s: PanelRows = %d is not a multiple of mcBlock = %d "+
				"(panel splits would change blocked-path results)", name, p.PanelRows, mcBlock)
		}
	}
}

// BenchmarkKernels times the 256² product on every kernel this CPU can run,
// so one bench run reports the ISA ladder directly.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randomDense(256, 256, rng)
	y := randomDense(256, 256, rng)
	out := New(256, 256)
	for _, name := range AvailableKernels() {
		b.Run(fmt.Sprintf("%s/256", name), func(b *testing.B) {
			restore, _ := ForceKernel(name)
			defer restore()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				BlockedMulInto(out, x, y)
			}
		})
	}
}
