package mat

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelFlopThreshold is the approximate flop count above which Mul spreads
// the row blocks of the output across goroutines. Below it the scheduling
// overhead dominates any speedup.
const parallelFlopThreshold = 1 << 20

// Add returns a + b. It panics on dimension mismatch.
func Add(a, b *Dense) *Dense {
	checkSameDims("Add", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b. It panics on dimension mismatch.
func Sub(a, b *Dense) *Dense {
	checkSameDims("Sub", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(s float64, a *Dense) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// AddScaled returns a + s*b. It panics on dimension mismatch.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	checkSameDims("AddScaled", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + s*b.data[i]
	}
	return out
}

func checkSameDims(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d",
			op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b. The inner loops are arranged in i-k-j
// order so the innermost traversal is contiguous in both b and the output;
// large products are split row-wise across goroutines.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Dense) {
	flops := a.rows * a.cols * b.cols
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelFlopThreshold || workers < 2 || a.rows < 2*workers {
		mulRows(out, a, b, 0, a.rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= a.rows {
			break
		}
		r1 := r0 + chunk
		if r1 > a.rows {
			r1 = a.rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			mulRows(out, a, b, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// mulRows computes rows [r0,r1) of out = a*b.
func mulRows(out, a, b *Dense, r0, r1 int) {
	n, p := a.cols, b.cols
	for i := r0; i < r1; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulTransA returns aᵀ*b without materializing the transpose.
func MulTransA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTransA dimension mismatch %dx%d ᵀ* %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	m, n, p := a.rows, a.cols, b.cols
	workers := runtime.GOMAXPROCS(0)
	if m*n*p < parallelFlopThreshold || workers < 2 || n < 2*workers {
		mulTransARows(out, a, b, 0, n)
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		c0 := w * chunk
		if c0 >= n {
			break
		}
		c1 := c0 + chunk
		if c1 > n {
			c1 = n
		}
		wg.Add(1)
		go func(c0, c1 int) {
			defer wg.Done()
			mulTransARows(out, a, b, c0, c1)
		}(c0, c1)
	}
	wg.Wait()
	return out
}

// mulTransARows computes rows [c0,c1) of out = aᵀ*b (rows of out correspond
// to columns of a).
func mulTransARows(out, a, b *Dense, c0, c1 int) {
	m, n, p := a.rows, a.cols, b.cols
	for k := 0; k < m; k++ {
		arow := a.data[k*n : (k+1)*n]
		brow := b.data[k*p : (k+1)*p]
		for i := c0; i < c1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulTransB returns a*bᵀ without materializing the transpose.
func MulTransB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTransB dimension mismatch %dx%d *ᵀ %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	n := a.cols
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*n : (j+1)*n]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MulDiag returns a*diag(d), scaling column j of a by d[j]. It panics unless
// len(d) == a.Cols().
func MulDiag(a *Dense, d []float64) *Dense {
	if len(d) != a.cols {
		panic(fmt.Sprintf("mat: MulDiag length %d, want %d", len(d), a.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			orow[j] = v * d[j]
		}
	}
	return out
}

// DiagMul returns diag(d)*a, scaling row i of a by d[i]. It panics unless
// len(d) == a.Rows().
func DiagMul(d []float64, a *Dense) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: DiagMul length %d, want %d", len(d), a.rows))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			orow[j] = d[i] * v
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x. It panics unless
// len(x) == a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec length %d, want %d", len(x), a.cols))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTrans returns aᵀ*x. It panics unless len(x) == a.Rows().
func MulVecTrans(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulVecTrans length %d, want %d", len(x), a.rows))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// HStack returns the column-wise concatenation [a | b | ...]. All operands
// must have the same number of rows; nil operands are skipped.
func HStack(ms ...*Dense) *Dense {
	var kept []*Dense
	rows := -1
	cols := 0
	for _, m := range ms {
		if m == nil {
			continue
		}
		if rows == -1 {
			rows = m.rows
		} else if m.rows != rows {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, rows))
		}
		cols += m.cols
		kept = append(kept, m)
	}
	if rows == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	off := 0
	for _, m := range kept {
		for i := 0; i < rows; i++ {
			copy(out.data[i*cols+off:i*cols+off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
		}
		off += m.cols
	}
	return out
}

// VStack returns the row-wise concatenation of the operands. All operands
// must have the same number of columns; nil operands are skipped.
func VStack(ms ...*Dense) *Dense {
	var kept []*Dense
	cols := -1
	rows := 0
	for _, m := range ms {
		if m == nil {
			continue
		}
		if cols == -1 {
			cols = m.cols
		} else if m.cols != cols {
			panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", m.cols, cols))
		}
		rows += m.rows
		kept = append(kept, m)
	}
	if cols == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	off := 0
	for _, m := range kept {
		copy(out.data[off*cols:], m.data)
		off += m.rows
	}
	return out
}

// EqualApprox reports whether a and b have the same shape and all elements
// agree within tol.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x with overflow-safe scaling.
func Nrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
