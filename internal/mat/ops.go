package mat

import (
	"fmt"
	"math"
)

// Add returns a + b. It panics on dimension mismatch.
func Add(a, b *Dense) *Dense {
	checkSameDims("Add", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b. It panics on dimension mismatch.
func Sub(a, b *Dense) *Dense {
	checkSameDims("Sub", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(s float64, a *Dense) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// AddScaled returns a + s*b. It panics on dimension mismatch.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	checkSameDims("AddScaled", a, b)
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + s*b.data[i]
	}
	return out
}

func checkSameDims(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d",
			op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b, computed by the blocked GEMM kernel
// in gemm.go.
func Mul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b without allocating. dst must be a.Rows() ×
// b.Cols() and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	checkDims("MulInto", dst, a.rows, b.cols)
	gemm(dst, a, b, false, false)
}

// MulTransA returns aᵀ*b without materializing the transpose.
func MulTransA(a, b *Dense) *Dense {
	out := New(a.cols, b.cols)
	MulTransAInto(out, a, b)
	return out
}

// MulTransAInto computes dst = aᵀ*b without allocating. dst must be
// a.Cols() × b.Cols() and must not alias a or b.
func MulTransAInto(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTransA dimension mismatch %dx%d ᵀ* %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	checkDims("MulTransAInto", dst, a.cols, b.cols)
	gemm(dst, a, b, true, false)
}

// MulTransB returns a*bᵀ without materializing the transpose.
func MulTransB(a, b *Dense) *Dense {
	out := New(a.rows, b.rows)
	MulTransBInto(out, a, b)
	return out
}

// MulTransBInto computes dst = a*bᵀ without allocating. dst must be
// a.Rows() × b.Rows() and must not alias a or b.
func MulTransBInto(dst, a, b *Dense) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTransB dimension mismatch %dx%d *ᵀ %dx%d",
			a.rows, a.cols, b.rows, b.cols))
	}
	checkDims("MulTransBInto", dst, a.rows, b.rows)
	gemm(dst, a, b, false, true)
}

func checkDims(op string, m *Dense, r, c int) {
	if m.rows != r || m.cols != c {
		panic(fmt.Sprintf("mat: %s destination is %dx%d, want %dx%d",
			op, m.rows, m.cols, r, c))
	}
}

func dimPanic(op string, a, b *Dense) string {
	return fmt.Sprintf("mat: %s dimension mismatch %dx%d * %dx%d",
		op, a.rows, a.cols, b.rows, b.cols)
}

// ScaleInto computes dst = s*a without allocating. dst may alias a.
func ScaleInto(dst *Dense, s float64, a *Dense) {
	checkSameDims("ScaleInto", dst, a)
	for i, v := range a.data {
		dst.data[i] = s * v
	}
}

// MulDiag returns a*diag(d), scaling column j of a by d[j]. It panics unless
// len(d) == a.Cols().
func MulDiag(a *Dense, d []float64) *Dense {
	out := New(a.rows, a.cols)
	MulDiagInto(out, a, d)
	return out
}

// MulDiagInto computes dst = a*diag(d) without allocating. dst may alias a.
func MulDiagInto(dst, a *Dense, d []float64) {
	if len(d) != a.cols {
		panic(fmt.Sprintf("mat: MulDiag length %d, want %d", len(d), a.cols))
	}
	checkSameDims("MulDiagInto", dst, a)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			orow[j] = v * d[j]
		}
	}
}

// MulDiagScaledInto computes dst = s*a*diag(d) in one pass — the fused form
// the streaming update uses to fold the forget factor into the column
// scaling without an intermediate matrix. dst may alias a.
func MulDiagScaledInto(dst *Dense, s float64, a *Dense, d []float64) {
	if len(d) != a.cols {
		panic(fmt.Sprintf("mat: MulDiagScaledInto length %d, want %d", len(d), a.cols))
	}
	checkSameDims("MulDiagScaledInto", dst, a)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			orow[j] = s * v * d[j]
		}
	}
}

// DiagMul returns diag(d)*a, scaling row i of a by d[i]. It panics unless
// len(d) == a.Rows().
func DiagMul(d []float64, a *Dense) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: DiagMul length %d, want %d", len(d), a.rows))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			orow[j] = d[i] * v
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x. It panics unless
// len(x) == a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec length %d, want %d", len(x), a.cols))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTrans returns aᵀ*x. It panics unless len(x) == a.Rows().
func MulVecTrans(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulVecTrans length %d, want %d", len(x), a.rows))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// HStack returns the column-wise concatenation [a | b | ...]. All operands
// must have the same number of rows; nil operands are skipped.
func HStack(ms ...*Dense) *Dense {
	var kept []*Dense
	rows := -1
	cols := 0
	for _, m := range ms {
		if m == nil {
			continue
		}
		if rows == -1 {
			rows = m.rows
		} else if m.rows != rows {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, rows))
		}
		cols += m.cols
		kept = append(kept, m)
	}
	if rows == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	hstackInto(out, kept)
	return out
}

// HStackInto writes the column-wise concatenation [a | b | ...] into dst
// without allocating. dst must already have the stacked shape; nil operands
// are skipped. dst must not alias any operand.
func HStackInto(dst *Dense, ms ...*Dense) {
	var keptArr [8]*Dense // avoids a heap allocation for the common arities
	kept := keptArr[:0]
	cols := 0
	for _, m := range ms {
		if m == nil {
			continue
		}
		if m.rows != dst.rows {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, dst.rows))
		}
		cols += m.cols
		kept = append(kept, m)
	}
	if cols != dst.cols {
		panic(fmt.Sprintf("mat: HStackInto destination has %d columns, want %d", dst.cols, cols))
	}
	hstackInto(dst, kept)
}

func hstackInto(dst *Dense, kept []*Dense) {
	rows, cols := dst.rows, dst.cols
	off := 0
	for _, m := range kept {
		for i := 0; i < rows; i++ {
			copy(dst.data[i*cols+off:i*cols+off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
		}
		off += m.cols
	}
}

// VStack returns the row-wise concatenation of the operands. All operands
// must have the same number of columns; nil operands are skipped.
func VStack(ms ...*Dense) *Dense {
	var kept []*Dense
	cols := -1
	rows := 0
	for _, m := range ms {
		if m == nil {
			continue
		}
		if cols == -1 {
			cols = m.cols
		} else if m.cols != cols {
			panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", m.cols, cols))
		}
		rows += m.rows
		kept = append(kept, m)
	}
	if cols == -1 {
		return New(0, 0)
	}
	out := New(rows, cols)
	off := 0
	for _, m := range kept {
		copy(out.data[off*cols:], m.data)
		off += m.rows
	}
	return out
}

// EqualApprox reports whether a and b have the same shape and all elements
// agree within tol.
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x with overflow-safe scaling.
func Nrm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place. It panics on length mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
