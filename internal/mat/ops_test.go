package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSub(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b); !EqualApprox(got, NewFromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a); !EqualApprox(got, NewFromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatalf("Sub wrong: %v", got)
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add dim mismatch did not panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}})
	if got := Scale(3, a); !EqualApprox(got, NewFromRows([][]float64{{3, -6}}), 0) {
		t.Fatalf("Scale wrong: %v", got)
	}
	ScaleInPlace(2, a)
	if a.At(0, 1) != -4 {
		t.Fatalf("ScaleInPlace wrong: %v", a)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewFromRows([][]float64{{1, 1}})
	b := NewFromRows([][]float64{{2, 3}})
	if got := AddScaled(a, 2, b); !EqualApprox(got, NewFromRows([][]float64{{5, 7}}), 0) {
		t.Fatalf("AddScaled wrong: %v", got)
	}
}

func TestMulSmall(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !EqualApprox(got, want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(7, 5, rng)
	if !EqualApprox(Mul(a, Eye(5)), a, 1e-14) {
		t.Fatal("A·I != A")
	}
	if !EqualApprox(Mul(Eye(7), a), a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul dim mismatch did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(4, 6, rng)
	b := randomDense(6, 3, rng)
	c := randomDense(3, 5, rng)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if !EqualApprox(left, right, 1e-12) {
		t.Fatal("(AB)C != A(BC)")
	}
}

func TestMulParallelPathMatchesSerial(t *testing.T) {
	// Large enough to trigger the blocked kernel's pool fan-out; compare
	// against the naive reference kernel directly.
	rng := rand.New(rand.NewSource(3))
	a := randomDense(150, 120, rng)
	b := randomDense(120, 140, rng)
	got := Mul(a, b)
	want := refMul(a, b)
	if !EqualApprox(got, want, 1e-12) {
		t.Fatal("blocked Mul disagrees with naive reference kernel")
	}
}

func TestMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(8, 5, rng)
	b := randomDense(8, 6, rng)
	if !EqualApprox(MulTransA(a, b), Mul(a.T(), b), 1e-12) {
		t.Fatal("MulTransA != Aᵀ·B")
	}
}

func TestMulTransALargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(130, 110, rng)
	b := randomDense(130, 90, rng)
	if !EqualApprox(MulTransA(a, b), Mul(a.T(), b), 1e-11) {
		t.Fatal("parallel MulTransA != Aᵀ·B")
	}
}

func TestMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomDense(6, 7, rng)
	b := randomDense(5, 7, rng)
	if !EqualApprox(MulTransB(a, b), Mul(a, b.T()), 1e-12) {
		t.Fatal("MulTransB != A·Bᵀ")
	}
}

func TestMulDiagDiagMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDense(4, 3, rng)
	d := []float64{2, -1, 0.5}
	if !EqualApprox(MulDiag(a, d), Mul(a, NewDiag(d)), 1e-14) {
		t.Fatal("MulDiag != A·diag(d)")
	}
	e := []float64{3, 1, -2, 0.25}
	if !EqualApprox(DiagMul(e, a), Mul(NewDiag(e), a), 1e-14) {
		t.Fatal("DiagMul != diag(e)·A")
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(a, []float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulVecTrans(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVecTrans(a, []float64{1, 1})
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("MulVecTrans = %v", got)
	}
}

func TestHStack(t *testing.T) {
	a := NewFromRows([][]float64{{1}, {2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	got := HStack(a, b)
	want := NewFromRows([][]float64{{1, 3, 4}, {2, 5, 6}})
	if !EqualApprox(got, want, 0) {
		t.Fatalf("HStack = %v, want %v", got, want)
	}
}

func TestHStackSkipsNil(t *testing.T) {
	a := NewFromRows([][]float64{{1}, {2}})
	got := HStack(nil, a, nil)
	if !EqualApprox(got, a, 0) {
		t.Fatalf("HStack with nils = %v", got)
	}
}

func TestHStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HStack row mismatch did not panic")
		}
	}()
	HStack(New(2, 1), New(3, 1))
}

func TestVStack(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	got := VStack(a, b)
	want := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !EqualApprox(got, want, 0) {
		t.Fatalf("VStack = %v, want %v", got, want)
	}
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VStack col mismatch did not panic")
		}
	}()
	VStack(New(1, 2), New(1, 3))
}

func TestDotAxpyNrm2(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Nrm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Nrm2 = %g, want 5", got)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy wrong: %v", y)
	}
}

func TestNrm2OverflowSafe(t *testing.T) {
	got := Nrm2([]float64{1e200, 1e200})
	want := 1e200 * math.Sqrt(2)
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Nrm2 overflowed: %g", got)
	}
}

// Property: matrix multiplication distributes over addition.
func TestPropertyMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 2+r.Intn(6), 2+r.Intn(6), 2+r.Intn(6)
		a := randomDense(m, k, r)
		b := randomDense(k, n, r)
		c := randomDense(k, n, r)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return EqualApprox(left, right, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestPropertyTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 2+r.Intn(6), 2+r.Intn(6), 2+r.Intn(6)
		a := randomDense(m, k, r)
		b := randomDense(k, n, r)
		return EqualApprox(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-10)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transposition and submultiplicative.
func TestPropertyNormInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 2+r.Intn(6), 2+r.Intn(6)
		a := randomDense(m, n, r)
		b := randomDense(n, m, r)
		if math.Abs(a.FroNorm()-a.T().FroNorm()) > 1e-12 {
			return false
		}
		return Mul(a, b).FroNorm() <= a.FroNorm()*b.FroNorm()+1e-10
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEqualApproxShapes(t *testing.T) {
	if EqualApprox(New(2, 2), New(2, 3), 1) {
		t.Fatal("EqualApprox must reject different shapes")
	}
}

func TestRemainingDimensionMismatchPanics(t *testing.T) {
	a23 := New(2, 3)
	a32 := New(3, 2)
	cases := map[string]func(){
		"Sub":         func() { Sub(a23, a32) },
		"AddScaled":   func() { AddScaled(a23, 2, a32) },
		"MulTransA":   func() { MulTransA(a23, a32) },
		"MulTransB":   func() { MulTransB(a23, New(2, 4)) },
		"MulDiag":     func() { MulDiag(a23, []float64{1, 2}) },
		"DiagMul":     func() { DiagMul([]float64{1, 2, 3}, a23) },
		"MulVec":      func() { MulVec(a23, []float64{1, 2}) },
		"MulVecTrans": func() { MulVecTrans(a23, []float64{1, 2, 3}) },
		"Dot":         func() { Dot([]float64{1}, []float64{1, 2}) },
		"Axpy":        func() { Axpy(1, []float64{1}, []float64{1, 2}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestAccessorPanics(t *testing.T) {
	m := New(2, 3)
	cases := map[string]func(){
		"RowView OOB":   func() { m.RowView(2) },
		"Col OOB":       func() { m.Col(3) },
		"SetRow length": func() { m.SetRow(0, []float64{1}) },
		"SetCol length": func() { m.SetCol(0, []float64{1}) },
		"SetCol OOB":    func() { m.SetCol(5, []float64{1, 2}) },
		"ColNorm OOB":   func() { m.ColNorm(-1) },
		"ColMatrix OOB": func() { m.ColMatrix(9) },
		"Row OOB":       func() { m.Row(-1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestEmptyMatrixOperations(t *testing.T) {
	e := New(0, 0)
	if !e.IsEmpty() {
		t.Fatal("0x0 not empty")
	}
	if e.FroNorm() != 0 || e.MaxAbs() != 0 {
		t.Fatal("empty norms nonzero")
	}
	et := e.T()
	if !et.IsEmpty() {
		t.Fatal("transpose of empty not empty")
	}
	if got := Mul(New(0, 3), New(3, 0)); got.Rows() != 0 || got.Cols() != 0 {
		t.Fatalf("empty product shape %dx%d", got.Rows(), got.Cols())
	}
	// 3x0 times 0x2 gives a 3x2 zero matrix.
	z := Mul(New(3, 0), New(0, 2))
	if z.Rows() != 3 || z.Cols() != 2 || z.MaxAbs() != 0 {
		t.Fatalf("3x0 * 0x2 = %v", z)
	}
}

func TestDiagOnWideAndTall(t *testing.T) {
	wide := NewFromRows([][]float64{{1, 2, 3}})
	if d := wide.Diag(); len(d) != 1 || d[0] != 1 {
		t.Fatalf("wide diag %v", d)
	}
	tall := NewFromRows([][]float64{{1}, {2}})
	if d := tall.Diag(); len(d) != 1 || d[0] != 1 {
		t.Fatalf("tall diag %v", d)
	}
}
