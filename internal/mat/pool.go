package mat

import (
	"runtime"
	"sync"
)

// The kernel worker pool: a fixed set of GOMAXPROCS goroutines started on
// first use that execute A-panel row blocks for every large product in the
// process. Replacing the old per-Mul goroutine spawning with a persistent
// pool removes the per-call spawn/teardown cost from the streaming hot path
// and lets each worker keep a private, warm packing buffer.

// gemmTask is one packed A-panel block of a blocked product. Tasks travel
// by value on the channel, so dispatching allocates nothing. Each task
// carries the kernelCfg it was dispatched with: packing-buffer geometry is
// derived from that kernel's tile constants (an AVX-512 8×8 task and an
// AVX2 8×4 task size their panels differently), and a concurrent kernel
// switch can never tear a product in flight.
type gemmTask struct {
	out, a         *Dense
	kern           *kernelCfg
	bp             []float64
	ic, mc, pc, kc int
	jc, nc         int
	transA         bool
	wg             *sync.WaitGroup
}

func (t *gemmTask) run(buf *packBuf) {
	ap := buf.grow(roundUp(t.mc, t.kern.mr) * t.kc)
	packA(ap, t.kern.mr, t.a, t.ic, t.mc, t.pc, t.kc, t.transA)
	macroKernel(t.out, t.kern, ap, t.bp, t.ic, t.mc, t.jc, t.nc, t.kc, &buf.tile)
}

var kernelPool struct {
	once    sync.Once
	workers int
	tasks   chan gemmTask
}

func startKernelPool() {
	kernelPool.workers = runtime.GOMAXPROCS(0)
	kernelPool.tasks = make(chan gemmTask, 8*kernelPool.workers)
	for w := 0; w < kernelPool.workers; w++ {
		go func() {
			buf := new(packBuf) // private, stays warm across tasks
			for t := range kernelPool.tasks {
				t.run(buf)
				t.wg.Done()
			}
		}()
	}
}

// dispatchRows runs the mc-blocked ic loop of one (jc, pc) panel pair,
// either inline (small problems, single-CPU processes) or fanned out across
// the persistent pool. The fan-out threshold comes from the dispatched
// kernel's selection-table entry.
func dispatchRows(out, a *Dense, kern *kernelCfg, bp []float64, pc, kc, jc, nc int, transA bool, inlineBuf *packBuf) {
	kernelPool.once.Do(startKernelPool)
	m := out.rows
	t := gemmTask{out: out, a: a, kern: kern, bp: bp, pc: pc, kc: kc, jc: jc, nc: nc, transA: transA}
	if kernelPool.workers < 2 || m*nc*kc < sel.ParallelFlops || m <= mcBlock {
		for ic := 0; ic < m; ic += mcBlock {
			t.ic, t.mc = ic, min(mcBlock, m-ic)
			t.run(inlineBuf)
		}
		return
	}
	wg := waitGroupPool.Get().(*sync.WaitGroup)
	t.wg = wg
	for ic := 0; ic < m; ic += mcBlock {
		wg.Add(1)
		t.ic, t.mc = ic, min(mcBlock, m-ic)
		kernelPool.tasks <- t
	}
	wg.Wait()
	waitGroupPool.Put(wg)
}

var waitGroupPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// packBuf is a grow-only scratch buffer for packed operand panels. It also
// hosts the micro-tile accumulator target: the tile must live in reused
// storage because the indirect kern.micro call would otherwise force a
// stack-declared tile to escape — a heap allocation per macro-kernel call,
// which the 0 allocs/op streaming gate forbids.
type packBuf struct {
	data []float64
	tile [maxMR * maxNR]float64
}

// grow returns the first n elements of the buffer, reallocating only when
// the requested panel is larger than anything packed into it before.
func (b *packBuf) grow(n int) []float64 {
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	return b.data[:n]
}

var packBufPool = sync.Pool{New: func() any { return new(packBuf) }}

func getPackBuf() *packBuf  { return packBufPool.Get().(*packBuf) }
func putPackBuf(b *packBuf) { packBufPool.Put(b) }
