package mat

import (
	"runtime"
	"sync"
)

// The kernel worker pool: a fixed set of GOMAXPROCS goroutines started on
// first use that execute A-panel row blocks for every large product in the
// process. Replacing the old per-Mul goroutine spawning with a persistent
// pool removes the per-call spawn/teardown cost from the streaming hot path
// and lets each worker keep a private, warm packing buffer.

// gemmTask is one packed A-panel block of a blocked product. Tasks travel
// by value on the channel, so dispatching allocates nothing.
type gemmTask struct {
	out, a         *Dense
	bp             []float64
	ic, mc, pc, kc int
	jc, nc         int
	transA         bool
	wg             *sync.WaitGroup
}

func (t *gemmTask) run(buf *packBuf) {
	ap := buf.grow(roundUp(t.mc, mr) * t.kc)
	packA(ap, t.a, t.ic, t.mc, t.pc, t.kc, t.transA)
	macroKernel(t.out, ap, t.bp, t.ic, t.mc, t.jc, t.nc, t.kc)
}

var kernelPool struct {
	once    sync.Once
	workers int
	tasks   chan gemmTask
}

func startKernelPool() {
	kernelPool.workers = runtime.GOMAXPROCS(0)
	kernelPool.tasks = make(chan gemmTask, 8*kernelPool.workers)
	for w := 0; w < kernelPool.workers; w++ {
		go func() {
			buf := new(packBuf) // private, stays warm across tasks
			for t := range kernelPool.tasks {
				t.run(buf)
				t.wg.Done()
			}
		}()
	}
}

// parallelFlopThreshold is the approximate flop count above which a product
// is split across the worker pool. Below it the dispatch overhead dominates
// any speedup.
const parallelFlopThreshold = 1 << 20

// dispatchRows runs the mc-blocked ic loop of one (jc, pc) panel pair,
// either inline (small problems, single-CPU processes) or fanned out across
// the persistent pool.
func dispatchRows(out, a *Dense, bp []float64, pc, kc, jc, nc int, transA bool, inlineBuf *packBuf) {
	kernelPool.once.Do(startKernelPool)
	m := out.rows
	t := gemmTask{out: out, a: a, bp: bp, pc: pc, kc: kc, jc: jc, nc: nc, transA: transA}
	if kernelPool.workers < 2 || m*nc*kc < parallelFlopThreshold || m <= mcBlock {
		for ic := 0; ic < m; ic += mcBlock {
			t.ic, t.mc = ic, min(mcBlock, m-ic)
			t.run(inlineBuf)
		}
		return
	}
	wg := waitGroupPool.Get().(*sync.WaitGroup)
	t.wg = wg
	for ic := 0; ic < m; ic += mcBlock {
		wg.Add(1)
		t.ic, t.mc = ic, min(mcBlock, m-ic)
		kernelPool.tasks <- t
	}
	wg.Wait()
	waitGroupPool.Put(wg)
}

var waitGroupPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// packBuf is a grow-only scratch buffer for packed operand panels.
type packBuf struct {
	data []float64
}

// grow returns the first n elements of the buffer, reallocating only when
// the requested panel is larger than anything packed into it before.
func (b *packBuf) grow(n int) []float64 {
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	return b.data[:n]
}

var packBufPool = sync.Pool{New: func() any { return new(packBuf) }}

func getPackBuf() *packBuf  { return packBufPool.Get().(*packBuf) }
func putPackBuf(b *packBuf) { packBufPool.Put(b) }
