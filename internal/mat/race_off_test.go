//go:build !race

package mat

const raceEnabled = false
