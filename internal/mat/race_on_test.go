//go:build race

package mat

// raceEnabled lets allocation-count tests skip under the race detector,
// where sync.Pool deliberately drops a fraction of Puts (so pool Gets
// allocate nondeterministically). The CI bench-gate still enforces the
// zero-alloc claims in a non-race build.
const raceEnabled = true
