package mat

// Workspace is a reusable buffer pool for the temporaries of an iterative
// hot path. A streaming decomposition allocates its matrices and scratch
// slices from one Workspace; once the pool has warmed up (after the first
// iteration, when batch shapes are steady), every Get is satisfied by
// recycled storage and the iteration performs no heap allocations.
//
// All methods are safe on a nil *Workspace, which degrades to plain
// allocation — APIs can accept an optional workspace without branching.
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	free   []*Dense
	floats [][]float64
	ints   [][]int
}

// Get returns a zeroed r×c matrix, recycling pooled storage when a returned
// buffer is large enough.
func (w *Workspace) Get(r, c int) *Dense {
	d := w.GetUninit(r, c)
	zeroFloats(d.data)
	return d
}

// GetUninit returns an r×c matrix whose contents are unspecified — for
// destinations that are fully overwritten, where zeroing would be waste.
func (w *Workspace) GetUninit(r, c int) *Dense {
	if w == nil {
		return New(r, c)
	}
	need := r * c
	// Prefer the most recently returned buffer (still cache-warm); scan a
	// few entries for one with enough capacity.
	for i := len(w.free) - 1; i >= 0; i-- {
		d := w.free[i]
		if cap(d.data) < need {
			continue
		}
		w.free[i] = w.free[len(w.free)-1]
		w.free = w.free[:len(w.free)-1]
		d.rows, d.cols = r, c
		d.data = d.data[:need]
		return d
	}
	return New(r, c)
}

// maxPoolEntries bounds each of the workspace free lists. Hot paths also
// hand the pool matrices that originated elsewhere (e.g. communicator-
// allocated broadcast results), which would otherwise accumulate one entry
// per iteration forever; beyond the cap — far above any steady-state
// working set — the smallest pooled buffer is evicted instead.
const maxPoolEntries = 64

// Put returns a matrix to the pool for reuse. The caller must not use m
// afterwards: its storage will back a future Get. Putting nil is a no-op.
func (w *Workspace) Put(m *Dense) {
	if w == nil || m == nil || cap(m.data) == 0 {
		return
	}
	if len(w.free) >= maxPoolEntries {
		small := 0
		for i, d := range w.free {
			if cap(d.data) < cap(w.free[small].data) {
				small = i
			}
		}
		if cap(w.free[small].data) >= cap(m.data) {
			return // incoming buffer is the smallest; drop it
		}
		w.free[small] = m
		return
	}
	w.free = append(w.free, m)
}

// GetFloats returns a zeroed float slice of length n from the pool.
func (w *Workspace) GetFloats(n int) []float64 {
	if w != nil {
		for i := len(w.floats) - 1; i >= 0; i-- {
			s := w.floats[i]
			if cap(s) < n {
				continue
			}
			w.floats[i] = w.floats[len(w.floats)-1]
			w.floats = w.floats[:len(w.floats)-1]
			s = s[:n]
			zeroFloats(s)
			return s
		}
	}
	return make([]float64, n)
}

// PutFloats returns a slice obtained from GetFloats to the pool.
func (w *Workspace) PutFloats(s []float64) {
	if w == nil || cap(s) == 0 || len(w.floats) >= maxPoolEntries {
		return
	}
	w.floats = append(w.floats, s)
}

// GetInts returns a zeroed int slice of length n from the pool.
func (w *Workspace) GetInts(n int) []int {
	if w != nil {
		for i := len(w.ints) - 1; i >= 0; i-- {
			s := w.ints[i]
			if cap(s) < n {
				continue
			}
			w.ints[i] = w.ints[len(w.ints)-1]
			w.ints = w.ints[:len(w.ints)-1]
			s = s[:n]
			for j := range s {
				s[j] = 0
			}
			return s
		}
	}
	return make([]int, n)
}

// PutInts returns a slice obtained from GetInts to the pool.
func (w *Workspace) PutInts(s []int) {
	if w == nil || cap(s) == 0 || len(w.ints) >= maxPoolEntries {
		return
	}
	w.ints = append(w.ints, s)
}
