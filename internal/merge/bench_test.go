package merge_test

import (
	"testing"

	"goparsvd/internal/merge"
	"goparsvd/internal/testutil"
)

// BenchmarkMergePairSteadyState exercises the allocation-free merge hot
// path: one Merger, one reused destination, same-shaped operands. Gated
// at 0 allocs/op by `make bench-gate`.
func BenchmarkMergePairSteadyState(b *testing.B) {
	const (
		rows = 512
		k    = 16
	)
	a, _ := testutil.RandomLowRank(rows, 2*k, k, 1e-10, testutil.NewRand(1))
	c, _ := testutil.RandomLowRank(rows, 2*k, k, 1e-10, testutil.NewRand(2))
	pa, pb := svdPartial(a, k), svdPartial(c, k)

	var m merge.Merger
	var dst merge.Partial
	// Warm the workspace pools and dst.S capacity.
	if err := m.Pair(&dst, pa, pb, k); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Pair(&dst, pa, pb, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeTree8 reduces eight shard partials up a balanced tree,
// the shape used by MergeCheckpoints and sharded Fit.
func BenchmarkMergeTree8(b *testing.B) {
	const (
		rows = 512
		k    = 16
	)
	parts := make([]*merge.Partial, 8)
	for i := range parts {
		a, _ := testutil.RandomLowRank(rows, 2*k, k, 1e-10, testutil.NewRand(int64(i+1)))
		parts[i] = svdPartial(a, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merge.Tree(parts, merge.TreeOptions{K: k, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
