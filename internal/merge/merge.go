// Package merge implements the pairwise SVD merge operator of Iwen &
// Ong (arXiv 1601.07010): independent partial factorizations of
// disjoint snapshot subsets are recombined into the truncated SVD of
// their concatenation, and a tree of such merges assembles one model
// from arbitrarily many shard-local fits.
//
// Given two partials (U₁, Σ₁) and (U₂, Σ₂) over disjoint column
// (snapshot) subsets of a common M-row snapshot matrix, the
// concatenated data [A₁ | A₂] has the same left singular subspace as
// [U₁·diag(Σ₁) | U₂·diag(Σ₂)] — the right factors are column-orthonormal
// and drop out. The merge is therefore a QR of that M×(k₁+k₂) stack, a
// small SVD of the R factor, and a truncation:
//
//	[U₁·diag(Σ₁) | U₂·diag(Σ₂)] = Q·R,  R = Ũ·Σ̃·Ṽᵀ
//	U = Q·Ũ[:, :K],  Σ = Σ̃[:K]
//
// The merge is exact when the effective rank of the union is at most K;
// otherwise each truncation discards a Frobenius tail whose norm is
// accumulated into the Bound field — an Iwen–Ong-style additive error
// bound that survives composition up a merge tree.
//
// The hot path mirrors internal/stream's streaming update: every
// temporary comes from a mat.Workspace and the tall product runs through
// a mat.PanelBatch, so steady-state merging of same-shaped partials
// performs no heap allocations.
package merge

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

// Partial is one partial factorization in a merge set: the truncated
// left singular vectors and singular values of a shard of the snapshot
// stream, plus its counters and the accumulated truncation bound.
type Partial struct {
	// U is the M×k matrix of left singular vectors, k = len(S).
	U *mat.Dense
	// S holds the singular values in descending order.
	S []float64
	// Iterations and Snapshots aggregate the shard counters: a merge
	// sums both sides' Snapshots and counts itself as one extra
	// iteration.
	Iterations int
	Snapshots  int
	// Bound is the accumulated Frobenius-norm truncation error: the
	// root-sum-square of every singular value discarded by this
	// partial's merge history. By Weyl's inequality each merged singular
	// value is within Bound of the corresponding value of the exact
	// (unmerged, untruncated) factorization.
	Bound float64
}

// validate checks the structural invariants of one merge operand.
func (p *Partial) validate() error {
	if p == nil || p.U == nil {
		return errors.New("merge: nil partial")
	}
	if p.U.Rows() < 1 || p.U.Cols() < 1 {
		return fmt.Errorf("merge: empty %dx%d partial", p.U.Rows(), p.U.Cols())
	}
	if p.U.Cols() != len(p.S) {
		return fmt.Errorf("merge: partial has %d mode columns but %d singular values",
			p.U.Cols(), len(p.S))
	}
	return nil
}

// Merger owns the workspace of the merge hot path. The zero value is
// ready to use; a Merger must not be used from multiple goroutines
// concurrently.
type Merger struct {
	ws mat.Workspace
	pb mat.PanelBatch
}

// Pair merges a and b into dst, truncating to at most k modes.
//
// Ownership: dst must not alias a or b. dst's previous U (if any) is
// recycled into the merger's workspace and replaced by a fresh
// workspace-owned matrix — valid until dst is next passed to Pair as the
// destination or released with Release. dst.S is grown in place
// (append-style), so a dst reused across merges reaches a steady state
// where Pair allocates nothing.
func (m *Merger) Pair(dst, a, b *Partial, k int) error {
	if k < 1 {
		return fmt.Errorf("merge: k = %d < 1", k)
	}
	if dst == a || dst == b {
		return errors.New("merge: dst must not alias an input partial")
	}
	if err := a.validate(); err != nil {
		return err
	}
	if err := b.validate(); err != nil {
		return err
	}
	rows := a.U.Rows()
	if b.U.Rows() != rows {
		return fmt.Errorf("merge: partials have %d and %d rows; shards must share the snapshot row dimension",
			rows, b.U.Rows())
	}
	ka, kb := a.U.Cols(), b.U.Cols()

	// Stack [U₁·diag(Σ₁) | U₂·diag(Σ₂)]: the scaling folds into one
	// diagonal pass per side, exactly like the streaming update's
	// forget-factor pass.
	scaledA := m.ws.GetUninit(rows, ka)
	mat.MulDiagScaledInto(scaledA, 1, a.U, a.S)
	scaledB := m.ws.GetUninit(rows, kb)
	mat.MulDiagScaledInto(scaledB, 1, b.U, b.S)
	concat := m.ws.GetUninit(rows, ka+kb)
	mat.HStackInto(concat, scaledA, scaledB)
	m.ws.Put(scaledA)
	m.ws.Put(scaledB)

	q, r := linalg.QRWith(&m.ws, concat)
	m.ws.Put(concat)
	u, s, v := linalg.SVDWith(&m.ws, r)
	m.ws.Put(v)
	m.ws.Put(r)

	kk := k
	if kk > len(s) {
		kk = len(s)
	}
	// The Frobenius norm of the discarded tail, accumulated additively
	// with the operands' own bounds (Iwen–Ong).
	var tail float64
	for _, sv := range s[kk:] {
		tail += sv * sv
	}
	usub := m.ws.GetUninit(u.Rows(), kk)
	u.SliceColsInto(usub, 0, kk)
	if dst.U != nil {
		m.ws.Put(dst.U)
	}
	dst.U = m.ws.GetUninit(rows, kk)
	m.pb.MulInto(dst.U, q, usub)
	dst.S = append(dst.S[:0], s[:kk]...)
	m.ws.Put(usub)
	m.ws.Put(u)
	m.ws.PutFloats(s)
	m.ws.Put(q)

	dst.Bound = a.Bound + b.Bound + math.Sqrt(tail)
	dst.Iterations = a.Iterations + b.Iterations + 1
	dst.Snapshots = a.Snapshots + b.Snapshots
	return nil
}

// Release returns a Pair-produced destination's mode storage to the
// merger's workspace. Safe on a zero Partial.
func (m *Merger) Release(p *Partial) {
	if p != nil && p.U != nil {
		m.ws.Put(p.U)
		p.U = nil
	}
}

// TreeOptions configures a merge-tree reduction.
type TreeOptions struct {
	// K is the truncation rank applied at every merge level.
	K int
	// LeftDeep folds the partials sequentially (((p0⊕p1)⊕p2)⊕…) instead
	// of the default balanced pairwise levels. Results differ only
	// within the accumulated bound; the balanced tree keeps the bound
	// (and the critical path) logarithmic in the shard count.
	LeftDeep bool
	// Workers caps the goroutines merging one balanced level
	// concurrently; <= 1 runs sequentially, 0 means GOMAXPROCS. Ignored
	// for left-deep trees, whose merges form a chain.
	Workers int
}

// Tree reduces the partials up a binary merge tree into one Partial.
// The inputs are never mutated or adopted; the result is freshly
// allocated and caller-owned. A single input is returned as a K-truncated
// copy (the single-shard identity).
func Tree(parts []*Partial, opt TreeOptions) (*Partial, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("merge: k = %d < 1", opt.K)
	}
	if len(parts) == 0 {
		return nil, errors.New("merge: no partials to merge")
	}
	for _, p := range parts {
		if err := p.validate(); err != nil {
			return nil, err
		}
	}
	if len(parts) == 1 {
		return truncated(parts[0], opt.K), nil
	}
	if opt.LeftDeep {
		return leftDeep(parts, opt.K)
	}
	return balanced(parts, opt)
}

// truncated deep-copies p keeping at most k leading modes.
func truncated(p *Partial, k int) *Partial {
	kk := k
	if kk > p.U.Cols() {
		kk = p.U.Cols()
	}
	out := &Partial{
		U:          p.U.SliceCols(0, kk),
		S:          append([]float64(nil), p.S[:kk]...),
		Iterations: p.Iterations,
		Snapshots:  p.Snapshots,
		Bound:      p.Bound,
	}
	var tail float64
	for _, sv := range p.S[kk:] {
		tail += sv * sv
	}
	out.Bound += math.Sqrt(tail)
	return out
}

// leftDeep is the sequential fold. Two ping-pong destinations recycle
// through one merger, so the chain allocates O(1) beyond the result.
func leftDeep(parts []*Partial, k int) (*Partial, error) {
	var m Merger
	acc, tmp := &Partial{}, &Partial{}
	if err := m.Pair(acc, parts[0], parts[1], k); err != nil {
		return nil, err
	}
	for _, p := range parts[2:] {
		if err := m.Pair(tmp, acc, p, k); err != nil {
			return nil, err
		}
		acc, tmp = tmp, acc
	}
	return detach(&m, acc, tmp), nil
}

// balanced merges level by level: adjacent pairs combine, an odd
// leftover carries up unchanged. With Workers > 1 the pairs of one
// level run concurrently, each goroutine on its own Merger.
func balanced(parts []*Partial, opt TreeOptions) (*Partial, error) {
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var m Merger // sequential path and final cleanup
	cur := parts
	leaves := true // level-0 partials are caller-owned, never recycled
	for len(cur) > 1 {
		pairs := len(cur) / 2
		next := make([]*Partial, 0, pairs+1)
		for i := 0; i < pairs; i++ {
			next = append(next, &Partial{})
		}
		var err error
		if workers > 1 && pairs > 1 {
			err = mergeLevelParallel(cur, next[:pairs], opt.K, workers)
		} else {
			for i := 0; i < pairs; i++ {
				if err = m.Pair(next[i], cur[2*i], cur[2*i+1], opt.K); err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		if !leaves {
			// The consumed intermediates of the previous level go back to
			// the pool (the odd carry, still in next, is skipped).
			for _, p := range cur[:2*pairs] {
				m.Release(p)
			}
		}
		cur = next
		leaves = false
	}
	root := cur[0]
	if leaves {
		return truncated(root, opt.K), nil
	}
	return detach(&m, root, nil), nil
}

// mergeLevelParallel fans one balanced level's pairs across workers,
// each with a private Merger. Intermediate destinations produced here
// are workspace-owned by some worker's merger, but workspaces are plain
// free lists: returning such a matrix to any merger later is safe.
func mergeLevelParallel(cur, dst []*Partial, k, workers int) error {
	if workers > len(dst) {
		workers = len(dst)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var m Merger
			for i := w; i < len(dst); i += workers {
				if err := m.Pair(dst[i], cur[2*i], cur[2*i+1], k); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// detach copies the workspace-owned root into a caller-owned Partial and
// recycles the scratch destinations.
func detach(m *Merger, root, spare *Partial) *Partial {
	out := &Partial{
		U:          root.U.Clone(),
		S:          append([]float64(nil), root.S...),
		Iterations: root.Iterations,
		Snapshots:  root.Snapshots,
		Bound:      root.Bound,
	}
	m.Release(root)
	if spare != nil {
		m.Release(spare)
	}
	return out
}
