package merge_test

import (
	"math"
	"strings"
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/merge"
	"goparsvd/internal/testutil"
)

// svdPartial builds a merge operand from the exact thin SVD of a,
// truncated to k modes, with the discarded tail accounted in Bound.
func svdPartial(a *mat.Dense, k int) *merge.Partial {
	var ws mat.Workspace
	u, s, v := linalg.SVDWith(&ws, a)
	_ = v
	kk := k
	if kk > len(s) {
		kk = len(s)
	}
	var tail float64
	for _, sv := range s[kk:] {
		tail += sv * sv
	}
	return &merge.Partial{
		U:         u.SliceCols(0, kk),
		S:         append([]float64(nil), s[:kk]...),
		Snapshots: a.Cols(),
		Bound:     math.Sqrt(tail),
	}
}

// fullSpectrum is the exact spectrum of a, for references.
func fullSpectrum(a *mat.Dense) []float64 {
	var ws mat.Workspace
	_, s, _ := linalg.SVDWith(&ws, a)
	return append([]float64(nil), s...)
}

// columnShards splits a into n column shards, round-robin-free
// contiguous slices (the shape does not matter for the merge, only the
// disjoint union).
func columnShards(a *mat.Dense, n int) []*mat.Dense {
	cols := a.Cols()
	out := make([]*mat.Dense, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*cols/n, (i+1)*cols/n
		out = append(out, a.SliceCols(lo, hi))
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestPairMatchesDirectSVD: merging the exact SVDs of two column shards
// of a rank-r matrix with K >= r reproduces the spectrum and the mode
// subspace of the direct SVD of the whole matrix.
func TestPairMatchesDirectSVD(t *testing.T) {
	const k = 6
	a, _ := testutil.RandomLowRank(48, 20, k, 0, testutil.NewRand(1))
	want := fullSpectrum(a)

	shards := columnShards(a, 2)
	pa, pb := svdPartial(shards[0], k), svdPartial(shards[1], k)
	var m merge.Merger
	var dst merge.Partial
	if err := m.Pair(&dst, pa, pb, k); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(want[:k], dst.S); d > 1e-10 {
		t.Fatalf("merged spectrum deviates from direct SVD by %g:\nmerged %v\ndirect %v",
			d, dst.S, want[:k])
	}
	full := svdPartial(a, k)
	if d := testutil.SubspaceError(full.U, dst.U); d > 1e-8 {
		t.Fatalf("merged mode subspace deviates from direct SVD by %g", d)
	}
	if dst.Snapshots != 20 || dst.Iterations != 1 {
		t.Fatalf("counters: snapshots=%d iterations=%d", dst.Snapshots, dst.Iterations)
	}
	if dst.Bound > 1e-9 {
		t.Fatalf("exact merge reports bound %g, want ~0", dst.Bound)
	}
	testutil.CheckOrthonormalColumns(t, "merged modes", dst.U, 1e-12)
}

// TestSingleShardIdentity: a one-element tree is the K-truncated
// identity.
func TestSingleShardIdentity(t *testing.T) {
	a, _ := testutil.RandomLowRank(32, 12, 8, 0, testutil.NewRand(2))
	p := svdPartial(a, 8)
	got, err := merge.Tree([]*merge.Partial{p}, merge.TreeOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.U.Cols() != 5 || len(got.S) != 5 {
		t.Fatalf("truncation kept %d modes, want 5", got.U.Cols())
	}
	if d := maxAbsDiff(p.S[:5], got.S); d != 0 {
		t.Fatalf("identity changed the spectrum by %g", d)
	}
	if !mat.EqualApprox(p.U.SliceCols(0, 5), got.U, 0) {
		t.Fatal("identity changed the modes")
	}
	// The discarded σ₆..σ₈ must appear in the bound.
	var tail float64
	for _, sv := range p.S[5:] {
		tail += sv * sv
	}
	if math.Abs(got.Bound-math.Sqrt(tail)) > 1e-12 {
		t.Fatalf("truncation bound %g, want %g", got.Bound, math.Sqrt(tail))
	}
}

// TestRankDeficientShards: operands whose spectra end in exact zeros
// (rank-deficient shards) merge cleanly — no NaN, orthonormal modes.
func TestRankDeficientShards(t *testing.T) {
	a, _ := testutil.RandomLowRank(40, 10, 2, 0, testutil.NewRand(3))
	b, _ := testutil.RandomLowRank(40, 8, 3, 0, testutil.NewRand(4))
	pa, pb := svdPartial(a, 6), svdPartial(b, 6) // keeps zero tail values
	var m merge.Merger
	var dst merge.Partial
	if err := m.Pair(&dst, pa, pb, 6); err != nil {
		t.Fatal(err)
	}
	for i, sv := range dst.S {
		if math.IsNaN(sv) || sv < 0 {
			t.Fatalf("singular value %d is %g", i, sv)
		}
	}
	testutil.CheckOrthonormalColumns(t, "rank-deficient merge", dst.U, 1e-10)
	stacked := mat.HStack(a, b)
	if d := maxAbsDiff(fullSpectrum(stacked)[:5], dst.S[:5]); d > 1e-10 {
		t.Fatalf("rank-deficient merge spectrum off by %g", d)
	}
}

// TestShardsNarrowerThanK: shards holding fewer snapshots than K (so
// fewer than K modes) merge without padding tricks.
func TestShardsNarrowerThanK(t *testing.T) {
	const k = 8
	a, _ := testutil.RandomLowRank(30, 3, 3, 0, testutil.NewRand(5))
	b, _ := testutil.RandomLowRank(30, 4, 4, 0, testutil.NewRand(6))
	pa, pb := svdPartial(a, k), svdPartial(b, k) // 3 and 4 modes
	var m merge.Merger
	var dst merge.Partial
	if err := m.Pair(&dst, pa, pb, k); err != nil {
		t.Fatal(err)
	}
	if len(dst.S) != 7 {
		t.Fatalf("merged rank %d, want 7 (3+4 < K)", len(dst.S))
	}
	stacked := mat.HStack(a, b)
	if d := maxAbsDiff(fullSpectrum(stacked), dst.S); d > 1e-10 {
		t.Fatalf("narrow-shard merge spectrum off by %g", d)
	}
}

// TestTreeShapesAgree: the same 8 shards through a balanced tree, a
// left-deep chain and a parallel balanced tree give the same result —
// exactly equal for balanced vs parallel (identical pairings, identical
// arithmetic), within the accumulated bound for balanced vs left-deep.
func TestTreeShapesAgree(t *testing.T) {
	const k = 6
	a, _ := testutil.RandomLowRank(64, 24, k, 0, testutil.NewRand(7))
	parts := make([]*merge.Partial, 0, 8)
	for _, sh := range columnShards(a, 8) {
		parts = append(parts, svdPartial(sh, k))
	}
	bal, err := merge.Tree(parts, merge.TreeOptions{K: k, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := merge.Tree(parts, merge.TreeOptions{K: k, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := merge.Tree(parts, merge.TreeOptions{K: k, LeftDeep: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(bal.S, par.S); d != 0 {
		t.Fatalf("parallel balanced tree deviates from sequential by %g (want bit-equal)", d)
	}
	if !mat.EqualApprox(bal.U, par.U, 0) {
		t.Fatal("parallel balanced tree modes differ from sequential")
	}
	tol := bal.Bound + deep.Bound + 1e-10
	if d := maxAbsDiff(bal.S, deep.S); d > tol {
		t.Fatalf("left-deep deviates from balanced by %g, beyond combined bound %g", d, tol)
	}
	want := fullSpectrum(a)[:k]
	if d := maxAbsDiff(want, bal.S); d > 1e-10 {
		t.Fatalf("8-shard balanced merge deviates from direct SVD by %g", d)
	}
	if bal.Iterations != 7 || deep.Iterations != 7 {
		t.Fatalf("8 shards must count 7 merges: balanced=%d leftdeep=%d", bal.Iterations, deep.Iterations)
	}
	if bal.Snapshots != 24 {
		t.Fatalf("snapshots %d, want 24", bal.Snapshots)
	}
}

// TestBoundDominatesSpectrumError: merging full-rank shards with K below
// the true rank must report a positive bound that dominates the actual
// per-value spectrum perturbation (Weyl's inequality on the accumulated
// Frobenius tail).
func TestBoundDominatesSpectrumError(t *testing.T) {
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(40, 24, rng) // effectively full rank 24
	const k = 6
	want := fullSpectrum(a)

	for _, shards := range []int{2, 4, 8} {
		parts := make([]*merge.Partial, 0, shards)
		for _, sh := range columnShards(a, shards) {
			parts = append(parts, svdPartial(sh, k))
		}
		got, err := merge.Tree(parts, merge.TreeOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if got.Bound <= 0 {
			t.Fatalf("%d shards: truncating merge reports bound %g, want > 0", shards, got.Bound)
		}
		if d := maxAbsDiff(want[:k], got.S); d > got.Bound+1e-12 {
			t.Fatalf("%d shards: spectrum error %g exceeds the claimed bound %g",
				shards, d, got.Bound)
		}
	}
}

// TestPairValidation: malformed operands are refused with errors, not
// panics, and dst aliasing is caught.
func TestPairValidation(t *testing.T) {
	a, _ := testutil.RandomLowRank(16, 6, 3, 0, testutil.NewRand(9))
	b, _ := testutil.RandomLowRank(20, 6, 3, 0, testutil.NewRand(10))
	pa, pb := svdPartial(a, 3), svdPartial(b, 3)
	var m merge.Merger
	var dst merge.Partial

	if err := m.Pair(&dst, pa, pb, 3); err == nil ||
		!strings.Contains(err.Error(), "rows") {
		t.Fatalf("row-mismatched merge: %v", err)
	}
	if err := m.Pair(&dst, pa, pa, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if err := m.Pair(pa, pa, pb, 3); err == nil {
		t.Fatal("dst aliasing an input accepted")
	}
	bad := &merge.Partial{U: pa.U, S: pa.S[:1]}
	if err := m.Pair(&dst, bad, bad, 3); err == nil {
		t.Fatal("modes/values length mismatch accepted")
	}
	if _, err := merge.Tree(nil, merge.TreeOptions{K: 3}); err == nil {
		t.Fatal("empty tree accepted")
	}
	if _, err := merge.Tree([]*merge.Partial{pa}, merge.TreeOptions{K: 0}); err == nil {
		t.Fatal("tree with k = 0 accepted")
	}
}

// TestPairDoesNotMutateInputs: operands survive a merge bit-identical,
// so one shard result can feed several trees.
func TestPairDoesNotMutateInputs(t *testing.T) {
	a, _ := testutil.RandomLowRank(24, 8, 4, 0, testutil.NewRand(11))
	b, _ := testutil.RandomLowRank(24, 8, 4, 0, testutil.NewRand(12))
	pa, pb := svdPartial(a, 4), svdPartial(b, 4)
	ua, sa := pa.U.Clone(), append([]float64(nil), pa.S...)
	var m merge.Merger
	var dst merge.Partial
	if err := m.Pair(&dst, pa, pb, 4); err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(ua, pa.U, 0) || maxAbsDiff(sa, pa.S) != 0 {
		t.Fatal("Pair mutated an input partial")
	}
}
