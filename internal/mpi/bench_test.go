package mpi

import (
	"testing"
)

func BenchmarkPingPong(b *testing.B) {
	payload := make([]float64, 1024)
	b.ResetTimer()
	MustRun(2, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, payload)
				c.Recv(1, 1)
			} else {
				got := c.Recv(0, 0)
				c.Send(0, 1, got)
			}
		}
	})
}

func BenchmarkBcast8Ranks(b *testing.B) {
	payload := make([]float64, 4096)
	b.ResetTimer()
	MustRun(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			var in []float64
			if c.Rank() == 0 {
				in = payload
			}
			c.BcastFloats(0, in)
		}
	})
}

func BenchmarkGather8Ranks(b *testing.B) {
	payload := make([]float64, 4096)
	b.ResetTimer()
	MustRun(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.GatherFloats(0, payload)
		}
	})
}

func BenchmarkAllreduce8Ranks(b *testing.B) {
	payload := make([]float64, 1024)
	b.ResetTimer()
	MustRun(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceSum(payload)
		}
	})
}

func BenchmarkBarrier8Ranks(b *testing.B) {
	MustRun(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
	})
}
