package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// mailboxCap is the per-pair channel buffer. Senders beyond it block, which
// mirrors MPI's rendezvous protocol for large messages.
const mailboxCap = 8

// ChanTransport is the in-process fabric: ranks are goroutines and messages
// travel over per-pair FIFO channels. One ChanTransport value carries every
// rank of the world, so Send/Recv accept any (src, dst) pair. It is the
// default transport behind NewWorld/Run and preserves the exact semantics
// the runtime had before the Transport split.
type ChanTransport struct {
	size int
	// mail[dst][src] is the FIFO channel for messages from src to dst.
	mail    [][]chan Message
	barrier *chanBarrier
	abort   chan struct{}
	aborted atomic.Bool

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	recvBytes []atomic.Int64 // indexed by receiving rank
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport creates an in-process fabric for size ranks.
func NewChanTransport(size int) *ChanTransport {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	t := &ChanTransport{
		size:      size,
		mail:      make([][]chan Message, size),
		barrier:   newChanBarrier(size),
		abort:     make(chan struct{}),
		recvBytes: make([]atomic.Int64, size),
	}
	for dst := 0; dst < size; dst++ {
		t.mail[dst] = make([]chan Message, size)
		for src := 0; src < size; src++ {
			t.mail[dst][src] = make(chan Message, mailboxCap)
		}
	}
	return t
}

// Size returns the number of ranks.
func (t *ChanTransport) Size() int { return t.size }

// Send enqueues a message for dst, copying the payload so the sender's
// buffer (and any downstream receiver's view) can never alias in-flight or
// delivered data. Copy-on-send is centralized here so relayed collective
// hops (broadcast trees) are safe too.
func (t *ChanTransport) Send(src, dst int, m Message) error {
	m.Data = append([]float64(nil), m.Data...)
	t.msgsSent.Add(1)
	t.bytesSent.Add(int64(8 * len(m.Data)))
	select {
	case t.mail[dst][src] <- m:
		return nil
	case <-t.abort:
		return ErrAborted
	}
}

// Recv dequeues the next message from src addressed to dst.
func (t *ChanTransport) Recv(dst, src int) (Message, error) {
	select {
	case m := <-t.mail[dst][src]:
		t.recvBytes[dst].Add(int64(8 * len(m.Data)))
		return m, nil
	case <-t.abort:
		return Message{}, ErrAborted
	}
}

// Barrier blocks rank until every rank has entered.
func (t *ChanTransport) Barrier(rank int) error {
	if !t.barrier.await() {
		return ErrAborted
	}
	return nil
}

// Abort tears down the fabric: the abort channel unblocks every pending
// Send/Recv, the barrier releases its waiters, and the per-pair mailboxes
// are drained in the background so payloads buffered for ranks that will
// never receive them (and senders still parked on full mailboxes) are
// released instead of pinning goroutines and memory until the world is
// garbage collected.
func (t *ChanTransport) Abort() {
	if t.aborted.CompareAndSwap(false, true) {
		close(t.abort)
		t.barrier.abort()
		go t.drain()
	}
}

// drain empties every mailbox after an abort. Sends racing the abort can
// still deposit messages (the select in Send picks pseudo-randomly when
// both cases are ready), so keep sweeping until a full pass finds every
// channel empty.
func (t *ChanTransport) drain() {
	for {
		empty := true
		for dst := range t.mail {
			for src := range t.mail[dst] {
				for drained := false; !drained; {
					select {
					case <-t.mail[dst][src]:
						empty = false
					default:
						drained = true
					}
				}
			}
		}
		if empty {
			return
		}
	}
}

// Stats returns the aggregate traffic counters.
func (t *ChanTransport) Stats() Stats {
	rb := make([]int64, t.size)
	for r := range rb {
		rb[r] = t.recvBytes[r].Load()
	}
	return Stats{Ranks: t.size, Messages: t.msgsSent.Load(), Bytes: t.bytesSent.Load(), RecvBytes: rb}
}

// Close releases the fabric. For the in-process transport this is the same
// teardown as Abort (there are no sockets to shut down gracefully); a world
// whose ranks all returned normally has nothing left blocked on it.
func (t *ChanTransport) Close() error {
	t.Abort()
	return nil
}

// chanBarrier is a reusable counting barrier with abort support.
type chanBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	stopped bool
}

func newChanBarrier(size int) *chanBarrier {
	b := &chanBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all ranks arrive; it returns false if the barrier was
// aborted while waiting.
func (b *chanBarrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.stopped {
		b.cond.Wait()
	}
	return !b.stopped
}

func (b *chanBarrier) abort() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
