package mpi

import (
	"fmt"

	"goparsvd/internal/mat"
)

// Collective operations reserve the negative tag space so they can never
// collide with user point-to-point tags.
const (
	tagBcast = -(iota + 1)
	tagGather
	tagScatter
	tagReduce
	tagAllgather
)

// BcastFloats broadcasts a slice from root to every rank along a binomial
// tree (log₂ P rounds, like any production MPI). Root passes the payload;
// other ranks pass nil. Every rank returns its own copy.
func (c *Comm) BcastFloats(root int, data []float64) []float64 {
	m := c.bcastMsg(root, Message{Tag: tagBcast, Data: data, Rows: vectorRows})
	return m.Data
}

// BcastMatrix broadcasts a matrix from root to every rank. Root passes the
// matrix; other ranks pass nil. Every rank returns its own copy (including
// root, which gets a clone so later mutation is safe).
func (c *Comm) BcastMatrix(root int, m *mat.Dense) *mat.Dense {
	var msg Message
	if c.rank == root {
		if m == nil {
			panic("mpi: BcastMatrix root passed nil matrix")
		}
		r, cl := m.Dims()
		msg = Message{Tag: tagBcast, Data: m.RawData(), Rows: r, Cols: cl}
	}
	out := c.bcastMsg(root, msg)
	return mat.NewFromData(out.Rows, out.Cols, out.Data)
}

// bcastMsg moves one message down a binomial tree rooted at root. The
// message payload is copied on every hop by sendMsg.
func (c *Comm) bcastMsg(root int, m Message) Message {
	size := c.t.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("mpi: broadcast root %d out of range", root))
	}
	if size == 1 {
		m.Data = append([]float64(nil), m.Data...)
		return m
	}
	m.Tag = tagBcast
	rel := (c.rank - root + size) % size
	received := rel == 0
	for offset := 1; offset < size; offset *= 2 {
		switch {
		case received && rel < offset && rel+offset < size:
			dst := (root + rel + offset) % size
			c.sendMsg(dst, m)
		case !received && rel >= offset && rel < 2*offset:
			src := (root + rel - offset) % size
			m = c.recvMsg(src, tagBcast)
			received = true
		}
	}
	if rel == 0 {
		m.Data = append([]float64(nil), m.Data...)
	}
	return m
}

// GatherFloats collects one slice per rank at root. At root the returned
// slice has Size() entries indexed by rank (root's own contribution
// included); at other ranks it is nil. This is the linear (root-bottleneck)
// gather, matching the cost profile of MPI_Gather for large payloads.
func (c *Comm) GatherFloats(root int, data []float64) [][]float64 {
	if c.rank != root {
		c.sendMsg(root, Message{Tag: tagGather, Data: append([]float64(nil), data...), Rows: vectorRows})
		return nil
	}
	out := make([][]float64, c.t.Size())
	out[root] = append([]float64(nil), data...)
	for src := 0; src < c.t.Size(); src++ {
		if src == root {
			continue
		}
		m := c.recvMsg(src, tagGather)
		out[src] = m.Data
	}
	return out
}

// GatherMatrix collects one matrix per rank at root; the paper's
// `comm.gather(wlocal, root=0)`. At root the slice is indexed by rank; at
// other ranks it is nil.
func (c *Comm) GatherMatrix(root int, m *mat.Dense) []*mat.Dense {
	if c.rank != root {
		c.SendMatrix(root, tagGather, m)
		return nil
	}
	out := make([]*mat.Dense, c.t.Size())
	out[root] = m.Clone()
	for src := 0; src < c.t.Size(); src++ {
		if src == root {
			continue
		}
		msg := c.recvMsg(src, tagGather)
		out[src] = mat.NewFromData(msg.Rows, msg.Cols, msg.Data)
	}
	return out
}

// AllgatherFloats gives every rank the slice contributed by every other
// rank, implemented as gather-to-0 plus broadcast of the concatenation.
func (c *Comm) AllgatherFloats(data []float64) [][]float64 {
	size := c.t.Size()
	gathered := c.GatherFloats(0, data)
	// Flatten with a length prefix so a single broadcast suffices.
	var flat []float64
	if c.rank == 0 {
		flat = append(flat, float64(size))
		for _, g := range gathered {
			flat = append(flat, float64(len(g)))
		}
		for _, g := range gathered {
			flat = append(flat, g...)
		}
	}
	flat = c.BcastFloats(0, flat)
	n := int(flat[0])
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		lens[i] = int(flat[1+i])
	}
	out := make([][]float64, n)
	off := 1 + n
	for i := 0; i < n; i++ {
		out[i] = append([]float64(nil), flat[off:off+lens[i]]...)
		off += lens[i]
	}
	return out
}

// ScatterMatrixRows splits m at root into contiguous row blocks of the given
// sizes and delivers block i to rank i. counts must sum to m's row count and
// have one entry per rank. Non-root ranks pass nil for m.
func (c *Comm) ScatterMatrixRows(root int, m *mat.Dense, counts []int) *mat.Dense {
	size := c.t.Size()
	if len(counts) != size {
		panic(fmt.Sprintf("mpi: scatter counts length %d, want %d", len(counts), size))
	}
	if c.rank == root {
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != m.Rows() {
			panic(fmt.Sprintf("mpi: scatter counts sum %d, want %d rows", total, m.Rows()))
		}
		off := 0
		var local *mat.Dense
		for dst := 0; dst < size; dst++ {
			block := m.SliceRows(off, off+counts[dst])
			off += counts[dst]
			if dst == root {
				local = block
				continue
			}
			c.SendMatrix(dst, tagScatter, block)
		}
		return local
	}
	return c.RecvMatrix(root, tagScatter)
}

// ReduceSum element-wise sums the contributions of all ranks at root. At
// root the result is returned; other ranks get nil. All contributions must
// have equal length.
func (c *Comm) ReduceSum(root int, data []float64) []float64 {
	if c.rank != root {
		c.sendMsg(root, Message{Tag: tagReduce, Data: append([]float64(nil), data...), Rows: vectorRows})
		return nil
	}
	acc := append([]float64(nil), data...)
	for src := 0; src < c.t.Size(); src++ {
		if src == root {
			continue
		}
		m := c.recvMsg(src, tagReduce)
		if len(m.Data) != len(acc) {
			panic(fmt.Sprintf("mpi: ReduceSum length mismatch: rank %d sent %d, want %d",
				src, len(m.Data), len(acc)))
		}
		for i, v := range m.Data {
			acc[i] += v
		}
	}
	return acc
}

// AllreduceSum is ReduceSum followed by a broadcast: every rank returns the
// element-wise sum.
func (c *Comm) AllreduceSum(data []float64) []float64 {
	return c.BcastFloats(0, c.ReduceSum(0, data))
}

// AllreduceMax returns the element-wise maximum across ranks at every rank.
func (c *Comm) AllreduceMax(data []float64) []float64 {
	if c.rank != 0 {
		c.sendMsg(0, Message{Tag: tagReduce, Data: append([]float64(nil), data...), Rows: vectorRows})
		return c.BcastFloats(0, nil)
	}
	acc := append([]float64(nil), data...)
	for src := 1; src < c.t.Size(); src++ {
		m := c.recvMsg(src, tagReduce)
		for i, v := range m.Data {
			if v > acc[i] {
				acc[i] = v
			}
		}
	}
	return c.BcastFloats(0, acc)
}
