package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goparsvd/internal/mat"
)

// These tests inject failures into ranks mid-collective and assert the
// world tears down cleanly: no deadlocks, the originating rank's panic is
// reported, and peers blocked in communication unwind as aborts rather
// than being misattributed.

func TestPanicDuringGatherAborts(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(4, func(c *Comm) {
			if c.Rank() == 2 {
				panic("rank 2 failed before contributing")
			}
			c.GatherFloats(0, []float64{1}) // root blocks on rank 2 forever
		})
		re, ok := err.(*RankError)
		if !ok || re.Rank != 2 {
			t.Errorf("err = %v, want RankError from rank 2", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("gather abort deadlocked")
	}
}

func TestPanicDuringBcastAborts(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(8, func(c *Comm) {
			if c.Rank() == 3 {
				panic("rank 3 failed")
			}
			var payload []float64
			if c.Rank() == 0 {
				payload = make([]float64, 100)
			}
			c.BcastFloats(0, payload)
		})
		if err == nil {
			t.Error("expected an error from the failing rank")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("bcast abort deadlocked")
	}
}

func TestPanicDuringBarrierAborts(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(4, func(c *Comm) {
			if c.Rank() == 1 {
				panic("rank 1 failed before the barrier")
			}
			c.Barrier()
		})
		re, ok := err.(*RankError)
		if !ok || re.Rank != 1 {
			t.Errorf("err = %v, want RankError from rank 1", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier abort deadlocked")
	}
}

func TestFirstPanicWins(t *testing.T) {
	// Multiple ranks fail; exactly one RankError is reported and it names
	// a rank that actually panicked on its own (not an abort casualty).
	_, err := Run(4, func(c *Comm) {
		if c.Rank() == 1 || c.Rank() == 3 {
			panic("deliberate")
		}
		c.Barrier()
	})
	re, ok := err.(*RankError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if re.Rank != 1 && re.Rank != 3 {
		t.Fatalf("blamed rank %d, want 1 or 3", re.Rank)
	}
	if !strings.Contains(re.Error(), "deliberate") {
		t.Fatalf("error message lost the panic value: %v", re)
	}
}

func TestSendToInvalidRankFails(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(7, 0, []float64{1})
		}
	})
	if err == nil {
		t.Fatal("send to out-of-range rank accepted")
	}
}

func TestRecvFromInvalidRankFails(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(-1, 0)
		}
	})
	if err == nil {
		t.Fatal("recv from out-of-range rank accepted")
	}
}

func TestBcastInvalidRootFails(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		c.BcastFloats(5, []float64{1})
	})
	if err == nil {
		t.Fatal("broadcast from out-of-range root accepted")
	}
}

func TestVectorMatrixTypeConfusionFails(t *testing.T) {
	// Sending a matrix and receiving it as a vector is a protocol bug the
	// runtime must catch loudly.
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendMatrix(1, 0, mat.Eye(2))
		} else {
			c.Recv(0, 0)
		}
	})
	if err == nil {
		t.Fatal("matrix received as vector accepted")
	}
}

func TestConcurrentWorldsAreIsolated(t *testing.T) {
	// Two independent worlds running simultaneously must not interfere.
	var total atomic.Int64
	done := make(chan struct{}, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			MustRun(3, func(c *Comm) {
				sum := c.AllreduceSum([]float64{float64(c.Rank() + 10*w)})
				total.Add(int64(sum[0]))
			})
		}(w)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("concurrent worlds deadlocked")
		}
	}
	// World 0: ranks sum to 3 per rank × 3 ranks = 9.
	// World 1: (10+11+12)=33 per rank × 3 ranks = 99.
	if total.Load() != 9+99 {
		t.Fatalf("total = %d, want 108", total.Load())
	}
}

func TestAbortedWorldStaysAborted(t *testing.T) {
	// After an abort, further communication attempts in surviving code
	// paths must not hang; they panic with the abort marker.
	_, err := Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			panic("die")
		}
		for i := 0; i < 10; i++ {
			c.Barrier() // must unwind on the first attempt post-abort
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}
