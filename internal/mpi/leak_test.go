package mpi

import (
	"runtime"
	"testing"
	"time"
)

// TestAbortLeaksNoGoroutines floods a rank that panics before receiving:
// the senders park on full per-pair mailboxes and can only be freed by the
// abort path. After Run returns, every rank goroutine (and the abort
// drainer) must be gone — a leak here would accumulate across streaming
// runs that recover from worker failures.
func TestAbortLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		_, err := Run(4, func(c *Comm) {
			if c.Rank() == 3 {
				panic("rank 3 dies before receiving anything")
			}
			// Well past mailboxCap: these sends must block, then unwind
			// via the abort instead of leaking.
			for j := 0; j < 4*mailboxCap; j++ {
				c.Send(3, 0, make([]float64, 64))
			}
		})
		if err == nil {
			t.Fatal("expected a rank error")
		}
	}
	// The drainer goroutines are asynchronous; give them a bounded grace
	// period to finish before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across aborted runs: before=%d after=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbortDrainsMailboxes verifies the drain half of the abort contract
// directly: after Abort, buffered payloads are swept out of the per-pair
// channels so a dead world does not pin megabytes of in-flight matrices.
func TestAbortDrainsMailboxes(t *testing.T) {
	tr := NewChanTransport(2)
	for i := 0; i < mailboxCap; i++ {
		if err := tr.Send(0, 1, Message{Tag: i, Data: make([]float64, 8), Rows: vectorRows}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Abort()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(tr.mail[1][0]) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abort left %d messages buffered", len(tr.mail[1][0]))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Post-abort operations fail fast rather than deadlocking.
	if err := tr.Send(0, 1, Message{Rows: vectorRows}); err != ErrAborted {
		// A racing drain can still accept one message; what must never
		// happen is a block. Either ErrAborted or immediate success is
		// acceptable, so only a nil error with a full mailbox would hang —
		// which the deadline above already rules out.
		t.Logf("post-abort send returned %v", err)
	}
	if err := tr.Barrier(0); err != ErrAborted {
		t.Fatalf("post-abort barrier err = %v, want ErrAborted", err)
	}
}
