// Package mpi is a message-passing runtime with MPI semantics and pluggable
// transports.
//
// It is the substitution for mpi4py in this reproduction of PyParSVD. The
// algorithm-facing surface is *Comm: point-to-point Send/Recv plus the
// collectives the paper uses (Gather, Bcast, Send/Recv, and
// Reduce/Allreduce/Scatter for completeness). Beneath *Comm sits the
// Transport interface, with two implementations:
//
//   - ChanTransport (the default behind NewWorld/Run): ranks are goroutines
//     in one process and messages travel over per-pair FIFO channels;
//   - tcptransport.Transport (internal/mpi/tcptransport): each OS process
//     owns one rank and messages travel over a full mesh of TCP
//     connections with a length-prefixed wire format, so the same
//     algorithms run across real process and machine boundaries
//     (cmd/parsvd-worker is the per-rank entry point).
//
// Every rank's traffic is counted (messages and bytes), which feeds the
// weak-scaling cost model in internal/scaling.
//
// The design goal is that code written against *Comm reads like the MPI
// calls in the paper's Listings 3 and 4, so the distributed algorithms are
// a line-by-line correspondence with the published implementation —
// independent of which fabric carries the bytes.
package mpi

import (
	"fmt"
	"sync"

	"goparsvd/internal/mat"
)

// World owns the communication fabric for one parallel run. With the
// default channel transport it carries every rank of the process; Comm
// hands out per-rank handles.
type World struct {
	t Transport
}

// Stats summarizes the traffic of a completed parallel run.
type Stats struct {
	Ranks    int
	Messages int64
	Bytes    int64
	// RecvBytes[r] is the number of payload bytes delivered to rank r. It
	// exposes incast hot spots (e.g. the root of a gather) that the global
	// totals hide.
	RecvBytes []int64
}

// Comm is one rank's handle on a Transport. All methods are called from
// that rank's goroutine only.
type Comm struct {
	t    Transport
	rank int
}

// NewWorld creates an in-process communication fabric for size ranks. Most
// callers should use Run instead.
func NewWorld(size int) *World {
	return NewWorldWith(NewChanTransport(size))
}

// NewWorldWith wraps an existing transport in a World.
func NewWorldWith(t Transport) *World {
	return &World{t: t}
}

// Comm returns the communicator handle for the given rank.
func (w *World) Comm(rank int) *Comm {
	return NewComm(w.t, rank)
}

// Stats returns the aggregate traffic counters.
func (w *World) Stats() Stats { return w.t.Stats() }

// Abort tears down the world so that peers blocked in Send/Recv/Barrier
// unblock (and themselves panic with the abort marker).
func (w *World) Abort() { w.t.Abort() }

// NewComm binds a communicator handle for rank to a transport. Single-rank
// transports (one process per rank, e.g. the TCP backend) hand their own
// rank here; in-process worlds usually go through World.Comm or Run.
func NewComm(t Transport, rank int) *Comm {
	if rank < 0 || rank >= t.Size() {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, t.Size()))
	}
	return &Comm{t: t, rank: rank}
}

// abortError is the panic value raised in ranks that were blocked on
// communication when another rank failed.
type abortError struct{}

func (abortError) Error() string { return "mpi: aborted because a peer rank panicked" }

// RankError reports a panic that occurred inside a rank function during Run
// or RunRank.
type RankError struct {
	Rank  int
	Value any
}

// Error formats the rank number and the original panic value.
func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Value)
}

// Run executes fn concurrently on size ranks over the in-process channel
// transport and waits for all of them. It returns the traffic statistics of
// the run. If any rank panics, the world is aborted (unblocking the other
// ranks) and the first panic is returned as a *RankError.
func Run(size int, fn func(c *Comm)) (Stats, error) {
	w := NewWorld(size)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *RankError
	)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := runRank(w.t, rank, fn); err != nil {
				if re, ok := err.(*RankError); ok {
					mu.Lock()
					if firstErr == nil {
						firstErr = re
					}
					mu.Unlock()
				}
			}
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return w.Stats(), firstErr
	}
	return w.Stats(), nil
}

// MustRun is Run for callers that treat a rank panic as fatal (tests,
// examples, benchmarks). It re-panics with the rank error.
func MustRun(size int, fn func(c *Comm)) Stats {
	stats, err := Run(size, fn)
	if err != nil {
		panic(err)
	}
	return stats
}

// RunRank executes fn as the given rank of t on the calling goroutine. It
// is the entry point for one-process-per-rank deployments: a worker process
// establishes its transport (e.g. tcptransport.New), calls RunRank, and
// the panic/abort discipline of Run applies across the whole distributed
// job — if fn panics, the transport is aborted, live peers unwind with
// ErrAborted, and the panic comes back as a *RankError; if a peer fails
// first, RunRank returns ErrAborted. The caller owns the transport and
// should Close it after a successful return.
func RunRank(t Transport, rank int, fn func(c *Comm)) (Stats, error) {
	err := runRank(t, rank, fn)
	return t.Stats(), err
}

// runRank wraps one rank's execution with the recover-and-abort protocol
// shared by Run and RunRank.
func runRank(t Transport, rank int, fn func(c *Comm)) (err error) {
	defer func() {
		if v := recover(); v != nil {
			t.Abort()
			if _, isAbort := v.(abortError); isAbort {
				err = ErrAborted
			} else {
				err = &RankError{Rank: rank, Value: v}
			}
		}
	}()
	fn(NewComm(t, rank))
	return nil
}

// Rank returns this communicator's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.t.Size() }

// Stats returns the transport's traffic counters as seen by this rank.
func (c *Comm) Stats() Stats { return c.t.Stats() }

// Send transmits a float64 slice to rank dst with the given tag. The data is
// copied, so the caller may reuse the slice immediately.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendMsg(dst, Message{Tag: tag, Data: data, Rows: vectorRows})
}

// Recv receives a float64 slice from rank src with the given tag. Receiving
// a message whose tag does not match panics: per-pair delivery is FIFO, so
// a mismatch is always a protocol bug.
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.recvMsg(src, tag)
	if m.Rows != vectorRows {
		panic(fmt.Sprintf("mpi: rank %d expected vector from %d tag %d, got %dx%d matrix",
			c.rank, src, tag, m.Rows, m.Cols))
	}
	return m.Data
}

// SendMatrix transmits a matrix to rank dst. The contents are copied.
func (c *Comm) SendMatrix(dst, tag int, m *mat.Dense) {
	r, cols := m.Dims()
	c.sendMsg(dst, Message{Tag: tag, Data: m.RawData(), Rows: r, Cols: cols})
}

// RecvMatrix receives a matrix from rank src with the given tag.
func (c *Comm) RecvMatrix(src, tag int) *mat.Dense {
	m := c.recvMsg(src, tag)
	if m.Rows < 0 {
		panic(fmt.Sprintf("mpi: rank %d expected matrix from %d tag %d, got vector",
			c.rank, src, tag))
	}
	return mat.NewFromData(m.Rows, m.Cols, m.Data)
}

// sendMsg validates the destination and hands the message to the transport,
// converting a torn-down fabric into the abort panic.
func (c *Comm) sendMsg(dst int, m Message) {
	if dst < 0 || dst >= c.t.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if dst == c.rank {
		panic("mpi: send to self is not supported; collectives handle the local contribution directly")
	}
	if err := c.t.Send(c.rank, dst, m); err != nil {
		if err == ErrAborted {
			panic(abortError{})
		}
		// Transport misuse (e.g. an over-sized frame) is a loud local
		// protocol bug, not an abort echo: name the real cause.
		panic(err)
	}
}

func (c *Comm) recvMsg(src, tag int) Message {
	if src < 0 || src >= c.t.Size() {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	if src == c.rank {
		panic("mpi: recv from self is not supported")
	}
	m, err := c.t.Recv(c.rank, src)
	if err != nil {
		if err == ErrAborted {
			panic(abortError{})
		}
		panic(err)
	}
	if m.Tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from rank %d, got %d",
			c.rank, tag, src, m.Tag))
	}
	return m
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	if err := c.t.Barrier(c.rank); err != nil {
		panic(abortError{})
	}
}
