// Package mpi is an in-process message-passing runtime with MPI semantics.
//
// It is the substitution for mpi4py in this reproduction of PyParSVD: ranks
// are goroutines, point-to-point messages travel over per-pair FIFO
// channels, and the collectives the paper uses (Gather, Bcast, Send/Recv,
// plus Reduce/Allreduce/Scatter for completeness) are built on top. Every
// rank's traffic is counted (messages and bytes), which feeds the
// weak-scaling cost model in internal/scaling.
//
// The design goal is that code written against *Comm reads like the MPI
// calls in the paper's Listings 3 and 4, so the distributed algorithms are
// a line-by-line correspondence with the published implementation.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"goparsvd/internal/mat"
)

// message is the unit of point-to-point transfer. Matrices travel as their
// row-major backing slice plus shape; plain vectors use rows = -1.
type message struct {
	tag        int
	data       []float64
	rows, cols int
}

// World owns the communication fabric for one parallel run: the per-pair
// mailboxes, the shared barrier and the traffic counters.
type World struct {
	size int
	// mail[dst][src] is the FIFO channel for messages from src to dst.
	mail    [][]chan message
	barrier *barrier
	abort   chan struct{}
	aborted atomic.Bool

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	recvBytes []atomic.Int64 // indexed by receiving rank
}

// Stats summarizes the traffic of a completed parallel run.
type Stats struct {
	Ranks    int
	Messages int64
	Bytes    int64
	// RecvBytes[r] is the number of payload bytes delivered to rank r. It
	// exposes incast hot spots (e.g. the root of a gather) that the global
	// totals hide.
	RecvBytes []int64
}

// Comm is one rank's handle on the World. All methods are called from that
// rank's goroutine only.
type Comm struct {
	world *World
	rank  int
}

// mailboxCap is the per-pair channel buffer. Senders beyond it block, which
// mirrors MPI's rendezvous protocol for large messages.
const mailboxCap = 8

// NewWorld creates a communication fabric for size ranks. Most callers
// should use Run instead.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: world size %d < 1", size))
	}
	w := &World{
		size:      size,
		mail:      make([][]chan message, size),
		barrier:   newBarrier(size),
		abort:     make(chan struct{}),
		recvBytes: make([]atomic.Int64, size),
	}
	for dst := 0; dst < size; dst++ {
		w.mail[dst] = make([]chan message, size)
		for src := 0; src < size; src++ {
			w.mail[dst][src] = make(chan message, mailboxCap)
		}
	}
	return w
}

// Comm returns the communicator handle for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Stats returns the aggregate traffic counters.
func (w *World) Stats() Stats {
	rb := make([]int64, w.size)
	for r := range rb {
		rb[r] = w.recvBytes[r].Load()
	}
	return Stats{Ranks: w.size, Messages: w.msgsSent.Load(), Bytes: w.bytesSent.Load(), RecvBytes: rb}
}

// doAbort tears down the world after a rank panic so that peers blocked in
// Send/Recv/Barrier unblock (and themselves panic with errAborted).
func (w *World) doAbort() {
	if w.aborted.CompareAndSwap(false, true) {
		close(w.abort)
		w.barrier.abort()
	}
}

// errAborted is the panic value raised in ranks that were blocked on
// communication when another rank failed.
type abortError struct{}

func (abortError) Error() string { return "mpi: aborted because a peer rank panicked" }

// RankError reports a panic that occurred inside a rank function during Run.
type RankError struct {
	Rank  int
	Value any
}

// Error formats the rank number and the original panic value.
func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v", e.Rank, e.Value)
}

// Run executes fn concurrently on size ranks and waits for all of them. It
// returns the traffic statistics of the run. If any rank panics, the world
// is aborted (unblocking the other ranks) and the first panic is returned as
// a *RankError.
func Run(size int, fn func(c *Comm)) (Stats, error) {
	w := NewWorld(size)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *RankError
	)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, isAbort := v.(abortError); !isAbort {
						mu.Lock()
						if firstErr == nil {
							firstErr = &RankError{Rank: rank, Value: v}
						}
						mu.Unlock()
					}
					w.doAbort()
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return w.Stats(), firstErr
	}
	return w.Stats(), nil
}

// MustRun is Run for callers that treat a rank panic as fatal (tests,
// examples, benchmarks). It re-panics with the rank error.
func MustRun(size int, fn func(c *Comm)) Stats {
	stats, err := Run(size, fn)
	if err != nil {
		panic(err)
	}
	return stats
}

// Rank returns this communicator's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Send transmits a float64 slice to rank dst with the given tag. The data is
// copied, so the caller may reuse the slice immediately.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendMsg(dst, message{tag: tag, data: data, rows: -1})
}

// Recv receives a float64 slice from rank src with the given tag. Receiving
// a message whose tag does not match panics: per-pair channels are FIFO, so
// a mismatch is always a protocol bug.
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.recvMsg(src, tag)
	if m.rows != -1 {
		panic(fmt.Sprintf("mpi: rank %d expected vector from %d tag %d, got %dx%d matrix",
			c.rank, src, tag, m.rows, m.cols))
	}
	return m.data
}

// SendMatrix transmits a matrix to rank dst. The contents are copied.
func (c *Comm) SendMatrix(dst, tag int, m *mat.Dense) {
	r, cols := m.Dims()
	c.sendMsg(dst, message{tag: tag, data: m.RawData(), rows: r, cols: cols})
}

// RecvMatrix receives a matrix from rank src with the given tag.
func (c *Comm) RecvMatrix(src, tag int) *mat.Dense {
	m := c.recvMsg(src, tag)
	if m.rows < 0 {
		panic(fmt.Sprintf("mpi: rank %d expected matrix from %d tag %d, got vector",
			c.rank, src, tag))
	}
	return mat.NewFromData(m.rows, m.cols, m.data)
}

// sendMsg enqueues a message for dst, copying the payload so the sender's
// buffer (and any downstream receiver's view) can never alias in-flight or
// delivered data. Copy-on-send is centralized here so relayed collective
// hops (broadcast trees) are safe too.
func (c *Comm) sendMsg(dst int, m message) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if dst == c.rank {
		panic("mpi: send to self is not supported; collectives handle the local contribution directly")
	}
	m.data = append([]float64(nil), m.data...)
	c.world.msgsSent.Add(1)
	c.world.bytesSent.Add(int64(8 * len(m.data)))
	select {
	case c.world.mail[dst][c.rank] <- m:
	case <-c.world.abort:
		panic(abortError{})
	}
}

func (c *Comm) recvMsg(src, tag int) message {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d", src))
	}
	if src == c.rank {
		panic("mpi: recv from self is not supported")
	}
	select {
	case m := <-c.world.mail[c.rank][src]:
		if m.tag != tag {
			panic(fmt.Sprintf("mpi: rank %d expected tag %d from rank %d, got %d",
				c.rank, tag, src, m.tag))
		}
		c.world.recvBytes[c.rank].Add(int64(8 * len(m.data)))
		return m
	case <-c.world.abort:
		panic(abortError{})
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	if !c.world.barrier.await() {
		panic(abortError{})
	}
}

// barrier is a reusable counting barrier with abort support.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     int
	stopped bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all ranks arrive; it returns false if the barrier was
// aborted while waiting.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.stopped {
		b.cond.Wait()
	}
	return !b.stopped
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
