package mpi

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
)

func TestRankAndSize(t *testing.T) {
	seen := make([]atomic.Bool, 5)
	MustRun(5, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("Size() = %d, want 5", c.Size())
		}
		if seen[c.Rank()].Swap(true) {
			t.Errorf("rank %d ran twice", c.Rank())
		}
	})
	for r := range seen {
		if !seen[r].Load() {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestSendRecvVector(t *testing.T) {
	MustRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestSendCopies(t *testing.T) {
	MustRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			c.Barrier()
		} else {
			c.Barrier()
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("message not copied on send: %v", got)
			}
		}
	})
}

func TestSendRecvMatrix(t *testing.T) {
	MustRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			m := mat.NewFromRows([][]float64{{1, 2}, {3, 4}})
			c.SendMatrix(1, 3, m)
		} else {
			got := c.RecvMatrix(0, 3)
			if got.Rows() != 2 || got.Cols() != 2 || got.At(1, 1) != 4 {
				t.Errorf("RecvMatrix = %v", got)
			}
		}
	})
}

func TestTagMismatchPanics(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
		} else {
			c.Recv(0, 2) // wrong tag: protocol bug must be loud
		}
	})
	if err == nil {
		t.Fatal("tag mismatch should produce a rank error")
	}
}

func TestSendToSelfPanics(t *testing.T) {
	_, err := Run(1, func(c *Comm) {
		c.Send(0, 0, []float64{1})
	})
	if err == nil {
		t.Fatal("send-to-self should produce a rank error")
	}
}

func TestRankPanicAbortsPeers(t *testing.T) {
	// Rank 1 panics while rank 0 is blocked receiving from it; Run must not
	// deadlock and must report rank 1's panic.
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 0) // never satisfied
		} else {
			panic("deliberate failure")
		}
	})
	re, ok := err.(*RankError)
	if !ok {
		t.Fatalf("want *RankError, got %v", err)
	}
	if re.Rank != 1 {
		t.Fatalf("error attributed to rank %d, want 1", re.Rank)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var before, after atomic.Int32
	MustRun(4, func(c *Comm) {
		before.Add(1)
		c.Barrier()
		// Every rank must have incremented before any rank proceeds.
		if got := before.Load(); got != 4 {
			t.Errorf("rank %d passed barrier with before=%d", c.Rank(), got)
		}
		after.Add(1)
	})
	if after.Load() != 4 {
		t.Fatal("not all ranks passed the barrier")
	}
}

func TestBarrierReusable(t *testing.T) {
	MustRun(3, func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
}

func TestBcastFloats(t *testing.T) {
	for _, root := range []int{0, 1, 3} {
		MustRun(4, func(c *Comm) {
			var payload []float64
			if c.Rank() == root {
				payload = []float64{3.5, -1, float64(root)}
			}
			got := c.BcastFloats(root, payload)
			if len(got) != 3 || got[0] != 3.5 || got[2] != float64(root) {
				t.Errorf("rank %d root %d: BcastFloats = %v", c.Rank(), root, got)
			}
		})
	}
}

func TestBcastMatrix(t *testing.T) {
	want := mat.NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	MustRun(5, func(c *Comm) {
		var m *mat.Dense
		if c.Rank() == 2 {
			m = want
		}
		got := c.BcastMatrix(2, m)
		if !mat.EqualApprox(got, want, 0) {
			t.Errorf("rank %d: BcastMatrix mismatch", c.Rank())
		}
		// Mutating the received copy must not corrupt anyone else.
		got.Set(0, 0, -99)
	})
	if want.At(0, 0) != 1 {
		t.Fatal("broadcast aliased the root's matrix")
	}
}

func TestBcastSingleRank(t *testing.T) {
	MustRun(1, func(c *Comm) {
		got := c.BcastFloats(0, []float64{7})
		if len(got) != 1 || got[0] != 7 {
			t.Errorf("single-rank bcast = %v", got)
		}
	})
}

func TestGatherFloats(t *testing.T) {
	MustRun(4, func(c *Comm) {
		out := c.GatherFloats(0, []float64{float64(c.Rank()), 2 * float64(c.Rank())})
		if c.Rank() != 0 {
			if out != nil {
				t.Errorf("rank %d: non-root gather result must be nil", c.Rank())
			}
			return
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != 2 || out[r][0] != float64(r) || out[r][1] != 2*float64(r) {
				t.Errorf("gather[%d] = %v", r, out[r])
			}
		}
	})
}

func TestGatherMatrix(t *testing.T) {
	MustRun(3, func(c *Comm) {
		local := mat.NewFromRows([][]float64{{float64(c.Rank())}})
		out := c.GatherMatrix(0, local)
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if out[r].At(0, 0) != float64(r) {
					t.Errorf("gathered[%d] = %v", r, out[r])
				}
			}
		}
	})
}

func TestGatherMatrixRootCopyIndependent(t *testing.T) {
	MustRun(2, func(c *Comm) {
		local := mat.NewFromRows([][]float64{{float64(c.Rank())}})
		out := c.GatherMatrix(0, local)
		if c.Rank() == 0 {
			out[0].Set(0, 0, 99)
			if local.At(0, 0) != 0 {
				t.Error("root's gathered copy aliases its input")
			}
		}
	})
}

func TestAllgatherFloats(t *testing.T) {
	MustRun(4, func(c *Comm) {
		// Ragged contributions exercise the length-prefix encoding.
		contrib := make([]float64, c.Rank()+1)
		for i := range contrib {
			contrib[i] = float64(10*c.Rank() + i)
		}
		out := c.AllgatherFloats(contrib)
		if len(out) != 4 {
			t.Errorf("rank %d: allgather size %d", c.Rank(), len(out))
			return
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != r+1 {
				t.Errorf("rank %d: out[%d] len %d, want %d", c.Rank(), r, len(out[r]), r+1)
			}
			for i := range out[r] {
				if out[r][i] != float64(10*r+i) {
					t.Errorf("rank %d: out[%d][%d] = %v", c.Rank(), r, i, out[r][i])
				}
			}
		}
	})
}

func TestScatterMatrixRows(t *testing.T) {
	full := mat.NewFromRows([][]float64{{0}, {1}, {2}, {3}, {4}, {5}})
	MustRun(3, func(c *Comm) {
		var m *mat.Dense
		if c.Rank() == 0 {
			m = full
		}
		local := c.ScatterMatrixRows(0, m, []int{1, 2, 3})
		wantRows := []int{1, 2, 3}[c.Rank()]
		wantFirst := []float64{0, 1, 3}[c.Rank()]
		if local.Rows() != wantRows || local.At(0, 0) != wantFirst {
			t.Errorf("rank %d: scatter block %v", c.Rank(), local)
		}
	})
}

func TestScatterBadCountsPanics(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		var m *mat.Dense
		if c.Rank() == 0 {
			m = mat.New(3, 1)
		}
		c.ScatterMatrixRows(0, m, []int{1, 1}) // sums to 2, not 3
	})
	if err == nil {
		t.Fatal("bad scatter counts should error")
	}
}

func TestReduceSum(t *testing.T) {
	MustRun(4, func(c *Comm) {
		out := c.ReduceSum(0, []float64{1, float64(c.Rank())})
		if c.Rank() == 0 {
			if out[0] != 4 || out[1] != 0+1+2+3 {
				t.Errorf("ReduceSum = %v", out)
			}
		} else if out != nil {
			t.Errorf("non-root ReduceSum must be nil")
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	MustRun(5, func(c *Comm) {
		out := c.AllreduceSum([]float64{float64(c.Rank())})
		if out[0] != 10 {
			t.Errorf("rank %d: AllreduceSum = %v, want 10", c.Rank(), out)
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	MustRun(4, func(c *Comm) {
		out := c.AllreduceMax([]float64{float64(c.Rank()), -float64(c.Rank())})
		if out[0] != 3 || out[1] != 0 {
			t.Errorf("rank %d: AllreduceMax = %v", c.Rank(), out)
		}
	})
}

func TestTrafficCounters(t *testing.T) {
	stats := MustRun(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
		} else {
			c.Recv(0, 0)
		}
	})
	if stats.Messages != 1 {
		t.Fatalf("Messages = %d, want 1", stats.Messages)
	}
	if stats.Bytes != 80 {
		t.Fatalf("Bytes = %d, want 80", stats.Bytes)
	}
	if stats.Ranks != 2 {
		t.Fatalf("Ranks = %d, want 2", stats.Ranks)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestManyRanksPipeline(t *testing.T) {
	// A ring pipeline: each rank forwards an accumulating sum.
	const p = 16
	MustRun(p, func(c *Comm) {
		r := c.Rank()
		switch {
		case r == 0:
			c.Send(1, 0, []float64{0})
			got := c.Recv(p-1, 0)
			want := float64(p * (p - 1) / 2)
			if got[0] != want {
				t.Errorf("ring sum = %v, want %v", got[0], want)
			}
		default:
			v := c.Recv(r-1, 0)
			v[0] += float64(r)
			c.Send((r+1)%p, 0, v)
		}
	})
}

// Property: Allreduce over random vectors equals the serial sum for any
// rank count.
func TestPropertyAllreduceMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(8)
		n := 1 + rng.Intn(20)
		contribs := make([][]float64, p)
		want := make([]float64, n)
		for r := range contribs {
			contribs[r] = make([]float64, n)
			for i := range contribs[r] {
				contribs[r][i] = rng.NormFloat64()
				want[i] += contribs[r][i]
			}
		}
		ok := atomic.Bool{}
		ok.Store(true)
		MustRun(p, func(c *Comm) {
			got := c.AllreduceSum(contribs[c.Rank()])
			for i := range got {
				if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
					ok.Store(false)
				}
			}
		})
		return ok.Load()
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: broadcast delivers identical content for every root and rank
// count.
func TestPropertyBcastAllRoots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(9)
		root := rng.Intn(p)
		n := 1 + rng.Intn(30)
		payload := make([]float64, n)
		for i := range payload {
			payload[i] = rng.NormFloat64()
		}
		ok := atomic.Bool{}
		ok.Store(true)
		MustRun(p, func(c *Comm) {
			var in []float64
			if c.Rank() == root {
				in = payload
			}
			got := c.BcastFloats(root, in)
			if len(got) != n {
				ok.Store(false)
				return
			}
			for i := range got {
				if got[i] != payload[i] {
					ok.Store(false)
				}
			}
		})
		return ok.Load()
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(100))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func ExampleRun() {
	stats := MustRun(4, func(c *Comm) {
		sum := c.AllreduceSum([]float64{float64(c.Rank() + 1)})
		if c.Rank() == 0 {
			fmt.Println("sum of ranks+1:", sum[0])
		}
	})
	fmt.Println("ranks:", stats.Ranks)
	// Output:
	// sum of ranks+1: 10
	// ranks: 4
}
