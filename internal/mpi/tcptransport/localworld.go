package tcptransport

import (
	"fmt"
	"net"
	"sync"

	"goparsvd/internal/mpi"
)

// LocalWorld wires up a complete size-rank TCP fabric over loopback inside
// one process: rank 0's endpoint listens on an ephemeral port and the
// others dial it, exactly as separate worker processes would. It exists
// for tests and single-machine experiments — the real multi-process entry
// point is cmd/parsvd-worker — but the bytes still cross real sockets, so
// it exercises the full wire path. base supplies shared options (timeouts
// etc.); Rank/Size/Rendezvous/Listener are filled in per endpoint.
func LocalWorld(size int, base Options) ([]*Transport, error) {
	if size < 1 {
		return nil, fmt.Errorf("tcptransport: world size %d < 1", size)
	}
	if size == 1 {
		o := base
		o.Rank, o.Size = 0, 1
		t, err := New(o)
		if err != nil {
			return nil, err
		}
		return []*Transport{t}, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	ts := make([]*Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := base
			o.Rank, o.Size = rank, size
			if rank == 0 {
				o.Listener = l
			} else {
				o.Rendezvous = addr
			}
			ts[rank], errs[rank] = New(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, t := range ts {
				if t != nil {
					t.Abort()
				}
			}
			return nil, fmt.Errorf("tcptransport: rank %d handshake: %w", r, err)
		}
	}
	return ts, nil
}

// Run executes fn on size ranks, each backed by its own loopback TCP
// endpoint, mirroring mpi.Run's contract: it blocks until every rank
// returns, aggregates the per-endpoint traffic counters, and reports the
// first rank panic as a *mpi.RankError. It is the TCP twin of mpi.Run and
// lets the full collective/solver test suites run over real sockets.
func Run(size int, base Options, fn func(c *mpi.Comm)) (mpi.Stats, error) {
	ts, err := LocalWorld(size, base)
	if err != nil {
		return mpi.Stats{}, err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	perRank := make([]mpi.Stats, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			stats, err := mpi.RunRank(ts[rank], rank, fn)
			perRank[rank] = stats
			if err != nil {
				mu.Lock()
				// A real rank panic outranks the ErrAborted echoes it
				// causes in its peers.
				if _, isRank := err.(*mpi.RankError); isRank {
					if _, already := firstErr.(*mpi.RankError); !already {
						firstErr = err
					}
				} else if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			ts[rank].Close()
		}(r)
	}
	wg.Wait()
	agg := mpi.Stats{Ranks: size, RecvBytes: make([]int64, size)}
	for r, s := range perRank {
		agg.Messages += s.Messages
		agg.Bytes += s.Bytes
		if len(s.RecvBytes) == size {
			agg.RecvBytes[r] = s.RecvBytes[r]
		}
	}
	return agg, firstErr
}
