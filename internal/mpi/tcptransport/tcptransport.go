// Package tcptransport is the multi-process TCP backend for the mpi
// runtime: an implementation of mpi.Transport in which every OS process
// owns exactly one rank and messages travel over a full mesh of TCP
// connections using the length-prefixed wire format documented in wire.go.
//
// # Rendezvous and mesh establishment
//
// Rank 0 listens on a well-known address (the rendezvous point). Every
// worker rank r > 0 first binds its own mesh listener, then dials rank 0
// and sends a hello frame carrying its rank and the address it can be
// reached at. Once all ranks have checked in, rank 0 replies to each with
// the full address table, and the rendezvous connections are kept as the
// rank-0 spokes of the mesh. Workers then complete the mesh directly: for
// a pair of workers (i, j) with 0 < i < j, rank j dials rank i's listener
// and introduces itself with an ident frame. The result is one duplex TCP
// connection per rank pair.
//
// # Failure detection and shutdown
//
// Each connection has a reader goroutine that demultiplexes data frames
// (into per-source unbounded FIFO inboxes) and control frames (barrier,
// heartbeat, abort, bye). A heartbeat is written on every connection at a
// quarter of Options.IdleTimeout, and a reader that sees no frame for a
// full IdleTimeout — or any connection error outside a graceful shutdown —
// aborts the local transport, which best-effort notifies the remaining
// peers with abort frames so the whole distributed job unwinds through the
// same abort path the in-process fabric uses. Graceful shutdown (Close)
// announces a bye frame on every connection before closing it, so peers
// distinguish a finished rank from a crashed one.
//
// Barriers are centralized: workers send barrier-enter to rank 0 and block
// until rank 0, having counted every rank, replies barrier-release.
package tcptransport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"goparsvd/internal/mpi"
)

// Options configures one rank's endpoint of the TCP fabric.
type Options struct {
	// Rank is this process's rank in [0, Size).
	Rank int
	// Size is the world size.
	Size int
	// Rendezvous is rank 0's address. Rank 0 listens on it (unless
	// Listener is set); every other rank dials it.
	Rendezvous string
	// Listener, when set on rank 0, is the pre-bound rendezvous listener.
	// Binding first lets a launcher publish an ephemeral address (e.g.
	// 127.0.0.1:0) before New blocks waiting for workers.
	Listener net.Listener
	// ListenAddr is the bind address of this worker's mesh listener
	// (inbound connections from higher ranks). Defaults to 127.0.0.1:0;
	// set a routable host for cross-machine runs.
	ListenAddr string
	// Advertise overrides the address written into the rendezvous hello
	// (useful when the bind address, e.g. 0.0.0.0, is not dialable).
	Advertise string
	// DialTimeout bounds the whole rendezvous/handshake phase: dials,
	// hello/table/ident exchanges, and rank 0's wait for stragglers.
	// Default 30s.
	DialTimeout time.Duration
	// IdleTimeout is the failure-detection window: a connection with no
	// inbound frame for this long is declared dead and the transport
	// aborts. Heartbeats are emitted at IdleTimeout/4, so only a dead
	// peer, a partition, or a single message that cannot be transferred
	// within the window trips it. Default 2m.
	IdleTimeout time.Duration
}

func (o *Options) setDefaults() error {
	if o.Size < 1 {
		return fmt.Errorf("tcptransport: world size %d < 1", o.Size)
	}
	if o.Rank < 0 || o.Rank >= o.Size {
		return fmt.Errorf("tcptransport: rank %d out of range [0,%d)", o.Rank, o.Size)
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.Size > 1 && o.Rank > 0 && o.Rendezvous == "" {
		return fmt.Errorf("tcptransport: rank %d needs a rendezvous address", o.Rank)
	}
	if o.Size > 1 && o.Rank == 0 && o.Rendezvous == "" && o.Listener == nil {
		return fmt.Errorf("tcptransport: rank 0 needs a rendezvous address or listener")
	}
	return nil
}

// link is one live connection to a peer rank.
type link struct {
	peer int
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte // frame-encoding scratch, reused under wmu
}

// inbox is the unbounded per-source FIFO of delivered data messages.
// Unboundedness is deliberate: the reader goroutine must never stall behind
// application backpressure, or control frames (barrier, abort) queued after
// a burst of data on the same connection would deadlock the fabric.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []mpi.Message
	done bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(m mpi.Message) {
	b.mu.Lock()
	if !b.done {
		b.q = append(b.q, m)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

// close marks the stream finished; messages already delivered remain
// receivable.
func (b *inbox) close() {
	b.mu.Lock()
	b.done = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *inbox) pop() (mpi.Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 && !b.done {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		return mpi.Message{}, false
	}
	m := b.q[0]
	b.q[0] = mpi.Message{}
	b.q = b.q[1:]
	return m, true
}

// Transport is one rank's endpoint of the TCP fabric. It implements
// mpi.Transport with the restriction that Send requires src == Rank and
// Recv requires dst == Rank — which is exactly how mpi.Comm drives it.
type Transport struct {
	rank, size  int
	idleTimeout time.Duration

	links   []*link  // indexed by peer rank; links[rank] == nil
	inboxes []*inbox // indexed by source rank

	// Centralized barrier state: rank 0 counts enters, workers await the
	// release. Capacities are sized so reader goroutines never block here
	// (each peer has at most one outstanding barrier frame).
	barEnter   chan struct{}
	barRelease chan struct{}

	abortCh   chan struct{}
	aborted   atomic.Bool
	closing   atomic.Bool
	closeOnce sync.Once
	stopPing  chan struct{}
	pingOnce  sync.Once
	wg        sync.WaitGroup

	msgsSent  atomic.Int64
	bytesSent atomic.Int64
	recvOwn   atomic.Int64
}

var _ mpi.Transport = (*Transport)(nil)

// New establishes this rank's endpoint of the fabric: it performs the
// rendezvous, completes the connection mesh, and starts the reader and
// heartbeat goroutines. It blocks until every rank is connected (bounded
// by Options.DialTimeout) — when New returns on every rank, the world is
// fully wired.
func New(opts Options) (*Transport, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	t := &Transport{
		rank:        opts.Rank,
		size:        opts.Size,
		idleTimeout: opts.IdleTimeout,
		links:       make([]*link, opts.Size),
		inboxes:     make([]*inbox, opts.Size),
		barEnter:    make(chan struct{}, opts.Size),
		barRelease:  make(chan struct{}, 1),
		abortCh:     make(chan struct{}),
		stopPing:    make(chan struct{}),
	}
	for r := range t.inboxes {
		if r != t.rank {
			t.inboxes[r] = newInbox()
		}
	}
	if t.size == 1 {
		return t, nil
	}
	deadline := time.Now().Add(opts.DialTimeout)
	var err error
	if t.rank == 0 {
		err = t.rendezvousRoot(opts, deadline)
	} else {
		err = t.rendezvousWorker(opts, deadline)
	}
	if err != nil {
		t.Abort()
		return nil, err
	}
	for _, l := range t.links {
		if l != nil {
			t.wg.Add(1)
			go t.reader(l)
		}
	}
	t.wg.Add(1)
	go t.heartbeat()
	return t, nil
}

// rendezvousRoot accepts one hello per worker, records the advertised mesh
// addresses, and answers each worker with the full table. The rendezvous
// connections become the rank-0 spokes of the mesh.
func (t *Transport) rendezvousRoot(opts Options, deadline time.Time) error {
	l := opts.Listener
	if l == nil {
		var err error
		l, err = net.Listen("tcp", opts.Rendezvous)
		if err != nil {
			return fmt.Errorf("tcptransport: rendezvous listen: %w", err)
		}
	}
	defer l.Close()
	if tl, ok := l.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	addrs := make([]string, t.size)
	for i := 0; i < t.size-1; i++ {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("tcptransport: rank 0 waiting for %d more ranks: %w", t.size-1-i, err)
		}
		rank, addr, err := t.expectHello(conn, deadline)
		if err != nil {
			conn.Close()
			return err
		}
		if rank < 1 || rank >= t.size || t.links[rank] != nil {
			conn.Close()
			return fmt.Errorf("tcptransport: rendezvous hello from invalid or duplicate rank %d", rank)
		}
		addrs[rank] = addr
		t.links[rank] = newLink(rank, conn)
	}
	table := appendTable(nil, addrs)
	for r := 1; r < t.size; r++ {
		if err := t.writeRaw(t.links[r], table, deadline); err != nil {
			return fmt.Errorf("tcptransport: sending table to rank %d: %w", r, err)
		}
	}
	return nil
}

// rendezvousWorker checks in with rank 0, learns the address table, dials
// every lower worker and accepts every higher one.
func (t *Transport) rendezvousWorker(opts Options, deadline time.Time) error {
	// Bind the mesh listener before checking in, so the advertised address
	// is live by the time any peer reads the table. The highest rank
	// accepts no inbound connections and skips the listener entirely.
	var ml net.Listener
	advertise := opts.Advertise
	if t.rank < t.size-1 {
		var err error
		ml, err = net.Listen("tcp", opts.ListenAddr)
		if err != nil {
			return fmt.Errorf("tcptransport: mesh listen: %w", err)
		}
		defer ml.Close()
		if advertise == "" {
			advertise = ml.Addr().String()
		}
	}

	conn0, err := net.DialTimeout("tcp", opts.Rendezvous, time.Until(deadline))
	if err != nil {
		return fmt.Errorf("tcptransport: dialing rendezvous %s: %w", opts.Rendezvous, err)
	}
	t.links[0] = newLink(0, conn0)
	if err := t.writeRaw(t.links[0], appendHello(nil, t.rank, advertise), deadline); err != nil {
		return fmt.Errorf("tcptransport: sending hello: %w", err)
	}
	conn0.SetReadDeadline(deadline)
	kind, body, err := readFrame(conn0, new([4]byte))
	if err != nil || kind != kindTable {
		return fmt.Errorf("tcptransport: waiting for address table: kind=%d err=%v", kind, err)
	}
	addrs, err := decodeTable(body)
	if err != nil {
		return err
	}
	if len(addrs) != t.size {
		return fmt.Errorf("tcptransport: address table has %d entries, want %d", len(addrs), t.size)
	}
	conn0.SetReadDeadline(time.Time{})

	// Dial every lower worker; introduce ourselves with an ident frame.
	for peer := 1; peer < t.rank; peer++ {
		c, err := net.DialTimeout("tcp", addrs[peer], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("tcptransport: dialing rank %d at %s: %w", peer, addrs[peer], err)
		}
		t.links[peer] = newLink(peer, c)
		if err := t.writeRaw(t.links[peer], appendIdent(nil, t.rank), deadline); err != nil {
			return fmt.Errorf("tcptransport: ident to rank %d: %w", peer, err)
		}
	}
	// Accept every higher worker.
	for need := t.size - 1 - t.rank; need > 0; need-- {
		if tl, ok := ml.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := ml.Accept()
		if err != nil {
			return fmt.Errorf("tcptransport: rank %d waiting for %d more mesh peers: %w", t.rank, need, err)
		}
		c.SetReadDeadline(deadline)
		kind, body, err := readFrame(c, new([4]byte))
		if err != nil || kind != kindIdent {
			c.Close()
			return fmt.Errorf("tcptransport: bad mesh introduction: kind=%d err=%v", kind, err)
		}
		peer, err := decodeIdent(body)
		if err != nil {
			c.Close()
			return err
		}
		if peer <= t.rank || peer >= t.size || t.links[peer] != nil {
			c.Close()
			return fmt.Errorf("tcptransport: mesh ident from invalid or duplicate rank %d", peer)
		}
		c.SetReadDeadline(time.Time{})
		t.links[peer] = newLink(peer, c)
	}
	return nil
}

func newLink(peer int, conn net.Conn) *link {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &link{peer: peer, conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}
}

func (t *Transport) expectHello(conn net.Conn, deadline time.Time) (rank int, addr string, err error) {
	conn.SetReadDeadline(deadline)
	kind, body, err := readFrame(conn, new([4]byte))
	if err != nil {
		return 0, "", fmt.Errorf("tcptransport: reading hello: %w", err)
	}
	if kind != kindHello {
		return 0, "", fmt.Errorf("tcptransport: expected hello, got frame kind %d", kind)
	}
	conn.SetReadDeadline(time.Time{})
	return decodeHello(body)
}

// writeRaw writes a pre-encoded frame under the link's write lock.
func (t *Transport) writeRaw(l *link, frame []byte, deadline time.Time) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.conn.SetWriteDeadline(deadline)
	if _, err := l.bw.Write(frame); err != nil {
		return err
	}
	return l.bw.Flush()
}

// writeControl writes a bodyless frame with the steady-state write
// deadline.
func (t *Transport) writeControl(l *link, kind byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.conn.SetWriteDeadline(time.Now().Add(t.idleTimeout))
	l.wbuf = appendControl(l.wbuf[:0], kind)
	if _, err := l.bw.Write(l.wbuf); err != nil {
		return err
	}
	return l.bw.Flush()
}

// reader drains one connection, demultiplexing data into the peer's inbox
// and control frames into the barrier/abort machinery. Any error outside a
// graceful shutdown aborts the transport.
func (t *Transport) reader(l *link) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(l.conn, 1<<16)
	var hdr [4]byte
	for {
		l.conn.SetReadDeadline(time.Now().Add(t.idleTimeout))
		kind, body, err := readFrame(br, &hdr)
		if err != nil {
			if t.closing.Load() || t.aborted.Load() {
				t.inboxes[l.peer].close()
				return
			}
			// EOF without a bye, a reset, or an idle timeout: the peer is
			// gone. Tear the world down.
			t.Abort()
			return
		}
		switch kind {
		case kindData:
			m, err := decodeData(body)
			if err != nil {
				t.Abort()
				return
			}
			t.recvOwn.Add(int64(8 * len(m.Data)))
			t.inboxes[l.peer].push(m)
		case kindPing:
			// Liveness only; resetting the read deadline was the point.
		case kindBarrierEnter:
			select {
			case t.barEnter <- struct{}{}:
			default:
				t.Abort() // >1 outstanding enter per peer: protocol violation
				return
			}
		case kindBarrierRelease:
			select {
			case t.barRelease <- struct{}{}:
			default:
				t.Abort()
				return
			}
		case kindAbort:
			t.Abort()
			return
		case kindBye:
			// Peer finished cleanly; whatever it sent stays receivable.
			t.inboxes[l.peer].close()
			return
		default:
			t.Abort()
			return
		}
	}
}

// heartbeat keeps every connection warm so silence means failure, not idle
// compute: a rank deep in a local factorization still pings its peers.
func (t *Transport) heartbeat() {
	defer t.wg.Done()
	tick := time.NewTicker(t.idleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-t.stopPing:
			return
		case <-tick.C:
			for _, l := range t.links {
				if l == nil {
					continue
				}
				if err := t.writeControl(l, kindPing); err != nil {
					t.Abort()
					return
				}
			}
		}
	}
}

func (t *Transport) down() bool { return t.aborted.Load() || t.closing.Load() }

// Size returns the world size.
func (t *Transport) Size() int { return t.size }

// Rank returns this endpoint's rank.
func (t *Transport) Rank() int { return t.rank }

// Send serializes m onto the connection to dst. src must be this
// endpoint's own rank.
func (t *Transport) Send(src, dst int, m mpi.Message) error {
	if src != t.rank {
		return fmt.Errorf("tcptransport: rank %d cannot send as rank %d", t.rank, src)
	}
	if dst < 0 || dst >= t.size || dst == t.rank {
		return fmt.Errorf("tcptransport: send to invalid rank %d", dst)
	}
	if 8*len(m.Data)+dataHeaderLen+1 > maxFrame {
		// Reject over-sized payloads on the sending side: past the u32
		// length prefix they could not be framed (and a silently wrapped
		// length would desynchronize the stream), and failing here names
		// the offending rank instead of surfacing as a remote decode
		// abort on the receiver.
		return fmt.Errorf("tcptransport: message of %d floats exceeds the %d-byte frame limit",
			len(m.Data), maxFrame)
	}
	if t.down() {
		return mpi.ErrAborted
	}
	l := t.links[dst]
	l.wmu.Lock()
	l.conn.SetWriteDeadline(time.Now().Add(t.idleTimeout))
	l.wbuf = appendData(l.wbuf[:0], m)
	_, err := l.bw.Write(l.wbuf)
	if err == nil {
		err = l.bw.Flush()
	}
	l.wmu.Unlock()
	if err != nil {
		t.Abort()
		return mpi.ErrAborted
	}
	t.msgsSent.Add(1)
	t.bytesSent.Add(int64(8 * len(m.Data)))
	return nil
}

// Recv blocks for the next message from src. dst must be this endpoint's
// own rank.
func (t *Transport) Recv(dst, src int) (mpi.Message, error) {
	if dst != t.rank {
		return mpi.Message{}, fmt.Errorf("tcptransport: rank %d cannot receive as rank %d", t.rank, dst)
	}
	if src < 0 || src >= t.size || src == t.rank {
		return mpi.Message{}, fmt.Errorf("tcptransport: recv from invalid rank %d", src)
	}
	m, ok := t.inboxes[src].pop()
	if !ok {
		return mpi.Message{}, mpi.ErrAborted
	}
	return m, nil
}

// Barrier blocks until every rank has entered. Workers report to rank 0
// and wait for its release; rank 0 counts the reports.
func (t *Transport) Barrier(rank int) error {
	if rank != t.rank {
		return fmt.Errorf("tcptransport: rank %d cannot enter barrier as rank %d", t.rank, rank)
	}
	if t.size == 1 {
		return nil
	}
	if t.down() {
		return mpi.ErrAborted
	}
	if t.rank == 0 {
		for seen := 0; seen < t.size-1; seen++ {
			select {
			case <-t.barEnter:
			case <-t.abortCh:
				return mpi.ErrAborted
			}
		}
		for r := 1; r < t.size; r++ {
			if err := t.writeControl(t.links[r], kindBarrierRelease); err != nil {
				t.Abort()
				return mpi.ErrAborted
			}
		}
		return nil
	}
	if err := t.writeControl(t.links[0], kindBarrierEnter); err != nil {
		t.Abort()
		return mpi.ErrAborted
	}
	select {
	case <-t.barRelease:
		return nil
	case <-t.abortCh:
		return mpi.ErrAborted
	}
}

// Abort tears the fabric down: pending and future operations fail with
// mpi.ErrAborted, and live peers are notified best-effort with abort
// frames so the whole distributed job unwinds. Safe from any goroutine.
func (t *Transport) Abort() {
	if !t.aborted.CompareAndSwap(false, true) {
		return
	}
	close(t.abortCh)
	t.pingOnce.Do(func() { close(t.stopPing) })
	for _, l := range t.links {
		if l == nil {
			continue
		}
		// TryLock: a writer stuck on a dead connection holds wmu until its
		// deadline; closing the conn below unblocks it, and the abort
		// frame is best-effort anyway.
		if l.wmu.TryLock() {
			l.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			l.wbuf = appendControl(l.wbuf[:0], kindAbort)
			l.bw.Write(l.wbuf)
			l.bw.Flush()
			l.wmu.Unlock()
		}
		l.conn.Close()
	}
	for _, b := range t.inboxes {
		if b != nil {
			b.close()
		}
	}
}

// Stats returns this endpoint's traffic counters. Only the owning rank's
// RecvBytes entry is populated; a launcher aggregates the per-process
// reports (scaling.AggregateStats).
func (t *Transport) Stats() mpi.Stats {
	rb := make([]int64, t.size)
	rb[t.rank] = t.recvOwn.Load()
	return mpi.Stats{
		Ranks:     t.size,
		Messages:  t.msgsSent.Load(),
		Bytes:     t.bytesSent.Load(),
		RecvBytes: rb,
	}
}

// Close shuts the endpoint down gracefully after a successful run: a bye
// frame is announced on every connection, then the connections are closed
// and the reader and heartbeat goroutines are joined. Idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		t.pingOnce.Do(func() { close(t.stopPing) })
		if !t.aborted.Load() {
			for _, l := range t.links {
				if l == nil {
					continue
				}
				l.wmu.Lock()
				l.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				l.wbuf = appendControl(l.wbuf[:0], kindBye)
				l.bw.Write(l.wbuf)
				l.bw.Flush()
				l.wmu.Unlock()
			}
		}
		for _, l := range t.links {
			if l != nil {
				l.conn.Close()
			}
		}
		for _, b := range t.inboxes {
			if b != nil {
				b.close()
			}
		}
		t.wg.Wait()
	})
	return nil
}
