package tcptransport_test

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
	"goparsvd/internal/mpi/transporttest"
	"goparsvd/internal/tsqr"
)

// runTCP adapts tcptransport.Run to the conformance Runner signature with
// test-friendly timeouts.
func runTCP(size int, fn func(c *mpi.Comm)) error {
	_, err := tcptransport.Run(size, testOptions(), fn)
	return err
}

func testOptions() tcptransport.Options {
	return tcptransport.Options{
		DialTimeout: 10 * time.Second,
		IdleTimeout: 30 * time.Second,
	}
}

// TestTCPTransportRoundTrip runs the shared transport-conformance suite
// over real loopback sockets.
func TestTCPTransportRoundTrip(t *testing.T) {
	transporttest.RoundTrip(t, runTCP)
}

// TestTCPCollectives exercises the full collective surface — broadcast,
// gather, scatter, reductions, allgather — over the TCP fabric. These are
// the exact calls core.Parallel makes, so passing here means the SVD
// pipeline is transport-clean.
func TestTCPCollectives(t *testing.T) {
	const p = 4
	err := runTCP(p, func(c *mpi.Comm) {
		// Bcast from a non-zero root.
		got := c.BcastFloats(2, pick(c.Rank() == 2, []float64{3, 1, 4}, nil))
		if len(got) != 3 || got[0] != 3 || got[2] != 4 {
			t.Errorf("rank %d: BcastFloats = %v", c.Rank(), got)
		}
		// Gather at root.
		g := c.GatherFloats(0, []float64{float64(c.Rank())})
		if c.Rank() == 0 {
			for r := 0; r < p; r++ {
				if len(g[r]) != 1 || g[r][0] != float64(r) {
					t.Errorf("gather[%d] = %v", r, g[r])
				}
			}
		} else if g != nil {
			t.Errorf("rank %d: non-root gather not nil", c.Rank())
		}
		// Allreduce.
		sum := c.AllreduceSum([]float64{1})
		if sum[0] != p {
			t.Errorf("rank %d: AllreduceSum = %v", c.Rank(), sum)
		}
		// Scatter matrix rows.
		var m *mat.Dense
		if c.Rank() == 0 {
			m = mat.NewFromRows([][]float64{{0}, {1}, {2}, {3}, {4}, {5}})
		}
		local := c.ScatterMatrixRows(0, m, []int{1, 2, 2, 1})
		wantRows := []int{1, 2, 2, 1}[c.Rank()]
		if local.Rows() != wantRows {
			t.Errorf("rank %d: scatter rows = %d, want %d", c.Rank(), local.Rows(), wantRows)
		}
		// Allgather with ragged contributions.
		all := c.AllgatherFloats(make([]float64, c.Rank()+1))
		for r := 0; r < p; r++ {
			if len(all[r]) != r+1 {
				t.Errorf("rank %d: allgather[%d] len %d", c.Rank(), r, len(all[r]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPBarrierOrdering verifies the centralized barrier has full-barrier
// semantics: no rank proceeds before every rank has entered.
func TestTCPBarrierOrdering(t *testing.T) {
	var before, after atomic.Int32
	err := runTCP(4, func(c *mpi.Comm) {
		for i := 0; i < 5; i++ { // reusable across generations
			before.Add(1)
			c.Barrier()
			if got := before.Load(); got < int32(4*(i+1)) {
				t.Errorf("rank %d passed barrier %d with before=%d", c.Rank(), i, got)
			}
			c.Barrier()
			after.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 20 {
		t.Fatalf("after = %d, want 20", after.Load())
	}
}

// TestTCPPanicAbortsPeers injects a rank failure mid-collective and
// requires the whole TCP world to unwind: the panic is attributed to the
// failing rank and the peers blocked in Recv/Barrier return instead of
// hanging.
func TestTCPPanicAbortsPeers(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := tcptransport.Run(4, testOptions(), func(c *mpi.Comm) {
			if c.Rank() == 2 {
				panic("rank 2 failed before contributing")
			}
			c.GatherFloats(0, []float64{1}) // root blocks on rank 2 forever
			c.Barrier()
		})
		done <- err
	}()
	select {
	case err := <-done:
		re := new(mpi.RankError)
		if !errors.As(err, &re) || re.Rank != 2 {
			t.Fatalf("err = %v, want RankError from rank 2", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("TCP abort propagation deadlocked")
	}
}

// TestTCPTrafficCounters checks the aggregated counters match the payload
// actually shipped (one 10-float vector = 80 bytes).
func TestTCPTrafficCounters(t *testing.T) {
	stats, err := tcptransport.Run(2, testOptions(), func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 || stats.Bytes != 80 {
		t.Fatalf("stats = %+v, want 1 message / 80 bytes", stats)
	}
	if stats.RecvBytes[1] != 80 || stats.RecvBytes[0] != 0 {
		t.Fatalf("RecvBytes = %v, want [0 80]", stats.RecvBytes)
	}
}

// TestTCPGatherQRMatchesChan runs the paper's distributed QR (Listing 4)
// over both fabrics on identical inputs and requires bit-identical
// factors: the transport must be invisible to the numerics.
func TestTCPGatherQRMatchesChan(t *testing.T) {
	const p, rows, cols = 4, 32, 6
	blocks := make([]*mat.Dense, p)
	for r := range blocks {
		m := mat.New(rows, cols)
		raw := m.RawData()
		for i := range raw {
			raw[i] = math.Sin(float64(i+1) * float64(r+1) * 0.7)
		}
		blocks[r] = m
	}
	type result struct {
		q []*mat.Dense
		r *mat.Dense
	}
	collect := func(run transporttest.Runner) result {
		res := result{q: make([]*mat.Dense, p)}
		if err := run(p, func(c *mpi.Comm) {
			q, rf := tsqr.GatherQR(c, blocks[c.Rank()].Clone())
			res.q[c.Rank()] = q
			if c.Rank() == 0 {
				res.r = rf
			}
		}); err != nil {
			t.Fatal(err)
		}
		return res
	}
	viaChan := collect(func(size int, fn func(c *mpi.Comm)) error {
		_, err := mpi.Run(size, fn)
		return err
	})
	viaTCP := collect(runTCP)
	for r := 0; r < p; r++ {
		if !bitsEqual(viaChan.q[r].RawData(), viaTCP.q[r].RawData()) {
			t.Errorf("rank %d: Q differs between chan and tcp transports", r)
		}
	}
	if !bitsEqual(viaChan.r.RawData(), viaTCP.r.RawData()) {
		t.Error("global R differs between chan and tcp transports")
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func pick[T any](cond bool, a, b T) T {
	if cond {
		return a
	}
	return b
}
