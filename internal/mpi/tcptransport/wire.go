package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"goparsvd/internal/mpi"
)

// Wire format. Every frame is length-prefixed:
//
//	frame := length:u32le  kind:u8  body
//
// where length counts the kind byte plus the body. Kinds:
//
//	hello   := magic:[4]byte  rank:i64le  addrLen:u16le  addr:[addrLen]byte
//	table   := count:u64le  count × (addrLen:u16le  addr:[addrLen]byte)
//	ident   := magic:[4]byte  rank:i64le
//	data    := tag:i64le  rows:i64le  cols:i64le  n:u64le  n × f64le
//	barrier-enter, barrier-release, ping, abort, bye := (empty body)
//
// Data frames carry mpi.Message verbatim: float64 payloads are transmitted
// as their IEEE-754 bit patterns (little-endian), so a matrix round-trips
// bit-for-bit — including NaNs, infinities and signed zeros — and a
// multi-process run reproduces the in-process result exactly.
const (
	kindHello byte = iota + 1
	kindTable
	kindIdent
	kindData
	kindBarrierEnter
	kindBarrierRelease
	kindPing
	kindAbort
	kindBye
)

// magic opens hello and ident frames so a stray connection (port scanner,
// misconfigured peer) is rejected during the handshake instead of being
// misread as a rank.
var magic = [4]byte{'g', 'P', 'S', 'V'}

// maxFrame bounds a single frame (1 GiB of payload plus headers); anything
// larger is treated as a corrupted stream.
const maxFrame = 1<<30 + 64

// dataHeaderLen is tag + rows + cols + n.
const dataHeaderLen = 8 + 8 + 8 + 8

// appendFrameHeader appends the u32 length prefix and kind byte for a body
// of the given length.
func appendFrameHeader(buf []byte, kind byte, bodyLen int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen+1))
	return append(buf, kind)
}

// appendData appends a complete data frame carrying m.
func appendData(buf []byte, m mpi.Message) []byte {
	buf = appendFrameHeader(buf, kindData, dataHeaderLen+8*len(m.Data))
	return AppendMessageBody(buf, m)
}

// AppendMessageBody appends the body of a data frame — tag, dims, count,
// then the float64 payload as IEEE-754 little-endian bit patterns. It is
// exported so other launcher↔worker protocols (the internal/launch session
// protocol carrying snapshot blocks over worker stdin) share the exact
// framing that makes matrices round-trip bit-for-bit, including NaNs,
// infinities and signed zeros.
func AppendMessageBody(buf []byte, m mpi.Message) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Tag)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Rows)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.Cols)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.Data)))
	for _, v := range m.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// decodeData parses the body of a data frame.
func decodeData(body []byte) (mpi.Message, error) { return DecodeMessageBody(body) }

// DecodeMessageBody parses a data-frame body produced by
// AppendMessageBody. The declared float count is validated against the
// bytes actually present before any allocation, so a corrupt or hostile
// length can neither over-allocate nor panic.
func DecodeMessageBody(body []byte) (mpi.Message, error) {
	if len(body) < dataHeaderLen {
		return mpi.Message{}, fmt.Errorf("tcptransport: data frame truncated (%d bytes)", len(body))
	}
	m := mpi.Message{
		Tag:  int(int64(binary.LittleEndian.Uint64(body[0:]))),
		Rows: int(int64(binary.LittleEndian.Uint64(body[8:]))),
		Cols: int(int64(binary.LittleEndian.Uint64(body[16:]))),
	}
	// Overflow-safe count check: divide the payload instead of
	// multiplying the (attacker-controlled) count — 8·n wraps uint64 for
	// n ≥ 2^61 and could otherwise alias a small payload length, driving
	// make() below into a huge allocation or a panic.
	n := binary.LittleEndian.Uint64(body[24:])
	payload := len(body) - dataHeaderLen
	if payload%8 != 0 || n != uint64(payload/8) {
		return mpi.Message{}, fmt.Errorf("tcptransport: data frame declares %d floats, carries %d bytes",
			n, payload)
	}
	if n > 0 {
		m.Data = make([]float64, n)
		for i := range m.Data {
			m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[dataHeaderLen+8*i:]))
		}
	}
	return m, nil
}

// appendHello appends a complete hello frame (rank plus the address the
// peer's mesh listener advertises; empty when the rank accepts no inbound
// mesh connections).
func appendHello(buf []byte, rank int, addr string) []byte {
	buf = appendFrameHeader(buf, kindHello, 4+8+2+len(addr))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(rank)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(addr)))
	return append(buf, addr...)
}

func decodeHello(body []byte) (rank int, addr string, err error) {
	if len(body) < 4+8+2 || [4]byte(body[:4]) != magic {
		return 0, "", fmt.Errorf("tcptransport: bad hello frame")
	}
	rank = int(int64(binary.LittleEndian.Uint64(body[4:])))
	n := int(binary.LittleEndian.Uint16(body[12:]))
	if len(body) != 14+n {
		return 0, "", fmt.Errorf("tcptransport: hello frame length mismatch")
	}
	return rank, string(body[14:]), nil
}

// appendIdent appends a complete ident frame (a worker introducing itself
// on a direct mesh connection).
func appendIdent(buf []byte, rank int) []byte {
	buf = appendFrameHeader(buf, kindIdent, 4+8)
	buf = append(buf, magic[:]...)
	return binary.LittleEndian.AppendUint64(buf, uint64(int64(rank)))
}

func decodeIdent(body []byte) (rank int, err error) {
	if len(body) != 4+8 || [4]byte(body[:4]) != magic {
		return 0, fmt.Errorf("tcptransport: bad ident frame")
	}
	return int(int64(binary.LittleEndian.Uint64(body[4:]))), nil
}

// appendTable appends a complete table frame: the rendezvous root's address
// book, indexed by rank (entry 0 is unused and empty).
func appendTable(buf []byte, addrs []string) []byte {
	bodyLen := 8
	for _, a := range addrs {
		bodyLen += 2 + len(a)
	}
	buf = appendFrameHeader(buf, kindTable, bodyLen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeTable(body []byte) ([]string, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("tcptransport: table frame truncated")
	}
	count := binary.LittleEndian.Uint64(body)
	if count > 1<<20 {
		return nil, fmt.Errorf("tcptransport: absurd table size %d", count)
	}
	addrs := make([]string, count)
	off := 8
	for i := range addrs {
		if len(body) < off+2 {
			return nil, fmt.Errorf("tcptransport: table frame truncated")
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body) < off+n {
			return nil, fmt.Errorf("tcptransport: table frame truncated")
		}
		addrs[i] = string(body[off : off+n])
		off += n
	}
	if off != len(body) {
		return nil, fmt.Errorf("tcptransport: table frame has %d trailing bytes", len(body)-off)
	}
	return addrs, nil
}

// appendControl appends a bodyless frame of the given kind.
func appendControl(buf []byte, kind byte) []byte {
	return appendFrameHeader(buf, kind, 0)
}

// readFrame reads one length-prefixed frame from r.
func readFrame(r io.Reader, hdr *[4]byte) (kind byte, body []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("tcptransport: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("tcptransport: short frame: %w", err)
	}
	return buf[0], buf[1:], nil
}
