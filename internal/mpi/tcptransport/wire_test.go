package tcptransport

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"goparsvd/internal/mpi"
)

// TestWireDataRoundTrip property-checks the data-frame codec directly:
// random shapes (including empty and single-element) and adversarial float
// bit patterns must survive encode → frame read → decode unchanged.
func TestWireDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, math.MaxFloat64}
	cases := []mpi.Message{
		{Tag: 0, Data: nil, Rows: -1},                           // empty vector
		{Tag: 1, Data: []float64{42}, Rows: -1},                 // single element
		{Tag: -3, Data: []float64{}, Rows: 0, Cols: 0},          // empty matrix
		{Tag: 9, Data: specials, Rows: 2, Cols: 3},              // special values
		{Tag: 1 << 40, Data: []float64{1, 2}, Rows: 1, Cols: 2}, // tag beyond 32 bits
	}
	for trial := 0; trial < 50; trial++ {
		r, c := rng.Intn(12), rng.Intn(12)
		data := make([]float64, r*c)
		for i := range data {
			data[i] = specials[rng.Intn(len(specials))]
			if rng.Intn(2) == 0 {
				data[i] = rng.NormFloat64()
			}
		}
		cases = append(cases, mpi.Message{Tag: rng.Intn(100) - 50, Data: data, Rows: r, Cols: c})
	}
	for i, want := range cases {
		frame := appendData(nil, want)
		kind, body, err := readFrame(bytes.NewReader(frame), new([4]byte))
		if err != nil || kind != kindData {
			t.Fatalf("case %d: readFrame kind=%d err=%v", i, kind, err)
		}
		got, err := decodeData(body)
		if err != nil {
			t.Fatalf("case %d: decodeData: %v", i, err)
		}
		if got.Tag != want.Tag || got.Rows != want.Rows || got.Cols != want.Cols || len(got.Data) != len(want.Data) {
			t.Fatalf("case %d: header mismatch: got %+v want %+v", i, got, want)
		}
		for j := range want.Data {
			if math.Float64bits(got.Data[j]) != math.Float64bits(want.Data[j]) {
				t.Fatalf("case %d: element %d changed bits: %x -> %x", i, j,
					math.Float64bits(want.Data[j]), math.Float64bits(got.Data[j]))
			}
		}
	}
}

func TestWireHandshakeFrames(t *testing.T) {
	frame := appendHello(nil, 3, "10.0.0.7:9000")
	kind, body, err := readFrame(bytes.NewReader(frame), new([4]byte))
	if err != nil || kind != kindHello {
		t.Fatalf("hello: kind=%d err=%v", kind, err)
	}
	rank, addr, err := decodeHello(body)
	if err != nil || rank != 3 || addr != "10.0.0.7:9000" {
		t.Fatalf("decodeHello = (%d, %q, %v)", rank, addr, err)
	}

	frame = appendIdent(nil, 11)
	kind, body, err = readFrame(bytes.NewReader(frame), new([4]byte))
	if err != nil || kind != kindIdent {
		t.Fatalf("ident: kind=%d err=%v", kind, err)
	}
	if rank, err := decodeIdent(body); err != nil || rank != 11 {
		t.Fatalf("decodeIdent = (%d, %v)", rank, err)
	}

	addrs := []string{"", "127.0.0.1:41001", "127.0.0.1:41002", ""}
	frame = appendTable(nil, addrs)
	kind, body, err = readFrame(bytes.NewReader(frame), new([4]byte))
	if err != nil || kind != kindTable {
		t.Fatalf("table: kind=%d err=%v", kind, err)
	}
	got, err := decodeTable(body)
	if err != nil || len(got) != len(addrs) {
		t.Fatalf("decodeTable = (%v, %v)", got, err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("table[%d] = %q, want %q", i, got[i], addrs[i])
		}
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	// A zero-length frame and an absurd length must both be rejected.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0, 1}), new([4]byte)); err == nil {
		t.Error("zero-length frame accepted")
	}
	if _, _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 1}), new([4]byte)); err == nil {
		t.Error("oversized frame accepted")
	}
	// A data body whose float count disagrees with its length is corrupt.
	frame := appendData(nil, mpi.Message{Tag: 1, Data: []float64{1, 2, 3}, Rows: -1})
	if _, err := decodeData(frame[5 : len(frame)-8]); err == nil {
		t.Error("truncated data body accepted")
	}
	// Hello/ident without the magic must be rejected.
	if _, _, err := decodeHello(make([]byte, 14)); err == nil {
		t.Error("hello without magic accepted")
	}
	if _, err := decodeIdent(make([]byte, 12)); err == nil {
		t.Error("ident without magic accepted")
	}
}

// TestIdleTimeoutAborts verifies deadline-based failure detection: a peer
// that goes silent (heartbeats stopped, nothing sent) is declared dead
// after IdleTimeout and the survivor's blocked Recv unwinds via the abort
// path instead of hanging.
func TestIdleTimeoutAborts(t *testing.T) {
	ts, err := LocalWorld(2, Options{IdleTimeout: 400 * time.Millisecond, DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ts[0].Close()
	defer ts[1].Close()
	// Silence rank 1: stop its heartbeat without any shutdown protocol, as
	// if the process were wedged (not crashed — the socket stays open).
	ts[1].pingOnce.Do(func() { close(ts[1].stopPing) })

	done := make(chan error, 1)
	go func() {
		_, err := ts[0].Recv(0, 1) // nothing will ever arrive
		done <- err
	}()
	select {
	case err := <-done:
		if err != mpi.ErrAborted {
			t.Fatalf("Recv after peer went silent: err = %v, want ErrAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle-timeout failure detection never fired")
	}
}

// TestAbruptDisconnectAborts verifies the crash path: a peer that vanishes
// without the bye handshake (connection reset/EOF) aborts the survivor.
func TestAbruptDisconnectAborts(t *testing.T) {
	ts, err := LocalWorld(2, Options{IdleTimeout: 30 * time.Second, DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ts[0].Close()
	// Simulate a crash: rank 1's socket dies with no shutdown protocol.
	ts[1].links[0].conn.Close()

	done := make(chan error, 1)
	go func() {
		_, err := ts[0].Recv(0, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != mpi.ErrAborted {
			t.Fatalf("Recv after peer crash: err = %v, want ErrAborted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crash detection never fired")
	}
}

// TestGracefulCloseDeliversPending verifies bye semantics: messages sent
// before a graceful Close stay receivable, and only then does the stream
// report termination.
func TestGracefulCloseDeliversPending(t *testing.T) {
	ts, err := LocalWorld(2, Options{DialTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ts[0].Close()
	if err := ts[1].Send(1, 0, mpi.Message{Tag: 5, Data: []float64{1, 2}, Rows: -1}); err != nil {
		t.Fatal(err)
	}
	ts[1].Close()
	m, err := ts[0].Recv(0, 1)
	if err != nil || m.Tag != 5 || len(m.Data) != 2 {
		t.Fatalf("pending message lost across graceful close: m=%+v err=%v", m, err)
	}
	if _, err := ts[0].Recv(0, 1); err != mpi.ErrAborted {
		t.Fatalf("post-close Recv err = %v, want ErrAborted", err)
	}
}
