package mpi

import "errors"

// Message is the unit of point-to-point transfer between ranks. Matrices
// travel as their row-major backing slice plus shape; plain vectors use
// Rows = -1. The struct is transport-agnostic: the in-process fabric moves
// it through channels, the TCP backend serializes it into length-prefixed
// frames (see internal/mpi/tcptransport).
type Message struct {
	Tag        int
	Data       []float64
	Rows, Cols int
}

// vectorRows marks a Message that carries a plain []float64 rather than a
// matrix.
const vectorRows = -1

// ErrAborted is returned by Transport operations after the fabric has been
// torn down — because a peer rank failed, a connection broke, or Abort was
// called. Comm converts it into the internal abort panic so rank functions
// unwind exactly like they did before the transport split.
var ErrAborted = errors.New("mpi: world aborted")

// Transport is the communication fabric beneath *Comm and *World: blocking
// point-to-point delivery with per-(src,dst) FIFO ordering, a full barrier,
// an abort path that unblocks every pending operation, and traffic counters.
//
// Two implementations exist:
//
//   - the in-process channel fabric (NewChanTransport), where one Transport
//     value carries all ranks of a single process and Send/Recv are valid
//     for any (src, dst) pair;
//   - the TCP backend (internal/mpi/tcptransport), where each OS process
//     owns one rank and a Transport value only accepts Send with src ==
//     own rank and Recv with dst == own rank.
//
// Algorithm code never sees this interface directly — it talks to *Comm,
// which pins src/dst to the communicator's rank, so the same collectives
// and solvers run unmodified over either fabric.
type Transport interface {
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers m from src to dst, blocking until the message is
	// accepted (buffered or on the wire). The payload is copied or
	// serialized before Send returns, so the caller may immediately reuse
	// the slice. Returns ErrAborted if the fabric is torn down.
	Send(src, dst int, m Message) error
	// Recv blocks until the next message from src addressed to dst is
	// available and returns it. Messages from one src are delivered in
	// send order. Returns ErrAborted if the fabric is torn down (or, for
	// socket transports, if the peer closed with no message pending).
	Recv(dst, src int) (Message, error)
	// Barrier blocks rank until every rank has entered the barrier.
	// Returns ErrAborted if the fabric is torn down while waiting.
	Barrier(rank int) error
	// Abort tears the fabric down: every blocked and future operation
	// returns ErrAborted. Abort is idempotent and safe to call from any
	// goroutine; socket transports additionally notify live peers so the
	// whole multi-process job unwinds.
	Abort()
	// Stats returns the traffic counters accumulated so far. For
	// single-rank transports only the owning rank's entries are
	// meaningful; multi-process launchers aggregate per-rank reports
	// (see internal/scaling.AggregateStats).
	Stats() Stats
	// Close releases the fabric's resources after a successful run. It is
	// idempotent. Unlike Abort it does not mark the run as failed, but
	// operations issued after Close still fail with ErrAborted.
	Close() error
}
