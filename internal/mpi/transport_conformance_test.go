package mpi_test

import (
	"testing"

	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/transporttest"
)

// TestChanTransportRoundTrip runs the shared transport-conformance suite
// against the default in-process channel fabric. The TCP backend runs the
// identical suite in internal/mpi/tcptransport, so both transports are held
// to the same bit-for-bit framing contract.
func TestChanTransportRoundTrip(t *testing.T) {
	transporttest.RoundTrip(t, func(size int, fn func(c *mpi.Comm)) error {
		_, err := mpi.Run(size, fn)
		return err
	})
}
