// Package transporttest is the transport-conformance suite shared by every
// mpi.Transport implementation: the same framing round-trip properties run
// against the in-process channel fabric and the TCP backend, so a payload
// that survives one transport provably survives the other bit-for-bit.
package transporttest

import (
	"math"
	"math/rand"
	"testing"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
)

// Runner executes fn on size ranks over some transport and reports the
// first rank failure, mirroring mpi.Run's contract. mpi.Run itself is a
// Runner (modulo the ignored Stats); tcptransport.Run is the other.
type Runner func(size int, fn func(c *mpi.Comm)) error

// RoundTrip runs the framing conformance suite against the given runner.
// Every case ships a payload from rank 0 to rank 1, has rank 1 echo it
// back, and requires the round-tripped bits to match exactly — vectors and
// matrices, empty and single-element edge shapes, and adversarial float
// values (NaN, ±Inf, signed zero, denormals) that would expose any lossy
// re-encoding.
func RoundTrip(t *testing.T, run Runner) {
	t.Helper()

	t.Run("vectors", func(t *testing.T) {
		payloads := [][]float64{
			{},  // empty
			{0}, // single element
			{math.NaN(), math.Inf(1), math.Inf(-1)},
			{math.Copysign(0, -1), math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64},
			{math.MaxFloat64, -math.MaxFloat64, 1e-300, math.Pi},
			randomVector(257, 11),
		}
		err := run(2, func(c *mpi.Comm) {
			for i, want := range payloads {
				tag := 100 + i
				switch c.Rank() {
				case 0:
					c.Send(1, tag, want)
					got := c.Recv(1, tag)
					if !equalBits(got, want) {
						t.Errorf("vector case %d: round trip changed bits: got %v want %v", i, got, want)
					}
				case 1:
					c.Send(0, tag, c.Recv(0, tag))
				}
			}
		})
		if err != nil {
			t.Fatalf("vector round trip: %v", err)
		}
	})

	t.Run("matrices", func(t *testing.T) {
		shapes := [][2]int{
			{0, 0}, // empty
			{1, 1}, // single element
			{1, 7}, {7, 1}, {3, 5}, {16, 16}, {31, 2},
		}
		err := run(2, func(c *mpi.Comm) {
			for i, sh := range shapes {
				tag := 200 + i
				want := randomMatrix(sh[0], sh[1], int64(1000+i))
				switch c.Rank() {
				case 0:
					c.SendMatrix(1, tag, want)
					got := c.RecvMatrix(1, tag)
					r, cl := got.Dims()
					if r != sh[0] || cl != sh[1] {
						t.Errorf("matrix case %d: round trip changed shape to %dx%d, want %dx%d", i, r, cl, sh[0], sh[1])
						continue
					}
					if !equalBits(got.RawData(), want.RawData()) {
						t.Errorf("matrix case %d (%dx%d): round trip changed bits", i, sh[0], sh[1])
					}
				case 1:
					c.SendMatrix(0, tag, c.RecvMatrix(0, tag))
				}
			}
		})
		if err != nil {
			t.Fatalf("matrix round trip: %v", err)
		}
	})

	t.Run("property-random-shapes", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 12; trial++ {
			p := 2 + rng.Intn(3)
			rows := rng.Intn(20)
			cols := rng.Intn(20)
			seed := rng.Int63()
			err := run(p, func(c *mpi.Comm) {
				// Ring: each rank forwards the matrix one hop; after p hops
				// rank 0 must hold the original bits.
				want := randomMatrix(rows, cols, seed)
				if c.Rank() == 0 {
					c.SendMatrix(1, 7, want)
					got := c.RecvMatrix(c.Size()-1, 7)
					if !equalBits(got.RawData(), want.RawData()) {
						t.Errorf("trial %d (%d ranks, %dx%d): ring round trip changed bits", trial, p, rows, cols)
					}
				} else {
					c.SendMatrix((c.Rank()+1)%c.Size(), 7, c.RecvMatrix(c.Rank()-1, 7))
				}
			})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	})
}

// randomVector mixes ordinary values with specials so every case carries at
// least some adversarial bit patterns.
func randomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = math.NaN()
		case 1:
			v[i] = math.Inf(1 - 2*rng.Intn(2))
		case 2:
			v[i] = math.Copysign(0, -1)
		default:
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
	return v
}

func randomMatrix(r, c int, seed int64) *mat.Dense {
	m := mat.New(r, c)
	copy(m.RawData(), randomVector(r*c, seed))
	return m
}

// equalBits compares float slices by IEEE-754 bit pattern, so NaNs compare
// equal to themselves and -0 differs from +0.
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
