package ncio

import (
	"path/filepath"
	"testing"
)

// benchFile builds a file with nt full lat-lon planes for slab benchmarks.
func benchFile(b *testing.B, nt, nlat, nlon int) *File {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.gnc")
	w, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.DefineDim("time", int64(nt)); err != nil {
		b.Fatal(err)
	}
	if err := w.DefineDim("lat", int64(nlat)); err != nil {
		b.Fatal(err)
	}
	if err := w.DefineDim("lon", int64(nlon)); err != nil {
		b.Fatal(err)
	}
	if err := w.DefineVar("v", []string{"time", "lat", "lon"}, nil); err != nil {
		b.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		b.Fatal(err)
	}
	data := make([]float64, nt*nlat*nlon)
	for i := range data {
		data[i] = float64(i)
	}
	if err := w.WriteVar("v", data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

func BenchmarkReadSlabContiguousPlanes(b *testing.B) {
	f := benchFile(b, 64, 73, 144)
	b.SetBytes(int64(8 * 8 * 73 * 144))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadSlab("v", []int64{int64(i % 56), 0, 0}, []int64{8, 73, 144}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSlabStridedBand(b *testing.B) {
	// A latitude band is strided: one run per time step.
	f := benchFile(b, 64, 73, 144)
	b.SetBytes(int64(8 * 64 * 18 * 144))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadSlab("v", []int64{0, 18, 0}, []int64{64, 18, 144}); err != nil {
			b.Fatal(err)
		}
	}
}
