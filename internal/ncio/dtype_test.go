package ncio

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestFloat32RoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f32.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("x", 6); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVarTyped("v", Float32, []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2.25, 0, 1e10, -1e-10, 3.14159265358979}
	if err := w.WriteVar("v", want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, _ := f.Var("v")
	if v.DType != Float32 {
		t.Fatalf("dtype = %v, want float32", v.DType)
	}
	got, err := f.ReadVar("v")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		// Values survive at single precision.
		if math.Abs(got[i]-float64(float32(want[i]))) > 0 {
			t.Fatalf("element %d: %g, want %g", i, got[i], float64(float32(want[i])))
		}
	}
}

func TestFloat32HalvesPayload(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, dtype DType) int64 {
		path := filepath.Join(dir, name)
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.DefineDim("x", 1000); err != nil {
			t.Fatal(err)
		}
		if err := w.DefineVarTyped("v", dtype, []string{"x"}, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.EndDef(); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteVar("v", make([]float64, 1000)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}
	s64 := write("a.gnc", Float64)
	s32 := write("b.gnc", Float32)
	if s64-s32 != 4000 {
		t.Fatalf("float32 should save 4000 bytes, saved %d", s64-s32)
	}
}

func TestFloat32SlabReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f32.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("r", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("c", 5); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVarTyped("v", Float32, []string{"r", "c"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 20)
	for i := range data {
		data[i] = float64(i)
	}
	if err := w.WriteVar("v", data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadSlab("v", []int64{1, 2}, []int64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 8, 9, 12, 13, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slab[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMixedDTypesInOneFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("x", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVarTyped("coarse", Float32, []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVar("fine", []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	// A value that float32 cannot hold exactly.
	precise := []float64{1.0 + 1e-12, 2, 3}
	if err := w.WriteVar("coarse", precise); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVar("fine", precise); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	coarse, _ := f.ReadVar("coarse")
	fine, _ := f.ReadVar("fine")
	if fine[0] != precise[0] {
		t.Fatal("float64 variable lost precision")
	}
	if coarse[0] == precise[0] {
		t.Fatal("float32 variable kept float64 precision — dtype not applied")
	}
}

func TestUnsupportedDTypeRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.DefineDim("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVarTyped("v", DType(99), []string{"x"}, nil); err == nil {
		t.Fatal("dtype 99 accepted")
	}
}

// TestReadsLegacyV1Files hand-crafts a GNC1 file (the pre-dtype layout,
// implicitly float64) and checks the reader still understands it.
func TestReadsLegacyV1Files(t *testing.T) {
	var header []byte
	appendU32 := func(v uint32) { header = binary.LittleEndian.AppendUint32(header, v) }
	appendI64 := func(v int64) { header = binary.LittleEndian.AppendUint64(header, uint64(v)) }
	appendStr := func(s string) { appendU32(uint32(len(s))); header = append(header, s...) }

	// One dimension "x" of size 3, one variable "v" over it, no attrs.
	appendU32(1)
	appendStr("x")
	appendI64(3)
	appendU32(1)
	appendStr("v")
	appendU32(1) // ndims
	appendU32(0) // dim index
	appendU32(0) // nattrs
	// v1 layout: offset and size follow immediately (no dtype byte). The
	// payload starts after magic(4) + headerLen(8) + header, where the
	// header still needs these two int64s plus the global-attr count.
	offset := int64(4 + 8 + len(header) + 8 + 8 + 4)
	appendI64(offset)
	appendI64(3)
	appendU32(0) // global attrs

	var file []byte
	file = append(file, 'G', 'N', 'C', '1')
	file = binary.LittleEndian.AppendUint64(file, uint64(len(header)))
	file = append(file, header...)
	for _, v := range []float64{1.5, 2.5, 3.5} {
		file = binary.LittleEndian.AppendUint64(file, math.Float64bits(v))
	}

	path := filepath.Join(t.TempDir(), "legacy.gnc")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, ok := f.Var("v")
	if !ok || v.DType != Float64 {
		t.Fatalf("legacy var: %+v, ok=%v", v, ok)
	}
	got, err := f.ReadVar("v")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || got[2] != 3.5 {
		t.Fatalf("legacy payload = %v", got)
	}
}
