// Package ncio implements GNC, a small self-describing binary container
// for gridded float64 data with named dimensions, variables and string
// attributes — the stand-in for the NetCDF4 files PyParSVD reads with
// parallel I/O in its ERA5 experiment (paper §4.3).
//
// The on-disk layout is:
//
//	bytes 0..3   magic "GNC1"
//	bytes 4..11  uint64 header length H (little endian)
//	bytes 12..12+H-1 header: dimensions, variables (with absolute data
//	             offsets), attributes
//	...          variable payloads, float64 little endian, row-major in
//	             definition-time dimension order
//
// The property that matters for the reproduction is the access pattern:
// every MPI rank opens the same file and reads its own hyperslab with
// positioned reads (os.File.ReadAt), which are safe to issue concurrently —
// the same independent-parallel-read model as NetCDF4/HDF5 without
// collective buffering.
package ncio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
)

// magicV2 is the current on-disk magic; magicV1 files (no per-variable
// dtype byte, implicitly float64) remain readable.
var (
	magicV1 = [4]byte{'G', 'N', 'C', '1'}
	magicV2 = [4]byte{'G', 'N', 'C', '2'}
)

// ErrNotGNC is returned when opening a file that does not start with the
// GNC magic.
var ErrNotGNC = errors.New("ncio: not a GNC file")

// DType identifies a variable's on-disk element type. The in-memory API
// always exchanges float64 slices; Float32 storage halves the file size at
// single precision (the native ERA5/GRIB representation).
type DType uint8

// Supported element types.
const (
	Float64 DType = iota
	Float32
)

func (d DType) elemSize() int64 {
	switch d {
	case Float64:
		return 8
	case Float32:
		return 4
	default:
		return 0
	}
}

// String names the dtype for display (gncinfo).
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// Dim is a named dimension.
type Dim struct {
	Name string
	Size int64
}

// Var describes a variable: its dimension names (outermost first), its
// on-disk element type and string attributes. The API always exchanges
// float64 values regardless of DType.
type Var struct {
	Name   string
	Dims   []string
	DType  DType
	Attrs  map[string]string
	offset int64 // absolute file offset of the payload
	size   int64 // number of elements
}

// Size returns the number of elements in the variable.
func (v *Var) Size() int64 { return v.size }

// Writer builds a GNC file: define dimensions and variables, call EndDef,
// then write payloads in any order.
type Writer struct {
	f        *os.File
	dims     []Dim
	dimIndex map[string]int
	vars     []*Var
	varIndex map[string]int
	attrs    map[string]string
	defined  bool
}

// Create opens path for writing and returns an empty Writer in define mode.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ncio: create: %w", err)
	}
	return &Writer{
		f:        f,
		dimIndex: make(map[string]int),
		varIndex: make(map[string]int),
		attrs:    make(map[string]string),
	}, nil
}

// DefineDim registers a dimension. It must be called before EndDef.
func (w *Writer) DefineDim(name string, size int64) error {
	if w.defined {
		return errors.New("ncio: DefineDim after EndDef")
	}
	if name == "" || size < 1 {
		return fmt.Errorf("ncio: invalid dimension %q size %d", name, size)
	}
	if _, dup := w.dimIndex[name]; dup {
		return fmt.Errorf("ncio: duplicate dimension %q", name)
	}
	w.dimIndex[name] = len(w.dims)
	w.dims = append(w.dims, Dim{Name: name, Size: size})
	return nil
}

// DefineVar registers a float64 variable over previously defined
// dimensions (outermost first).
func (w *Writer) DefineVar(name string, dims []string, attrs map[string]string) error {
	return w.DefineVarTyped(name, Float64, dims, attrs)
}

// DefineVarTyped registers a variable with an explicit on-disk element
// type. Float32 storage halves the payload at single precision.
func (w *Writer) DefineVarTyped(name string, dtype DType, dims []string, attrs map[string]string) error {
	if w.defined {
		return errors.New("ncio: DefineVar after EndDef")
	}
	if name == "" {
		return errors.New("ncio: empty variable name")
	}
	if _, dup := w.varIndex[name]; dup {
		return fmt.Errorf("ncio: duplicate variable %q", name)
	}
	size := int64(1)
	for _, d := range dims {
		idx, ok := w.dimIndex[d]
		if !ok {
			return fmt.Errorf("ncio: variable %q references undefined dimension %q", name, d)
		}
		size *= w.dims[idx].Size
	}
	if dtype.elemSize() == 0 {
		return fmt.Errorf("ncio: variable %q has unsupported dtype %d", name, dtype)
	}
	v := &Var{Name: name, Dims: append([]string(nil), dims...), DType: dtype, size: size,
		Attrs: make(map[string]string)}
	for k, val := range attrs {
		v.Attrs[k] = val
	}
	w.varIndex[name] = len(w.vars)
	w.vars = append(w.vars, v)
	return nil
}

// SetGlobalAttr records a file-level attribute. Must precede EndDef.
func (w *Writer) SetGlobalAttr(key, value string) error {
	if w.defined {
		return errors.New("ncio: SetGlobalAttr after EndDef")
	}
	w.attrs[key] = value
	return nil
}

// EndDef freezes the schema, computes payload offsets and writes the
// header. After EndDef the payload may be written with WriteVar/WriteSlab.
func (w *Writer) EndDef() error {
	if w.defined {
		return errors.New("ncio: EndDef called twice")
	}
	header := w.encodeHeader(0) // first pass to learn the header size
	dataStart := int64(len(magicV2)) + 8 + int64(len(header))
	off := dataStart
	for _, v := range w.vars {
		v.offset = off
		off += v.DType.elemSize() * v.size
	}
	header = w.encodeHeader(dataStart)
	if len(header)+len(magicV2)+8 != int(dataStart) {
		return errors.New("ncio: internal error: header size changed between passes")
	}
	if _, err := w.f.WriteAt(magicV2[:], 0); err != nil {
		return fmt.Errorf("ncio: write magic: %w", err)
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(header)))
	if _, err := w.f.WriteAt(lenBuf[:], int64(len(magicV2))); err != nil {
		return fmt.Errorf("ncio: write header length: %w", err)
	}
	if _, err := w.f.WriteAt(header, int64(len(magicV2))+8); err != nil {
		return fmt.Errorf("ncio: write header: %w", err)
	}
	// Pre-extend the file so concurrent slab writes never race on size.
	if off > dataStart {
		if err := w.f.Truncate(off); err != nil {
			return fmt.Errorf("ncio: extend: %w", err)
		}
	}
	w.defined = true
	return nil
}

// encodeHeader serializes the schema. Offsets are written relative to the
// file start; dataStart is only used to make the two passes identical in
// length (offsets are fixed-width).
func (w *Writer) encodeHeader(dataStart int64) []byte {
	var b []byte
	b = appendUint32(b, uint32(len(w.dims)))
	for _, d := range w.dims {
		b = appendString(b, d.Name)
		b = appendInt64(b, d.Size)
	}
	b = appendUint32(b, uint32(len(w.vars)))
	for _, v := range w.vars {
		b = appendString(b, v.Name)
		b = appendUint32(b, uint32(len(v.Dims)))
		for _, d := range v.Dims {
			b = appendUint32(b, uint32(w.dimIndex[d]))
		}
		b = appendUint32(b, uint32(len(v.Attrs)))
		for _, k := range sortedKeys(v.Attrs) {
			b = appendString(b, k)
			b = appendString(b, v.Attrs[k])
		}
		b = append(b, byte(v.DType))
		b = appendInt64(b, v.offset)
		b = appendInt64(b, v.size)
	}
	b = appendUint32(b, uint32(len(w.attrs)))
	for _, k := range sortedKeys(w.attrs) {
		b = appendString(b, k)
		b = appendString(b, w.attrs[k])
	}
	_ = dataStart
	return b
}

// WriteVar writes the full payload of a variable.
func (w *Writer) WriteVar(name string, data []float64) error {
	if !w.defined {
		return errors.New("ncio: WriteVar before EndDef")
	}
	v, err := w.lookup(name)
	if err != nil {
		return err
	}
	if int64(len(data)) != v.size {
		return fmt.Errorf("ncio: variable %q payload %d elements, want %d",
			name, len(data), v.size)
	}
	return writeValuesAt(w.f, v.DType, v.offset, data)
}

// WriteSlab writes a hyperslab of a variable: offsets and counts give, per
// dimension, the start index and extent. Safe for concurrent use by
// multiple goroutines writing disjoint slabs.
func (w *Writer) WriteSlab(name string, offsets, counts []int64, data []float64) error {
	if !w.defined {
		return errors.New("ncio: WriteSlab before EndDef")
	}
	v, err := w.lookup(name)
	if err != nil {
		return err
	}
	runs, total, err := slabRuns(w.dimSizes(v), offsets, counts)
	if err != nil {
		return fmt.Errorf("ncio: variable %q: %w", name, err)
	}
	if int64(len(data)) != total {
		return fmt.Errorf("ncio: slab payload %d elements, want %d", len(data), total)
	}
	pos := int64(0)
	es := v.DType.elemSize()
	for _, run := range runs {
		if err := writeValuesAt(w.f, v.DType, v.offset+es*run.start, data[pos:pos+run.length]); err != nil {
			return err
		}
		pos += run.length
	}
	return nil
}

// Close flushes and closes the file. Closing before EndDef discards a
// well-formed file (only a partial header may exist).
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("ncio: sync: %w", err)
	}
	return w.f.Close()
}

func (w *Writer) lookup(name string) (*Var, error) {
	idx, ok := w.varIndex[name]
	if !ok {
		return nil, fmt.Errorf("ncio: unknown variable %q", name)
	}
	return w.vars[idx], nil
}

func (w *Writer) dimSizes(v *Var) []int64 {
	sizes := make([]int64, len(v.Dims))
	for i, d := range v.Dims {
		sizes[i] = w.dims[w.dimIndex[d]].Size
	}
	return sizes
}

// File is a GNC reader. ReadSlab and ReadVar are safe for concurrent use:
// all reads are positioned (pread).
type File struct {
	f        *os.File
	dims     []Dim
	dimIndex map[string]int
	vars     []*Var
	varIndex map[string]int
	attrs    map[string]string
}

// Open reads the header of a GNC file.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ncio: open: %w", err)
	}
	r := &File{
		f:        f,
		dimIndex: make(map[string]int),
		varIndex: make(map[string]int),
		attrs:    make(map[string]string),
	}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *File) readHeader() error {
	var head [12]byte
	if _, err := r.f.ReadAt(head[:], 0); err != nil {
		return fmt.Errorf("ncio: read magic: %w", err)
	}
	var version int
	switch [4]byte(head[:4]) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return ErrNotGNC
	}
	hlen := binary.LittleEndian.Uint64(head[4:12])
	if hlen > 1<<30 {
		return fmt.Errorf("ncio: implausible header length %d", hlen)
	}
	buf := make([]byte, hlen)
	if _, err := r.f.ReadAt(buf, 12); err != nil {
		return fmt.Errorf("ncio: read header: %w", err)
	}
	d := &decoder{buf: buf}

	nDims := d.uint32()
	for i := uint32(0); i < nDims; i++ {
		name := d.string()
		size := d.int64()
		r.dimIndex[name] = len(r.dims)
		r.dims = append(r.dims, Dim{Name: name, Size: size})
	}
	nVars := d.uint32()
	for i := uint32(0); i < nVars; i++ {
		v := &Var{Attrs: make(map[string]string)}
		v.Name = d.string()
		nd := d.uint32()
		for k := uint32(0); k < nd; k++ {
			idx := d.uint32()
			if int(idx) >= len(r.dims) {
				return fmt.Errorf("ncio: variable %q references dimension %d of %d",
					v.Name, idx, len(r.dims))
			}
			v.Dims = append(v.Dims, r.dims[idx].Name)
		}
		na := d.uint32()
		for k := uint32(0); k < na; k++ {
			key := d.string()
			v.Attrs[key] = d.string()
		}
		if version >= 2 {
			v.DType = DType(d.byte())
			if v.DType.elemSize() == 0 && d.err == nil {
				return fmt.Errorf("ncio: variable %q has unsupported dtype %d", v.Name, v.DType)
			}
		}
		v.offset = d.int64()
		v.size = d.int64()
		r.varIndex[v.Name] = len(r.vars)
		r.vars = append(r.vars, v)
	}
	nAttrs := d.uint32()
	for i := uint32(0); i < nAttrs; i++ {
		key := d.string()
		r.attrs[key] = d.string()
	}
	if d.err != nil {
		return fmt.Errorf("ncio: corrupt header: %w", d.err)
	}
	return nil
}

// Dims returns the file's dimensions in definition order.
func (r *File) Dims() []Dim { return append([]Dim(nil), r.dims...) }

// Dim returns a dimension by name.
func (r *File) Dim(name string) (Dim, bool) {
	idx, ok := r.dimIndex[name]
	if !ok {
		return Dim{}, false
	}
	return r.dims[idx], true
}

// Vars returns the names of all variables in definition order.
func (r *File) Vars() []string {
	out := make([]string, len(r.vars))
	for i, v := range r.vars {
		out[i] = v.Name
	}
	return out
}

// Var returns variable metadata by name.
func (r *File) Var(name string) (*Var, bool) {
	idx, ok := r.varIndex[name]
	if !ok {
		return nil, false
	}
	return r.vars[idx], true
}

// GlobalAttr returns a file-level attribute.
func (r *File) GlobalAttr(key string) (string, bool) {
	v, ok := r.attrs[key]
	return v, ok
}

// GlobalAttrs returns a copy of all file-level attributes.
func (r *File) GlobalAttrs() map[string]string {
	out := make(map[string]string, len(r.attrs))
	for k, v := range r.attrs {
		out[k] = v
	}
	return out
}

// ReadVar reads a variable's full payload.
func (r *File) ReadVar(name string) ([]float64, error) {
	v, ok := r.Var(name)
	if !ok {
		return nil, fmt.Errorf("ncio: unknown variable %q", name)
	}
	out := make([]float64, v.size)
	if err := readValuesAt(r.f, v.DType, v.offset, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSlab reads a hyperslab: offsets[i] and counts[i] give the start and
// extent along dimension i of the variable. The result is row-major in the
// slab's own shape. Safe to call concurrently from many goroutines — this
// is the "every rank reads its own slab" pattern of the paper's
// NetCDF4-based pipeline.
func (r *File) ReadSlab(name string, offsets, counts []int64) ([]float64, error) {
	v, ok := r.Var(name)
	if !ok {
		return nil, fmt.Errorf("ncio: unknown variable %q", name)
	}
	sizes := make([]int64, len(v.Dims))
	for i, d := range v.Dims {
		sizes[i] = r.dims[r.dimIndex[d]].Size
	}
	runs, total, err := slabRuns(sizes, offsets, counts)
	if err != nil {
		return nil, fmt.Errorf("ncio: variable %q: %w", name, err)
	}
	out := make([]float64, total)
	pos := int64(0)
	es := v.DType.elemSize()
	for _, run := range runs {
		if err := readValuesAt(r.f, v.DType, v.offset+es*run.start, out[pos:pos+run.length]); err != nil {
			return nil, err
		}
		pos += run.length
	}
	return out, nil
}

// Close closes the underlying file.
func (r *File) Close() error { return r.f.Close() }

// run is a contiguous element range within a variable's payload.
type run struct{ start, length int64 }

// slabRuns decomposes a hyperslab into maximal contiguous element runs.
func slabRuns(sizes, offsets, counts []int64) ([]run, int64, error) {
	nd := len(sizes)
	if len(offsets) != nd || len(counts) != nd {
		return nil, 0, fmt.Errorf("slab rank mismatch: var has %d dims, got %d offsets / %d counts",
			nd, len(offsets), len(counts))
	}
	total := int64(1)
	for i := 0; i < nd; i++ {
		if offsets[i] < 0 || counts[i] < 0 || offsets[i]+counts[i] > sizes[i] {
			return nil, 0, fmt.Errorf("slab [%d:+%d] out of bounds for dimension size %d",
				offsets[i], counts[i], sizes[i])
		}
		total *= counts[i]
	}
	if nd == 0 {
		return []run{{0, 1}}, 1, nil
	}
	if total == 0 {
		return nil, 0, nil
	}
	// strides[i]: elements per step along dimension i.
	strides := make([]int64, nd)
	strides[nd-1] = 1
	for i := nd - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * sizes[i+1]
	}
	// Find the outermost dimension d such that every dimension inside it is
	// selected in full; a single index step along d is then contiguous, so
	// each run spans counts[d]·strides[d] elements and the runs iterate
	// over the (partial) outer dimensions [0, d).
	d := nd - 1
	for d > 0 && counts[d] == sizes[d] && offsets[d] == 0 {
		d--
	}
	runLen := counts[d] * strides[d]

	// Iterate the odometer over dimensions [0, d).
	var runs []run
	idx := make([]int64, d)
	for {
		start := offsets[d] * strides[d]
		for i := 0; i < d; i++ {
			start += (offsets[i] + idx[i]) * strides[i]
		}
		runs = append(runs, run{start: start, length: runLen})
		// Advance the odometer.
		i := d - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < counts[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return runs, total, nil
}

// writeValuesAt writes data little-endian at the given byte offset,
// narrowing to float32 when the variable is stored at single precision.
func writeValuesAt(f *os.File, dtype DType, off int64, data []float64) error {
	es := int(dtype.elemSize())
	buf := make([]byte, es*len(data))
	switch dtype {
	case Float64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	case Float32:
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
	default:
		return fmt.Errorf("ncio: unsupported dtype %d", dtype)
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("ncio: write at %d: %w", off, err)
	}
	return nil
}

// readValuesAt fills out with values from the byte offset, widening
// float32 storage to float64.
func readValuesAt(f *os.File, dtype DType, off int64, out []float64) error {
	es := int(dtype.elemSize())
	buf := make([]byte, es*len(out))
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("ncio: read at %d: %w", off, err)
	}
	switch dtype {
	case Float64:
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case Float32:
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	default:
		return fmt.Errorf("ncio: unsupported dtype %d", dtype)
	}
	return nil
}

func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendInt64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// decoder walks the header buffer with saturating error handling.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.buf) {
		d.err = fmt.Errorf("truncated at byte %d (need %d of %d)", d.pos, n, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) uint32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) int64() int64 {
	if !d.need(8) {
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

func (d *decoder) byte() byte {
	if !d.need(1) {
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) string() string {
	n := int(d.uint32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}
