package ncio

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// writeTestFile creates a GNC file with a time×lat×lon pressure variable
// filled with a deterministic pattern, and a 1-D coordinate variable.
func writeTestFile(t *testing.T, path string, nt, nlat, nlon int) []float64 {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.DefineDim("time", int64(nt)))
	must(w.DefineDim("lat", int64(nlat)))
	must(w.DefineDim("lon", int64(nlon)))
	must(w.DefineVar("pressure", []string{"time", "lat", "lon"},
		map[string]string{"units": "hPa", "long_name": "surface pressure"}))
	must(w.DefineVar("lat", []string{"lat"}, nil))
	must(w.SetGlobalAttr("source", "goparsvd test"))
	must(w.SetGlobalAttr("history", "created by ncio_test"))
	must(w.EndDef())

	data := make([]float64, nt*nlat*nlon)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	must(w.WriteVar("pressure", data))
	lat := make([]float64, nlat)
	for i := range lat {
		lat[i] = float64(i) * 2.5
	}
	must(w.WriteVar("lat", lat))
	must(w.Close())
	return data
}

func TestRoundTripFullVariable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	want := writeTestFile(t, path, 4, 3, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadVar("pressure")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 4, 3, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	dims := f.Dims()
	if len(dims) != 3 || dims[0].Name != "time" || dims[0].Size != 4 ||
		dims[1].Name != "lat" || dims[1].Size != 3 || dims[2].Name != "lon" || dims[2].Size != 5 {
		t.Fatalf("dims = %+v", dims)
	}
	if d, ok := f.Dim("lat"); !ok || d.Size != 3 {
		t.Fatalf("Dim(lat) = %+v, %v", d, ok)
	}
	if _, ok := f.Dim("missing"); ok {
		t.Fatal("Dim(missing) should not exist")
	}
	vars := f.Vars()
	if len(vars) != 2 || vars[0] != "pressure" || vars[1] != "lat" {
		t.Fatalf("vars = %v", vars)
	}
	v, ok := f.Var("pressure")
	if !ok {
		t.Fatal("Var(pressure) missing")
	}
	if v.Attrs["units"] != "hPa" || v.Attrs["long_name"] != "surface pressure" {
		t.Fatalf("attrs = %v", v.Attrs)
	}
	if v.Size() != 4*3*5 {
		t.Fatalf("size = %d", v.Size())
	}
	if len(v.Dims) != 3 || v.Dims[0] != "time" {
		t.Fatalf("var dims = %v", v.Dims)
	}
	if s, ok := f.GlobalAttr("source"); !ok || s != "goparsvd test" {
		t.Fatalf("global attr = %q, %v", s, ok)
	}
}

func TestReadSlabInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	want := writeTestFile(t, path, 6, 4, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Slab: times 2..3, lats 1..2, lons 1..3.
	got, err := f.ReadSlab("pressure", []int64{2, 1, 1}, []int64{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*2*3 {
		t.Fatalf("slab size %d", len(got))
	}
	idx := 0
	for tt := 2; tt < 4; tt++ {
		for la := 1; la < 3; la++ {
			for lo := 1; lo < 4; lo++ {
				w := want[(tt*4+la)*5+lo]
				if got[idx] != w {
					t.Fatalf("slab[%d] = %g, want %g", idx, got[idx], w)
				}
				idx++
			}
		}
	}
}

func TestReadSlabFullTrailingDims(t *testing.T) {
	// Selecting full lat×lon planes exercises the contiguous-run folding.
	path := filepath.Join(t.TempDir(), "t.gnc")
	want := writeTestFile(t, path, 6, 4, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadSlab("pressure", []int64{3, 0, 0}, []int64{2, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[3*4*5+i] {
			t.Fatalf("plane read mismatch at %d", i)
		}
	}
}

func TestReadSlab1D(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 4, 3, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadSlab("lat", []int64{1}, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2.5 || got[1] != 5.0 {
		t.Fatalf("lat slab = %v", got)
	}
}

func TestReadSlabErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 4, 3, 5)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cases := map[string]struct {
		offsets, counts []int64
	}{
		"rank mismatch": {[]int64{0, 0}, []int64{1, 1}},
		"out of bounds": {[]int64{0, 0, 3}, []int64{1, 1, 3}},
		"negative":      {[]int64{-1, 0, 0}, []int64{1, 1, 1}},
	}
	for name, tc := range cases {
		if _, err := f.ReadSlab("pressure", tc.offsets, tc.counts); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := f.ReadSlab("nope", []int64{0}, []int64{1}); err == nil {
		t.Fatal("unknown variable: expected error")
	}
}

func TestConcurrentSlabReads(t *testing.T) {
	// The parallel-IO pattern of the paper: many ranks read disjoint row
	// slabs of the same open file concurrently.
	path := filepath.Join(t.TempDir(), "t.gnc")
	want := writeTestFile(t, path, 16, 8, 9)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got, err := f.ReadSlab("pressure", []int64{int64(r), 0, 0}, []int64{1, 8, 9})
			if err != nil {
				errs[r] = err
				return
			}
			for i := range got {
				if got[i] != want[r*8*9+i] {
					errs[r] = errors.New("content mismatch")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestWriteSlab(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("x", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("y", 3); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVar("v", []string{"x", "y"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	// Write rows 0-1 and 2-3 as separate slabs (concurrently).
	var wg sync.WaitGroup
	for blk := 0; blk < 2; blk++ {
		wg.Add(1)
		go func(blk int) {
			defer wg.Done()
			data := make([]float64, 2*3)
			for i := range data {
				data[i] = float64(blk*6 + i)
			}
			if err := w.WriteSlab("v", []int64{int64(blk * 2), 0}, []int64{2, 3}, data); err != nil {
				t.Error(err)
			}
		}(blk)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadVar("v")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("element %d = %g", i, got[i])
		}
	}
}

func TestWriterSchemaErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.DefineDim("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineDim("x", 3); err == nil {
		t.Fatal("duplicate dim accepted")
	}
	if err := w.DefineDim("", 3); err == nil {
		t.Fatal("empty dim name accepted")
	}
	if err := w.DefineDim("z", 0); err == nil {
		t.Fatal("zero-size dim accepted")
	}
	if err := w.DefineVar("v", []string{"missing"}, nil); err == nil {
		t.Fatal("undefined dimension accepted")
	}
	if err := w.DefineVar("", []string{"x"}, nil); err == nil {
		t.Fatal("empty var name accepted")
	}
	if err := w.DefineVar("v", []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVar("v", []string{"x"}, nil); err == nil {
		t.Fatal("duplicate var accepted")
	}
	if err := w.WriteVar("v", []float64{1, 2}); err == nil {
		t.Fatal("WriteVar before EndDef accepted")
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err == nil {
		t.Fatal("double EndDef accepted")
	}
	if err := w.DefineDim("late", 1); err == nil {
		t.Fatal("DefineDim after EndDef accepted")
	}
	if err := w.WriteVar("v", []float64{1}); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := w.WriteVar("w", []float64{1, 2}); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(path, []byte("this is definitely not a GNC file"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrNotGNC) {
		t.Fatalf("err = %v, want ErrNotGNC", err)
	}
}

func TestOpenRejectsTruncatedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 2, 2, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.gnc")
	if err := os.WriteFile(trunc, raw[:20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.gnc")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: random slabs of a random 3-D variable always match the
// corresponding region of the full array.
func TestPropertyRandomSlabs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	nt, nlat, nlon := 7, 5, 6
	want := writeTestFile(t, path, nt, nlat, nlon)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := []int64{int64(rng.Intn(nt)), int64(rng.Intn(nlat)), int64(rng.Intn(nlon))}
		cnt := []int64{
			1 + int64(rng.Intn(nt-int(off[0]))),
			1 + int64(rng.Intn(nlat-int(off[1]))),
			1 + int64(rng.Intn(nlon-int(off[2]))),
		}
		got, err := f.ReadSlab("pressure", off, cnt)
		if err != nil {
			return false
		}
		idx := 0
		for a := off[0]; a < off[0]+cnt[0]; a++ {
			for b := off[1]; b < off[1]+cnt[1]; b++ {
				for c := off[2]; c < off[2]+cnt[2]; c++ {
					if got[idx] != want[(a*int64(nlat)+b)*int64(nlon)+c] {
						return false
					}
					idx++
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAttrsCopy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 2, 2, 2)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	attrs := f.GlobalAttrs()
	if attrs["source"] != "goparsvd test" || attrs["history"] == "" {
		t.Fatalf("attrs = %v", attrs)
	}
	// Mutating the copy must not affect the file's view.
	attrs["source"] = "tampered"
	if v, _ := f.GlobalAttr("source"); v != "goparsvd test" {
		t.Fatal("GlobalAttrs returned aliased map")
	}
}

func TestWriteSlabWrongPayloadLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.DefineDim("x", 4); err != nil {
		t.Fatal(err)
	}
	if err := w.DefineVar("v", []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.EndDef(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSlab("v", []int64{0}, []int64{2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong slab payload length accepted")
	}
	if err := w.WriteSlab("nope", []int64{0}, []int64{1}, []float64{1}); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestReadVarUnknown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 2, 2, 2)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadVar("missing"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestZeroCountSlab(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 3, 2, 2)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.ReadSlab("pressure", []int64{1, 0, 0}, []int64{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("zero-count slab returned %d values", len(got))
	}
}

func TestHeaderFuzzTruncations(t *testing.T) {
	// Truncate the file at every length up to the full header and require
	// Open to fail cleanly (no panic) each time.
	path := filepath.Join(t.TempDir(), "t.gnc")
	writeTestFile(t, path, 2, 3, 4)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := 12 + int(littleEndianUint64(raw[4:12]))
	for cut := 0; cut < headerEnd; cut += 7 {
		trunc := filepath.Join(t.TempDir(), "cut.gnc")
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if f, err := Open(trunc); err == nil {
			f.Close()
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func littleEndianUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
