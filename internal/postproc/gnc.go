package postproc

import (
	"fmt"

	"goparsvd/internal/mat"
	"goparsvd/internal/ncio"
)

// WriteModesGNC stores a mode matrix and its singular values in a GNC
// container, one variable per artifact:
//
//	dimensions: point (grid), mode (K)
//	variables:  modes(point, mode), singular_values(mode)
//
// Downstream tools (gncinfo, external plotters) can then consume the
// decomposition with the same reader used for the input data — the
// counterpart of PyParSVD writing its bases back to disk for each batch.
func WriteModesGNC(path string, modes *mat.Dense, singular []float64, attrs map[string]string) error {
	rows, cols := modes.Dims()
	if len(singular) != cols {
		return fmt.Errorf("postproc: %d singular values for %d modes", len(singular), cols)
	}
	if rows == 0 || cols == 0 {
		return fmt.Errorf("postproc: empty mode matrix %dx%d", rows, cols)
	}
	w, err := ncio.Create(path)
	if err != nil {
		return err
	}
	steps := []func() error{
		func() error { return w.DefineDim("point", int64(rows)) },
		func() error { return w.DefineDim("mode", int64(cols)) },
		func() error {
			return w.DefineVar("modes", []string{"point", "mode"},
				map[string]string{"long_name": "truncated left singular vectors"})
		},
		func() error {
			return w.DefineVar("singular_values", []string{"mode"},
				map[string]string{"long_name": "singular values, descending"})
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			w.Close()
			return err
		}
	}
	for k, v := range attrs {
		if err := w.SetGlobalAttr(k, v); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.EndDef(); err != nil {
		w.Close()
		return err
	}
	if err := w.WriteVar("modes", modes.RawData()); err != nil {
		w.Close()
		return err
	}
	if err := w.WriteVar("singular_values", singular); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadModesGNC loads a decomposition written by WriteModesGNC.
func ReadModesGNC(path string) (modes *mat.Dense, singular []float64, err error) {
	f, err := ncio.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	v, ok := f.Var("modes")
	if !ok {
		return nil, nil, fmt.Errorf("postproc: %s has no 'modes' variable", path)
	}
	if len(v.Dims) != 2 {
		return nil, nil, fmt.Errorf("postproc: 'modes' has %d dimensions, want 2", len(v.Dims))
	}
	pointDim, ok := f.Dim(v.Dims[0])
	if !ok {
		return nil, nil, fmt.Errorf("postproc: missing dimension %q", v.Dims[0])
	}
	modeDim, ok := f.Dim(v.Dims[1])
	if !ok {
		return nil, nil, fmt.Errorf("postproc: missing dimension %q", v.Dims[1])
	}
	data, err := f.ReadVar("modes")
	if err != nil {
		return nil, nil, err
	}
	singular, err = f.ReadVar("singular_values")
	if err != nil {
		return nil, nil, err
	}
	if int64(len(singular)) != modeDim.Size {
		return nil, nil, fmt.Errorf("postproc: %d singular values for %d modes",
			len(singular), modeDim.Size)
	}
	return mat.NewFromData(int(pointDim.Size), int(modeDim.Size), data), singular, nil
}
