package postproc

import (
	"path/filepath"
	"testing"

	"goparsvd/internal/mat"
)

func TestModesGNCRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "modes.gnc")
	modes := mat.NewFromRows([][]float64{
		{0.6, 0.8},
		{0.8, -0.6},
		{0.0, 0.0},
	})
	singular := []float64{5, 2}
	attrs := map[string]string{"source": "test", "workload": "unit"}
	if err := WriteModesGNC(path, modes, singular, attrs); err != nil {
		t.Fatal(err)
	}
	gotModes, gotS, err := ReadModesGNC(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(modes, gotModes, 0) {
		t.Fatal("modes not preserved")
	}
	if len(gotS) != 2 || gotS[0] != 5 || gotS[1] != 2 {
		t.Fatalf("singular values %v", gotS)
	}
}

func TestWriteModesGNCValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "modes.gnc")
	if err := WriteModesGNC(path, mat.New(3, 2), []float64{1}, nil); err == nil {
		t.Fatal("value/mode count mismatch accepted")
	}
	if err := WriteModesGNC(path, mat.New(0, 0), nil, nil); err == nil {
		t.Fatal("empty modes accepted")
	}
}

func TestReadModesGNCWrongFile(t *testing.T) {
	if _, _, err := ReadModesGNC(filepath.Join(t.TempDir(), "missing.gnc")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadModesGNCWrongSchema(t *testing.T) {
	// A GNC file without a 'modes' variable must be rejected cleanly.
	path := filepath.Join(t.TempDir(), "other.gnc")
	if err := WriteModesGNC(path, mat.New(2, 1), []float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	// Valid file, then ask for it under a schema it satisfies: fine.
	if _, _, err := ReadModesGNC(path); err != nil {
		t.Fatal(err)
	}
}
