// Package postproc mirrors PyParSVD's `postprocessing` module: utilities to
// report singular-value spectra, export and compare SVD modes, and render
// quick-look plots without any plotting dependency (ASCII line plots for
// 1-D modes, PGM heatmaps for lat-lon fields).
//
// Like the Python module, it binds to the engines only through the
// core.Decomposer-shaped data (modes + singular values), so the same
// routines serve the serial and parallel paths.
package postproc

import (
	"fmt"
	"io"
	"math"
	"strings"

	"goparsvd/internal/mat"
)

// AlignSigns returns a copy of candidate with each column negated when that
// improves its inner-product alignment with the corresponding reference
// column. Singular vectors are defined only up to sign, so any serial vs
// parallel comparison must align first (this is what makes the paper's
// Figure 1 overlays meaningful).
func AlignSigns(reference, candidate *mat.Dense) *mat.Dense {
	r, c := reference.Dims()
	cr, cc := candidate.Dims()
	if r != cr || c != cc {
		panic(fmt.Sprintf("postproc: AlignSigns shape mismatch %dx%d vs %dx%d", r, c, cr, cc))
	}
	out := candidate.Clone()
	for j := 0; j < c; j++ {
		dot := 0.0
		for i := 0; i < r; i++ {
			dot += reference.At(i, j) * candidate.At(i, j)
		}
		if dot < 0 {
			for i := 0; i < r; i++ {
				out.Set(i, j, -out.At(i, j))
			}
		}
	}
	return out
}

// ModeError summarizes the discrepancy of one mode between two
// decompositions after sign alignment.
type ModeError struct {
	Mode   int     // zero-based mode index
	L2     float64 // ‖u_ref − u_cand‖₂
	MaxAbs float64 // max_i |u_ref[i] − u_cand[i]|
	Cosine float64 // |⟨u_ref, u_cand⟩| / (‖u_ref‖·‖u_cand‖)
}

// CompareModes computes per-mode errors between a reference and candidate
// mode matrix (columns are modes). Both must have identical shapes.
func CompareModes(reference, candidate *mat.Dense) []ModeError {
	aligned := AlignSigns(reference, candidate)
	r, c := reference.Dims()
	out := make([]ModeError, c)
	for j := 0; j < c; j++ {
		var l2, maxAbs, dot, nr, nc float64
		for i := 0; i < r; i++ {
			a, b := reference.At(i, j), aligned.At(i, j)
			d := a - b
			l2 += d * d
			if ad := math.Abs(d); ad > maxAbs {
				maxAbs = ad
			}
			dot += a * b
			nr += a * a
			nc += b * b
		}
		cos := 0.0
		if nr > 0 && nc > 0 {
			cos = math.Abs(dot) / math.Sqrt(nr*nc)
		}
		out[j] = ModeError{Mode: j, L2: math.Sqrt(l2), MaxAbs: maxAbs, Cosine: cos}
	}
	return out
}

// EnergyFractions returns, for each k, the fraction of total "energy"
// (sum of squared singular values) captured by the first k+1 modes.
func EnergyFractions(s []float64) []float64 {
	total := 0.0
	for _, v := range s {
		total += v * v
	}
	out := make([]float64, len(s))
	acc := 0.0
	for i, v := range s {
		acc += v * v
		if total > 0 {
			out[i] = acc / total
		}
	}
	return out
}

// SingularValueReport renders a fixed-width table of singular values with
// cumulative energy fractions — the textual counterpart of PyParSVD's
// singular-value plot.
func SingularValueReport(w io.Writer, s []float64) {
	frac := EnergyFractions(s)
	fmt.Fprintf(w, "%4s  %14s  %10s\n", "mode", "sigma", "cum.energy")
	for i, v := range s {
		fmt.Fprintf(w, "%4d  %14.6e  %10.6f\n", i+1, v, frac[i])
	}
}

// WriteSingularValuesCSV writes one row per mode with the given labelled
// series (all series must have equal length).
func WriteSingularValuesCSV(w io.Writer, labels []string, series ...[]float64) error {
	if len(labels) != len(series) {
		return fmt.Errorf("postproc: %d labels for %d series", len(labels), len(series))
	}
	n := 0
	for i, s := range series {
		if i == 0 {
			n = len(s)
		} else if len(s) != n {
			return fmt.Errorf("postproc: series %d has %d rows, want %d", i, len(s), n)
		}
	}
	fmt.Fprintf(w, "mode,%s\n", strings.Join(labels, ","))
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", i+1)
		for _, s := range series {
			fmt.Fprintf(w, ",%.12e", s[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteModesCSV writes the 1-D modes as columns against the coordinate x:
// header "x,mode1,mode2,..." then one row per grid point. This is the file
// behind the Figure 1(a,b) overlays.
func WriteModesCSV(w io.Writer, x []float64, modes *mat.Dense) error {
	r, c := modes.Dims()
	if len(x) != r {
		return fmt.Errorf("postproc: %d coordinates for %d rows", len(x), r)
	}
	fmt.Fprint(w, "x")
	for j := 0; j < c; j++ {
		fmt.Fprintf(w, ",mode%d", j+1)
	}
	fmt.Fprintln(w)
	for i := 0; i < r; i++ {
		fmt.Fprintf(w, "%.12e", x[i])
		for j := 0; j < c; j++ {
			fmt.Fprintf(w, ",%.12e", modes.At(i, j))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ASCIIPlot renders labelled 1-D series as a terminal line plot of the
// given width and height. Series are downsampled to the width; each series
// uses its own marker. It is the quick-look equivalent of the paper's mode
// overlays.
func ASCIIPlot(w io.Writer, title string, width, height int, labels []string, series ...[]float64) {
	if len(series) == 0 || width < 8 || height < 4 {
		fmt.Fprintln(w, title+" (nothing to plot)")
		return
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if minV == maxV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s) == 0 {
			continue
		}
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			idx := col * (len(s) - 1) / maxInt(width-1, 1)
			v := s[idx]
			row := int((maxV - v) / (maxV - minV) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%11.3e ┌%s┐\n", maxV, strings.Repeat("─", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(w, "            │%s│\n", string(grid[r]))
	}
	fmt.Fprintf(w, "%11.3e └%s┘\n", minV, strings.Repeat("─", width))
	var legend []string
	for si, lab := range labels {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], lab))
	}
	if len(legend) > 0 {
		fmt.Fprintln(w, "            "+strings.Join(legend, "   "))
	}
}

// WritePGMHeatmap renders a lat-lon field (row-major, nlat×nlon) as an
// 8-bit grayscale PGM image, linearly mapping [min, max] to [0, 255]. PGM
// is plain-text and dependency-free; the Figure 2 mode maps are emitted in
// this form.
func WritePGMHeatmap(w io.Writer, field []float64, nlat, nlon int) error {
	if len(field) != nlat*nlon {
		return fmt.Errorf("postproc: field has %d values for %dx%d grid", len(field), nlat, nlon)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range field {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV == maxV {
		maxV = minV + 1
	}
	fmt.Fprintf(w, "P2\n%d %d\n255\n", nlon, nlat)
	for i := 0; i < nlat; i++ {
		for j := 0; j < nlon; j++ {
			v := field[i*nlon+j]
			g := int((v - minV) / (maxV - minV) * 255)
			if j > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%d", g)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
