package postproc

import (
	"math"
	"strings"
	"testing"

	"goparsvd/internal/mat"
)

func TestAlignSignsFlipsOnlyNegativeDots(t *testing.T) {
	ref := mat.NewFromRows([][]float64{{1, 1}, {0, 1}})
	cand := mat.NewFromRows([][]float64{{-1, 1}, {0, 1}})
	out := AlignSigns(ref, cand)
	if out.At(0, 0) != 1 { // column 0 flipped
		t.Fatalf("column 0 not flipped: %v", out)
	}
	if out.At(0, 1) != 1 || out.At(1, 1) != 1 { // column 1 untouched
		t.Fatalf("column 1 altered: %v", out)
	}
	// Input must not be mutated.
	if cand.At(0, 0) != -1 {
		t.Fatal("AlignSigns mutated its input")
	}
}

func TestAlignSignsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	AlignSigns(mat.New(2, 2), mat.New(3, 2))
}

func TestCompareModesIdentical(t *testing.T) {
	m := mat.NewFromRows([][]float64{{0.6, 0.8}, {0.8, -0.6}})
	errs := CompareModes(m, m)
	for _, e := range errs {
		if e.L2 != 0 || e.MaxAbs != 0 || math.Abs(e.Cosine-1) > 1e-15 {
			t.Fatalf("self-comparison not exact: %+v", e)
		}
	}
}

func TestCompareModesSignInvariant(t *testing.T) {
	m := mat.NewFromRows([][]float64{{0.6, 0.8}, {0.8, -0.6}})
	flipped := mat.Scale(-1, m)
	errs := CompareModes(m, flipped)
	for _, e := range errs {
		if e.L2 > 1e-15 {
			t.Fatalf("sign flip should be invisible: %+v", e)
		}
	}
}

func TestCompareModesDetectsError(t *testing.T) {
	a := mat.NewFromRows([][]float64{{1, 0}, {0, 1}})
	b := mat.NewFromRows([][]float64{{1, 0.1}, {0, 1}})
	errs := CompareModes(a, b)
	if errs[1].L2 == 0 || errs[1].MaxAbs != 0.1 {
		t.Fatalf("perturbation not detected: %+v", errs[1])
	}
	if errs[1].Mode != 1 {
		t.Fatalf("mode index %d, want 1", errs[1].Mode)
	}
}

func TestEnergyFractions(t *testing.T) {
	f := EnergyFractions([]float64{3, 4}) // energies 9, 16, total 25
	if math.Abs(f[0]-9.0/25) > 1e-15 || math.Abs(f[1]-1) > 1e-15 {
		t.Fatalf("fractions = %v", f)
	}
	if got := EnergyFractions(nil); len(got) != 0 {
		t.Fatal("empty spectrum should give empty fractions")
	}
	z := EnergyFractions([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero spectrum fractions = %v", z)
	}
}

func TestSingularValueReport(t *testing.T) {
	var sb strings.Builder
	SingularValueReport(&sb, []float64{2, 1})
	out := sb.String()
	if !strings.Contains(out, "mode") || !strings.Contains(out, "2.000000e+00") {
		t.Fatalf("report missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
}

func TestWriteSingularValuesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteSingularValuesCSV(&sb, []string{"serial", "parallel"},
		[]float64{1, 2}, []float64{1.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "mode,serial,parallel" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") || !strings.Contains(lines[2], "2.5") {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestWriteSingularValuesCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteSingularValuesCSV(&sb, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("label/series mismatch accepted")
	}
	if err := WriteSingularValuesCSV(&sb, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestWriteModesCSV(t *testing.T) {
	var sb strings.Builder
	modes := mat.NewFromRows([][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err := WriteModesCSV(&sb, []float64{0, 1}, modes); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,mode1,mode2" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if err := WriteModesCSV(&sb, []float64{0}, modes); err == nil {
		t.Fatal("coordinate length mismatch accepted")
	}
}

func TestASCIIPlotContainsSeries(t *testing.T) {
	var sb strings.Builder
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = math.Sin(float64(i) / 10)
		y[i] = math.Cos(float64(i) / 10)
	}
	ASCIIPlot(&sb, "modes", 40, 10, []string{"sin", "cos"}, x, y)
	out := sb.String()
	if !strings.Contains(out, "modes") || !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	if !strings.Contains(out, "sin") || !strings.Contains(out, "cos") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestASCIIPlotDegenerateInputs(t *testing.T) {
	var sb strings.Builder
	ASCIIPlot(&sb, "empty", 40, 10, nil)
	if !strings.Contains(sb.String(), "nothing to plot") {
		t.Fatal("empty plot not handled")
	}
	sb.Reset()
	// Constant series must not divide by zero.
	ASCIIPlot(&sb, "const", 20, 5, []string{"c"}, []float64{2, 2, 2})
	if sb.Len() == 0 {
		t.Fatal("constant series produced no output")
	}
}

func TestWritePGMHeatmap(t *testing.T) {
	var sb strings.Builder
	field := []float64{0, 1, 2, 3, 4, 5}
	if err := WritePGMHeatmap(&sb, field, 2, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n3 2\n255\n") {
		t.Fatalf("bad PGM header:\n%s", out)
	}
	if !strings.Contains(out, "255") || !strings.Contains(out, "0") {
		t.Fatal("heatmap should span the full gray range")
	}
	if err := WritePGMHeatmap(&sb, field, 2, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestWritePGMHeatmapConstantField(t *testing.T) {
	var sb strings.Builder
	if err := WritePGMHeatmap(&sb, []float64{7, 7, 7, 7}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("constant field mishandled")
	}
}
