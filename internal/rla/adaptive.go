package rla

import (
	"fmt"
	"math"
	"math/rand"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

// This file implements the adaptive randomized range finder (Halko,
// Martinsson & Tropp, Alg. 4.2 in block form): instead of fixing the
// sketch rank a priori, the basis grows block by block until a posterior
// probabilistic error estimate certifies ‖(I − QQᵀ)A‖ ≤ tol. The paper
// fixes K everywhere; this is the natural extension for users who know
// an accuracy target rather than a rank.

// errProbes is the number of Gaussian probe vectors behind the posterior
// estimate; the bound ‖(I−QQᵀ)A‖₂ ≤ 10·sqrt(2/π)·maxᵢ‖(I−QQᵀ)Aωᵢ‖ holds
// with probability 1 − 10^-errProbes.
const errProbes = 10

// AdaptiveRangeFinder grows an orthonormal basis Q for the range of A in
// blocks of the given width until the estimated spectral-norm residual
// ‖A − QQᵀA‖₂ falls below tol, or the basis saturates at min(m, n)
// columns. The final basis width is data-dependent: rapidly decaying
// spectra stop early. Invalid tolerance or block width is reported as an
// error, never a panic: both reach this package straight from public
// facade options.
func AdaptiveRangeFinder(a *mat.Dense, tol float64, block int, opts Options) (*mat.Dense, error) {
	opts = opts.withDefaults()
	if tol <= 0 {
		return nil, fmt.Errorf("rla: AdaptiveRangeFinder tol = %g <= 0", tol)
	}
	if block < 1 {
		return nil, fmt.Errorf("rla: AdaptiveRangeFinder block = %d < 1", block)
	}
	m, n := a.Dims()
	limit := min(m, n)
	rng := rand.New(rand.NewSource(opts.Seed))

	var q *mat.Dense // m×k, grows by up to `block` columns per round
	for {
		// Draw a fresh sketch block and project out the accumulated basis
		// (twice, for orthogonality against roundoff).
		width := block
		if q != nil && q.Cols()+width > limit {
			width = limit - q.Cols()
		}
		if width <= 0 {
			return q, nil
		}
		y := mat.Mul(a, Gaussian(n, width, rng))
		for pass := 0; pass < 2; pass++ {
			if q != nil {
				y = mat.Sub(y, mat.Mul(q, mat.MulTransA(q, y)))
			}
		}
		qb, rb := linalg.QR(y)
		// Discard directions that were already captured: their R diagonal
		// collapses to ~0 and keeping them would poison orthogonality.
		keep := 0
		for j := 0; j < rb.Rows() && j < rb.Cols(); j++ {
			if math.Abs(rb.At(j, j)) > 1e-12 {
				keep = j + 1
			}
		}
		if keep > 0 {
			qb = qb.SliceCols(0, keep)
			if q == nil {
				q = qb
			} else {
				q = mat.HStack(q, qb)
			}
		}
		if q == nil {
			// A is (numerically) zero: an empty basis satisfies any tol.
			return mat.New(m, 0), nil
		}
		if q.Cols() >= limit {
			return q, nil
		}
		if estimateResidual(a, q, rng) <= tol {
			return q, nil
		}
		if keep == 0 {
			// No new directions found but the estimate is still above
			// tol: the residual estimate is dominated by noise at machine
			// precision; stop rather than loop forever.
			return q, nil
		}
	}
}

// estimateResidual returns the probabilistic upper bound
// 10·sqrt(2/π)·maxᵢ ‖(I − QQᵀ)·A·ωᵢ‖₂ over errProbes Gaussian probes.
func estimateResidual(a, q *mat.Dense, rng *rand.Rand) float64 {
	n := a.Cols()
	probes := mat.Mul(a, Gaussian(n, errProbes, rng))
	resid := mat.Sub(probes, mat.Mul(q, mat.MulTransA(q, probes)))
	worst := 0.0
	for j := 0; j < errProbes; j++ {
		if v := resid.ColNorm(j); v > worst {
			worst = v
		}
	}
	return 10 * math.Sqrt(2/math.Pi) * worst
}

// AdaptiveSVD computes an approximate SVD whose rank is chosen by the
// adaptive range finder for the given residual tolerance: the returned
// factors satisfy ‖A − U·diag(s)·Vᵀ‖₂ ≲ tol with high probability.
func AdaptiveSVD(a *mat.Dense, tol float64, block int, opts Options) (u *mat.Dense, s []float64, v *mat.Dense, err error) {
	q, err := AdaptiveRangeFinder(a, tol, block, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	if q.Cols() == 0 {
		m, n := a.Dims()
		return mat.New(m, 0), nil, mat.New(n, 0), nil
	}
	b := mat.MulTransA(q, a)
	ub, s, v := linalg.SVD(b)
	return mat.Mul(q, ub), s, v, nil
}
