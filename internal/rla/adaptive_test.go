package rla

import (
	"math"
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

// mustAdaptiveRangeFinder / mustAdaptiveSVD unwrap the error returns for
// the tests that feed known-valid arguments.
func mustAdaptiveRangeFinder(t *testing.T, a *mat.Dense, tol float64, block int, opts Options) *mat.Dense {
	t.Helper()
	q, err := AdaptiveRangeFinder(a, tol, block, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustAdaptiveSVD(t *testing.T, a *mat.Dense, tol float64, block int, opts Options) (*mat.Dense, []float64, *mat.Dense) {
	t.Helper()
	u, s, v, err := AdaptiveSVD(a, tol, block, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u, s, v
}

func TestAdaptiveRangeFinderStopsEarlyOnLowRank(t *testing.T) {
	// An exactly rank-4 matrix must be captured with a basis close to 4
	// columns (one block may overshoot), far below min(m,n).
	rng := testutil.NewRand(41)
	a, _ := testutil.RandomLowRank(80, 40, 4, 0, rng)
	q := mustAdaptiveRangeFinder(t, a, 1e-8, 3, DefaultOptions())
	if q.Cols() > 12 {
		t.Fatalf("basis has %d columns for a rank-4 matrix", q.Cols())
	}
	proj := mat.Mul(q, mat.MulTransA(q, a))
	if rel := mat.Sub(a, proj).FroNorm() / a.FroNorm(); rel > 1e-8 {
		t.Fatalf("residual %g above tolerance", rel)
	}
}

func TestAdaptiveRangeFinderMeetsTolerance(t *testing.T) {
	// For a decaying spectrum the actual residual must respect the
	// requested tolerance (the estimate upper-bounds the true residual
	// w.h.p., so this is conservative).
	rng := testutil.NewRand(42)
	u := testutil.RandomOrthonormal(60, 20, rng)
	v := testutil.RandomOrthonormal(30, 20, rng)
	s := make([]float64, 20)
	for i := range s {
		s[i] = math.Pow(0.4, float64(i))
	}
	a := mat.MulTransB(mat.MulDiag(u, s), v)
	for _, tol := range []float64{1e-1, 1e-3, 1e-6} {
		q := mustAdaptiveRangeFinder(t, a, tol, 4, DefaultOptions())
		proj := mat.Mul(q, mat.MulTransA(q, a))
		resid := mat.Sub(a, proj).FroNorm()
		if resid > tol*math.Sqrt(20) { // Fro ≤ sqrt(rank)·spectral
			t.Fatalf("tol %g: residual %g, basis %d cols", tol, resid, q.Cols())
		}
	}
}

func TestAdaptiveRangeFinderTighterTolNeedsWiderBasis(t *testing.T) {
	rng := testutil.NewRand(43)
	u := testutil.RandomOrthonormal(60, 25, rng)
	v := testutil.RandomOrthonormal(40, 25, rng)
	s := make([]float64, 25)
	for i := range s {
		s[i] = math.Pow(0.6, float64(i))
	}
	a := mat.MulTransB(mat.MulDiag(u, s), v)
	loose := mustAdaptiveRangeFinder(t, a, 1e-1, 2, DefaultOptions()).Cols()
	tight := mustAdaptiveRangeFinder(t, a, 1e-6, 2, DefaultOptions()).Cols()
	if tight <= loose {
		t.Fatalf("tight tol gave %d cols, loose gave %d", tight, loose)
	}
}

func TestAdaptiveRangeFinderOrthonormal(t *testing.T) {
	rng := testutil.NewRand(44)
	a := testutil.RandomDense(50, 30, rng)
	q := mustAdaptiveRangeFinder(t, a, 1e-2, 5, DefaultOptions())
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-10)
}

func TestAdaptiveRangeFinderZeroMatrix(t *testing.T) {
	a := mat.New(20, 10)
	q := mustAdaptiveRangeFinder(t, a, 1e-6, 4, DefaultOptions())
	if q.Cols() != 0 {
		t.Fatalf("zero matrix produced %d basis columns", q.Cols())
	}
}

func TestAdaptiveRangeFinderSaturates(t *testing.T) {
	// Demanding an impossible tolerance on a full-rank matrix must stop
	// at min(m, n) columns, not loop.
	rng := testutil.NewRand(45)
	a := testutil.RandomDense(20, 8, rng)
	q := mustAdaptiveRangeFinder(t, a, 1e-300, 3, DefaultOptions())
	if q.Cols() != 8 {
		t.Fatalf("saturated basis has %d cols, want 8", q.Cols())
	}
}

func TestAdaptiveRangeFinderInvalidArgsError(t *testing.T) {
	// Invalid arguments are reported as errors, never panics: they reach
	// this package straight from public facade options.
	a := mat.New(4, 4)
	for name, fn := range map[string]func() error{
		"tol": func() error {
			_, err := AdaptiveRangeFinder(a, 0, 2, DefaultOptions())
			return err
		},
		"block": func() error {
			_, err := AdaptiveRangeFinder(a, 1e-3, 0, DefaultOptions())
			return err
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked: %v", name, r)
				}
			}()
			if err := fn(); err == nil {
				t.Fatalf("%s did not error", name)
			}
		})
	}
}

func TestAdaptiveSVDMatchesDeterministicSpectrum(t *testing.T) {
	rng := testutil.NewRand(46)
	a, _ := testutil.RandomLowRank(60, 30, 6, 0, rng)
	u, s, v := mustAdaptiveSVD(t, a, 1e-9, 4, DefaultOptions())
	_, sDet, _ := linalg.SVD(a)
	for i := 0; i < 6; i++ {
		if math.Abs(s[i]-sDet[i]) > 1e-9*(1+sDet[0]) {
			t.Fatalf("s[%d] = %g, want %g", i, s[i], sDet[i])
		}
	}
	recon := mat.MulTransB(mat.MulDiag(u, s), v)
	if rel := mat.Sub(a, recon).FroNorm() / a.FroNorm(); rel > 1e-9 {
		t.Fatalf("reconstruction error %g", rel)
	}
}

func TestAdaptiveSVDZeroMatrix(t *testing.T) {
	u, s, v := mustAdaptiveSVD(t, mat.New(6, 3), 1e-6, 2, DefaultOptions())
	if len(s) != 0 || u.Cols() != 0 || v.Cols() != 0 {
		t.Fatal("zero matrix should produce empty factors")
	}
}
