package rla

import (
	"testing"

	"goparsvd/internal/linalg"
	"goparsvd/internal/testutil"
)

func BenchmarkRandomizedSVDvsDeterministic(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(2048, 128, rng)
	b.Run("randomized-k10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RandomizedSVD(a, 10, DefaultOptions())
		}
	})
	b.Run("deterministic-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.SVD(a)
		}
	})
}

func BenchmarkRangeFinderPowerIters(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(1024, 256, rng)
	for _, q := range []int{0, 1, 2} {
		opts := Options{Oversample: 10, PowerIters: q, Seed: 1}
		b.Run(map[int]string{0: "q0", 1: "q1", 2: "q2"}[q], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RangeFinder(a, 10, opts)
			}
		})
	}
}
