// Package rla implements the randomized linear algebra building block of
// PyParSVD (paper §3.3): Gaussian sketching, a randomized range finder with
// oversampling and power iterations, and the randomized low-rank SVD that
// the library substitutes for any dense SVD in its pipeline
// (`low_rank_svd` in the paper's listings).
package rla

import (
	"fmt"
	"math/rand"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

// Options controls the randomized SVD approximation quality.
type Options struct {
	// Oversample is the number p of extra sketch columns beyond the target
	// rank; the sketch has k+p columns. Halko et al. recommend 5–10.
	Oversample int
	// PowerIters is the number q of power (subspace) iterations. Each
	// iteration sharpens the sketch's alignment with the dominant
	// singular subspace at the cost of two extra passes over A; q = 1–2
	// suffices for the rapidly decaying spectra of PDE snapshot matrices.
	PowerIters int
	// Seed makes the Gaussian sketch reproducible. Two calls with the same
	// seed and input produce identical factors.
	Seed int64
}

// DefaultOptions returns the settings used throughout the reproduction:
// oversampling 10, one power iteration, fixed seed.
func DefaultOptions() Options {
	return Options{Oversample: 10, PowerIters: 1, Seed: 1}
}

// IsZero reports whether o is the zero value, i.e. the caller never set any
// field. Consumers use it to substitute DefaultOptions; it is the explicit
// replacement for the fragile `o == (Options{})` struct comparison, which
// breaks as soon as Options grows a non-comparable field and cannot be told
// apart from a deliberately all-zero configuration at the call site.
func (o Options) IsZero() bool {
	return o.Oversample == 0 && o.PowerIters == 0 && o.Seed == 0
}

// Validate reports whether the options describe a usable configuration.
// The zero value is valid (it means "use DefaultOptions").
func (o Options) Validate() error {
	if o.Oversample < 0 {
		return fmt.Errorf("rla: Oversample = %d < 0", o.Oversample)
	}
	if o.PowerIters < 0 {
		return fmt.Errorf("rla: PowerIters = %d < 0", o.PowerIters)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 10
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	}
	return o
}

// Gaussian returns an r×c matrix of iid standard normal entries drawn from
// the given source.
func Gaussian(r, c int, rng *rand.Rand) *mat.Dense {
	m := mat.New(r, c)
	fillGaussian(m, rng)
	return m
}

// fillGaussian overwrites m with iid standard normal entries.
func fillGaussian(m *mat.Dense, rng *rand.Rand) {
	data := m.RawData()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
}

// RangeFinder computes an orthonormal basis Q (m×l, l = k+oversample,
// clamped to min(m, n)) whose span approximates the range of A, via
// Y = A·Ω with a Gaussian Ω followed by QR, optionally sharpened by
// power iterations with re-orthogonalization at every half-step
// (the numerically stable subspace-iteration form). A target rank below
// one is reported as an error, never a panic: the rank reaches this
// package straight from public facade options.
func RangeFinder(a *mat.Dense, k int, opts Options) (*mat.Dense, error) {
	return RangeFinderWith(nil, a, k, opts)
}

// RangeFinderWith is RangeFinder drawing the sketch, the power-iteration
// intermediates and the returned basis from ws, so repeated calls with
// steady shapes (the streaming low-rank path) reuse their buffers.
func RangeFinderWith(ws *mat.Workspace, a *mat.Dense, k int, opts Options) (*mat.Dense, error) {
	opts = opts.withDefaults()
	m, n := a.Dims()
	if k < 1 {
		return nil, fmt.Errorf("rla: RangeFinder target rank %d < 1", k)
	}
	l := k + opts.Oversample
	if l > n {
		l = n
	}
	if l > m {
		l = m
	}
	return rangeBasis(ws, a, l, opts), nil
}

// rangeBasis is the sketch-QR-power-iterate core shared by RangeFinderWith
// and SketchFactors: an orthonormal m×l basis for a width l the caller has
// already clamped to [1, min(m, n)].
func rangeBasis(ws *mat.Workspace, a *mat.Dense, l int, opts Options) *mat.Dense {
	m, n := a.Dims()
	rng := rand.New(rand.NewSource(opts.Seed))
	omega := ws.GetUninit(n, l)
	fillGaussian(omega, rng)
	y := ws.GetUninit(m, l)
	mat.MulInto(y, a, omega)
	ws.Put(omega)
	q, r := linalg.QRWith(ws, y)
	ws.Put(r)
	for it := 0; it < opts.PowerIters; it++ {
		z := ws.GetUninit(n, l)
		mat.MulTransAInto(z, a, q) // n×l
		ws.Put(q)
		qz, rz := linalg.QRWith(ws, z)
		ws.Put(z)
		ws.Put(rz)
		mat.MulInto(y, a, qz) // m×l
		ws.Put(qz)
		q, r = linalg.QRWith(ws, y)
		ws.Put(r)
	}
	ws.Put(y)
	return q
}

// RandomizedSVD computes an approximate rank-k SVD A ≈ U·diag(s)·Vᵀ using
// the Halko–Martinsson–Tropp scheme: project onto the sketched range,
// solve the small problem exactly, and lift back (paper Eqs. 7–11).
// U is m×k, s has length k, V is n×k (k clamped to min(m, n)).
func RandomizedSVD(a *mat.Dense, k int, opts Options) (u *mat.Dense, s []float64, v *mat.Dense, err error) {
	return RandomizedSVDWith(nil, a, k, opts)
}

// RandomizedSVDWith is RandomizedSVD with every temporary and the returned
// factors drawn from ws; the caller owns u, s and v.
func RandomizedSVDWith(ws *mat.Workspace, a *mat.Dense, k int, opts Options) (u *mat.Dense, s []float64, v *mat.Dense, err error) {
	m, n := a.Dims()
	t := min(m, n)
	if k > t {
		k = t
	}
	if k < 1 {
		return nil, nil, nil, fmt.Errorf("rla: RandomizedSVD target rank %d < 1", k)
	}
	q, err := RangeFinderWith(ws, a, k, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	l := q.Cols()
	b := ws.GetUninit(l, n)
	mat.MulTransAInto(b, q, a) // l×n, the small matrix Ã = Q*·A
	var ub *mat.Dense
	ub, s, v = linalg.SVDWith(ws, b)
	ws.Put(b)
	u = ws.GetUninit(m, ub.Cols())
	mat.MulInto(u, q, ub) // lift: U = Q·Ũ (paper Eq. 10)
	ws.Put(ub)
	ws.Put(q)
	if k < len(s) {
		uk := ws.GetUninit(m, k)
		u.SliceColsInto(uk, 0, k)
		ws.Put(u)
		vk := ws.GetUninit(v.Rows(), k)
		v.SliceColsInto(vk, 0, k)
		ws.Put(v)
		u, v = uk, vk
		s = s[:k]
	}
	return u, s, v, nil
}

// LowRankSVD is the paper's `low_rank_svd(wglobal, K)` helper: it returns
// only the left factor and the singular values, which is all the APMOS and
// streaming pipelines consume.
func LowRankSVD(a *mat.Dense, k int, opts Options) (u *mat.Dense, s []float64, err error) {
	return LowRankSVDWith(nil, a, k, opts)
}

// LowRankSVDWith is LowRankSVD drawing its buffers from ws; the caller owns
// the returned factors.
func LowRankSVDWith(ws *mat.Workspace, a *mat.Dense, k int, opts Options) (u *mat.Dense, s []float64, err error) {
	u, s, v, err := RandomizedSVDWith(ws, a, k, opts)
	if err != nil {
		return nil, nil, err
	}
	ws.Put(v)
	return u, s, nil
}

// SketchFactors compresses A (m×n) into the factor pair (Q, S) with
// A ≈ Q·S: Q is an m×l orthonormal range basis, S = QᵀA is l×n, and the
// pair costs l·(m+n) floats against A's m·n. When tol > 0 the width l is
// chosen adaptively (AdaptiveRangeFinder, so the estimated residual obeys
// ‖A − QS‖₂ ≲ tol w.h.p.) and then capped at maxRank — the adaptive basis
// is nested by construction, so truncation keeps the leading directions.
// When tol == 0 the basis has exactly min(maxRank, m, n) columns: unlike
// RangeFinder, no oversampling surplus is kept, because Q crosses the
// wire. A nil pair with a nil error reports that sketching would not
// compress (l·(m+n) ≥ m·n, or A is empty/numerically zero) and the caller
// should ship A raw.
func SketchFactors(a *mat.Dense, tol float64, block, maxRank int, opts Options) (q, s *mat.Dense, err error) {
	if maxRank < 1 {
		return nil, nil, fmt.Errorf("rla: SketchFactors max rank %d < 1", maxRank)
	}
	if tol < 0 {
		return nil, nil, fmt.Errorf("rla: SketchFactors tol = %g < 0", tol)
	}
	opts = opts.withDefaults()
	m, n := a.Dims()
	l := min(maxRank, min(m, n))
	if l < 1 {
		return nil, nil, nil
	}
	if tol > 0 {
		if block < 1 {
			return nil, nil, fmt.Errorf("rla: SketchFactors block = %d < 1", block)
		}
		q, err = AdaptiveRangeFinder(a, tol, block, opts)
		if err != nil {
			return nil, nil, err
		}
		if q.Cols() > l {
			q = q.SliceCols(0, l)
		}
	} else {
		q = rangeBasis(nil, a, l, opts)
	}
	if lq := q.Cols(); lq == 0 || lq*(m+n) >= m*n {
		return nil, nil, nil
	}
	return q, mat.MulTransA(q, a), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
