package rla

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

// mustRangeFinder / mustRandomizedSVD / mustLowRankSVD unwrap the error
// returns for the tests that feed known-valid arguments.
func mustRangeFinder(t *testing.T, a *mat.Dense, k int, opts Options) *mat.Dense {
	t.Helper()
	q, err := RangeFinder(a, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustRandomizedSVD(t *testing.T, a *mat.Dense, k int, opts Options) (*mat.Dense, []float64, *mat.Dense) {
	t.Helper()
	u, s, v, err := RandomizedSVD(a, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u, s, v
}

func mustLowRankSVD(t *testing.T, a *mat.Dense, k int, opts Options) (*mat.Dense, []float64) {
	t.Helper()
	u, s, err := LowRankSVD(a, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u, s
}

func TestGaussianShapeAndMoments(t *testing.T) {
	rng := testutil.NewRand(1)
	g := Gaussian(200, 50, rng)
	if g.Rows() != 200 || g.Cols() != 50 {
		t.Fatalf("shape %dx%d", g.Rows(), g.Cols())
	}
	sum, sumSq := 0.0, 0.0
	for _, v := range g.RawData() {
		sum += v
		sumSq += v * v
	}
	n := float64(200 * 50)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("sample mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("sample variance %g too far from 1", variance)
	}
}

func TestRangeFinderOrthonormal(t *testing.T) {
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(60, 20, rng)
	q := mustRangeFinder(t, a, 5, DefaultOptions())
	testutil.CheckOrthonormalColumns(t, "Q", q, 1e-12)
	if q.Rows() != 60 || q.Cols() != 15 { // k + oversample
		t.Fatalf("Q shape %dx%d", q.Rows(), q.Cols())
	}
}

func TestRangeFinderClampsWidth(t *testing.T) {
	rng := testutil.NewRand(3)
	a := testutil.RandomDense(30, 6, rng)
	q := mustRangeFinder(t, a, 5, DefaultOptions()) // k+p = 15 > n = 6
	if q.Cols() != 6 {
		t.Fatalf("Q cols %d, want clamped to 6", q.Cols())
	}
}

func TestRangeFinderCapturesExactLowRank(t *testing.T) {
	// For an exactly rank-r matrix, ‖A − QQᵀA‖ must vanish.
	rng := testutil.NewRand(4)
	a, _ := testutil.RandomLowRank(50, 30, 4, 0, rng)
	q := mustRangeFinder(t, a, 4, DefaultOptions())
	proj := mat.Mul(q, mat.MulTransA(q, a))
	if resid := mat.Sub(a, proj).FroNorm() / a.FroNorm(); resid > 1e-10 {
		t.Fatalf("range not captured: relative residual %g", resid)
	}
}

func TestRandomizedSVDShapes(t *testing.T) {
	rng := testutil.NewRand(5)
	a := testutil.RandomDense(40, 25, rng)
	u, s, v := mustRandomizedSVD(t, a, 6, DefaultOptions())
	if u.Rows() != 40 || u.Cols() != 6 || len(s) != 6 || v.Rows() != 25 || v.Cols() != 6 {
		t.Fatalf("shapes U %dx%d s %d V %dx%d", u.Rows(), u.Cols(), len(s), v.Rows(), v.Cols())
	}
	testutil.CheckOrthonormalColumns(t, "U", u, 1e-11)
	testutil.CheckOrthonormalColumns(t, "V", v, 1e-11)
}

func TestRandomizedSVDExactOnLowRank(t *testing.T) {
	rng := testutil.NewRand(6)
	a, wantS := testutil.RandomLowRank(60, 40, 5, 0, rng)
	u, s, v := mustRandomizedSVD(t, a, 5, DefaultOptions())
	if !testutil.CloseSlices(s, wantS, 1e-9) {
		t.Fatalf("singular values %v, want %v", s, wantS)
	}
	recon := mat.MulTransB(mat.MulDiag(u, s), v)
	if rel := mat.Sub(a, recon).FroNorm() / a.FroNorm(); rel > 1e-9 {
		t.Fatalf("reconstruction error %g", rel)
	}
}

func TestRandomizedSVDMatchesDeterministicLeadingValues(t *testing.T) {
	// On a noisy low-rank matrix, the leading randomized singular values
	// must track the deterministic SVD closely.
	rng := testutil.NewRand(7)
	a, _ := testutil.RandomLowRank(80, 50, 8, 1e-4, rng)
	_, sDet, _ := linalg.SVD(a)
	opts := DefaultOptions()
	opts.PowerIters = 2
	_, sRand, _ := mustRandomizedSVD(t, a, 8, opts)
	for i := 0; i < 8; i++ {
		if math.Abs(sRand[i]-sDet[i]) > 1e-3*sDet[0] {
			t.Fatalf("s[%d]: randomized %g vs deterministic %g", i, sRand[i], sDet[i])
		}
	}
}

func TestRandomizedSVDDeterministicWithSeed(t *testing.T) {
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(30, 20, rng)
	opts := DefaultOptions()
	u1, s1, _ := mustRandomizedSVD(t, a, 4, opts)
	u2, s2, _ := mustRandomizedSVD(t, a, 4, opts)
	if !testutil.CloseSlices(s1, s2, 0) || !mat.EqualApprox(u1, u2, 0) {
		t.Fatal("same seed must give identical factors")
	}
}

func TestRandomizedSVDSeedChangesSketch(t *testing.T) {
	rng := testutil.NewRand(9)
	a := testutil.RandomDense(30, 20, rng)
	o1 := Options{Oversample: 2, PowerIters: 0, Seed: 1}
	o2 := Options{Oversample: 2, PowerIters: 0, Seed: 2}
	u1, _, _ := mustRandomizedSVD(t, a, 4, o1)
	u2, _, _ := mustRandomizedSVD(t, a, 4, o2)
	// With no power iterations on a full-rank random matrix the bases
	// should differ measurably between seeds.
	if mat.EqualApprox(u1, u2, 1e-12) {
		t.Fatal("different seeds produced identical sketches")
	}
}

func TestRandomizedSVDClampsRank(t *testing.T) {
	rng := testutil.NewRand(10)
	a := testutil.RandomDense(10, 4, rng)
	u, s, v := mustRandomizedSVD(t, a, 99, DefaultOptions())
	if u.Cols() != 4 || len(s) != 4 || v.Cols() != 4 {
		t.Fatalf("rank not clamped: %d", len(s))
	}
}

func TestLowRankSVDMatchesRandomizedSVD(t *testing.T) {
	rng := testutil.NewRand(11)
	a := testutil.RandomDense(25, 15, rng)
	opts := DefaultOptions()
	u1, s1 := mustLowRankSVD(t, a, 5, opts)
	u2, s2, _ := mustRandomizedSVD(t, a, 5, opts)
	if !mat.EqualApprox(u1, u2, 0) || !testutil.CloseSlices(s1, s2, 0) {
		t.Fatal("LowRankSVD must be the left part of RandomizedSVD")
	}
}

func TestPowerIterationsImproveAccuracy(t *testing.T) {
	// With a slowly decaying spectrum, power iterations must reduce the
	// projection error ‖A − QQᵀA‖_F (averaged over a few seeds to avoid
	// flakiness from one lucky sketch).
	rng := testutil.NewRand(12)
	u := testutil.RandomOrthonormal(60, 30, rng)
	v := testutil.RandomOrthonormal(40, 30, rng)
	s := make([]float64, 30)
	for i := range s {
		s[i] = 1.0 / (1.0 + float64(i)) // harmonic decay: hard for plain sketching
	}
	a := mat.MulTransB(mat.MulDiag(u, s), v)
	resid := func(powerIters int, seed int64) float64 {
		q := mustRangeFinder(t, a, 5, Options{Oversample: 2, PowerIters: powerIters, Seed: seed})
		proj := mat.Mul(q, mat.MulTransA(q, a))
		return mat.Sub(a, proj).FroNorm()
	}
	var r0, r3 float64
	for seed := int64(1); seed <= 5; seed++ {
		r0 += resid(0, seed)
		r3 += resid(3, seed)
	}
	if r3 >= r0 {
		t.Fatalf("power iterations did not help: q=0 → %g, q=3 → %g", r0/5, r3/5)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Oversample != 10 || o.PowerIters != 0 {
		t.Fatalf("withDefaults = %+v", o)
	}
	d := DefaultOptions()
	if d.Oversample != 10 || d.PowerIters != 1 {
		t.Fatalf("DefaultOptions = %+v", d)
	}
}

// Property: randomized SVD error is bounded relative to the optimal rank-k
// error with a generous margin (Halko et al. give expectation bounds;
// we check a loose deterministic-ish version over many seeds).
func TestPropertyRandomizedErrorNearOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 20 + rng.Intn(20)
		n := 10 + rng.Intn(15)
		a := testutil.RandomDense(m, n, rng)
		k := 3 + rng.Intn(4)
		_, sDet, _ := linalg.SVD(a)
		u, s, v, err := RandomizedSVD(a, k, Options{Oversample: 8, PowerIters: 2, Seed: seed})
		if err != nil {
			return false
		}
		recon := mat.MulTransB(mat.MulDiag(u, s), v)
		got := mat.Sub(a, recon).FroNorm()
		opt := 0.0
		for _, sv := range sDet[k:] {
			opt += sv * sv
		}
		opt = math.Sqrt(opt)
		// Allow a 3x margin over the optimal rank-k residual.
		return got <= 3*opt+1e-12
	}
	cfg := &quick.Config{MaxCount: 25, Rand: testutil.NewRand(13)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
