// Package scaling reproduces the weak-scaling assessment of the paper's
// Figure 1(c): the parallelized + randomized SVD (APMOS initialization, no
// streaming — exactly the configuration the paper states it timed) with a
// fixed number of grid points per rank and an increasing rank count.
//
// Two instruments are provided, because this reproduction substitutes
// goroutines on one machine for MPI ranks on 256 Theta nodes:
//
//   - RunMeasured times real executions of the distributed pipeline with
//     goroutine ranks. It produces honest wall-clock numbers, but beyond
//     the local core count the ranks time-share the CPU, so measured weak
//     "scaling" on a laptop flattens compute and only exposes algorithmic
//     overheads.
//
//   - Model is an analytic cost model of the same pipeline — per-rank
//     compute, the gather incast at the root, the root's randomized SVD
//     of the W matrix, and the log-depth broadcast — with machine
//     constants describing a Theta-like system (KNL-era per-core flop
//     rate, Aries-like latency/bandwidth). Evaluating it from 1 to 16384
//     ranks (256 nodes × 64 ranks) regenerates the shape of Figure 1(c):
//     near-ideal weak scaling with a mild upturn at the largest counts.
//
// Both report the same Point rows, so the harness prints them side by side.
package scaling

import (
	"fmt"
	"math"
	"sync"
	"time"

	"goparsvd/internal/apmos"
	"goparsvd/internal/burgers"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
)

// Point is one row of a weak-scaling series.
type Point struct {
	Ranks int
	// Seconds is the wall-clock (measured) or modeled execution time.
	Seconds float64
	// Efficiency is T(ranks₀)/T(ranks), the weak-scaling efficiency
	// relative to the first point in the series (1.0 = ideal).
	Efficiency float64
	// CommBytes is the total communication volume (measured series only).
	CommBytes int64
}

// MeasuredConfig parameterizes a measured weak-scaling run.
type MeasuredConfig struct {
	// RowsPerRank is the fixed local problem size (paper: 1024 grid
	// points per rank).
	RowsPerRank int
	// Snapshots is the global column count N (paper: 800).
	Snapshots int
	// K is the mode count for the randomized SVD.
	K int
	// R1 is the APMOS gather truncation.
	R1 int
	// Ranks lists the rank counts to measure.
	Ranks []int
	// Trials repeats each measurement and keeps the minimum (the standard
	// way to strip scheduler noise from in-process timings).
	Trials int
}

// DefaultMeasuredConfig is a laptop-scale version of the paper's setup:
// the same 1024 rows per rank with a reduced snapshot count so the full
// series runs in seconds.
func DefaultMeasuredConfig() MeasuredConfig {
	return MeasuredConfig{
		RowsPerRank: 1024,
		Snapshots:   128,
		K:           10,
		R1:          32,
		Ranks:       []int{1, 2, 4, 8, 16},
		Trials:      3,
	}
}

func (c MeasuredConfig) validate() {
	if c.RowsPerRank < 1 || c.Snapshots < 1 || c.K < 1 || len(c.Ranks) == 0 || c.Trials < 1 {
		panic(fmt.Sprintf("scaling: invalid config %+v", c))
	}
}

// RunMeasured executes the randomized+parallel SVD for each rank count and
// returns the measured series. Snapshot generation happens outside the
// timed region; only Decompose (local SVDs, gather, root randomized SVD,
// broadcast, mode assembly) is on the clock.
func RunMeasured(cfg MeasuredConfig) []Point {
	cfg.validate()
	points := make([]Point, 0, len(cfg.Ranks))
	for _, p := range cfg.Ranks {
		// Weak scaling: the global problem grows with the rank count.
		bc := burgers.Config{
			L: 1, Re: 1000,
			Nx: cfg.RowsPerRank * p, Nt: cfg.Snapshots, TFinal: 2,
		}
		parts := bc.Partition(p)
		blocks := make([]*mat.Dense, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				blocks[r] = bc.SnapshotsRows(parts[r][0], parts[r][1])
			}(r)
		}
		wg.Wait()

		opts := apmos.Options{
			K: cfg.K, R1: cfg.R1, R2: cfg.K,
			LowRank: true,
			RLA:     rla.Options{Oversample: 10, PowerIters: 1, Seed: 7},
		}
		best := math.Inf(1)
		var bytes int64
		for trial := 0; trial < cfg.Trials; trial++ {
			start := time.Now()
			stats := mpi.MustRun(p, func(c *mpi.Comm) {
				apmos.Decompose(c, blocks[c.Rank()], opts)
			})
			if dt := time.Since(start).Seconds(); dt < best {
				best = dt
			}
			bytes = stats.Bytes
		}
		points = append(points, Point{Ranks: p, Seconds: best, CommBytes: bytes})
	}
	FillEfficiency(points)
	return points
}

// Model is the analytic cost model of one APMOS (randomized) decomposition
// on a Theta-like machine. All times are seconds.
type Model struct {
	// Workload, matching MeasuredConfig semantics.
	RowsPerRank int
	Snapshots   int
	K           int
	R1          int
	Oversample  int

	// FlopsPerSec is the sustained per-rank flop rate. A KNL core running
	// vectorized LAPACK-ish kernels sustains a few GF/s.
	FlopsPerSec float64
	// LatencySec is the per-message network latency α (Aries ~ 1–2 µs).
	LatencySec float64
	// BytesPerSec is the per-link bandwidth 1/β (Aries ~ 8–10 GB/s).
	BytesPerSec float64
}

// DefaultThetaModel returns constants representative of the paper's
// platform: Theta's Intel KNL nodes on a Cray Aries dragonfly.
func DefaultThetaModel() Model {
	return Model{
		RowsPerRank: 1024,
		Snapshots:   800,
		K:           10,
		R1:          50,
		Oversample:  10,
		FlopsPerSec: 3e9,
		LatencySec:  2e-6,
		BytesPerSec: 8e9,
	}
}

// Time evaluates the modeled execution time for the given rank count.
//
// Cost terms (M = RowsPerRank, N = Snapshots, l = K+Oversample, P = ranks):
//
//	local Gram matrix        2·M·N²              (perfectly parallel)
//	local right-vector SVD   ~10·N³              (per rank, constant)
//	local sketch+modes       2·M·N·l + 2·M·N·K
//	gather W at root         (P−1)·(α + 8·N·R1/BW)   — root incast
//	root randomized SVD      ~4·N·(R1·P)·l + 8·(R1·P)·l²  — linear in P
//	broadcast X̃, Λ̃          ⌈log₂P⌉·(α + 8·N·K/BW)
func (m Model) Time(ranks int) float64 {
	if ranks < 1 {
		panic(fmt.Sprintf("scaling: ranks = %d", ranks))
	}
	M := float64(m.RowsPerRank)
	N := float64(m.Snapshots)
	K := float64(m.K)
	R1 := float64(m.R1)
	l := K + float64(m.Oversample)
	P := float64(ranks)

	flops := 2*M*N*N + // Gram
		10*N*N*N + // local SVD of the N×N Gram matrix
		2*M*N*l + 2*M*N*K // sketch + mode assembly
	t := flops / m.FlopsPerSec

	// Gather incast at the root.
	wBytes := 8 * N * R1
	t += (P - 1) * (m.LatencySec + wBytes/m.BytesPerSec)

	// Root randomized SVD of the N×(R1·P) W matrix.
	rootFlops := 4*N*(R1*P)*l + 8*(R1*P)*l*l
	t += rootFlops / m.FlopsPerSec

	// Broadcast down a binomial tree (absent in a single-rank run).
	if ranks > 1 {
		xBytes := 8 * (N*K + K)
		t += math.Ceil(math.Log2(P)) * (m.LatencySec + xBytes/m.BytesPerSec)
	}
	return t
}

// Series evaluates the model at the given rank counts.
func (m Model) Series(ranks []int) []Point {
	points := make([]Point, len(ranks))
	for i, p := range ranks {
		points[i] = Point{Ranks: p, Seconds: m.Time(p)}
	}
	FillEfficiency(points)
	return points
}

// PowersOfTwo returns {1, 2, 4, …} up to and including max (if max is a
// power of two) — the natural x-axis of the Figure 1(c) log plot.
func PowersOfTwo(max int) []int {
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// FillEfficiency sets Efficiency = T(first)/T(p) on a series — the
// weak-scaling convention of Figure 1(c). Exported so every series
// producer (measured, modeled, multi-process TCP) derives efficiency the
// same way.
func FillEfficiency(points []Point) {
	if len(points) == 0 {
		return
	}
	base := points[0].Seconds
	for i := range points {
		if points[i].Seconds > 0 {
			points[i].Efficiency = base / points[i].Seconds
		}
	}
}

// FormatSeries renders a fixed-width weak-scaling table matching the
// figure's content: rank count, time, efficiency.
func FormatSeries(title string, points []Point) string {
	s := title + "\n"
	s += fmt.Sprintf("%8s  %12s  %10s\n", "ranks", "time[s]", "efficiency")
	for _, p := range points {
		s += fmt.Sprintf("%8d  %12.4e  %10.3f\n", p.Ranks, p.Seconds, p.Efficiency)
	}
	return s
}
