package scaling

import (
	"math"
	"strings"
	"testing"
)

func TestRunMeasuredSmall(t *testing.T) {
	cfg := MeasuredConfig{
		RowsPerRank: 64,
		Snapshots:   24,
		K:           4,
		R1:          8,
		Ranks:       []int{1, 2, 4},
		Trials:      1,
	}
	pts := RunMeasured(cfg)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Seconds <= 0 {
			t.Fatalf("point %d has non-positive time %g", i, p.Seconds)
		}
		if p.Ranks != cfg.Ranks[i] {
			t.Fatalf("point %d ranks %d, want %d", i, p.Ranks, cfg.Ranks[i])
		}
	}
	if pts[0].Efficiency != 1 {
		t.Fatalf("first efficiency %g, want 1", pts[0].Efficiency)
	}
	// Communication volume must grow with the rank count.
	if pts[2].CommBytes <= pts[1].CommBytes {
		t.Fatalf("comm bytes should grow: %d then %d", pts[1].CommBytes, pts[2].CommBytes)
	}
	// Single rank has no communication.
	if pts[0].CommBytes != 0 {
		t.Fatalf("1-rank run should move 0 bytes, moved %d", pts[0].CommBytes)
	}
}

func TestRunMeasuredInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	RunMeasured(MeasuredConfig{})
}

func TestModelWeakScalingShape(t *testing.T) {
	// The defining properties of Figure 1(c): the curve is near-flat
	// through hundreds of ranks (close-to-ideal weak scaling), then turns
	// up as the root's O(P) terms bite.
	m := DefaultThetaModel()
	t1 := m.Time(1)
	t256 := m.Time(256)
	t16384 := m.Time(16384)
	if t256 > 1.5*t1 {
		t.Fatalf("efficiency at 256 ranks only %.2f; figure shows near-ideal scaling", t1/t256)
	}
	if t16384 <= t256 {
		t.Fatal("root bottleneck should eventually show")
	}
	// Monotone non-decreasing in P.
	prev := 0.0
	for p := 1; p <= 4096; p *= 2 {
		cur := m.Time(p)
		if cur < prev {
			t.Fatalf("modeled time decreased at P=%d", p)
		}
		prev = cur
	}
}

func TestModelSeriesEfficiency(t *testing.T) {
	m := DefaultThetaModel()
	pts := m.Series(PowersOfTwo(64))
	if len(pts) != 7 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Efficiency != 1 {
		t.Fatalf("base efficiency %g", pts[0].Efficiency)
	}
	for _, p := range pts {
		if p.Efficiency <= 0 || p.Efficiency > 1+1e-12 {
			t.Fatalf("efficiency out of range at P=%d: %g", p.Ranks, p.Efficiency)
		}
	}
}

func TestModelComputeBound(t *testing.T) {
	// With an absurdly fast network, time must be essentially flat in P
	// until the root SVD term dominates.
	m := DefaultThetaModel()
	m.LatencySec = 0
	m.BytesPerSec = math.Inf(1)
	t1, t64 := m.Time(1), m.Time(64)
	// Root randomized SVD is linear in P but tiny at 64 ranks.
	if t64 > 1.2*t1 {
		t.Fatalf("compute-bound model not flat: %g vs %g", t64, t1)
	}
}

func TestModelCommunicationTermsMatter(t *testing.T) {
	// Slowing the network must slow large-P runs but barely affect P=1.
	fast := DefaultThetaModel()
	slow := DefaultThetaModel()
	slow.BytesPerSec = 1e6 // 1 MB/s
	if slow.Time(1) != fast.Time(1) {
		t.Fatal("P=1 should not involve the network")
	}
	if slow.Time(256) <= fast.Time(256) {
		t.Fatal("slow network should hurt at 256 ranks")
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFormatSeries(t *testing.T) {
	out := FormatSeries("weak scaling", []Point{{Ranks: 1, Seconds: 0.5, Efficiency: 1}})
	if !strings.Contains(out, "weak scaling") || !strings.Contains(out, "ranks") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "5.0000e-01") {
		t.Fatalf("missing data row:\n%s", out)
	}
}

func TestModelInvalidRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ranks=0 did not panic")
		}
	}()
	DefaultThetaModel().Time(0)
}

func TestRunStrongScalingSmall(t *testing.T) {
	cfg := StrongConfig{
		Rows:      256,
		Snapshots: 24,
		K:         4,
		R1:        8,
		Ranks:     []int{1, 2, 4},
		Trials:    1,
	}
	pts := RunStrongScaling(cfg)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("base speedup %g, want 1", pts[0].Speedup)
	}
	for i, p := range pts {
		if p.Seconds <= 0 {
			t.Fatalf("point %d: non-positive time", i)
		}
		if p.Speedup <= 0 {
			t.Fatalf("point %d: non-positive speedup", i)
		}
	}
}

func TestRunStrongScalingValidation(t *testing.T) {
	for name, cfg := range map[string]StrongConfig{
		"empty":          {},
		"ranks-too-high": {Rows: 4, Snapshots: 4, K: 1, Ranks: []int{8}, Trials: 1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			RunStrongScaling(cfg)
		})
	}
}

func TestFormatStrongSeries(t *testing.T) {
	out := FormatStrongSeries("strong", []StrongPoint{
		{Ranks: 1, Seconds: 1, Speedup: 1},
		{Ranks: 4, Seconds: 0.3, Speedup: 3.33},
	})
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "ideal") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "4.000") { // ideal speedup at 4 ranks
		t.Fatalf("missing ideal column:\n%s", out)
	}
}

func TestDefaultStrongConfigValid(t *testing.T) {
	cfg := DefaultStrongConfig()
	cfg.validate() // must not panic
}
