package scaling

import (
	"fmt"

	"goparsvd/internal/burgers"
	"goparsvd/internal/core"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
)

// StreamWorkload is the deterministic distributed streaming-SVD workload
// shared by every execution mode: the in-process goroutine world, the
// multi-process TCP world (cmd/parsvd-worker), and the serial reference.
// The snapshot matrix is the analytic Burgers solution, so any two runs
// with the same parameters see bit-identical inputs — which is what lets
// the launcher demand bit-identical outputs across transports.
type StreamWorkload struct {
	// RowsPerRank is the grid-point count each rank owns (global rows =
	// RowsPerRank × ranks).
	RowsPerRank int
	// Snapshots is the total snapshot (column) count.
	Snapshots int
	// InitBatch is the column count of the Initialize batch; the rest
	// streams through IncorporateData in Batch-column chunks.
	InitBatch int
	// Batch is the streaming batch width.
	Batch int
	// K is the retained mode count.
	K int
	// R1 is the APMOS gather truncation used during initialization.
	R1 int
	// FF is the streaming forget factor.
	FF float64
	// LowRank switches the pipeline to the randomized SVD; Seed fixes its
	// sketch so runs stay reproducible.
	LowRank bool
	Seed    int64
}

// DefaultStreamWorkload is a laptop-scale configuration: large enough that
// every collective (scatter, gather, broadcast, TSQR correction exchange)
// carries real payloads, small enough to run in well under a second per
// rank.
func DefaultStreamWorkload() StreamWorkload {
	return StreamWorkload{
		RowsPerRank: 256,
		Snapshots:   96,
		InitBatch:   24,
		Batch:       12,
		K:           8,
		R1:          24,
		FF:          0.95,
		Seed:        7,
	}
}

// Validate reports whether the workload is well formed.
func (w StreamWorkload) Validate() error {
	switch {
	case w.RowsPerRank < 1:
		return fmt.Errorf("scaling: RowsPerRank = %d < 1", w.RowsPerRank)
	case w.Snapshots < 1:
		return fmt.Errorf("scaling: Snapshots = %d < 1", w.Snapshots)
	case w.InitBatch < 1 || w.InitBatch > w.Snapshots:
		return fmt.Errorf("scaling: InitBatch = %d outside [1,%d]", w.InitBatch, w.Snapshots)
	case w.Batch < 1:
		return fmt.Errorf("scaling: Batch = %d < 1", w.Batch)
	case w.K < 1:
		return fmt.Errorf("scaling: K = %d < 1", w.K)
	case w.FF <= 0 || w.FF > 1:
		return fmt.Errorf("scaling: FF = %g outside (0,1]", w.FF)
	}
	return nil
}

// BurgersConfig is the shared snapshot generator for the given world size:
// any consumer that replays it (the parsvd facade's workload Source, the
// serial reference, the TCP workers) sees bit-identical inputs.
func (w StreamWorkload) BurgersConfig(ranks int) burgers.Config {
	return burgers.Config{L: 1, Re: 1000, Nx: w.RowsPerRank * ranks, Nt: w.Snapshots, TFinal: 2}
}

func (w StreamWorkload) coreOptions() core.Options {
	return core.Options{
		K:            w.K,
		ForgetFactor: w.FF,
		R1:           w.R1,
		LowRank:      w.LowRank,
		RLA:          rla.Options{Oversample: 10, PowerIters: 1, Seed: w.Seed},
	}
}

// StreamResult is one rank's view of a finished streaming run.
type StreamResult struct {
	// Singular holds the final truncated singular values (identical on
	// every rank after the closing broadcast).
	Singular []float64
	// Modes is the gathered M×K mode matrix; populated on rank 0 only.
	Modes *mat.Dense
	// Iterations is the number of streaming updates performed.
	Iterations int
}

// RunStream executes the full distributed streaming pipeline as one rank
// of c's world: APMOS initialization on the first InitBatch columns, then
// streaming IncorporateData updates over the remainder, and a final mode
// gather at rank 0. It is transport-agnostic — the same function body runs
// over goroutine ranks and over TCP worker processes.
func RunStream(c *mpi.Comm, w StreamWorkload) StreamResult {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	bc := w.BurgersConfig(c.Size())
	parts := bc.Partition(c.Size())
	r0, r1 := parts[c.Rank()][0], parts[c.Rank()][1]

	eng := core.NewParallel(c, w.coreOptions())
	eng.Initialize(bc.Block(r0, r1, 0, w.InitBatch))
	for col := w.InitBatch; col < w.Snapshots; col += w.Batch {
		hi := col + w.Batch
		if hi > w.Snapshots {
			hi = w.Snapshots
		}
		eng.IncorporateData(bc.Block(r0, r1, col, hi))
	}
	modes := eng.GatherModes()
	return StreamResult{
		Singular:   append([]float64(nil), eng.SingularValues()...),
		Modes:      modes,
		Iterations: eng.Iterations(),
	}
}

// RunStreamSerial runs the serial reference engine over the identical
// global snapshot sequence (same Burgers matrix, same batching), for
// accuracy checks against the distributed runs.
func RunStreamSerial(ranks int, w StreamWorkload) StreamResult {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	bc := w.BurgersConfig(ranks)
	eng := core.NewSerial(w.coreOptions())
	eng.Initialize(bc.Block(0, bc.Nx, 0, w.InitBatch))
	for col := w.InitBatch; col < w.Snapshots; col += w.Batch {
		hi := col + w.Batch
		if hi > w.Snapshots {
			hi = w.Snapshots
		}
		eng.IncorporateData(bc.Block(0, bc.Nx, col, hi))
	}
	return StreamResult{
		Singular:   append([]float64(nil), eng.SingularValues()...),
		Modes:      eng.Modes().Clone(),
		Iterations: eng.Iterations(),
	}
}

// RankStats is one worker process's traffic and timing report — the
// multi-process analogue of one rank's slice of mpi.Stats. The launcher
// collects one per worker and aggregates them, so the per-rank byte counts
// of a real socket run feed the same scaling tables as the in-process
// counters.
type RankStats struct {
	Rank      int     `json:"rank"`
	Messages  int64   `json:"messages"`
	BytesSent int64   `json:"bytes_sent"`
	BytesRecv int64   `json:"bytes_recv"`
	Seconds   float64 `json:"seconds"`
}

// AggregateStats merges per-process reports into a world-level mpi.Stats:
// totals are summed and each report contributes its own rank's receive
// count.
func AggregateStats(ranks int, rs []RankStats) mpi.Stats {
	agg := mpi.Stats{Ranks: ranks, RecvBytes: make([]int64, ranks)}
	for _, s := range rs {
		agg.Messages += s.Messages
		agg.Bytes += s.BytesSent
		if s.Rank >= 0 && s.Rank < ranks {
			agg.RecvBytes[s.Rank] = s.BytesRecv
		}
	}
	return agg
}

// MultiProcessPoint folds per-worker reports into one weak-scaling row:
// the slowest rank sets the time (the job is done when the last rank is)
// and the summed payload traffic sets the communication volume.
func MultiProcessPoint(ranks int, rs []RankStats) Point {
	var p Point
	p.Ranks = ranks
	for _, s := range rs {
		if s.Seconds > p.Seconds {
			p.Seconds = s.Seconds
		}
		p.CommBytes += s.BytesSent
	}
	return p
}
