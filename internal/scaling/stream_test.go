package scaling

import (
	"math"
	"testing"
	"time"

	"goparsvd/internal/mpi"
	"goparsvd/internal/mpi/tcptransport"
	"goparsvd/internal/postproc"
)

func smallWorkload() StreamWorkload {
	return StreamWorkload{
		RowsPerRank: 64,
		Snapshots:   48,
		InitBatch:   12,
		Batch:       12,
		K:           6,
		R1:          16,
		FF:          0.95,
		Seed:        7,
	}
}

// runChan executes the workload on p goroutine ranks and returns rank 0's
// result (which carries the gathered modes).
func runChan(t *testing.T, p int, w StreamWorkload) StreamResult {
	t.Helper()
	var res StreamResult
	if _, err := mpi.Run(p, func(c *mpi.Comm) {
		r := RunStream(c, w)
		if c.Rank() == 0 {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamDeterministic guards the property the multi-process
// verification rests on: two runs of the identical workload produce
// bit-identical singular values and modes.
func TestStreamDeterministic(t *testing.T) {
	w := smallWorkload()
	a := runChan(t, 4, w)
	b := runChan(t, 4, w)
	if !bitsEqual(a.Singular, b.Singular) {
		t.Error("singular values differ between identical runs")
	}
	if !bitsEqual(a.Modes.RawData(), b.Modes.RawData()) {
		t.Error("modes differ between identical runs")
	}
}

// TestStreamTCPMatchesChanBitForBit is the transport-equivalence contract
// at the full-pipeline level: the same deterministic workload over real
// loopback sockets must reproduce the in-process run exactly, bit for bit.
func TestStreamTCPMatchesChanBitForBit(t *testing.T) {
	w := smallWorkload()
	const p = 4
	want := runChan(t, p, w)

	var got StreamResult
	if _, err := tcptransport.Run(p, tcptransport.Options{
		DialTimeout: 10 * time.Second,
		IdleTimeout: 60 * time.Second,
	}, func(c *mpi.Comm) {
		r := RunStream(c, w)
		if c.Rank() == 0 {
			got = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Singular, want.Singular) {
		t.Errorf("singular values differ across transports:\n tcp  %v\n chan %v", got.Singular, want.Singular)
	}
	gr, gc := got.Modes.Dims()
	wr, wc := want.Modes.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("gathered modes shape %dx%d over tcp, %dx%d in-process", gr, gc, wr, wc)
	}
	if !bitsEqual(got.Modes.RawData(), want.Modes.RawData()) {
		t.Error("gathered modes differ across transports")
	}
}

// TestStreamMatchesSerial checks the workload against the serial streaming
// reference: distributed and serial engines follow different arithmetic
// paths, so the comparison is tolerance-based (this is the paper's Figure
// 1(a,b) statement on the shared workload).
func TestStreamMatchesSerial(t *testing.T) {
	w := smallWorkload()
	const p = 4
	par := runChan(t, p, w)
	ser := RunStreamSerial(p, w)

	if len(par.Singular) != len(ser.Singular) {
		t.Fatalf("mode count: parallel %d, serial %d", len(par.Singular), len(ser.Singular))
	}
	for i := range par.Singular {
		if d := math.Abs(par.Singular[i] - ser.Singular[i]); d > 1e-6*math.Max(1, ser.Singular[i]) {
			t.Errorf("sigma[%d]: parallel %g vs serial %g", i, par.Singular[i], ser.Singular[i])
		}
	}
	errs := postproc.CompareModes(ser.Modes, par.Modes)
	for _, e := range errs[:2] {
		if e.MaxAbs > 1e-4 {
			t.Errorf("mode %d: max|serial-parallel| = %.3e, want < 1e-4", e.Mode+1, e.MaxAbs)
		}
	}
}

func TestAggregateStats(t *testing.T) {
	rs := []RankStats{
		{Rank: 0, Messages: 3, BytesSent: 100, BytesRecv: 700, Seconds: 0.5},
		{Rank: 1, Messages: 5, BytesSent: 400, BytesRecv: 40, Seconds: 0.9},
	}
	agg := AggregateStats(2, rs)
	if agg.Messages != 8 || agg.Bytes != 500 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.RecvBytes[0] != 700 || agg.RecvBytes[1] != 40 {
		t.Fatalf("RecvBytes = %v", agg.RecvBytes)
	}
	pt := MultiProcessPoint(2, rs)
	if pt.Seconds != 0.9 || pt.CommBytes != 500 || pt.Ranks != 2 {
		t.Fatalf("point = %+v", pt)
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
