package scaling

import (
	"fmt"
	"math"
	"time"

	"goparsvd/internal/apmos"
	"goparsvd/internal/burgers"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/rla"
)

// Strong scaling is not in the paper's evaluation (Figure 1c is weak
// scaling only), but it is the other half of any distributed-SVD scaling
// story and the natural ablation for DESIGN.md's A-series: a fixed global
// problem split across more ranks, reporting speedup instead of constant
// time.

// StrongConfig parameterizes a measured strong-scaling run: the global
// problem stays fixed while the rank count grows.
type StrongConfig struct {
	// Rows is the fixed global row count, split evenly across ranks.
	Rows int
	// Snapshots is the global column count.
	Snapshots int
	// K is the mode count; R1 the APMOS gather truncation.
	K, R1 int
	// Ranks lists the rank counts to measure.
	Ranks []int
	// Trials repeats each measurement and keeps the minimum.
	Trials int
}

// DefaultStrongConfig is a laptop-scale strong-scaling sweep.
func DefaultStrongConfig() StrongConfig {
	return StrongConfig{
		Rows:      8192,
		Snapshots: 128,
		K:         10,
		R1:        32,
		Ranks:     []int{1, 2, 4, 8},
		Trials:    3,
	}
}

func (c StrongConfig) validate() {
	if c.Rows < 1 || c.Snapshots < 1 || c.K < 1 || len(c.Ranks) == 0 || c.Trials < 1 {
		panic(fmt.Sprintf("scaling: invalid strong config %+v", c))
	}
	for _, p := range c.Ranks {
		if p < 1 || p > c.Rows {
			panic(fmt.Sprintf("scaling: rank count %d incompatible with %d rows", p, c.Rows))
		}
	}
}

// StrongPoint is one row of a strong-scaling series.
type StrongPoint struct {
	Ranks   int
	Seconds float64
	// Speedup is T(first)/T(p); ideal is p/first.
	Speedup float64
}

// RunStrongScaling measures the randomized+parallel SVD on a fixed global
// Burgers snapshot matrix for each rank count.
func RunStrongScaling(cfg StrongConfig) []StrongPoint {
	cfg.validate()
	bc := burgers.Config{L: 1, Re: 1000, Nx: cfg.Rows, Nt: cfg.Snapshots, TFinal: 2}
	full := bc.Snapshots()

	points := make([]StrongPoint, 0, len(cfg.Ranks))
	for _, p := range cfg.Ranks {
		blocks := make([]*mat.Dense, p)
		base, rem := cfg.Rows/p, cfg.Rows%p
		off := 0
		for r := 0; r < p; r++ {
			rows := base
			if r < rem {
				rows++
			}
			blocks[r] = full.SliceRows(off, off+rows)
			off += rows
		}
		opts := apmos.Options{
			K: cfg.K, R1: cfg.R1, R2: cfg.K,
			LowRank: true,
			RLA:     rla.Options{Oversample: 10, PowerIters: 1, Seed: 7},
		}
		best := math.Inf(1)
		for trial := 0; trial < cfg.Trials; trial++ {
			start := time.Now()
			mpi.MustRun(p, func(c *mpi.Comm) {
				apmos.Decompose(c, blocks[c.Rank()], opts)
			})
			if dt := time.Since(start).Seconds(); dt < best {
				best = dt
			}
		}
		points = append(points, StrongPoint{Ranks: p, Seconds: best})
	}
	if len(points) > 0 {
		base := points[0].Seconds
		for i := range points {
			if points[i].Seconds > 0 {
				points[i].Speedup = base / points[i].Seconds
			}
		}
	}
	return points
}

// FormatStrongSeries renders a strong-scaling table with ideal speedup for
// reference.
func FormatStrongSeries(title string, points []StrongPoint) string {
	s := title + "\n"
	s += fmt.Sprintf("%8s  %12s  %10s  %10s\n", "ranks", "time[s]", "speedup", "ideal")
	if len(points) == 0 {
		return s
	}
	base := points[0].Ranks
	for _, p := range points {
		s += fmt.Sprintf("%8d  %12.4e  %10.3f  %10.3f\n",
			p.Ranks, p.Seconds, p.Speedup, float64(p.Ranks)/float64(base))
	}
	return s
}
