// Package spod implements the spectral proper orthogonal decomposition
// (Towne, Schmidt & Colonius 2018; Schmidt, Mengaldo, Balsamo & Wedi 2019)
// — the frequency-domain sibling of the POD that PyParSVD computes, and
// the method behind the PySPOD package by this paper's second author. The
// paper's §2 motivates the whole library through POD/SPOD analysis of
// weather data; this module provides the spectral variant as the natural
// extension feature.
//
// The implementation is the standard Welch approach: the M×N snapshot
// series is cut into overlapping Hann-windowed blocks of power-of-two
// length, each block is Fourier-transformed in time, and for every
// frequency the SPOD modes are the principal directions of the ensemble of
// block Fourier coefficients. Modes are complex; the eigenproblem of the
// Hermitian cross-spectral Gram matrix is solved through its real
// symmetric embedding so the package reuses the real Jacobi eigensolver.
package spod

import (
	"fmt"
	"math"
	"math/cmplx"

	"goparsvd/internal/fft"
	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

// Options configures an SPOD computation.
type Options struct {
	// NFFT is the block length (snapshots per block); must be a power of
	// two and at most the number of snapshots.
	NFFT int
	// Overlap is the fractional overlap between consecutive blocks in
	// [0, 1); 0.5 is the Welch default.
	Overlap float64
	// DT is the sample interval between snapshots (sets the frequency
	// axis).
	DT float64
	// K is the number of modes retained per frequency. Zero keeps all
	// (one per block).
	K int
}

func (o Options) validated(n int) Options {
	if !fft.IsPowerOfTwo(o.NFFT) {
		panic(fmt.Sprintf("spod: NFFT = %d is not a power of two", o.NFFT))
	}
	if o.NFFT > n {
		panic(fmt.Sprintf("spod: NFFT = %d exceeds %d snapshots", o.NFFT, n))
	}
	if o.Overlap < 0 || o.Overlap >= 1 {
		panic(fmt.Sprintf("spod: overlap %g outside [0, 1)", o.Overlap))
	}
	if o.DT <= 0 {
		panic(fmt.Sprintf("spod: DT = %g <= 0", o.DT))
	}
	if o.K < 0 {
		panic(fmt.Sprintf("spod: K = %d < 0", o.K))
	}
	return o
}

// ComplexModes stores the real and imaginary parts of a set of complex
// modes as two real matrices (M×K each).
type ComplexModes struct {
	Re, Im *mat.Dense
}

// Abs returns the element-wise modulus |Φ| as a real M×K matrix.
func (c ComplexModes) Abs() *mat.Dense {
	r, k := c.Re.Dims()
	out := mat.New(r, k)
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, math.Hypot(c.Re.At(i, j), c.Im.At(i, j)))
		}
	}
	return out
}

// Result is a complete SPOD decomposition.
type Result struct {
	// Frequencies is the one-sided axis (length NFFT/2+1).
	Frequencies []float64
	// Energies[f][j] is the j-th SPOD eigenvalue at frequency bin f,
	// descending in j.
	Energies [][]float64
	// Modes[f] holds the complex SPOD modes at frequency bin f.
	Modes []ComplexModes
	// Blocks is the number of Welch blocks the estimate averaged over.
	Blocks int
}

// Compute runs the SPOD of the M×N snapshot matrix a (rows = grid points,
// columns = equispaced snapshots).
func Compute(a *mat.Dense, opts Options) *Result {
	m, n := a.Dims()
	opts = opts.validated(n)
	nfft := opts.NFFT
	step := int(float64(nfft) * (1 - opts.Overlap))
	if step < 1 {
		step = 1
	}
	nBlocks := 1 + (n-nfft)/step
	if nBlocks < 1 {
		panic("spod: no complete blocks; reduce NFFT")
	}
	k := opts.K
	if k == 0 || k > nBlocks {
		k = nBlocks
	}
	window := fft.HannWindow(nfft)
	// Welch normalization: κ = dt / (Σw²·nBlocks).
	wss := 0.0
	for _, w := range window {
		wss += w * w
	}
	kappa := opts.DT / (wss * float64(nBlocks))

	nFreq := nfft/2 + 1
	// qhat[f] is the M×nBlocks matrix of Fourier coefficients at bin f.
	qhat := make([][]complex128, nFreq)
	for f := range qhat {
		qhat[f] = make([]complex128, m*nBlocks)
	}
	buf := make([]complex128, nfft)
	for b := 0; b < nBlocks; b++ {
		start := b * step
		for i := 0; i < m; i++ {
			row := a.RowView(i)
			for t := 0; t < nfft; t++ {
				buf[t] = complex(window[t]*row[start+t], 0)
			}
			spec := fft.FFT(buf)
			for f := 0; f < nFreq; f++ {
				qhat[f][i*nBlocks+b] = spec[f]
			}
		}
	}

	res := &Result{
		Frequencies: fft.Frequencies(nfft, opts.DT),
		Energies:    make([][]float64, nFreq),
		Modes:       make([]ComplexModes, nFreq),
		Blocks:      nBlocks,
	}
	for f := 0; f < nFreq; f++ {
		energies, modes := spodAtFrequency(qhat[f], m, nBlocks, kappa, k)
		res.Energies[f] = energies
		res.Modes[f] = modes
	}
	return res
}

// spodAtFrequency solves the method-of-snapshots eigenproblem for one
// frequency: C = κ·X^H·X (Hermitian B×B), Λ and Θ from its real symmetric
// embedding, modes Φ = X·Θ·(κ/Λ)^{1/2}.
func spodAtFrequency(x []complex128, m, b int, kappa float64, k int) ([]float64, ComplexModes) {
	// Hermitian Gram C[p][q] = κ·Σ_i conj(X[i,p])·X[i,q].
	c := make([]complex128, b*b)
	for p := 0; p < b; p++ {
		for q := p; q < b; q++ {
			var sum complex128
			for i := 0; i < m; i++ {
				sum += cmplx.Conj(x[i*b+p]) * x[i*b+q]
			}
			sum *= complex(kappa, 0)
			c[p*b+q] = sum
			c[q*b+p] = cmplx.Conj(sum)
		}
	}
	// Real symmetric embedding: [[A, −B], [B, A]] for C = A + iB. Each
	// eigenvalue of C appears twice; eigenvector (u; v) ↔ u + iv.
	emb := mat.New(2*b, 2*b)
	for p := 0; p < b; p++ {
		for q := 0; q < b; q++ {
			re, im := real(c[p*b+q]), imag(c[p*b+q])
			emb.Set(p, q, re)
			emb.Set(p+b, q+b, re)
			emb.Set(p, q+b, -im)
			emb.Set(p+b, q, im)
		}
	}
	eigs, vecs := linalg.EigSym(emb)

	// Take every second eigenpair (they come in duplicated pairs after
	// descending sort) up to k modes.
	energies := make([]float64, k)
	re := mat.New(m, k)
	im := mat.New(m, k)
	for j := 0; j < k; j++ {
		lambda := eigs[2*j]
		if lambda < 0 {
			lambda = 0
		}
		energies[j] = lambda
		if lambda == 0 {
			continue
		}
		// Complex eigenvector θ of C from the embedding column.
		theta := make([]complex128, b)
		for p := 0; p < b; p++ {
			theta[p] = complex(vecs.At(p, 2*j), vecs.At(p+b, 2*j))
		}
		// Φ_j = X·θ·sqrt(κ/λ).
		scale := complex(math.Sqrt(kappa/lambda), 0)
		for i := 0; i < m; i++ {
			var sum complex128
			for p := 0; p < b; p++ {
				sum += x[i*b+p] * theta[p]
			}
			sum *= scale
			re.Set(i, j, real(sum))
			im.Set(i, j, imag(sum))
		}
	}
	return energies, ComplexModes{Re: re, Im: im}
}

// PeakFrequency returns the frequency bin index whose leading SPOD
// eigenvalue is largest — the dominant coherent oscillation of the data.
func (r *Result) PeakFrequency() int {
	best, bestVal := 0, math.Inf(-1)
	for f, e := range r.Energies {
		if len(e) > 0 && e[0] > bestVal {
			best, bestVal = f, e[0]
		}
	}
	return best
}
