package spod

import (
	"math"
	"testing"

	"goparsvd/internal/grid"
	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

// oscillatingField builds q(x,t) = Σ_c amp_c·φ_c(x)·cos(2πf_c·t + phase_c)
// plus optional white noise: the canonical SPOD test signal with known
// coherent structures at known frequencies.
type component struct {
	pattern []float64
	freq    float64
	amp     float64
	phase   float64
}

func oscillatingField(m, n int, dt float64, comps []component, noise float64, seed int64) *mat.Dense {
	rng := testutil.NewRand(seed)
	a := mat.New(m, n)
	for t := 0; t < n; t++ {
		tt := float64(t) * dt
		for i := 0; i < m; i++ {
			v := 0.0
			for _, c := range comps {
				v += c.amp * c.pattern[i] * math.Cos(2*math.Pi*c.freq*tt+c.phase)
			}
			if noise > 0 {
				v += noise * rng.NormFloat64()
			}
			a.Set(i, t, v)
		}
	}
	return a
}

func sinePattern(m, waves int) []float64 {
	p := make([]float64, m)
	for i := range p {
		p[i] = math.Sin(float64(waves) * math.Pi * float64(i) / float64(m-1))
	}
	return p
}

func TestSPODFindsPlantedFrequency(t *testing.T) {
	const (
		m, n = 48, 512
		dt   = 0.1
	)
	// One coherent structure oscillating at exactly bin 8 of a 64-point
	// transform: f = 8/(64·0.1) = 1.25.
	comps := []component{{pattern: sinePattern(m, 1), freq: 1.25, amp: 3}}
	a := oscillatingField(m, n, dt, comps, 0.05, 1)
	res := Compute(a, Options{NFFT: 64, Overlap: 0.5, DT: dt, K: 3})

	peak := res.PeakFrequency()
	if got := res.Frequencies[peak]; math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("peak at f = %g, want 1.25", got)
	}
	// The peak must dominate a quiet bin by orders of magnitude.
	quiet := res.Energies[2][0]
	if res.Energies[peak][0] < 100*quiet {
		t.Fatalf("peak %g not dominant over quiet bin %g", res.Energies[peak][0], quiet)
	}
}

func TestSPODModeMatchesPlantedPattern(t *testing.T) {
	const (
		m, n = 40, 512
		dt   = 0.1
	)
	pattern := sinePattern(m, 2)
	comps := []component{{pattern: pattern, freq: 1.25, amp: 2}}
	a := oscillatingField(m, n, dt, comps, 0.02, 2)
	res := Compute(a, Options{NFFT: 64, Overlap: 0.5, DT: dt, K: 2})
	peak := res.PeakFrequency()

	// The leading SPOD mode at the peak is complex with arbitrary phase;
	// its modulus must match |pattern|.
	modAbs := res.Modes[peak].Abs().Col(0)
	want := make([]float64, m)
	for i := range want {
		want[i] = math.Abs(pattern[i])
	}
	if cos := grid.AbsCosine(modAbs, want); cos < 0.99 {
		t.Fatalf("mode modulus vs pattern cosine %g", cos)
	}
}

func TestSPODSeparatesTwoFrequencies(t *testing.T) {
	const (
		m, n = 40, 768
		dt   = 0.1
	)
	p1 := sinePattern(m, 1)
	p2 := sinePattern(m, 3)
	comps := []component{
		{pattern: p1, freq: 1.25, amp: 3},            // bin 8 of 64
		{pattern: p2, freq: 2.5, amp: 2, phase: 0.7}, // bin 16
	}
	a := oscillatingField(m, n, dt, comps, 0.02, 3)
	res := Compute(a, Options{NFFT: 64, Overlap: 0.5, DT: dt, K: 2})

	bin := func(f float64) int {
		for i, v := range res.Frequencies {
			if math.Abs(v-f) < 1e-9 {
				return i
			}
		}
		t.Fatalf("frequency %g not on axis", f)
		return -1
	}
	b1, b2 := bin(1.25), bin(2.5)
	// Each planted frequency's mode matches its own pattern, not the other.
	m1 := res.Modes[b1].Abs().Col(0)
	m2 := res.Modes[b2].Abs().Col(0)
	abs1 := absSlice(p1)
	abs2 := absSlice(p2)
	if cos := grid.AbsCosine(m1, abs1); cos < 0.98 {
		t.Fatalf("bin %d mode vs pattern 1: cosine %g", b1, cos)
	}
	if cos := grid.AbsCosine(m2, abs2); cos < 0.98 {
		t.Fatalf("bin %d mode vs pattern 2: cosine %g", b2, cos)
	}
	if res.Energies[b1][0] <= res.Energies[b2][0] {
		t.Fatal("higher-amplitude component should carry more energy")
	}
}

func TestSPODEnergiesDescendingNonNegative(t *testing.T) {
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(24, 300, rng)
	res := Compute(a, Options{NFFT: 32, Overlap: 0.5, DT: 1, K: 4})
	for f, e := range res.Energies {
		for j, v := range e {
			if v < 0 {
				t.Fatalf("negative energy at f=%d j=%d: %g", f, j, v)
			}
			if j > 0 && v > e[j-1]+1e-12 {
				t.Fatalf("energies not descending at f=%d: %v", f, e)
			}
		}
	}
}

func TestSPODModesUnitNormInWeightedSense(t *testing.T) {
	// SPOD modes from the method of snapshots are orthonormal per
	// frequency: Φ^H·Φ = I. Check the unit norm of the leading mode.
	rng := testutil.NewRand(5)
	a := testutil.RandomDense(30, 320, rng)
	res := Compute(a, Options{NFFT: 64, Overlap: 0.5, DT: 1, K: 2})
	for f := 0; f < len(res.Frequencies); f += 8 {
		if res.Energies[f][0] == 0 {
			continue
		}
		re := res.Modes[f].Re.Col(0)
		im := res.Modes[f].Im.Col(0)
		norm := 0.0
		for i := range re {
			norm += re[i]*re[i] + im[i]*im[i]
		}
		if math.Abs(norm-1) > 1e-8 {
			t.Fatalf("f=%d: leading mode norm² = %g, want 1", f, norm)
		}
	}
}

func TestSPODBlockCount(t *testing.T) {
	rng := testutil.NewRand(6)
	a := testutil.RandomDense(10, 256, rng)
	res := Compute(a, Options{NFFT: 64, Overlap: 0.5, DT: 1})
	// 256 snapshots, 64-point blocks, 32-step: blocks at 0,32,...,192 → 7.
	if res.Blocks != 7 {
		t.Fatalf("blocks = %d, want 7", res.Blocks)
	}
	if len(res.Frequencies) != 33 {
		t.Fatalf("frequency bins = %d, want 33", len(res.Frequencies))
	}
}

func TestSPODOptionValidation(t *testing.T) {
	rng := testutil.NewRand(7)
	a := testutil.RandomDense(8, 128, rng)
	for name, opts := range map[string]Options{
		"nfft not pow2": {NFFT: 48, Overlap: 0.5, DT: 1},
		"nfft too big":  {NFFT: 256, Overlap: 0.5, DT: 1},
		"overlap":       {NFFT: 32, Overlap: 1.0, DT: 1},
		"dt":            {NFFT: 32, Overlap: 0.5, DT: 0},
		"k":             {NFFT: 32, Overlap: 0.5, DT: 1, K: -1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			Compute(a, opts)
		})
	}
}

func absSlice(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Abs(v)
	}
	return out
}
