package stream

import (
	"testing"

	"goparsvd/internal/testutil"
)

func BenchmarkInitialize(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(4096, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(Options{K: 10, FF: 0.95}).Initialize(a)
	}
}

func BenchmarkIncorporateDeterministic(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(2)
	first := testutil.RandomDense(4096, 64, rng)
	next := testutil.RandomDense(4096, 64, rng)
	s := New(Options{K: 10, FF: 0.95}).Initialize(first)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IncorporateData(next)
	}
}

func BenchmarkIncorporateSteadyStateAllocs(b *testing.B) {
	// Regression gate for the zero-allocation streaming hot path: after a
	// warmup update fills the iteration workspace, steady-state
	// IncorporateData calls must report 0 allocs/op — every temporary,
	// including the modes matrix, is recycled through the workspace.
	b.ReportAllocs()
	rng := testutil.NewRand(4)
	first := testutil.RandomDense(2048, 32, rng)
	next := testutil.RandomDense(2048, 32, rng)
	s := New(Options{K: 10, FF: 0.95}).Initialize(first)
	s.IncorporateData(next) // warm the workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IncorporateData(next)
	}
}

func BenchmarkIncorporateLowRank(b *testing.B) {
	b.ReportAllocs()
	rng := testutil.NewRand(3)
	first := testutil.RandomDense(4096, 64, rng)
	next := testutil.RandomDense(4096, 64, rng)
	s := New(Options{K: 10, FF: 0.95, LowRank: true}).Initialize(first)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IncorporateData(next)
	}
}
