// Package stream implements the serial streaming (online) SVD of Levy &
// Lindenbaum (paper §3.1, Algorithm 1, Listing 1): the truncated left
// singular vectors of a growing snapshot matrix are updated batch by batch,
// with a forget factor ff weighting the contribution of past batches.
//
// The streaming state after ingesting batches A_0 … A_i approximates the
// truncated SVD of [ff^i·A_0 | … | ff·A_{i−1} | A_i]; with ff = 1 and K at
// least the matrix rank it reproduces the one-shot SVD exactly.
package stream

import (
	"fmt"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/rla"
)

// Options configures a streaming SVD.
type Options struct {
	// K is the number of retained modes (truncation rank).
	K int
	// FF is the forget factor in (0, 1]; the paper uses 0.95 in its
	// experiments and 1.0 to reproduce the one-shot SVD.
	FF float64
	// LowRank replaces the small dense SVD in each update with the
	// randomized variant (paper §3.3).
	LowRank bool
	// RLA configures the randomized SVD when LowRank is set.
	RLA rla.Options
}

// Validate reports whether the options describe a usable configuration.
// It is the error-returning twin of validated, for callers (the public
// parsvd facade) that must not panic.
func (o Options) Validate() error {
	if o.K < 1 {
		return fmt.Errorf("stream: K = %d < 1", o.K)
	}
	if o.FF <= 0 || o.FF > 1 {
		return fmt.Errorf("stream: forget factor %g outside (0, 1]", o.FF)
	}
	return o.RLA.Validate()
}

func (o Options) validated() Options {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	if o.RLA.IsZero() {
		o.RLA = rla.DefaultOptions()
	}
	return o
}

// SVD is the streaming decomposition state. Create one with New, seed it
// with Initialize, then feed batches with IncorporateData.
type SVD struct {
	opts        Options
	modes       *mat.Dense // M×k, k = min(K, columns seen)
	singular    []float64
	rows        int
	iterations  int
	snapshots   int
	initialized bool

	// ws recycles every temporary of the update across iterations; once
	// batch shapes are steady the per-batch update allocates nothing.
	ws mat.Workspace
	// pb batches the tall mode-update products into row panels sharing one
	// packed right-hand side; its headers are recycled alongside ws.
	pb mat.PanelBatch
}

// New returns an empty streaming SVD with the given options.
func New(opts Options) *SVD {
	return &SVD{opts: opts.validated()}
}

// Restore rebuilds a streaming SVD from previously captured state (the
// checkpoint/restart path): the current modes, singular values and
// counters. The modes matrix is adopted without copying.
//
// Every structural invariant the streaming update relies on is checked
// here, so a corrupted checkpoint fails loudly at load time rather than
// deep inside the next IncorporateData call.
func Restore(opts Options, modes *mat.Dense, singular []float64, iterations, snapshots int) (*SVD, error) {
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("stream: Restore: %w", err)
	}
	if modes == nil {
		return nil, fmt.Errorf("stream: Restore state inconsistent: nil modes")
	}
	if modes.Rows() < 1 || modes.Cols() < 1 {
		return nil, fmt.Errorf("stream: Restore state inconsistent: empty %dx%d modes",
			modes.Rows(), modes.Cols())
	}
	if modes.Cols() != len(singular) {
		return nil, fmt.Errorf("stream: Restore state inconsistent: %d mode columns, %d singular values",
			modes.Cols(), len(singular))
	}
	// The engine never retains more than K modes, so a state claiming
	// len(singular) > K cannot have been produced by these options.
	if opts.K < len(singular) {
		return nil, fmt.Errorf("stream: Restore state inconsistent: %d singular values exceed K = %d",
			len(singular), opts.K)
	}
	if iterations < 0 || snapshots < modes.Cols() {
		return nil, fmt.Errorf("stream: Restore counters invalid: iterations=%d snapshots=%d (modes %dx%d)",
			iterations, snapshots, modes.Rows(), modes.Cols())
	}
	return &SVD{
		opts:        opts.validated(),
		modes:       modes,
		singular:    append([]float64(nil), singular...),
		rows:        modes.Rows(),
		iterations:  iterations,
		snapshots:   snapshots,
		initialized: true,
	}, nil
}

// Initialized reports whether Initialize has been called.
func (s *SVD) Initialized() bool { return s.initialized }

// Iterations returns the number of IncorporateData calls so far.
func (s *SVD) Iterations() int { return s.iterations }

// SnapshotsSeen returns the total number of ingested snapshot columns.
func (s *SVD) SnapshotsSeen() int { return s.snapshots }

// Modes returns the current truncated left singular vectors (M×k). The
// caller must not mutate the result, and the matrix is only valid until the
// next IncorporateData call — its storage is recycled into the update's
// workspace. Clone it to retain a snapshot across updates.
func (s *SVD) Modes() *mat.Dense {
	s.mustBeInitialized()
	return s.modes
}

// SingularValues returns the current truncated singular values. The caller
// must not mutate the result.
func (s *SVD) SingularValues() []float64 {
	s.mustBeInitialized()
	return s.singular
}

func (s *SVD) mustBeInitialized() {
	if !s.initialized {
		panic("stream: SVD not initialized; call Initialize with the first batch")
	}
}

// Initialize seeds the decomposition with the first batch A_0 (M×B): a QR
// factorization followed by an SVD of the small R factor (Algorithm 1,
// steps I1–I2).
func (s *SVD) Initialize(a *mat.Dense) *SVD {
	if s.initialized {
		panic("stream: Initialize called twice; use IncorporateData for new batches")
	}
	m, b := a.Dims()
	if m == 0 || b == 0 {
		panic("stream: empty initial batch")
	}
	q, r := linalg.QRWith(&s.ws, a)
	ui, d := s.smallSVD(r)
	s.ws.Put(r)
	k := min(s.opts.K, len(d))
	usub := s.ws.GetUninit(ui.Rows(), k)
	ui.SliceColsInto(usub, 0, k)
	s.modes = s.ws.GetUninit(m, k)
	s.pb.MulInto(s.modes, q, usub)
	s.ws.Put(usub)
	s.ws.Put(ui)
	s.ws.Put(q)
	s.singular = append([]float64(nil), d[:k]...)
	s.ws.PutFloats(d)
	s.rows = m
	s.snapshots = b
	s.initialized = true
	return s
}

// IncorporateData ingests a new batch A_i (M×B), updating the truncated
// modes and singular values (Algorithm 1, steps 1–5):
//
//	[ff·U_{i−1}·D_{i−1} | A_i] = U′·D′   (QR)
//	D′ = Ũ·D̃·Ṽᵀ                        (small SVD)
//	U_i = U′·Ũ[:, :K],  D_i = D̃[:K]
func (s *SVD) IncorporateData(a *mat.Dense) *SVD {
	s.mustBeInitialized()
	m, b := a.Dims()
	if m != s.rows {
		panic(fmt.Sprintf("stream: batch has %d rows, want %d", m, s.rows))
	}
	if b == 0 {
		return s
	}
	// Scale the running factorization by the forget factor and append the
	// new snapshots (Listing 1: m_ap = ff·U·diag(D); concat). The forget
	// factor is folded into the diagonal scaling pass, and every temporary
	// below comes from the iteration workspace, so the steady-state update
	// performs no heap allocations.
	k0 := s.modes.Cols()
	scaled := s.ws.GetUninit(m, k0)
	mat.MulDiagScaledInto(scaled, s.opts.FF, s.modes, s.singular)
	concat := s.ws.GetUninit(m, k0+b)
	mat.HStackInto(concat, scaled, a)
	s.ws.Put(scaled)

	udash, ddash := linalg.QRWith(&s.ws, concat)
	s.ws.Put(concat)
	utilde, dtilde := s.smallSVD(ddash)
	s.ws.Put(ddash)
	k := min(s.opts.K, len(dtilde))
	usub := s.ws.GetUninit(utilde.Rows(), k)
	utilde.SliceColsInto(usub, 0, k)
	next := s.ws.GetUninit(m, k)
	s.pb.MulInto(next, udash, usub)
	s.ws.Put(usub)
	s.ws.Put(utilde)
	s.ws.Put(udash)
	s.ws.Put(s.modes) // recycle the previous modes storage
	s.modes = next
	s.singular = append(s.singular[:0], dtilde[:k]...)
	s.ws.PutFloats(dtilde)
	s.iterations++
	s.snapshots += b
	return s
}

// smallSVD factorizes the small (batch-sized) matrix produced by the QR
// step, optionally with the randomized algorithm. Singular values are
// returned in descending order, which subsumes Listing 1's argsort. The
// returned factors are workspace-owned; the caller puts them back.
func (s *SVD) smallSVD(r *mat.Dense) (*mat.Dense, []float64) {
	if s.opts.LowRank {
		t := min(r.Rows(), r.Cols())
		u, d, err := rla.LowRankSVDWith(&s.ws, r, min(s.opts.K, t), s.opts.RLA)
		if err != nil {
			// Options are validated before ingest and r is never empty
			// here, so rla cannot reject the rank; a failure is a broken
			// internal invariant, not a caller mistake.
			panic(fmt.Sprintf("stream: low-rank small SVD: %v", err))
		}
		return u, d
	}
	u, d, v := linalg.SVDWith(&s.ws, r)
	s.ws.Put(v)
	return u, d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
