package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/testutil"
)

func TestInitializeMatchesBatchSVD(t *testing.T) {
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(40, 8, rng)
	s := New(Options{K: 5, FF: 1}).Initialize(a)
	u, sv, _ := linalg.SVD(a)
	if !testutil.CloseSlices(s.SingularValues(), sv[:5], 1e-10) {
		t.Fatalf("singular values %v vs %v", s.SingularValues(), sv[:5])
	}
	if err := testutil.MaxColumnError(u.SliceCols(0, 5), s.Modes()); err > 1e-8 {
		t.Fatalf("mode error %g", err)
	}
}

func TestStreamingEqualsOneShotForFullRankRetention(t *testing.T) {
	// ff = 1 and K ≥ rank: streaming over batches must equal the one-shot
	// SVD of the concatenated matrix (the paper's ff = 1 claim).
	rng := testutil.NewRand(2)
	a, _ := testutil.RandomLowRank(60, 24, 6, 0, rng)
	s := New(Options{K: 8, FF: 1}).Initialize(a.SliceCols(0, 8))
	for off := 8; off < 24; off += 8 {
		s.IncorporateData(a.SliceCols(off, off+8))
	}
	u, sv, _ := linalg.SVD(a)
	if !testutil.CloseSlices(s.SingularValues()[:6], sv[:6], 1e-9) {
		t.Fatalf("streamed %v vs batch %v", s.SingularValues()[:6], sv[:6])
	}
	if err := testutil.MaxColumnError(u.SliceCols(0, 6), s.Modes().SliceCols(0, 6)); err > 1e-6 {
		t.Fatalf("mode error %g", err)
	}
}

func TestStreamingApproximatesLeadingModesUnderTruncation(t *testing.T) {
	// With K smaller than the batch count but a decaying spectrum, the
	// leading streamed modes still track the batch SVD.
	rng := testutil.NewRand(3)
	a, _ := testutil.RandomLowRank(80, 30, 5, 1e-8, rng)
	s := New(Options{K: 6, FF: 1}).Initialize(a.SliceCols(0, 10))
	s.IncorporateData(a.SliceCols(10, 20))
	s.IncorporateData(a.SliceCols(20, 30))
	u, sv, _ := linalg.SVD(a)
	if !testutil.CloseSlices(s.SingularValues()[:5], sv[:5], 1e-6) {
		t.Fatalf("streamed %v vs batch %v", s.SingularValues()[:5], sv[:5])
	}
	if err := testutil.SubspaceError(u.SliceCols(0, 3), s.Modes().SliceCols(0, 3)); err > 1e-6 {
		t.Fatalf("leading subspace error %g", err)
	}
}

func TestForgetFactorDownweightsHistory(t *testing.T) {
	// Feed a signal that lives in direction e1 for the first batches and
	// in e2 afterwards. With ff < 1 the top mode must rotate towards e2;
	// with ff = 1 it stays dominated by the (larger) early energy.
	m := 50
	batch := func(dir int, scale float64) *mat.Dense {
		b := mat.New(m, 4)
		for j := 0; j < 4; j++ {
			b.Set(dir, j, scale)
		}
		return b
	}
	// Energy budget: the initial e1 batch carries singular value
	// sqrt(4·10²) = 20; eight e2 batches carry at most sqrt(8·4·3²) ≈ 17,
	// so with ff = 1 the top mode stays e1, while ff = 0.5 decays the e1
	// history to 20·0.5⁸ ≈ 0.08 and the top mode flips to e2.
	run := func(ff float64) float64 {
		s := New(Options{K: 2, FF: ff}).Initialize(batch(0, 10))
		for i := 0; i < 8; i++ {
			s.IncorporateData(batch(1, 3))
		}
		// |top mode ⋅ e2|: how much the current top mode points at e2.
		return math.Abs(s.Modes().At(1, 0))
	}
	align1 := run(1.0)
	align05 := run(0.5)
	if align05 <= align1 {
		t.Fatalf("ff=0.5 alignment %g should exceed ff=1 alignment %g", align05, align1)
	}
	if align05 < 0.9 {
		t.Fatalf("with heavy forgetting the top mode should be ~e2, got alignment %g", align05)
	}
}

func TestForgetFactorConvergence(t *testing.T) {
	// A1 ablation: as ff → 1 the streamed singular values approach the
	// one-shot values monotonically (for this fixed workload).
	rng := testutil.NewRand(4)
	a, _ := testutil.RandomLowRank(60, 20, 4, 1e-6, rng)
	_, svBatch, _ := linalg.SVD(a)
	prevErr := math.Inf(1)
	for _, ff := range []float64{0.5, 0.8, 0.95, 1.0} {
		s := New(Options{K: 6, FF: ff}).Initialize(a.SliceCols(0, 5))
		for off := 5; off < 20; off += 5 {
			s.IncorporateData(a.SliceCols(off, off+5))
		}
		err := 0.0
		for i := 0; i < 4; i++ {
			err += math.Abs(s.SingularValues()[i] - svBatch[i])
		}
		if err > prevErr+1e-9 {
			t.Fatalf("ff=%g error %g worse than previous %g", ff, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-8 {
		t.Fatalf("ff=1 should match the batch SVD, error %g", prevErr)
	}
}

func TestModesStayOrthonormalAcrossUpdates(t *testing.T) {
	rng := testutil.NewRand(5)
	s := New(Options{K: 4, FF: 0.95}).Initialize(testutil.RandomDense(30, 6, rng))
	for i := 0; i < 10; i++ {
		s.IncorporateData(testutil.RandomDense(30, 6, rng))
		testutil.CheckOrthonormalColumns(t, "modes", s.Modes(), 1e-10)
	}
}

func TestSingularValuesSortedDescending(t *testing.T) {
	rng := testutil.NewRand(6)
	s := New(Options{K: 5, FF: 0.9}).Initialize(testutil.RandomDense(25, 7, rng))
	for i := 0; i < 5; i++ {
		s.IncorporateData(testutil.RandomDense(25, 7, rng))
		sv := s.SingularValues()
		for j := 1; j < len(sv); j++ {
			if sv[j] > sv[j-1]+1e-12 {
				t.Fatalf("iteration %d: singular values not sorted: %v", i, sv)
			}
		}
	}
}

func TestLowRankStreamingTracksDeterministic(t *testing.T) {
	rng := testutil.NewRand(7)
	a, _ := testutil.RandomLowRank(60, 24, 4, 1e-7, rng)
	det := New(Options{K: 5, FF: 1}).Initialize(a.SliceCols(0, 8))
	rnd := New(Options{K: 5, FF: 1, LowRank: true}).Initialize(a.SliceCols(0, 8))
	for off := 8; off < 24; off += 8 {
		det.IncorporateData(a.SliceCols(off, off+8))
		rnd.IncorporateData(a.SliceCols(off, off+8))
	}
	for i := 0; i < 4; i++ {
		d, r := det.SingularValues()[i], rnd.SingularValues()[i]
		if math.Abs(d-r) > 1e-5*(1+d) {
			t.Fatalf("value %d: deterministic %g vs randomized %g", i, d, r)
		}
	}
}

func TestKLargerThanBatchClamps(t *testing.T) {
	rng := testutil.NewRand(8)
	s := New(Options{K: 10, FF: 1}).Initialize(testutil.RandomDense(20, 3, rng))
	if s.Modes().Cols() != 3 || len(s.SingularValues()) != 3 {
		t.Fatalf("K must clamp to available columns: %d", s.Modes().Cols())
	}
	// The retained rank grows as more snapshots arrive.
	s.IncorporateData(testutil.RandomDense(20, 3, rng))
	if s.Modes().Cols() != 6 {
		t.Fatalf("after second batch want 6 columns, got %d", s.Modes().Cols())
	}
}

func TestCountersAndAccessors(t *testing.T) {
	rng := testutil.NewRand(9)
	s := New(Options{K: 2, FF: 0.95})
	if s.Initialized() {
		t.Fatal("fresh SVD reports initialized")
	}
	s.Initialize(testutil.RandomDense(10, 4, rng))
	s.IncorporateData(testutil.RandomDense(10, 3, rng))
	s.IncorporateData(testutil.RandomDense(10, 2, rng))
	if !s.Initialized() || s.Iterations() != 2 || s.SnapshotsSeen() != 9 {
		t.Fatalf("counters: init=%v iters=%d snaps=%d", s.Initialized(), s.Iterations(), s.SnapshotsSeen())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"modes before init", func() { New(Options{K: 2, FF: 1}).Modes() }},
		{"values before init", func() { New(Options{K: 2, FF: 1}).SingularValues() }},
		{"incorporate before init", func() {
			New(Options{K: 2, FF: 1}).IncorporateData(mat.New(3, 2))
		}},
		{"double init", func() {
			s := New(Options{K: 2, FF: 1}).Initialize(mat.Eye(3))
			s.Initialize(mat.Eye(3))
		}},
		{"bad K", func() { New(Options{K: 0, FF: 1}) }},
		{"bad ff", func() { New(Options{K: 2, FF: 0}) }},
		{"ff > 1", func() { New(Options{K: 2, FF: 1.5}) }},
		{"row mismatch", func() {
			s := New(Options{K: 2, FF: 1}).Initialize(mat.Eye(3))
			s.IncorporateData(mat.New(4, 2))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	rng := testutil.NewRand(10)
	s := New(Options{K: 2, FF: 1}).Initialize(testutil.RandomDense(10, 4, rng))
	before := s.Modes().Clone()
	s.IncorporateData(mat.New(10, 0))
	if !mat.EqualApprox(before, s.Modes(), 0) {
		t.Fatal("empty batch changed the state")
	}
}

// Property: for random low-rank data streamed with ff = 1, the streamed
// spectrum matches the one-shot spectrum.
func TestPropertyStreamingMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := 2 + rng.Intn(3)
		batches := 2 + rng.Intn(3)
		bs := rank + 1 + rng.Intn(4)
		n := batches * bs
		m := n + 10 + rng.Intn(30)
		a, _ := testutil.RandomLowRank(m, n, rank, 0, rng)
		s := New(Options{K: rank + 2, FF: 1}).Initialize(a.SliceCols(0, bs))
		for off := bs; off < n; off += bs {
			s.IncorporateData(a.SliceCols(off, off+bs))
		}
		_, sv, _ := linalg.SVD(a)
		return testutil.CloseSlices(s.SingularValues()[:rank], sv[:rank], 1e-7)
	}
	cfg := &quick.Config{MaxCount: 20, Rand: testutil.NewRand(11)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	rng := testutil.NewRand(12)
	orig := New(Options{K: 3, FF: 0.9}).Initialize(testutil.RandomDense(15, 5, rng))
	orig.IncorporateData(testutil.RandomDense(15, 4, rng))

	restored, err := Restore(Options{K: 3, FF: 0.9},
		orig.Modes().Clone(),
		orig.SingularValues(),
		orig.Iterations(), orig.SnapshotsSeen())
	if err != nil {
		t.Fatal(err)
	}

	if !restored.Initialized() {
		t.Fatal("restored state not initialized")
	}
	if restored.Iterations() != 1 || restored.SnapshotsSeen() != 9 {
		t.Fatalf("counters: %d, %d", restored.Iterations(), restored.SnapshotsSeen())
	}
	// Continuation must match.
	next := testutil.RandomDense(15, 4, rng)
	orig.IncorporateData(next)
	restored.IncorporateData(next)
	if !mat.EqualApprox(orig.Modes(), restored.Modes(), 1e-13) {
		t.Fatal("restored stream diverged")
	}
}

func TestRestoreValidation(t *testing.T) {
	m := mat.New(5, 2)
	for name, fn := range map[string]func() (*SVD, error){
		"nil modes": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1}, nil, nil, 0, 0)
		},
		"empty modes": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1}, mat.New(0, 0), nil, 0, 0)
		},
		"size mismatch": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1}, m, []float64{1}, 0, 2)
		},
		"K below singular count": func() (*SVD, error) {
			return Restore(Options{K: 1, FF: 1}, m, []float64{2, 1}, 0, 2)
		},
		"bad options": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1.5}, m, []float64{2, 1}, 0, 2)
		},
		"bad iterations": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1}, m, []float64{1, 2}, -1, 2)
		},
		"bad snapshots": func() (*SVD, error) {
			return Restore(Options{K: 2, FF: 1}, m, []float64{1, 2}, 0, 1)
		},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := fn(); err == nil {
				t.Fatalf("%s did not error", name)
			}
		})
	}
}
