// Package testutil provides shared helpers for the goparsvd test suites:
// deterministic random matrix factories, orthonormality checks, and
// sign-invariant comparison of singular-vector sets (singular vectors are
// only defined up to a per-column sign, so direct element comparison between
// two SVD implementations is meaningless without alignment).
package testutil

import (
	"math"
	"math/rand"
	"testing"

	"goparsvd/internal/mat"
)

// NewRand returns a deterministic RNG for reproducible tests.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// RandomDense returns an r×c matrix of standard normal entries.
func RandomDense(r, c int, rng *rand.Rand) *mat.Dense {
	m := mat.New(r, c)
	data := m.RawData()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

// RandomOrthonormal returns an n×k matrix (k ≤ n) with orthonormal columns,
// built by (twice-iterated) modified Gram–Schmidt on a Gaussian matrix. It
// deliberately does not use package linalg, so it can serve as an
// independent oracle in linalg's own tests.
func RandomOrthonormal(n, k int, rng *rand.Rand) *mat.Dense {
	if k > n {
		panic("testutil: RandomOrthonormal needs k <= n")
	}
	q := RandomDense(n, k, rng)
	for pass := 0; pass < 2; pass++ { // re-orthogonalize for stability
		for j := 0; j < k; j++ {
			col := q.Col(j)
			for p := 0; p < j; p++ {
				prev := q.Col(p)
				mat.Axpy(-mat.Dot(prev, col), prev, col)
			}
			norm := mat.Nrm2(col)
			if norm < 1e-300 {
				// Degenerate draw: replace with a fresh random direction.
				for i := range col {
					col[i] = rng.NormFloat64()
				}
				norm = mat.Nrm2(col)
			}
			for i := range col {
				col[i] /= norm
			}
			q.SetCol(j, col)
		}
	}
	return q
}

// RandomLowRank returns an m×n matrix of the given rank with singular values
// decaying geometrically from 1.0, plus iid Gaussian noise of the given
// standard deviation. It also returns the exact singular values of the
// noise-free part.
func RandomLowRank(m, n, rank int, noise float64, rng *rand.Rand) (*mat.Dense, []float64) {
	u := RandomOrthonormal(m, rank, rng)
	v := RandomOrthonormal(n, rank, rng)
	s := make([]float64, rank)
	for i := range s {
		s[i] = math.Pow(0.5, float64(i))
	}
	a := mat.MulTransB(mat.MulDiag(u, s), v)
	if noise > 0 {
		data := a.RawData()
		for i := range data {
			data[i] += noise * rng.NormFloat64()
		}
	}
	return a, s
}

// RandomSPD returns a random symmetric positive semi-definite n×n matrix
// with the given eigenvalues.
func RandomSPD(n int, eigs []float64, rng *rand.Rand) *mat.Dense {
	v := RandomOrthonormal(n, n, rng)
	return mat.MulTransB(mat.MulDiag(v, eigs), v)
}

// CheckOrthonormalColumns fails the test if the columns of m are not
// orthonormal within tol (‖MᵀM − I‖_max ≤ tol).
func CheckOrthonormalColumns(t *testing.T, name string, m *mat.Dense, tol float64) {
	t.Helper()
	gram := mat.MulTransA(m, m)
	n := gram.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if d := math.Abs(gram.At(i, j) - want); d > tol {
				t.Fatalf("%s: columns not orthonormal: |GᵀG-I|[%d,%d] = %.3e > %.3e",
					name, i, j, d, tol)
			}
		}
	}
}

// CheckUpperTriangular fails the test if m has an element below the main
// diagonal larger than tol in magnitude.
func CheckUpperTriangular(t *testing.T, name string, m *mat.Dense, tol float64) {
	t.Helper()
	r, c := m.Dims()
	for i := 1; i < r; i++ {
		for j := 0; j < i && j < c; j++ {
			if math.Abs(m.At(i, j)) > tol {
				t.Fatalf("%s: not upper triangular at (%d,%d): %.3e", name, i, j, m.At(i, j))
			}
		}
	}
}

// AlignColumnSigns returns a copy of b with each column negated if that
// makes it better aligned (larger inner product) with the corresponding
// column of a. Both matrices must have identical shapes.
func AlignColumnSigns(a, b *mat.Dense) *mat.Dense {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		panic("testutil: AlignColumnSigns shape mismatch")
	}
	out := b.Clone()
	for j := 0; j < ac; j++ {
		dot := 0.0
		for i := 0; i < ar; i++ {
			dot += a.At(i, j) * b.At(i, j)
		}
		if dot < 0 {
			for i := 0; i < ar; i++ {
				out.Set(i, j, -out.At(i, j))
			}
		}
	}
	return out
}

// MaxColumnError returns max_j ‖a_j − sign-aligned b_j‖₂: the largest
// per-column 2-norm discrepancy after sign alignment.
func MaxColumnError(a, b *mat.Dense) float64 {
	ba := AlignColumnSigns(a, b)
	_, c := a.Dims()
	worst := 0.0
	for j := 0; j < c; j++ {
		diff := 0.0
		for i := 0; i < a.Rows(); i++ {
			d := a.At(i, j) - ba.At(i, j)
			diff += d * d
		}
		if e := math.Sqrt(diff); e > worst {
			worst = e
		}
	}
	return worst
}

// SubspaceError measures how far the column spaces of a and b are apart:
// ‖A·Aᵀ − B·Bᵀ‖_F / sqrt(2k), which is 0 for identical subspaces and 1 for
// orthogonal ones. Unlike MaxColumnError it is invariant to rotations within
// the subspace, which matters when singular values are (nearly) degenerate.
func SubspaceError(a, b *mat.Dense) float64 {
	_, k := a.Dims()
	pa := mat.MulTransB(a, a)
	pb := mat.MulTransB(b, b)
	return mat.Sub(pa, pb).FroNorm() / math.Sqrt(2*float64(k))
}

// CheckSVD verifies the three defining SVD properties of the factorization
// (u, s, v) of a: orthonormal U and V columns, descending non-negative s,
// and reconstruction U·diag(s)·Vᵀ = a within tol (relative to ‖a‖_F).
func CheckSVD(t *testing.T, name string, a, u *mat.Dense, s []float64, v *mat.Dense, tol float64) {
	t.Helper()
	CheckOrthonormalColumns(t, name+"/U", u, tol)
	CheckOrthonormalColumns(t, name+"/V", v, tol)
	for i, sv := range s {
		if sv < 0 {
			t.Fatalf("%s: negative singular value s[%d] = %g", name, i, sv)
		}
		if i > 0 && s[i] > s[i-1]+tol {
			t.Fatalf("%s: singular values not descending: s[%d]=%g > s[%d]=%g",
				name, i, s[i], i-1, s[i-1])
		}
	}
	recon := mat.MulTransB(mat.MulDiag(u, s), v)
	norm := a.FroNorm()
	if norm == 0 {
		norm = 1
	}
	if rel := mat.Sub(a, recon).FroNorm() / norm; rel > tol {
		t.Fatalf("%s: reconstruction error %.3e > %.3e", name, rel, tol)
	}
}

// Close reports whether a and b agree within tol.
func Close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// CloseSlices reports whether float slices agree element-wise within tol.
func CloseSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
