package testutil

import (
	"math"
	"testing"

	"goparsvd/internal/mat"
)

func TestRandomDenseDeterministic(t *testing.T) {
	a := RandomDense(5, 4, NewRand(1))
	b := RandomDense(5, 4, NewRand(1))
	if !mat.EqualApprox(a, b, 0) {
		t.Fatal("same seed must give identical matrices")
	}
	c := RandomDense(5, 4, NewRand(2))
	if mat.EqualApprox(a, c, 1e-12) {
		t.Fatal("different seeds should differ")
	}
}

func TestRandomOrthonormalIsOrthonormal(t *testing.T) {
	rng := NewRand(3)
	q := RandomOrthonormal(20, 6, rng)
	gram := mat.MulTransA(q, q)
	if !mat.EqualApprox(gram, mat.Eye(6), 1e-12) {
		t.Fatalf("QᵀQ deviates from I by %g", mat.Sub(gram, mat.Eye(6)).MaxAbs())
	}
}

func TestRandomOrthonormalRejectsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	RandomOrthonormal(3, 5, NewRand(4))
}

func TestRandomLowRankHasRequestedRankAndSpectrum(t *testing.T) {
	rng := NewRand(5)
	a, s := RandomLowRank(30, 12, 4, 0, rng)
	if len(s) != 4 || s[0] != 1 {
		t.Fatalf("planted spectrum %v", s)
	}
	// Numerical rank via Gram trace structure: the matrix has at most
	// rank 4, so any 5 columns are linearly dependent. Cheap proxy: the
	// Frobenius norm matches the planted spectrum.
	want := 0.0
	for _, v := range s {
		want += v * v
	}
	if math.Abs(a.FroNorm()*a.FroNorm()-want) > 1e-10 {
		t.Fatalf("energy %g, want %g", a.FroNorm()*a.FroNorm(), want)
	}
}

func TestRandomSPDIsSymmetric(t *testing.T) {
	rng := NewRand(6)
	a := RandomSPD(6, []float64{6, 5, 4, 3, 2, 1}, rng)
	if !mat.EqualApprox(a, a.T(), 1e-12) {
		t.Fatal("RandomSPD not symmetric")
	}
}

func TestAlignColumnSignsFlips(t *testing.T) {
	a := mat.NewFromRows([][]float64{{1, 1}, {0, 1}})
	b := mat.NewFromRows([][]float64{{-1, 1}, {0, 1}})
	out := AlignColumnSigns(a, b)
	if out.At(0, 0) != 1 || out.At(0, 1) != 1 {
		t.Fatalf("alignment wrong: %v", out)
	}
}

func TestMaxColumnErrorSignInvariant(t *testing.T) {
	a := mat.NewFromRows([][]float64{{0.6}, {0.8}})
	b := mat.Scale(-1, a)
	if err := MaxColumnError(a, b); err > 1e-15 {
		t.Fatalf("sign flip should not register: %g", err)
	}
	c := mat.NewFromRows([][]float64{{0.8}, {0.6}})
	if err := MaxColumnError(a, c); err < 0.1 {
		t.Fatalf("real difference should register: %g", err)
	}
}

func TestSubspaceErrorRotationInvariant(t *testing.T) {
	// Rotating within the subspace must not register.
	rng := NewRand(7)
	q := RandomOrthonormal(12, 2, rng)
	theta := 0.7
	rot := mat.NewFromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	qRot := mat.Mul(q, rot)
	if err := SubspaceError(q, qRot); err > 1e-12 {
		t.Fatalf("in-subspace rotation registered: %g", err)
	}
	// An orthogonal subspace registers maximally (≈1).
	q2 := RandomOrthonormal(12, 2, rng)
	if err := SubspaceError(q, q2); err < 0.1 {
		t.Fatalf("distinct random subspaces too close: %g", err)
	}
}

func TestCloseSlices(t *testing.T) {
	if !CloseSlices([]float64{1, 2}, []float64{1, 2.0000000001}, 1e-9) {
		t.Fatal("near slices reported unequal")
	}
	if CloseSlices([]float64{1}, []float64{1, 2}, 1) {
		t.Fatal("length mismatch reported equal")
	}
	if CloseSlices([]float64{1}, []float64{2}, 0.5) {
		t.Fatal("distant values reported equal")
	}
	if !Close(1.0, 1.0+1e-12, 1e-9) {
		t.Fatal("Close failed")
	}
}
