// Package tsqr implements distributed QR factorizations of tall-and-skinny
// matrices whose rows are partitioned across MPI ranks.
//
// Two variants are provided:
//
//   - GatherQR — the paper's Listing 4: local QR on each rank, gather the
//     stacked R factors at rank 0, a second QR there, and scatter of the
//     Q-correction blocks. Simple, one communication round, but the root
//     does O(P·n²) work and receives O(P·n²) data.
//
//   - TreeQR — the binary-reduction TSQR of Benson, Gleich & Demmel (the
//     paper's reference [32]): R factors combine pairwise up a log₂(P)-deep
//     tree, and n×n basis transforms flow back down. The root's work and
//     incast drop to O(n²·log P).
//
// Both return the same factorization (up to floating-point roundoff)
// because both normalize signs so R has a non-negative diagonal — this is
// the principled version of the paper's `qglobal = -qglobal` consistency
// trick.
//
// Both algorithms speak only to *mpi.Comm, so they are transport-agnostic:
// the same gather/correction exchanges run over the in-process channel
// fabric and over the multi-process TCP mesh (internal/mpi/tcptransport),
// and tcptransport's conformance tests pin GatherQR to bit-identical
// factors across the two.
package tsqr

import (
	"fmt"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
)

// Point-to-point tags used by the two algorithms. GatherQR follows the
// paper's Listing 4 convention of destination-dependent tags
// (tagQBlock+rank), so each algorithm gets its own 2¹⁶-wide block: the old
// ten-apart constants collided once the world exceeded ten ranks — exactly
// the regime the multi-process TCP transport opens up. Both fabrics carry
// tags as full integers (the wire format uses an i64 field), so widening
// costs nothing.
const (
	tagQBlock = 1 << 16
	tagTreeR  = 2 << 16
	tagTreeT  = 2<<16 + 1
)

// GatherQR computes the thin QR factorization of the row-distributed matrix
// A = [A_0; A_1; …; A_{P−1}], where a is this rank's block (m_i×n). It
// returns this rank's block of Q (m_i×n) and the global R factor (n×n),
// which is valid on rank 0 only (pass it through c.BcastMatrix if every
// rank needs it). The method is Listing 4 of the paper: local QR, gather of
// the R factors, a second QR at the root, and distribution of the
// Q-correction blocks.
func GatherQR(c *mpi.Comm, a *mat.Dense) (qlocal, r *mat.Dense) {
	return GatherQRWith(nil, c, a)
}

// GatherQRWith is GatherQR with the local QR factors, the stacked-R
// factorization and the Q-correction products drawn from ws, so each rank
// of a streaming update reuses its buffers across batches. Matrices that
// cross rank boundaries are still freshly allocated by the communicator.
func GatherQRWith(ws *mat.Workspace, c *mpi.Comm, a *mat.Dense) (qlocal, r *mat.Dense) {
	n := a.Cols()
	q, rl := linalg.QRWith(ws, a) // local QR; rl is min(m_i,n)×n

	if c.Rank() != 0 {
		c.SendMatrix(0, tagQBlock, rl)
		ws.Put(rl)
		qg := c.RecvMatrix(0, tagQBlock+c.Rank())
		qlocal = ws.GetUninit(q.Rows(), qg.Cols())
		mat.MulInto(qlocal, q, qg)
		ws.Put(q)
		ws.Put(qg)
		return qlocal, nil
	}

	// Rank 0: gather the R factors (its own plus one per peer, in rank
	// order) and stack them vertically.
	blocks := make([]*mat.Dense, c.Size())
	blocks[0] = rl
	for src := 1; src < c.Size(); src++ {
		blocks[src] = c.RecvMatrix(src, tagQBlock)
	}
	rGlobal := mat.VStack(blocks...)

	qGlobal, rFinal := linalg.QRWith(ws, rGlobal)
	linalg.NormalizeQRSigns(qGlobal, rFinal)

	// Slice qGlobal back into per-rank correction blocks, matching each
	// rank's local R row count, and send them out.
	off := blocks[0].Rows()
	for dst := 1; dst < c.Size(); dst++ {
		rows := blocks[dst].Rows()
		c.SendMatrix(dst, tagQBlock+dst, qGlobal.SliceRows(off, off+rows))
		off += rows
	}
	qtop := qGlobal.SliceRows(0, blocks[0].Rows())
	qlocal = ws.GetUninit(q.Rows(), qtop.Cols())
	mat.MulInto(qlocal, q, qtop)
	ws.Put(q)
	ws.Put(rl)
	ws.Put(qGlobal)
	if rFinal.Rows() != n || rFinal.Cols() != n {
		// Happens only when the global row count is below n; the caller's
		// matrix was not tall-and-skinny.
		panic(fmt.Sprintf("tsqr: global matrix has fewer rows than columns (R is %dx%d)",
			rFinal.Rows(), rFinal.Cols()))
	}
	return qlocal, rFinal
}

// TreeQR computes the same distributed thin QR as GatherQR using a binary
// reduction tree. Every rank's local block must have at least n rows (the
// standard TSQR leaf condition). The returned R is valid on rank 0 only.
func TreeQR(c *mpi.Comm, a *mat.Dense) (qlocal, r *mat.Dense) {
	m, n := a.Dims()
	if m < n {
		panic(fmt.Sprintf("tsqr: TreeQR needs local rows >= cols, got %dx%d", m, n))
	}
	rank, size := c.Rank(), c.Size()

	qLeaf, rCur := linalg.QR(a) // m×n and n×n
	linalg.NormalizeQRSigns(qLeaf, rCur)

	// Upsweep: at stride s, ranks that are multiples of 2s absorb the R of
	// rank+s (when it exists). Each combine stores its 2n×n Q factor for
	// the downsweep.
	type combine struct {
		qc     *mat.Dense // (n+n)×n combine factor
		child  int        // the partner whose R was absorbed
		hasTop bool
	}
	var combines []combine
	active := true
	for s := 1; s < size; s *= 2 {
		if !active {
			break
		}
		if rank%(2*s) == 0 {
			partner := rank + s
			if partner < size {
				rp := c.RecvMatrix(partner, tagTreeR)
				stack := mat.VStack(rCur, rp)
				qc, rNew := linalg.QR(stack)
				linalg.NormalizeQRSigns(qc, rNew)
				rCur = rNew
				combines = append(combines, combine{qc: qc, child: partner, hasTop: true})
			}
		} else {
			parent := rank - s
			c.SendMatrix(parent, tagTreeR, rCur)
			active = false
		}
	}

	// Downsweep: the root starts with the identity transform; each combine
	// node splits its stored Q factor, keeps the top half for its own
	// subtree and ships the bottom half to the absorbed child.
	var t *mat.Dense
	if rank == 0 {
		t = mat.Eye(n)
	} else {
		// Receive the transform from whichever parent absorbed us.
		parent := parentOf(rank, size)
		t = c.RecvMatrix(parent, tagTreeT)
	}
	for i := len(combines) - 1; i >= 0; i-- {
		cb := combines[i]
		top := cb.qc.SliceRows(0, n)
		bottom := cb.qc.SliceRows(n, 2*n)
		c.SendMatrix(cb.child, tagTreeT, mat.Mul(bottom, t))
		t = mat.Mul(top, t)
	}
	qlocal = mat.Mul(qLeaf, t)
	if rank == 0 {
		return qlocal, rCur
	}
	return qlocal, nil
}

// parentOf returns the rank that absorbs the given rank's R factor during
// the upsweep of the binary reduction tree.
func parentOf(rank, size int) int {
	for s := 1; s < size; s *= 2 {
		if rank%(2*s) != 0 {
			return rank - s
		}
	}
	panic(fmt.Sprintf("tsqr: rank %d has no parent in a tree of size %d", rank, size))
}

// SerialQR is the reference factorization the distributed variants must
// reproduce: a plain thin QR with the same non-negative-diagonal sign
// convention.
func SerialQR(a *mat.Dense) (q, r *mat.Dense) {
	q, r = linalg.QR(a)
	linalg.NormalizeQRSigns(q, r)
	return q, r
}
