package tsqr

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"goparsvd/internal/mat"
	"goparsvd/internal/mpi"
	"goparsvd/internal/testutil"
)

// splitRows partitions a into p contiguous row blocks as evenly as possible.
func splitRows(a *mat.Dense, p int) []*mat.Dense {
	m := a.Rows()
	blocks := make([]*mat.Dense, p)
	base, rem := m/p, m%p
	off := 0
	for r := 0; r < p; r++ {
		rows := base
		if r < rem {
			rows++
		}
		blocks[r] = a.SliceRows(off, off+rows)
		off += rows
	}
	return blocks
}

// runDistributedQR executes a distributed QR across p ranks and reassembles
// the global Q from the per-rank blocks. Returns the stacked Q and the R
// broadcast from rank 0.
func runDistributedQR(t *testing.T, a *mat.Dense, p int,
	method func(c *mpi.Comm, a *mat.Dense) (*mat.Dense, *mat.Dense)) (q, r *mat.Dense) {
	t.Helper()
	blocks := splitRows(a, p)
	qBlocks := make([]*mat.Dense, p)
	var rOut *mat.Dense
	var mu sync.Mutex
	mpi.MustRun(p, func(c *mpi.Comm) {
		ql, rf := method(c, blocks[c.Rank()])
		rb := c.BcastMatrix(0, rf)
		mu.Lock()
		qBlocks[c.Rank()] = ql
		if c.Rank() == 0 {
			rOut = rb
		}
		mu.Unlock()
	})
	return mat.VStack(qBlocks...), rOut
}

func checkAgainstSerial(t *testing.T, name string, a, q, r *mat.Dense, tol float64) {
	t.Helper()
	testutil.CheckOrthonormalColumns(t, name+"/Q", q, tol)
	testutil.CheckUpperTriangular(t, name+"/R", r, tol)
	if !mat.EqualApprox(mat.Mul(q, r), a, tol) {
		t.Fatalf("%s: Q·R != A", name)
	}
	qs, rs := SerialQR(a)
	// With the shared sign convention the distributed factors must match
	// the serial ones directly (not just up to sign).
	if !mat.EqualApprox(r, rs, tol) {
		t.Fatalf("%s: distributed R differs from serial R by %g",
			name, mat.Sub(r, rs).MaxAbs())
	}
	if !mat.EqualApprox(q, qs, tol) {
		t.Fatalf("%s: distributed Q differs from serial Q by %g",
			name, mat.Sub(q, qs).MaxAbs())
	}
}

func TestGatherQRMatchesSerial(t *testing.T) {
	rng := testutil.NewRand(1)
	a := testutil.RandomDense(64, 6, rng)
	for _, p := range []int{1, 2, 4} {
		q, r := runDistributedQR(t, a, p, GatherQR)
		checkAgainstSerial(t, "gather", a, q, r, 1e-11)
	}
}

func TestGatherQRUnevenBlocks(t *testing.T) {
	rng := testutil.NewRand(2)
	a := testutil.RandomDense(61, 5, rng) // 61 rows across 4 ranks: 16,15,15,15
	q, r := runDistributedQR(t, a, 4, GatherQR)
	checkAgainstSerial(t, "gather-uneven", a, q, r, 1e-11)
}

func TestGatherQRShortBlocks(t *testing.T) {
	// Blocks with fewer rows than columns (m_i < n) exercise the
	// variable-height R stacking path.
	rng := testutil.NewRand(3)
	a := testutil.RandomDense(14, 6, rng) // 4 ranks → blocks of 4,4,3,3 rows < 6 cols
	q, r := runDistributedQR(t, a, 4, GatherQR)
	checkAgainstSerial(t, "gather-short", a, q, r, 1e-11)
}

func TestTreeQRMatchesSerial(t *testing.T) {
	rng := testutil.NewRand(4)
	a := testutil.RandomDense(64, 6, rng)
	for _, p := range []int{1, 2, 4, 8} {
		q, r := runDistributedQR(t, a, p, TreeQR)
		checkAgainstSerial(t, "tree", a, q, r, 1e-11)
	}
}

func TestTreeQRNonPowerOfTwoRanks(t *testing.T) {
	rng := testutil.NewRand(5)
	a := testutil.RandomDense(60, 4, rng)
	for _, p := range []int{3, 5, 6, 7} {
		q, r := runDistributedQR(t, a, p, TreeQR)
		checkAgainstSerial(t, "tree-np2", a, q, r, 1e-11)
	}
}

func TestTreeQRRejectsShortBlocks(t *testing.T) {
	blocks := []*mat.Dense{mat.New(2, 5), mat.New(10, 5)}
	_, err := mpi.Run(2, func(c *mpi.Comm) {
		TreeQR(c, blocks[c.Rank()])
	})
	if err == nil {
		t.Fatal("TreeQR must reject blocks with fewer rows than columns")
	}
}

func TestGatherAndTreeAgree(t *testing.T) {
	rng := testutil.NewRand(6)
	a := testutil.RandomDense(48, 5, rng)
	qg, rg := runDistributedQR(t, a, 4, GatherQR)
	qt, rt := runDistributedQR(t, a, 4, TreeQR)
	if !mat.EqualApprox(rg, rt, 1e-11) {
		t.Fatal("gather and tree R factors disagree")
	}
	if !mat.EqualApprox(qg, qt, 1e-11) {
		t.Fatal("gather and tree Q factors disagree")
	}
}

func TestSerialQRSignConvention(t *testing.T) {
	rng := testutil.NewRand(7)
	a := testutil.RandomDense(12, 4, rng)
	_, r := SerialQR(a)
	for k := 0; k < 4; k++ {
		if r.At(k, k) < 0 {
			t.Fatalf("R[%d,%d] = %g < 0 after sign normalization", k, k, r.At(k, k))
		}
	}
}

func TestTreeQRRootIncastScalesBetter(t *testing.T) {
	// The defining property of tree TSQR: the root receives O(n²·log P)
	// bytes instead of O(n²·P). Total traffic is the same for both
	// variants; the incast at rank 0 is the bottleneck that differs.
	rng := testutil.NewRand(8)
	a := testutil.RandomDense(256, 8, rng)
	blocks := splitRows(a, 8)
	rootRecv := func(method func(c *mpi.Comm, a *mat.Dense) (*mat.Dense, *mat.Dense)) int64 {
		stats := mpi.MustRun(8, func(c *mpi.Comm) {
			method(c, blocks[c.Rank()])
		})
		return stats.RecvBytes[0]
	}
	gather := rootRecv(GatherQR) // 7 R factors: 7·n² doubles
	tree := rootRecv(TreeQR)     // log₂(8) = 3 R factors
	if tree >= gather {
		t.Fatalf("root received %d bytes with tree, %d with gather; expected tree < gather",
			tree, gather)
	}
	wantGather := int64(7 * 8 * 8 * 8) // 7 messages × 64 doubles × 8 bytes
	if gather != wantGather {
		t.Fatalf("gather root incast = %d bytes, want %d", gather, wantGather)
	}
	wantTree := int64(3 * 8 * 8 * 8)
	if tree != wantTree {
		t.Fatalf("tree root incast = %d bytes, want %d", tree, wantTree)
	}
}

// Property: both variants reproduce the serial factorization for random
// shapes and rank counts.
func TestPropertyDistributedQRMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(6)
		n := 1 + rng.Intn(6)
		m := p*n + rng.Intn(40) // ensure every block can have >= n rows
		a := testutil.RandomDense(m, n, rng)
		blocks := splitRows(a, p)
		qBlocks := make([]*mat.Dense, p)
		var rOut *mat.Dense
		var mu sync.Mutex
		mpi.MustRun(p, func(c *mpi.Comm) {
			ql, rf := TreeQR(c, blocks[c.Rank()])
			mu.Lock()
			qBlocks[c.Rank()] = ql
			if c.Rank() == 0 {
				rOut = rf
			}
			mu.Unlock()
		})
		q := mat.VStack(qBlocks...)
		qs, rs := SerialQR(a)
		return mat.EqualApprox(q, qs, 1e-9) && mat.EqualApprox(rOut, rs, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 20, Rand: testutil.NewRand(9)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
