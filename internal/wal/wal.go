// Package wal implements the segmented write-ahead log beneath the
// serving layer's durable ingest: an append-only sequence of CRC32C-framed,
// length-prefixed records spread across numbered segment files, replayable
// in order after a crash and truncatable from the front once a checkpoint
// has made a prefix redundant.
//
// On-disk layout. A log is a directory of segment files named by the first
// sequence number they hold:
//
//	<dir>/00000000000000000001.seg
//	<dir>/00000000000000000042.seg        (after a rotation at seq 41)
//
// Each record is one frame:
//
//	frame := length:u32le  crc:u32le  body
//	body  := seq:u64le  payload
//
// where length counts the body bytes and crc is the CRC32C (Castagnoli)
// of the body. Sequence numbers are strictly contiguous across the whole
// log; a gap is corruption.
//
// Failure model. A crashed append leaves a prefix of a frame at the tail
// of the newest segment: Open detects it (partial header, or fewer body
// bytes than the header declares) and truncates the file back to the last
// complete frame — a torn tail never fails recovery, it only sheds the
// un-acked record it belongs to. A complete frame whose CRC does not match
// was not torn, it was corrupted after the fact (bit rot, a lying disk):
// that is ErrCorrupt, and the caller decides whether to quarantine. The
// same goes for frames with impossible lengths or non-contiguous sequence
// numbers anywhere before the tail.
//
// Durability is governed by the SyncPolicy: SyncAlways fsyncs every
// append before it returns (an acked record survives kill -9 of the
// process and power loss short of disk lies), SyncInterval runs a
// background flusher so at most an interval's worth of acked records is
// at risk, SyncNever leaves flushing to the OS page cache.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCorrupt reports damage that truncation cannot repair: a bad CRC on a
// complete frame, an impossible frame length, a sequence gap, or a torn
// frame in any segment but the newest. Replaying past it could silently
// diverge from the acked history, so Open refuses the whole log.
var ErrCorrupt = errors.New("wal: log is corrupt")

// SyncPolicy says when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the segment before Append returns. Every record
	// the caller has seen acknowledged survives a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Interval;
	// records appended since the last flush are lost on a crash.
	SyncInterval
	// SyncNever never fsyncs; the OS decides. Cheapest, weakest.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and
// "never" onto the policy constants.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf(`wal: unknown sync policy %q (want "always", "interval" or "never")`, s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a Log. The zero value is SyncAlways with the default
// segment cap.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the flush cadence under SyncInterval (default 100ms).
	Interval time.Duration
	// MaxSegmentBytes seals the active segment once it grows past this
	// size, so one file never becomes unboundedly large between
	// checkpoints (default 64 MiB). Sealed segments are only deleted by
	// Rotate.
	MaxSegmentBytes int64
	// Logf receives operational log lines (torn-tail truncations).
	// Default: silent.
	Logf func(format string, args ...any)
}

// Counters is a snapshot of a Log's monotone activity counters.
type Counters struct {
	// Appends counts records appended in this process.
	Appends uint64
	// Fsyncs counts fsync calls issued (per policy).
	Fsyncs uint64
	// Replayed counts records handed to Replay callbacks.
	Replayed uint64
	// TruncatedBytes counts bytes removed from the log: rotated-out
	// segments plus torn tails shed at Open.
	TruncatedBytes uint64
}

const (
	frameHeaderLen = 8       // length:u32 + crc:u32
	minBodyLen     = 8       // a body is at least the seq
	maxBodyLen     = 1 << 30 // larger is treated as corruption
	segSuffix      = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment is the in-memory bookkeeping of one on-disk segment file.
type segment struct {
	path    string
	first   uint64 // first seq the file holds (its name)
	last    uint64 // last seq present, 0 when empty
	bytes   int64
	records int64
}

// Log is an open write-ahead log. Append/Rotate/Sync/Close are safe for
// concurrent use; Replay must complete before the first Append (the usual
// recover-then-serve sequence).
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	segments []segment // sorted by first seq; the last one is active
	active   *os.File  // nil until the first append needs it
	lastSeq  uint64
	unsynced bool
	closed   bool

	appends   atomic.Uint64
	fsyncs    atomic.Uint64
	replayed  atomic.Uint64
	truncated atomic.Uint64
	depthRec  atomic.Int64
	depthByte atomic.Int64

	flushQuit chan struct{}
	flushDone chan struct{}
}

// Open creates the directory if needed, scans every segment — validating
// frames, truncating a torn tail on the newest one, refusing mid-log
// corruption with ErrCorrupt — and returns a Log positioned to append
// after the highest surviving sequence number.
func Open(dir string, opt Options) (*Log, error) {
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	if opt.MaxSegmentBytes <= 0 {
		opt.MaxSegmentBytes = 64 << 20
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if opt.Sync == SyncInterval {
		l.flushQuit = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// scan walks the segments in order, building the bookkeeping and
// enforcing the failure model: torn frames are legal only at the very end
// of the newest segment (truncated there), everything else is ErrCorrupt.
func (l *Log) scan() error {
	paths, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	var prevSeq uint64
	for i, path := range paths {
		last := i == len(paths)-1
		seg, tornAt, err := scanSegment(path, prevSeq)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
		if tornAt >= 0 {
			if !last {
				return fmt.Errorf("%w: %s: torn frame before the newest segment", ErrCorrupt, filepath.Base(path))
			}
			var shed int64
			if info, err := os.Stat(path); err == nil {
				shed = info.Size() - tornAt
			}
			if err := os.Truncate(path, tornAt); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			seg.bytes = tornAt
			l.truncated.Add(uint64(shed))
			l.opt.Logf("wal: %s: truncated torn tail (%d bytes) after seq %d", filepath.Base(path), shed, seg.last)
		}
		if seg.records > 0 {
			prevSeq = seg.last
		}
		l.segments = append(l.segments, seg)
		l.depthRec.Add(seg.records)
		l.depthByte.Add(seg.bytes)
	}
	l.lastSeq = prevSeq
	return nil
}

// listSegments returns the segment paths sorted by their first sequence
// number. Non-segment files are ignored.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	type named struct {
		first uint64
		path  string
	}
	var segs []named
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, named{first, filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.path
	}
	return out, nil
}

// scanSegment validates one segment. It returns the bookkeeping, the
// offset of a torn tail (-1 when the file ends cleanly) and an error for
// unrepairable corruption. prevSeq is the last sequence number of the
// preceding segment (0 at the start of the log): frames must continue
// contiguously from it, except that the log's very first record may start
// anywhere (earlier history was legitimately rotated out).
func scanSegment(path string, prevSeq uint64) (segment, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return segment{}, -1, err
	}
	defer f.Close()
	seg := segment{path: path, first: segFirst(path)}
	var (
		off    int64
		header [frameHeaderLen]byte
	)
	body := make([]byte, 0, 4096)
	for {
		_, err := io.ReadFull(f, header[:])
		if err == io.EOF {
			return seg, -1, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			return seg, off, nil // torn: partial header
		}
		if err != nil {
			return segment{}, -1, err
		}
		length := binary.LittleEndian.Uint32(header[0:])
		crc := binary.LittleEndian.Uint32(header[4:])
		if length < minBodyLen || length > maxBodyLen {
			return segment{}, -1, fmt.Errorf("frame at offset %d declares impossible body length %d", off, length)
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(f, body); err == io.ErrUnexpectedEOF {
			return seg, off, nil // torn: partial body
		} else if err != nil {
			return segment{}, -1, err
		}
		if got := crc32.Checksum(body, castagnoli); got != crc {
			return segment{}, -1, fmt.Errorf("frame at offset %d fails CRC32C (stored %08x, computed %08x)", off, crc, got)
		}
		seq := binary.LittleEndian.Uint64(body[0:])
		if prevSeq != 0 && seq != prevSeq+1 {
			return segment{}, -1, fmt.Errorf("frame at offset %d has seq %d, want %d (sequence gap)", off, seq, prevSeq+1)
		}
		prevSeq = seq
		seg.last = seq
		seg.records++
		off += frameHeaderLen + int64(length)
		seg.bytes = off
	}
}

func segFirst(path string) uint64 {
	first, _ := strconv.ParseUint(strings.TrimSuffix(filepath.Base(path), segSuffix), 10, 64)
	return first
}

// LastSeq reports the highest sequence number in the log, 0 when empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Replay streams every record with seq > from to fn, in sequence order.
// It re-reads the (already validated and tail-truncated) segment files, so
// call it after Open and before the first Append. A non-nil error from fn
// stops the replay and is returned.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	paths := make([]string, 0, len(l.segments))
	for _, s := range l.segments {
		paths = append(paths, s.path)
	}
	l.mu.Unlock()
	for _, path := range paths {
		if err := replaySegment(path, from, fn, &l.replayed); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, from uint64, fn func(uint64, []byte) error, replayed *atomic.Uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var header [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:])
		crc := binary.LittleEndian.Uint32(header[4:])
		if length < minBodyLen || length > maxBodyLen {
			return fmt.Errorf("%w: %s: impossible body length %d", ErrCorrupt, filepath.Base(path), length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err == io.ErrUnexpectedEOF {
			return nil // the torn tail Open already truncated on disk
		} else if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if got := crc32.Checksum(body, castagnoli); got != crc {
			return fmt.Errorf("%w: %s: CRC mismatch during replay", ErrCorrupt, filepath.Base(path))
		}
		seq := binary.LittleEndian.Uint64(body[0:])
		if seq <= from {
			continue
		}
		replayed.Add(1)
		if err := fn(seq, body[minBodyLen:]); err != nil {
			return err
		}
	}
}

// Append frames (seq, payload) and writes it to the active segment,
// fsyncing per the policy before returning. seq must be exactly
// LastSeq()+1 when the log is non-empty — the contiguity Replay relies on
// is enforced at the source.
func (l *Log) Append(seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: append on closed log")
	}
	if l.lastSeq != 0 && seq != l.lastSeq+1 {
		return fmt.Errorf("wal: append seq %d out of order (last is %d)", seq, l.lastSeq)
	}
	if len(payload) > maxBodyLen-minBodyLen {
		return fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record cap", len(payload), maxBodyLen-minBodyLen)
	}
	if err := l.ensureActive(seq); err != nil {
		return err
	}
	bodyLen := minBodyLen + len(payload)
	frame := make([]byte, frameHeaderLen+bodyLen)
	binary.LittleEndian.PutUint32(frame[0:], uint32(bodyLen))
	binary.LittleEndian.PutUint64(frame[8:], seq)
	copy(frame[16:], payload)
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.unsynced = true
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	seg := &l.segments[len(l.segments)-1]
	seg.last = seq
	seg.records++
	seg.bytes += int64(len(frame))
	l.lastSeq = seq
	l.appends.Add(1)
	l.depthRec.Add(1)
	l.depthByte.Add(int64(len(frame)))
	if seg.bytes >= l.opt.MaxSegmentBytes {
		l.sealActiveLocked()
	}
	return nil
}

// ensureActive opens (or creates) the segment the next append goes to.
func (l *Log) ensureActive(nextSeq uint64) error {
	if l.active != nil {
		return nil
	}
	if n := len(l.segments); n > 0 {
		seg := l.segments[n-1]
		if seg.bytes < l.opt.MaxSegmentBytes {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.active = f
			return nil
		}
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", nextSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.active = f
	l.segments = append(l.segments, segment{path: path, first: nextSeq})
	syncDir(l.dir)
	return nil
}

// sealActiveLocked closes the active file so the next append starts a
// fresh segment. The sealed segment stays until Rotate deletes it.
func (l *Log) sealActiveLocked() {
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
}

// Sync flushes appended-but-unsynced records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.unsynced || l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.unsynced = false
	l.fsyncs.Add(1)
	return nil
}

// Rotate is the checkpoint truncation barrier: every record with seq <=
// upTo is now redundant (a checkpoint holds its effect), so segments
// entirely at or below upTo are deleted — including the active one, which
// is sealed first. Recovery time and disk stay bounded by the checkpoint
// cadence.
func (l *Log) Rotate(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: rotate on closed log")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	var keep []segment
	var firstErr error
	for i, seg := range l.segments {
		// An empty segment (created, never appended to) holds nothing, so
		// dropping it is always safe.
		covered := seg.records == 0 || seg.last <= upTo
		if !covered {
			keep = append(keep, seg)
			continue
		}
		if i == len(l.segments)-1 {
			l.sealActiveLocked()
		}
		if err := os.Remove(seg.path); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: rotating %s: %w", seg.path, err)
			}
			keep = append(keep, seg)
			continue
		}
		l.truncated.Add(uint64(seg.bytes))
		l.depthRec.Add(-seg.records)
		l.depthByte.Add(-seg.bytes)
	}
	l.segments = keep
	syncDir(l.dir)
	return firstErr
}

// Depth reports the records and bytes currently in the log — the replay
// work (and data at risk under lazy sync policies) a crash right now
// would incur on top of the last checkpoint.
func (l *Log) Depth() (records, bytes int64) {
	return l.depthRec.Load(), l.depthByte.Load()
}

// Counters snapshots the activity counters.
func (l *Log) Counters() Counters {
	return Counters{
		Appends:        l.appends.Load(),
		Fsyncs:         l.fsyncs.Load(),
		Replayed:       l.replayed.Load(),
		TruncatedBytes: l.truncated.Load(),
	}
}

// Close flushes and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	l.sealActiveLocked()
	quit := l.flushQuit
	l.mu.Unlock()
	if quit != nil {
		close(quit)
		<-l.flushDone
	}
	return err
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushQuit:
			return
		case <-t.C:
			l.mu.Lock()
			if err := l.syncLocked(); err != nil {
				l.opt.Logf("wal: background flush: %v", err)
			}
			l.mu.Unlock()
		}
	}
}

// syncDir fsyncs a directory so segment creation/deletion survives a
// crash. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
