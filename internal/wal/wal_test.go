package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendN appends records from+1 .. from+n with recognizable payloads.
func appendN(t *testing.T, l *Log, from uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := from + uint64(i) + 1
		if err := l.Append(seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

// collect replays everything after from into (seq, payload) pairs.
func collect(t *testing.T, l *Log, from uint64) (seqs []uint64, payloads []string) {
	t.Helper()
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	seqs, payloads := collect(t, l2, 0)
	if len(seqs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seq, i+1)
		}
		if want := fmt.Sprintf("payload-%d", seq); payloads[i] != want {
			t.Fatalf("payload[%d] = %q, want %q", i, payloads[i], want)
		}
	}
	// Replay cursor: records <= from are skipped.
	seqs, _ = collect(t, l2, 3)
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("replay from 3 gave %v, want [4 5]", seqs)
	}
	if c := l2.Counters(); c.Replayed != 7 {
		t.Fatalf("Replayed counter = %d, want 7", c.Replayed)
	}
}

// TestReplayIdempotent proves boot-twice safety: two Opens of the same
// directory replay the identical record stream.
func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 8)
	l.Close()

	var first, second []string
	for round := 0; round < 2; round++ {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, payloads := collect(t, l, 0)
		if round == 0 {
			first = payloads
		} else {
			second = payloads
		}
		l.Close()
	}
	if len(first) != len(second) {
		t.Fatalf("boot twice replayed %d then %d records", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at record %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	paths, err := listSegments(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", paths, err)
	}
	return paths[0]
}

// TestTornTailTruncated: a crash mid-append leaves a partial frame; Open
// sheds it and keeps everything before.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int64 // bytes of the final frame to keep
	}{
		{"partial-header", 3},
		{"partial-body", frameHeaderLen + 9},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 3)
			l.Close()
			path := onlySegment(t, dir)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// The three frames are equal-sized; chop the last one down.
			frame := info.Size() / 3
			if err := os.Truncate(path, 2*frame+cut.keep); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("torn tail must not fail open: %v", err)
			}
			defer l2.Close()
			if got := l2.LastSeq(); got != 2 {
				t.Fatalf("LastSeq after torn tail = %d, want 2", got)
			}
			seqs, _ := collect(t, l2, 0)
			if len(seqs) != 2 {
				t.Fatalf("replayed %d records after torn tail, want 2", len(seqs))
			}
			if c := l2.Counters(); c.TruncatedBytes == 0 {
				t.Fatal("torn tail did not count truncated bytes")
			}
			// The log must keep appending cleanly after the repair.
			if err := l2.Append(3, []byte("again")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMidLogCorruption: a bit flip in a record that is not the torn tail
// must refuse the whole log with ErrCorrupt, not silently skip.
func TestMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	l.Close()
	path := onlySegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(data) / 3
	data[frame+frameHeaderLen+9] ^= 0x40 // flip a payload bit in record 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log bit flip: Open err = %v, want ErrCorrupt", err)
	}
}

// TestFinalFrameBadCRC: a complete final frame with a wrong CRC is
// corruption (a torn write leaves a short file, never a complete frame
// with mismatched bytes), so it must not be silently truncated.
func TestFinalFrameBadCRC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 2)
	l.Close()
	path := onlySegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad CRC on complete final frame: Open err = %v, want ErrCorrupt", err)
	}
}

// TestSequenceGapIsCorrupt: contiguous sequence numbers are part of the
// integrity contract.
func TestSequenceGapIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 1)
	if err := l.Append(3, []byte("gap")); err == nil {
		t.Fatal("out-of-order append was accepted")
	}
	l.Close()

	// Forge a gap on disk: rewrite record 2's seq field to 7 and fix the
	// CRC so only the contiguity check can catch it.
	appendGapFrame(t, onlySegment(t, dir), 7)
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence gap: Open err = %v, want ErrCorrupt", err)
	}
}

func appendGapFrame(t *testing.T, path string, seq uint64) {
	t.Helper()
	body := make([]byte, 8+4)
	binary.LittleEndian.PutUint64(body, seq)
	copy(body[8:], "gapX")
	frame := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crcOf(body))
	copy(frame[frameHeaderLen:], body)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
}

func crcOf(body []byte) uint32 {
	return crc32.Checksum(body, castagnoli)
}

// TestEmptySegment: a zero-byte segment file (created, crash before the
// first append) neither fails Open nor contributes records, and rotation
// cleans it up.
func TestEmptySegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "00000000000000000001.seg"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("empty segment failed open: %v", err)
	}
	defer l.Close()
	if seqs, _ := collect(t, l, 0); len(seqs) != 0 {
		t.Fatalf("empty segment replayed %d records", len(seqs))
	}
	if err := l.Rotate(0); err != nil {
		t.Fatal(err)
	}
	if paths, _ := listSegments(dir); len(paths) != 0 {
		t.Fatalf("rotation left %v behind", paths)
	}
	// The log keeps working afterwards.
	if err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestRotateAfterCheckpoint: segments fully covered by the checkpoint
// counter disappear; appends continue contiguously in a fresh segment.
func TestRotateAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 4)
	if rec, bytes := l.Depth(); rec != 4 || bytes == 0 {
		t.Fatalf("depth before rotate = (%d, %d)", rec, bytes)
	}
	if err := l.Rotate(4); err != nil {
		t.Fatal(err)
	}
	if paths, _ := listSegments(dir); len(paths) != 0 {
		t.Fatalf("rotate(4) left segments %v", paths)
	}
	if rec, _ := l.Depth(); rec != 0 {
		t.Fatalf("depth after rotate = %d records, want 0", rec)
	}
	if c := l.Counters(); c.TruncatedBytes == 0 {
		t.Fatal("rotation did not count truncated bytes")
	}

	// Appends resume at seq 5 in a segment named for it.
	appendN(t, l, 4, 2)
	paths, _ := listSegments(dir)
	if len(paths) != 1 || filepath.Base(paths[0]) != "00000000000000000005.seg" {
		t.Fatalf("post-rotate segments = %v", paths)
	}

	// A partial rotation keeps uncovered segments: force a new segment by
	// sealing at a tiny size cap in a fresh log.
	dir2 := t.TempDir()
	small, err := Open(dir2, Options{MaxSegmentBytes: 1}) // every append seals
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	appendN(t, small, 0, 3)
	if paths, _ := listSegments(dir2); len(paths) != 3 {
		t.Fatalf("size-capped log has %v", paths)
	}
	if err := small.Rotate(2); err != nil {
		t.Fatal(err)
	}
	paths, _ = listSegments(dir2)
	if len(paths) != 1 || filepath.Base(paths[0]) != "00000000000000000003.seg" {
		t.Fatalf("rotate(2) kept %v, want only seq-3 segment", paths)
	}
	seqs, _ := collect(t, small, 0)
	if len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("after partial rotation replay = %v, want [3]", seqs)
	}
}

// TestResumeAppendAfterReopen: the recover-then-serve sequence — open,
// replay, append more — keeps one contiguous log.
func TestResumeAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 3, 3)
	l2.Close()

	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	seqs, _ := collect(t, l3, 0)
	if len(seqs) != 6 || seqs[5] != 6 {
		t.Fatalf("resumed log replays %v, want 1..6", seqs)
	}
}

func TestSyncPolicies(t *testing.T) {
	pol, err := ParseSyncPolicy("interval")
	if err != nil || pol != SyncInterval {
		t.Fatalf("ParseSyncPolicy(interval) = %v, %v", pol, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}

	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	if c := l.Counters(); c.Fsyncs != 3 || c.Appends != 3 {
		t.Fatalf("SyncAlways counters = %+v, want 3 fsyncs / 3 appends", c)
	}
	l.Close()

	li, err := Open(t.TempDir(), Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, li, 0, 1)
	deadline := time.Now().Add(2 * time.Second)
	for li.Counters().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	li.Close()

	ln, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, ln, 0, 2)
	if c := ln.Counters(); c.Fsyncs != 0 {
		t.Fatalf("SyncNever issued %d fsyncs", c.Fsyncs)
	}
	ln.Close() // Close always flushes
}
