package parsvd

import (
	"errors"
	"fmt"

	"goparsvd/internal/linalg"
	"goparsvd/internal/mat"
)

// Matrix is the dense row-major float64 matrix every parsvd API speaks.
// It is an alias of the engine matrix type, so facade users get the full
// method set (At, Set, Dims, SliceCols, Col, Row, Clone, FroNorm, …)
// without an import of the internal packages.
type Matrix = mat.Dense

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// NewMatrixFromData wraps an existing row-major backing slice (adopted,
// not copied) as an r×c matrix. len(data) must be r·c.
func NewMatrixFromData(r, c int, data []float64) (*Matrix, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("parsvd: NewMatrixFromData: negative dims %dx%d", r, c)
	}
	if len(data) != r*c {
		return nil, fmt.Errorf("parsvd: NewMatrixFromData: %d values for a %dx%d matrix", len(data), r, c)
	}
	return mat.NewFromData(r, c, data), nil
}

// NewMatrixFromRows copies a slice of equal-length rows into a matrix.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("parsvd: NewMatrixFromRows: no rows")
	}
	c := len(rows[0])
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("parsvd: NewMatrixFromRows: row %d has %d values, want %d", i, len(row), c)
		}
	}
	return mat.NewFromRows(rows), nil
}

// Basic dense operations re-exported for facade consumers (examples,
// downstream analysis code) so routine pre/post-processing does not
// require a second linear-algebra dependency.

// Mul returns a·b.
func Mul(a, b *Matrix) *Matrix { return mat.Mul(a, b) }

// MulTransA returns aᵀ·b (the modal-projection product).
func MulTransA(a, b *Matrix) *Matrix { return mat.MulTransA(a, b) }

// MulTransB returns a·bᵀ.
func MulTransB(a, b *Matrix) *Matrix { return mat.MulTransB(a, b) }

// MulDiag returns a·diag(d): column j of a scaled by d[j].
func MulDiag(a *Matrix, d []float64) *Matrix { return mat.MulDiag(a, d) }

// HStack concatenates matrices left to right.
func HStack(ms ...*Matrix) *Matrix { return mat.HStack(ms...) }

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix { return mat.Sub(a, b) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 { return mat.Dot(a, b) }

// Nrm2 returns the Euclidean norm of v.
func Nrm2(v []float64) float64 { return mat.Nrm2(v) }

// Axpy computes y ← α·x + y in place.
func Axpy(alpha float64, x, y []float64) { mat.Axpy(alpha, x, y) }

// TruncatedSVD computes the exact (non-streaming) rank-k truncated SVD of
// a: the reference decomposition facade users compare streamed results
// against. U is m×k, s has length k, V is n×k; k is clamped to min(m, n).
func TruncatedSVD(a *Matrix, k int) (u *Matrix, s []float64, v *Matrix, err error) {
	if a == nil || a.IsEmpty() {
		return nil, nil, nil, errors.New("parsvd: TruncatedSVD of an empty matrix")
	}
	if k < 1 {
		return nil, nil, nil, fmt.Errorf("parsvd: TruncatedSVD rank %d < 1", k)
	}
	u, s, v = linalg.SVDTruncated(a, k)
	return u, s, v, nil
}

// CompressionRatio reports the storage ratio of rank-k compression of an
// m×n snapshot matrix: original m·n values versus m·k (modes) + k
// (singular values) + k·n (coefficients). Non-positive arguments yield 0.
func CompressionRatio(m, n, k int) float64 {
	if m < 1 || n < 1 || k < 1 {
		return 0
	}
	original := float64(m) * float64(n)
	compressed := float64(m)*float64(k) + float64(k) + float64(k)*float64(n)
	return original / compressed
}
