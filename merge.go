package parsvd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"goparsvd/internal/core"
	"goparsvd/internal/merge"
)

// Typed merge-validation errors. Both are returned before any state
// changes: a merge that fails validation leaves the target model
// untouched.
var (
	// ErrMergeIncompatible marks shard states that cannot describe the
	// same logical decomposition: differing K, forget factor, snapshot
	// row count, or provenance marks from different partitionings.
	ErrMergeIncompatible = errors.New("parsvd: checkpoints are not mergeable")
	// ErrShardOverlap marks an attempt to merge the same shard of the
	// same partitioning twice; the merge operator requires disjoint
	// snapshot subsets.
	ErrShardOverlap = errors.New("parsvd: shard already merged into this model")
)

// Merge absorbs a shard-local fit — a checkpoint written by Save — into
// this model: the two factorizations combine through the pairwise
// Iwen–Ong merge operator, truncated back to this SVD's K. The merged
// model always continues on the Serial backend (Backend reports the
// change); a Parallel or Distributed engine is shut down once the merge
// has been computed. Merging into an SVD that has seen no data adopts
// the checkpoint outright, like Load, after the same compatibility
// checks.
//
// The checkpoint is fully parsed and validated (ErrBadCheckpoint,
// ErrMergeIncompatible, ErrShardOverlap) before the model is touched: a
// failed Merge leaves the target exactly as it was. The accumulated
// truncation error of all merges is available from MergeBound.
func (s *SVD) Merge(r io.Reader) error {
	if r == nil {
		return errors.New("parsvd: Merge with nil reader")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("parsvd: Merge on closed SVD")
	}
	st, err := core.ReadState(r)
	if err != nil {
		return fmt.Errorf("parsvd: %w", err)
	}
	if st.Opts.K != s.cfg.k {
		return fmt.Errorf("%w: checkpoint has K = %d, model has K = %d",
			ErrMergeIncompatible, st.Opts.K, s.cfg.k)
	}
	if st.Opts.ForgetFactor != s.cfg.ff {
		return fmt.Errorf("%w: checkpoint has forget factor %g, model has %g",
			ErrMergeIncompatible, st.Opts.ForgetFactor, s.cfg.ff)
	}
	if err := s.checkProvenance(st.Shard); err != nil {
		return err
	}
	if s.rows == 0 {
		return s.adoptLocked(st)
	}
	if st.Modes.Rows() != s.rows {
		return fmt.Errorf("%w: checkpoint has %d snapshot rows, model has %d",
			ErrMergeIncompatible, st.Modes.Rows(), s.rows)
	}

	// Snapshot the current factorization. A backend that keeps its modes
	// remote (Distributed) is read through its checkpoint form.
	res, err := s.eng.result()
	if err != nil {
		return err
	}
	if res.Modes == nil {
		var err error
		if res.Modes, res.Singular, err = s.gatherModesLocked(res); err != nil {
			return err
		}
	}

	var m merge.Merger
	var root merge.Partial
	err = m.Pair(&root,
		&merge.Partial{U: res.Modes, S: res.Singular, Bound: s.mergeBound},
		&merge.Partial{U: st.Modes, S: st.Singular},
		s.cfg.k)
	if err != nil {
		return fmt.Errorf("parsvd: %w", err)
	}
	// The restored engine's iteration counter continues the facade's
	// update count, so the updates == iterations+1 invariant that keeps
	// WAL sequence numbers contiguous across checkpoint/restore survives
	// the merge.
	eng, err := core.RestoreSerial(s.cfg.coreOptions(), root.U, root.S,
		int(s.updates), res.Snapshots+st.Snapshots)
	if err != nil {
		return fmt.Errorf("parsvd: restoring merged state: %w", err)
	}

	// Point of no return: everything validated, swap the engine.
	if err := s.eng.close(); err != nil {
		return fmt.Errorf("%w: closing pre-merge engine: %w", ErrEngineFailed, err)
	}
	s.eng = restoredSerialEngine(eng)
	s.cfg.backend = Serial
	s.cfg.ranks = 1
	s.snapshots += st.Snapshots
	s.updates++
	s.mergeBound = root.Bound
	s.recordProvenance(st.Shard)
	return nil
}

// adoptLocked installs a checkpoint as the whole state of a model that
// has seen no data: the degenerate single-operand merge. Called with
// s.mu held, after the compatibility checks.
func (s *SVD) adoptLocked(st core.State) error {
	// The adopted engine restarts its iteration count at the facade's
	// current update count (0 for a fresh model) — see Merge on the
	// updates/iterations invariant.
	eng, err := core.RestoreSerial(s.cfg.coreOptions(), st.Modes, st.Singular,
		int(s.updates), st.Snapshots)
	if err != nil {
		return fmt.Errorf("parsvd: restoring merged state: %w", err)
	}
	if err := s.eng.close(); err != nil {
		return fmt.Errorf("%w: closing pre-merge engine: %w", ErrEngineFailed, err)
	}
	s.eng = restoredSerialEngine(eng)
	s.cfg.backend = Serial
	s.cfg.ranks = 1
	s.rows = st.Modes.Rows()
	s.snapshots += st.Snapshots
	s.updates++
	s.recordProvenance(st.Shard)
	return nil
}

// recordProvenance notes an absorbed shard mark and retires the model's
// own WithShard mark into the absorbed set: after a merge the model is
// a union of shards, not a single shard, so later saves must not stamp
// it as one (while overlap checks keep refusing all constituents).
func (s *SVD) recordProvenance(incoming core.ShardID) {
	if !s.cfg.shard.IsZero() {
		s.absorbed = append(s.absorbed, s.cfg.shard)
		s.cfg.shard = core.ShardID{}
	}
	if !incoming.IsZero() {
		s.absorbed = append(s.absorbed, incoming)
	}
}

// checkProvenance refuses a shard mark that cannot be disjoint from
// what this model already holds. A zero mark (whole-stream checkpoint)
// always passes — disjointness is then the caller's responsibility.
func (s *SVD) checkProvenance(id core.ShardID) error {
	if id.IsZero() {
		return nil
	}
	seen := s.absorbed
	if !s.cfg.shard.IsZero() {
		seen = append(append([]core.ShardID(nil), seen...), s.cfg.shard)
	}
	for _, a := range seen {
		if a == id {
			return fmt.Errorf("%w: shard %d of %d", ErrShardOverlap, id.Index, id.Count)
		}
		if a.Count != id.Count {
			return fmt.Errorf("%w: shard %d of %d cannot be disjoint from already-held shard %d of %d (different partitionings)",
				ErrMergeIncompatible, id.Index, id.Count, a.Index, a.Count)
		}
	}
	return nil
}

// gatherModesLocked materializes the global modes of an engine whose
// Result carries none, via its checkpoint form. Called with s.mu held.
func (s *SVD) gatherModesLocked(res *Result) (*Matrix, []float64, error) {
	var buf bytes.Buffer
	if err := s.eng.save(&buf, res); err != nil {
		return nil, nil, err
	}
	st, err := core.ReadState(&buf)
	if err != nil {
		return nil, nil, err
	}
	return st.Modes, st.Singular, nil
}

// MergeBound reports the accumulated Frobenius-norm truncation bound of
// every merge applied to this model. By Weyl's inequality each singular
// value of the merged model is within this bound of the corresponding
// value of the exact factorization of the union stream. Zero for a
// model never merged.
func (s *SVD) MergeBound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mergeBound
}

// MergeCheckpoints reduces shard-local checkpoint files into one model:
// every file is parsed and the whole set validated (same K, same forget
// factor, same row count, pairwise-disjoint shard provenance) before
// any merge runs, then the states combine up a balanced pairwise merge
// tree. The result is an ordinary serial-backend SVD, ready to stream
// further batches, save, or serve; its MergeBound carries the
// accumulated truncation error.
func MergeCheckpoints(paths ...string) (*SVD, error) {
	if len(paths) == 0 {
		return nil, errors.New("parsvd: MergeCheckpoints with no checkpoints")
	}
	states := make([]core.State, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("parsvd: %w", err)
		}
		st, err := core.ReadState(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parsvd: %s: %w", p, err)
		}
		states[i] = st
	}
	return mergeStates(states, paths)
}

// MergeReaders is MergeCheckpoints for checkpoints that are not files:
// each reader yields one serialized checkpoint (Save / WriteCheckpoint
// bytes), letting a coordinator reduce shard states fetched over the
// wire without spilling them to temp files. Validation and reduction are
// identical to MergeCheckpoints; errors label operands "checkpoint i"
// (reader order) instead of by path.
func MergeReaders(readers ...io.Reader) (*SVD, error) {
	if len(readers) == 0 {
		return nil, errors.New("parsvd: MergeReaders with no checkpoints")
	}
	states := make([]core.State, len(readers))
	labels := make([]string, len(readers))
	for i, r := range readers {
		labels[i] = fmt.Sprintf("checkpoint %d", i)
		if r == nil {
			return nil, fmt.Errorf("parsvd: MergeReaders: %s is a nil reader", labels[i])
		}
		st, err := core.ReadState(r)
		if err != nil {
			return nil, fmt.Errorf("parsvd: %s: %w", labels[i], err)
		}
		states[i] = st
	}
	return mergeStates(states, labels)
}

// mergeStates validates the whole checkpoint set (compatibility and
// pairwise-disjoint provenance — before any merge work runs), reduces it
// up a balanced pairwise merge tree and wraps the root as a serial SVD.
// labels name the operands in error messages (file paths for
// MergeCheckpoints, reader indices for MergeReaders).
func mergeStates(states []core.State, labels []string) (*SVD, error) {
	ref := states[0]
	for i, st := range states[1:] {
		if st.Opts.K != ref.Opts.K {
			return nil, fmt.Errorf("%w: %s has K = %d, %s has K = %d",
				ErrMergeIncompatible, labels[i+1], st.Opts.K, labels[0], ref.Opts.K)
		}
		if st.Opts.ForgetFactor != ref.Opts.ForgetFactor {
			return nil, fmt.Errorf("%w: %s has forget factor %g, %s has %g",
				ErrMergeIncompatible, labels[i+1], st.Opts.ForgetFactor, labels[0], ref.Opts.ForgetFactor)
		}
		if st.Modes.Rows() != ref.Modes.Rows() {
			return nil, fmt.Errorf("%w: %s has %d snapshot rows, %s has %d",
				ErrMergeIncompatible, labels[i+1], st.Modes.Rows(), labels[0], ref.Modes.Rows())
		}
	}
	var absorbed []core.ShardID
	var absorbedAt []int // state index of each absorbed mark, for error labels
	for i, st := range states {
		if st.Shard.IsZero() {
			continue
		}
		for j, prev := range absorbed {
			if prev == st.Shard {
				return nil, fmt.Errorf("%w: %s and %s both hold shard %d of %d",
					ErrShardOverlap, labels[absorbedAt[j]], labels[i], st.Shard.Index, st.Shard.Count)
			}
			if prev.Count != st.Shard.Count {
				return nil, fmt.Errorf("%w: %s is shard %d of %d but %s is shard %d of %d (different partitionings)",
					ErrMergeIncompatible, labels[i], st.Shard.Index, st.Shard.Count,
					labels[absorbedAt[j]], prev.Index, prev.Count)
			}
		}
		absorbed = append(absorbed, st.Shard)
		absorbedAt = append(absorbedAt, i)
	}

	parts := make([]*merge.Partial, len(states))
	for i, st := range states {
		parts[i] = &merge.Partial{
			U:          st.Modes,
			S:          st.Singular,
			Iterations: st.Iterations,
			Snapshots:  st.Snapshots,
		}
	}
	root, err := merge.Tree(parts, merge.TreeOptions{
		K:       ref.Opts.K,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return nil, fmt.Errorf("parsvd: %w", err)
	}
	eng, err := core.RestoreSerial(ref.Opts, root.U, root.S,
		root.Iterations, root.Snapshots)
	if err != nil {
		return nil, fmt.Errorf("parsvd: restoring merged state: %w", err)
	}

	cfg := defaultConfig()
	cfg.k = ref.Opts.K
	cfg.ff = ref.Opts.ForgetFactor
	cfg.lowRank = ref.Opts.LowRank
	cfg.rlaOpts = ref.Opts.RLA
	cfg.r1 = ref.Opts.R1
	cfg.method = ref.Opts.Method
	s := &SVD{cfg: cfg, eng: restoredSerialEngine(eng)}
	s.rows = root.U.Rows()
	s.snapshots = root.Snapshots
	s.updates = int64(root.Iterations) + 1 // Initialize counted as an update
	s.absorbed = absorbed
	s.mergeBound = root.Bound
	return s, nil
}

// WriteCheckpoint serializes an already-materialized decomposition — a
// Result plus the Configuration it was computed under — in the
// checkpoint format read by Load, Merge and MergeCheckpoints. It lets a
// holder of a published Result snapshot (the serving layer's
// copy-on-publish view) produce a mergeable checkpoint without touching
// the live engine. The Result must carry modes (a Distributed Result
// does not; Save gathers them instead). A provenance mark in cfg.Shard
// is stamped into the checkpoint exactly as Save stamps a WithShard
// model's, so an exported view stays mergeable under the same
// disjointness checks.
func WriteCheckpoint(w io.Writer, cfg Configuration, res *Result) error {
	if w == nil {
		return errors.New("parsvd: WriteCheckpoint with nil writer")
	}
	if res == nil {
		return errors.New("parsvd: WriteCheckpoint with nil result")
	}
	if res.Modes == nil {
		return errors.New("parsvd: WriteCheckpoint needs a Result carrying modes")
	}
	shard := core.ShardID{Index: cfg.Shard.Index, Count: cfg.Shard.Count}
	if err := shard.Validate(); err != nil {
		return fmt.Errorf("parsvd: WriteCheckpoint: shard %d of %d: index must be in [0, count)",
			cfg.Shard.Index, cfg.Shard.Count)
	}
	opts := core.Options{
		K:            cfg.Modes,
		ForgetFactor: cfg.ForgetFactor,
		LowRank:      cfg.LowRank,
		RLA:          cfg.RLA,
		R1:           cfg.InitRank,
	}
	// Round-trip through the restore validator so a malformed Result is
	// an error here, not a corrupt checkpoint downstream.
	eng, err := core.RestoreSerial(opts, res.Modes, res.Singular,
		res.Iterations, res.Snapshots)
	if err != nil {
		return fmt.Errorf("parsvd: %w", err)
	}
	if shard.IsZero() {
		return eng.Save(w)
	}
	// Stamp the provenance by re-encoding through the State form, like
	// SVD.Save does for WithShard models (checkpoints are small relative
	// to a fit; the copy is cheap).
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		return err
	}
	st, err := core.ReadState(&buf)
	if err != nil {
		return fmt.Errorf("parsvd: stamping shard provenance: %w", err)
	}
	st.Shard = shard
	return core.WriteState(w, st)
}
