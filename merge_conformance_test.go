package parsvd_test

// Merge conformance: a fit sharded across 2/4/8 independent engines and
// reduced through the merge tree must match the monolithic serial fit
// ≤ 1e-10 on every Source kind, and the shape of the tree (balanced vs
// left-deep) must change results only within the accumulated error
// bound. These tests are the `make merge-smoke` CI gate.
//
// The fixtures run with forget factor 1.0 and K at least the effective
// rank of the stream: sharding deals batches round-robin across
// independent fits, so a recency weighting (ff < 1) or a lossy per-shard
// truncation would make the monolithic and sharded results legitimately
// different decompositions. Under those conditions the merge is exact
// and the agreement is rounding-level (see README, "Sharded fit &
// merge", for when to shard vs stream).

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/testutil"
)

// mergeConfTolerance is the sharded-vs-monolithic agreement bound pinned
// by the ISSUE acceptance criteria.
const mergeConfTolerance = 1e-10

// mergeConfMatrix is exactly rank 6 (no noise floor), so a K = 6
// truncated stream loses nothing and the merge is exact.
func mergeConfMatrix() *parsvd.Matrix {
	a, _ := testutil.RandomLowRank(64, 24, 6, 0, testutil.NewRand(42))
	return a
}

// mergeConfWorkload is the Burgers workload in a no-truncation
// configuration: its spectrum decays too slowly for a K = 6 tail to sit
// below 1e-10, so the merge gate runs it with K = Snapshots. Batches of
// 2 columns give 12 batches — enough to feed all 8 shards.
func mergeConfWorkload() parsvd.Workload {
	w := parsvd.DefaultWorkload()
	w.RowsPerRank = 64
	w.Snapshots = 24
	w.InitBatch = 2
	w.Batch = 2
	w.K = 24
	w.FF = 1.0
	w.R1 = 24
	return w
}

// mergeConfStreams builds the three Source flavors with per-kind modes.
var mergeConfStreams = []struct {
	name   string
	k      int
	source func(t *testing.T) parsvd.Source
}{
	{"FromMatrix", 6, func(t *testing.T) parsvd.Source {
		return parsvd.FromMatrix(mergeConfMatrix(), 2)
	}},
	{"FromBatches", 6, func(t *testing.T) parsvd.Source {
		a, pos := mergeConfMatrix(), 0
		return parsvd.FromBatches(func() (*parsvd.Matrix, error) {
			if pos >= a.Cols() {
				return nil, io.EOF
			}
			end := pos + 2
			if end > a.Cols() {
				end = a.Cols()
			}
			b := a.SliceCols(pos, end)
			pos = end
			return b, nil
		})
	}},
	{"FromWorkload", 24, func(t *testing.T) parsvd.Source {
		src, err := parsvd.FromWorkload(mergeConfWorkload(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}},
}

// TestMergeConformanceShardedFit: WithShards(2/4/8) over every Source
// kind matches the monolithic serial fit ≤ 1e-10 — the acceptance gate.
func TestMergeConformanceShardedFit(t *testing.T) {
	for _, stream := range mergeConfStreams {
		t.Run(stream.name, func(t *testing.T) {
			mono, err := parsvd.New(parsvd.WithModes(stream.k))
			if err != nil {
				t.Fatal(err)
			}
			want, err := mono.Fit(context.Background(), stream.source(t))
			if err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 4, 8} {
				sharded, err := parsvd.New(parsvd.WithModes(stream.k), parsvd.WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sharded.Fit(context.Background(), stream.source(t))
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if res.Snapshots != want.Snapshots {
					t.Fatalf("%d shards ingested %d snapshots, monolithic %d",
						shards, res.Snapshots, want.Snapshots)
				}
				if d := maxSpectrumDiff(t, want.Singular, res.Singular); d > mergeConfTolerance {
					t.Errorf("%d shards: merged spectrum deviates from monolithic serial by %g, want <= %g",
						shards, d, mergeConfTolerance)
				}
				if want.Modes != nil && res.Modes != nil {
					if d := testutil.SubspaceError(want.Modes, res.Modes); d > 1e-8 {
						t.Errorf("%d shards: merged mode subspace deviates by %g", shards, d)
					}
				}
			}
		})
	}
}

// TestMergeConformanceShardedBackends: the shard engines themselves can
// run any backend; a Parallel-sharded fit matches the monolithic serial
// fit within the same gate.
func TestMergeConformanceShardedBackends(t *testing.T) {
	skipWithoutFleet(t)
	mono, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Fit(context.Background(), parsvd.FromMatrix(mergeConfMatrix(), 2))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := parsvd.New(parsvd.WithModes(6), parsvd.WithShards(4),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	res, err := sharded.Fit(context.Background(), parsvd.FromMatrix(mergeConfMatrix(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxSpectrumDiff(t, want.Singular, res.Singular); d > mergeConfTolerance {
		t.Errorf("parallel-sharded spectrum deviates from monolithic serial by %g, want <= %g",
			d, mergeConfTolerance)
	}
}

// shardCheckpointFiles fits each column shard of a separately (stamped
// WithShard) and saves the checkpoints to files, returning the paths.
func shardCheckpointFiles(t *testing.T, a *parsvd.Matrix, k, shards int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, shards)
	cols := a.Cols()
	for i := 0; i < shards; i++ {
		lo, hi := i*cols/shards, (i+1)*cols/shards
		svd, err := parsvd.New(parsvd.WithModes(k), parsvd.WithShard(i, shards))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(lo, hi), 2)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := svd.Save(&buf); err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".ckpt")
		if err := os.WriteFile(paths[i], buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestMergeConformanceTreeShape: the balanced reduction
// (MergeCheckpoints) and the left-deep chain (sequential SVD.Merge)
// agree with each other and with the monolithic fit within the
// accumulated bounds — and exactly-representable streams agree at the
// 1e-10 gate regardless of shape.
func TestMergeConformanceTreeShape(t *testing.T) {
	a := mergeConfMatrix()
	const k = 6
	mono, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Fit(context.Background(), parsvd.FromMatrix(a, 2))
	if err != nil {
		t.Fatal(err)
	}

	paths := shardCheckpointFiles(t, a, k, 8)

	balanced, err := parsvd.MergeCheckpoints(paths...)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := balanced.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Left-deep: adopt the first shard, absorb the rest one by one.
	deep, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := deep.Merge(bytes.NewReader(data)); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	dres, err := deep.Result()
	if err != nil {
		t.Fatal(err)
	}

	tol := balanced.MergeBound() + deep.MergeBound() + mergeConfTolerance
	if d := maxSpectrumDiff(t, bres.Singular, dres.Singular); d > tol {
		t.Errorf("balanced vs left-deep spectra deviate by %g, beyond combined bound %g", d, tol)
	}
	for name, res := range map[string]*parsvd.Result{"balanced": bres, "left-deep": dres} {
		if d := maxSpectrumDiff(t, want.Singular, res.Singular); d > mergeConfTolerance {
			t.Errorf("%s 8-shard merge deviates from monolithic serial by %g, want <= %g",
				name, d, mergeConfTolerance)
		}
		if res.Snapshots != 24 {
			t.Errorf("%s merged snapshots = %d, want 24", name, res.Snapshots)
		}
	}
}
