package parsvd_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	parsvd "goparsvd"

	"goparsvd/internal/testutil"
)

// fitAndSave fits src columns [lo, hi) of a with the given options and
// returns the checkpoint bytes.
func fitAndSave(t *testing.T, a *parsvd.Matrix, lo, hi int, opts ...parsvd.Option) []byte {
	t.Helper()
	svd, err := parsvd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(lo, hi), 4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeValidationTypedErrors: every incompatibility is refused with
// its typed error before the target changes.
func TestMergeValidationTypedErrors(t *testing.T) {
	a := mergeConfMatrix()
	target, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 12), 4)); err != nil {
		t.Fatal(err)
	}
	before, err := target.Result()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ckpt []byte
		want error
	}{
		{"K mismatch", fitAndSave(t, a, 12, 24, parsvd.WithModes(5)), parsvd.ErrMergeIncompatible},
		{"forget factor mismatch", fitAndSave(t, a, 12, 24, parsvd.WithModes(6), parsvd.WithForgetFactor(0.9)), parsvd.ErrMergeIncompatible},
		{"row mismatch", func() []byte {
			b, _ := testutil.RandomLowRank(32, 12, 6, 0, testutil.NewRand(7))
			return fitAndSave(t, b, 0, 12, parsvd.WithModes(6))
		}(), parsvd.ErrMergeIncompatible},
		{"garbage", []byte("not a checkpoint at all........."), parsvd.ErrBadCheckpoint},
		{"truncated", fitAndSave(t, a, 12, 24, parsvd.WithModes(6))[:40], parsvd.ErrBadCheckpoint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := target.Merge(bytes.NewReader(tc.ckpt))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// The target is untouched: same spectrum, same counters, still
			// streaming.
			after, rerr := target.Result()
			if rerr != nil {
				t.Fatalf("target poisoned: %v", rerr)
			}
			if !testutil.CloseSlices(before.Singular, after.Singular, 0) {
				t.Fatal("failed merge changed the target spectrum")
			}
			if after.Snapshots != before.Snapshots {
				t.Fatalf("failed merge changed snapshots: %d -> %d", before.Snapshots, after.Snapshots)
			}
		})
	}
}

// TestMergeShardProvenance: shard marks survive Save/Load, and the same
// shard is refused on a second merge while a sibling is accepted;
// mismatched partitionings are incompatible.
func TestMergeShardProvenance(t *testing.T) {
	a := mergeConfMatrix()
	shard0 := fitAndSave(t, a, 0, 8, parsvd.WithModes(6), parsvd.WithShard(0, 3))
	shard1 := fitAndSave(t, a, 8, 16, parsvd.WithModes(6), parsvd.WithShard(1, 3))
	other := fitAndSave(t, a, 16, 24, parsvd.WithModes(6), parsvd.WithShard(0, 2))

	// Provenance round-trips through Load: a resumed shard keeps its mark
	// in later saves.
	resumed, err := parsvd.Load(bytes.NewReader(shard0))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := resumed.Save(&again); err != nil {
		t.Fatal(err)
	}

	target, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := target.Merge(bytes.NewReader(shard0)); err != nil {
		t.Fatal(err)
	}
	if err := target.Merge(bytes.NewReader(again.Bytes())); !errors.Is(err, parsvd.ErrShardOverlap) {
		t.Fatalf("re-merging shard 0 of 3: got %v, want ErrShardOverlap", err)
	}
	if err := target.Merge(bytes.NewReader(other)); !errors.Is(err, parsvd.ErrMergeIncompatible) {
		t.Fatalf("merging shard of a different partitioning: got %v, want ErrMergeIncompatible", err)
	}
	if err := target.Merge(bytes.NewReader(shard1)); err != nil {
		t.Fatalf("merging the disjoint sibling: %v", err)
	}
	if st := target.Stats(); st.Snapshots != 16 {
		t.Fatalf("snapshots after two merges = %d, want 16", st.Snapshots)
	}
}

// TestMergeAdoptIntoEmpty: merging into a fresh SVD adopts the
// checkpoint; the model then streams, projects and saves like any serial
// model.
func TestMergeAdoptIntoEmpty(t *testing.T) {
	a := mergeConfMatrix()
	ckpt := fitAndSave(t, a, 0, 16, parsvd.WithModes(6))

	svd, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := svd.Merge(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	if st := svd.Stats(); st.Snapshots != 16 || st.Rows != 64 || st.Updates != 1 {
		t.Fatalf("adopted stats: %+v", st)
	}
	if err := svd.Push(a.SliceCols(16, 24)); err != nil {
		t.Fatalf("push after adopt: %v", err)
	}
	res, err := svd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots != 24 {
		t.Fatalf("snapshots = %d, want 24", res.Snapshots)
	}
	// The adopted+resumed stream matches the uninterrupted serial fit.
	mono, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Fit(context.Background(), parsvd.FromMatrix(a, 8))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxSpectrumDiff(t, want.Singular, res.Singular); d > 1e-10 {
		t.Fatalf("adopt+push deviates from serial fit by %g", d)
	}
	if _, err := svd.Coefficients(a.SliceCols(0, 4)); err != nil {
		t.Fatalf("projection after adopt: %v", err)
	}
}

// TestMergeSwitchesBackendToSerial: a Parallel model absorbs a
// checkpoint, continues serially, and its projections work.
func TestMergeSwitchesBackendToSerial(t *testing.T) {
	a := mergeConfMatrix()
	target, err := parsvd.New(parsvd.WithModes(6),
		parsvd.WithBackend(parsvd.Parallel), parsvd.WithRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	if _, err := target.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 12), 4)); err != nil {
		t.Fatal(err)
	}
	if err := target.Merge(bytes.NewReader(fitAndSave(t, a, 12, 24, parsvd.WithModes(6)))); err != nil {
		t.Fatal(err)
	}
	if b := target.Backend(); b != parsvd.Serial {
		t.Fatalf("backend after merge = %v, want Serial", b)
	}
	if cfg := target.Configuration(); cfg.Backend != parsvd.Serial || cfg.Ranks != 1 {
		t.Fatalf("configuration after merge: %+v", cfg)
	}
	if err := target.Push(a.SliceCols(0, 4)); err != nil {
		t.Fatalf("push after merge: %v", err)
	}
	if _, err := target.Coefficients(a.SliceCols(0, 4)); err != nil {
		t.Fatalf("projection after merge: %v", err)
	}
	var ckpt bytes.Buffer
	if err := target.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := parsvd.Load(&ckpt); err != nil {
		t.Fatalf("reloading post-merge checkpoint: %v", err)
	}
}

// TestWriteCheckpointRoundTrip: a published Result re-encoded by
// WriteCheckpoint loads and merges like an engine-written checkpoint.
func TestWriteCheckpointRoundTrip(t *testing.T) {
	a := mergeConfMatrix()
	svd, err := parsvd.New(parsvd.WithModes(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := svd.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 16), 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := parsvd.WriteCheckpoint(&buf, svd.Configuration(), res); err != nil {
		t.Fatal(err)
	}
	loaded, err := parsvd.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lres, err := loaded.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.CloseSlices(res.Singular, lres.Singular, 0) {
		t.Fatal("WriteCheckpoint round trip changed the spectrum")
	}
	if err := parsvd.WriteCheckpoint(&bytes.Buffer{}, svd.Configuration(), &parsvd.Result{}); err == nil {
		t.Fatal("WriteCheckpoint accepted a Result without modes")
	}
}

// TestWithShardsOptionValidation: the sharding options reject nonsense
// and contradictory combinations.
func TestWithShardsOptionValidation(t *testing.T) {
	if _, err := parsvd.New(parsvd.WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := parsvd.New(parsvd.WithShard(3, 2)); err == nil {
		t.Fatal("WithShard(3, 2) accepted")
	}
	if _, err := parsvd.New(parsvd.WithShard(-1, 4)); err == nil {
		t.Fatal("WithShard(-1, 4) accepted")
	}
	if _, err := parsvd.New(parsvd.WithShards(2), parsvd.WithShard(0, 2)); err == nil {
		t.Fatal("WithShards combined with WithShard accepted")
	}
	svd, err := parsvd.New(parsvd.WithShards(1))
	if err != nil {
		t.Fatalf("WithShards(1): %v", err)
	}
	if cfg := svd.Configuration(); cfg.Shards != 1 {
		t.Fatalf("Shards = %d, want 1", cfg.Shards)
	}
}

// TestMergeBoundAccumulates: lossy merges (full-rank shards truncated to
// K) report a positive, growing bound that dominates the deviation from
// the exact spectrum.
func TestMergeBoundAccumulates(t *testing.T) {
	rng := testutil.NewRand(9)
	a := testutil.RandomDense(40, 24, rng)
	const k = 4
	target, err := parsvd.New(parsvd.WithModes(k))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Fit(context.Background(), parsvd.FromMatrix(a.SliceCols(0, 8), 8)); err != nil {
		t.Fatal(err)
	}
	if b := target.MergeBound(); b != 0 {
		t.Fatalf("unmerged model reports bound %g", b)
	}
	var prev float64
	for _, span := range [][2]int{{8, 16}, {16, 24}} {
		ckpt := fitAndSave(t, a, span[0], span[1], parsvd.WithModes(k))
		if err := target.Merge(bytes.NewReader(ckpt)); err != nil {
			t.Fatal(err)
		}
		b := target.MergeBound()
		if b <= prev {
			t.Fatalf("bound did not grow across lossy merges: %g -> %g", prev, b)
		}
		prev = b
	}
}
