package parsvd

import (
	"fmt"
	"io"
	"time"

	"goparsvd/internal/apmos"
	"goparsvd/internal/core"
	"goparsvd/internal/rla"
)

// Backend selects the execution mode of a decomposition.
type Backend int

const (
	// Serial is ParSVD_Serial: a single-process streaming truncated SVD.
	Serial Backend = iota
	// Parallel is ParSVD_Parallel over in-process ranks: every rank is a
	// goroutine owning a row block of the snapshot matrix, cooperating
	// through channel-backed MPI-style collectives.
	Parallel
	// Distributed runs the same parallel algorithm with one OS process
	// per rank over loopback TCP (cmd/parsvd-worker), supervised by this
	// process as a persistent, sessionful worker fleet: every Push (or
	// Fit batch) is row-scattered to the workers over the wire, and
	// spectrum, modes fingerprint and checkpoints come back the same way.
	Distributed
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case Serial:
		return "serial"
	case Parallel:
		return "parallel"
	case Distributed:
		return "distributed"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// RLA tunes the randomized SVD enabled by WithLowRank: Oversample is the
// sketch surplus p beyond the target rank, PowerIters the subspace
// iteration count q, and Seed fixes the Gaussian sketch for reproducible
// runs (paper §3.3; Halko, Martinsson & Tropp).
type RLA = rla.Options

// SketchConfig tunes WithSketchedPush, the single-pass randomized sketch
// applied to every batch before it leaves the caller (Li–Kluger–Tygert,
// arXiv 1612.08709: the sketch, not the data, should cross the wire).
type SketchConfig struct {
	// Tol > 0 selects the adaptive rank: the range-finder basis grows
	// until the estimated residual of the compressed batch falls below
	// Tol·‖batch‖_F (scale-invariant; the estimate upper-bounds the true
	// spectral residual w.h.p.). Tol == 0 uses a fixed sketch width of
	// MaxRank columns.
	Tol float64
	// Block is the adaptive basis growth width per round; 0 means 8.
	// Ignored when Tol == 0.
	Block int
	// MaxRank caps the sketch width (the wire cost per push is
	// 8·width·(M+B) bytes against 8·M·B raw). 0 means 2·K under
	// WithSketchedPush, and "no cap" for an adaptive standalone Sketch.
	MaxRank int
}

// validate rejects configurations no sketch path can honor. The facade
// defaults MaxRank before calling it, so the Tol==0 && MaxRank==0 arm
// only fires for a standalone Sketch call.
func (sc SketchConfig) validate() error {
	if !(sc.Tol >= 0) { // the negated form also rejects NaN
		return fmt.Errorf("parsvd: SketchConfig.Tol = %g: must be >= 0 (0 means fixed rank)", sc.Tol)
	}
	if sc.Block < 0 {
		return fmt.Errorf("parsvd: SketchConfig.Block = %d: must be >= 0 (0 means the default)", sc.Block)
	}
	if sc.MaxRank < 0 {
		return fmt.Errorf("parsvd: SketchConfig.MaxRank = %d: must be >= 0", sc.MaxRank)
	}
	if sc.Tol == 0 && sc.MaxRank == 0 {
		return fmt.Errorf("parsvd: SketchConfig needs Tol > 0 (adaptive rank) or MaxRank >= 1 (fixed rank)")
	}
	return nil
}

// TransportConfig tunes the Distributed backend's process fabric.
type TransportConfig struct {
	// WorkerBin is the parsvd-worker binary; empty resolves via the
	// PARSVD_WORKER environment variable, a sibling of the running
	// executable, PATH, and finally `go build` inside a module checkout.
	WorkerBin string
	// Timeout bounds each session operation round trip — fleet startup
	// (rendezvous and fabric establishment), one batch scatter, one
	// gather, the shutdown drain. Zero means 2 minutes. It is what reaps
	// a wedged fleet: an operation that exceeds it kills the workers and
	// permanently fails the SVD with ErrEngineFailed.
	Timeout time.Duration
	// IdleTimeout is the workers' failure-detection window. Zero keeps
	// the worker default.
	IdleTimeout time.Duration
	// Stderr receives the worker processes' stderr streams; nil means
	// this process's stderr.
	Stderr io.Writer
}

// Option configures New. Options are applied in order; the last setting
// of a knob wins.
type Option func(*config) error

type config struct {
	k        int
	ff       float64
	lowRank  bool
	rlaOpts  rla.Options
	backend  Backend
	ranks    int
	ranksSet bool
	r1       int
	method   apmos.Method

	transport    TransportConfig
	transportSet bool
	checkpoint   io.Writer

	// shards > 1 makes Fit map-reduce the source across independent
	// shard fits merged into one model; shard stamps this SVD's
	// checkpoints as one shard-local fit of a partitioned stream.
	shards int
	shard  core.ShardID

	// sketchOn compresses every pushed batch through the randomized range
	// finder before it reaches the engine (WithSketchedPush).
	sketchOn bool
	sketch   SketchConfig
}

func defaultConfig() config {
	return config{k: 10, ff: 1.0, backend: Serial, ranks: 1}
}

// WithModes sets K, the number of retained modes (truncated left singular
// vectors). The default is 10.
func WithModes(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("parsvd: WithModes(%d): K must be >= 1", k)
		}
		c.k = k
		return nil
	}
}

// WithForgetFactor sets Algorithm 1's ff ∈ (0, 1]: the weight applied to
// the running factorization before each update. The default 1.0
// reproduces the one-shot SVD; the paper's experiments use 0.95.
func WithForgetFactor(ff float64) Option {
	return func(c *config) error {
		if !(ff > 0 && ff <= 1) { // the negated form also rejects NaN
			return fmt.Errorf("parsvd: WithForgetFactor(%g): forget factor must be in (0, 1]", ff)
		}
		c.ff = ff
		return nil
	}
}

// WithLowRank replaces every dense SVD in the pipeline with the
// randomized variant (paper §3.3). An optional RLA argument tunes the
// sketch; omitting it uses oversampling 10, one power iteration and a
// fixed seed. Passing more than one RLA is an error.
func WithLowRank(opts ...RLA) Option {
	return func(c *config) error {
		if len(opts) > 1 {
			return fmt.Errorf("parsvd: WithLowRank takes at most one RLA, got %d", len(opts))
		}
		c.lowRank = true
		if len(opts) == 1 {
			if err := opts[0].Validate(); err != nil {
				return fmt.Errorf("parsvd: WithLowRank: %w", err)
			}
			c.rlaOpts = opts[0]
		}
		return nil
	}
}

// WithSketchedPush compresses every pushed batch into its randomized
// sketch before it leaves the caller: an M×B batch A becomes the factor
// pair Q·(QᵀA) — Q an M×L orthonormal range basis, L ≤ MaxRank — and only
// the pair crosses into the engine (for the Distributed backend, across
// the wire to the worker fleet, which reconstructs on its side). Spectra
// stay within the documented tolerance of the unsketched run: exact (to
// roundoff) when MaxRank covers the batch rank, and within ~Tol·‖batch‖_F
// per batch when the adaptive rank is active. An optional SketchConfig
// tunes it; omitting it sketches at a fixed width of 2·K. Batches the
// sketch cannot compress (L·(M+B) ≥ M·B) are pushed raw. Passing more
// than one SketchConfig is an error. The RLA knobs of WithLowRank tune
// this sketch too when both are set.
func WithSketchedPush(cfg ...SketchConfig) Option {
	return func(c *config) error {
		if len(cfg) > 1 {
			return fmt.Errorf("parsvd: WithSketchedPush takes at most one SketchConfig, got %d", len(cfg))
		}
		c.sketchOn = true
		if len(cfg) == 1 {
			c.sketch = cfg[0]
		}
		return nil
	}
}

// WithBackend selects the execution mode. The default is Serial.
func WithBackend(b Backend) Option {
	return func(c *config) error {
		if b != Serial && b != Parallel && b != Distributed {
			return fmt.Errorf("parsvd: WithBackend(%d): unknown backend", int(b))
		}
		c.backend = b
		return nil
	}
}

// WithRanks sets the world size for the Parallel and Distributed
// backends (default 4, the paper's configuration). The Serial backend
// only accepts 1.
func WithRanks(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("parsvd: WithRanks(%d): need at least one rank", n)
		}
		c.ranks = n
		c.ranksSet = true
		return nil
	}
}

// WithInitRank sets r1, the APMOS gather truncation used by the parallel
// initialization (paper default 50): each rank contributes its leading r1
// right singular vectors to the gathered matrix. Zero means the default.
func WithInitRank(r1 int) Option {
	return func(c *config) error {
		if r1 < 0 {
			return fmt.Errorf("parsvd: WithInitRank(%d): r1 must be >= 0", r1)
		}
		c.r1 = r1
		return nil
	}
}

// WithTransport tunes the Distributed backend's worker fleet. Setting it
// on any other backend is an error.
func WithTransport(t TransportConfig) Option {
	return func(c *config) error {
		if t.Timeout < 0 || t.IdleTimeout < 0 {
			return fmt.Errorf("parsvd: WithTransport: negative timeout")
		}
		c.transport = t
		c.transportSet = true
		return nil
	}
}

// WithShards splits the fit into n independent shard-local
// decompositions merged into one model: Fit deals the source's batches
// round-robin across n engines of the configured backend (each shard
// runs Serial, Parallel or Distributed exactly as a whole fit would) and
// reduces the shard results up a balanced pairwise merge tree (Iwen &
// Ong, arXiv 1601.07010). The result is an ordinary serial-resumable
// model; MergeBound reports the accumulated truncation error of the
// reduction. WithShards(1) is the ordinary unsharded fit.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("parsvd: WithShards(%d): need at least one shard", n)
		}
		c.shards = n
		return nil
	}
}

// WithShard marks this decomposition as shard index of count disjoint
// snapshot subsets of one logical stream. The mark is carried into every
// checkpoint this SVD writes, and merge validation uses it to refuse
// absorbing the same shard twice. It does not change the computation.
func WithShard(index, count int) Option {
	return func(c *config) error {
		id := core.ShardID{Index: index, Count: count}
		if id.IsZero() {
			return fmt.Errorf("parsvd: WithShard(0, 0): use index in [0, count)")
		}
		if err := id.Validate(); err != nil {
			return fmt.Errorf("parsvd: WithShard(%d, %d): index must be in [0, count)", index, count)
		}
		c.shard = id
		return nil
	}
}

// WithCheckpoint arranges for Fit to serialize the final streaming state
// to w (the same format as Save) after its source drains. On the
// Distributed backend the checkpoint is gathered from the worker fleet
// (rank 0 assembles the global state), like Save.
func WithCheckpoint(w io.Writer) Option {
	return func(c *config) error {
		if w == nil {
			return fmt.Errorf("parsvd: WithCheckpoint(nil)")
		}
		c.checkpoint = w
		return nil
	}
}

// validate cross-checks the assembled configuration once all options have
// been applied.
func (c *config) validate() error {
	switch c.backend {
	case Serial:
		if c.ranksSet && c.ranks != 1 {
			return fmt.Errorf("parsvd: the serial backend runs on exactly one rank, got WithRanks(%d); use WithBackend(Parallel)", c.ranks)
		}
		c.ranks = 1
	case Parallel, Distributed:
		if !c.ranksSet {
			c.ranks = 4
		}
	}
	if c.transportSet && c.backend != Distributed {
		return fmt.Errorf("parsvd: WithTransport only applies to the Distributed backend, not %v", c.backend)
	}
	if c.shards > 1 && !c.shard.IsZero() {
		return fmt.Errorf("parsvd: WithShards and WithShard are mutually exclusive: a sharded fit merges to a whole-stream model, a shard mark brands one shard-local fit")
	}
	if c.sketchOn {
		if c.sketch.MaxRank == 0 && c.sketch.Tol == 0 {
			// The documented default: a fixed sketch twice as wide as the
			// truncation rank, so the sketch error stays well below what
			// the K-truncation discards anyway.
			c.sketch.MaxRank = 2 * c.k
		}
		if err := c.sketch.validate(); err != nil {
			return err
		}
	}
	// The engine layers re-validate, but through the error-returning
	// path: nothing a misconfigured New can reach panics.
	if err := c.coreOptions().Validate(); err != nil {
		return fmt.Errorf("parsvd: %w", err)
	}
	return nil
}

// coreOptions maps the public configuration onto the engine option
// struct.
func (c *config) coreOptions() core.Options {
	return core.Options{
		K:            c.k,
		ForgetFactor: c.ff,
		LowRank:      c.lowRank,
		RLA:          c.rlaOpts,
		R1:           c.r1,
		Method:       c.method,
	}
}
