// Package parsvd is the public face of goparsvd, a Go reproduction of the
// PyParSVD library (Maulik & Mengaldo, "PyParSVD: A streaming, distributed
// and randomized singular-value-decomposition library", SC 2021). It
// computes the truncated SVD of a snapshot matrix that arrives batch by
// batch, optionally distributed across ranks and optionally with
// randomized linear algebra inside.
//
// One constructor is the only way in:
//
//	svd, err := parsvd.New(parsvd.WithModes(10), parsvd.WithForgetFactor(0.95))
//	if err != nil { ... }
//	res, err := svd.Fit(ctx, parsvd.FromMatrix(snapshots, 100))
//
// Every knob is a functional option and every misconfiguration is an
// error returned by New — nothing on the public path panics. The options
// map one-to-one onto the paper's symbols:
//
//   - WithModes(k) is K, the truncation rank: the number of left singular
//     vectors (POD modes) retained by every update (paper §3.1).
//   - WithForgetFactor(ff) is ff ∈ (0, 1] of Algorithm 1 (Levy &
//     Lindenbaum), down-weighting past batches; 1.0 reproduces the
//     one-shot SVD, the paper's experiments use 0.95.
//   - WithLowRank(...) turns on the paper's §3.3 randomization: every
//     dense SVD in the pipeline is replaced by the Halko–Martinsson–Tropp
//     randomized SVD. The optional RLA argument sets the oversampling p,
//     the power-iteration count q and the sketch seed.
//   - WithInitRank(r1) is the APMOS gather truncation r1 used by the
//     distributed initialization (paper default 50).
//   - WithBackend selects the execution mode: Serial is ParSVD_Serial,
//     Parallel is ParSVD_Parallel over in-process goroutine ranks, and
//     Distributed runs ParSVD_Parallel with one OS process per rank over
//     loopback TCP — a persistent worker fleet fed real snapshot data
//     over the wire, interchangeable with the other two backends.
//   - WithRanks(n) is the MPI world size for the non-serial backends.
//
// Data enters through the Source abstraction — an in-memory matrix
// (FromMatrix), a batch-generator function (FromBatches), a self-
// describing NetCDF-style container file (FromNetCDF), or a deterministic
// benchmark workload (FromWorkload) — via the context-aware Fit loop, or
// incrementally through Push. Results carry the global modes, the
// spectrum and the iteration counters regardless of backend, and Save /
// Load round-trip the full streaming state for checkpoint/restart.
package parsvd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"goparsvd/internal/core"
	"goparsvd/internal/mat"
)

// Result is the outcome of a decomposition, identical in shape across
// backends.
//
// Aliasing: every reference field of a Result returned by SVD.Result (or
// Fit) is a deep copy owned by the caller — the engine-internal storage
// that backs the decomposition is recycled between streaming updates and
// is never exposed here. Mutating a Result therefore cannot corrupt the
// SVD, and a later Push cannot change a Result already handed out. To fan
// one Result out to multiple goroutines that may each mutate it, give
// each its own Clone.
type Result struct {
	// Modes is the full M×K matrix of truncated left singular vectors
	// (the POD modes), assembled across ranks for the parallel backend.
	// It is nil for the Distributed backend, whose modes live
	// row-distributed in worker processes; ModesSHA256 fingerprints them
	// instead, and Save gathers them into a checkpoint.
	Modes *Matrix
	// Singular holds the truncated singular values in descending order.
	Singular []float64
	// Iterations is the number of streaming updates performed (the
	// Initialize batch is not counted).
	Iterations int
	// Snapshots is the total number of ingested snapshot columns.
	Snapshots int
	// ModesSHA256 fingerprints the gathered mode matrix of a Distributed
	// run (dims plus row-major IEEE-754 bits), so runs can be compared
	// bit-for-bit across transports without shipping the matrix.
	ModesSHA256 string
}

// Clone deep-copies the Result: the copy shares no storage with the
// original, so one Result can be handed to arbitrarily many concurrent
// readers (or mutators) as long as each works on its own Clone. A nil
// receiver clones to nil.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := *r
	out.Singular = append([]float64(nil), r.Singular...)
	if r.Modes != nil {
		out.Modes = r.Modes.Clone()
	}
	return &out
}

// ErrEngineFailed marks an SVD whose backend is permanently failed: a
// rank panicked or a collective aborted, and the streaming state can no
// longer be trusted or advanced. Every later Push/Result reports an error
// wrapping this sentinel; the only recovery is a new SVD (or Load from a
// checkpoint). Servers use it to distinguish a dead engine (their fault,
// HTTP 5xx) from a bad request.
var ErrEngineFailed = errors.New("parsvd: engine permanently failed")

// ShardInfo is the public face of a shard provenance mark: this model
// holds shard Index of Count disjoint snapshot subsets of one logical
// stream (WithShard). The zero value means "whole stream / unmarked".
type ShardInfo struct {
	Index int
	Count int
}

// IsZero reports an absent provenance mark.
func (si ShardInfo) IsZero() bool { return si == ShardInfo{} }

// String renders "index/count" ("" for the zero mark).
func (si ShardInfo) String() string {
	if si.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", si.Index, si.Count)
}

func shardInfo(id core.ShardID) ShardInfo {
	return ShardInfo{Index: id.Index, Count: id.Count}
}

// Configuration echoes the options an SVD was built with — including one
// rebuilt by Load, whose options come from the checkpoint. It exists so
// callers wrapping SVDs (the serving layer) can report or persist the
// effective configuration without holding on to the original Option list.
type Configuration struct {
	Modes        int
	ForgetFactor float64
	Backend      Backend
	Ranks        int
	InitRank     int
	LowRank      bool
	// RLA is the sketch tuning; zero when LowRank is false or the
	// defaults are in effect.
	RLA RLA
	// Shards is the WithShards map-reduce width (0 or 1 for an
	// unsharded fit).
	Shards int
	// Shard is the WithShard provenance mark (zero for a whole-stream
	// model, and for a merged model — a merge retires the mark into the
	// absorbed set). WriteCheckpoint stamps it into the checkpoints it
	// produces, so a published view exported over HTTP carries the same
	// provenance a Save would.
	Shard ShardInfo
	// Sketched reports WithSketchedPush; Sketch echoes its effective
	// configuration (MaxRank defaulted), zero when Sketched is false.
	Sketched bool
	Sketch   SketchConfig
}

// Configuration reports the effective options of this SVD. A merge can
// change the backend (a merged model always continues serially), so the
// report reflects the SVD's current state, not just its construction.
func (s *SVD) Configuration() Configuration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Configuration{
		Modes:        s.cfg.k,
		ForgetFactor: s.cfg.ff,
		Backend:      s.cfg.backend,
		Ranks:        s.cfg.ranks,
		InitRank:     s.cfg.r1,
		LowRank:      s.cfg.lowRank,
		RLA:          s.cfg.rlaOpts,
		Shards:       s.cfg.shards,
		Shard:        shardInfo(s.cfg.shard),
		Sketched:     s.cfg.sketchOn,
		Sketch:       s.cfg.sketch,
	}
}

// Stats is the cheap introspection surface of an SVD: configuration,
// ingest counters and inter-rank traffic. Reading it never gathers modes
// or runs a collective, so it is safe to poll at serving frequency.
type Stats struct {
	// Backend and K echo the configuration (WithBackend, WithModes).
	Backend Backend
	K       int
	// Ranks is the world size (1 for the serial backend).
	Ranks int
	// Rows is the snapshot row count M, 0 until the first batch arrives.
	Rows int
	// Snapshots counts the ingested snapshot columns.
	Snapshots int
	// Updates counts the state-changing updates applied (the Initialize
	// batch included): a monotone version counter for "has anything
	// changed since I last looked".
	Updates int64
	// Messages and Bytes summarize the inter-rank traffic of a parallel
	// or distributed run; they stay zero for the serial backend.
	Messages int64
	Bytes    int64
	// PushedBytes counts the logical float64 payload of every ingested
	// batch (8·M·B per push) on every backend, so serial, parallel and
	// distributed models report comparable ingest volume. WireBytes
	// counts what actually crossed into the engine: equal to PushedBytes
	// for raw pushes, the compressed factor-pair size for sketched ones
	// (WithSketchedPush / PushSketch) — the gap between the two is the
	// measured wire saving. SketchedPushes counts the pushes that
	// traveled compressed.
	PushedBytes    int64
	WireBytes      int64
	SketchedPushes int64
	// Shard is the WithShard provenance mark: this model is one
	// shard-local fit of a partitioned stream. Zero for whole-stream
	// models and for merged models (the mark retires into the absorbed
	// set on the first merge).
	Shard ShardInfo
	// Absorbed counts the shard marks this model has absorbed through
	// merges: > 0 identifies a merged (reduced) model and says how many
	// marked shards it is the union of.
	Absorbed int
}

// engine is the backend-side contract behind SVD. Serial and Parallel
// hold their streaming state in this process; Distributed holds it in a
// persistent worker fleet behind the same five operations.
//
// deadlineAware is the optional extension Fit uses to map a context
// deadline onto an engine whose operations block on external processes.
type deadlineAware interface {
	setDeadline(t time.Time)
}
type engine interface {
	push(b *mat.Dense) error
	result() (*Result, error)
	// save serializes the engine state; a non-nil res is a result just
	// produced by result(), letting the parallel backend skip a second
	// gather collective.
	save(w io.Writer, res *Result) error
	stats() Stats
	close() error
}

// SVD is a handle on one streaming decomposition. Construct it with New,
// feed it through Fit or Push, read it through Result, persist it with
// Save. Every backend — Serial, Parallel and Distributed — is driven
// through the same surface; a Distributed SVD lazily spawns its worker
// fleet on the first batch and keeps it alive until Close.
//
// Methods on SVD are safe for use from a single goroutine; concurrent
// calls are serialized internally.
type SVD struct {
	cfg config

	mu     sync.Mutex
	eng    engine
	closed bool

	// Ingest counters surfaced by Stats without touching the engine.
	rows      int
	snapshots int
	updates   int64

	// Traffic counters maintained here for every backend (the engines
	// only know their own collectives): logical bytes pushed, bytes that
	// actually crossed into the engine, and how many pushes traveled as
	// compressed sketches.
	pushedBytes    int64
	wireBytes      int64
	sketchedPushes int64

	// Merge provenance: the shard marks absorbed so far (Merge refuses
	// the same shard twice) and the accumulated Iwen–Ong truncation
	// bound of every merge applied to this model.
	absorbed   []core.ShardID
	mergeBound float64
}

// New builds a decomposition from functional options. The zero
// configuration (no options) is a serial engine with K = 10 modes and
// forget factor 1.0. Invalid or contradictory options are reported as an
// error; New never panics.
func New(opts ...Option) (*SVD, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("parsvd: nil Option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &SVD{cfg: cfg}
	if cfg.shards > 1 {
		// A sharded fit deals batches across independent engines of the
		// configured backend and merges their results.
		s.eng = newShardedEngine(cfg)
		return s, nil
	}
	switch cfg.backend {
	case Serial:
		s.eng = newSerialEngine(cfg.coreOptions())
	case Parallel:
		s.eng = newParallelEngine(cfg.coreOptions(), cfg.ranks)
	case Distributed:
		// The worker fleet spawns lazily on the first batch.
		s.eng = newDistEngine(cfg)
	}
	return s, nil
}

// Backend reports the current execution mode: the one this SVD was built
// with, or Serial after a Merge (a merged model continues serially).
func (s *SVD) Backend() Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.backend
}

// Ranks reports the world size (1 for the serial backend).
func (s *SVD) Ranks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.ranks
}

// Fit drains src through the decomposition: the first batch seeds it
// (Algorithm 1's initialization), every further batch is a streaming
// update. ctx is checked between batches; cancellation returns ctx.Err()
// with the state as of the last completed batch intact. If src implements
// io.Closer it is closed before Fit returns. When a checkpoint writer was
// configured (WithCheckpoint), the final state is saved to it after the
// source drains.
//
// Every backend accepts every Source: the Distributed backend scatters
// each batch's rows across its worker fleet over the wire, exactly as the
// Parallel backend scatters them across its rank goroutines.
func (s *SVD) Fit(ctx context.Context, src Source) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil {
		return nil, errors.New("parsvd: Fit with nil Source")
	}
	if c, ok := src.(io.Closer); ok {
		defer c.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("parsvd: Fit on closed SVD")
	}
	// A context deadline must bound the Distributed backend's wire
	// operations, not just the between-batch checks below: map it onto
	// the engine's per-operation cap for the duration of this Fit.
	if dl, ok := ctx.Deadline(); ok {
		if da, ok := s.eng.(deadlineAware); ok {
			da.setDeadline(dl)
			defer da.setDeadline(time.Time{})
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := src.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parsvd: source: %w", err)
		}
		if err := s.pushLocked(b); err != nil {
			// A push that failed because the context expired mid-wire
			// reports the context error, like any other ctx-aware API.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
	}
	res, err := s.eng.result()
	if err != nil {
		// A gather refused because the deadline expired after the last
		// batch reports the context error, not a backend detail.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if s.cfg.checkpoint != nil {
		if err := s.saveLocked(s.cfg.checkpoint, res); err != nil {
			return nil, fmt.Errorf("parsvd: writing checkpoint: %w", err)
		}
	}
	return res, nil
}

// Push ingests one snapshot batch (M×B): the first call seeds the
// decomposition, later calls stream. It is the incremental alternative to
// Fit for callers that produce batches themselves. On the Distributed
// backend the first Push spawns the persistent worker fleet and every
// batch is row-scattered to it over the wire.
func (s *SVD) Push(batch *Matrix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("parsvd: Push on closed SVD")
	}
	return s.pushLocked(batch)
}

// pushLocked forwards a batch to the engine and maintains the ingest
// counters behind Stats. With WithSketchedPush the batch is compressed
// into its factor pair first and only the pair crosses into the engine;
// batches the sketch cannot compress fall through to the raw path.
// Called with s.mu held.
func (s *SVD) pushLocked(b *Matrix) error {
	if s.cfg.sketchOn {
		if err := checkBatch(b, s.rows); err != nil {
			return err
		}
		q, sk, err := sketchBatch(b, s.cfg.sketch, s.cfg.rlaOpts)
		if err != nil {
			return err
		}
		if q != nil {
			return s.pushSketchLocked(q, sk)
		}
	}
	if err := s.eng.push(b); err != nil {
		return err
	}
	raw := 8 * int64(b.Rows()*b.Cols())
	s.pushedBytes += raw
	s.wireBytes += raw
	if s.rows == 0 {
		s.rows = b.Rows()
	}
	s.snapshots += b.Cols()
	s.updates++
	return nil
}

// Result snapshots the current decomposition: modes, spectrum, counters.
// At least one batch must have been ingested. The returned matrices are
// copies owned by the caller.
func (s *SVD) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("parsvd: Result on closed SVD")
	}
	return s.eng.result()
}

// Stats reports the SVD's configuration, ingest counters and inter-rank
// traffic. Unlike Result it never gathers modes, so it is cheap enough to
// poll per request when the SVD backs a service.
func (s *SVD) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Backend:   s.cfg.backend,
		K:         s.cfg.k,
		Ranks:     s.cfg.ranks,
		Rows:      s.rows,
		Snapshots: s.snapshots,
		Updates:   s.updates,
		Shard:     shardInfo(s.cfg.shard),
		Absorbed:  len(s.absorbed),
	}
	st.PushedBytes = s.pushedBytes
	st.WireBytes = s.wireBytes
	st.SketchedPushes = s.sketchedPushes
	if s.eng != nil {
		es := s.eng.stats()
		st.Messages, st.Bytes = es.Messages, es.Bytes
	}
	return st
}

// Save serializes the full streaming state — options, global modes,
// singular values, counters — in the goparsvd checkpoint format readable
// by Load. For the parallel and distributed backends the per-rank slices
// are gathered first (for Distributed, rank 0 of the worker fleet
// assembles the checkpoint and ships it back over the wire), so the
// checkpoint always holds the global state and can be resumed serially.
func (s *SVD) Save(w io.Writer) error {
	if w == nil {
		return errors.New("parsvd: Save with nil writer")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("parsvd: Save on closed SVD")
	}
	return s.saveLocked(w, nil)
}

// saveLocked writes the engine checkpoint, stamping the WithShard
// provenance mark into it when one is configured. Called with s.mu held.
// The engines themselves always emit unmarked state (the version-1
// layout), so the stamp is applied by re-encoding through the State
// form; checkpoints are small relative to a fit, the copy is cheap.
func (s *SVD) saveLocked(w io.Writer, res *Result) error {
	if s.cfg.shard.IsZero() {
		return s.eng.save(w, res)
	}
	var buf bytes.Buffer
	if err := s.eng.save(&buf, res); err != nil {
		return err
	}
	st, err := core.ReadState(&buf)
	if err != nil {
		return fmt.Errorf("parsvd: stamping shard provenance: %w", err)
	}
	st.Shard = s.cfg.shard
	return core.WriteState(w, st)
}

// Close releases backend resources (the parallel backend's rank
// goroutines). The SVD is unusable afterwards. Close is idempotent and
// optional for the serial backend.
func (s *SVD) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.eng != nil {
		return s.eng.close()
	}
	return nil
}
